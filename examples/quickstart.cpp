// Quickstart: simulate a MapReduce job on the modeled YARN cluster, then let
// MRONLINE tune it conservatively in a single run.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "mapreduce/simulation.h"
#include "tuner/online_tuner.h"
#include "workloads/benchmarks.h"

using namespace mron;

int main() {
  std::printf("== MRONLINE quickstart ==\n");
  std::printf("Cluster: 18 slaves, 2 racks, 6 GB / 28 vcores per node\n\n");

  // --- 1. a plain job on default YARN configuration --------------------------
  mapreduce::SimulationOptions options;
  options.seed = 42;
  double default_secs = 0.0;
  {
    mapreduce::Simulation sim(options);
    // 60 GB Terasort: 480 map tasks, 120 reducers.
    mapreduce::JobSpec job = workloads::make_terasort(sim, gibibytes(60));
    const mapreduce::JobResult result = sim.run_job(job);
    default_secs = result.exec_time();
    std::printf("default config : %6.1f s, %lld spilled records "
                "(optimal %lld), map mem util %.0f%%\n",
                default_secs,
                static_cast<long long>(result.counters.map.spilled_records),
                static_cast<long long>(
                    result.counters.map.combine_output_records),
                100 * result.avg_util(mapreduce::TaskKind::Map, false));
  }

  // --- 2. the same job with MRONLINE tuning it as it runs --------------------
  {
    mapreduce::Simulation sim(options);
    mapreduce::JobSpec job = workloads::make_terasort(sim, gibibytes(60));

    tuner::TunerOptions topt;
    topt.strategy = tuner::TuningStrategy::Conservative;
    tuner::OnlineTuner online_tuner(topt);

    double tuned_secs = 0.0;
    mapreduce::JobResult tuned_result;
    auto& am = sim.submit_job(job, [&](const mapreduce::JobResult& r) {
      tuned_secs = r.exec_time();
      tuned_result = r;
    });
    online_tuner.attach(am);
    sim.run();

    std::printf("MRONLINE       : %6.1f s, %lld spilled records, "
                "%d config adjustments\n",
                tuned_secs,
                static_cast<long long>(
                    tuned_result.counters.map.spilled_records),
                online_tuner.outcome(am.id()).conservative_adjustments);
    std::printf("\nimprovement    : %.1f%%\n",
                100.0 * (default_secs - tuned_secs) / default_secs);

    const auto& cfg = online_tuner.outcome(am.id()).best_config;
    std::printf("\nfinal configuration reached online:\n");
    std::printf("  mapreduce.map.memory.mb        = %.0f\n", cfg.map_memory_mb);
    std::printf("  mapreduce.task.io.sort.mb      = %.0f\n", cfg.io_sort_mb);
    std::printf("  mapreduce.map.sort.spill.percent = %.2f\n",
                cfg.sort_spill_percent);
    std::printf("  mapreduce.reduce.memory.mb     = %.0f\n",
                cfg.reduce_memory_mb);
    std::printf("  mapreduce.reduce.shuffle.parallelcopies = %.0f\n",
                cfg.shuffle_parallelcopies);
  }
  return 0;
}
