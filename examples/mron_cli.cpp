// mron_cli — drive any benchmark/strategy combination from the shell.
//
//   mron_cli --app=terasort --size-gb=60 --strategy=aggressive --runs=2
//   mron_cli --app=wordcount --corpus=freebase --strategy=conservative
//   mron_cli --app=bigram --strategy=offline --seed=9
//   mron_cli --list
//
// Strategies:
//   none          plain run on the default YARN configuration
//   conservative  MRONLINE fast-single-run tuning riding along
//   aggressive    one MRONLINE expedited test run, then `--runs` production
//                 executions with the discovered configuration
//   offline       the static offline tuning-guide configuration
#include <cstdio>
#include <string>

#include "baselines/offline_guide.h"
#include "common/flags.h"
#include "mapreduce/simulation.h"
#include "tuner/online_tuner.h"
#include "workloads/benchmarks.h"

using namespace mron;

namespace {

struct AppChoice {
  workloads::Benchmark benchmark;
  workloads::Corpus corpus;
};

AppChoice parse_app(const std::string& app, const std::string& corpus) {
  using workloads::Benchmark;
  using workloads::Corpus;
  const Corpus c = corpus == "freebase" ? Corpus::Freebase
                                        : Corpus::Wikipedia;
  if (app == "terasort") return {Benchmark::Terasort, Corpus::Synthetic};
  if (app == "bbp") return {Benchmark::Bbp, Corpus::None};
  if (app == "wordcount" || app == "wc") return {Benchmark::WordCount, c};
  if (app == "bigram") return {Benchmark::Bigram, c};
  if (app == "invertedindex" || app == "ii") {
    return {Benchmark::InvertedIndex, c};
  }
  if (app == "textsearch" || app == "grep") {
    return {Benchmark::TextSearch, c};
  }
  std::fprintf(stderr, "unknown --app=%s\n", app.c_str());
  std::exit(2);
}

mapreduce::JobSpec make_spec(mapreduce::Simulation& sim, const AppChoice& app,
                             double size_gb) {
  if (app.benchmark == workloads::Benchmark::Terasort && size_gb > 0) {
    return workloads::make_terasort(sim, gibibytes(size_gb));
  }
  return workloads::make_job(sim, app.benchmark, app.corpus);
}

void print_result(const char* label, const mapreduce::JobResult& r) {
  std::printf("%-14s exec=%8.1f s  maps=%zu reds=%zu  spilled=%.3fe9 "
              "(optimal %.3fe9)  mem-util m/r=%.0f%%/%.0f%%  "
              "cpu-util m/r=%.0f%%/%.0f%%  failed-attempts=%d\n",
              label, r.exec_time(), r.map_reports.size(),
              r.reduce_reports.size(),
              static_cast<double>(r.counters.map.spilled_records) / 1e9,
              static_cast<double>(r.counters.map.combine_output_records) /
                  1e9,
              100 * r.avg_util(mapreduce::TaskKind::Map, false),
              100 * r.avg_util(mapreduce::TaskKind::Reduce, false),
              100 * r.avg_util(mapreduce::TaskKind::Map, true),
              100 * r.avg_util(mapreduce::TaskKind::Reduce, true),
              r.counters.failed_task_attempts);
}

void print_config(const mapreduce::JobConfig& cfg) {
  const auto& reg = mapreduce::ParamRegistry::standard();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    std::printf("  %-48s = %g\n", reg.at(i).name.c_str(), reg.get(cfg, i));
  }
}

mapreduce::JobResult run_once(const AppChoice& app, double size_gb,
                              const mapreduce::JobConfig& cfg,
                              std::uint64_t seed, bool fair) {
  mapreduce::SimulationOptions opt;
  opt.seed = seed;
  opt.fair_scheduler = fair;
  mapreduce::Simulation sim(opt);
  mapreduce::JobSpec spec = make_spec(sim, app, size_gb);
  spec.config = cfg;
  return sim.run_job(std::move(spec));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.get("help", false)) {
    std::printf("usage: mron_cli --app=<terasort|wordcount|bigram|"
                "invertedindex|textsearch|bbp> [--corpus=wikipedia|freebase]"
                " [--size-gb=N] [--strategy=none|conservative|aggressive|"
                "offline] [--seed=N] [--runs=N] [--fair] [--show-config]\n");
    return 0;
  }
  if (flags.get("list", false)) {
    std::printf("benchmarks (Table 3):\n");
    for (const auto& info : workloads::table3()) {
      std::printf("  %-14s %-10s %6.1f GB in, %6.1f GB shuffle, %d maps, "
                  "%d reducers (%s)\n",
                  info.name.c_str(), info.input_name.c_str(),
                  info.input_size.as_double() / 1e9,
                  info.shuffle_size.as_double() / 1e9, info.num_maps,
                  info.num_reduces, info.job_type.c_str());
    }
    return 0;
  }

  const AppChoice app = parse_app(flags.get("app", std::string("terasort")),
                                  flags.get("corpus", std::string("wikipedia")));
  const double size_gb = flags.get("size-gb", 20.0);
  const std::string strategy = flags.get("strategy", std::string("none"));
  const auto seed = static_cast<std::uint64_t>(flags.get("seed", 1));
  const int runs = flags.get("runs", 1);
  const bool fair = flags.get("fair", false);
  const bool show_config = flags.get("show-config", false);
  for (const auto& u : flags.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", u.c_str());
  }

  if (strategy == "none" || strategy == "offline") {
    mapreduce::JobConfig cfg;
    if (strategy == "offline") {
      mapreduce::SimulationOptions opt;
      mapreduce::Simulation sim(opt);
      const mapreduce::JobSpec spec = make_spec(sim, app, size_gb);
      const int maps = spec.input.valid()
                           ? static_cast<int>(
                                 sim.dfs().dataset(spec.input).blocks.size())
                           : spec.num_maps_override;
      cfg = baselines::offline_guide_config(spec, sim.dfs().block_size(),
                                            maps);
    }
    if (show_config) print_config(cfg);
    for (int i = 0; i < runs; ++i) {
      print_result(strategy.c_str(), run_once(app, size_gb, cfg, seed + i,
                                              fair));
    }
    return 0;
  }

  if (strategy == "conservative") {
    for (int i = 0; i < runs; ++i) {
      mapreduce::SimulationOptions opt;
      opt.seed = seed + i;
      opt.fair_scheduler = fair;
      mapreduce::Simulation sim(opt);
      tuner::TunerOptions topt;
      topt.strategy = tuner::TuningStrategy::Conservative;
      tuner::OnlineTuner online_tuner(topt);
      mapreduce::JobResult result;
      auto& am = sim.submit_job(make_spec(sim, app, size_gb),
                                [&](const mapreduce::JobResult& r) {
                                  result = r;
                                });
      online_tuner.attach(am);
      sim.run();
      print_result("conservative", result);
      if (show_config) print_config(online_tuner.outcome(am.id()).best_config);
    }
    return 0;
  }

  if (strategy == "aggressive") {
    mapreduce::SimulationOptions opt;
    opt.seed = seed;
    mapreduce::Simulation sim(opt);
    tuner::OnlineTuner online_tuner{tuner::TunerOptions{}};
    double test_secs = 0.0;
    auto& am = sim.submit_job(
        make_spec(sim, app, size_gb),
        [&](const mapreduce::JobResult& r) { test_secs = r.exec_time(); });
    online_tuner.attach(am);
    sim.run();
    const auto& out = online_tuner.outcome(am.id());
    std::printf("test run: %.1f s, %d waves, %d configurations\n", test_secs,
                out.waves, out.configs_tried);
    if (show_config) print_config(out.best_config);
    for (int i = 0; i < runs; ++i) {
      print_result("aggressive",
                   run_once(app, size_gb, out.best_config, seed + 1 + i,
                            fair));
    }
    return 0;
  }

  std::fprintf(stderr, "unknown --strategy=%s\n", strategy.c_str());
  return 2;
}
