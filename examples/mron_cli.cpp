// mron_cli — drive any benchmark/strategy combination from the shell.
//
//   mron_cli --app=terasort --size-gb=60 --strategy=aggressive --runs=2
//   mron_cli --app=wordcount --corpus=freebase --strategy=conservative
//   mron_cli --app=bigram --strategy=offline --seed=9
//   mron_cli --app=terasort --strategy=aggressive --trace-out --audit-out
//   mron_cli --list
//
// Strategies:
//   none          plain run on the default YARN configuration
//   conservative  MRONLINE fast-single-run tuning riding along
//   aggressive    one MRONLINE expedited test run, then `--runs` production
//                 executions with the discovered configuration
//   offline       the static offline tuning-guide configuration
//
// Flight recorder: any of --metrics-out[=F] / --trace-out[=F] /
// --audit-out[=F] turns observation on and writes the artifact after the
// last simulation (defaults mron_metrics.json / mron_trace.json /
// mron_audit.jsonl). --trace-detail adds per-phase and shuffle-fetch spans.
//
// --report-out[=F] (default mron_report.json) writes the versioned run
// report (obs/report.h): counter rollups + metric scalars + whole-run time
// series. The exported run is picked by key, not by completion order, so
// the file is byte-identical at any --jobs; under --strategy=aggressive it
// describes the last production run, not the test run.
//
// --profile-out[=F] (default host_profile.json) attaches the host
// self-profiler (obs/host_profile.h) and writes where the *simulator's* own
// wall time and memory went. Host time is nondeterministic, so the profile
// is quarantined in its own file — run reports stay byte-identical with or
// without it. --progress prints a wall-clock-throttled stderr heartbeat
// (events/sec, sim-time, RSS) for long runs; it never touches any artifact.
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "baselines/offline_guide.h"
#include "cluster/cluster_spec.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/log.h"
#include "faults/fault_plan.h"
#include "mapreduce/report_rollup.h"
#include "mapreduce/simulation.h"
#include "obs/report.h"
#include "sim/parallel_runner.h"
#include "tuner/online_tuner.h"
#include "workloads/benchmarks.h"

using namespace mron;

namespace {

/// Flight-recorder destinations (empty path = don't write). When any is
/// set, every simulation runs observed; each finished run rewrites the
/// files, so they describe the last simulation of the invocation.
struct ObsConfig {
  std::string metrics_out, trace_out, audit_out, report_out;
  /// Host-profile destination. Deliberately excluded from any(): profiling
  /// must not switch the flight recorder on (and must never perturb the
  /// deterministic exports).
  std::string profile_out;
  bool trace_detail = false;
  bool progress = false;
  [[nodiscard]] bool any() const {
    return !metrics_out.empty() || !trace_out.empty() ||
           !audit_out.empty() || !report_out.empty();
  }
};
ObsConfig g_obs;
// --fault-plan / --fault-spec: applied to every simulation of the
// invocation (test run and production runs alike). Empty = reliable
// cluster.
faults::FaultPlan g_fault_plan;
// --speculative: LATE-style speculative execution on every job.
bool g_speculative = false;
// --cluster=SPEC: the simulated cluster for every run of the invocation.
// Defaults to the paper's 19-node testbed (cluster/cluster_spec.h grammar).
cluster::ClusterSpec g_cluster;
// --dfs-replication / --dfs-policy: storage layout for every run.
int g_dfs_replication = 3;
std::string g_dfs_policy;
// Runs may finish on several pool workers at once; exports stay whole-file.
std::mutex g_obs_mu;
// --report-out destination; keeps the greatest-keyed run, so the exported
// report is a pure function of the flags, never of worker timing.
obs::ReportCollector g_reports;

void apply_obs(mapreduce::SimulationOptions& opt) {
  opt.cluster = g_cluster;
  opt.fault_plan = g_fault_plan;
  opt.dfs_replication = g_dfs_replication;
  opt.dfs_policy = g_dfs_policy;
  opt.host_profile = !g_obs.profile_out.empty();
  opt.progress = g_obs.progress;
  opt.progress_label = "mron_cli";
  if (!g_obs.any()) return;
  opt.observe = true;
  opt.trace_detail = g_obs.trace_detail;
}

void export_obs(mapreduce::Simulation& sim) {
  auto* rec = sim.recorder();
  if (rec == nullptr && sim.host_profiler() == nullptr) return;
  std::lock_guard<std::mutex> lock(g_obs_mu);
  auto write = [](const std::string& path, auto&& writer) {
    if (path.empty()) return;
    std::ofstream out(path);
    MRON_CHECK_MSG(out.good(), "cannot open " << path);
    writer(out);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  };
  if (rec != nullptr) {
    write(g_obs.metrics_out,
          [&](std::ostream& o) { rec->metrics().write_json(o); });
    if (!g_obs.trace_out.empty() && sim.host_profiler() != nullptr) {
      // Optional host-time lane: only profiled traces carry it, so plain
      // traces stay deterministic.
      sim.host_profiler()->emit_trace_track(rec->trace());
    }
    write(g_obs.trace_out,
          [&](std::ostream& o) { rec->trace().write_chrome_json(o); });
    write(g_obs.audit_out,
          [&](std::ostream& o) { rec->audit().write_jsonl(o); });
  }
  write(g_obs.profile_out,
        [&](std::ostream& o) { sim.write_host_profile(o); });
}

struct AppChoice {
  workloads::Benchmark benchmark;
  workloads::Corpus corpus;
};

AppChoice parse_app(const std::string& app, const std::string& corpus) {
  using workloads::Benchmark;
  using workloads::Corpus;
  const Corpus c = corpus == "freebase" ? Corpus::Freebase
                                        : Corpus::Wikipedia;
  if (app == "terasort") return {Benchmark::Terasort, Corpus::Synthetic};
  if (app == "bbp") return {Benchmark::Bbp, Corpus::None};
  if (app == "wordcount" || app == "wc") return {Benchmark::WordCount, c};
  if (app == "bigram") return {Benchmark::Bigram, c};
  if (app == "invertedindex" || app == "ii") {
    return {Benchmark::InvertedIndex, c};
  }
  if (app == "textsearch" || app == "grep") {
    return {Benchmark::TextSearch, c};
  }
  std::fprintf(stderr, "unknown --app=%s\n", app.c_str());
  std::exit(2);
}

mapreduce::JobSpec make_spec(mapreduce::Simulation& sim, const AppChoice& app,
                             double size_gb) {
  mapreduce::JobSpec spec =
      app.benchmark == workloads::Benchmark::Terasort && size_gb > 0
          ? workloads::make_terasort(sim, gibibytes(size_gb))
          : workloads::make_job(sim, app.benchmark, app.corpus);
  spec.speculative_execution = g_speculative;
  spec.config.dfs_replication = g_dfs_replication;
  return spec;
}

void print_result(const char* label, const mapreduce::JobResult& r) {
  std::printf("%-14s exec=%8.1f s  maps=%zu reds=%zu  spilled=%.3fe9 "
              "(optimal %.3fe9)  mem-util m/r=%.0f%%/%.0f%%  "
              "cpu-util m/r=%.0f%%/%.0f%%  failed-attempts=%d\n",
              label, r.exec_time(), r.map_reports.size(),
              r.reduce_reports.size(),
              static_cast<double>(r.counters.map.spilled_records) / 1e9,
              static_cast<double>(r.counters.map.combine_output_records) /
                  1e9,
              100 * r.avg_util(mapreduce::TaskKind::Map, false),
              100 * r.avg_util(mapreduce::TaskKind::Reduce, false),
              100 * r.avg_util(mapreduce::TaskKind::Map, true),
              100 * r.avg_util(mapreduce::TaskKind::Reduce, true),
              r.counters.failed_task_attempts);
}

void print_config(const mapreduce::JobConfig& cfg) {
  const auto& reg = mapreduce::ParamRegistry::standard();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    std::printf("  %-48s = %g\n", reg.at(i).name.c_str(), reg.get(cfg, i));
  }
}

/// Offer one finished run to the report collector. `phase` ranks runs of
/// one invocation ("0" = aggressive test run, "1" = production), so the
/// exported file describes the production run with the greatest seed.
void record_report(
    mapreduce::Simulation& sim, const std::string& phase,
    const AppChoice& app, const std::string& strategy, std::uint64_t seed,
    std::vector<std::pair<const mapreduce::JobResult*,
                          const mapreduce::JobConfig*>> report_jobs) {
  if (g_obs.report_out.empty() || report_jobs.empty()) return;
  char seed_buf[32];
  std::snprintf(seed_buf, sizeof(seed_buf), "%020llu",
                static_cast<unsigned long long>(seed));
  const std::vector<std::pair<std::string, std::string>> meta = {
      {"app", workloads::benchmark_name(app.benchmark)},
      {"corpus", workloads::corpus_name(app.corpus)},
      {"strategy", strategy},
      {"run_seed", seed_buf},
  };
  g_reports.offer(
      mapreduce::run_report_key(phase, meta, *report_jobs.front().second),
      mapreduce::run_report_json(sim, report_jobs, meta), g_obs.report_out);
}

/// One "wrote F" note once the collector has exported something.
void note_report_written() {
  if (!g_obs.report_out.empty() && !g_reports.empty()) {
    std::fprintf(stderr, "wrote %s\n", g_obs.report_out.c_str());
  }
}

mapreduce::JobResult run_once(const AppChoice& app, double size_gb,
                              const mapreduce::JobConfig& cfg,
                              std::uint64_t seed, bool fair,
                              const std::string& strategy) {
  mapreduce::SimulationOptions opt;
  opt.seed = seed;
  opt.fair_scheduler = fair;
  apply_obs(opt);
  // A tuned dfs.replication (category I — settable only between runs)
  // flows into the production dataset's placement.
  opt.dfs_replication = static_cast<int>(cfg.dfs_replication);
  mapreduce::Simulation sim(opt);
  mapreduce::JobSpec spec = make_spec(sim, app, size_gb);
  spec.config = cfg;
  mapreduce::JobResult result = sim.run_job(std::move(spec));
  export_obs(sim);
  record_report(sim, /*phase=*/"1", app, strategy, seed, {{&result, &cfg}});
  return result;
}

}  // namespace

int run_cli(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.get("help", false)) {
    std::printf("usage: mron_cli --app=<terasort|wordcount|bigram|"
                "invertedindex|textsearch|bbp> [--corpus=wikipedia|freebase]"
                " [--size-gb=N] [--strategy=none|conservative|aggressive|"
                "offline] [--seed=N] [--runs=N] [--jobs=N] [--fair]"
                " [--show-config]"
                " [--log-level=trace|debug|info|warn|error]"
                " [--metrics-out[=F]] [--trace-out[=F]] [--audit-out[=F]]"
                " [--report-out[=F]] [--profile-out[=F]] [--progress]"
                " [--trace-detail] [--no-eval-cache]"
                " [--fault-plan=F] [--fault-spec='directives']"
                " [--speculative] [--cluster=SPEC]"
                " [--dfs-replication=N]"
                " [--dfs-policy=rack-aware|same-rack|spread]\n");
    return 0;
  }
  if (flags.get("list", false)) {
    std::printf("benchmarks (Table 3):\n");
    for (const auto& info : workloads::table3()) {
      std::printf("  %-14s %-10s %6.1f GB in, %6.1f GB shuffle, %d maps, "
                  "%d reducers (%s)\n",
                  info.name.c_str(), info.input_name.c_str(),
                  info.input_size.as_double() / 1e9,
                  info.shuffle_size.as_double() / 1e9, info.num_maps,
                  info.num_reduces, info.job_type.c_str());
    }
    return 0;
  }

  const AppChoice app = parse_app(flags.get("app", std::string("terasort")),
                                  flags.get("corpus", std::string("wikipedia")));
  const double size_gb = flags.get("size-gb", 20.0);
  const std::string strategy = flags.get("strategy", std::string("none"));
  const auto seed = static_cast<std::uint64_t>(flags.get("seed", 1));
  const int runs = flags.get("runs", 1);
  const int jobs = flags.get("jobs", 1);
  if (jobs < 1) {
    std::fprintf(stderr, "--jobs wants a positive integer\n");
    return 2;
  }
  mron::sim::ParallelRunner pool(jobs);
  const bool fair = flags.get("fair", false);
  const bool show_config = flags.get("show-config", false);
  const std::string log_level = flags.get("log-level", std::string(""));
  if (!log_level.empty()) {
    LogLevel level = LogLevel::Warn;
    if (!log_level_from_name(log_level, level)) {
      std::fprintf(stderr, "unknown --log-level=%s\n", log_level.c_str());
      return 2;
    }
    Logger::instance().set_level(level);
  }
  if (flags.has("metrics-out")) {
    g_obs.metrics_out =
        flags.get("metrics-out", std::string("mron_metrics.json"));
  }
  if (flags.has("trace-out")) {
    g_obs.trace_out = flags.get("trace-out", std::string("mron_trace.json"));
  }
  if (flags.has("audit-out")) {
    g_obs.audit_out =
        flags.get("audit-out", std::string("mron_audit.jsonl"));
  }
  if (flags.has("report-out")) {
    g_obs.report_out =
        flags.get("report-out", std::string("mron_report.json"));
  }
  if (flags.has("profile-out")) {
    g_obs.profile_out =
        flags.get("profile-out", std::string("host_profile.json"));
  }
  g_obs.progress = flags.get("progress", false);
  g_obs.trace_detail = flags.get("trace-detail", false);
  if (flags.get("no-eval-cache", false)) {
    tuner::set_eval_cache_enabled(false);
  }
  const std::string fault_plan_path =
      flags.get("fault-plan", std::string(""));
  const std::string fault_spec = flags.get("fault-spec", std::string(""));
  if (!fault_plan_path.empty() && !fault_spec.empty()) {
    std::fprintf(stderr, "--fault-plan and --fault-spec are exclusive\n");
    return 2;
  }
  if (!fault_plan_path.empty()) {
    g_fault_plan = faults::FaultPlan::load(fault_plan_path);
  } else if (!fault_spec.empty()) {
    g_fault_plan = faults::FaultPlan::parse(fault_spec);
  }
  g_speculative = flags.get("speculative", false);
  const std::string cluster_spec = flags.get("cluster", std::string(""));
  if (!cluster_spec.empty()) {
    g_cluster = cluster::load_cluster_spec(cluster_spec);
  }
  g_dfs_replication = flags.get("dfs-replication", 3);
  if (g_dfs_replication < 1) {
    std::fprintf(stderr, "--dfs-replication wants a positive integer\n");
    return 2;
  }
  g_dfs_policy = flags.get("dfs-policy", std::string(""));
  if (!g_dfs_policy.empty() && g_dfs_policy != "rack-aware" &&
      g_dfs_policy != "same-rack" && g_dfs_policy != "spread") {
    std::fprintf(stderr, "unknown --dfs-policy=%s\n", g_dfs_policy.c_str());
    return 2;
  }
  for (const auto& u : flags.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", u.c_str());
  }

  if (strategy == "none" || strategy == "offline") {
    mapreduce::JobConfig cfg;
    if (strategy == "offline") {
      mapreduce::SimulationOptions opt;
      opt.cluster = g_cluster;
      mapreduce::Simulation sim(opt);
      const mapreduce::JobSpec spec = make_spec(sim, app, size_gb);
      const int maps = spec.input.valid()
                           ? static_cast<int>(
                                 sim.dfs().dataset(spec.input).blocks.size())
                           : spec.num_maps_override;
      cfg = baselines::offline_guide_config(spec, sim.dfs().block_size(),
                                            maps);
    }
    if (show_config) print_config(cfg);
    // Each seeded run is an independent simulation; results print in run
    // order whatever finished first, so output is identical at any --jobs.
    const auto results = pool.map<mapreduce::JobResult>(
        static_cast<std::size_t>(runs), [&](std::size_t i) {
          return run_once(app, size_gb, cfg,
                          seed + static_cast<std::uint64_t>(i), fair,
                          strategy);
        });
    for (const auto& r : results) print_result(strategy.c_str(), r);
    note_report_written();
    return 0;
  }

  if (strategy == "conservative") {
    struct ConservativeRun {
      mapreduce::JobResult result;
      mapreduce::JobConfig best_config;
    };
    const auto results = pool.map<ConservativeRun>(
        static_cast<std::size_t>(runs), [&](std::size_t i) {
          mapreduce::SimulationOptions opt;
          opt.seed = seed + static_cast<std::uint64_t>(i);
          opt.fair_scheduler = fair;
          apply_obs(opt);
          mapreduce::Simulation sim(opt);
          tuner::TunerOptions topt;
          topt.strategy = tuner::TuningStrategy::Conservative;
          tuner::OnlineTuner online_tuner(topt);
          ConservativeRun out;
          auto& am = sim.submit_job(make_spec(sim, app, size_gb),
                                    [&](const mapreduce::JobResult& r) {
                                      out.result = r;
                                    });
          online_tuner.attach(am);
          sim.run();
          export_obs(sim);
          out.best_config = online_tuner.outcome(am.id()).best_config;
          record_report(sim, /*phase=*/"1", app, "conservative", opt.seed,
                        {{&out.result, &out.best_config}});
          return out;
        });
    for (const auto& run : results) {
      print_result("conservative", run.result);
      if (show_config) print_config(run.best_config);
    }
    note_report_written();
    return 0;
  }

  if (strategy == "aggressive") {
    mapreduce::SimulationOptions opt;
    opt.seed = seed;
    apply_obs(opt);
    mapreduce::Simulation sim(opt);
    tuner::OnlineTuner online_tuner{tuner::TunerOptions{}};
    mapreduce::JobResult test_result;
    auto& am = sim.submit_job(
        make_spec(sim, app, size_gb),
        [&](const mapreduce::JobResult& r) { test_result = r; });
    online_tuner.attach(am);
    sim.run();
    export_obs(sim);
    const auto& out = online_tuner.outcome(am.id());
    record_report(sim, /*phase=*/"0", app, "aggressive", seed,
                  {{&test_result, &out.best_config}});
    // The tuner's test run is the one worth inspecting — keep its artifacts
    // instead of letting the production runs below overwrite them. The run
    // report keeps flowing: phase "1" offers outrank the test run's, so it
    // ends up describing a production run (the Figure-7 comparison wants
    // tuned production vs default, not the gated test run).
    const std::string report_out = g_obs.report_out;
    const bool keep_progress = g_obs.progress;
    g_obs = ObsConfig{};
    g_obs.report_out = report_out;
    g_obs.progress = keep_progress;
    std::printf("test run: %.1f s, %d waves, %d configurations\n",
                test_result.exec_time(), out.waves, out.configs_tried);
    if (show_config) print_config(out.best_config);
    const auto results = pool.map<mapreduce::JobResult>(
        static_cast<std::size_t>(runs), [&](std::size_t i) {
          return run_once(app, size_gb, out.best_config,
                          seed + 1 + static_cast<std::uint64_t>(i), fair,
                          "aggressive");
        });
    for (const auto& r : results) print_result("aggressive", r);
    note_report_written();
    return 0;
  }

  std::fprintf(stderr, "unknown --strategy=%s\n", strategy.c_str());
  return 2;
}

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    // Bad export paths and the like surface as CheckError; a clean message
    // beats an abort for a command-line tool.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
