// The Table-1 dynamic-configuration API, driven directly.
//
// This example plays the role of an external tuning tool: it registers a
// running job with the dynamic configurator, inspects which parameters are
// configurable for queued vs. running tasks, and applies per-task and
// job-wide changes by parameter name while the job executes.
#include <cstdio>

#include "mapreduce/simulation.h"
#include "tuner/dynamic_configurator.h"
#include "workloads/benchmarks.h"

using namespace mron;

int main() {
  std::printf("== task-level dynamic configuration (Table 1 API) ==\n\n");

  mapreduce::SimulationOptions options;
  options.seed = 5;
  mapreduce::Simulation sim(options);
  mapreduce::JobSpec job = workloads::make_terasort(sim, gibibytes(4));
  auto& am = sim.submit_job(job);

  tuner::DynamicConfigurator configurator;
  configurator.register_job(&am);
  const mapreduce::JobId jid = am.id();

  std::printf("getConfigurableJobParameters(%lld):\n",
              static_cast<long long>(jid.value()));
  for (const auto& name : configurator.get_configurable_job_parameters(jid)) {
    const auto* p = mapreduce::ParamRegistry::standard().find(name);
    std::printf("  %-48s [%s]\n", name.c_str(),
                mapreduce::category_name(p->category));
  }

  // Give one specific queued map task a bigger sort buffer...
  const mapreduce::TaskRef task{mapreduce::TaskKind::Map, 9};
  int rc = configurator.set_task_parameters(
      jid, task,
      {{"mapreduce.task.io.sort.mb", "256"},
       {"mapreduce.map.memory.mb", "1536"}});
  std::printf("\nsetTaskParameters(map 9) -> %d\n", rc);

  // ...and, mid-run, push a live (category-III) change to everything.
  sim.engine().schedule_at(30.0, [&] {
    const int pushed = configurator.push_live_params(jid, [] {
      mapreduce::JobConfig cfg;
      cfg.sort_spill_percent = 0.99;
      return cfg;
    }());
    std::printf("t=30s: pushed sort.spill.percent=0.99 into %d running "
                "tasks\n", pushed);
    std::printf("getConfigurableTaskParameters(running map 0):\n");
    for (const auto& name : configurator.get_configurable_task_parameters(
             jid, {mapreduce::TaskKind::Map, 0})) {
      std::printf("  %s\n", name.c_str());
    }
  });

  bool saw_override = false;
  am.set_task_listener([&](const mapreduce::TaskReport& r) {
    if (r.task == task) {
      std::printf("\nmap 9 ran with io.sort.mb=%.0f in a %.0f MB container "
                  "(%.1fx fewer spilled records than siblings get by "
                  "default)\n",
                  r.config.io_sort_mb, r.config.map_memory_mb,
                  2.0 * static_cast<double>(r.counters.combine_output_records) /
                      static_cast<double>(r.counters.spilled_records));
      saw_override = true;
    }
  });

  sim.run();
  std::printf("\njob finished; override observed: %s\n",
              saw_override ? "yes" : "no");
  return 0;
}
