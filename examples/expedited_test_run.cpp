// Use case 1 (Section 2.3): expedited test runs.
//
// MRONLINE's aggressive strategy turns ONE test run into hundreds of
// configuration trials: tasks are launched in waves, each wave running a
// batch of LHS-sampled configurations, and the gray-box hill climber
// converges inside the single run. The discovered configuration is stored
// in the tuning knowledge base and reused for production runs.
#include <cstdio>

#include "mapreduce/simulation.h"
#include "tuner/online_tuner.h"
#include "workloads/benchmarks.h"

using namespace mron;

namespace {

double production_run(const mapreduce::JobConfig& cfg, std::uint64_t seed) {
  mapreduce::SimulationOptions options;
  options.seed = seed;
  mapreduce::Simulation sim(options);
  mapreduce::JobSpec job = workloads::make_terasort(sim, gibibytes(20));
  job.config = cfg;
  return sim.run_job(job).exec_time();
}

}  // namespace

int main() {
  std::printf("== expedited test run (aggressive tuning) ==\n\n");

  // --- the single instrumented test run --------------------------------------
  mapreduce::SimulationOptions options;
  options.seed = 7;
  mapreduce::Simulation sim(options);
  mapreduce::JobSpec job = workloads::make_terasort(sim, gibibytes(20));

  tuner::TunerOptions topt;
  topt.strategy = tuner::TuningStrategy::Aggressive;
  topt.climber.global_samples = 12;
  topt.climber.local_samples = 8;
  tuner::OnlineTuner online_tuner(topt);

  double test_run_secs = 0.0;
  auto& am = sim.submit_job(job, [&](const mapreduce::JobResult& r) {
    test_run_secs = r.exec_time();
  });
  online_tuner.attach(am);
  sim.run();

  const auto& outcome = online_tuner.outcome(am.id());
  std::printf("test run finished in %.0f s\n", test_run_secs);
  std::printf("  waves: %d, configurations sampled: %d\n", outcome.waves,
              outcome.configs_tried);
  std::printf("  map search converged: %s, reduce search converged: %s\n",
              outcome.map_converged ? "yes" : "out of tasks",
              outcome.reduce_converged ? "yes" : "out of tasks");
  std::printf("  (an offline tool like Gunther needs 20-40 whole runs for "
              "the same trial count)\n\n");

  // --- knowledge base --------------------------------------------------------
  std::printf("knowledge base now holds:\n%s\n",
              online_tuner.knowledge_base().serialize().c_str());

  // --- production: default vs. discovered config -----------------------------
  const double def = production_run(mapreduce::JobConfig{}, 11);
  const double tuned = production_run(outcome.best_config, 11);
  std::printf("production run, default config : %6.1f s\n", def);
  std::printf("production run, tuned config   : %6.1f s  (%.1f%% faster)\n",
              tuned, 100.0 * (def - tuned) / def);
  return 0;
}
