// Use case from Section 8.5: two applications sharing the cluster under the
// fair scheduler — I/O-heavy Terasort next to compute-hungry BBP.
//
// MRONLINE tunes each job independently: right-sized containers raise the
// cluster's effective concurrency, and BBP's CPU saturation earns it more
// vcores, relieving the hot spot.
#include <cstdio>
#include <vector>

#include "mapreduce/simulation.h"
#include "tuner/online_tuner.h"
#include "workloads/benchmarks.h"

using namespace mron;

namespace {

struct TenantResult {
  double terasort_secs = 0.0;
  double bbp_secs = 0.0;
  double terasort_mem_util = 0.0;
  double bbp_map_cpu_util = 0.0;
};

TenantResult run_pair(const mapreduce::JobConfig& terasort_cfg,
                      const mapreduce::JobConfig& bbp_cfg,
                      std::uint64_t seed) {
  mapreduce::SimulationOptions options;
  options.seed = seed;
  options.fair_scheduler = true;
  mapreduce::Simulation sim(options);

  mapreduce::JobSpec terasort = workloads::make_terasort(
      sim, gibibytes(20), /*num_reduces=*/40);
  terasort.config = terasort_cfg;
  mapreduce::JobSpec bbp = workloads::make_bbp(60);
  bbp.config = bbp_cfg;

  TenantResult out;
  sim.submit_job(terasort, [&](const mapreduce::JobResult& r) {
    out.terasort_secs = r.exec_time();
    out.terasort_mem_util = r.avg_util(mapreduce::TaskKind::Map, false);
  });
  sim.submit_job(bbp, [&](const mapreduce::JobResult& r) {
    out.bbp_secs = r.exec_time();
    out.bbp_map_cpu_util = r.avg_util(mapreduce::TaskKind::Map, true);
  });
  sim.run();
  return out;
}

}  // namespace

int main() {
  std::printf("== multi-tenant: Terasort + BBP on the fair scheduler ==\n\n");

  const TenantResult def =
      run_pair(mapreduce::JobConfig{}, mapreduce::JobConfig{}, 3);
  std::printf("default  : Terasort %6.1f s (map mem util %.0f%%), "
              "BBP %6.1f s (map cpu util %.0f%%)\n",
              def.terasort_secs, 100 * def.terasort_mem_util, def.bbp_secs,
              100 * def.bbp_map_cpu_util);

  // Derive per-job configurations with an aggressive tuning pass for each.
  auto tune = [](bool is_bbp) {
    mapreduce::SimulationOptions options;
    options.seed = is_bbp ? 21 : 22;
    mapreduce::Simulation sim(options);
    mapreduce::JobSpec job =
        is_bbp ? workloads::make_bbp(60)
               : workloads::make_terasort(sim, gibibytes(20), 40);
    tuner::TunerOptions topt;
    topt.climber.global_samples = 10;
    topt.climber.local_samples = 6;
    tuner::OnlineTuner online_tuner(topt);
    auto& am = sim.submit_job(job);
    online_tuner.attach(am);
    sim.run();
    return online_tuner.outcome(am.id()).best_config;
  };
  const mapreduce::JobConfig terasort_cfg = tune(false);
  const mapreduce::JobConfig bbp_cfg = tune(true);
  std::printf("\nMRONLINE gave BBP %.0f map vcore(s) and Terasort a "
              "%.0f MB map container\n",
              bbp_cfg.map_cpu_vcores, terasort_cfg.map_memory_mb);

  const TenantResult tuned = run_pair(terasort_cfg, bbp_cfg, 3);
  std::printf("\nMRONLINE : Terasort %6.1f s (map mem util %.0f%%), "
              "BBP %6.1f s (map cpu util %.0f%%)\n",
              tuned.terasort_secs, 100 * tuned.terasort_mem_util,
              tuned.bbp_secs, 100 * tuned.bbp_map_cpu_util);
  std::printf("\nimprovement: Terasort %.1f%%, BBP %.1f%%\n",
              100.0 * (def.terasort_secs - tuned.terasort_secs) /
                  def.terasort_secs,
              100.0 * (def.bbp_secs - tuned.bbp_secs) / def.bbp_secs);
  return 0;
}
