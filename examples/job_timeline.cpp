// Visualize a job's execution: phase summary, per-node ASCII swimlanes,
// and a CSV trace written next to the binary for external tooling.
//
//   ./build/examples/job_timeline [--gb=20] [--fail-node=3] [--csv=out.csv]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/flags.h"
#include "mapreduce/simulation.h"
#include "trace/timeline.h"
#include "workloads/benchmarks.h"

using namespace mron;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double gb = flags.get("gb", 20.0);
  const int fail_node = flags.get("fail-node", -1);
  const std::string csv_path = flags.get("csv", std::string());

  mapreduce::SimulationOptions opt;
  opt.seed = static_cast<std::uint64_t>(flags.get("seed", 11));
  mapreduce::Simulation sim(opt);
  mapreduce::JobSpec spec = workloads::make_terasort(sim, gibibytes(gb));
  mapreduce::JobResult result;
  sim.submit_job(std::move(spec),
                 [&](const mapreduce::JobResult& r) { result = r; });
  if (fail_node >= 0) {
    sim.engine().schedule_at(30.0, [&sim, fail_node] {
      std::printf("t=30s: failing node %d\n", fail_node);
      sim.rm().fail_node(cluster::NodeId(fail_node));
    });
  }
  sim.run();

  const trace::TimelineSummary s = trace::summarize(result);
  std::printf("Terasort %.0f GB: %.1f s total\n", gb, result.exec_time());
  std::printf("  map phase    %.1f .. %.1f s (avg task %.1f s, p95 %.1f s)\n",
              s.map_phase.start, s.map_phase.end, s.avg_map_secs,
              s.p95_map_secs);
  std::printf("  reduce phase %.1f .. %.1f s (avg task %.1f s, p95 %.1f s)\n",
              s.reduce_phase.start, s.reduce_phase.end, s.avg_reduce_secs,
              s.p95_reduce_secs);
  std::printf("  locality: %d node-local / %d rack / %d off-rack (%.0f%%)\n",
              s.node_local, s.rack_local, s.off_rack,
              100 * s.locality_fraction());
  std::printf("  failed attempts: %d\n\n", s.failed_attempts);

  std::cout << trace::render_swimlanes(result, sim.topology().num_nodes());

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    trace::write_task_csv(result, csv);
    std::printf("\nwrote per-attempt trace to %s\n", csv_path.c_str());
  }
  return 0;
}
