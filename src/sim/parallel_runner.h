// Work-stealing experiment runner: fan independent Simulations across cores.
//
// The simulator is strictly single-threaded *within* one experiment — that
// is what keeps a seeded run bit-reproducible (see DESIGN.md "Engine
// internals"). Throughput therefore comes from running many independent
// Simulation instances at once: repeat seeds, LHS candidates, bench sweep
// points, what-if probes. This runner owns a persistent pool of workers
// with per-worker deques; a batch deals its task indices round-robin across
// the deques, workers drain their own deque LIFO and steal FIFO from
// siblings when empty, and the submitting thread works alongside them.
//
// Determinism contract: results are delivered in task-index order, every
// task must carry its own RNG/recorder state (a Simulation does), and no
// task may touch shared mutable state. Under that contract the output is
// byte-identical for any `jobs` value, including 1.
//
// Re-entrancy: a runner whose pool is busy (nested call, or a call from one
// of its own workers) degrades to inline serial execution — same results,
// no deadlock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mron::sim {

class ParallelRunner {
 public:
  /// `jobs` <= 0 selects std::thread::hardware_concurrency(). jobs == 1
  /// never spawns a thread: every batch runs inline on the caller.
  explicit ParallelRunner(int jobs = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Run fn(0) ... fn(n-1), blocking until all complete. If any task threw,
  /// rethrows the exception of the lowest-index failed task (deterministic)
  /// after the whole batch has drained.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// for_each that collects return values in task-index order.
  template <typename R>
  std::vector<R> map(std::size_t n,
                     const std::function<R(std::size_t)>& fn) {
    std::vector<R> out(n);
    for_each(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Process-wide default for `--jobs`-style flags: 0 until set_default_jobs
  /// is called, where 0 means "decide locally" (usually 1 for benches).
  static void set_default_jobs(int jobs);
  [[nodiscard]] static int default_jobs();

 private:
  struct Batch {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t done = 0;
    std::exception_ptr error;
    std::size_t error_index = 0;
  };

  /// Pop one index for `worker` (own deque back, then steal from siblings'
  /// fronts). Returns false when no work is available right now.
  bool try_pop(std::size_t worker, std::size_t& index);
  void run_task(std::size_t index);
  void worker_loop(std::size_t worker);
  void run_serial(std::size_t n, const std::function<void(std::size_t)>& fn);

  int jobs_;
  std::vector<std::thread> threads_;
  std::vector<std::deque<std::size_t>> deques_;  // one per worker, 0 = caller
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable done_cv_;   // submitter waits for batch drain
  Batch batch_;
  bool busy_ = false;
  bool shutdown_ = false;
};

}  // namespace mron::sim
