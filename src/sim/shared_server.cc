#include "sim/shared_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/host_profile.h"
#include "obs/recorder.h"

namespace mron::sim {

namespace {
// Streams with less than this much work left are considered complete; guards
// against floating-point residue keeping a stream alive forever.
constexpr double kWorkEpsilon = 1e-9;
// A stream whose remaining time at its current rate is below this is also
// retired: otherwise the completion event can land at `now + dt` where dt is
// smaller than double resolution at `now`, time never advances, and the
// event re-fires forever.
constexpr double kTimeEpsilon = 1e-9;
}  // namespace

SharedServer::SharedServer(Engine& engine, double capacity, std::string name,
                           double concurrency_penalty)
    : engine_(engine),
      capacity_(capacity),
      base_capacity_(capacity),
      concurrency_penalty_(concurrency_penalty),
      name_(std::move(name)) {
  MRON_CHECK_MSG(capacity_ > 0.0, "server " << name_ << " capacity must be >0");
  MRON_CHECK(concurrency_penalty_ >= 0.0);
  last_update_ = engine_.now();
  if (auto* rec = engine_.recorder()) {
    busy_gauge_ = &rec->metrics().gauge("server." + name_ + ".busy_integral");
    streams_gauge_ =
        &rec->metrics().gauge("server." + name_ + ".active_streams");
    // Pull model: the per-event paths are the simulation's hottest, so the
    // gauges refresh once per sampling tick instead of per event.
    rec->add_flush_hook([this] {
      busy_gauge_->set(busy_integral());
      streams_gauge_->set(static_cast<double>(streams_.size()));
    });
  }
}

int SharedServer::find(StreamId id) const {
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

double SharedServer::rate_of(const Stream& s) const {
  switch (mode_) {
    case RateMode::kFlat:
      return flat_share_;
    case RateMode::kPerCap:
      return s.cap;
    case RateMode::kExplicit:
      return s.rate;
  }
  return s.rate;  // unreachable
}

void SharedServer::Agg::add(double remaining, double cap) {
  // Deliberately division-free: a divide per stream per pass costs more
  // than the whole rest of the visit, and the completion minimums that do
  // need one are computed in a dedicated scan only on the branches that
  // consume them.
  cap_sum += cap;  // inf-safe: stays inf once any stream is uncapped
  min_cap = std::min(min_cap, cap);
  min_rem = std::min(min_rem, remaining);
}

StreamId SharedServer::submit(double work, double cap, Done done) {
  MRON_CHECK_MSG(work >= 0.0, "negative work " << work);
  MRON_CHECK_MSG(cap > 0.0, "non-positive cap " << cap);
  MRON_CHECK(static_cast<bool>(done));
  if (activity_cb_) activity_cb_();
  // One fused pass: progress every stream to now and gather the allocation
  // aggregates, then fold the new stream in. The append keeps cap_sum's
  // accumulation order identical to a fresh front-to-back scan.
  Agg agg = advance_and_aggregate();
  const StreamId id = ids_.next();
  const double remaining = std::max(work, kWorkEpsilon);
  streams_.push_back(Stream{id, remaining, cap, 0.0, std::move(done)});
  agg.add(remaining, cap);
  alloc_dirty_ = true;
  reallocate(agg);
  return id;
}

void SharedServer::cancel(StreamId id) {
  const int i = find(id);
  if (i < 0) return;
  advance();
  streams_.erase(streams_.begin() + i);
  alloc_dirty_ = true;
  reallocate(aggregate_scan());
}

void SharedServer::set_cap(StreamId id, double cap) {
  MRON_CHECK(cap > 0.0);
  const int i = find(id);
  if (i < 0) return;
  advance();
  streams_[static_cast<std::size_t>(i)].cap = cap;
  alloc_dirty_ = true;
  reallocate(aggregate_scan());
}

void SharedServer::set_capacity_scale(double scale) {
  MRON_CHECK_MSG(scale > 0.0,
                 "server " << name_ << " capacity scale must be >0");
  const double scaled = base_capacity_ * scale;
  if (scaled == capacity_) return;
  advance();
  capacity_ = scaled;
  alloc_dirty_ = true;
  reallocate(aggregate_scan());
}

double SharedServer::remaining(StreamId id) const {
  const int i = find(id);
  if (i < 0) return 0.0;
  const auto& s = streams_[static_cast<std::size_t>(i)];
  // Account for progress since the last state change without mutating.
  const double dt = engine_.now() - last_update_;
  return std::max(0.0, s.remaining - rate_of(s) * dt);
}

double SharedServer::busy_integral() const {
  return busy_integral_ + total_rate_ * (engine_.now() - last_update_);
}

void SharedServer::advance() {
  const SimTime now = engine_.now();
  const double dt = now - last_update_;
  if (dt <= 0.0) {
    last_update_ = now;
    return;
  }
  for (auto& s : streams_) {
    s.remaining = std::max(0.0, s.remaining - rate_of(s) * dt);
  }
  busy_integral_ += total_rate_ * dt;
  last_update_ = now;
}

SharedServer::Agg SharedServer::advance_and_aggregate() {
  const SimTime now = engine_.now();
  const double dt = now - last_update_;
  Agg agg;
  if (dt <= 0.0) {
    for (const auto& s : streams_) {
      agg.add(s.remaining, s.cap);
    }
  } else {
    for (auto& s : streams_) {
      s.remaining = std::max(0.0, s.remaining - rate_of(s) * dt);
      agg.add(s.remaining, s.cap);
    }
    busy_integral_ += total_rate_ * dt;
  }
  last_update_ = now;
  return agg;
}

SharedServer::Agg SharedServer::aggregate_scan() const {
  Agg agg;
  for (const auto& s : streams_) {
    agg.add(s.remaining, s.cap);
  }
  return agg;
}

void SharedServer::recompute_rates(const Agg& agg) {
  const auto n = streams_.size();
  const double effective =
      capacity_ /
      (1.0 + concurrency_penalty_ * (static_cast<double>(n) - 1.0));

  // Fast path 1: a lone stream takes min(cap, capacity). Represented as
  // per-cap or flat share so no per-stream rate is written.
  if (n == 1) {
    if (streams_[0].cap <= effective) {
      mode_ = RateMode::kPerCap;
    } else {
      mode_ = RateMode::kFlat;
      flat_share_ = effective;
    }
    total_rate_ = std::min(streams_[0].cap, effective);
    return;
  }

  const double share = effective / static_cast<double>(n);

  // Fast path 2: total demand fits — everyone runs at cap. cap_sum was
  // accumulated in stream order from 0.0, the exact sum the legacy
  // rate-assignment loop produced for total_rate_.
  if (agg.cap_sum <= effective) {
    mode_ = RateMode::kPerCap;
    total_rate_ = agg.cap_sum;
    return;
  }

  // Fast path 3: no cap binds below the equal share — flat split.
  // (min_cap >= share) is exactly !any(cap < share).
  if (agg.min_cap >= share) {
    mode_ = RateMode::kFlat;
    flat_share_ = share;
    total_rate_ = share * static_cast<double>(n);
    return;
  }

  // General water-filling over reusable scratch (no allocation once the
  // scratch vector has grown to the server's high-water stream count). The
  // only shape that materializes per-stream rates.
  mode_ = RateMode::kExplicit;
  for (auto& s : streams_) s.rate = 0.0;
  auto& unsat = unsat_scratch_;
  unsat.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) unsat[i] = i;
  double remaining_capacity = effective;
  while (!unsat.empty() && remaining_capacity > 1e-12) {
    const double round_share =
        remaining_capacity / static_cast<double>(unsat.size());
    std::size_t kept = 0;
    bool any_capped = false;
    for (const std::uint32_t i : unsat) {
      Stream& s = streams_[i];
      if (s.cap - s.rate <= round_share) {
        remaining_capacity -= (s.cap - s.rate);
        s.rate = s.cap;
        any_capped = true;
      } else {
        unsat[kept++] = i;  // compact in place, order preserved
      }
    }
    unsat.resize(kept);
    if (!any_capped) {
      for (const std::uint32_t i : unsat) streams_[i].rate += round_share;
      remaining_capacity = 0.0;
      unsat.clear();
    }
  }

  total_rate_ = 0.0;
  for (const auto& s : streams_) total_rate_ += s.rate;
}

void SharedServer::reallocate(const Agg& agg) {
  // The completion event is always cancelled and rescheduled here — even
  // when the rates are provably unchanged — so that the engine sees the
  // exact event sequence the naive implementation produced (determinism).
  if (has_pending_event_) {
    engine_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (streams_.empty()) {
    total_rate_ = 0.0;
    return;
  }

  SimTime next_completion = std::numeric_limits<double>::infinity();
  if (alloc_dirty_) {
    recompute_rates(agg);
    alloc_dirty_ = false;
    // Flat split — the shape the loaded servers live in — needs exactly
    // one division: with every rate equal to `share`, IEEE division is
    // monotone in the numerator, so min(rem) / share IS min(rem / share)
    // bit for bit. The other shapes pay a dedicated scan whose per-element
    // divisions use the same operands the legacy post-recompute scan did.
    switch (mode_) {
      case RateMode::kFlat:
        next_completion = agg.min_rem / flat_share_;
        break;
      case RateMode::kPerCap:
        for (const auto& s : streams_) {
          next_completion = std::min(next_completion, s.remaining / s.cap);
        }
        break;
      case RateMode::kExplicit:
        for (const auto& s : streams_) {
          if (s.rate > 0.0) {
            next_completion = std::min(next_completion, s.remaining / s.rate);
          }
        }
        break;
    }
  } else {
    // Rates unchanged since the last pass (a completion event that retired
    // nothing): same scan the legacy implementation ran.
    for (const auto& s : streams_) {
      const double rate = rate_of(s);
      if (rate > 0.0) {
        next_completion = std::min(next_completion, s.remaining / rate);
      }
    }
  }
  MRON_CHECK_MSG(std::isfinite(next_completion),
                 "server " << name_ << " stalled with " << streams_.size()
                           << " streams and zero rate");
  // Completion events are the server's own bookkeeping, not the submitting
  // task's: override whatever category the caller's context carries.
  HOST_PROF_CATEGORY(kSharedServer);
  pending_event_ = engine_.schedule_after(next_completion,
                                          [this] { on_completion(); });
  has_pending_event_ = true;
}

void SharedServer::on_completion() {
  has_pending_event_ = false;
  const SimTime now = engine_.now();
  const double dt = now - last_update_;
  // The retirement threshold must exceed double-precision resolution at the
  // current timestamp or time stops advancing for near-finished streams.
  const double time_eps = std::max(kTimeEpsilon, now * 1e-12);
  // One fused pass: progress each stream to now, partition the finished
  // streams out (callbacks fire after the server is consistent again,
  // survivors keep their arrival order), and gather the allocation
  // aggregates over the survivors. dt can be exactly zero when another
  // event already advanced this server at the current timestamp;
  // remaining - rate*0 reproduces remaining bit for bit, so one loop
  // covers both cases.
  // Member scratch: a completion fires on almost every event on a loaded
  // server, and a fresh vector here would be a malloc/free per event. Safe
  // to reuse because on_completion never re-enters itself — done callbacks
  // may submit or cancel streams, but completions only run from the engine
  // event loop.
  std::vector<Done>& finished = finished_scratch_;
  finished.clear();
  std::size_t kept = 0;
  Agg agg;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    Stream& s = streams_[i];
    const double rate = rate_of(s);
    s.remaining = std::max(0.0, s.remaining - rate * dt);
    if (s.remaining <= kWorkEpsilon + rate * time_eps) {
      finished.push_back(std::move(s.done));
    } else {
      if (kept != i) streams_[kept] = std::move(s);
      agg.add(streams_[kept].remaining, streams_[kept].cap);
      ++kept;
    }
  }
  if (dt > 0.0) busy_integral_ += total_rate_ * dt;
  last_update_ = now;
  if (kept != streams_.size()) {
    streams_.resize(kept);
    alloc_dirty_ = true;
  }
  reallocate(agg);
  // Callbacks run after the server is in a consistent state; they may submit
  // new streams re-entrantly.
  for (auto& done : finished) done();
  finished.clear();
}

}  // namespace mron::sim
