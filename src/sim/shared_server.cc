#include "sim/shared_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/recorder.h"

namespace mron::sim {

namespace {
// Streams with less than this much work left are considered complete; guards
// against floating-point residue keeping a stream alive forever.
constexpr double kWorkEpsilon = 1e-9;
// A stream whose remaining time at its current rate is below this is also
// retired: otherwise the completion event can land at `now + dt` where dt is
// smaller than double resolution at `now`, time never advances, and the
// event re-fires forever.
constexpr double kTimeEpsilon = 1e-9;
}  // namespace

SharedServer::SharedServer(Engine& engine, double capacity, std::string name,
                           double concurrency_penalty)
    : engine_(engine),
      capacity_(capacity),
      base_capacity_(capacity),
      concurrency_penalty_(concurrency_penalty),
      name_(std::move(name)) {
  MRON_CHECK_MSG(capacity_ > 0.0, "server " << name_ << " capacity must be >0");
  MRON_CHECK(concurrency_penalty_ >= 0.0);
  last_update_ = engine_.now();
  if (auto* rec = engine_.recorder()) {
    busy_gauge_ = &rec->metrics().gauge("server." + name_ + ".busy_integral");
    streams_gauge_ =
        &rec->metrics().gauge("server." + name_ + ".active_streams");
    // Pull model: advance()/reallocate() are the simulation's hottest paths,
    // so the gauges refresh once per sampling tick instead of per event.
    rec->add_flush_hook([this] {
      busy_gauge_->set(busy_integral());
      streams_gauge_->set(static_cast<double>(streams_.size()));
    });
  }
}

int SharedServer::find(StreamId id) const {
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

StreamId SharedServer::submit(double work, double cap, Done done) {
  MRON_CHECK_MSG(work >= 0.0, "negative work " << work);
  MRON_CHECK_MSG(cap > 0.0, "non-positive cap " << cap);
  MRON_CHECK(static_cast<bool>(done));
  advance();
  const StreamId id = ids_.next();
  streams_.push_back(Stream{id, std::max(work, kWorkEpsilon), cap, 0.0,
                            std::move(done)});
  alloc_dirty_ = true;
  reallocate();
  return id;
}

void SharedServer::cancel(StreamId id) {
  const int i = find(id);
  if (i < 0) return;
  advance();
  streams_.erase(streams_.begin() + i);
  alloc_dirty_ = true;
  reallocate();
}

void SharedServer::set_cap(StreamId id, double cap) {
  MRON_CHECK(cap > 0.0);
  const int i = find(id);
  if (i < 0) return;
  advance();
  streams_[static_cast<std::size_t>(i)].cap = cap;
  alloc_dirty_ = true;
  reallocate();
}

void SharedServer::set_capacity_scale(double scale) {
  MRON_CHECK_MSG(scale > 0.0,
                 "server " << name_ << " capacity scale must be >0");
  const double scaled = base_capacity_ * scale;
  if (scaled == capacity_) return;
  advance();
  capacity_ = scaled;
  alloc_dirty_ = true;
  reallocate();
}

double SharedServer::remaining(StreamId id) const {
  const int i = find(id);
  if (i < 0) return 0.0;
  const auto& s = streams_[static_cast<std::size_t>(i)];
  // Account for progress since the last state change without mutating.
  const double dt = engine_.now() - last_update_;
  return std::max(0.0, s.remaining - s.rate * dt);
}

double SharedServer::busy_integral() const {
  return busy_integral_ + total_rate_ * (engine_.now() - last_update_);
}

void SharedServer::advance() {
  const SimTime now = engine_.now();
  const double dt = now - last_update_;
  if (dt <= 0.0) {
    last_update_ = now;
    return;
  }
  for (auto& s : streams_) {
    s.remaining = std::max(0.0, s.remaining - s.rate * dt);
  }
  busy_integral_ += total_rate_ * dt;
  last_update_ = now;
}

void SharedServer::recompute_rates() {
  const auto n = streams_.size();
  const double effective =
      capacity_ /
      (1.0 + concurrency_penalty_ * (static_cast<double>(n) - 1.0));

  // Fast path 1: a lone stream takes min(cap, capacity).
  if (n == 1) {
    streams_[0].rate = std::min(streams_[0].cap, effective);
    total_rate_ = streams_[0].rate;
    return;
  }

  // One scan classifies the common shapes.
  const double share = effective / static_cast<double>(n);
  double cap_sum = 0.0;
  bool any_below_share = false;
  for (const auto& s : streams_) {
    cap_sum += s.cap;  // inf-safe: stays inf once any stream is uncapped
    if (s.cap < share) any_below_share = true;
  }

  // Fast path 2: total demand fits — everyone runs at cap.
  if (cap_sum <= effective) {
    total_rate_ = 0.0;
    for (auto& s : streams_) {
      s.rate = s.cap;
      total_rate_ += s.rate;
    }
    return;
  }

  // Fast path 3: no cap binds below the equal share — flat split.
  if (!any_below_share) {
    for (auto& s : streams_) s.rate = share;
    total_rate_ = share * static_cast<double>(n);
    return;
  }

  // General water-filling over reusable scratch (no allocation once the
  // scratch vector has grown to the server's high-water stream count).
  for (auto& s : streams_) s.rate = 0.0;
  auto& unsat = unsat_scratch_;
  unsat.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) unsat[i] = i;
  double remaining_capacity = effective;
  while (!unsat.empty() && remaining_capacity > 1e-12) {
    const double round_share =
        remaining_capacity / static_cast<double>(unsat.size());
    std::size_t kept = 0;
    bool any_capped = false;
    for (const std::uint32_t i : unsat) {
      Stream& s = streams_[i];
      if (s.cap - s.rate <= round_share) {
        remaining_capacity -= (s.cap - s.rate);
        s.rate = s.cap;
        any_capped = true;
      } else {
        unsat[kept++] = i;  // compact in place, order preserved
      }
    }
    unsat.resize(kept);
    if (!any_capped) {
      for (const std::uint32_t i : unsat) streams_[i].rate += round_share;
      remaining_capacity = 0.0;
      unsat.clear();
    }
  }

  total_rate_ = 0.0;
  for (const auto& s : streams_) total_rate_ += s.rate;
}

void SharedServer::reallocate() {
  // The completion event is always cancelled and rescheduled here — even
  // when the rates are provably unchanged — so that the engine sees the
  // exact event sequence the naive implementation produced (determinism).
  if (has_pending_event_) {
    engine_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (streams_.empty()) {
    total_rate_ = 0.0;
    return;
  }

  if (alloc_dirty_) {
    recompute_rates();
    alloc_dirty_ = false;
  }

  SimTime next_completion = std::numeric_limits<double>::infinity();
  for (const auto& s : streams_) {
    if (s.rate > 0.0) {
      next_completion = std::min(next_completion, s.remaining / s.rate);
    }
  }
  MRON_CHECK_MSG(std::isfinite(next_completion),
                 "server " << name_ << " stalled with " << streams_.size()
                           << " streams and zero rate");
  pending_event_ = engine_.schedule_after(next_completion,
                                          [this] { on_completion(); });
  has_pending_event_ = true;
}

void SharedServer::on_completion() {
  has_pending_event_ = false;
  advance();
  // The retirement threshold must exceed double-precision resolution at the
  // current timestamp or time stops advancing for near-finished streams.
  const double time_eps =
      std::max(kTimeEpsilon, engine_.now() * 1e-12);
  // Partition finished streams out, preserving the arrival order of the
  // survivors; callbacks fire after the server is consistent again.
  std::vector<Done> finished;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    Stream& s = streams_[i];
    if (s.remaining <= kWorkEpsilon + s.rate * time_eps) {
      finished.push_back(std::move(s.done));
    } else {
      if (kept != i) streams_[kept] = std::move(s);
      ++kept;
    }
  }
  if (kept != streams_.size()) {
    streams_.resize(kept);
    alloc_dirty_ = true;
  }
  reallocate();
  // Callbacks run after the server is in a consistent state; they may submit
  // new streams re-entrantly.
  for (auto& done : finished) done();
}

}  // namespace mron::sim
