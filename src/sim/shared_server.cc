#include "sim/shared_server.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "obs/recorder.h"

namespace mron::sim {

namespace {
// Streams with less than this much work left are considered complete; guards
// against floating-point residue keeping a stream alive forever.
constexpr double kWorkEpsilon = 1e-9;
// A stream whose remaining time at its current rate is below this is also
// retired: otherwise the completion event can land at `now + dt` where dt is
// smaller than double resolution at `now`, time never advances, and the
// event re-fires forever.
constexpr double kTimeEpsilon = 1e-9;
}  // namespace

SharedServer::SharedServer(Engine& engine, double capacity, std::string name,
                           double concurrency_penalty)
    : engine_(engine),
      capacity_(capacity),
      concurrency_penalty_(concurrency_penalty),
      name_(std::move(name)) {
  MRON_CHECK_MSG(capacity_ > 0.0, "server " << name_ << " capacity must be >0");
  MRON_CHECK(concurrency_penalty_ >= 0.0);
  last_update_ = engine_.now();
  if (auto* rec = engine_.recorder()) {
    busy_gauge_ = &rec->metrics().gauge("server." + name_ + ".busy_integral");
    streams_gauge_ =
        &rec->metrics().gauge("server." + name_ + ".active_streams");
    // Pull model: advance()/reallocate() are the simulation's hottest paths,
    // so the gauges refresh once per sampling tick instead of per event.
    rec->add_flush_hook([this] {
      busy_gauge_->set(busy_integral());
      streams_gauge_->set(static_cast<double>(streams_.size()));
    });
  }
}

StreamId SharedServer::submit(double work, double cap, Done done) {
  MRON_CHECK_MSG(work >= 0.0, "negative work " << work);
  MRON_CHECK_MSG(cap > 0.0, "non-positive cap " << cap);
  MRON_CHECK(done != nullptr);
  advance();
  const StreamId id = ids_.next();
  streams_.emplace(id, Stream{std::max(work, kWorkEpsilon), cap, 0.0,
                              std::move(done)});
  reallocate();
  return id;
}

void SharedServer::cancel(StreamId id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) return;
  advance();
  streams_.erase(it);
  reallocate();
}

void SharedServer::set_cap(StreamId id, double cap) {
  MRON_CHECK(cap > 0.0);
  auto it = streams_.find(id);
  if (it == streams_.end()) return;
  advance();
  it->second.cap = cap;
  reallocate();
}

double SharedServer::remaining(StreamId id) const {
  auto it = streams_.find(id);
  if (it == streams_.end()) return 0.0;
  // Account for progress since the last state change without mutating.
  const double dt = engine_.now() - last_update_;
  return std::max(0.0, it->second.remaining - it->second.rate * dt);
}

double SharedServer::busy_integral() const {
  return busy_integral_ + total_rate_ * (engine_.now() - last_update_);
}

void SharedServer::advance() {
  const SimTime now = engine_.now();
  const double dt = now - last_update_;
  if (dt <= 0.0) {
    last_update_ = now;
    return;
  }
  for (auto& [id, s] : streams_) {
    s.remaining = std::max(0.0, s.remaining - s.rate * dt);
  }
  busy_integral_ += total_rate_ * dt;
  last_update_ = now;
}

void SharedServer::reallocate() {
  if (has_pending_event_) {
    engine_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  total_rate_ = 0.0;
  if (streams_.empty()) return;

  // Water-filling: equal shares, respecting per-stream caps.
  std::vector<Stream*> unsat;
  unsat.reserve(streams_.size());
  for (auto& [id, s] : streams_) {
    s.rate = 0.0;
    unsat.push_back(&s);
  }
  double remaining_capacity =
      capacity_ /
      (1.0 + concurrency_penalty_ *
                 (static_cast<double>(streams_.size()) - 1.0));
  while (!unsat.empty() && remaining_capacity > 1e-12) {
    const double share = remaining_capacity / static_cast<double>(unsat.size());
    std::vector<Stream*> still_unsat;
    bool any_capped = false;
    for (Stream* s : unsat) {
      if (s->cap - s->rate <= share) {
        remaining_capacity -= (s->cap - s->rate);
        s->rate = s->cap;
        any_capped = true;
      } else {
        still_unsat.push_back(s);
      }
    }
    if (!any_capped) {
      for (Stream* s : still_unsat) {
        s->rate += share;
      }
      remaining_capacity = 0.0;
      still_unsat.clear();
    }
    unsat = std::move(still_unsat);
  }

  SimTime next_completion = std::numeric_limits<double>::infinity();
  for (auto& [id, s] : streams_) {
    total_rate_ += s.rate;
    if (s.rate > 0.0) {
      next_completion =
          std::min(next_completion, s.remaining / s.rate);
    }
  }
  MRON_CHECK_MSG(std::isfinite(next_completion),
                 "server " << name_ << " stalled with " << streams_.size()
                           << " streams and zero rate");
  pending_event_ = engine_.schedule_after(next_completion,
                                          [this] { on_completion(); });
  has_pending_event_ = true;
}

void SharedServer::on_completion() {
  has_pending_event_ = false;
  advance();
  // The retirement threshold must exceed double-precision resolution at the
  // current timestamp or time stops advancing for near-finished streams.
  const double time_eps =
      std::max(kTimeEpsilon, engine_.now() * 1e-12);
  std::vector<Done> finished;
  for (auto it = streams_.begin(); it != streams_.end();) {
    if (it->second.remaining <= kWorkEpsilon + it->second.rate * time_eps) {
      finished.push_back(std::move(it->second.done));
      it = streams_.erase(it);
    } else {
      ++it;
    }
  }
  reallocate();
  // Callbacks run after the server is in a consistent state; they may submit
  // new streams re-entrantly.
  for (auto& done : finished) done();
}

}  // namespace mron::sim
