// Small-buffer-optimized, move-only callback for the simulation hot path.
//
// The engine schedules hundreds of thousands of events per simulated job,
// and nearly every callback is a lambda capturing a `this` pointer plus a
// few scalars. std::function's inline buffer (two words on libstdc++) is
// too small for most of them, so the seed engine paid one heap
// allocation/deallocation per event. This type keeps a 48-byte inline
// buffer — enough for every callback the simulator creates today — and
// only falls back to the heap for larger captures. Being move-only it also
// accepts non-copyable captures (e.g. std::unique_ptr), which
// std::function cannot hold at all.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mron::sim {

class Callback {
 public:
  /// Inline capture budget. Callables larger than this are heap-allocated.
  static constexpr std::size_t kInlineSize = 48;

  Callback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule/submit call site.
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &heap_ops<D>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct into `dst` from `src`, leaving `src` destroyed.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); }};

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* dst, void* src) {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* s) { delete *std::launder(reinterpret_cast<D**>(s)); }};

  void move_from(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

}  // namespace mron::sim
