// Capacity-capped processor-sharing server.
//
// Models a contended resource (disk, network link, node CPU) that divides a
// fixed capacity fairly among concurrent streams, where each stream may also
// be individually capped (e.g. a task limited to its allocated vcores).
// Allocation follows water-filling: capacity is split equally, streams whose
// cap is below their equal share keep their cap, and the surplus is
// redistributed among the rest.
//
// Work is a scalar in resource-specific units: bytes for disks and links,
// core-seconds for CPU.
//
// Internals (see DESIGN.md "Engine internals"): streams live in a flat
// insertion-ordered table instead of a node-based map, and the allocation
// is represented as a *mode* — flat equal split, everyone-at-cap, or
// explicit water-filled rates — so the common shapes are classified and
// applied in O(1) from aggregates (cap sum, min cap, min remaining)
// gathered in the same single pass that progresses the streams. A submit
// or completion on a server with k streams costs one fused scan, not the
// four or five (advance, classify, assign, min-completion, partition) the
// naive implementation pays; only true water-filling materializes
// per-stream rates over reusable scratch storage, and rates are recomputed
// only when the binding set — stream membership or caps — actually
// changed. The completion event is still cancelled and rescheduled on
// exactly the same occasions as before, so the engine-level event ordering
// (and with it every seeded experiment) is bit-identical to the
// straightforward implementation.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/strong_id.h"
#include "sim/engine.h"

namespace mron::obs {
class Gauge;
}  // namespace mron::obs

namespace mron::sim {

struct StreamTag {};
using StreamId = StrongId<StreamTag>;

class SharedServer {
 public:
  using Done = Callback;

  static constexpr double kUncapped = std::numeric_limits<double>::infinity();

  /// `capacity` is in work-units per simulated second and must be positive.
  /// `concurrency_penalty` models efficiency loss under concurrent streams
  /// (e.g. disk seek thrashing): the effective capacity becomes
  /// capacity / (1 + penalty * (n - 1)) for n active streams.
  SharedServer(Engine& engine, double capacity, std::string name,
               double concurrency_penalty = 0.0);

  SharedServer(const SharedServer&) = delete;
  SharedServer& operator=(const SharedServer&) = delete;

  /// Submit `work` units; `cap` limits this stream's rate. `done` fires when
  /// the stream completes. Zero-work streams complete via a 0-delay event so
  /// callers observe uniform asynchronous behaviour.
  StreamId submit(double work, double cap, Done done);
  StreamId submit(double work, Done done) {
    return submit(work, kUncapped, std::move(done));
  }

  /// Abort a stream; its `done` never fires. No-op if already finished.
  void cancel(StreamId id);
  /// Change a live stream's rate cap (e.g. container resize).
  void set_cap(StreamId id, double cap);
  /// Remaining work of a live stream, or 0 when finished/unknown.
  [[nodiscard]] double remaining(StreamId id) const;

  [[nodiscard]] std::size_t active() const { return streams_.size(); }
  [[nodiscard]] double capacity() const { return capacity_; }

  /// Rescale the capacity relative to its construction-time value (fault
  /// injection: a degraded disk/NIC, or a crashed node's hardware going
  /// dark). Live streams keep their progress; rates and the completion
  /// event are recomputed under the new capacity. `scale` must be > 0.
  void set_capacity_scale(double scale);
  [[nodiscard]] double capacity_scale() const {
    return capacity_ / base_capacity_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Integral of (allocated rate) dt since construction, i.e. total work
  /// served. utilization over [t0,t1] = delta(busy_integral)/(capacity*(t1-t0)).
  [[nodiscard]] double busy_integral() const;
  /// Instantaneous total allocated rate.
  [[nodiscard]] double current_rate() const { return total_rate_; }

  /// Hook fired on every submit() — the only way this server can leave the
  /// idle state. The cluster monitor's dirty-set sampler listens here so
  /// that idle servers cost it nothing per tick. Must be O(1) and
  /// idempotent; at most one callback.
  void set_activity_callback(Callback cb) { activity_cb_ = std::move(cb); }

 private:
  struct Stream {
    StreamId id;
    double remaining;
    double cap;
    double rate = 0.0;  // authoritative only in RateMode::kExplicit
    Done done;
  };

  /// How the current allocation is represented. The common shapes (flat
  /// equal split, everyone at cap) are a single scalar, so recomputing them
  /// after every submit/completion writes no per-stream state — the loops
  /// that made every event O(active streams) several times over collapse
  /// into one fused pass. Only true water-filling materializes per-stream
  /// rates.
  enum class RateMode : std::uint8_t {
    kExplicit,  ///< Stream::rate holds each stream's allocation
    kFlat,      ///< every stream runs at flat_share_
    kPerCap,    ///< every stream runs at its own cap
  };

  /// Allocation aggregates gathered in the same pass that progresses the
  /// streams: everything reallocate() needs to classify the next shape and
  /// schedule the next completion without re-scanning.
  struct Agg {
    double cap_sum = 0.0;  ///< in stream order from 0.0 (FP determinism)
    double min_cap = std::numeric_limits<double>::infinity();
    double min_rem = std::numeric_limits<double>::infinity();
    void add(double remaining, double cap);
  };

  /// Index into streams_ of the live stream `id`, or -1. Only the cold
  /// paths (cancel, set_cap, remaining) resolve ids, so a linear scan beats
  /// any index structure.
  [[nodiscard]] int find(StreamId id) const;

  /// The stream's current allocation under mode_.
  [[nodiscard]] double rate_of(const Stream& s) const;

  /// Progress all streams from last_update_ to now.
  void advance();
  /// advance() fused with the aggregate gathering — the hot paths' single
  /// pass over the stream table.
  Agg advance_and_aggregate();
  /// Aggregates at the current instant, no progression (for the cold
  /// mutators, which advance() separately).
  [[nodiscard]] Agg aggregate_scan() const;
  /// Refresh the allocation (when the binding set changed since the last
  /// pass) and reschedule the next completion event.
  void reallocate(const Agg& agg);
  /// Classify the allocation shape from the aggregates; O(1) except true
  /// water-filling, which writes Stream::rate.
  void recompute_rates(const Agg& agg);
  /// Completion event body: retire all streams that have drained.
  void on_completion();

  Engine& engine_;
  double capacity_;
  double base_capacity_;  ///< construction-time capacity, scale reference
  double concurrency_penalty_;
  std::string name_;
  IdAllocator<StreamId> ids_;
  /// Insertion-ordered (ids are issued in ascending order, so this matches
  /// the id-ordered iteration of the seed's std::map — determinism).
  std::vector<Stream> streams_;
  /// Set when membership or caps changed, i.e. the current rates are stale.
  bool alloc_dirty_ = false;
  RateMode mode_ = RateMode::kExplicit;
  double flat_share_ = 0.0;  ///< every stream's rate while mode_ == kFlat
  /// Scratch for recompute_rates(); member so the hot path never allocates.
  std::vector<std::uint32_t> unsat_scratch_;
  /// Scratch for on_completion()'s finished-callback batch, same reason.
  std::vector<Done> finished_scratch_;
  SimTime last_update_ = 0.0;
  double busy_integral_ = 0.0;
  double total_rate_ = 0.0;
  EventId pending_event_;
  bool has_pending_event_ = false;
  Callback activity_cb_;  ///< see set_activity_callback()
  // Flight-recorder handles, resolved once at construction when a recorder
  // is attached to the engine; null otherwise.
  obs::Gauge* busy_gauge_ = nullptr;
  obs::Gauge* streams_gauge_ = nullptr;
};

}  // namespace mron::sim
