#include "sim/parallel_runner.h"

#include <algorithm>
#include <atomic>

namespace mron::sim {

namespace {
std::atomic<int> g_default_jobs{0};
}  // namespace

void ParallelRunner::set_default_jobs(int jobs) { g_default_jobs = jobs; }

int ParallelRunner::default_jobs() { return g_default_jobs; }

ParallelRunner::ParallelRunner(int jobs) {
  if (jobs <= 0) {
    jobs = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  jobs_ = jobs;
  deques_.resize(static_cast<std::size_t>(jobs_));
  // Worker 0 is the submitting thread; only jobs-1 threads are spawned, and
  // jobs == 1 runs everything inline with no pool at all.
  threads_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int w = 1; w < jobs_; ++w) {
    threads_.emplace_back(
        [this, w] { worker_loop(static_cast<std::size_t>(w)); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ParallelRunner::run_serial(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

void ParallelRunner::for_each(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ == 1) {
    run_serial(n, fn);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (busy_) {
      // Nested call (from a task of this runner) or a concurrent submitter:
      // degrade to inline execution — identical results, no deadlock.
      lock.unlock();
      run_serial(n, fn);
      return;
    }
    busy_ = true;
    batch_ = Batch{};
    batch_.n = n;
    batch_.fn = &fn;
    // Deal indices round-robin so every worker starts with local work.
    for (std::size_t i = 0; i < n; ++i) {
      deques_[i % static_cast<std::size_t>(jobs_)].push_back(i);
    }
  }
  work_cv_.notify_all();

  // The submitter works the batch too (as worker 0).
  std::size_t index = 0;
  while (try_pop(0, index)) run_task(index);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return batch_.done == batch_.n; });
  const std::exception_ptr error = batch_.error;
  batch_ = Batch{};
  busy_ = false;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

bool ParallelRunner::try_pop(std::size_t worker, std::size_t& index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!busy_) return false;
  auto& own = deques_[worker];
  if (!own.empty()) {
    index = own.back();  // LIFO on the local deque: cache-warm tail first
    own.pop_back();
    return true;
  }
  for (std::size_t k = 1; k < deques_.size(); ++k) {
    auto& victim = deques_[(worker + k) % deques_.size()];
    if (!victim.empty()) {
      index = victim.front();  // FIFO steal from the far end
      victim.pop_front();
      return true;
    }
  }
  return false;
}

void ParallelRunner::run_task(std::size_t index) {
  std::exception_ptr error;
  try {
    (*batch_.fn)(index);
  } catch (...) {
    error = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (error && (!batch_.error || index < batch_.error_index)) {
    batch_.error = error;
    batch_.error_index = index;
  }
  if (++batch_.done == batch_.n) done_cv_.notify_all();
}

void ParallelRunner::worker_loop(std::size_t worker) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, worker] {
        if (shutdown_) return true;
        if (!busy_) return false;
        for (const auto& d : deques_) {
          if (!d.empty()) return true;
        }
        return false;
      });
      if (shutdown_) return;
    }
    std::size_t index = 0;
    while (try_pop(worker, index)) run_task(index);
  }
}

}  // namespace mron::sim
