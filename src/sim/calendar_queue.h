// Calendar-queue event scheduler: O(1) amortized push/pop under the dense
// event populations a 10,000-node simulated cluster generates, where a
// binary heap pays O(log n) comparisons plus a cache miss per level.
//
// Structure is the classic two-tier calendar (Brown's calendar queue) with
// a far-future overflow tier instead of year wrap-around:
//
//   - An array of `num_buckets()` (always a power of two) buckets, each
//     covering a `width()`-wide window of simulated time; bucket b holds
//     entries with time in [start + b*width, start + (b+1)*width).
//   - Entries beyond the calendar's span wait in an unsorted `overflow_`
//     ladder rung. When the calendar drains, the queue re-anchors itself at
//     the overflow's minimum and redistributes — so far-future timers (node
//     crash injections hours out, retry backoffs) cost O(1) to park and are
//     only organized once they matter.
//
// Buckets keep entries sorted ascending by (time, seq) past a consumed-head
// index: the common push (newest entry has the largest key in its bucket)
// is an O(1) append, and pop_min is an O(1) head advance. Because buckets
// partition time and `cur_` never overtakes the minimum, the head of the
// first nonempty bucket *is* the global minimum — dispatch order is
// byte-identical to a binary heap's (the engine's equivalence suite pins
// this).
//
// Bucket count tracks the population (grow above 2x buckets, shrink below a
// quarter) and bucket width is re-estimated at every rebuild from the
// observed inter-event spacing of a bounded sample, so the calendar stays
// near O(1) entries per bucket whether events are microseconds or minutes
// apart. Everything is deterministic: no wall clock, no randomness — the
// same push/pop/remove sequence always yields the same state, which is what
// keeps seeded simulations reproducible.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace mron::sim {

/// One pending event: 24 bytes of plain data. `(time, seq)` is the total
/// dispatch order; `(slot, gen)` locates the callback in the engine's slot
/// map and detects staleness after an O(1) cancel.
struct EventEntry {
  SimTime time;
  std::int64_t seq;
  std::uint32_t slot;
  std::uint32_t gen;

  bool operator<(const EventEntry& other) const {
    if (time != other.time) return time < other.time;
    return seq < other.seq;
  }
  bool operator>(const EventEntry& other) const { return other < *this; }
};

class CalendarQueue {
 public:
  CalendarQueue();

  /// Insert `e`. `now` is the engine clock at push time; the queue uses it
  /// as a floor when (re-)anchoring the calendar, relying on the engine's
  /// contract that every entry satisfies e.time >= now and that `now` never
  /// runs backwards.
  void push(const EventEntry& e, SimTime now);

  /// Remove and return the minimum (time, seq) entry. Queue must be
  /// non-empty.
  EventEntry pop_min();

  /// The minimum entry without removing it. Queue must be non-empty.
  /// Invalidated by any mutation.
  [[nodiscard]] const EventEntry& peek_min();

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Drop every entry for which `dead(entry)` is true (the engine's stale
  /// tombstone sweep). O(size + num_buckets); shrinks the bucket array if
  /// the survivors no longer justify it.
  template <typename Pred>
  void remove_if(Pred dead) {
    std::size_t kept = 0;
    for (Bucket& b : buckets_) {
      b.entries.erase(b.entries.begin(),
                      b.entries.begin() + static_cast<std::ptrdiff_t>(b.head));
      b.head = 0;
      std::erase_if(b.entries, dead);
      kept += b.entries.size();
    }
    std::erase_if(overflow_, dead);
    kept += overflow_.size();
    size_ = kept;
    peek_valid_ = false;
    shrink_if_sparse();
  }

  /// Heap footprint of the calendar: bucket array + per-bucket entry
  /// capacity + overflow rung. Feeds the host profiler's memory section.
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t bytes = buckets_.capacity() * sizeof(Bucket) +
                        overflow_.capacity() * sizeof(EventEntry);
    for (const Bucket& b : buckets_) {
      bytes += b.entries.capacity() * sizeof(EventEntry);
    }
    return bytes;
  }

  /// Introspection for tests and DESIGN.md numbers.
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] double width() const { return width_; }
  [[nodiscard]] std::size_t overflow_size() const { return overflow_.size(); }
  [[nodiscard]] std::int64_t rebuilds() const { return rebuilds_; }

 private:
  /// A bucket: entries sorted ascending by (time, seq) from `head` on;
  /// [0, head) is the consumed prefix, reclaimed when the bucket drains or
  /// the calendar rebuilds. Appending the bucket's largest key and popping
  /// its smallest are both O(1).
  struct Bucket {
    std::vector<EventEntry> entries;
    std::size_t head = 0;
    [[nodiscard]] bool empty() const { return head == entries.size(); }
  };

  [[nodiscard]] std::size_t index_of(SimTime t) const;
  void bucket_insert(Bucket& b, const EventEntry& e);

  /// Collect every pending entry (buckets + overflow), leaving the
  /// structure ready for a rebuild.
  [[nodiscard]] std::vector<EventEntry> gather_all();

  /// Average inter-event spacing of a bounded sample, scaled so a bucket
  /// holds a handful of entries. Falls back to the current width for
  /// degenerate populations (all-simultaneous, singleton).
  [[nodiscard]] double estimate_width(
      const std::vector<EventEntry>& entries) const;

  /// Re-bucket `entries` into a power-of-two array sized to the population,
  /// anchored at `anchor` (must be <= every entry's time).
  void rebuild(std::vector<EventEntry> entries, SimTime anchor);

  /// The calendar proper is empty but overflow is not: re-anchor at the
  /// overflow minimum and redistribute. Guarantees the minimum lands in
  /// bucket 0, so the caller's scan makes progress.
  void rebuild_from_overflow();

  /// Rebuild with fewer buckets once the population drops below a quarter
  /// of the bucket count (hysteresis vs the 2x grow trigger).
  void shrink_if_sparse();

  std::vector<Bucket> buckets_;
  std::vector<EventEntry> overflow_;  // time >= cal_end_, unsorted
  double width_ = 1.0;
  SimTime cal_start_ = 0.0;
  SimTime cal_end_ = 0.0;
  /// First bucket that may be non-empty. Advances only as entries are
  /// popped (never on peek): a pop at time t proves every earlier window is
  /// empty, and the engine guarantees pops never outrun its clock (see
  /// Engine::run_until), so future pushes land at or past cur_.
  std::size_t cur_ = 0;
  std::size_t size_ = 0;
  /// Monotone lower bound for every pending entry and every future push:
  /// the max engine `now` seen at push time. Popped times are *not* folded
  /// in — a popped stale tombstone can sit far beyond the engine clock.
  /// The only always-safe re-anchor point.
  SimTime floor_ = 0.0;
  bool peek_valid_ = false;
  EventEntry peeked_{};
  std::int64_t rebuilds_ = 0;
};

}  // namespace mron::sim
