#include "sim/engine.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <string_view>
#include <utility>

#include "obs/host_profile.h"

namespace mron::sim {

namespace {
// Compaction hysteresis: never bother sweeping a tiny queue.
constexpr std::size_t kMinQueueForCompaction = 64;
}  // namespace

Engine::Engine(QueueKind queue) : kind_(queue) {}

QueueKind Engine::default_queue_kind() {
  // Read per construction (not cached): tests flip the variable, and
  // engines are built once per simulation, far off any hot path.
  if (const char* env = std::getenv("MRON_EVENT_QUEUE")) {
    if (std::string_view(env) == "heap") return QueueKind::kBinaryHeap;
  }
  return QueueKind::kCalendar;
}

EventId Engine::schedule_impl(SimTime t, Callback cb, bool daemon) {
  MRON_CHECK_MSG(t >= now_, "schedule_at(" << t << ") before now=" << now_);
  MRON_CHECK(static_cast<bool>(cb));
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.daemon = daemon;
#if MRON_OBS_ENABLED
  // Inherit the scheduling context's subsystem category (a dispatched
  // callback's own category is re-established around cb(), so re-arms
  // inherit transitively). Only read when profiling.
  if (host_profiler_ != nullptr) {
    s.cat = obs::HostProfiler::CatScope::current();
  }
#endif
  queue_push(EventEntry{t, next_seq_++, slot, s.gen});
  ++live_events_;
  if (daemon) ++daemon_events_;
  return pack(slot, s.gen);
}

EventId Engine::schedule_at(SimTime t, Callback cb) {
  return schedule_impl(t, std::move(cb), /*daemon=*/false);
}

EventId Engine::schedule_after(SimTime delay, Callback cb) {
  MRON_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
  return schedule_impl(now_ + delay, std::move(cb), /*daemon=*/false);
}

EventId Engine::schedule_daemon_at(SimTime t, Callback cb) {
  return schedule_impl(t, std::move(cb), /*daemon=*/true);
}

EventId Engine::schedule_daemon_after(SimTime delay, Callback cb) {
  MRON_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
  return schedule_impl(now_ + delay, std::move(cb), /*daemon=*/true);
}

void Engine::cancel(EventId id) {
  if (!id.valid()) return;
  const auto packed = static_cast<std::uint64_t>(id.value());
  const auto slot = static_cast<std::uint32_t>(packed & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(packed >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen || !slots_[slot].cb) {
    return;  // already fired, already cancelled, or never issued
  }
  if (slots_[slot].daemon) --daemon_events_;
  release_slot(slot);
  --live_events_;
  // The queue entry stays behind as a tombstone: dropped at pop time, or
  // swept by maybe_compact() before tombstones can outnumber live events.
  ++stale_in_queue_;
  maybe_compact();
}

void Engine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();
  s.daemon = false;
  // Wrapping at 2^31 keeps EventId::value() non-negative; a stale handle
  // would have to survive two billion reuses of one slot to collide.
  s.gen = (s.gen + 1) & 0x7fffffffu;
  free_slots_.push_back(slot);
}

void Engine::maybe_compact() {
  if (stale_in_queue_ <= live_events_ ||
      queue_size() < kMinQueueForCompaction) {
    return;
  }
  const auto dead = [this](const EventEntry& e) { return !is_live(e); };
  if (kind_ == QueueKind::kBinaryHeap) {
    std::erase_if(heap_, dead);
    std::make_heap(heap_.begin(), heap_.end(), std::greater<EventEntry>{});
  } else {
    calendar_.remove_if(dead);
  }
  stale_in_queue_ = 0;
}

void Engine::queue_push(const EventEntry& e) {
  if (kind_ == QueueKind::kBinaryHeap) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<EventEntry>{});
  } else {
    calendar_.push(e, now_);
  }
}

EventEntry Engine::queue_peek() {
  return kind_ == QueueKind::kBinaryHeap ? heap_.front()
                                         : calendar_.peek_min();
}

EventEntry Engine::queue_pop() {
  if (kind_ == QueueKind::kBinaryHeap) {
    const EventEntry e = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<EventEntry>{});
    heap_.pop_back();
    return e;
  }
  return calendar_.pop_min();
}

bool Engine::pop_next(Callback* cb, std::uint8_t* cat) {
  while (!queue_empty()) {
    const EventEntry entry = queue_pop();
    if (!is_live(entry)) {
      --stale_in_queue_;
      continue;
    }
    *cb = std::move(slots_[entry.slot].cb);
    if (slots_[entry.slot].daemon) --daemon_events_;
#if MRON_OBS_ENABLED
    *cat = slots_[entry.slot].cat;
#else
    *cat = 0;
#endif
    release_slot(entry.slot);
    --live_events_;
    now_ = entry.time;
    ++total_dispatched_;
    return true;
  }
  return false;
}

bool Engine::dispatch_next() {
  Callback cb;
  std::uint8_t cat = 0;
  if (!pop_next(&cb, &cat)) return false;
#if MRON_OBS_ENABLED
  if (host_profiler_ != nullptr) {
    // Re-establish the event's category around its callback so anything
    // it schedules inherits it.
    obs::HostProfiler::CatScope scope(static_cast<obs::HostCat>(cat));
    cb();
    return true;
  }
#endif
  cb();
  return true;
}

std::int64_t Engine::run(std::int64_t max_events) {
#if MRON_OBS_ENABLED
  if (host_profiler_ != nullptr) return run_profiled(max_events);
#endif
  std::int64_t fired = 0;
  while (fired < max_events && dispatch_next()) {
    ++fired;
    progress_tick();
  }
  MRON_CHECK_MSG(fired < max_events, "engine hit max_events guard");
  return fired;
}

#if MRON_OBS_ENABLED
std::int64_t Engine::run_profiled(std::int64_t max_events) {
  // Clock reads only at category transitions: a contiguous run of
  // same-category events is billed as one batch whose wall is the delta
  // between the boundary reads (callbacks + queue pops + any tombstone
  // skips in between). The boundary deltas partition the loop's wall time,
  // so the per-subsystem totals still sum to it by construction — but the
  // raw_ticks() cost (~20ns virtualized) amortizes across each run instead
  // of taxing every event. Steady-state traffic is long runs of heartbeats
  // punctuated by task events, so runs are typically many events deep.
  obs::HostProfiler::Activation activation(host_profiler_);
  std::int64_t fired = 0;
  std::int64_t t0 = obs::HostProfiler::raw_ticks();
  std::uint8_t run_cat = 0;
  std::int64_t run_len = 0;
  Callback cb;
  std::uint8_t cat = 0;
  while (fired < max_events && pop_next(&cb, &cat)) {
    if (cat != run_cat && run_len != 0) {
      const std::int64_t t1 = obs::HostProfiler::raw_ticks();
      host_profiler_->record_events(run_cat, t1 - t0, run_len);
      t0 = t1;
      run_len = 0;
    }
    run_cat = cat;
    ++run_len;
    {
      // Re-establish the event's category around its callback so anything
      // it schedules inherits it.
      obs::HostProfiler::CatScope scope(static_cast<obs::HostCat>(cat));
      cb();
    }
    ++fired;
    progress_tick();
  }
  if (run_len != 0) {
    host_profiler_->record_events(
        run_cat, obs::HostProfiler::raw_ticks() - t0, run_len);
  }
  MRON_CHECK_MSG(fired < max_events, "engine hit max_events guard");
  return fired;
}
#endif

std::int64_t Engine::run_until(SimTime t) {
  MRON_CHECK(t >= now_);
  std::int64_t fired = 0;
  while (!queue_empty()) {
    // The time check comes before the staleness check: popping a stale
    // entry beyond `t` would advance the queue's notion of the dispatch
    // frontier past the engine clock, and the calendar backend relies on
    // pops never outrunning future pushes (tombstones past the boundary
    // wait for their turn or for the compaction sweep).
    const EventEntry entry = queue_peek();
    if (entry.time > t) break;
    if (!is_live(entry)) {
      queue_pop();
      --stale_in_queue_;
      continue;
    }
    dispatch_next();
    ++fired;
  }
  now_ = t;
  return fired;
}

}  // namespace mron::sim
