#include "sim/engine.h"

#include <utility>

namespace mron::sim {

EventId Engine::schedule_at(SimTime t, Callback cb) {
  MRON_CHECK_MSG(t >= now_, "schedule_at(" << t << ") before now=" << now_);
  MRON_CHECK(cb != nullptr);
  const EventId id = ids_.next();
  queue_.push(QueueEntry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  ++live_events_;
  return id;
}

EventId Engine::schedule_after(SimTime delay, Callback cb) {
  MRON_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
  return schedule_at(now_ + delay, std::move(cb));
}

void Engine::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;
  callbacks_.erase(it);
  --live_events_;
  // The queue entry stays behind and is skipped lazily at dispatch time.
}

bool Engine::dispatch_next() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    --live_events_;
    now_ = entry.time;
    cb();
    return true;
  }
  return false;
}

std::int64_t Engine::run(std::int64_t max_events) {
  std::int64_t fired = 0;
  while (fired < max_events && dispatch_next()) ++fired;
  MRON_CHECK_MSG(fired < max_events, "engine hit max_events guard");
  return fired;
}

std::int64_t Engine::run_until(SimTime t) {
  MRON_CHECK(t >= now_);
  std::int64_t fired = 0;
  while (!queue_.empty()) {
    // Peek past cancelled entries to find the next live event time.
    QueueEntry entry = queue_.top();
    if (callbacks_.find(entry.id) == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (entry.time > t) break;
    dispatch_next();
    ++fired;
  }
  now_ = t;
  return fired;
}

}  // namespace mron::sim
