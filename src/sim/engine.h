// Discrete-event simulation engine.
//
// Single-threaded: all model code runs inside event callbacks dispatched by
// Engine::run(). Events at equal timestamps fire in schedule order, which
// keeps experiments bit-reproducible for a fixed seed. Whole Engines (one
// per Simulation) may run concurrently on different threads — see
// sim/parallel_runner.h — but no two threads ever touch one Engine.
//
// Internals are built for the hot path (see DESIGN.md "Engine internals"):
// callbacks live in a generation-checked slot map (contiguous storage, slots
// recycled through a free list, no per-event node allocation), and the ready
// queue holds 24-byte plain-data entries in one of two interchangeable
// backends — the default calendar queue (sim/calendar_queue.h, O(1)
// amortized schedule/pop) or the legacy binary heap kept as the equivalence
// reference. Both dispatch in identical (time, seq) order; a randomized
// equivalence suite pins that byte-for-byte. cancel() is O(1) in either
// backend — it releases the slot immediately and leaves a stale queue entry
// behind that is dropped at pop time or by an amortized compaction pass
// that keeps the queue no larger than a constant multiple of the live event
// count.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/strong_id.h"
#include "common/units.h"
#include "obs/enabled.h"
#include "sim/calendar_queue.h"
#include "sim/callback.h"

namespace mron::obs {
class Recorder;
class HostProfiler;
}  // namespace mron::obs

namespace mron::sim {

struct EventTag {};
/// Packed handle: low 32 bits slot index, upper bits the slot's generation
/// at scheduling time. A handle goes stale the moment its event fires or is
/// cancelled, and stale handles are rejected in O(1).
using EventId = StrongId<EventTag>;

/// Which ready-queue backend an Engine dispatches from. Both produce
/// byte-identical event streams; the heap exists as the independent
/// reference implementation for the equivalence tests and as an escape
/// hatch (`MRON_EVENT_QUEUE=heap`).
enum class QueueKind {
  kCalendar,
  kBinaryHeap,
};

class Engine {
 public:
  using Callback = sim::Callback;

  explicit Engine(QueueKind queue = default_queue_kind());
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Backend selection default: the `MRON_EVENT_QUEUE` environment variable
  /// ("calendar" or "heap") when set, else the calendar queue.
  [[nodiscard]] static QueueKind default_queue_kind();
  [[nodiscard]] QueueKind queue_kind() const { return kind_; }

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `t >= now()`.
  EventId schedule_at(SimTime t, Callback cb);
  /// Schedule `cb` after a non-negative delay.
  EventId schedule_after(SimTime delay, Callback cb);
  /// Schedule a *daemon* event: periodic housekeeping (monitor sampling,
  /// heartbeat watchdogs, speculation scans) that should not count as
  /// pending work. Daemon events still fire normally; they only change what
  /// quiescent() reports. Every self-re-arming service must schedule itself
  /// as a daemon and guard its re-arm on !quiescent(), otherwise two such
  /// services keep each other alive forever and run() never drains.
  EventId schedule_daemon_at(SimTime t, Callback cb);
  EventId schedule_daemon_after(SimTime delay, Callback cb);
  /// Cancel a pending event. Cancelling an already-fired or already-cancelled
  /// event is a no-op (the common pattern when a completion races a cancel).
  void cancel(EventId id);

  /// Run until the event queue drains (or `max_events` fire, as a runaway
  /// guard). Returns the number of events dispatched.
  std::int64_t run(std::int64_t max_events =
                       std::numeric_limits<std::int64_t>::max());
  /// Run events with timestamp <= `t`, then set now() = t.
  std::int64_t run_until(SimTime t);

  /// Events dispatched over the engine's whole lifetime (every run/run_until
  /// call). The scaling microbench divides this by wall-clock to get the
  /// events/sec a simulated cluster sustains.
  [[nodiscard]] std::int64_t total_dispatched() const {
    return total_dispatched_;
  }

  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_events_; }
  /// True when only daemon housekeeping remains pending — the simulation
  /// has no real work left. The re-arm guard for periodic services.
  [[nodiscard]] bool quiescent() const {
    return live_events_ == daemon_events_;
  }

  /// Diagnostics for the tombstone-growth regression test and the
  /// `sim.queue.*` gauges: total queue entries (live + not-yet-collected
  /// stale), the stale tombstones alone, and slot-map capacity. All stay
  /// O(pending()) under any schedule/cancel churn pattern, and all are
  /// backend-independent (both queues drop tombstones at the same points).
  [[nodiscard]] std::size_t queue_size() const {
    return kind_ == QueueKind::kBinaryHeap ? heap_.size() : calendar_.size();
  }
  [[nodiscard]] std::size_t stale_entries() const { return stale_in_queue_; }
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

  /// Attach/detach the flight recorder. The engine does not own it; the
  /// Simulation (or test) that created the recorder keeps it alive for the
  /// engine's lifetime.
  void set_recorder(obs::Recorder* rec) {
#if MRON_OBS_ENABLED
    recorder_ = rec;
#else
    (void)rec;
#endif
  }
  /// The attached recorder, or nullptr when observation is off. With
  /// MRON_OBS_ENABLED=0 this is a constant nullptr, so instrumentation sites
  /// guarded by `if (auto* rec = engine.recorder())` compile away entirely.
  [[nodiscard]] obs::Recorder* recorder() const {
#if MRON_OBS_ENABLED
    return recorder_;
#else
    return nullptr;
#endif
  }

  /// Attach/detach the host self-profiler (obs/host_profile.h). When
  /// attached, every scheduled event is stamped with the subsystem category
  /// of its scheduling context and run() charges each event's inter-pop
  /// wall delta to that category. Not owned; nullptr (and a constant
  /// nullptr under MRON_OBS_ENABLED=0) means the unprofiled fast loop runs.
  void set_host_profiler(obs::HostProfiler* prof) {
#if MRON_OBS_ENABLED
    host_profiler_ = prof;
#else
    (void)prof;
#endif
  }
  [[nodiscard]] obs::HostProfiler* host_profiler() const {
#if MRON_OBS_ENABLED
    return host_profiler_;
#else
    return nullptr;
#endif
  }

  /// Byte sizes of the two engine arenas, for the host profiler's memory
  /// section: the ready-queue backend and the callback slot map (including
  /// its free list).
  [[nodiscard]] std::size_t queue_memory_bytes() const {
    return kind_ == QueueKind::kBinaryHeap
               ? heap_.capacity() * sizeof(EventEntry)
               : calendar_.memory_bytes();
  }
  [[nodiscard]] std::size_t slot_memory_bytes() const {
    return slots_.capacity() * sizeof(Slot) +
           free_slots_.capacity() * sizeof(std::uint32_t);
  }

  /// Progress heartbeat: call `fn` once every `stride` dispatched events
  /// inside run() (stride <= 0 disables). Purely a host-side hook — it
  /// never touches sim state, so enabling it cannot perturb a run.
  using ProgressFn = std::function<void(const Engine&)>;
  void set_progress(ProgressFn fn, std::int64_t stride) {
    progress_fn_ = std::move(fn);
    progress_stride_ = progress_fn_ ? stride : 0;
    progress_left_ = progress_stride_;
  }

 private:
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
    bool daemon = false;
    /// Subsystem category (obs::HostCat) stamped at schedule time when a
    /// host profiler is attached; fits the struct's existing padding.
    std::uint8_t cat = 0;
  };

  [[nodiscard]] static EventId pack(std::uint32_t slot, std::uint32_t gen) {
    return EventId(static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(gen) << 32) | slot));
  }

  [[nodiscard]] bool is_live(const EventEntry& e) const {
    return slots_[e.slot].gen == e.gen && slots_[e.slot].cb;
  }

  /// Free the slot for reuse; bumping the generation invalidates every
  /// outstanding EventId and queue entry pointing at it.
  void release_slot(std::uint32_t slot);

  /// Sweep stale entries out of the queue once they outnumber live ones.
  /// Amortized O(1) per cancel; bounds queue memory to O(live).
  void maybe_compact();

  /// Backend dispatch helpers: same (time, seq) order either way.
  void queue_push(const EventEntry& e);
  [[nodiscard]] bool queue_empty() const {
    return kind_ == QueueKind::kBinaryHeap ? heap_.empty()
                                           : calendar_.empty();
  }
  [[nodiscard]] EventEntry queue_peek();
  EventEntry queue_pop();

  /// Pops the next live event; returns false when drained.
  bool dispatch_next();

  /// Pops the next live event *without* running it: fills the callback and
  /// (in MRON_OBS builds) its subsystem category, advances the clock and
  /// dispatch counters. Returns false when drained. Shared by dispatch_next
  /// and the profiled run loop, which must see the category before the
  /// callback fires.
  bool pop_next(Callback* cb, std::uint8_t* cat);

#if MRON_OBS_ENABLED
  /// run() body when a host profiler is attached. Clock reads happen only
  /// at subsystem-category *transitions*: a contiguous run of same-category
  /// events is billed as one batch (count = run length, wall = boundary
  /// delta), so the per-subsystem totals still tile the loop's wall time by
  /// construction while the rdtsc cost amortizes across each run.
  std::int64_t run_profiled(std::int64_t max_events);
#endif

  /// One progress-hook step, shared by the run loops.
  void progress_tick() {
    if (progress_stride_ > 0 && --progress_left_ <= 0) {
      progress_left_ = progress_stride_;
      progress_fn_(*this);
    }
  }

  EventId schedule_impl(SimTime t, Callback cb, bool daemon);

  QueueKind kind_;
  SimTime now_ = 0.0;
  std::int64_t next_seq_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<EventEntry> heap_;  // binary min-heap on (time, seq)
  CalendarQueue calendar_;
  std::size_t live_events_ = 0;
  std::int64_t total_dispatched_ = 0;
  std::size_t daemon_events_ = 0;
  std::size_t stale_in_queue_ = 0;
  ProgressFn progress_fn_;
  std::int64_t progress_stride_ = 0;
  std::int64_t progress_left_ = 0;
#if MRON_OBS_ENABLED
  obs::Recorder* recorder_ = nullptr;
  obs::HostProfiler* host_profiler_ = nullptr;
#endif
};

}  // namespace mron::sim
