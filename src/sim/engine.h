// Discrete-event simulation engine.
//
// Single-threaded: all model code runs inside event callbacks dispatched by
// Engine::run(). Events at equal timestamps fire in schedule order, which
// keeps experiments bit-reproducible for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/strong_id.h"
#include "common/units.h"
#include "obs/enabled.h"

namespace mron::obs {
class Recorder;
}  // namespace mron::obs

namespace mron::sim {

struct EventTag {};
using EventId = StrongId<EventTag>;

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `t >= now()`.
  EventId schedule_at(SimTime t, Callback cb);
  /// Schedule `cb` after a non-negative delay.
  EventId schedule_after(SimTime delay, Callback cb);
  /// Cancel a pending event. Cancelling an already-fired or already-cancelled
  /// event is a no-op (the common pattern when a completion races a cancel).
  void cancel(EventId id);

  /// Run until the event queue drains (or `max_events` fire, as a runaway
  /// guard). Returns the number of events dispatched.
  std::int64_t run(std::int64_t max_events =
                       std::numeric_limits<std::int64_t>::max());
  /// Run events with timestamp <= `t`, then set now() = t.
  std::int64_t run_until(SimTime t);

  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_events_; }

  /// Attach/detach the flight recorder. The engine does not own it; the
  /// Simulation (or test) that created the recorder keeps it alive for the
  /// engine's lifetime.
  void set_recorder(obs::Recorder* rec) {
#if MRON_OBS_ENABLED
    recorder_ = rec;
#else
    (void)rec;
#endif
  }
  /// The attached recorder, or nullptr when observation is off. With
  /// MRON_OBS_ENABLED=0 this is a constant nullptr, so instrumentation sites
  /// guarded by `if (auto* rec = engine.recorder())` compile away entirely.
  [[nodiscard]] obs::Recorder* recorder() const {
#if MRON_OBS_ENABLED
    return recorder_;
#else
    return nullptr;
#endif
  }

 private:
  struct QueueEntry {
    SimTime time;
    std::int64_t seq;
    EventId id;
    bool operator>(const QueueEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Pops the next live event; returns false when drained.
  bool dispatch_next();

  SimTime now_ = 0.0;
  std::int64_t next_seq_ = 0;
  IdAllocator<EventId> ids_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::size_t live_events_ = 0;
#if MRON_OBS_ENABLED
  obs::Recorder* recorder_ = nullptr;
#endif
};

}  // namespace mron::sim
