#include "sim/calendar_queue.h"

#include <bit>
#include <utility>

namespace mron::sim {

namespace {
// Floor of the bucket-array size; below this, resizing is never worth it.
constexpr std::size_t kMinBuckets = 16;
// Inter-event gaps sampled per width estimate. Bounded so a rebuild's
// estimation cost is O(1) regardless of population.
constexpr std::size_t kWidthSample = 64;
// Width clamps: fine enough for sub-nanosecond event storms, coarse enough
// that (time - start) / width never overflows an index.
constexpr double kMinWidth = 1e-9;
constexpr double kMaxWidth = 1e12;
// Target entries per bucket: a couple of entries keep the in-bucket sorted
// insert effectively O(1) while windows stay wide enough that consecutive
// events usually share a bucket.
constexpr double kEntriesPerBucket = 3.0;

std::size_t next_pow2(std::size_t n) { return std::bit_ceil(n); }
}  // namespace

CalendarQueue::CalendarQueue() {
  buckets_.resize(kMinBuckets);
  cal_end_ = cal_start_ + width_ * static_cast<double>(kMinBuckets);
}

std::size_t CalendarQueue::index_of(SimTime t) const {
  // Monotone in t for fixed (start, width): FP subtraction and division
  // round monotonically, so bucket assignment can never invert the order
  // of two entries even at window boundaries. The clamp only absorbs
  // boundary rounding for t just below cal_end_.
  const auto idx = static_cast<std::size_t>((t - cal_start_) / width_);
  return idx < buckets_.size() ? idx : buckets_.size() - 1;
}

void CalendarQueue::bucket_insert(Bucket& b, const EventEntry& e) {
  if (b.empty()) {
    b.entries.clear();
    b.head = 0;
    b.entries.push_back(e);
    return;
  }
  if (b.entries.back() < e) {  // common case: newest key in this window
    b.entries.push_back(e);
    return;
  }
  const auto first = b.entries.begin() + static_cast<std::ptrdiff_t>(b.head);
  b.entries.insert(std::lower_bound(first, b.entries.end(), e), e);
}

void CalendarQueue::push(const EventEntry& e, SimTime now) {
  if (now > floor_) floor_ = now;
  peek_valid_ = false;
  if (size_ == 0) {
    // Empty queue: re-anchor the calendar at the floor. Windows stay tight
    // around the active region and the bucket scan restarts at 0.
    cal_start_ = floor_;
    cal_end_ = cal_start_ + width_ * static_cast<double>(buckets_.size());
    cur_ = 0;
  } else if (e.time < cal_start_) {
    // A past rebuild anchored at a far-future minimum and the engine now
    // schedules before it (floor_ <= e.time < cal_start_). Rare: re-anchor
    // everything at the floor, which bounds every entry present and to
    // come.
    rebuild(gather_all(), floor_);
  }
  if (e.time >= cal_end_) {
    overflow_.push_back(e);
  } else {
    const std::size_t idx = index_of(e.time);
    MRON_CHECK_MSG(idx >= cur_, "push below cur_: idx=" << idx << " cur_="
                                << cur_ << " t=" << e.time << " start="
                                << cal_start_ << " width=" << width_);
    bucket_insert(buckets_[idx], e);
  }
  ++size_;
  if (size_ > 2 * buckets_.size()) {
    // Population outgrew the array: rebuild at the pending minimum so the
    // new, freshly-sized windows cover the region that is actually dense.
    std::vector<EventEntry> all = gather_all();
    SimTime anchor = all.front().time;
    for (const EventEntry& entry : all) anchor = std::min(anchor, entry.time);
    rebuild(std::move(all), anchor);
  }
}

EventEntry CalendarQueue::pop_min() {
  MRON_CHECK_MSG(size_ > 0, "pop_min on empty calendar queue");
  peek_valid_ = false;
  for (;;) {
    while (cur_ < buckets_.size() && buckets_[cur_].empty()) ++cur_;
    if (cur_ < buckets_.size()) {
      Bucket& b = buckets_[cur_];
      const EventEntry e = b.entries[b.head++];
      if (b.head == b.entries.size()) {
        b.entries.clear();
        b.head = 0;
      }
      // floor_ deliberately does not absorb e.time: the engine may pop a
      // stale tombstone whose timestamp is far beyond its clock, and
      // pushes that follow are only bounded below by the clock (the `now`
      // arguments), not by what was popped.
      --size_;
      shrink_if_sparse();
      return e;
    }
    rebuild_from_overflow();
  }
}

const EventEntry& CalendarQueue::peek_min() {
  MRON_CHECK_MSG(size_ > 0, "peek_min on empty calendar queue");
  if (peek_valid_) return peeked_;
  for (;;) {
    // Scan without advancing cur_: a peek does not advance the engine
    // clock, so a later push may still land in a window before the one
    // peeked here.
    for (std::size_t b = cur_; b < buckets_.size(); ++b) {
      if (!buckets_[b].empty()) {
        peeked_ = buckets_[b].entries[buckets_[b].head];
        peek_valid_ = true;
        return peeked_;
      }
    }
    rebuild_from_overflow();
  }
}

std::vector<EventEntry> CalendarQueue::gather_all() {
  std::vector<EventEntry> all;
  all.reserve(size_);
  for (Bucket& b : buckets_) {
    for (std::size_t i = b.head; i < b.entries.size(); ++i) {
      all.push_back(b.entries[i]);
    }
    b.entries.clear();
    b.head = 0;
  }
  for (const EventEntry& e : overflow_) all.push_back(e);
  overflow_.clear();
  return all;
}

double CalendarQueue::estimate_width(
    const std::vector<EventEntry>& entries) const {
  if (entries.size() < 2) return std::clamp(width_, kMinWidth, kMaxWidth);
  const std::size_t k = std::min(entries.size(), kWidthSample);
  // Stride across the whole population, not the first k entries: gathered
  // order is roughly ascending, so a prefix sample sees only the densest
  // near-term cluster. Event populations here are bimodal (dense job
  // events now, one sparse timer per node seconds out), and sizing the
  // windows for the dense cluster alone pushes every timer into overflow
  // — which then gets re-gathered and redistributed each time the
  // near-term calendar drains, an O(n) cost per drain cycle. The strided
  // sample sees both modes, so the calendar spans the timers too.
  const std::size_t stride = entries.size() / k;
  double times[kWidthSample] = {};
  for (std::size_t i = 0; i < k; ++i) times[i] = entries[i * stride].time;
  std::sort(times, times + k);
  // The sampled range covers ~(k-1)*stride consecutive entries of the
  // sorted population, so the span normalized by that count is the mean
  // per-entry gap. Normalizing by the *sample* count alone would inflate
  // the estimate by a factor of stride (~16k at a million pending) and
  // leave every bucket thousands of entries deep.
  const double span = times[k - 1] - times[0];
  // All sampled events simultaneous: spacing carries no signal, keep the
  // current width (the burst collapses into one bucket either way).
  if (span <= 0.0) return std::clamp(width_, kMinWidth, kMaxWidth);
  const double gap = span / static_cast<double>((k - 1) * stride);
  return std::clamp(kEntriesPerBucket * gap, kMinWidth, kMaxWidth);
}

void CalendarQueue::rebuild(std::vector<EventEntry> entries, SimTime anchor) {
  const std::size_t nb =
      next_pow2(std::max(kMinBuckets, entries.size()));
  width_ = estimate_width(entries);
  buckets_.assign(nb, Bucket{});
  overflow_.clear();
  cal_start_ = anchor;
  cal_end_ = cal_start_ + width_ * static_cast<double>(nb);
  cur_ = 0;
  size_ = entries.size();
  for (const EventEntry& e : entries) {
    MRON_CHECK_MSG(e.time >= anchor, "rebuild anchor above pending entry");
    if (e.time >= cal_end_) {
      overflow_.push_back(e);
    } else {
      buckets_[index_of(e.time)].entries.push_back(e);
    }
  }
  // Bulk distribution then one sort per bucket: O(n log k) worst case even
  // for pathological same-window bursts, vs O(k^2) repeated sorted inserts.
  for (Bucket& b : buckets_) {
    if (b.entries.size() > 1) std::sort(b.entries.begin(), b.entries.end());
  }
  peek_valid_ = false;
  ++rebuilds_;
}

void CalendarQueue::rebuild_from_overflow() {
  MRON_CHECK_MSG(!overflow_.empty(), "calendar drained with entries pending");
  std::vector<EventEntry> all = std::move(overflow_);
  overflow_.clear();
  SimTime anchor = all.front().time;
  for (const EventEntry& e : all) anchor = std::min(anchor, e.time);
  // Anchoring at the overflow minimum guarantees it lands in bucket 0: the
  // caller's scan always makes progress, even if the rest of the batch is
  // so spread out it overflows again.
  rebuild(std::move(all), anchor);
}

void CalendarQueue::shrink_if_sparse() {
  if (buckets_.size() <= kMinBuckets || size_ >= buckets_.size() / 4) return;
  if (size_ == 0) {
    buckets_.assign(kMinBuckets, Bucket{});
    overflow_.clear();
    cur_ = 0;
    cal_start_ = floor_;
    cal_end_ = cal_start_ + width_ * static_cast<double>(kMinBuckets);
    return;
  }
  std::vector<EventEntry> all = gather_all();
  SimTime anchor = all.front().time;
  for (const EventEntry& e : all) anchor = std::min(anchor, e.time);
  rebuild(std::move(all), anchor);
}

}  // namespace mron::sim
