// Application profile: the per-record/per-byte characteristics of a
// MapReduce program, independent of any configuration.
//
// The workloads module instantiates one of these per Table-3 benchmark; the
// task models combine a profile with a JobConfig and the cluster's rates to
// produce phase durations, spill counts, and memory footprints.
#pragma once

#include "common/units.h"

namespace mron::mapreduce {

struct AppProfile {
  // --- map side --------------------------------------------------------------
  /// User-code CPU per input MiB, in core-seconds on a reference core.
  double map_cpu_secs_per_mib = 0.05;
  /// Fixed per-task CPU (core-seconds) independent of input size — lets
  /// compute-only jobs like BBP run with (near) zero input.
  double map_cpu_secs_fixed = 0.0;
  /// Fixed per-task map output, added to input * map_output_ratio.
  Bytes map_output_bytes_fixed{0};
  /// Map output bytes / map input bytes (before the combiner).
  double map_output_ratio = 1.0;
  /// Average map output record size in bytes (drives record counts).
  double map_record_bytes = 100.0;
  /// Combiner selectivity: combiner output / map output (1 = no combiner).
  double combiner_ratio = 1.0;
  /// Max useful parallelism of the map user code, in physical cores.
  double map_cpu_demand_cores = 1.0;
  /// Map working set beyond the sort buffer (JVM, user structures).
  Bytes map_working_set = mebibytes(300);

  // --- reduce side ------------------------------------------------------------
  /// User-code CPU per reduce-input MiB, in core-seconds.
  double reduce_cpu_secs_per_mib = 0.03;
  /// Reduce output bytes / reduce input bytes.
  double reduce_output_ratio = 1.0;
  double reduce_cpu_demand_cores = 1.0;
  Bytes reduce_working_set = mebibytes(200);

  // --- distribution ------------------------------------------------------------
  /// Coefficient of variation of per-reducer partition sizes (data skew).
  double partition_skew_cv = 0.0;

  /// Extra CPU cost of sorting/serializing one output record, core-seconds.
  /// Applied per spilled record, so bad spill configs also cost CPU.
  double sort_cpu_secs_per_record = 2e-7;

  /// Container/JVM startup time charged before a task's first phase.
  double task_startup_secs = 2.0;
};

}  // namespace mron::mapreduce
