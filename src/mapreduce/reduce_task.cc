#include "mapreduce/reduce_task.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/check.h"
#include "obs/recorder.h"

namespace mron::mapreduce {

namespace {
constexpr double kOomBaseDelay = 5.0;
}  // namespace

ReduceTask::ReduceTask(sim::Engine& engine, cluster::Node& node,
                       cluster::Fabric& fabric, NodeResolver resolver,
                       const AppProfile& profile, const JobConfig& config,
                       const Inputs& inputs, Rng rng, Done done)
    : engine_(engine),
      node_(node),
      fabric_(fabric),
      resolver_(std::move(resolver)),
      profile_(profile),
      config_(config),
      inputs_(inputs),
      rng_(rng),
      done_(std::move(done)),
      // Compressed segments pack records at codec-scaled density, keeping
      // the buffer's record accounting consistent with the wire bytes.
      buffer_(config, profile.map_record_bytes *
                          (config.map_output_compress >= 0.5
                               ? kCodecCompressionRatio
                               : 1.0)) {
  MRON_CHECK(done_ != nullptr);
  MRON_CHECK(resolver_ != nullptr);
  MRON_CHECK(inputs_.total_maps >= 0);
}

void ReduceTask::add_map_output(int map_index, cluster::NodeId source,
                                Bytes bytes) {
  // Duplicate delivery (a map re-executed after a node failure) while the
  // first copy is still accepted: ignore it. A lost copy's entry was erased
  // by invalidate_source()/on_fetch_failed(), so re-delivery lands here
  // with a clean slate.
  if (!segments_.emplace(map_index, SegmentInfo{source}).second) return;
  queue_.push_back(PendingFetch{map_index, source, bytes});
  if (startup_done_ && !oom_ && !aborted_) pump_fetches();
}

void ReduceTask::invalidate_source(cluster::NodeId node) {
  if (aborted_ || finished_) return;
  // Queued fetches sourced on the dead node will never connect; drop them
  // and un-accept their maps so the AM's re-delivery is taken. Segments in
  // state Fetching are doomed by the availability re-check when their
  // transfer lands; Fetched segments are local data and survive the source.
  std::erase_if(queue_, [node](const PendingFetch& f) {
    return f.source == node;
  });
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->second.source == node && it->second.state == SegmentState::Queued) {
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReduceTask::switch_phase_span(const char* name) {
  auto* rec = engine_.recorder();
  if (rec == nullptr) return;
  rec->trace().end(phase_span_, engine_.now());
  phase_span_ = obs::kInvalidSpan;
  if (name != nullptr && rec->trace().detail()) {
    phase_span_ = rec->trace().begin(
        name, "phase", static_cast<int>(node_.id().value()),
        inputs_.trace_tid, engine_.now());
  }
}

void ReduceTask::abort() {
  if (aborted_ || finished_) return;
  aborted_ = true;
  switch_phase_span(nullptr);
  if (started_) node_.sub_used_memory(resident_memory_);
}

void ReduceTask::update_config(const JobConfig& config) {
  // The pending run was proven absorbable under the *old* thresholds;
  // settle it before they change.
  drain_fetch_run();
  config_.sort_spill_percent = config.sort_spill_percent;
  config_.shuffle_merge_percent = config.shuffle_merge_percent;
  config_.shuffle_memory_limit_percent = config.shuffle_memory_limit_percent;
  config_.merge_inmem_threshold = config.merge_inmem_threshold;
  config_.reduce_input_buffer_percent = config.reduce_input_buffer_percent;
  buffer_.update_live_params(config_);
}

void ReduceTask::start() {
  MRON_CHECK(!started_);
  started_ = true;
  report_.task = inputs_.task;
  report_.attempt = inputs_.attempt;
  report_.start_time = engine_.now();
  report_.config = config_;
  report_.node = node_.id();
  cpu_noise_ = rng_.lognormal_noise(inputs_.noise_cv);

  const double ws_noise = inputs_.ws_factor * rng_.lognormal_noise(0.01);
  const Bytes ws_full =
      profile_.reduce_working_set * ws_noise + buffer_.shuffle_buffer();
  committed_memory_ = ws_full;
  resident_memory_ = profile_.reduce_working_set * ws_noise +
                     buffer_.shuffle_buffer() * kAvgBufferOccupancy;
  node_.add_used_memory(resident_memory_);

  if (ws_full > mebibytes(config_.reduce_memory_mb)) {
    oom_ = true;
    engine_.schedule_after(kOomBaseDelay, [this] { finish(/*oom=*/true); });
    return;
  }
  // JVM/container startup before the fetchers spin up.
  engine_.schedule_after(
      profile_.task_startup_secs * rng_.lognormal_noise(0.1), [this] {
        startup_done_ = true;
        switch_phase_span("shuffle");
        if (inputs_.total_maps == 0) {
          maybe_finish_shuffle();
        } else {
          pump_fetches();
        }
      });
}

void ReduceTask::pump_fetches() {
  const int max_copies =
      std::max(1, static_cast<int>(config_.shuffle_parallelcopies));
  while (active_fetches_ < max_copies && !queue_.empty()) {
    PendingFetch fetch = queue_.front();
    queue_.pop_front();
    ++active_fetches_;
    begin_fetch(fetch);
  }
}

void ReduceTask::begin_fetch(PendingFetch fetch) {
  auto seg = segments_.find(fetch.map_index);
  MRON_CHECK(seg != segments_.end());
  seg->second.state = SegmentState::Fetching;
  // Fetches overlap on the reducer's lane, so they trace as async b/e
  // pairs keyed by a per-attempt sequence (B/E spans must nest).
  const std::int64_t fetch_id =
      (inputs_.trace_tid << 16) | (next_fetch_seq_++ & 0xffff);
  if (auto* rec = engine_.recorder()) {
    if (rec->trace().detail()) {
      rec->trace().async_begin("shuffle_fetch", "fetch",
                               static_cast<int>(node_.id().value()), fetch_id,
                               engine_.now());
    }
  }
  // Connection setup latency, then a network flow. The source's disk is
  // NOT charged: map outputs were written moments ago and the shuffle
  // service reads them back through the page cache, so shuffle fan-in
  // contends on the fabric, not on source spindles (see DESIGN.md).
  engine_.schedule_after(kFetchLatency, [this, fetch, fetch_id] {
    if (aborted_) return;
    // The AM-mediated choke point: never open a connection to an output
    // the AM no longer vouches for.
    if (output_query_ && !output_query_(fetch.map_index, fetch.source)) {
      on_fetch_failed(fetch, fetch_id);
      return;
    }
    if (fetch.bytes <= Bytes(0)) {
      on_fetch_done(fetch, fetch_id);
      return;
    }
    fabric_.transfer(fetch.source, node_.id(), fetch.bytes,
                     [this, fetch, fetch_id] { on_fetch_done(fetch, fetch_id); });
  });
}

void ReduceTask::on_fetch_failed(const PendingFetch& fetch,
                                 std::int64_t fetch_id) {
  --active_fetches_;
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("mr.shuffle.fetch_failures").add(1.0);
    if (rec->trace().detail()) {
      rec->trace().async_end("shuffle_fetch", "fetch",
                             static_cast<int>(node_.id().value()), fetch_id,
                             engine_.now());
    }
  }
  // Un-accept the map only if this fetch still owns its entry: a fresher
  // copy (already re-delivered from another node) must not be forgotten.
  auto seg = segments_.find(fetch.map_index);
  const bool owns = seg != segments_.end() &&
                    seg->second.source == fetch.source &&
                    seg->second.state != SegmentState::Fetched;
  if (owns) {
    segments_.erase(seg);
    if (fetch_failure_) fetch_failure_(fetch.map_index, fetch.source);
  }
  pump_fetches();
}

void ReduceTask::on_fetch_done(const PendingFetch& fetch,
                               std::int64_t fetch_id) {
  if (aborted_) return;
  // Re-check availability at completion: a source that died mid-transfer
  // delivered garbage, and the fetch must fail over exactly as if it had
  // never connected.
  if (output_query_ && !output_query_(fetch.map_index, fetch.source)) {
    on_fetch_failed(fetch, fetch_id);
    return;
  }
  const Bytes bytes = fetch.bytes;
  auto seg = segments_.find(fetch.map_index);
  MRON_CHECK(seg != segments_.end());
  seg->second.state = SegmentState::Fetched;
  --active_fetches_;
  ++fetched_maps_;
  total_input_ += bytes;
  report_.counters.shuffle_bytes += bytes;
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("mr.shuffle.fetches").add(1.0);
    rec->metrics().counter("mr.shuffle.bytes").add(bytes.as_double());
    if (rec->trace().detail()) {
      rec->trace().async_end("shuffle_fetch", "fetch",
                             static_cast<int>(node_.id().value()), fetch_id,
                             engine_.now());
    }
  }

  // Uniform partitions arrive as long runs of equal-sized segments. A
  // segment the buffer would absorb with no flush has no observable effect
  // (add_segment returns 0 and schedules nothing), so such runs are
  // deferred and later applied in one closed-form add_segments() call —
  // identical state, O(1) bookkeeping per fetch.
  Bytes flushed{0};
  if (fetch_run_count_ > 0 && bytes == fetch_run_segment_ &&
      buffer_.would_absorb(fetch_run_count_, bytes)) {
    ++fetch_run_count_;
  } else if (fetch_run_count_ == 0 && buffer_.would_absorb(0, bytes)) {
    fetch_run_segment_ = bytes;
    fetch_run_count_ = 1;
  } else {
    drain_fetch_run();
    flushed = buffer_.add_segment(bytes);
  }
  if (flushed > Bytes(0)) {
    ++outstanding_spill_writes_;
    node_.disk().submit(flushed.as_double(), [this] {
      --outstanding_spill_writes_;
      maybe_finish_shuffle();
    });
  }
  pump_fetches();
  maybe_finish_shuffle();
}

void ReduceTask::drain_fetch_run() {
  if (fetch_run_count_ == 0) return;
  const Bytes flushed = buffer_.add_segments(
      static_cast<int>(fetch_run_count_), fetch_run_segment_);
  // Every deferred copy passed would_absorb(), so the batch cannot flush.
  MRON_CHECK(flushed == Bytes(0));
  fetch_run_count_ = 0;
  fetch_run_segment_ = Bytes(0);
}

void ReduceTask::maybe_finish_shuffle() {
  if (aborted_) return;
  if (shuffle_done_) return;
  if (fetched_maps_ < inputs_.total_maps) return;
  if (active_fetches_ > 0 || !queue_.empty()) return;
  if (outstanding_spill_writes_ > 0) return;
  shuffle_done_ = true;

  drain_fetch_run();
  const Bytes final_flush = buffer_.finalize();
  if (final_flush > Bytes(0)) {
    node_.disk().submit(final_flush.as_double(), [this] { phase_merge(); });
  } else {
    engine_.schedule_after(0.0, [this] { phase_merge(); });
  }
}

void ReduceTask::phase_merge() {
  if (aborted_) return;
  switch_phase_span("merge");
  // Critical path: the shuffle (all fetches + final flush) ends here. The
  // AM also draws map_done → reduce_shuffle_done edges at delivery time;
  // extraction follows whichever arrival was last.
  if (inputs_.cp_job >= 0) {
    if (auto* rec = engine_.recorder()) {
      obs::CriticalPathBuilder& cp = rec->critical_path();
      const obs::CpNode shuffled = cp.stamped(
          inputs_.cp_job, "reduce_shuffle_done", engine_.now(),
          inputs_.task.index, inputs_.attempt,
          static_cast<int>(node_.id().value()),
          static_cast<int>(inputs_.trace_tid));
      cp.edge(inputs_.cp_start, shuffled, obs::Blame::ShuffleNet);
    }
  }
  report_.counters.spilled_records += buffer_.spilled_records();
  report_.counters.local_disk_write_bytes += buffer_.disk_write_bytes();

  const MergeCost mid = plan_disk_merge(
      buffer_.disk_files(), static_cast<int>(config_.io_sort_factor));
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("mr.reduce.spill_records")
        .add(static_cast<double>(buffer_.spilled_records()));
    if (mid.write > Bytes(0)) {
      rec->metrics().counter("mr.reduce.merge_passes").add(1.0);
    }
  }
  if (mid.write > Bytes(0)) {
    report_.counters.spilled_records += static_cast<std::int64_t>(
        std::llround(mid.write.as_double() / profile_.map_record_bytes));
    report_.counters.local_disk_write_bytes += mid.write;
    report_.counters.local_disk_read_bytes += mid.read;
    node_.disk().submit((mid.read + mid.write).as_double(),
                        [this] { phase_reduce(); });
  } else {
    engine_.schedule_after(0.0, [this] { phase_reduce(); });
  }
}

void ReduceTask::phase_reduce() {
  if (aborted_) return;
  switch_phase_span("reduce");
  if (inputs_.cp_job >= 0) {
    if (auto* rec = engine_.recorder()) {
      obs::CriticalPathBuilder& cp = rec->critical_path();
      const obs::CpNode merged = cp.stamped(
          inputs_.cp_job, "reduce_merge_done", engine_.now(),
          inputs_.task.index, inputs_.attempt,
          static_cast<int>(node_.id().value()),
          static_cast<int>(inputs_.trace_tid));
      cp.edge(cp.node(inputs_.cp_job, "reduce_shuffle_done",
                      inputs_.task.index, inputs_.attempt),
              merged, obs::Blame::SpillMerge);
    }
  }
  // Final merge streams on-disk bytes into reduce(), pipelined with the
  // user CPU work over the full input.
  const Bytes on_disk = buffer_.disk_write_bytes();
  report_.counters.local_disk_read_bytes += on_disk;
  // With map-output compression the fetched bytes are compressed: user
  // reduce() work applies to the logical (decompressed) volume, plus the
  // codec's decompression cost.
  const bool compressed = config_.map_output_compress >= 0.5;
  const double logical_mib =
      compressed ? total_input_.mib() / kCodecCompressionRatio
                 : total_input_.mib();
  double cpu_work =
      logical_mib * profile_.reduce_cpu_secs_per_mib * cpu_noise_;
  if (compressed) {
    cpu_work += logical_mib * kDecompressCpuSecsPerMib * cpu_noise_;
  }

  auto remaining = std::make_shared<int>(0);
  auto arm = [this, remaining]() {
    if (--*remaining == 0) phase_write_output();
  };
  if (on_disk > Bytes(0)) {
    ++*remaining;
    node_.disk().submit(on_disk.as_double(), arm);
  }
  if (cpu_work > 0.0) {
    ++*remaining;
    const double cap = std::min(
        node_.cpu_quota(static_cast<int>(config_.reduce_cpu_vcores)),
        profile_.reduce_cpu_demand_cores);
    report_.counters.cpu_seconds += cpu_work;
    node_.cpu().submit(cpu_work, cap, arm);
  }
  if (*remaining == 0) {
    engine_.schedule_after(0.0, [this] { phase_write_output(); });
  }
}

void ReduceTask::phase_write_output() {
  if (aborted_) return;
  switch_phase_span("write");
  // Output volume follows the logical input, not the compressed wire size.
  const double codec = config_.map_output_compress >= 0.5
                           ? kCodecCompressionRatio
                           : 1.0;
  const Bytes out = total_input_ * (profile_.reduce_output_ratio / codec);
  if (out <= Bytes(0)) {
    engine_.schedule_after(0.0, [this] { finish(false); });
    return;
  }
  // DFS write: local replica on this node's disk plus one remote replica
  // over the fabric (pipelined; the slower leg paces the write).
  auto remaining = std::make_shared<int>(2);
  auto arm = [this, remaining]() {
    if (--*remaining == 0) finish(false);
  };
  node_.disk().submit(out.as_double(), arm);
  // Remote replica target: any other node, chosen by the task's RNG.
  cluster::NodeId replica = node_.id();
  if (inputs_.num_nodes > 1) {
    const std::int64_t offset = rng_.uniform_int(1, inputs_.num_nodes - 1);
    replica =
        cluster::NodeId((node_.id().value() + offset) % inputs_.num_nodes);
  }
  fabric_.transfer(node_.id(), replica, out, arm);
}

void ReduceTask::finish(bool oom) {
  if (aborted_) return;
  finished_ = true;
  switch_phase_span(nullptr);
  // reduce() + output write folded into one compute segment.
  if (!oom && inputs_.cp_job >= 0) {
    if (auto* rec = engine_.recorder()) {
      obs::CriticalPathBuilder& cp = rec->critical_path();
      const obs::CpNode done = cp.stamped(
          inputs_.cp_job, "reduce_done", engine_.now(), inputs_.task.index,
          inputs_.attempt, static_cast<int>(node_.id().value()),
          static_cast<int>(inputs_.trace_tid));
      cp.edge(cp.node(inputs_.cp_job, "reduce_merge_done",
                      inputs_.task.index, inputs_.attempt),
              done, obs::Blame::ReduceCompute);
    }
  }
  node_.sub_used_memory(resident_memory_);
  report_.end_time = engine_.now();
  report_.failed_oom = oom;
  const double duration = std::max(report_.duration(), 1e-9);
  const double quota =
      node_.cpu_quota(static_cast<int>(config_.reduce_cpu_vcores));
  report_.cpu_util =
      std::min(1.0, report_.counters.cpu_seconds / (quota * duration));
  const double container = mebibytes(config_.reduce_memory_mb).as_double();
  report_.mem_util = resident_memory_.as_double() / container;
  report_.mem_commit = committed_memory_.as_double() / container;
  if (oom) {
    report_.counters = TaskCounters{};
    report_.mem_util = 1.0;
  }
  done_(report_);
}

}  // namespace mron::mapreduce
