// JobResult -> RunReport rollup: the MapReduce-aware half of the run
// report.
//
// The AM already rolls task counters up to JobCounters (task -> job); this
// header turns that plus the task reports into the generic obs::ReportJob
// shape (named numbers only), and assembles whole-run reports from a
// Simulation — obs stays MapReduce-agnostic, mapreduce stays
// serialization-agnostic.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "mapreduce/job.h"
#include "obs/report.h"

namespace mron::mapreduce {

class Simulation;

/// Roll one finished job up into a report entry. `config` is the job-level
/// configuration it ran with (tuned runs pass the tuned config); the full
/// extended parameter registry is dumped into ReportJob::config.
obs::ReportJob report_job_from(const JobResult& result,
                               const JobConfig& config);

/// Assemble a whole-run report: meta entries (in order), one ReportJob per
/// (result, config) pair, serialized against the simulation's flight
/// recorder (series/metrics/audit sections are empty when observation is
/// off or compiled out). Returns the serialized JSON.
std::string run_report_json(
    const Simulation& sim,
    const std::vector<std::pair<const JobResult*, const JobConfig*>>& jobs,
    const std::vector<std::pair<std::string, std::string>>& meta);

/// Deterministic collector key for a run: "<phase>|<meta k=v...>|<config
/// digest>". Lexicographic order on these keys is the export priority —
/// higher phase strings beat lower ones, then meta, then config — and
/// distinct runs always produce distinct keys.
std::string run_report_key(
    const std::string& phase,
    const std::vector<std::pair<std::string, std::string>>& meta,
    const JobConfig& config);

}  // namespace mron::mapreduce
