// Simulation: one-stop wiring of engine, cluster, DFS, YARN, and jobs.
//
// Owns every substrate object with consistent lifetimes and offers the
// high-level entry points used by examples, tests, benches, and the tuner:
// load a dataset, submit jobs (optionally concurrently, under FIFO or fair
// scheduling), and run the event loop to completion.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/fabric.h"
#include "cluster/monitor.h"
#include "cluster/node.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "dfs/dfs.h"
#include "dfs/placement_policy.h"
#include "dfs/rereplicator.h"
#include "faults/injector.h"
#include "mapreduce/job.h"
#include "mapreduce/mr_app_master.h"
#include "obs/host_profile.h"
#include "obs/progress.h"
#include "obs/recorder.h"
#include "sim/engine.h"
#include "yarn/resource_manager.h"

namespace mron::mapreduce {

struct SimulationOptions {
  cluster::ClusterSpec cluster;
  std::uint64_t seed = 1;
  /// Ready-queue backend for the engine (calendar queue by default, binary
  /// heap as the equivalence reference; see sim::QueueKind). Both dispatch
  /// byte-identical event streams — this switch exists for the equivalence
  /// suite and as an escape hatch.
  sim::QueueKind event_queue = sim::Engine::default_queue_kind();
  bool fair_scheduler = false;
  /// Non-empty: use the capacity scheduler with these relative queue
  /// shares instead of FIFO/fair; jobs pick a queue via
  /// JobSpec::scheduler_queue.
  std::vector<double> capacity_queues;
  SimTime monitor_period = 1.0;
  /// Above this node count the monitor publishes per-rack aggregate
  /// gauges/series instead of per-node ones, keeping report and trace size
  /// bounded at 1,000+ nodes. The 19-node testbed stays per-node.
  int monitor_node_series_limit = 64;
  /// Start the cluster monitor and let the RM route containers away from
  /// nodes whose disk/NIC ran hot in the last window (Section 3's
  /// hot-spot avoidance).
  bool hotspot_aware = false;
  double hot_threshold = 0.9;
  /// Delay-scheduling passes for data locality (0 = off).
  int locality_delay_passes = 0;
  /// Attach the flight recorder (metrics + trace + audit) and start the
  /// cluster monitor as its sampling clock. No-op when compiled out
  /// (cmake -DMRON_OBS=OFF).
  bool observe = false;
  /// Record phase-level spans and per-fetch async spans too. With detail
  /// off the trace holds exactly one span per task attempt plus one per
  /// tuner wave.
  bool trace_detail = false;
  /// Fault-injection plan (node crashes, degradation windows, per-attempt
  /// task failures). Empty = reliable cluster, zero overhead. The plan is
  /// seed-deterministic: identical plan + seed give byte-identical runs.
  faults::FaultPlan fault_plan;
  /// Attach the host self-profiler (obs/host_profile.h): where the
  /// *simulator's* own wall-clock time and memory go, per subsystem and
  /// setup-vs-steady phase. Host time is nondeterministic, so the profile
  /// exports only through write_host_profile() — never into the run
  /// report. No-op when compiled out (cmake -DMRON_OBS=OFF).
  bool host_profile = false;
  /// Stderr progress heartbeat for long runs (events/sec + sim-time + RSS),
  /// wall-clock throttled. Never touches report output.
  bool progress = false;
  /// Label prefixed to progress lines (e.g. the scalebench point name).
  std::string progress_label;
  /// Default DFS replication factor for datasets (load_dataset can override
  /// per dataset). Clamped to the node count at placement time.
  int dfs_replication = 3;
  /// Block placement policy: "" or "rack-aware" (the HDFS default — and the
  /// legacy RNG stream, byte-identical to earlier releases), "same-rack",
  /// or "spread". See dfs/placement_policy.h.
  std::string dfs_policy;
  /// Re-replication work limits (HDFS replication.max-streams and the
  /// balancer bandwidth cap). See dfs/rereplicator.h.
  int dfs_rerepl_streams_per_node = 2;
  double dfs_rerepl_stream_bandwidth = 64.0 * 1024 * 1024;
};

class Simulation {
 public:
  explicit Simulation(SimulationOptions options = {});

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] dfs::Dfs& dfs() { return *dfs_; }
  [[nodiscard]] const dfs::Dfs& dfs() const { return *dfs_; }
  [[nodiscard]] dfs::Rereplicator& rereplicator() { return *rerepl_; }
  [[nodiscard]] const dfs::Rereplicator& rereplicator() const {
    return *rerepl_;
  }
  [[nodiscard]] yarn::ResourceManager& rm() { return *rm_; }
  [[nodiscard]] cluster::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] cluster::ClusterMonitor& monitor() { return *monitor_; }
  [[nodiscard]] const cluster::Topology& topology() const { return *topo_; }
  [[nodiscard]] const SimulationOptions& options() const { return options_; }
  /// The flight recorder, or nullptr unless options.observe (or when
  /// observability is compiled out).
  [[nodiscard]] obs::Recorder* recorder() { return recorder_.get(); }
  [[nodiscard]] const obs::Recorder* recorder() const {
    return recorder_.get();
  }
  /// The fault injector, or nullptr when options.fault_plan is empty.
  [[nodiscard]] faults::FaultInjector* fault_injector() {
    return injector_.get();
  }
  [[nodiscard]] const faults::FaultInjector* fault_injector() const {
    return injector_.get();
  }
  /// The host self-profiler, or nullptr unless options.host_profile (or
  /// when observability is compiled out).
  [[nodiscard]] obs::HostProfiler* host_profiler() {
    return host_profiler_.get();
  }
  [[nodiscard]] const obs::HostProfiler* host_profiler() const {
    return host_profiler_.get();
  }

  /// Export the `mron.host_profile/1` document: registers the engine/
  /// recorder arena byte counters, then serializes the profiler. Returns
  /// false (writing nothing) when profiling is off or compiled out. Host
  /// time is nondeterministic — this never feeds run_report.json.
  bool write_host_profile(std::ostream& os);

  /// Create + place a dataset in the simulated DFS. `replication`
  /// overrides the simulation's default factor for this dataset (-1 keeps
  /// the default).
  dfs::DatasetId load_dataset(const std::string& name, Bytes size,
                              int replication = -1);

  /// Submit a job; the AM lives for the Simulation's lifetime. `on_done`
  /// may be empty.
  MrAppMaster& submit_job(JobSpec spec,
                          std::function<void(const JobResult&)> on_done = {});

  /// Convenience: submit one job, run to completion, return its result.
  JobResult run_job(JobSpec spec);
  /// Submit all specs at once, run to completion, return results in spec
  /// order (the multi-tenant path).
  std::vector<JobResult> run_jobs(std::vector<JobSpec> specs);

  /// Drain the event loop.
  void run();

 private:
#if MRON_OBS_ENABLED
  /// After a drain: emit Chrome-trace flow arrows along the critical path
  /// of every newly finished job (see obs/critical_path.h).
  void emit_critical_path_flows();
#endif

  SimulationOptions options_;
  sim::Engine engine_{options_.event_queue};
  /// Declared before the substrate objects: nodes and servers cache metric
  /// handles into the recorder, so it must outlive them.
  std::unique_ptr<obs::Recorder> recorder_;
  /// Host self-profiler; created first so Setup-phase frames cover all of
  /// construction. Always null when MRON_OBS is compiled out.
  std::unique_ptr<obs::HostProfiler> host_profiler_;
  std::unique_ptr<obs::ProgressMeter> progress_;
  Rng rng_;
  std::unique_ptr<cluster::Topology> topo_;
  std::vector<std::unique_ptr<cluster::Node>> nodes_;
  std::unique_ptr<cluster::Fabric> fabric_;
  std::unique_ptr<cluster::ClusterMonitor> monitor_;
  std::unique_ptr<dfs::Dfs> dfs_;
  std::unique_ptr<yarn::ResourceManager> rm_;
  std::unique_ptr<dfs::Rereplicator> rerepl_;
  std::unique_ptr<faults::FaultInjector> injector_;
  std::vector<std::unique_ptr<MrAppMaster>> apps_;
  IdAllocator<JobId> job_ids_;
  /// Jobs whose critical-path flow events were already emitted (repeated
  /// run() calls must not duplicate them), plus the flow-id source.
  std::set<std::int64_t> cp_flows_emitted_;
  std::int64_t next_cp_flow_id_ = 0;
};

}  // namespace mron::mapreduce
