// One map-task attempt executing inside a container.
//
// Phase pipeline (Section 4/6 mechanics):
//   1. admission  — working set vs. container memory; an over-committed
//                   container fails with OOM after a startup-and-die delay;
//   2. read+map   — input split read (local disk, or remote disk + network
//                   for non-local splits) pipelined with user map() CPU;
//   3. sort+spill — the plan_map_spills() byte/record plan charged to the
//                   local disk plus per-record sort CPU.
//
// Category-III parameters (sort.spill.percent) may be re-pushed while the
// task runs via update_config(); they take effect because the spill plan is
// materialized only when phase 3 begins.
#pragma once

#include <functional>

#include "cluster/fabric.h"
#include "cluster/node.h"
#include "common/rng.h"
#include "dfs/dfs.h"
#include "mapreduce/job.h"
#include "mapreduce/spill_model.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace mron::mapreduce {

class MapTask {
 public:
  struct Inputs {
    TaskRef task;
    int attempt = 1;
    Bytes input_bytes;
    cluster::NodeId source;       ///< replica the split is read from
    dfs::Locality locality = dfs::Locality::NodeLocal;
    /// Job-level working-set scale (drawn once per job): the app's memory
    /// footprint is a property of the program, near-constant across tasks.
    double ws_factor = 1.0;
    /// Multiplicative service-time noise CV (JobSpec::noise_cv).
    double noise_cv = 0.08;
    /// Trace lane (container id) for the attempt's phase spans.
    std::int64_t trace_tid = 0;
    /// Critical path (obs/critical_path.h): owning job id, the attempt's
    /// "map_start" node, and whether this is a speculative backup (its
    /// compute segments are then blamed on speculation). cp_job < 0
    /// disables emission (unobserved runs, unit tests).
    std::int64_t cp_job = -1;
    std::int64_t cp_start = -1;
    bool cp_speculative = false;
  };
  /// Fired once, with the attempt's report (failed_oom set on OOM).
  using Done = std::function<void(const TaskReport&)>;

  MapTask(sim::Engine& engine, cluster::Node& node, cluster::Node& source,
          cluster::Fabric& fabric, const AppProfile& profile,
          const JobConfig& config, const Inputs& inputs, Rng rng, Done done);

  MapTask(const MapTask&) = delete;
  MapTask& operator=(const MapTask&) = delete;

  void start();
  /// Push updated (category-III) parameters into the running attempt.
  void update_config(const JobConfig& config);
  /// Kill the attempt (node failure): releases its memory accounting and
  /// suppresses every outstanding callback; `done` never fires. Streams
  /// already submitted to the dead node's servers are left to drain — the
  /// node is gone, so nobody contends with them.
  void abort();
  [[nodiscard]] bool aborted() const { return aborted_; }

  /// Combiner-reduced output bytes this map produces for the shuffle.
  [[nodiscard]] Bytes combined_output_bytes() const;

 private:
  void phase_read_and_map();
  void phase_spill();
  void finish(bool oom);
  /// Close the open phase span (if any) and open `name` when detail tracing
  /// is on; pass nullptr to just close.
  void switch_phase_span(const char* name);

  sim::Engine& engine_;
  cluster::Node& node_;
  cluster::Node& source_;
  cluster::Fabric& fabric_;
  const AppProfile& profile_;
  JobConfig config_;
  Inputs inputs_;
  Rng rng_;
  Done done_;

  Bytes working_set_{0};
  Bytes output_bytes_{0};
  std::int64_t output_records_ = 0;
  double cpu_noise_ = 1.0;
  TaskReport report_;
  bool started_ = false;
  bool aborted_ = false;
  bool finished_ = false;
  obs::SpanId phase_span_ = obs::kInvalidSpan;
};

}  // namespace mron::mapreduce
