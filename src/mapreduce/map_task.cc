#include "mapreduce/map_task.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "obs/recorder.h"

namespace mron::mapreduce {

namespace {
// A task that dies of OOM burns a JVM start plus some fraction of its
// useful work before the container is killed.
constexpr double kOomBaseDelay = 5.0;
constexpr double kOomProgressFraction = 0.3;
}  // namespace

MapTask::MapTask(sim::Engine& engine, cluster::Node& node,
                 cluster::Node& source, cluster::Fabric& fabric,
                 const AppProfile& profile, const JobConfig& config,
                 const Inputs& inputs, Rng rng, Done done)
    : engine_(engine),
      node_(node),
      source_(source),
      fabric_(fabric),
      profile_(profile),
      config_(config),
      inputs_(inputs),
      rng_(rng),
      done_(std::move(done)) {
  MRON_CHECK(done_ != nullptr);
  cpu_noise_ = rng_.lognormal_noise(0.0);  // placeholder; set in start()
}

Bytes MapTask::combined_output_bytes() const {
  // What the shuffle moves: combiner output, compressed if the codec is on.
  const double codec = config_.map_output_compress >= 0.5
                           ? kCodecCompressionRatio
                           : 1.0;
  return output_bytes_ * profile_.combiner_ratio * codec;
}

void MapTask::update_config(const JobConfig& config) {
  // Only category-III fields may change mid-run; buffer sizes and container
  // geometry were fixed at launch, so copy just the live fields.
  config_.sort_spill_percent = config.sort_spill_percent;
  config_.shuffle_merge_percent = config.shuffle_merge_percent;
  config_.shuffle_memory_limit_percent = config.shuffle_memory_limit_percent;
  config_.merge_inmem_threshold = config.merge_inmem_threshold;
  config_.reduce_input_buffer_percent = config.reduce_input_buffer_percent;
}

void MapTask::switch_phase_span(const char* name) {
  auto* rec = engine_.recorder();
  if (rec == nullptr) return;
  rec->trace().end(phase_span_, engine_.now());
  phase_span_ = obs::kInvalidSpan;
  if (name != nullptr && rec->trace().detail()) {
    phase_span_ = rec->trace().begin(
        name, "phase", static_cast<int>(node_.id().value()),
        inputs_.trace_tid, engine_.now());
  }
}

void MapTask::abort() {
  if (aborted_ || finished_) return;
  aborted_ = true;
  switch_phase_span(nullptr);
  if (started_) node_.sub_used_memory(working_set_);
}

void MapTask::start() {
  MRON_CHECK(!started_);
  started_ = true;
  report_.task = inputs_.task;
  report_.attempt = inputs_.attempt;
  report_.start_time = engine_.now();
  report_.config = config_;
  report_.node = node_.id();
  report_.locality = inputs_.locality;

  cpu_noise_ = rng_.lognormal_noise(inputs_.noise_cv);
  const double ws_noise = inputs_.ws_factor * rng_.lognormal_noise(0.01);
  working_set_ =
      profile_.map_working_set * ws_noise + mebibytes(config_.io_sort_mb);
  output_bytes_ = inputs_.input_bytes * profile_.map_output_ratio +
                  profile_.map_output_bytes_fixed;
  output_records_ = static_cast<std::int64_t>(
      std::llround(output_bytes_.as_double() / profile_.map_record_bytes));

  node_.add_used_memory(working_set_);

  if (working_set_ > mebibytes(config_.map_memory_mb)) {
    // Over-committed container: the node manager kills it partway through.
    const double ideal_cpu =
        inputs_.input_bytes.mib() * profile_.map_cpu_secs_per_mib +
        profile_.map_cpu_secs_fixed;
    const double delay = kOomBaseDelay + kOomProgressFraction * ideal_cpu;
    engine_.schedule_after(delay, [this] { finish(/*oom=*/true); });
    return;
  }
  // JVM/container startup before any useful work.
  engine_.schedule_after(profile_.task_startup_secs * rng_.lognormal_noise(0.1),
                         [this] { phase_read_and_map(); });
}

void MapTask::phase_read_and_map() {
  if (aborted_) return;
  switch_phase_span("map_read");
  auto remaining = std::make_shared<int>(0);
  auto arm = [this, remaining]() {
    if (--*remaining == 0) phase_spill();
  };

  // Input read: local disk, or remote disk + network joined.
  if (inputs_.input_bytes > Bytes(0)) {
    if (inputs_.locality == dfs::Locality::NodeLocal) {
      ++*remaining;
      node_.disk().submit(inputs_.input_bytes.as_double(), arm);
    } else {
      ++*remaining;
      auto fetch_done = std::make_shared<int>(2);
      auto fetch_arm = [arm, fetch_done]() {
        if (--*fetch_done == 0) arm();
      };
      source_.disk().submit(inputs_.input_bytes.as_double(), fetch_arm);
      fabric_.transfer(source_.id(), node_.id(), inputs_.input_bytes,
                       fetch_arm);
    }
  }

  // User map() compute, capped by the container's vcore quota and the
  // code's own parallelism.
  const double cpu_work =
      (inputs_.input_bytes.mib() * profile_.map_cpu_secs_per_mib +
       profile_.map_cpu_secs_fixed) *
      cpu_noise_;
  if (cpu_work > 0.0) {
    ++*remaining;
    const double cap =
        std::min(node_.cpu_quota(static_cast<int>(config_.map_cpu_vcores)),
                 profile_.map_cpu_demand_cores);
    report_.counters.cpu_seconds += cpu_work;
    node_.cpu().submit(cpu_work, cap, arm);
  }

  if (*remaining == 0) {
    engine_.schedule_after(0.0, [this] { phase_spill(); });
  }
}

void MapTask::phase_spill() {
  if (aborted_) return;
  switch_phase_span("map_spill");
  // The spill plan is materialized here so that live sort.spill.percent
  // changes pushed during phase 2 are honored.
  const MapSpillPlan plan = plan_map_spills(
      output_bytes_, output_records_, profile_.combiner_ratio, config_);
  if (auto* rec = engine_.recorder()) {
    auto& reg = rec->metrics();
    reg.counter("mr.map.spills").add(static_cast<double>(plan.num_spills));
    reg.counter("mr.map.spill_records")
        .add(static_cast<double>(plan.spill_records));
    reg.counter("mr.map.spill_bytes").add(plan.disk_write_bytes.as_double());
    reg.counter("mr.map.merge_rounds")
        .add(static_cast<double>(plan.merge_rounds));
    // Critical path: read+map ends here; the rest of the attempt is
    // sort/spill/merge. Speculative backups blame their whole compute on
    // the speculation decision that launched them.
    if (inputs_.cp_job >= 0) {
      obs::CriticalPathBuilder& cp = rec->critical_path();
      const obs::CpNode spill = cp.stamped(
          inputs_.cp_job, "map_spill", engine_.now(), inputs_.task.index,
          inputs_.attempt, static_cast<int>(node_.id().value()),
          static_cast<int>(inputs_.trace_tid));
      cp.edge(inputs_.cp_start, spill,
              inputs_.cp_speculative ? obs::Blame::Speculation
                                     : obs::Blame::MapCompute);
    }
  }
  // The codec shrinks every on-disk byte; record counts are unchanged.
  const bool compress = config_.map_output_compress >= 0.5;
  const double codec = compress ? kCodecCompressionRatio : 1.0;
  report_.counters.map_output_records = output_records_;
  report_.counters.combine_output_records = static_cast<std::int64_t>(
      std::llround(static_cast<double>(output_records_) *
                   profile_.combiner_ratio));
  report_.counters.spilled_records = plan.spill_records;
  report_.counters.map_output_bytes = output_bytes_;
  report_.counters.local_disk_write_bytes = plan.disk_write_bytes * codec;
  report_.counters.local_disk_read_bytes = plan.disk_read_bytes * codec;

  const double disk_work =
      (plan.disk_write_bytes + plan.disk_read_bytes).as_double() * codec;
  double sort_cpu = static_cast<double>(plan.spill_records) *
                    profile_.sort_cpu_secs_per_record * cpu_noise_;
  if (compress) {
    // Compression CPU is paid per raw byte pushed through the codec.
    sort_cpu +=
        (plan.disk_write_bytes.mib() + plan.disk_read_bytes.mib()) *
        kCompressCpuSecsPerMib * cpu_noise_;
  }

  auto remaining = std::make_shared<int>(0);
  auto arm = [this, remaining]() {
    if (--*remaining == 0) finish(/*oom=*/false);
  };
  if (disk_work > 0.0) {
    ++*remaining;
    node_.disk().submit(disk_work, arm);
  }
  if (sort_cpu > 0.0) {
    ++*remaining;
    const double cap =
        node_.cpu_quota(static_cast<int>(config_.map_cpu_vcores));
    report_.counters.cpu_seconds += sort_cpu;
    node_.cpu().submit(sort_cpu, cap, arm);
  }
  if (*remaining == 0) {
    engine_.schedule_after(0.0, [this] { finish(false); });
  }
}

void MapTask::finish(bool oom) {
  if (aborted_) return;
  finished_ = true;
  switch_phase_span(nullptr);
  if (!oom && inputs_.cp_job >= 0) {
    if (auto* rec = engine_.recorder()) {
      obs::CriticalPathBuilder& cp = rec->critical_path();
      const obs::CpNode done = cp.stamped(
          inputs_.cp_job, "map_done", engine_.now(), inputs_.task.index,
          inputs_.attempt, static_cast<int>(node_.id().value()),
          static_cast<int>(inputs_.trace_tid));
      cp.edge(cp.node(inputs_.cp_job, "map_spill", inputs_.task.index,
                      inputs_.attempt),
              done,
              inputs_.cp_speculative ? obs::Blame::Speculation
                                     : obs::Blame::SpillMerge);
    }
  }
  node_.sub_used_memory(working_set_);
  report_.end_time = engine_.now();
  report_.failed_oom = oom;
  const double duration = std::max(report_.duration(), 1e-9);
  const double quota =
      node_.cpu_quota(static_cast<int>(config_.map_cpu_vcores));
  report_.cpu_util =
      std::min(1.0, report_.counters.cpu_seconds / (quota * duration));
  const double container = mebibytes(config_.map_memory_mb).as_double();
  // Resident set averages below the commitment: the sort buffer is only
  // half full on average.
  const Bytes resident = working_set_ - mebibytes(config_.io_sort_mb) * 0.5;
  report_.mem_util = resident.as_double() / container;
  report_.mem_commit = working_set_.as_double() / container;
  if (oom) {
    // The attempt produced nothing durable.
    report_.counters = TaskCounters{};
    report_.mem_util = 1.0;
  }
  done_(report_);
}

}  // namespace mron::mapreduce
