// Pure (engine-free) models of the map-side sort/spill pipeline and the
// reduce-side shuffle buffer — the mechanics that the Table-2 memory
// parameters control and that Figures 7-9 of the paper measure.
//
// Map side: output records stream into a circular sort buffer of
// io.sort.mb; a background spill is triggered every time the buffer reaches
// sort.spill.percent of capacity, and whatever remains is flushed when the
// map finishes. One spill file means the file is simply renamed to the map
// output (the optimal case: every record written exactly once). More than
// one spill file forces a merge: intermediate rounds happen while the file
// count exceeds io.sort.factor, then a final round writes the single map
// output file — every merge write re-counts its records as spilled, which
// is how Hadoop's SPILLED_RECORDS reaches ~3x map-output records in the
// worst case.
//
// Reduce side: fetched map segments go straight to disk when larger than
// shuffle.memory.limit.percent of the shuffle buffer
// (= memory.mb * shuffle.input.buffer.percent); otherwise they accumulate
// in memory until shuffle.merge.percent of the buffer is filled or
// merge.inmem.threshold segments are buffered, at which point the in-memory
// pool is merged and flushed to one disk file. After the last fetch,
// reduce.input.buffer.percent of the task memory may keep segments in
// memory for the reduce phase; the rest is flushed. Disk files above
// io.sort.factor cost intermediate merge rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "mapreduce/params.h"

namespace mron::mapreduce {

/// Per-record accounting overhead in the map sort buffer (Hadoop keeps
/// 16 bytes of index metadata per record alongside the serialized record),
/// which shrinks the buffer's effective data capacity — sharply so for
/// small records like WordCount's.
constexpr double kSpillMetadataBytes = 16.0;

/// JVM heap as a fraction of the container's memory (Hadoop sets
/// -Xmx to ~80% of the container so native/metaspace overhead fits).
/// Shuffle buffers are percentages of the heap, not the container.
constexpr double kHeapFraction = 0.8;

/// Snappy-like intermediate-compression model (extension parameter
/// mapreduce.map.output.compress): on-disk/on-wire bytes shrink to this
/// fraction of the raw bytes...
constexpr double kCodecCompressionRatio = 0.45;
/// ...at these CPU prices per raw MiB, on the map (compress) and reduce
/// (decompress) sides.
constexpr double kCompressCpuSecsPerMib = 0.010;
constexpr double kDecompressCpuSecsPerMib = 0.005;

/// Cost of merging `file_sizes` down to at most `factor` files by repeatedly
/// merging the `factor` smallest (Hadoop's merge policy, simplified): bytes
/// re-read and re-written by intermediate rounds only.
struct MergeCost {
  Bytes read{0};
  Bytes write{0};
  int rounds = 0;
};
MergeCost plan_disk_merge(std::vector<Bytes> file_sizes, int factor);

/// Map-side spill plan for one task.
struct MapSpillPlan {
  int num_spills = 0;                 ///< spill files written during the map
  std::int64_t spill_records = 0;     ///< SPILLED_RECORDS contribution
  Bytes disk_write_bytes{0};          ///< all local writes (spills + merges)
  Bytes disk_read_bytes{0};           ///< merge re-reads
  int merge_rounds = 0;               ///< rounds beyond the initial spills
};
MapSpillPlan plan_map_spills(Bytes map_output_bytes,
                             std::int64_t map_output_records,
                             double combiner_ratio, const JobConfig& cfg);

/// Incremental reduce-side shuffle buffer accounting. Records are derived
/// from bytes via `record_bytes`.
class ShuffleBufferModel {
 public:
  ShuffleBufferModel(const JobConfig& cfg, double record_bytes);

  /// Account one fetched segment. Returns bytes written to disk *now* (0 if
  /// the segment was absorbed into the in-memory pool without a flush).
  Bytes add_segment(Bytes segment);

  /// Account `count` equal-sized segments in one call, computing the
  /// steady-state fill→merge→flush cycle in closed form. Bit-exact against
  /// calling add_segment(segment) `count` times: identical pool state,
  /// disk-file list, spilled-record and merge counts, and the same total
  /// flushed bytes (the sum of what the incremental calls would return).
  /// O(1) in `count` except for appending the flushed-file entries.
  Bytes add_segments(int count, Bytes segment);

  /// True iff one more add_segment(segment) — issued after `pending`
  /// additional copies of the same segment have been absorbed — would be
  /// absorbed into the in-memory pool with no observable side effect (no
  /// flush, no direct-to-disk write, return value 0). Lets callers defer a
  /// run of uniform segments and apply it later via add_segments().
  [[nodiscard]] bool would_absorb(std::int64_t pending, Bytes segment) const;

  /// Account end-of-shuffle: applies reduce.input.buffer.percent and
  /// returns bytes flushed by the final spill (0 if everything left in
  /// memory fits the reduce-phase budget).
  Bytes finalize();

  // --- results (valid after finalize) ---------------------------------------
  [[nodiscard]] Bytes bytes_kept_in_memory() const { return kept_in_memory_; }
  [[nodiscard]] Bytes disk_write_bytes() const { return disk_write_; }
  [[nodiscard]] std::int64_t spilled_records() const { return spilled_records_; }
  [[nodiscard]] const std::vector<Bytes>& disk_files() const {
    return disk_files_;
  }
  [[nodiscard]] int inmem_merges() const { return inmem_merges_; }

  [[nodiscard]] Bytes shuffle_buffer() const { return shuffle_buffer_; }
  [[nodiscard]] Bytes segment_memory_limit() const { return segment_limit_; }

  /// Live re-tuning (category-III parameters): refresh thresholds from a
  /// changed config without losing pool state.
  void update_live_params(const JobConfig& cfg);

 private:
  void flush_pool();

  double record_bytes_;
  Bytes task_memory_;
  Bytes shuffle_buffer_;
  Bytes segment_limit_;
  Bytes merge_trigger_;
  std::int64_t inmem_threshold_;
  double reduce_input_buffer_percent_;

  Bytes pool_{0};
  int pool_segments_ = 0;
  Bytes kept_in_memory_{0};
  Bytes disk_write_{0};
  std::int64_t spilled_records_ = 0;
  std::vector<Bytes> disk_files_;
  int inmem_merges_ = 0;
  bool finalized_ = false;
};

}  // namespace mron::mapreduce
