// One reduce-task attempt: shuffle (fetch + buffer accounting), merge, and
// the reduce/write phases.
//
// Fetches are pulled from a queue of completed map outputs with at most
// `shuffle.parallelcopies` concurrent transfers; each fetch pays a fixed
// connection latency plus a flow that contends on the source disk and the
// network fabric. Buffer mechanics are delegated to ShuffleBufferModel, so
// every reduce-side Table-2 parameter shapes the disk traffic this task
// generates. After the last segment lands, on-disk files beyond
// io.sort.factor cost intermediate merge rounds; the final merge streams
// into the user reduce(), which is CPU work pipelined with the disk read,
// and the output is written locally and replicated to one remote node.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "cluster/fabric.h"
#include "cluster/node.h"
#include "common/rng.h"
#include "mapreduce/job.h"
#include "mapreduce/spill_model.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace mron::mapreduce {

class ReduceTask {
 public:
  struct Inputs {
    TaskRef task;
    int attempt = 1;
    int total_maps = 0;
    int num_nodes = 1;  ///< cluster size, for output-replica placement
    /// Job-level working-set scale (see MapTask::Inputs::ws_factor).
    double ws_factor = 1.0;
    /// Multiplicative service-time noise CV (JobSpec::noise_cv).
    double noise_cv = 0.08;
    /// Trace lane (container id) for the attempt's phase spans.
    std::int64_t trace_tid = 0;
    /// Critical path (obs/critical_path.h): owning job id; < 0 disables
    /// emission. The attempt's phase-boundary nodes are keyed by
    /// (task.index, attempt), so the AM can address them without handles.
    std::int64_t cp_job = -1;
    std::int64_t cp_start = -1;
  };
  using Done = std::function<void(const TaskReport&)>;
  /// Resolves a NodeId to the node (for charging source-disk reads).
  using NodeResolver = std::function<cluster::Node&(cluster::NodeId)>;
  /// AM-mediated "is map `map_index`'s output still available at `source`?"
  /// query — the single choke point every fetch passes through (at fetch
  /// start and again at completion, since the source may die mid-transfer).
  /// The task itself never assumes a map host stays reachable.
  using OutputQuery = std::function<bool(int, cluster::NodeId)>;
  /// Fired when a fetch is abandoned because its source disappeared; the AM
  /// re-executes the lost map (or re-delivers from the live copy) and this
  /// reducer accepts the re-delivery.
  using FetchFailure = std::function<void(int, cluster::NodeId)>;

  ReduceTask(sim::Engine& engine, cluster::Node& node, cluster::Fabric& fabric,
             NodeResolver resolver, const AppProfile& profile,
             const JobConfig& config, const Inputs& inputs, Rng rng,
             Done done);

  ReduceTask(const ReduceTask&) = delete;
  ReduceTask& operator=(const ReduceTask&) = delete;

  /// Install the AM's availability query / failure hooks. Must be called
  /// before start(); without them the task falls back to trusting every
  /// source (unit-test mode only).
  void set_output_query(OutputQuery query) { output_query_ = std::move(query); }
  void set_fetch_failure(FetchFailure cb) { fetch_failure_ = std::move(cb); }

  void start();
  /// Feed map `map_index`'s partition for this reducer. Safe to call both
  /// before and after start(); duplicate indices (a map re-executed after a
  /// node failure) are ignored — the first copy was already accepted.
  void add_map_output(int map_index, cluster::NodeId source, Bytes bytes);
  /// Node fail-stop on `node`: drop queued fetches sourced there and forget
  /// their map indices so the AM's re-delivery is accepted. Segments already
  /// fetched are local data and are kept; in-flight transfers are doomed by
  /// the completion-time availability re-check.
  void invalidate_source(cluster::NodeId node);
  /// Push updated category-III parameters into the running attempt.
  void update_config(const JobConfig& config);
  /// Kill the attempt (node failure); `done` never fires. See
  /// MapTask::abort().
  void abort();
  [[nodiscard]] bool aborted() const { return aborted_; }

 private:
  struct PendingFetch {
    int map_index = -1;
    cluster::NodeId source;
    Bytes bytes;
  };
  enum class SegmentState { Queued, Fetching, Fetched };
  /// Where an accepted map output is in its fetch lifecycle; keyed by map
  /// index (replaces the old seen-set, which could not tell a fetched
  /// segment from one lost with its source).
  struct SegmentInfo {
    cluster::NodeId source;
    SegmentState state = SegmentState::Queued;
  };

  void pump_fetches();
  void begin_fetch(PendingFetch fetch);
  void on_fetch_done(const PendingFetch& fetch, std::int64_t fetch_id);
  /// The fetch's source disappeared: un-accept the map (so re-delivery is
  /// taken), tell the AM, and keep the fetch pipeline moving.
  void on_fetch_failed(const PendingFetch& fetch, std::int64_t fetch_id);
  /// Apply the deferred uniform fetch run (see on_fetch_done) through the
  /// closed-form kernel. Must run before any other buffer interaction.
  void drain_fetch_run();
  void maybe_finish_shuffle();
  void phase_merge();
  void phase_reduce();
  void phase_write_output();
  void finish(bool oom);
  /// See MapTask::switch_phase_span.
  void switch_phase_span(const char* name);

  sim::Engine& engine_;
  cluster::Node& node_;
  cluster::Fabric& fabric_;
  NodeResolver resolver_;
  const AppProfile& profile_;
  JobConfig config_;
  Inputs inputs_;
  Rng rng_;
  Done done_;
  OutputQuery output_query_;
  FetchFailure fetch_failure_;

  ShuffleBufferModel buffer_;
  /// Deferred run of equal-sized absorbable segments, not yet applied to
  /// buffer_. Only segments proven side-effect-free (would_absorb) are
  /// deferred, so batching is observationally invisible.
  Bytes fetch_run_segment_{0};
  std::int64_t fetch_run_count_ = 0;
  std::deque<PendingFetch> queue_;
  int active_fetches_ = 0;
  int fetched_maps_ = 0;
  int outstanding_spill_writes_ = 0;
  bool shuffle_done_ = false;
  bool started_ = false;
  bool startup_done_ = false;
  bool oom_ = false;
  bool aborted_ = false;
  bool finished_ = false;
  std::map<int, SegmentInfo> segments_;

  Bytes total_input_{0};
  Bytes resident_memory_{0};
  Bytes committed_memory_{0};
  double cpu_noise_ = 1.0;
  TaskReport report_;
  obs::SpanId phase_span_ = obs::kInvalidSpan;
  std::int64_t next_fetch_seq_ = 0;  ///< async-span id source for fetches
};

/// Per-fetch connection/setup latency (seconds); hidden by parallelcopies.
constexpr double kFetchLatency = 0.05;
/// Average fraction of a buffer that is actually resident over time; used
/// for utilization reporting (capacity is reserved, occupancy fluctuates).
constexpr double kAvgBufferOccupancy = 0.5;

}  // namespace mron::mapreduce
