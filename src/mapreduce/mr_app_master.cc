#include "mapreduce/mr_app_master.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "faults/injector.h"
#include "obs/host_profile.h"
#include "obs/recorder.h"

namespace mron::mapreduce {

const char* task_kind_name(TaskKind kind) {
  return kind == TaskKind::Map ? "map" : "reduce";
}

MrAppMaster::MrAppMaster(sim::Engine& engine, yarn::ResourceManager& rm,
                         cluster::Fabric& fabric, dfs::Dfs& dfs, JobId id,
                         JobSpec spec, Rng rng, JobDone on_done)
    : engine_(engine),
      rm_(rm),
      fabric_(fabric),
      dfs_(dfs),
      id_(id),
      spec_(std::move(spec)),
      rng_(rng),
      on_done_(std::move(on_done)) {
  MRON_CHECK(on_done_ != nullptr);
  MRON_CHECK(spec_.num_reduces >= 0);
  clamp_constraints(spec_.config);
}

void MrAppMaster::submit() {
  MRON_CHECK(!submitted_);
  submitted_ = true;
  app_ = rm_.register_app(spec_.name, /*weight=*/1.0, spec_.scheduler_queue);
  rm_.subscribe_node_failures(
      [this](cluster::NodeId node) { handle_node_failure(node); });
  result_.id = id_;
  result_.name = spec_.name;
  result_.submit_time = engine_.now();
  if (auto* cpb = cp()) {
    // Root of the job's causal DAG; every first-attempt container wait
    // draws its sched_wait edge from here.
    cp_submit_ = cpb->stamped(id_.value(), "job_submit", engine_.now());
  }

  // Wave progress is pull-model (recorder.h's contract): the sampling clock
  // reads the completion counters once per tick and stamps the whole-run
  // wave timelines, instead of the per-task paths writing gauges.
  if (auto* rec = engine_.recorder()) {
    map_secs_hist_ = &rec->metrics().histogram(
        "mr.map.task_secs",
        {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
    reduce_secs_hist_ = &rec->metrics().histogram(
        "mr.reduce.task_secs",
        {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
    const std::string prefix = "job" + std::to_string(id_.value()) + ".";
    auto& store = rec->series();
    auto* maps_running = &store.series(prefix + "maps_running");
    auto* maps_frac = &store.series(prefix + "maps_completed_frac");
    auto* reduces_running = &store.series(prefix + "reduces_running");
    auto* reduces_frac = &store.series(prefix + "reduces_completed_frac");
    rec->add_flush_hook([this, maps_running, maps_frac, reduces_running,
                         reduces_frac] {
      int live_maps = 0;
      for (const auto& m : maps_) {
        if (m.running || m.spec_running) ++live_maps;
      }
      int live_reduces = 0;
      for (const auto& r : reduces_) {
        if (r.running) ++live_reduces;
      }
      const SimTime now = engine_.now();
      maps_running->push(now, static_cast<double>(live_maps));
      maps_frac->push(now, num_maps_ == 0
                               ? 1.0
                               : static_cast<double>(completed_maps_) /
                                     static_cast<double>(num_maps_));
      reduces_running->push(now, static_cast<double>(live_reduces));
      reduces_frac->push(
          now, spec_.num_reduces == 0
                   ? 1.0
                   : static_cast<double>(completed_reduces_) /
                         static_cast<double>(spec_.num_reduces));
    });
  }

  // Build map tasks: one per input block, or synthetic compute-only maps.
  if (spec_.input.valid()) {
    const auto& ds = dfs_.dataset(spec_.input);
    num_maps_ = static_cast<int>(ds.blocks.size());
    maps_.resize(static_cast<std::size_t>(num_maps_));
    for (int i = 0; i < num_maps_; ++i) {
      auto& m = maps_[static_cast<std::size_t>(i)];
      m.block = static_cast<std::size_t>(i);
      m.input = ds.blocks[m.block].size;
      m.replicas = ds.blocks[m.block].replicas;
    }
  } else {
    MRON_CHECK_MSG(spec_.num_maps_override > 0,
                   "job without input needs num_maps_override");
    num_maps_ = spec_.num_maps_override;
    maps_.resize(static_cast<std::size_t>(num_maps_));
  }
  for (int i = 0; i < num_maps_; ++i) map_queue_.push_back(i);

  reduces_.resize(static_cast<std::size_t>(spec_.num_reduces));
  for (int i = 0; i < spec_.num_reduces; ++i) reduce_queue_.push_back(i);

  // The job's working-set scale: one draw per job (an application's memory
  // footprint is a program property, near-constant across its tasks).
  ws_factor_ = rng_.fork(0xf00d).lognormal_noise(0.05);

  // Per-reducer partition weights (data skew), normalized to sum 1.
  partition_weights_.assign(static_cast<std::size_t>(spec_.num_reduces), 0.0);
  double sum = 0.0;
  Rng skew_rng = rng_.fork(0x5eed);
  for (auto& w : partition_weights_) {
    w = skew_rng.lognormal_noise(spec_.profile.partition_skew_cv);
    sum += w;
  }
  for (auto& w : partition_weights_) w /= std::max(sum, 1e-12);

  schedule_pump();
}

void MrAppMaster::set_job_config(const JobConfig& config) {
  spec_.config = config;
  clamp_constraints(spec_.config);
}

bool MrAppMaster::set_task_config(const TaskRef& task, const JobConfig& config) {
  JobConfig clamped = config;
  clamp_constraints(clamped);
  if (task.kind == TaskKind::Map) {
    if (task.index < 0 || task.index >= num_maps_) return false;
    auto& m = maps_[static_cast<std::size_t>(task.index)];
    if (m.requested || m.done) return false;
    m.override_config = clamped;
    return true;
  }
  if (task.index < 0 || task.index >= spec_.num_reduces) return false;
  auto& r = reduces_[static_cast<std::size_t>(task.index)];
  if (r.requested || r.done) return false;
  r.override_config = clamped;
  return true;
}

int MrAppMaster::set_all_task_configs(TaskKind kind, const JobConfig& config) {
  int applied = 0;
  const int n = kind == TaskKind::Map ? num_maps_ : spec_.num_reduces;
  for (int i = 0; i < n; ++i) {
    if (set_task_config(TaskRef{kind, i}, config)) ++applied;
  }
  return applied;
}

int MrAppMaster::push_live_params(const JobConfig& config) {
  int pushed = 0;
  for (auto& m : maps_) {
    if (m.running && m.run != nullptr) {
      m.run->update_config(config);
      ++pushed;
    }
  }
  for (auto& r : reduces_) {
    if (r.running && r.run != nullptr) {
      r.run->update_config(config);
      ++pushed;
    }
  }
  return pushed;
}

void MrAppMaster::set_launch_budget(TaskKind kind, int n) {
  int& budget = kind == TaskKind::Map ? map_budget_ : reduce_budget_;
  if (n < 0) {
    budget = -1;
  } else if (budget < 0) {
    budget = n;
  } else {
    budget += n;
  }
  schedule_pump();
}

std::vector<TaskRef> MrAppMaster::queued_tasks() const {
  std::vector<TaskRef> out;
  for (int i : map_queue_) out.push_back(TaskRef{TaskKind::Map, i});
  for (int i : reduce_queue_) out.push_back(TaskRef{TaskKind::Reduce, i});
  return out;
}

JobConfig MrAppMaster::config_for(const TaskRef& task) const {
  const std::optional<JobConfig>* override_cfg = nullptr;
  if (task.kind == TaskKind::Map) {
    override_cfg = &maps_[static_cast<std::size_t>(task.index)].override_config;
  } else {
    override_cfg =
        &reduces_[static_cast<std::size_t>(task.index)].override_config;
  }
  return override_cfg->has_value() ? **override_cfg : spec_.config;
}

int MrAppMaster::cluster_slots_estimate(const JobConfig& cfg, bool map) const {
  const double mem_mb = map ? cfg.map_memory_mb : cfg.reduce_memory_mb;
  const int vcores =
      std::max(1, static_cast<int>(map ? cfg.map_cpu_vcores
                                       : cfg.reduce_cpu_vcores));
  const double by_mem =
      rm_.cluster_memory_capacity().as_double() / mebibytes(mem_mb).as_double();
  // Sum of per-node floor(capacity/vcores) — served from the RM's capacity
  // histogram (O(hardware classes), not O(nodes); this runs on every pump).
  const double by_vcores =
      static_cast<double>(rm_.cluster_vcore_slots(vcores));
  return std::max(1, static_cast<int>(std::min(by_mem, by_vcores)));
}

bool MrAppMaster::consume_budget(TaskKind kind) {
  int& budget = kind == TaskKind::Map ? map_budget_ : reduce_budget_;
  if (budget < 0) return true;
  if (budget == 0) return false;
  --budget;
  return true;
}

void MrAppMaster::begin_task_span(obs::SpanId& slot, const char* name,
                                  const yarn::Container& c, int attempt) {
  if (auto* rec = engine_.recorder()) {
    const int pid = static_cast<int>(c.node.value());
    slot = rec->trace().begin(name, "task", pid, c.id.value(), engine_.now(),
                              "attempt", attempt);
  }
}

void MrAppMaster::end_task_span(obs::SpanId& slot) {
  if (auto* rec = engine_.recorder()) {
    rec->trace().end(slot, engine_.now());
  }
  slot = obs::kInvalidSpan;
}

obs::CriticalPathBuilder* MrAppMaster::cp() {
  auto* rec = engine_.recorder();
  return rec == nullptr ? nullptr : &rec->critical_path();
}

obs::CpNode MrAppMaster::cp_fail_node(const char* kind, int index, int attempt,
                                      obs::CpNode attempt_start) {
  auto* cpb = cp();
  if (cpb == nullptr) return obs::kInvalidCpNode;
  const obs::CpNode fail = cpb->stamped(id_.value(), kind, engine_.now(),
                                        index, attempt);
  cpb->edge(attempt_start, fail, obs::Blame::RetryRecovery);
  return fail;
}

void MrAppMaster::schedule_pump() {
  if (pump_scheduled_ || finished_ || !submitted_) return;
  pump_scheduled_ = true;
  // AM work regardless of which context (RM grant, fault recovery) asked
  // for the pump.
  HOST_PROF_CATEGORY(kAmTask);
  engine_.schedule_after(0.0, [this] {
    pump_scheduled_ = false;
    pump();
  });
}

void MrAppMaster::pump() {
  if (finished_) return;
  // Maps: keep about one cluster's worth of requests outstanding so config
  // changes reach the next wave.
  const int map_cap = cluster_slots_estimate(spec_.config, /*map=*/true);
  while (!map_queue_.empty() && outstanding_requests_ < map_cap) {
    if (!consume_budget(TaskKind::Map)) break;
    const int idx = map_queue_.front();
    map_queue_.pop_front();
    request_map(idx);
  }
  // Reduces: gated by slowstart; while maps remain, cap reducer occupancy
  // at half the cluster so shuffle cannot starve the map phase.
  const bool slowstart_met =
      completed_maps_ >=
      static_cast<int>(std::ceil(spec_.slowstart * num_maps_));
  if (slowstart_met) {
    const int reduce_slots =
        cluster_slots_estimate(spec_.config, /*map=*/false);
    // While maps remain, reducers may hold at most ~30% of the cluster —
    // the AM headroom heuristic that keeps early-launched reducers (shuffle
    // overlap) from starving the map phase.
    const int reduce_cap =
        map_queue_.empty() && completed_maps_ == num_maps_
            ? reduce_slots
            : std::max(1, (reduce_slots * 3) / 10);
    while (!reduce_queue_.empty() &&
           running_reduces_or_requested_ < reduce_cap) {
      if (!consume_budget(TaskKind::Reduce)) break;
      const int idx = reduce_queue_.front();
      reduce_queue_.pop_front();
      request_reduce(idx);
    }
  }
}

void MrAppMaster::request_map(int index) {
  auto& m = maps_[static_cast<std::size_t>(index)];
  if (spec_.input.valid()) {
    // Refresh the preferred set from the live DFS: re-replication may have
    // grown it past the submit-time snapshot (a no-op on a reliable
    // cluster, where placement never changes).
    m.replicas = dfs_.dataset(spec_.input).blocks[m.block].replicas;
    if (!dfs_.has_live_replica(spec_.input, m.block)) {
      wait_for_input_block(index);
      return;
    }
  }
  m.requested = true;
  ++outstanding_requests_;
  const JobConfig cfg = config_for(TaskRef{TaskKind::Map, index});
  yarn::Resource res{mebibytes(cfg.map_memory_mb),
                     static_cast<int>(cfg.map_cpu_vcores)};
  // First attempts wait on the scheduler (submit → grant); retries wait on
  // recovery (fail/lost → grant spans the backoff as well).
  const bool retry = m.cp_fail != obs::kInvalidCpNode;
  rm_.request_container(app_, res, m.replicas,
                        [this, index](const yarn::Container& c) {
                          on_map_container(index, c);
                        },
                        retry ? m.cp_fail : cp_submit_,
                        retry ? obs::Blame::RetryRecovery
                              : obs::Blame::SchedWait);
}

void MrAppMaster::wait_for_input_block(int index) {
  auto& m = maps_[static_cast<std::size_t>(index)];
  // Parked, not queued: the map leaves the request path entirely until the
  // DFS says the block serves again. requested=true keeps the pump and the
  // tuner from touching it meanwhile.
  m.requested = true;
  m.waiting_block = true;
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("mr.map.block_waits").add(1.0);
  }
  dfs_.wait_for_block(spec_.input, m.block, [this, index] {
    auto& mm = maps_[static_cast<std::size_t>(index)];
    if (!mm.waiting_block) return;
    mm.waiting_block = false;
    if (finished_ || mm.done || mm.running) return;
    request_map(index);
  });
}

void MrAppMaster::request_reduce(int index) {
  auto& r = reduces_[static_cast<std::size_t>(index)];
  r.requested = true;
  ++outstanding_requests_;
  ++running_reduces_or_requested_;
  const JobConfig cfg = config_for(TaskRef{TaskKind::Reduce, index});
  yarn::Resource res{mebibytes(cfg.reduce_memory_mb),
                     static_cast<int>(cfg.reduce_cpu_vcores)};
  const bool retry = r.cp_fail != obs::kInvalidCpNode;
  rm_.request_container(app_, res, {},
                        [this, index](const yarn::Container& c) {
                          on_reduce_container(index, c);
                        },
                        retry ? r.cp_fail : cp_submit_,
                        retry ? obs::Blame::RetryRecovery
                              : obs::Blame::SchedWait);
}

void MrAppMaster::on_map_container(int index, const yarn::Container& c) {
  --outstanding_requests_;
  auto& m = maps_[static_cast<std::size_t>(index)];
  if (!rm_.container_live(c.id)) {
    // The grant was dispatched just before its node died; ask again.
    if (auto* rec = engine_.recorder()) {
      rec->metrics().counter("yarn.stale_grants").add(1.0);
    }
    if (!m.done) request_map(index);
    return;
  }
  if (spec_.input.valid() && !dfs_.has_live_replica(spec_.input, m.block)) {
    // The split's last replica died while this grant was queued: give the
    // container back and park until storage recovers a copy.
    rm_.release_container(c);
    if (!m.done) wait_for_input_block(index);
    return;
  }
  m.container = c;
  m.running = true;
  m.run_started = engine_.now();
  ++m.attempts;
  begin_task_span(m.span, "map_attempt", c, m.attempts);

  MapTask::Inputs inputs;
  inputs.task = TaskRef{TaskKind::Map, index};
  inputs.attempt = m.attempts;
  inputs.input_bytes = m.input;
  inputs.ws_factor = ws_factor_;
  inputs.noise_cv = spec_.noise_cv;
  inputs.trace_tid = c.id.value();
  if (auto* cpb = cp()) {
    m.cp_start = cpb->stamped(id_.value(), "map_start", engine_.now(), index,
                              m.attempts, static_cast<int>(c.node.value()),
                              static_cast<int>(c.id.value()));
    cpb->edge(c.cp_grant, m.cp_start, obs::Blame::SchedWait);
    inputs.cp_job = id_.value();
    inputs.cp_start = m.cp_start;
  }
  if (spec_.input.valid()) {
    inputs.source = pick_live_replica(m, c.node);
    inputs.locality = inputs.source == c.node
                          ? dfs::Locality::NodeLocal
                          : (rm_.topology().same_rack(inputs.source, c.node)
                                 ? dfs::Locality::RackLocal
                                 : dfs::Locality::OffRack);
  } else {
    inputs.source = c.node;
    inputs.locality = dfs::Locality::NodeLocal;
  }

  const JobConfig cfg = config_for(inputs.task);
  if (m.run != nullptr) dead_map_runs_.push_back(std::move(m.run));
  m.run = std::make_unique<MapTask>(
      engine_, rm_.node(c.node), rm_.node(inputs.source), fabric_,
      spec_.profile, cfg, inputs,
      rng_.fork(static_cast<std::uint64_t>(index) * 4 +
                static_cast<std::uint64_t>(m.attempts) * 131071),
      [this, index](const TaskReport& r) { on_map_done(index, r); });
  m.run->start();
  arm_injected_failure(TaskKind::Map, index, m.attempts);
  schedule_pump();
}

void MrAppMaster::on_reduce_container(int index, const yarn::Container& c) {
  --outstanding_requests_;
  auto& r = reduces_[static_cast<std::size_t>(index)];
  if (!rm_.container_live(c.id)) {
    --running_reduces_or_requested_;
    if (auto* rec = engine_.recorder()) {
      rec->metrics().counter("yarn.stale_grants").add(1.0);
    }
    if (!r.done) request_reduce(index);
    return;
  }
  r.container = c;
  r.running = true;
  r.run_started = engine_.now();
  ++r.attempts;
  begin_task_span(r.span, "reduce_attempt", c, r.attempts);

  ReduceTask::Inputs inputs;
  inputs.task = TaskRef{TaskKind::Reduce, index};
  inputs.attempt = r.attempts;
  inputs.total_maps = num_maps_;
  inputs.num_nodes = rm_.num_nodes();
  inputs.ws_factor = ws_factor_;
  inputs.noise_cv = spec_.noise_cv;
  inputs.trace_tid = c.id.value();
  if (auto* cpb = cp()) {
    r.cp_start = cpb->stamped(id_.value(), "reduce_start", engine_.now(),
                              index, r.attempts,
                              static_cast<int>(c.node.value()),
                              static_cast<int>(c.id.value()));
    cpb->edge(c.cp_grant, r.cp_start, obs::Blame::SchedWait);
    inputs.cp_job = id_.value();
    inputs.cp_start = r.cp_start;
  }

  const JobConfig cfg = config_for(inputs.task);
  if (r.run != nullptr) dead_reduce_runs_.push_back(std::move(r.run));
  r.run = std::make_unique<ReduceTask>(
      engine_, rm_.node(c.node), fabric_,
      [this](cluster::NodeId n) -> cluster::Node& { return rm_.node(n); },
      spec_.profile, cfg, inputs,
      rng_.fork(1000003 + static_cast<std::uint64_t>(index) * 4 +
                static_cast<std::uint64_t>(r.attempts)),
      [this, index](const TaskReport& rep) { on_reduce_done(index, rep); });
  // Shuffle sources are never trusted directly: every fetch goes through
  // the AM's availability query, and abandoned fetches come back here.
  r.run->set_output_query([this](int mi, cluster::NodeId src) {
    return map_output_available(mi, src);
  });
  r.run->set_fetch_failure([this, index](int mi, cluster::NodeId src) {
    on_shuffle_fetch_failure(index, mi, src);
  });
  // Feed map outputs that completed before this reducer existed. Their
  // shuffle edges target the attempt's not-yet-stamped "reduce_shuffle_done"
  // node — the reduce task stamps it when the last segment lands, and
  // extraction then follows whichever arrival was latest.
  for (const auto& [mi, src, bytes] : r.stashed) {
    r.run->add_map_output(mi, src, bytes);
    if (auto* cpb = cp()) {
      cpb->edge(maps_[static_cast<std::size_t>(mi)].cp_done,
                cpb->node(id_.value(), "reduce_shuffle_done", index,
                          r.attempts),
                obs::Blame::ShuffleNet);
    }
  }
  r.stashed.clear();
  r.run->start();
  arm_injected_failure(TaskKind::Reduce, index, r.attempts);
  schedule_pump();
}

void MrAppMaster::on_map_done(int index, const TaskReport& report,
                              bool speculative) {
  auto& m = maps_[static_cast<std::size_t>(index)];
  if (speculative) {
    m.spec_running = false;
    rm_.release_container(m.spec_container);
    end_task_span(m.spec_span);
  } else {
    m.running = false;
    disarm_fault_kill(m.fault_kill, m.fault_kill_pending);
    rm_.release_container(m.container);
    end_task_span(m.span);
  }
  // Stamp the report with the fault record of the node it ran on: a
  // duration measured on degraded/crashed hardware is noise, not signal.
  TaskReport rep = report;
  if (injector_ != nullptr) {
    rep.faulted = injector_->node_faulted_during(
        static_cast<int>(rep.node.value()), rep.start_time, rep.end_time);
  }
  if (rep.failed_oom) {
    if (auto* rec = engine_.recorder()) {
      rec->metrics().counter("mr.task.oom_kills").add(1.0);
      rec->metrics().counter("mr.map.failed_attempts.oom").add(1.0);
    }
  }
  // A late duplicate (e.g. an OOM-retried original finishing after the
  // speculative copy already won) only needs its container back.
  if (m.done) return;
  result_.map_reports.push_back(rep);
  if (task_listener_) task_listener_(rep);

  if (rep.failed_oom && speculative) {
    // A dead backup is simply dropped; the original keeps running.
    ++result_.counters.failed_task_attempts;
    --active_speculations_;
    m.spec_requested = false;
    return;
  }

  if (rep.failed_oom) {
    ++result_.counters.failed_task_attempts;
    MRON_CHECK_MSG(m.attempts < spec_.max_task_attempts,
                   "map " << index << " exceeded max attempts");
    // Retries fall back to the job config with escalated memory (the
    // per-task config file is dropped; the node manager killed the
    // container for over-commit, so the retry gets headroom).
    JobConfig retry = spec_.config;
    retry.map_memory_mb = std::min(
        3072.0, std::max(retry.map_memory_mb,
                         rep.config.map_memory_mb * 1.5));
    clamp_constraints(retry);
    m.override_config = retry;
    // The whole dead attempt (start → kill) is recovery time on the path.
    m.cp_fail = cp_fail_node("map_fail", index, m.attempts, m.cp_start);
    // Retries are re-executions, not new launches: they bypass the wave
    // budget and go straight back to the RM (otherwise a retry would eat a
    // budget unit granted for a tuner wave and stall the wave).
    request_map(index);
    return;
  }

  m.done = true;
  if (auto* cpb = cp()) {
    // The winning attempt's completion node (the task stamped it); keyed by
    // rep.attempt so a speculative win binds the backup's chain.
    m.cp_done = cpb->node(id_.value(), "map_done", index, rep.attempt);
  }
  m.combined_output = speculative ? m.spec_run->combined_output_bytes()
                                  : m.run->combined_output_bytes();
  m.ran_on = rep.node;
  result_.counters.map += rep.counters;
  if (map_secs_hist_ != nullptr) map_secs_hist_->observe(rep.duration());
  ++completed_maps_;
  map_duration_sum_ += rep.duration();
  ++map_duration_count_;
  if (speculative) {
    ++result_.speculative_wins;
    --active_speculations_;
    m.spec_requested = false;
  }
  settle_speculation(index, speculative);
  deliver_map_output(index);
  if (spec_.speculative_execution) {
    check_stragglers();
    schedule_speculation_scan();
  }
  schedule_pump();
  maybe_finish();
}

void MrAppMaster::settle_speculation(int index, bool speculative_won) {
  auto& m = maps_[static_cast<std::size_t>(index)];
  if (speculative_won) {
    // Kill the original attempt.
    if (m.running && m.run != nullptr) {
      m.run->abort();
      m.running = false;
      disarm_fault_kill(m.fault_kill, m.fault_kill_pending);
      rm_.release_container(m.container);
      end_task_span(m.span);
    }
  } else {
    if (m.spec_running && m.spec_run != nullptr) {
      m.spec_run->abort();
      m.spec_running = false;
      rm_.release_container(m.spec_container);
      end_task_span(m.spec_span);
      --active_speculations_;
    } else if (m.spec_requested && !m.spec_running) {
      rm_.cancel_request(m.spec_request);
      --active_speculations_;
    }
    m.spec_requested = false;
  }
}

void MrAppMaster::check_stragglers() {
  if (finished_ || map_duration_count_ == 0) return;
  if (completed_maps_ * 2 < num_maps_ || !map_queue_.empty()) return;
  const double mean =
      map_duration_sum_ / static_cast<double>(map_duration_count_);
  const int spec_cap =
      std::max(1, cluster_slots_estimate(spec_.config, true) / 10);
  for (int i = 0; i < num_maps_; ++i) {
    if (active_speculations_ >= spec_cap) break;
    auto& m = maps_[static_cast<std::size_t>(i)];
    if (!m.running || m.done || m.spec_requested || m.attempts > 1) continue;
    const double elapsed = engine_.now() - m.run_started;
    if (elapsed < spec_.speculative_slowdown * mean) continue;
    m.spec_requested = true;
    ++active_speculations_;
    ++result_.speculative_launches;
    const JobConfig cfg = config_for(TaskRef{TaskKind::Map, i});
    yarn::Resource res{mebibytes(cfg.map_memory_mb),
                       static_cast<int>(cfg.map_cpu_vcores)};
    // LATE: never prefer the original's own node for the backup — a
    // straggler usually straggles because its host is slow (hot disk,
    // degraded NIC), and a backup beside it inherits the very slowness it
    // hedges against.
    std::vector<cluster::NodeId> preferred;
    for (auto replica : m.replicas) {
      if (replica != m.container.node) preferred.push_back(replica);
    }
    // The backup's whole chain — grant wait included — is charged to the
    // speculation decision made here, rooted at the original's start.
    m.spec_request = rm_.request_container(
        app_, res, std::move(preferred),
        [this, i](const yarn::Container& c) {
          on_speculative_container(i, c);
        },
        m.cp_start, obs::Blame::Speculation);
  }
}

void MrAppMaster::schedule_speculation_scan() {
  if (spec_scan_scheduled_ || finished_ || completed_maps_ >= num_maps_) {
    return;
  }
  spec_scan_scheduled_ = true;
  HOST_PROF_CATEGORY(kAmTask);
  engine_.schedule_daemon_after(1.0, [this] {
    spec_scan_scheduled_ = false;
    if (finished_ || completed_maps_ >= num_maps_) return;
    check_stragglers();
    // Re-arm only while the engine holds real work: a straggler that is
    // actually running keeps a completion event live, so this never stops
    // early — but it must not keep a stuck job spinning forever either
    // (daemon scheduling keeps the scan, the heartbeat watchdog, and the
    // cluster monitor from counting each other as work).
    if (!engine_.quiescent()) schedule_speculation_scan();
  });
}

void MrAppMaster::on_speculative_container(int index,
                                           const yarn::Container& c) {
  auto& m = maps_[static_cast<std::size_t>(index)];
  if (m.done || !m.spec_requested) {
    // The race settled while this container was queued.
    rm_.release_container(c);
    --active_speculations_;
    m.spec_requested = false;
    return;
  }
  if (!rm_.container_live(c.id)) {
    // The grant raced its node's death; just drop this speculation (the
    // next scan may re-issue it).
    if (auto* rec = engine_.recorder()) {
      rec->metrics().counter("yarn.stale_grants").add(1.0);
    }
    --active_speculations_;
    m.spec_requested = false;
    return;
  }
  if (spec_.input.valid() && !dfs_.has_live_replica(spec_.input, m.block)) {
    // No live input: the primary is parked on the block too — drop the
    // backup rather than read a corpse.
    rm_.release_container(c);
    --active_speculations_;
    m.spec_requested = false;
    return;
  }
  m.spec_container = c;
  m.spec_running = true;
  begin_task_span(m.spec_span, "map_attempt", c, m.attempts + 1);

  MapTask::Inputs inputs;
  inputs.task = TaskRef{TaskKind::Map, index};
  inputs.attempt = m.attempts + 1;
  inputs.input_bytes = m.input;
  inputs.ws_factor = ws_factor_;
  inputs.noise_cv = spec_.noise_cv;
  inputs.trace_tid = c.id.value();
  if (auto* cpb = cp()) {
    m.spec_cp_start = cpb->stamped(
        id_.value(), "map_start", engine_.now(), index, m.attempts + 1,
        static_cast<int>(c.node.value()), static_cast<int>(c.id.value()));
    cpb->edge(c.cp_grant, m.spec_cp_start, obs::Blame::Speculation);
    inputs.cp_job = id_.value();
    inputs.cp_start = m.spec_cp_start;
    inputs.cp_speculative = true;
  }
  if (spec_.input.valid()) {
    inputs.source = pick_live_replica(m, c.node);
    inputs.locality = inputs.source == c.node
                          ? dfs::Locality::NodeLocal
                          : (rm_.topology().same_rack(inputs.source, c.node)
                                 ? dfs::Locality::RackLocal
                                 : dfs::Locality::OffRack);
  } else {
    inputs.source = c.node;
    inputs.locality = dfs::Locality::NodeLocal;
  }
  const JobConfig cfg = config_for(inputs.task);
  if (m.spec_run != nullptr) dead_map_runs_.push_back(std::move(m.spec_run));
  m.spec_run = std::make_unique<MapTask>(
      engine_, rm_.node(c.node), rm_.node(inputs.source), fabric_,
      spec_.profile, cfg, inputs,
      rng_.fork(0xbacc + static_cast<std::uint64_t>(index) * 7),
      [this, index](const TaskReport& r) {
        on_map_done(index, r, /*speculative=*/true);
      });
  m.spec_run->start();
}

void MrAppMaster::deliver_map_output(int map_index) {
  const auto& m = maps_[static_cast<std::size_t>(map_index)];
  for (int rix = 0; rix < spec_.num_reduces; ++rix) {
    const Bytes part =
        m.combined_output * partition_weights_[static_cast<std::size_t>(rix)];
    auto& r = reduces_[static_cast<std::size_t>(rix)];
    if (r.running && r.run != nullptr) {
      r.run->add_map_output(map_index, m.ran_on, part);
      // This delivery may be what the reducer's shuffle ends on; extraction
      // keeps whichever arrival into "reduce_shuffle_done" was last.
      if (auto* cpb = cp()) {
        cpb->edge(m.cp_done,
                  cpb->node(id_.value(), "reduce_shuffle_done", rix,
                            r.attempts),
                  obs::Blame::ShuffleNet);
      }
    } else if (!r.done) {
      r.stashed.emplace_back(map_index, m.ran_on, part);
    }
  }
}

void MrAppMaster::on_reduce_done(int index, const TaskReport& report) {
  auto& r = reduces_[static_cast<std::size_t>(index)];
  r.running = false;
  disarm_fault_kill(r.fault_kill, r.fault_kill_pending);
  --running_reduces_or_requested_;
  rm_.release_container(r.container);
  end_task_span(r.span);
  TaskReport rep = report;
  if (injector_ != nullptr) {
    rep.faulted = injector_->node_faulted_during(
        static_cast<int>(rep.node.value()), rep.start_time, rep.end_time);
  }
  result_.reduce_reports.push_back(rep);
  if (task_listener_) task_listener_(rep);

  if (rep.failed_oom) {
    if (auto* rec = engine_.recorder()) {
      rec->metrics().counter("mr.task.oom_kills").add(1.0);
      rec->metrics().counter("mr.reduce.failed_attempts.oom").add(1.0);
    }
    ++result_.counters.failed_task_attempts;
    MRON_CHECK_MSG(r.attempts < spec_.max_task_attempts,
                   "reduce " << index << " exceeded max attempts");
    JobConfig retry = spec_.config;
    retry.reduce_memory_mb = std::min(
        3072.0, std::max(retry.reduce_memory_mb,
                         rep.config.reduce_memory_mb * 1.5));
    clamp_constraints(retry);
    r.override_config = retry;
    r.cp_fail = cp_fail_node("reduce_fail", index, r.attempts, r.cp_start);
    r.run.reset();
    r.stashed.clear();
    // Re-stash every completed map's partition for the fresh attempt.
    for (int mi = 0; mi < num_maps_; ++mi) {
      const auto& m = maps_[static_cast<std::size_t>(mi)];
      if (m.done) {
        r.stashed.emplace_back(
            mi, m.ran_on,
            m.combined_output *
                partition_weights_[static_cast<std::size_t>(index)]);
      }
    }
    // Bypass the wave budget, as for map retries: a retry is not a new
    // launch and must not stall a tuner wave.
    request_reduce(index);
    return;
  }

  r.done = true;
  if (auto* cpb = cp()) {
    r.cp_done = cpb->node(id_.value(), "reduce_done", index, rep.attempt);
  }
  result_.counters.reduce += rep.counters;
  if (reduce_secs_hist_ != nullptr) {
    reduce_secs_hist_->observe(rep.duration());
  }
  ++completed_reduces_;
  schedule_pump();
  maybe_finish();
}

cluster::NodeId MrAppMaster::pick_live_replica(const MapState& m,
                                               cluster::NodeId reader) {
  // Local if a live local replica exists, then rack-local, then any live
  // replica — against the *current* DFS replica set, which re-replication
  // may have grown past the submit-time snapshot. The request path guards
  // on has_live_replica, so the trailing check is a pure safety net.
  const auto& replicas = spec_.input.valid()
                             ? dfs_.dataset(spec_.input).blocks[m.block].replicas
                             : m.replicas;
  for (auto rep : replicas) {
    if (rep == reader && dfs_.node_alive(rep)) return rep;
  }
  for (auto rep : replicas) {
    if (dfs_.node_alive(rep) && rm_.topology().same_rack(rep, reader)) {
      return rep;
    }
  }
  for (auto rep : replicas) {
    if (dfs_.node_alive(rep)) return rep;
  }
  MRON_CHECK_MSG(false, "all replicas of a split lost — job cannot proceed");
  return reader;
}

void MrAppMaster::handle_node_failure(cluster::NodeId node) {
  if (finished_) return;
  // 1. Running tasks on the node die with it; re-execute immediately
  //    (node loss does not count against the task's OOM-attempt limit).
  for (int i = 0; i < num_maps_; ++i) {
    auto& m = maps_[static_cast<std::size_t>(i)];
    if (m.running && m.container.node == node) {
      m.run->abort();
      m.running = false;
      disarm_fault_kill(m.fault_kill, m.fault_kill_pending);
      rm_.release_container(m.container);
      end_task_span(m.span);
      m.cp_fail = cp_fail_node("map_fail", i, m.attempts, m.cp_start);
      request_map(i);
    }
    if (m.spec_running && m.spec_container.node == node) {
      m.spec_run->abort();
      m.spec_running = false;
      m.spec_requested = false;
      --active_speculations_;
      rm_.release_container(m.spec_container);
      end_task_span(m.spec_span);
    }
  }
  for (int i = 0; i < spec_.num_reduces; ++i) {
    auto& r = reduces_[static_cast<std::size_t>(i)];
    if (r.running && r.container.node == node) {
      r.run->abort();
      r.running = false;
      disarm_fault_kill(r.fault_kill, r.fault_kill_pending);
      --running_reduces_or_requested_;
      rm_.release_container(r.container);
      end_task_span(r.span);
      r.cp_fail = cp_fail_node("reduce_fail", i, r.attempts, r.cp_start);
      // The aborted run is parked by the next on_reduce_container().
      r.stashed.clear();
      for (int mi = 0; mi < num_maps_; ++mi) {
        const auto& m = maps_[static_cast<std::size_t>(mi)];
        if (m.done) {
          r.stashed.emplace_back(
              mi, m.ran_on,
              m.combined_output *
                  partition_weights_[static_cast<std::size_t>(i)]);
        }
      }
      request_reduce(i);
    } else if (r.running && r.run != nullptr) {
      // Survivors must forget segments sourced from the dead node so the
      // re-executed maps' re-deliveries are accepted.
      r.run->invalidate_source(node);
    }
  }
  // 2. Completed maps whose outputs lived on the node must re-execute —
  //    their shuffle data is gone (reducers that already fetched a copy
  //    keep it; the re-delivered duplicate is deduped by map index).
  for (int i = 0; i < num_maps_; ++i) {
    auto& m = maps_[static_cast<std::size_t>(i)];
    if (m.done && m.ran_on == node) reexecute_lost_map(i);
  }
  schedule_pump();
}

void MrAppMaster::reexecute_lost_map(int map_index) {
  auto& m = maps_[static_cast<std::size_t>(map_index)];
  m.done = false;
  m.combined_output = Bytes(0);
  --completed_maps_;
  ++result_.lost_maps_reexecuted;
  if (injector_ != nullptr) {
    injector_->record_lost_map_reexecution(
        id_.value(), map_index, static_cast<int>(m.ran_on.value()));
  }
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("mr.map.lost_output_reexecutions").add(1.0);
    // The lost output invalidates the old completion: re-root the task's
    // chain at a "map_lost" event so the re-execution (wait + rerun) is
    // charged to recovery, not to a second map_compute pass.
    obs::CriticalPathBuilder& cpb = rec->critical_path();
    const obs::CpNode lost = cpb.stamped(id_.value(), "map_lost",
                                         engine_.now(), map_index, m.attempts);
    cpb.edge(m.cp_done, lost, obs::Blame::RetryRecovery);
    m.cp_fail = lost;
    m.cp_done = obs::kInvalidCpNode;
  }
  // Drop stale stash entries pointing at the lost copy; the fresh
  // completion will re-stash.
  for (auto& r : reduces_) {
    std::erase_if(r.stashed, [map_index](const auto& entry) {
      return std::get<0>(entry) == map_index;
    });
  }
  request_map(map_index);
}

bool MrAppMaster::map_output_available(int map_index,
                                       cluster::NodeId source) const {
  const auto& m = maps_[static_cast<std::size_t>(map_index)];
  return m.done && m.ran_on == source && rm_.node_alive(source);
}

void MrAppMaster::on_shuffle_fetch_failure(int reduce_index, int map_index,
                                           cluster::NodeId source) {
  if (finished_) return;
  ++result_.fetch_failures;
  if (injector_ != nullptr) {
    injector_->record_fetch_failure(id_.value(), reduce_index,
                                    static_cast<int>(source.value()));
  }
  auto& m = maps_[static_cast<std::size_t>(map_index)];
  if (!m.done) {
    // Re-execution is already under way (node-failure or fault retry); the
    // fresh completion will re-deliver to every reducer.
    return;
  }
  if (rm_.node_alive(m.ran_on) && m.ran_on != source) {
    // The map already re-ran elsewhere; only this reducer missed the news.
    auto& r = reduces_[static_cast<std::size_t>(reduce_index)];
    if (r.running && r.run != nullptr) {
      r.run->add_map_output(
          map_index, m.ran_on,
          m.combined_output *
              partition_weights_[static_cast<std::size_t>(reduce_index)]);
    }
    return;
  }
  // The reducer's fetch noticed the loss before the RM's failure
  // notification landed: invalidate the only copy and re-run the map.
  reexecute_lost_map(map_index);
  schedule_pump();
}

void MrAppMaster::arm_injected_failure(TaskKind kind, int index, int attempt) {
  if (injector_ == nullptr || !injector_->active()) return;
  // The final allowed attempt always runs clean: the simulator has no
  // job-failure path (MRONLINE tunes running jobs), so injection must not
  // exhaust max_task_attempts.
  if (attempt >= spec_.max_task_attempts) return;
  double frac = 0.0;
  if (!injector_->should_fail_attempt(
          id_.value(), kind == TaskKind::Map ? 0 : 1, index, attempt, &frac)) {
    return;
  }
  // A rough profile-based runtime estimate is plenty here: it shapes only
  // *when* the fault strikes, never whether.
  double est = spec_.profile.task_startup_secs;
  if (kind == TaskKind::Map) {
    est += maps_[static_cast<std::size_t>(index)].input.mib() *
           spec_.profile.map_cpu_secs_per_mib;
  } else if (map_duration_count_ > 0) {
    est += 2.0 * map_duration_sum_ / static_cast<double>(map_duration_count_);
  } else {
    est += 10.0;
  }
  const double delay = std::max(0.1, frac * est);
  if (kind == TaskKind::Map) {
    auto& m = maps_[static_cast<std::size_t>(index)];
    m.fault_kill_pending = true;
    m.fault_kill = engine_.schedule_after(
        delay, [this, index, attempt] { fail_map_attempt(index, attempt); });
  } else {
    auto& r = reduces_[static_cast<std::size_t>(index)];
    r.fault_kill_pending = true;
    r.fault_kill = engine_.schedule_after(
        delay, [this, index, attempt] { fail_reduce_attempt(index, attempt); });
  }
}

void MrAppMaster::fail_map_attempt(int index, int attempt) {
  auto& m = maps_[static_cast<std::size_t>(index)];
  m.fault_kill_pending = false;
  if (finished_ || m.done || !m.running || m.attempts != attempt) return;
  m.run->abort();
  m.running = false;
  rm_.release_container(m.container);
  end_task_span(m.span);

  TaskReport rep;
  rep.task = TaskRef{TaskKind::Map, index};
  rep.attempt = attempt;
  rep.start_time = m.run_started;
  rep.end_time = engine_.now();
  rep.config = config_for(rep.task);
  rep.node = m.container.node;
  rep.failed_injected = true;
  rep.faulted = true;
  result_.map_reports.push_back(rep);
  if (task_listener_) task_listener_(rep);
  ++result_.counters.failed_task_attempts;
  ++result_.injected_failures;
  injector_->record_injected_failure(id_.value(), 0, index, attempt);
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("mr.map.failed_attempts.injected").add(1.0);
  }
  // Recovery chain: the re-request after the backoff draws its wait edge
  // from this fail node, so the backoff itself lands in retry_recovery.
  m.cp_fail = cp_fail_node("map_fail", index, attempt, m.cp_start);
  // Exponential backoff, then re-request — bypassing the wave budget, like
  // OOM retries. A speculative attempt may win during the backoff.
  engine_.schedule_after(retry_backoff(attempt), [this, index] {
    auto& m2 = maps_[static_cast<std::size_t>(index)];
    if (finished_ || m2.done || m2.running) return;
    request_map(index);
  });
}

void MrAppMaster::fail_reduce_attempt(int index, int attempt) {
  auto& r = reduces_[static_cast<std::size_t>(index)];
  r.fault_kill_pending = false;
  if (finished_ || r.done || !r.running || r.attempts != attempt) return;
  r.run->abort();
  r.running = false;
  --running_reduces_or_requested_;
  rm_.release_container(r.container);
  end_task_span(r.span);
  dead_reduce_runs_.push_back(std::move(r.run));

  TaskReport rep;
  rep.task = TaskRef{TaskKind::Reduce, index};
  rep.attempt = attempt;
  rep.start_time = r.run_started;
  rep.end_time = engine_.now();
  rep.config = config_for(rep.task);
  rep.node = r.container.node;
  rep.failed_injected = true;
  rep.faulted = true;
  result_.reduce_reports.push_back(rep);
  if (task_listener_) task_listener_(rep);
  ++result_.counters.failed_task_attempts;
  ++result_.injected_failures;
  injector_->record_injected_failure(id_.value(), 1, index, attempt);
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("mr.reduce.failed_attempts.injected").add(1.0);
  }
  r.cp_fail = cp_fail_node("reduce_fail", index, attempt, r.cp_start);
  // The stash is rebuilt at retry time — the set of completed maps may
  // change during the backoff.
  engine_.schedule_after(retry_backoff(attempt), [this, index] {
    auto& r2 = reduces_[static_cast<std::size_t>(index)];
    if (finished_ || r2.done || r2.running) return;
    r2.stashed.clear();
    for (int mi = 0; mi < num_maps_; ++mi) {
      const auto& m = maps_[static_cast<std::size_t>(mi)];
      if (m.done) {
        r2.stashed.emplace_back(
            mi, m.ran_on,
            m.combined_output *
                partition_weights_[static_cast<std::size_t>(index)]);
      }
    }
    request_reduce(index);
  });
}

double MrAppMaster::retry_backoff(int attempts) const {
  const double base = std::max(0.1, spec_.retry_backoff_secs);
  return std::min(60.0, base * std::pow(2.0, std::max(0, attempts - 1)));
}

void MrAppMaster::disarm_fault_kill(sim::EventId& ev, bool& pending) {
  if (!pending) return;
  engine_.cancel(ev);
  pending = false;
}

void MrAppMaster::maybe_finish() {
  if (finished_) return;
  if (completed_maps_ < num_maps_ ||
      completed_reduces_ < spec_.num_reduces) {
    return;
  }
  finished_ = true;
  result_.finish_time = engine_.now();
  if (auto* cpb = cp()) {
    // Close the DAG: the finish waits on every task's completion. Only the
    // last arrival binds (a zero-width segment); the blame tag on the
    // closing edge is therefore never charged meaningful time.
    const obs::CpNode fin =
        cpb->stamped(id_.value(), "job_finish", result_.finish_time);
    for (const auto& m : maps_) {
      cpb->edge(m.cp_done, fin, obs::Blame::MapCompute);
    }
    for (const auto& r : reduces_) {
      cpb->edge(r.cp_done, fin, obs::Blame::ReduceCompute);
    }
    cpb->mark_job_finish(id_.value(), fin);
  }
  rm_.unregister_app(app_);
  on_done_(result_);
}

}  // namespace mron::mapreduce
