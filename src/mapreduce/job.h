// Job specification, task references, and result/report types.
#pragma once

#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/strong_id.h"
#include "common/units.h"
#include "dfs/dfs.h"
#include "mapreduce/app_profile.h"
#include "mapreduce/counters.h"
#include "mapreduce/params.h"

namespace mron::mapreduce {

struct JobTag {};
using JobId = StrongId<JobTag>;

enum class TaskKind { Map, Reduce };

struct TaskRef {
  TaskKind kind = TaskKind::Map;
  int index = 0;

  friend bool operator==(const TaskRef&, const TaskRef&) = default;
  friend bool operator<(const TaskRef& a, const TaskRef& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.index < b.index;
  }
};

struct JobSpec {
  std::string name;
  /// Input dataset; invalid id means a compute-only job (e.g. BBP) whose
  /// map count comes from `num_maps_override`.
  dfs::DatasetId input;
  int num_maps_override = -1;
  int num_reduces = 1;
  AppProfile profile;
  JobConfig config;
  /// Fraction of maps that must complete before reducers launch
  /// (mapreduce.job.reduce.slowstart.completedmaps — category I).
  double slowstart = 0.05;
  /// Multiplicative noise CV applied to task service demands.
  double noise_cv = 0.08;
  int max_task_attempts = 4;
  /// Base delay before re-running a failed (injected-fault) attempt; the
  /// actual delay doubles per prior attempt (exponential backoff, capped at
  /// 60 s), matching Hadoop's task-retry pacing.
  double retry_backoff_secs = 2.0;
  /// Speculative execution (mapreduce.map.speculative): once half the maps
  /// finished and none remain queued, a running map slower than
  /// `speculative_slowdown` x the mean completed duration gets a backup
  /// attempt; the first finisher wins and the other is killed.
  bool speculative_execution = false;
  double speculative_slowdown = 1.5;
  /// Capacity-scheduler queue this job submits to (used only when the
  /// simulation runs the capacity policy).
  int scheduler_queue = 0;
};

struct TaskReport {
  TaskRef task;
  int attempt = 0;
  SimTime start_time = 0.0;
  SimTime end_time = 0.0;
  JobConfig config;
  cluster::NodeId node;
  dfs::Locality locality = dfs::Locality::NodeLocal;  // maps only
  double cpu_util = 0.0;  ///< cpu-seconds / (vcore quota * duration)
  double mem_util = 0.0;  ///< average resident set / container memory
  /// Peak committed memory (working set + full buffers) over the container:
  /// > 1 means the attempt OOMs; near 1 means it is one working-set blip
  /// away from an OOM kill.
  double mem_commit = 0.0;
  TaskCounters counters;
  bool failed_oom = false;
  /// The attempt was killed by an injected fault (FaultPlan task_fail_prob
  /// or its node dying). Such reports carry no useful cost signal.
  bool failed_injected = false;
  /// The attempt ran (even partly) on a node that was degraded or crashed
  /// during its lifetime — its duration is hardware-noise, not a config
  /// signal, and the tuner may discard it (TunerOptions::discard_faulted).
  bool faulted = false;

  [[nodiscard]] double duration() const { return end_time - start_time; }
};

struct JobResult {
  JobId id;
  std::string name;
  SimTime submit_time = 0.0;
  SimTime finish_time = 0.0;
  JobCounters counters;
  int speculative_launches = 0;
  int speculative_wins = 0;
  // Failure-recovery tallies (fault injection).
  int injected_failures = 0;      ///< attempts killed by the fault injector
  int fetch_failures = 0;         ///< shuffle fetches failed over by the AM
  int lost_maps_reexecuted = 0;   ///< completed maps re-run after node loss
  std::vector<TaskReport> map_reports;
  std::vector<TaskReport> reduce_reports;

  [[nodiscard]] double exec_time() const { return finish_time - submit_time; }
  [[nodiscard]] double avg_util(TaskKind kind, bool cpu) const {
    const auto& reports =
        kind == TaskKind::Map ? map_reports : reduce_reports;
    if (reports.empty()) return 0.0;
    double sum = 0.0;
    int n = 0;
    for (const auto& r : reports) {
      if (r.failed_oom) continue;
      sum += cpu ? r.cpu_util : r.mem_util;
      ++n;
    }
    return n == 0 ? 0.0 : sum / n;
  }
};

const char* task_kind_name(TaskKind kind);

}  // namespace mron::mapreduce
