// Hadoop-style job/task counters.
//
// SPILLED_RECORDS follows Hadoop semantics: every record written to local
// disk counts, including re-writes during multi-pass merges — which is why
// a badly configured job reports up to ~3x its map-output records (Section 6
// of the paper), while the optimal configuration reports exactly the
// combiner-output record count.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace mron::mapreduce {

struct TaskCounters {
  std::int64_t map_output_records = 0;     ///< before the combiner
  std::int64_t combine_output_records = 0; ///< after the combiner (= optimal)
  std::int64_t spilled_records = 0;        ///< records written to local disk
  Bytes map_output_bytes{0};
  Bytes shuffle_bytes{0};          ///< bytes fetched by this reduce task
  Bytes local_disk_write_bytes{0};
  Bytes local_disk_read_bytes{0};
  double cpu_seconds = 0.0;        ///< core-seconds actually consumed

  TaskCounters& operator+=(const TaskCounters& o) {
    map_output_records += o.map_output_records;
    combine_output_records += o.combine_output_records;
    spilled_records += o.spilled_records;
    map_output_bytes += o.map_output_bytes;
    shuffle_bytes += o.shuffle_bytes;
    local_disk_write_bytes += o.local_disk_write_bytes;
    local_disk_read_bytes += o.local_disk_read_bytes;
    cpu_seconds += o.cpu_seconds;
    return *this;
  }
};

struct JobCounters {
  TaskCounters map;     ///< aggregated over map tasks
  TaskCounters reduce;  ///< aggregated over reduce tasks
  int failed_task_attempts = 0;

  [[nodiscard]] std::int64_t total_spilled_records() const {
    return map.spilled_records + reduce.spilled_records;
  }
};

}  // namespace mron::mapreduce
