#include "mapreduce/params.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mron::mapreduce {

namespace {

std::vector<ParamDescriptor> standard_params() {
  using C = ParamCategory;
  // Ranges follow the paper's testbed: 6 GB container memory per node, so
  // containers between 512 MB and 3 GB; buffers bounded by heap fractions.
  return {
      {"mapreduce.map.memory.mb", 1024, 512, 3072, true, C::TaskLaunch,
       &JobConfig::map_memory_mb},
      {"mapreduce.reduce.memory.mb", 1024, 512, 3072, true, C::TaskLaunch,
       &JobConfig::reduce_memory_mb},
      {"mapreduce.task.io.sort.mb", 100, 50, 1024, true, C::TaskLaunch,
       &JobConfig::io_sort_mb},
      {"mapreduce.map.sort.spill.percent", 0.8, 0.5, 0.99, false, C::Live,
       &JobConfig::sort_spill_percent},
      {"mapreduce.reduce.shuffle.input.buffer.percent", 0.7, 0.3, 0.9, false,
       C::TaskLaunch, &JobConfig::shuffle_input_buffer_percent},
      {"mapreduce.reduce.shuffle.merge.percent", 0.66, 0.3, 0.9, false,
       C::Live, &JobConfig::shuffle_merge_percent},
      {"mapreduce.reduce.shuffle.memory.limit.percent", 0.25, 0.05, 0.5,
       false, C::Live, &JobConfig::shuffle_memory_limit_percent},
      {"mapreduce.reduce.merge.inmem.threshold", 1000, 0, 10000, true,
       C::Live, &JobConfig::merge_inmem_threshold},
      {"mapreduce.reduce.input.buffer.percent", 0.0, 0.0, 0.9, false,
       C::Live, &JobConfig::reduce_input_buffer_percent},
      {"mapreduce.map.cpu.vcores", 1, 1, 4, true, C::TaskLaunch,
       &JobConfig::map_cpu_vcores},
      {"mapreduce.reduce.cpu.vcores", 1, 1, 4, true, C::TaskLaunch,
       &JobConfig::reduce_cpu_vcores},
      {"mapreduce.task.io.sort.factor", 10, 5, 100, true, C::TaskLaunch,
       &JobConfig::io_sort_factor},
      {"mapreduce.reduce.shuffle.parallelcopies", 5, 5, 50, true,
       C::TaskLaunch, &JobConfig::shuffle_parallelcopies},
  };
}

}  // namespace

ParamRegistry::ParamRegistry(std::vector<ParamDescriptor> params)
    : params_(std::move(params)) {}

const ParamRegistry& ParamRegistry::standard() {
  static const ParamRegistry registry(standard_params());
  return registry;
}

const ParamRegistry& ParamRegistry::extended() {
  static const ParamRegistry registry([] {
    auto params = standard_params();
    params.push_back({"mapreduce.map.output.compress", 0, 0, 1, true,
                      ParamCategory::TaskLaunch,
                      &JobConfig::map_output_compress});
    params.push_back({"dfs.replication", 3, 1, 5, true,
                      ParamCategory::JobStatic,
                      &JobConfig::dfs_replication});
    return params;
  }());
  return registry;
}

const ParamDescriptor& ParamRegistry::at(std::size_t i) const {
  MRON_CHECK(i < params_.size());
  return params_[i];
}

const ParamDescriptor* ParamRegistry::find(const std::string& name) const {
  for (const auto& p : params_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::vector<std::string> ParamRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(params_.size());
  for (const auto& p : params_) out.push_back(p.name);
  return out;
}

double ParamRegistry::get(const JobConfig& cfg, std::size_t i) const {
  return cfg.*(at(i).field);
}

void ParamRegistry::set(JobConfig& cfg, std::size_t i, double value) const {
  const ParamDescriptor& p = at(i);
  value = std::clamp(value, p.min, p.max);
  if (p.integer) value = std::round(value);
  cfg.*(p.field) = value;
}

bool ParamRegistry::set_by_name(JobConfig& cfg, const std::string& name,
                                double value) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name == name) {
      set(cfg, i, value);
      return true;
    }
  }
  return false;
}

std::optional<double> ParamRegistry::get_by_name(
    const JobConfig& cfg, const std::string& name) const {
  const ParamDescriptor* p = find(name);
  if (p == nullptr) return std::nullopt;
  return cfg.*(p->field);
}

int clamp_constraints(JobConfig& cfg) {
  int adjusted = 0;
  const double max_sort = cfg.map_memory_mb - kJvmHeadroomMb;
  if (cfg.io_sort_mb > max_sort) {
    cfg.io_sort_mb = std::max(1.0, max_sort);
    ++adjusted;
  }
  if (cfg.shuffle_merge_percent > cfg.shuffle_input_buffer_percent) {
    cfg.shuffle_merge_percent = cfg.shuffle_input_buffer_percent;
    ++adjusted;
  }
  if (cfg.reduce_input_buffer_percent > cfg.shuffle_input_buffer_percent) {
    cfg.reduce_input_buffer_percent = cfg.shuffle_input_buffer_percent;
    ++adjusted;
  }
  return adjusted;
}

const char* category_name(ParamCategory c) {
  switch (c) {
    case ParamCategory::JobStatic:
      return "I/job-static";
    case ParamCategory::TaskLaunch:
      return "II/task-launch";
    case ParamCategory::Live:
      return "III/live";
  }
  return "?";
}

}  // namespace mron::mapreduce
