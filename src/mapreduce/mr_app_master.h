// MapReduce application master.
//
// Owns one job's lifecycle on the YARN substrate: builds map tasks from the
// input dataset's blocks (one split per block), requests containers with
// per-task Resources, launches task models, routes map-completion events to
// running reducers, applies slowstart gating, retries OOM-killed attempts,
// and aggregates the JobResult.
//
// Dynamic-configuration hooks (consumed by MRONLINE's dynamic configurator,
// Table 1 of the paper):
//   * set_job_config()       — new default for tasks not yet requested;
//   * set_task_config()      — per-task override for a queued task;
//   * push_live_params()     — category-III updates into running tasks;
//   * set_launch_budget()    — wave gating for the aggressive strategy: the
//     AM may only request that many more containers (-1 = unlimited).
//
// Container requests are self-throttled to roughly one cluster's worth of
// outstanding requests so that a config change affects the next wave — the
// same pickup latency the paper's config-file mechanism has.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/fabric.h"
#include "common/rng.h"
#include "dfs/dfs.h"
#include "mapreduce/job.h"
#include "mapreduce/map_task.h"
#include "mapreduce/reduce_task.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "yarn/resource_manager.h"

namespace mron::faults {
class FaultInjector;
}  // namespace mron::faults

namespace mron::obs {
class Histogram;
}  // namespace mron::obs

namespace mron::mapreduce {

class MrAppMaster {
 public:
  using JobDone = std::function<void(const JobResult&)>;
  using TaskListener = std::function<void(const TaskReport&)>;

  MrAppMaster(sim::Engine& engine, yarn::ResourceManager& rm,
              cluster::Fabric& fabric, dfs::Dfs& dfs, JobId id, JobSpec spec,
              Rng rng, JobDone on_done);

  MrAppMaster(const MrAppMaster&) = delete;
  MrAppMaster& operator=(const MrAppMaster&) = delete;

  /// Register with the RM and start requesting containers.
  void submit();

  // --- dynamic configuration (Table-1 backing) -------------------------------
  void set_job_config(const JobConfig& config);
  /// Override the config of one not-yet-requested task. Returns false if the
  /// task is unknown or already requested/launched.
  bool set_task_config(const TaskRef& task, const JobConfig& config);
  /// Override every queued task of the given kind.
  int set_all_task_configs(TaskKind kind, const JobConfig& config);
  /// Push category-III parameters into all running tasks.
  int push_live_params(const JobConfig& config);
  /// Wave gating: allow at most `n` further container requests of the given
  /// kind (-1 = unlimited). Additional calls add to the remaining budget, so
  /// an aggressive tuner releases one wave at a time.
  void set_launch_budget(TaskKind kind, int n);
  /// Convenience: set both kinds at once.
  void set_launch_budget(int n) {
    set_launch_budget(TaskKind::Map, n);
    set_launch_budget(TaskKind::Reduce, n);
  }

  // --- introspection ----------------------------------------------------------
  [[nodiscard]] JobId id() const { return id_; }
  [[nodiscard]] const JobSpec& spec() const { return spec_; }
  [[nodiscard]] const JobConfig& job_config() const { return spec_.config; }
  [[nodiscard]] int num_maps() const { return num_maps_; }
  [[nodiscard]] int num_reduces() const { return spec_.num_reduces; }
  [[nodiscard]] int completed_maps() const { return completed_maps_; }
  [[nodiscard]] int completed_reduces() const { return completed_reduces_; }
  [[nodiscard]] bool finished() const { return finished_; }
  /// Tasks still waiting to be requested (the tuner's "queued tasks list").
  [[nodiscard]] std::vector<TaskRef> queued_tasks() const;
  [[nodiscard]] int launch_budget(TaskKind kind) const {
    return kind == TaskKind::Map ? map_budget_ : reduce_budget_;
  }

  void set_task_listener(TaskListener listener) {
    task_listener_ = std::move(listener);
  }

  /// Attach the simulation's fault injector (nullptr = reliable cluster).
  /// Must be called before submit(); enables injected attempt failures
  /// with exponential-backoff retries and fault-stamped task reports.
  void set_fault_injector(faults::FaultInjector* injector) {
    injector_ = injector;
  }

  /// AM-mediated shuffle availability — the single choke point reducers
  /// consult instead of assuming map hosts stay reachable: true while map
  /// `map_index`'s output exists at `source` (the map completed there and
  /// the node is alive).
  [[nodiscard]] bool map_output_available(int map_index,
                                          cluster::NodeId source) const;

  /// The engine this job runs on — the tuner and configurator reach the
  /// flight recorder through it.
  [[nodiscard]] sim::Engine& engine() { return engine_; }

 private:
  struct MapState {
    std::size_t block = 0;
    Bytes input{0};
    std::vector<cluster::NodeId> replicas;
    std::optional<JobConfig> override_config;
    std::unique_ptr<MapTask> run;
    yarn::Container container;
    int attempts = 0;
    bool requested = false;
    bool running = false;
    bool done = false;
    /// Parked on a dead input block (no live replica); a DFS waiter will
    /// re-request the map when storage recovers one.
    bool waiting_block = false;
    Bytes combined_output{0};
    cluster::NodeId ran_on;
    SimTime run_started = 0.0;
    obs::SpanId span = obs::kInvalidSpan;  ///< open attempt trace span
    // Critical-path nodes (obs/critical_path.h): current attempt's start,
    // the winning "map_done", and the most recent failure event — the next
    // container request draws its wait edge from cp_fail (retry_recovery)
    // instead of the job submit node.
    obs::CpNode cp_start = obs::kInvalidCpNode;
    obs::CpNode cp_done = obs::kInvalidCpNode;
    obs::CpNode cp_fail = obs::kInvalidCpNode;
    obs::CpNode spec_cp_start = obs::kInvalidCpNode;
    // Injected-fault kill scheduled against the current attempt.
    sim::EventId fault_kill;
    bool fault_kill_pending = false;
    // Speculative backup attempt.
    std::unique_ptr<MapTask> spec_run;
    yarn::Container spec_container;
    yarn::RequestId spec_request;
    bool spec_requested = false;
    bool spec_running = false;
    obs::SpanId spec_span = obs::kInvalidSpan;
  };
  struct ReduceState {
    std::optional<JobConfig> override_config;
    std::unique_ptr<ReduceTask> run;
    yarn::Container container;
    int attempts = 0;
    bool requested = false;
    bool running = false;
    bool done = false;
    SimTime run_started = 0.0;
    obs::SpanId span = obs::kInvalidSpan;  ///< open attempt trace span
    // Critical-path nodes; see MapState.
    obs::CpNode cp_start = obs::kInvalidCpNode;
    obs::CpNode cp_done = obs::kInvalidCpNode;
    obs::CpNode cp_fail = obs::kInvalidCpNode;
    // Injected-fault kill scheduled against the current attempt.
    sim::EventId fault_kill;
    bool fault_kill_pending = false;
    /// Map outputs (index, location, bytes) that completed before this
    /// reducer started.
    std::vector<std::tuple<int, cluster::NodeId, Bytes>> stashed;
  };

  void pump();
  void schedule_pump();
  void request_map(int index);
  /// Map `index`'s split has no live replica: park a DFS waiter instead of
  /// requesting a container. Deterministic — waiters resume in registration
  /// order the moment a replica returns (node recovery or a completed
  /// re-replication copy).
  void wait_for_input_block(int index);
  void request_reduce(int index);
  void on_map_container(int index, const yarn::Container& c);
  void on_reduce_container(int index, const yarn::Container& c);
  void on_map_done(int index, const TaskReport& report,
                   bool speculative = false);
  void on_reduce_done(int index, const TaskReport& report);
  /// Launch backup attempts for straggling maps (Hadoop's speculative
  /// execution, enabled via JobSpec::speculative_execution).
  void check_stragglers();
  /// LATE-style periodic straggler scan: map completions alone cannot
  /// catch the last running stragglers (nothing completes behind them), so
  /// once maps start finishing the AM re-checks on a fixed cadence.
  void schedule_speculation_scan();
  void on_speculative_container(int index, const yarn::Container& c);
  /// Kill whichever attempt of map `index` lost the race.
  void settle_speculation(int index, bool speculative_won);
  void deliver_map_output(int map_index);
  void maybe_finish();
  // --- fault recovery -------------------------------------------------------
  /// Consult the injector and, when this attempt is fated to fail, schedule
  /// the kill partway into its nominal runtime. The final allowed attempt
  /// is never injected — the simulated job must not fail outright.
  void arm_injected_failure(TaskKind kind, int index, int attempt);
  void fail_map_attempt(int index, int attempt);
  void fail_reduce_attempt(int index, int attempt);
  /// A reducer's fetch found its source gone: re-deliver from the live
  /// copy, or invalidate and re-execute the lost map.
  void on_shuffle_fetch_failure(int reduce_index, int map_index,
                                cluster::NodeId source);
  /// Invalidate completed map `map_index` (its output host died) and
  /// relaunch it; purges stale reducer stashes.
  void reexecute_lost_map(int map_index);
  /// Exponential backoff before re-running a failed attempt.
  [[nodiscard]] double retry_backoff(int attempts) const;
  void disarm_fault_kill(sim::EventId& ev, bool& pending);
  /// Node fail-stop recovery: abort tasks running on the node, re-execute
  /// completed maps whose (node-local) outputs died with it.
  void handle_node_failure(cluster::NodeId node);
  /// The split's replica to read, preferring live and local sources.
  [[nodiscard]] cluster::NodeId pick_live_replica(const MapState& m,
                                                  cluster::NodeId reader);
  [[nodiscard]] JobConfig config_for(const TaskRef& task) const;
  [[nodiscard]] int cluster_slots_estimate(const JobConfig& cfg,
                                           bool map) const;
  [[nodiscard]] bool consume_budget(TaskKind kind);
  /// Open/close the per-attempt trace span (no-op without a recorder);
  /// `attempt` lands in the span's args, so retries are tellable apart.
  void begin_task_span(obs::SpanId& slot, const char* name,
                       const yarn::Container& c, int attempt);
  void end_task_span(obs::SpanId& slot);
  /// The recorder's critical-path builder, or nullptr when unobserved.
  [[nodiscard]] obs::CriticalPathBuilder* cp();
  /// Stamp a "<kind>_fail" node for the attempt that just died and charge
  /// the attempt's span to retry_recovery; the returned node becomes the
  /// causal origin of the re-request (cp_fail), so backoff + re-queueing
  /// land in the recovery bucket too.
  obs::CpNode cp_fail_node(const char* kind, int index, int attempt,
                           obs::CpNode attempt_start);

  sim::Engine& engine_;
  yarn::ResourceManager& rm_;
  cluster::Fabric& fabric_;
  dfs::Dfs& dfs_;
  JobId id_;
  JobSpec spec_;
  Rng rng_;
  JobDone on_done_;
  TaskListener task_listener_;

  yarn::AppId app_;
  int num_maps_ = 0;
  std::vector<MapState> maps_;
  std::vector<ReduceState> reduces_;
  std::vector<double> partition_weights_;
  std::deque<int> map_queue_;
  std::deque<int> reduce_queue_;
  int outstanding_requests_ = 0;
  int running_reduces_or_requested_ = 0;
  int completed_maps_ = 0;
  int completed_reduces_ = 0;
  int map_budget_ = -1;
  int reduce_budget_ = -1;
  double ws_factor_ = 1.0;
  double map_duration_sum_ = 0.0;
  int map_duration_count_ = 0;
  int active_speculations_ = 0;
  faults::FaultInjector* injector_ = nullptr;
  bool spec_scan_scheduled_ = false;
  /// Task-duration distributions, shared across jobs (find-or-create by
  /// name); resolved once in submit().
  obs::Histogram* map_secs_hist_ = nullptr;
  obs::Histogram* reduce_secs_hist_ = nullptr;
  bool submitted_ = false;
  bool finished_ = false;
  bool pump_scheduled_ = false;
  /// The job's "job_submit" critical-path node — the causal origin of
  /// every first-attempt container wait.
  obs::CpNode cp_submit_ = obs::kInvalidCpNode;
  JobResult result_;
  /// Aborted attempts are parked here instead of destroyed: the engine may
  /// still hold events/stream completions that reference them.
  std::vector<std::unique_ptr<MapTask>> dead_map_runs_;
  std::vector<std::unique_ptr<ReduceTask>> dead_reduce_runs_;
};

}  // namespace mron::mapreduce
