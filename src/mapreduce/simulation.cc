#include "mapreduce/simulation.h"

#include <string>
#include <utility>

#include "common/check.h"

namespace mron::mapreduce {

Simulation::Simulation(SimulationOptions options)
    : options_(options), rng_(options.seed) {
#if MRON_OBS_ENABLED
  if (options_.host_profile) {
    // Created before everything else so the Setup phase covers all of
    // construction; the engine stamps scheduled events with subsystem
    // categories from here on.
    host_profiler_ = std::make_unique<obs::HostProfiler>();
    engine_.set_host_profiler(host_profiler_.get());
  }
  if (options_.observe) {
    // Attach before any substrate object exists: SharedServers resolve
    // their metric handles at construction.
    recorder_ = std::make_unique<obs::Recorder>();
    recorder_->trace().set_detail(options_.trace_detail);
    engine_.set_recorder(recorder_.get());
  }
#endif
  if (options_.progress) {
    progress_ = std::make_unique<obs::ProgressMeter>(
        options_.progress_label.empty() ? "mron" : options_.progress_label);
    engine_.set_progress(
        [this](const sim::Engine& e) {
          progress_->tick(e.total_dispatched(), e.now());
        },
        /*stride=*/8192);
  }
  obs::HostProfiler::Activation hp(host_profiler_.get());
  HOST_PROF_SCOPE("sim.setup");
  {
    HOST_PROF_SCOPE("sim.setup.topology");
    topo_ = std::make_unique<cluster::Topology>(options_.cluster);
  }
  std::vector<cluster::Node*> ptrs;
  {
    HOST_PROF_SCOPE("sim.setup.nodes");
    for (int i = 0; i < topo_->num_nodes(); ++i) {
      const cluster::NodeId id(i);
      nodes_.push_back(std::make_unique<cluster::Node>(engine_, id,
                                                       topo_->hardware(id)));
      ptrs.push_back(nodes_.back().get());
    }
  }
  {
    HOST_PROF_SCOPE("sim.setup.fabric");
    HOST_PROF_CATEGORY(kSharedServer);
    fabric_ = std::make_unique<cluster::Fabric>(engine_, options_.cluster,
                                                *topo_, ptrs);
  }
  {
    HOST_PROF_SCOPE("sim.setup.monitor");
    HOST_PROF_CATEGORY(kMonitor);
    monitor_ = std::make_unique<cluster::ClusterMonitor>(
        engine_, ptrs, options_.monitor_period, topo_.get(),
        options_.monitor_node_series_limit);
  }
  {
    HOST_PROF_SCOPE("sim.setup.dfs");
    HOST_PROF_CATEGORY(kDfs);
    dfs_ = std::make_unique<dfs::Dfs>(
        *topo_, rng_.fork(0xdf5), mebibytes(128), options_.dfs_replication,
        dfs::make_placement_policy(options_.dfs_policy));
    dfs::RereplicatorOptions ropt;
    ropt.max_streams_per_node = options_.dfs_rerepl_streams_per_node;
    ropt.stream_bandwidth = options_.dfs_rerepl_stream_bandwidth;
    rerepl_ = std::make_unique<dfs::Rereplicator>(engine_, *dfs_, *fabric_,
                                                  ptrs, ropt);
  }
  {
    HOST_PROF_SCOPE("sim.setup.rm");
    HOST_PROF_CATEGORY(kYarn);
    auto policy = options_.capacity_queues.empty()
                      ? (options_.fair_scheduler ? yarn::make_fair_policy()
                                                 : yarn::make_fifo_policy())
                      : yarn::make_capacity_policy(options_.capacity_queues);
    rm_ = std::make_unique<yarn::ResourceManager>(engine_, *topo_, ptrs,
                                                  std::move(policy));
    // Storage hears about liveness before any AM: AMs subscribe at submit
    // time, so by the time their recovery paths run, replica counts and the
    // re-replication queue already reflect the event.
    rm_->subscribe_node_failures([this](cluster::NodeId n) {
      dfs_->on_node_lost(n);
      rerepl_->on_node_lost(n);
    });
    rm_->subscribe_node_recoveries([this](cluster::NodeId n) {
      dfs_->on_node_recovered(n);
      rerepl_->on_node_recovered(n);
    });
    if (options_.hotspot_aware) {
      monitor_->start();
      rm_->set_cluster_monitor(monitor_.get(), options_.hot_threshold);
    }
    if (options_.locality_delay_passes > 0) {
      rm_->set_locality_delay(options_.locality_delay_passes);
    }
  }
  if (!options_.fault_plan.empty()) {
    HOST_PROF_SCOPE("sim.setup.faults");
    HOST_PROF_CATEGORY(kFaults);
    injector_ =
        std::make_unique<faults::FaultInjector>(engine_, options_.fault_plan);
    injector_->arm(*rm_, ptrs);
  }
  if (recorder_ != nullptr) {
    HOST_PROF_SCOPE("sim.setup.recorder");
    // The monitor is the metrics registry's sampling clock.
    {
      HOST_PROF_CATEGORY(kMonitor);
      monitor_->start();
    }
    // Queue occupancy: live pending events, stale cancel tombstones not yet
    // collected, and slot-map capacity. Pull model (queue churn is the
    // hottest path); values are backend-independent, so run reports stay
    // byte-identical across sim.queue implementations. Each flush also
    // pushes the gauges into the series store, making queue occupancy
    // plottable over the run rather than a final scalar only.
    auto* queue_live = &recorder_->metrics().gauge("sim.queue.live");
    auto* queue_stale = &recorder_->metrics().gauge("sim.queue.stale");
    auto* queue_capacity = &recorder_->metrics().gauge("sim.queue.capacity");
    auto* live_series = &recorder_->series().series("sim.queue.live");
    auto* stale_series = &recorder_->series().series("sim.queue.stale");
    auto* capacity_series = &recorder_->series().series("sim.queue.capacity");
    recorder_->add_flush_hook([this, queue_live, queue_stale, queue_capacity,
                               live_series, stale_series, capacity_series] {
      const auto live = static_cast<double>(engine_.pending());
      const auto stale = static_cast<double>(engine_.stale_entries());
      const auto capacity = static_cast<double>(engine_.slot_capacity());
      queue_live->set(live);
      queue_stale->set(stale);
      queue_capacity->set(capacity);
      const SimTime now = engine_.now();
      live_series->push(now, live);
      stale_series->push(now, stale);
      capacity_series->push(now, capacity);
    });
    auto& trace = recorder_->trace();
    for (int i = 0; i < topo_->num_nodes(); ++i) {
      trace.set_process_name(i, "node" + std::to_string(i));
    }
    trace.set_process_name(obs::kTunerTracePid, "tuner");
  }
}

dfs::DatasetId Simulation::load_dataset(const std::string& name, Bytes size,
                                        int replication) {
  obs::HostProfiler::Activation hp(host_profiler_.get());
  HOST_PROF_SCOPE("sim.setup.dataset");
  HOST_PROF_CATEGORY(kDfs);
  const dfs::DatasetId id = dfs_->create_dataset(name, size, replication);
  // A dataset can be born under-replicated (created after a node died, or
  // on a topology too small for the factor + dead nodes); kick the
  // pipeline since no liveness event will.
  if (dfs_->under_replicated_blocks() > 0) rerepl_->notify_under_replication();
  return id;
}

MrAppMaster& Simulation::submit_job(
    JobSpec spec, std::function<void(const JobResult&)> on_done) {
  obs::HostProfiler::Activation hp(host_profiler_.get());
  HOST_PROF_SCOPE("sim.submit_job");
  HOST_PROF_CATEGORY(kAmTask);
  const JobId id = job_ids_.next();
  auto done = on_done ? std::move(on_done)
                      : std::function<void(const JobResult&)>(
                            [](const JobResult&) {});
  apps_.push_back(std::make_unique<MrAppMaster>(
      engine_, *rm_, *fabric_, *dfs_, id, std::move(spec),
      rng_.fork(0x10b + static_cast<std::uint64_t>(id.value())),
      std::move(done)));
  if (injector_ != nullptr) apps_.back()->set_fault_injector(injector_.get());
  apps_.back()->submit();
  return *apps_.back();
}

JobResult Simulation::run_job(JobSpec spec) {
  JobResult result;
  bool got = false;
  submit_job(std::move(spec), [&](const JobResult& r) {
    result = r;
    got = true;
  });
  run();
  MRON_CHECK_MSG(got, "job did not complete");
  return result;
}

std::vector<JobResult> Simulation::run_jobs(std::vector<JobSpec> specs) {
  const std::size_t n = specs.size();
  std::vector<JobResult> results(n);
  std::vector<bool> got(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    submit_job(std::move(specs[i]), [&results, &got, i](const JobResult& r) {
      results[i] = r;
      got[i] = true;
    });
  }
  run();
  for (std::size_t i = 0; i < n; ++i) {
    MRON_CHECK_MSG(got[i], "job " << i << " did not complete");
  }
  return results;
}

void Simulation::run() {
#if MRON_OBS_ENABLED
  // Setup ends where the event loop begins. Re-entering run() later flips
  // Teardown back to Steady; both accumulate across runs.
  if (host_profiler_ != nullptr) {
    host_profiler_->begin_phase(obs::HostPhase::kSteady);
  }
#endif
  engine_.run();
#if MRON_OBS_ENABLED
  // The loop has drained: everything from here on (final flush, result
  // assembly, export prep) is teardown, so Steady measures exactly the
  // dispatch loop and the subsystem totals tile it — the coverage rule
  // stays tight even when a loaded host stretches the post-loop work.
  if (host_profiler_ != nullptr) {
    host_profiler_->begin_phase(obs::HostPhase::kTeardown);
  }
  // One final sampling tick: the monitor's clock stops when the engine
  // drains, so pull-model gauges and series would otherwise miss the state
  // at completion (e.g. live_containers back at 0, wave fractions at 1).
  if (recorder_ != nullptr) {
    obs::HostProfiler::Activation hp(host_profiler_.get());
    HOST_PROF_SCOPE("sim.final_flush");
    recorder_->flush();
    recorder_->metrics().sample(engine_.now());
    emit_critical_path_flows();
  }
#endif
}

bool Simulation::write_host_profile(std::ostream& os) {
  if (host_profiler_ == nullptr) return false;
#if MRON_OBS_ENABLED
  obs::HostProfiler& hp = *host_profiler_;
  // Arena byte counters: how much each long-lived structure holds, split
  // out from RSS (which the profiler snapshots itself).
  hp.set_memory("engine.queue_bytes",
                static_cast<double>(engine_.queue_memory_bytes()));
  hp.set_memory("engine.slot_map_bytes",
                static_cast<double>(engine_.slot_memory_bytes()));
  if (recorder_ != nullptr) {
    hp.set_memory("obs.trace_bytes",
                  static_cast<double>(recorder_->trace().memory_bytes()));
    hp.set_memory("obs.series_bytes",
                  static_cast<double>(recorder_->series().memory_bytes()));
  }
  hp.set_meta("nodes", std::to_string(topo_->num_nodes()));
  hp.set_meta("seed", std::to_string(options_.seed));
  hp.set_meta("events", std::to_string(engine_.total_dispatched()));
  hp.write_json(os);
  return true;
#else
  (void)os;
  return false;
#endif
}

#if MRON_OBS_ENABLED
void Simulation::emit_critical_path_flows() {
  // Chrome-trace flow arrows along each finished job's critical path, so
  // the trace viewer visually connects producers to consumers across
  // process lanes. Emitted once per job (repeated run() calls only cover
  // jobs that finished since the last drain); segments whose endpoints
  // carry no trace location (pid < 0, e.g. job_submit) are skipped.
  obs::CriticalPathBuilder& cp = recorder_->critical_path();
  auto& trace = recorder_->trace();
  for (const auto& [job, end] : cp.finished_jobs()) {
    if (!cp_flows_emitted_.insert(job).second) continue;
    for (const obs::CpSegment& s : cp.extract(end)) {
      if (cp.pid(s.from) < 0 || cp.pid(s.to) < 0) continue;
      const std::int64_t id = next_cp_flow_id_++;
      trace.flow_begin("critical_path", "cp", cp.pid(s.from), cp.tid(s.from),
                       s.t0, id);
      trace.flow_end("critical_path", "cp", cp.pid(s.to), cp.tid(s.to), s.t1,
                     id);
    }
  }
}
#endif

}  // namespace mron::mapreduce
