#include "mapreduce/simulation.h"

#include <string>
#include <utility>

#include "common/check.h"

namespace mron::mapreduce {

Simulation::Simulation(SimulationOptions options)
    : options_(options), rng_(options.seed) {
#if MRON_OBS_ENABLED
  if (options_.observe) {
    // Attach before any substrate object exists: SharedServers resolve
    // their metric handles at construction.
    recorder_ = std::make_unique<obs::Recorder>();
    recorder_->trace().set_detail(options_.trace_detail);
    engine_.set_recorder(recorder_.get());
  }
#endif
  topo_ = std::make_unique<cluster::Topology>(options_.cluster);
  std::vector<cluster::Node*> ptrs;
  for (int i = 0; i < topo_->num_nodes(); ++i) {
    const cluster::NodeId id(i);
    nodes_.push_back(std::make_unique<cluster::Node>(engine_, id,
                                                     topo_->hardware(id)));
    ptrs.push_back(nodes_.back().get());
  }
  fabric_ =
      std::make_unique<cluster::Fabric>(engine_, options_.cluster, *topo_, ptrs);
  monitor_ = std::make_unique<cluster::ClusterMonitor>(
      engine_, ptrs, options_.monitor_period, topo_.get(),
      options_.monitor_node_series_limit);
  dfs_ = std::make_unique<dfs::Dfs>(*topo_, rng_.fork(0xdf5));
  auto policy = options_.capacity_queues.empty()
                    ? (options_.fair_scheduler ? yarn::make_fair_policy()
                                               : yarn::make_fifo_policy())
                    : yarn::make_capacity_policy(options_.capacity_queues);
  rm_ = std::make_unique<yarn::ResourceManager>(engine_, *topo_, ptrs,
                                                std::move(policy));
  if (options_.hotspot_aware) {
    monitor_->start();
    rm_->set_cluster_monitor(monitor_.get(), options_.hot_threshold);
  }
  if (options_.locality_delay_passes > 0) {
    rm_->set_locality_delay(options_.locality_delay_passes);
  }
  if (!options_.fault_plan.empty()) {
    injector_ =
        std::make_unique<faults::FaultInjector>(engine_, options_.fault_plan);
    injector_->arm(*rm_, ptrs);
  }
  if (recorder_ != nullptr) {
    // The monitor is the metrics registry's sampling clock.
    monitor_->start();
    // Queue occupancy: live pending events, stale cancel tombstones not yet
    // collected, and slot-map capacity. Pull model (queue churn is the
    // hottest path); values are backend-independent, so run reports stay
    // byte-identical across sim.queue implementations.
    auto* queue_live = &recorder_->metrics().gauge("sim.queue.live");
    auto* queue_stale = &recorder_->metrics().gauge("sim.queue.stale");
    auto* queue_capacity = &recorder_->metrics().gauge("sim.queue.capacity");
    recorder_->add_flush_hook(
        [this, queue_live, queue_stale, queue_capacity] {
          queue_live->set(static_cast<double>(engine_.pending()));
          queue_stale->set(static_cast<double>(engine_.stale_entries()));
          queue_capacity->set(static_cast<double>(engine_.slot_capacity()));
        });
    auto& trace = recorder_->trace();
    for (int i = 0; i < topo_->num_nodes(); ++i) {
      trace.set_process_name(i, "node" + std::to_string(i));
    }
    trace.set_process_name(obs::kTunerTracePid, "tuner");
  }
}

dfs::DatasetId Simulation::load_dataset(const std::string& name, Bytes size) {
  return dfs_->create_dataset(name, size);
}

MrAppMaster& Simulation::submit_job(
    JobSpec spec, std::function<void(const JobResult&)> on_done) {
  const JobId id = job_ids_.next();
  auto done = on_done ? std::move(on_done)
                      : std::function<void(const JobResult&)>(
                            [](const JobResult&) {});
  apps_.push_back(std::make_unique<MrAppMaster>(
      engine_, *rm_, *fabric_, *dfs_, id, std::move(spec),
      rng_.fork(0x10b + static_cast<std::uint64_t>(id.value())),
      std::move(done)));
  if (injector_ != nullptr) apps_.back()->set_fault_injector(injector_.get());
  apps_.back()->submit();
  return *apps_.back();
}

JobResult Simulation::run_job(JobSpec spec) {
  JobResult result;
  bool got = false;
  submit_job(std::move(spec), [&](const JobResult& r) {
    result = r;
    got = true;
  });
  run();
  MRON_CHECK_MSG(got, "job did not complete");
  return result;
}

std::vector<JobResult> Simulation::run_jobs(std::vector<JobSpec> specs) {
  const std::size_t n = specs.size();
  std::vector<JobResult> results(n);
  std::vector<bool> got(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    submit_job(std::move(specs[i]), [&results, &got, i](const JobResult& r) {
      results[i] = r;
      got[i] = true;
    });
  }
  run();
  for (std::size_t i = 0; i < n; ++i) {
    MRON_CHECK_MSG(got[i], "job " << i << " did not complete");
  }
  return results;
}

void Simulation::run() {
  engine_.run();
#if MRON_OBS_ENABLED
  // One final sampling tick: the monitor's clock stops when the engine
  // drains, so pull-model gauges and series would otherwise miss the state
  // at completion (e.g. live_containers back at 0, wave fractions at 1).
  if (recorder_ != nullptr) {
    recorder_->flush();
    recorder_->metrics().sample(engine_.now());
    emit_critical_path_flows();
  }
#endif
}

#if MRON_OBS_ENABLED
void Simulation::emit_critical_path_flows() {
  // Chrome-trace flow arrows along each finished job's critical path, so
  // the trace viewer visually connects producers to consumers across
  // process lanes. Emitted once per job (repeated run() calls only cover
  // jobs that finished since the last drain); segments whose endpoints
  // carry no trace location (pid < 0, e.g. job_submit) are skipped.
  obs::CriticalPathBuilder& cp = recorder_->critical_path();
  auto& trace = recorder_->trace();
  for (const auto& [job, end] : cp.finished_jobs()) {
    if (!cp_flows_emitted_.insert(job).second) continue;
    for (const obs::CpSegment& s : cp.extract(end)) {
      if (cp.pid(s.from) < 0 || cp.pid(s.to) < 0) continue;
      const std::int64_t id = next_cp_flow_id_++;
      trace.flow_begin("critical_path", "cp", cp.pid(s.from), cp.tid(s.from),
                       s.t0, id);
      trace.flow_end("critical_path", "cp", cp.pid(s.to), cp.tid(s.to), s.t1,
                     id);
    }
  }
}
#endif

}  // namespace mron::mapreduce
