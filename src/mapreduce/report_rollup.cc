#include "mapreduce/report_rollup.h"

#include <algorithm>
#include <cstdio>

#include "mapreduce/params.h"
#include "mapreduce/simulation.h"

namespace mron::mapreduce {

namespace {

std::map<std::string, double> counters_map(const TaskCounters& c) {
  return {
      {"map_output_records", static_cast<double>(c.map_output_records)},
      {"combine_output_records",
       static_cast<double>(c.combine_output_records)},
      {"spilled_records", static_cast<double>(c.spilled_records)},
      {"map_output_bytes", c.map_output_bytes.as_double()},
      {"shuffle_bytes", c.shuffle_bytes.as_double()},
      {"local_disk_write_bytes", c.local_disk_write_bytes.as_double()},
      {"local_disk_read_bytes", c.local_disk_read_bytes.as_double()},
      {"cpu_seconds", c.cpu_seconds},
  };
}

void duration_stats(const std::vector<TaskReport>& reports,
                    const std::string& prefix,
                    std::map<std::string, double>& stats) {
  double sum = 0.0, max = 0.0;
  for (const TaskReport& r : reports) {
    sum += r.duration();
    max = std::max(max, r.duration());
  }
  stats[prefix + "_tasks"] = static_cast<double>(reports.size());
  stats[prefix + "_task_secs_avg"] =
      reports.empty() ? 0.0 : sum / static_cast<double>(reports.size());
  stats[prefix + "_task_secs_max"] = max;
}

}  // namespace

obs::ReportJob report_job_from(const JobResult& result,
                               const JobConfig& config) {
  obs::ReportJob job;
  job.id = result.id.value();
  job.name = result.name;
  job.submit_time = result.submit_time;
  job.finish_time = result.finish_time;
  job.phases["map"] = counters_map(result.counters.map);
  job.phases["reduce"] = counters_map(result.counters.reduce);
  job.stats["exec_secs"] = result.exec_time();
  job.stats["failed_attempts"] =
      static_cast<double>(result.counters.failed_task_attempts);
  job.stats["spilled_records"] =
      static_cast<double>(result.counters.total_spilled_records());
  job.stats["speculative_launches"] =
      static_cast<double>(result.speculative_launches);
  job.stats["speculative_wins"] =
      static_cast<double>(result.speculative_wins);
  job.stats["injected_failures"] =
      static_cast<double>(result.injected_failures);
  job.stats["fetch_failures"] = static_cast<double>(result.fetch_failures);
  job.stats["lost_maps_reexecuted"] =
      static_cast<double>(result.lost_maps_reexecuted);
  duration_stats(result.map_reports, "map", job.stats);
  duration_stats(result.reduce_reports, "reduce", job.stats);

  const auto& reg = ParamRegistry::extended();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    job.config[reg.at(i).name] = reg.get(config, i);
  }
  return job;
}

std::string run_report_json(
    const Simulation& sim,
    const std::vector<std::pair<const JobResult*, const JobConfig*>>& jobs,
    const std::vector<std::pair<std::string, std::string>>& meta) {
  obs::RunReport report;
  report.set_meta("schema_tool", "mron");
  for (const auto& [k, v] : meta) report.set_meta(k, v);
  report.set_meta("cluster_nodes",
                  std::to_string(sim.topology().num_nodes()));
  report.set_meta("seed", std::to_string(sim.options().seed));
  for (const auto& [result, config] : jobs) {
    report.add_job(report_job_from(*result, *config));
  }
  if (const faults::FaultInjector* inj = sim.fault_injector()) {
    const faults::FaultPlan& plan = inj->plan();
    const faults::FaultStats& fs = inj->stats();
    report.set_faults({
        {"plan.seed", static_cast<double>(plan.seed)},
        {"plan.task_fail_prob", plan.task_fail_prob},
        {"plan.crashes", static_cast<double>(plan.crashes.size())},
        {"plan.degradations", static_cast<double>(plan.degradations.size())},
        {"plan.heartbeat_period", plan.heartbeat_period},
        {"plan.heartbeat_timeout", plan.heartbeat_timeout},
        {"crashes", static_cast<double>(fs.crashes)},
        {"restarts", static_cast<double>(fs.restarts)},
        {"degrade_windows", static_cast<double>(fs.degrade_windows)},
        {"injected_task_failures",
         static_cast<double>(fs.injected_task_failures)},
        {"fetch_failures", static_cast<double>(fs.fetch_failures)},
        {"lost_map_reexecutions",
         static_cast<double>(fs.lost_map_reexecutions)},
    });
  }
  // Storage block: always present — the placement counts describe the
  // dataset even on fault-free runs, and under_replicated_final == 0 is the
  // "storage fully recovered before drain" assertion CI pins down.
  const dfs::Dfs& d = sim.dfs();
  const dfs::Rereplicator::Stats& rs = sim.rereplicator().stats();
  report.set_meta("dfs_policy", d.policy_name());
  report.set_dfs({
      {"blocks_total", static_cast<double>(d.total_blocks())},
      {"replication", static_cast<double>(d.default_replication())},
      {"under_replicated_final",
       static_cast<double>(d.under_replicated_blocks())},
      {"under_replicated_peak",
       static_cast<double>(rs.peak_under_replicated)},
      {"rerepl.bytes", rs.bytes_copied},
      {"rerepl.started", static_cast<double>(rs.copies_started)},
      {"rerepl.completed", static_cast<double>(rs.copies_completed)},
      {"rerepl.cancelled", static_cast<double>(rs.copies_cancelled)},
      {"rerepl.recovery_time", rs.last_fully_replicated},
  });
  return report.to_json(sim.recorder());
}

std::string run_report_key(
    const std::string& phase,
    const std::vector<std::pair<std::string, std::string>>& meta,
    const JobConfig& config) {
  std::string key = phase;
  for (const auto& [k, v] : meta) {
    key += "|" + k + "=" + v;
  }
  key += "|cfg:";
  const auto& reg = ParamRegistry::extended();
  char buf[32];
  for (std::size_t i = 0; i < reg.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.17g,", reg.get(config, i));
    key += buf;
  }
  return key;
}

}  // namespace mron::mapreduce
