#include "mapreduce/spill_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mron::mapreduce {

MergeCost plan_disk_merge(std::vector<Bytes> file_sizes, int factor) {
  MRON_CHECK(factor >= 2);
  MergeCost cost;
  std::sort(file_sizes.begin(), file_sizes.end());
  while (static_cast<int>(file_sizes.size()) > factor) {
    // Merge the `factor` smallest files into one.
    Bytes merged{0};
    for (int i = 0; i < factor; ++i) merged += file_sizes[static_cast<std::size_t>(i)];
    file_sizes.erase(file_sizes.begin(), file_sizes.begin() + factor);
    cost.read += merged;
    cost.write += merged;
    ++cost.rounds;
    // Keep sorted: insert the merged file at its position.
    file_sizes.insert(
        std::lower_bound(file_sizes.begin(), file_sizes.end(), merged),
        merged);
  }
  return cost;
}

MapSpillPlan plan_map_spills(Bytes map_output_bytes,
                             std::int64_t map_output_records,
                             double combiner_ratio, const JobConfig& cfg) {
  MapSpillPlan plan;
  if (map_output_bytes <= Bytes(0) || map_output_records <= 0) return plan;
  MRON_CHECK(combiner_ratio > 0.0 && combiner_ratio <= 1.0);

  const double record_bytes = map_output_bytes.as_double() /
                              static_cast<double>(map_output_records);
  const double data_fraction =
      record_bytes / (record_bytes + kSpillMetadataBytes);
  const Bytes trigger =
      mebibytes(cfg.io_sort_mb) * cfg.sort_spill_percent * data_fraction;
  MRON_CHECK_MSG(trigger > Bytes(0), "empty sort buffer");
  plan.num_spills = static_cast<int>(
      std::ceil(map_output_bytes.as_double() / trigger.as_double()));
  plan.num_spills = std::max(plan.num_spills, 1);

  // The combiner runs per spill; records/bytes hitting disk are combined.
  const Bytes combined_bytes = map_output_bytes * combiner_ratio;
  const auto combined_records = static_cast<std::int64_t>(
      std::llround(static_cast<double>(map_output_records) * combiner_ratio));

  // Initial spills: every combined record written once.
  plan.spill_records = combined_records;
  plan.disk_write_bytes = combined_bytes;

  if (plan.num_spills > 1) {
    // Merge phase. Intermediate rounds while files > io.sort.factor ...
    const Bytes per_spill = combined_bytes * (1.0 / plan.num_spills);
    std::vector<Bytes> files(static_cast<std::size_t>(plan.num_spills),
                             per_spill);
    const MergeCost mid =
        plan_disk_merge(files, static_cast<int>(cfg.io_sort_factor));
    // ... then one final round writes the single map output file.
    plan.disk_read_bytes = mid.read + combined_bytes;
    plan.disk_write_bytes += mid.write + combined_bytes;
    plan.merge_rounds = mid.rounds + 1;
    const double rewrite_ratio =
        (mid.write + combined_bytes) / combined_bytes;
    plan.spill_records += static_cast<std::int64_t>(std::llround(
        static_cast<double>(combined_records) * rewrite_ratio));
  }
  return plan;
}

ShuffleBufferModel::ShuffleBufferModel(const JobConfig& cfg,
                                       double record_bytes)
    : record_bytes_(record_bytes) {
  MRON_CHECK(record_bytes_ > 0.0);
  task_memory_ = mebibytes(cfg.reduce_memory_mb) * kHeapFraction;
  shuffle_buffer_ = task_memory_ * cfg.shuffle_input_buffer_percent;
  update_live_params(cfg);
}

void ShuffleBufferModel::update_live_params(const JobConfig& cfg) {
  // Category-III parameters may change while the task runs; buffer sizes
  // themselves (category II) are fixed at construction.
  merge_trigger_ = task_memory_ * cfg.shuffle_input_buffer_percent *
                   cfg.shuffle_merge_percent;
  inmem_threshold_ =
      static_cast<std::int64_t>(std::llround(cfg.merge_inmem_threshold));
  reduce_input_buffer_percent_ = cfg.reduce_input_buffer_percent;
  segment_limit_ = task_memory_ * cfg.shuffle_input_buffer_percent *
                   cfg.shuffle_memory_limit_percent;
}

Bytes ShuffleBufferModel::add_segment(Bytes segment) {
  MRON_CHECK(!finalized_);
  if (segment <= Bytes(0)) return Bytes(0);
  if (segment > segment_limit_) {
    // Oversized segment: fetched straight to a disk file.
    disk_write_ += segment;
    disk_files_.push_back(segment);
    spilled_records_ += static_cast<std::int64_t>(
        std::llround(segment.as_double() / record_bytes_));
    return segment;
  }
  pool_ += segment;
  ++pool_segments_;
  const bool over_bytes = pool_ >= merge_trigger_;
  const bool over_count =
      inmem_threshold_ > 0 && pool_segments_ >= inmem_threshold_;
  if (over_bytes || over_count) {
    const Bytes flushed = pool_;
    flush_pool();
    return flushed;
  }
  return Bytes(0);
}

Bytes ShuffleBufferModel::add_segments(int count, Bytes segment) {
  MRON_CHECK(!finalized_);
  MRON_CHECK(count >= 0);
  if (count == 0 || segment <= Bytes(0)) return Bytes(0);
  const auto n = static_cast<std::int64_t>(count);
  const std::int64_t s = segment.count();

  if (segment > segment_limit_) {
    // Every copy bypasses the pool and lands in its own disk file.
    const auto records_each = static_cast<std::int64_t>(
        std::llround(segment.as_double() / record_bytes_));
    disk_write_ += Bytes(n * s);
    disk_files_.insert(disk_files_.end(), static_cast<std::size_t>(n),
                       segment);
    spilled_records_ += n * records_each;
    return Bytes(n * s);
  }

  // Number of adds, starting from a pool of `pool` bytes / `segs` segments,
  // until the pool flushes. The incremental loop flushes after the add that
  // makes pool >= merge_trigger_ or (when the threshold is on) segment count
  // >= inmem_threshold_ — so a pool already at/over a limit (possible after
  // update_live_params() lowered it) flushes on the very next add.
  const std::int64_t trigger = merge_trigger_.count();
  const std::int64_t threshold = inmem_threshold_;
  const auto adds_until_flush = [&](std::int64_t pool,
                                    std::int64_t segs) -> std::int64_t {
    std::int64_t k =
        trigger > pool ? (trigger - pool + s - 1) / s : std::int64_t{1};
    if (threshold > 0) {
      k = std::min(k, std::max<std::int64_t>(1, threshold - segs));
    }
    return std::max<std::int64_t>(k, 1);
  };

  const std::int64_t first = adds_until_flush(pool_.count(), pool_segments_);
  if (n < first) {
    // The whole run is absorbed; nothing observable happens.
    pool_ += Bytes(n * s);
    pool_segments_ += count;
    return Bytes(0);
  }

  // First flush drains the partially filled pool...
  const Bytes first_flush = pool_ + Bytes(first * s);
  disk_write_ += first_flush;
  disk_files_.push_back(first_flush);
  spilled_records_ += static_cast<std::int64_t>(
      std::llround(first_flush.as_double() / record_bytes_));
  ++inmem_merges_;
  Bytes flushed_total = first_flush;

  // ...then the cycle repeats from empty: absorb `cycle` segments, flush
  // cycle*s bytes. Each full cycle is byte-identical, so one flush's
  // accounting times the cycle count reproduces the incremental loop.
  const std::int64_t rest = n - first;
  const std::int64_t cycle = adds_until_flush(0, 0);
  const std::int64_t full_cycles = rest / cycle;
  const std::int64_t leftover = rest % cycle;
  if (full_cycles > 0) {
    const Bytes cycle_flush{cycle * s};
    const auto cycle_records = static_cast<std::int64_t>(
        std::llround(cycle_flush.as_double() / record_bytes_));
    disk_write_ += Bytes(full_cycles * cycle_flush.count());
    disk_files_.insert(disk_files_.end(),
                       static_cast<std::size_t>(full_cycles), cycle_flush);
    spilled_records_ += full_cycles * cycle_records;
    inmem_merges_ += static_cast<int>(full_cycles);
    flushed_total += Bytes(full_cycles * cycle_flush.count());
  }
  pool_ = Bytes(leftover * s);
  pool_segments_ = static_cast<int>(leftover);
  return flushed_total;
}

bool ShuffleBufferModel::would_absorb(std::int64_t pending,
                                      Bytes segment) const {
  if (finalized_ || segment <= Bytes(0)) return false;
  if (segment > segment_limit_) return false;
  const std::int64_t adds = pending + 1;
  if (inmem_threshold_ > 0 &&
      pool_segments_ + adds >= inmem_threshold_) {
    return false;
  }
  return pool_.count() + adds * segment.count() < merge_trigger_.count();
}

void ShuffleBufferModel::flush_pool() {
  if (pool_ <= Bytes(0)) return;
  ++inmem_merges_;
  disk_write_ += pool_;
  disk_files_.push_back(pool_);
  spilled_records_ += static_cast<std::int64_t>(
      std::llround(pool_.as_double() / record_bytes_));
  pool_ = Bytes(0);
  pool_segments_ = 0;
}

Bytes ShuffleBufferModel::finalize() {
  MRON_CHECK(!finalized_);
  finalized_ = true;
  const Bytes reduce_budget = task_memory_ * reduce_input_buffer_percent_;
  if (pool_ <= reduce_budget) {
    kept_in_memory_ = pool_;
    pool_ = Bytes(0);
    pool_segments_ = 0;
    return Bytes(0);
  }
  const Bytes flushed = pool_;
  flush_pool();
  return flushed;
}

}  // namespace mron::mapreduce
