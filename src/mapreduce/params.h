// The Table-2 configuration parameters: typed config, registry, constraints.
//
// JobConfig carries the tunable parameters as typed fields for fast access
// in the task models. ParamRegistry exposes the same parameters generically
// (name, range, category, get/set on a JobConfig) for the tuner's search
// space and for the dynamic-configurator string API (Table 1).
//
// Categories follow Section 2.2 of the paper:
//   I   JobStatic  — fixed once the job starts (#maps, #reduces, slowstart);
//   II  TaskLaunch — picked up by tasks launched after the change;
//   III Live       — takes effect immediately, even in running tasks.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.h"

namespace mron::mapreduce {

enum class ParamCategory { JobStatic, TaskLaunch, Live };

/// Tunable job configuration (paper Table 2, with YARN defaults).
struct JobConfig {
  // --- memory tuning -------------------------------------------------------
  double map_memory_mb = 1024;     // mapreduce.map.memory.mb
  double reduce_memory_mb = 1024;  // mapreduce.reduce.memory.mb
  double io_sort_mb = 100;         // mapreduce.task.io.sort.mb
  double sort_spill_percent = 0.8; // mapreduce.map.sort.spill.percent
  double shuffle_input_buffer_percent = 0.7;
  double shuffle_merge_percent = 0.66;
  double shuffle_memory_limit_percent = 0.25;
  double merge_inmem_threshold = 1000;  // records; 0 = disabled
  double reduce_input_buffer_percent = 0.0;
  // --- cpu tuning -----------------------------------------------------------
  double map_cpu_vcores = 1;
  double reduce_cpu_vcores = 1;
  double io_sort_factor = 10;
  double shuffle_parallelcopies = 5;

  // --- extension beyond Table 2 ----------------------------------------------
  /// mapreduce.map.output.compress (0/1): compress spills and map outputs
  /// with a snappy-like codec — trades CPU for disk/network bytes. Part of
  /// the extended registry, not the paper's 13-parameter search space.
  double map_output_compress = 0;
  /// dfs.replication: replication factor for the job's input dataset.
  /// Category I — placement happens before the job starts, so the tuner can
  /// only use it across runs (static planning), never mid-job. Higher
  /// factors buy locality and failure tolerance for storage.
  double dfs_replication = 3;

  friend bool operator==(const JobConfig&, const JobConfig&) = default;
};

/// One tunable parameter: metadata plus accessors into JobConfig.
struct ParamDescriptor {
  std::string name;
  double default_value;
  double min;
  double max;
  bool integer;
  ParamCategory category;
  double JobConfig::*field;
};

/// The registry of all Table-2 parameters, in a fixed order that defines the
/// tuner's search-space dimensions.
class ParamRegistry {
 public:
  /// The full Table-2 registry with paper-calibrated ranges.
  static const ParamRegistry& standard();
  /// Table 2 plus the extension parameters (map-output compression).
  static const ParamRegistry& extended();

  [[nodiscard]] const std::vector<ParamDescriptor>& params() const {
    return params_;
  }
  [[nodiscard]] std::size_t size() const { return params_.size(); }
  [[nodiscard]] const ParamDescriptor& at(std::size_t i) const;
  [[nodiscard]] const ParamDescriptor* find(const std::string& name) const;

  /// All parameter names (the getConfigurable*Parameters payload).
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] double get(const JobConfig& cfg, std::size_t i) const;
  /// Sets field i, clamping to [min,max] and rounding integer params.
  void set(JobConfig& cfg, std::size_t i, double value) const;
  /// String-keyed setter for the dynamic-configurator API; returns false for
  /// unknown names.
  bool set_by_name(JobConfig& cfg, const std::string& name,
                   double value) const;
  [[nodiscard]] std::optional<double> get_by_name(
      const JobConfig& cfg, const std::string& name) const;

 private:
  explicit ParamRegistry(std::vector<ParamDescriptor> params);
  std::vector<ParamDescriptor> params_;
};

/// Enforce the inter-parameter dependencies of Section 5:
///   io.sort.mb fits inside the map container heap (with JVM headroom);
///   shuffle.merge.percent <= shuffle.input.buffer.percent;
///   reduce.input.buffer.percent <= shuffle.input.buffer.percent.
/// Returns the number of fields adjusted.
int clamp_constraints(JobConfig& cfg);

/// JVM + framework headroom assumed inside each container; the sort buffer
/// must fit in what is left.
constexpr double kJvmHeadroomMb = 256.0;

const char* category_name(ParamCategory c);

}  // namespace mron::mapreduce
