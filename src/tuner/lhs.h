// Latin hypercube sampling over a SearchSpace.
//
// For n samples, each dimension's current [lo,hi] band is split into n
// equal-probability strata; each sample draws one stratum per dimension
// without replacement (an independent random permutation per dimension), so
// every stratum is covered exactly once — the higher-quality space coverage
// Section 5 credits for the algorithm's convergence speed. The paper's `k`
// (interval granularity) quantizes coordinates onto a k-point lattice.
#pragma once

#include <vector>

#include "common/rng.h"
#include "tuner/search_space.h"

namespace mron::tuner {

class LhsSampler {
 public:
  /// `intervals` is the paper's k (set to 24 in their evaluation).
  /// `stratified` = false degrades to plain uniform sampling (the ablation
  /// baseline for the LHS-quality claim in Section 5).
  LhsSampler(int intervals, Rng rng, bool stratified = true);

  /// n stratified points inside `space`'s dynamic bounds, centered on no
  /// particular point (global search).
  std::vector<std::vector<double>> sample(const SearchSpace& space, int n);

  /// n stratified points inside the intersection of the bounds and a
  /// hypercube of half-width `radius` around `center` (local search).
  std::vector<std::vector<double>> sample_neighborhood(
      const SearchSpace& space, const std::vector<double>& center,
      double radius, int n);

 private:
  double quantize(double v) const;

  int intervals_;
  Rng rng_;
  bool stratified_;
};

}  // namespace mron::tuner
