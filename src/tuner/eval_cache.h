// Memoized candidate-evaluation cache for the tuning loops.
//
// Every searcher in the repo (the what-if optimizer's restart chains, the
// GA's seeding/generation waves, the online tuner's cost scoring) re-scores
// configurations it has already seen: parameter quantization and
// clamp_constraints() collapse nearby samples onto the same point, and
// restart chains revisit each other's territory. EvalCache<V> memoizes those
// pure evaluations behind a canonical key so duplicates cost a hash lookup
// instead of a model call — wall-clock changes, results never do, because a
// hit returns exactly what the miss would have computed.
//
// Keys are built with CacheKey: the full quantized word sequence is stored
// and compared on lookup (not just a digest), so a hash collision can never
// return the wrong value — required for the byte-identical-winners contract.
// The cache is sharded and lock-striped, safe under ParallelRunner fan-out;
// per-process hit/miss/evict totals aggregate into a global stats block that
// export_eval_cache_metrics() publishes through the obs::MetricsRegistry.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "mapreduce/params.h"

namespace mron::obs {
class MetricsRegistry;
}  // namespace mron::obs

namespace mron::tuner {

/// Process-wide switch behind --no-eval-cache (and the MRON_NO_EVAL_CACHE
/// environment variable, so ctest/CI runs can A/B without flag plumbing).
/// Caching never changes results, so flipping this mid-run is safe.
[[nodiscard]] bool eval_cache_enabled();
void set_eval_cache_enabled(bool enabled);

struct EvalCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return lookups() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups());
  }
};

/// Cumulative stats across every EvalCache in the process.
[[nodiscard]] EvalCacheStats eval_cache_global_stats();
void reset_eval_cache_global_stats();
/// Publish the global totals as gauges (tuner.eval_cache.{hits,misses,
/// insertions,evictions,hit_rate}) on `registry`.
void export_eval_cache_metrics(obs::MetricsRegistry& registry);

/// Canonical quantized key: a sequence of 64-bit words (doubles are stored
/// by bit pattern after normalizing -0.0) plus an FNV-1a digest for shard
/// and bucket selection. Equality compares the full word sequence.
class CacheKey {
 public:
  void add(double v);
  void add(std::int64_t v);
  void add(int v) { add(static_cast<std::int64_t>(v)); }
  void add(std::uint64_t v) { add_word(v); }
  void add(Bytes b) { add(b.count()); }
  void add(bool v) { add(std::int64_t{v ? 1 : 0}); }

  /// Canonicalize `cfg` (clamp_constraints — the same projection every
  /// evaluator applies) and append each registry parameter's value, so two
  /// configs that evaluate identically key identically.
  void add_config(const mapreduce::ParamRegistry& registry,
                  mapreduce::JobConfig cfg);

  /// Same canonicalization, but append every JobConfig field directly in
  /// declaration order — a superset of any registry's view, with no
  /// per-parameter indirection. This is the hot-path form: the what-if
  /// search builds ~6k keys per optimize call, and the registry walk was
  /// a measurable fraction of a (closed-form, sub-microsecond) model call.
  void add_config(const mapreduce::JobConfig& cfg);

  [[nodiscard]] std::uint64_t hash() const { return hash_; }
  [[nodiscard]] std::size_t size_words() const { return words_.size(); }

  /// Reset to the empty key, keeping the word storage's capacity — lets a
  /// reused (e.g. thread_local) key build allocation-free in steady state.
  void clear() {
    words_.clear();
    hash_ = 14695981039346656037ULL;
  }

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.hash_ == b.hash_ && a.words_ == b.words_;
  }

 private:
  void add_word(std::uint64_t w);

  std::vector<std::uint64_t> words_;
  std::uint64_t hash_ = 14695981039346656037ULL;  // FNV-1a offset basis
};

inline constexpr std::size_t kDefaultEvalCacheCapacity = 1 << 14;
inline constexpr std::size_t kDefaultEvalCacheShards = 16;

namespace internal {
void note_global(std::uint64_t hits, std::uint64_t misses,
                 std::uint64_t insertions, std::uint64_t evictions);
}  // namespace internal

/// Sharded, lock-striped LRU map from CacheKey to V. Lookups refresh
/// recency; insertion past a shard's capacity evicts that shard's
/// least-recently-used entry. Values are returned by copy (they are small:
/// a score or a Prediction).
template <typename V>
class EvalCache {
 public:
  explicit EvalCache(std::size_t capacity = kDefaultEvalCacheCapacity,
                     std::size_t shards = kDefaultEvalCacheShards)
      : shards_(shards == 0 ? 1 : shards) {
    per_shard_capacity_ =
        std::max<std::size_t>(1, capacity / shards_.size());
    // A cache typically lives for one search call and fills from empty;
    // pre-sizing the bucket arrays avoids repeated rehash-and-relink of
    // every node on the insert-heavy warmup path.
    for (Shard& sh : shards_) sh.index.reserve(per_shard_capacity_);
  }

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  [[nodiscard]] std::optional<V> lookup(const CacheKey& key) {
    Shard& sh = shard_for(key);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto [first, last] = sh.index.equal_range(key.hash());
    for (auto it = first; it != last; ++it) {
      if (it->second->first == key) {
        sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
        ++sh.stats.hits;
        internal::note_global(1, 0, 0, 0);
        return it->second->second;
      }
    }
    ++sh.stats.misses;
    internal::note_global(0, 1, 0, 0);
    return std::nullopt;
  }

  void insert(const CacheKey& key, const V& value) {
    Shard& sh = shard_for(key);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto [first, last] = sh.index.equal_range(key.hash());
    for (auto it = first; it != last; ++it) {
      // Another thread computed the same key first; keep its entry (the
      // values are identical by the purity contract).
      if (it->second->first == key) return;
    }
    sh.lru.emplace_front(key, value);
    sh.index.emplace(key.hash(), sh.lru.begin());
    ++sh.stats.insertions;
    std::uint64_t evicted = 0;
    while (sh.lru.size() > per_shard_capacity_) {
      erase_index_entry(sh, std::prev(sh.lru.end()));
      sh.lru.pop_back();
      ++sh.stats.evictions;
      ++evicted;
    }
    internal::note_global(0, 0, 1, evicted);
  }

  /// Memoize: return the cached value or compute, insert, and return it.
  /// `fn` runs outside the shard lock (evaluations can be slow); concurrent
  /// misses on one key may both compute, which is benign — the values are
  /// equal and the second insert is dropped.
  template <typename Fn>
  V get_or_compute(const CacheKey& key, Fn&& fn) {
    if (auto hit = lookup(key)) return *std::move(hit);
    V value = std::forward<Fn>(fn)();
    insert(key, value);
    return value;
  }

  [[nodiscard]] EvalCacheStats stats() const {
    EvalCacheStats total;
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      total.hits += sh.stats.hits;
      total.misses += sh.stats.misses;
      total.insertions += sh.stats.insertions;
      total.evictions += sh.stats.evictions;
    }
    return total;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      n += sh.lru.size();
    }
    return n;
  }

 private:
  using Entry = std::pair<CacheKey, V>;
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< most-recently-used first
    /// hash -> list node; full-key compare disambiguates collisions.
    std::unordered_multimap<std::uint64_t, typename std::list<Entry>::iterator>
        index;
    EvalCacheStats stats;
  };

  Shard& shard_for(const CacheKey& key) {
    // The low bits pick the bucket inside the shard's multimap; use the
    // high bits for shard choice so the two are independent.
    return shards_[(key.hash() >> 48) % shards_.size()];
  }

  static void erase_index_entry(Shard& sh,
                                typename std::list<Entry>::iterator node) {
    auto [first, last] = sh.index.equal_range(node->first.hash());
    for (auto it = first; it != last; ++it) {
      if (it->second == node) {
        sh.index.erase(it);
        return;
      }
    }
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_capacity_ = kDefaultEvalCacheCapacity;
};

}  // namespace mron::tuner
