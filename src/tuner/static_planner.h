// Category-I parameter planning — the paper's stated future work.
//
// Section 2.2 classifies #reducers and slowstart as category I: impossible
// to change once the job starts, so MRONLINE cannot tune them online; the
// authors point to simulation tools (their own MRPerf) as the way to pick
// them, "a focus of our on-going research". This module closes that loop:
// the discrete-event simulator doubles as the MRPerf-style evaluator, and
// the planner sweeps candidate (num_reduces, slowstart) pairs with full
// simulated runs before the production job is submitted.
#pragma once

#include <vector>

#include "mapreduce/job.h"

namespace mron::tuner {

struct StaticPlanOptions {
  /// Reducer counts to try; empty = fractions of the map count
  /// (maps/8, maps/4, maps/2, maps).
  std::vector<int> reducer_candidates;
  std::vector<double> slowstart_candidates = {0.05, 0.5, 1.0};
  std::uint64_t seed = 21;
  cluster::ClusterSpec cluster;
};

struct StaticPlanPoint {
  int num_reduces = 0;
  double slowstart = 0.0;
  double simulated_secs = 0.0;
};

struct StaticPlan {
  int num_reduces = 0;
  double slowstart = 0.0;
  double simulated_secs = 0.0;
  /// Every evaluated point, in evaluation order.
  std::vector<StaticPlanPoint> sweep;
};

/// Simulate every candidate pair for a job with `template_spec`'s profile
/// and configuration over `input_size` bytes of input; return the best.
/// The template's own num_reduces/slowstart are ignored (they are what is
/// being planned).
StaticPlan plan_static_parameters(const mapreduce::JobSpec& template_spec,
                                  Bytes input_size,
                                  const StaticPlanOptions& options = {});

}  // namespace mron::tuner
