// The task cost estimate — Equation 1 of the paper:
//
//   y = (1 - u_mem) + (1 - u_cpu) + n_spill / n_mapoutput + T / T_max
//
// Lower is better: the formula rewards full (but not over-) utilization of
// the container's memory and CPU, penalizes spill amplification, and
// normalizes task time against the slowest task seen so far in the job.
// OOM-killed attempts get a large fixed penalty so the search retreats from
// configurations that do not even run, and near-OOM commitments (buffers +
// working set close to the container limit) pay a risk surcharge — the
// paper's Section-6 guidance that pushing past ~90% memory utilization
// trades throughput for container kills.
#pragma once

#include "mapreduce/job.h"

namespace mron::tuner {

/// Penalty assigned to an attempt that died of OOM.
constexpr double kOomCostPenalty = 100.0;
/// Committed memory above this fraction of the container accrues risk cost.
constexpr double kMemCommitSafe = 0.90;
/// Risk cost per unit of commitment beyond the safe fraction.
constexpr double kMemCommitRiskSlope = 30.0;

/// Eq. 1. `max_task_seconds` is the running maximum duration of completed
/// tasks of the same kind within the job (>= report duration for the
/// slowest task itself).
double task_cost(const mapreduce::TaskReport& report,
                 double max_task_seconds);

}  // namespace mron::tuner
