#include "tuner/lhs.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace mron::tuner {

LhsSampler::LhsSampler(int intervals, Rng rng, bool stratified)
    : intervals_(intervals), rng_(rng), stratified_(stratified) {
  MRON_CHECK(intervals_ >= 2);
}

double LhsSampler::quantize(double v) const {
  // Snap to the k-point lattice over [0,1].
  const double k = static_cast<double>(intervals_ - 1);
  return std::round(v * k) / k;
}

std::vector<std::vector<double>> LhsSampler::sample(const SearchSpace& space,
                                                    int n) {
  std::vector<double> center(space.dims());
  for (std::size_t d = 0; d < space.dims(); ++d) {
    center[d] = 0.5 * (space.lower(d) + space.upper(d));
  }
  // A radius of 1 covers the full band in every dimension.
  return sample_neighborhood(space, center, 1.0, n);
}

std::vector<std::vector<double>> LhsSampler::sample_neighborhood(
    const SearchSpace& space, const std::vector<double>& center, double radius,
    int n) {
  MRON_CHECK(n >= 1);
  MRON_CHECK(center.size() == space.dims());
  const std::size_t dims = space.dims();

  std::vector<std::vector<double>> points(
      static_cast<std::size_t>(n), std::vector<double>(dims, 0.0));

  for (std::size_t d = 0; d < dims; ++d) {
    const double lo = std::max(space.lower(d), center[d] - radius);
    const double hi = std::min(space.upper(d), center[d] + radius);
    const double width = std::max(hi - lo, 0.0);
    // One stratum per sample, shuffled so strata pair randomly across
    // dimensions (the Latin property).
    std::vector<int> strata(static_cast<std::size_t>(n));
    std::iota(strata.begin(), strata.end(), 0);
    std::shuffle(strata.begin(), strata.end(), rng_);
    for (int i = 0; i < n; ++i) {
      const double u =
          stratified_
              ? (static_cast<double>(strata[static_cast<std::size_t>(i)]) +
                 rng_.uniform01()) /
                    static_cast<double>(n)
              : rng_.uniform01();
      double v = lo + u * width;
      v = quantize(v);
      // Quantization may step just outside the band; clamp back.
      points[static_cast<std::size_t>(i)][d] =
          std::clamp(v, space.lower(d), space.upper(d));
    }
  }
  return points;
}

}  // namespace mron::tuner
