#include "tuner/dynamic_configurator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/recorder.h"
#include "sim/engine.h"

namespace mron::tuner {

using mapreduce::JobConfig;
using mapreduce::JobId;
using mapreduce::MrAppMaster;
using mapreduce::ParamCategory;
using mapreduce::ParamRegistry;
using mapreduce::TaskKind;
using mapreduce::TaskRef;

void DynamicConfigurator::register_job(MrAppMaster* am) {
  MRON_CHECK(am != nullptr);
  jobs_[am->id()] = am;
}

void DynamicConfigurator::unregister_job(JobId id) { jobs_.erase(id); }

MrAppMaster* DynamicConfigurator::job(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

std::vector<std::string> DynamicConfigurator::get_configurable_job_parameters(
    JobId jid) const {
  if (job(jid) == nullptr) return {};
  // Job-level changes affect tasks launched later: categories II and III.
  std::vector<std::string> out;
  for (const auto& p : ParamRegistry::standard().params()) {
    if (p.category != ParamCategory::JobStatic) out.push_back(p.name);
  }
  return out;
}

std::vector<std::string> DynamicConfigurator::get_configurable_task_parameters(
    JobId jid, const TaskRef& tid) const {
  MrAppMaster* am = job(jid);
  if (am == nullptr) return {};
  const auto queued = am->queued_tasks();
  const bool is_queued =
      std::find(queued.begin(), queued.end(), tid) != queued.end();
  std::vector<std::string> out;
  for (const auto& p : ParamRegistry::standard().params()) {
    if (p.category == ParamCategory::JobStatic) continue;
    // A task already launched can only absorb category-III parameters.
    if (!is_queued && p.category != ParamCategory::Live) continue;
    out.push_back(p.name);
  }
  return out;
}

namespace {
/// Parse/assign kv pairs onto `cfg`; returns how many failed.
int apply_kv(JobConfig& cfg, const std::map<std::string, std::string>& kv) {
  const auto& reg = ParamRegistry::standard();
  int failures = 0;
  for (const auto& [name, value] : kv) {
    try {
      if (!reg.set_by_name(cfg, name, std::stod(value))) ++failures;
    } catch (const std::exception&) {
      ++failures;
    }
  }
  return failures;
}
}  // namespace

int DynamicConfigurator::set_job_parameters(
    JobId jid, const std::map<std::string, std::string>& kv) {
  MrAppMaster* am = job(jid);
  if (am == nullptr) return -1;
  JobConfig cfg = am->job_config();
  const int failures = apply_kv(cfg, kv);
  am->set_job_config(cfg);
  return failures;
}

int DynamicConfigurator::set_task_parameters(
    JobId jid, const TaskRef& tid,
    const std::map<std::string, std::string>& kv) {
  MrAppMaster* am = job(jid);
  if (am == nullptr) return -1;
  JobConfig cfg = am->job_config();
  const int failures = apply_kv(cfg, kv);
  if (!am->set_task_config(tid, cfg)) return -1;
  return failures;
}

int DynamicConfigurator::set_task_parameters(
    JobId jid, const std::map<std::string, std::string>& kv) {
  MrAppMaster* am = job(jid);
  if (am == nullptr) return -1;
  JobConfig cfg = am->job_config();
  const int failures = apply_kv(cfg, kv);
  am->set_all_task_configs(TaskKind::Map, cfg);
  am->set_all_task_configs(TaskKind::Reduce, cfg);
  return failures;
}

bool DynamicConfigurator::set_job_config(JobId jid, const JobConfig& cfg) {
  MrAppMaster* am = job(jid);
  if (am == nullptr) return false;
  am->set_job_config(cfg);
  return true;
}

bool DynamicConfigurator::set_task_config(JobId jid, const TaskRef& tid,
                                          const JobConfig& cfg) {
  MrAppMaster* am = job(jid);
  if (am == nullptr) return false;
  return am->set_task_config(tid, cfg);
}

int DynamicConfigurator::push_live_params(JobId jid, const JobConfig& cfg) {
  MrAppMaster* am = job(jid);
  if (am == nullptr) return -1;
  const int pushed = am->push_live_params(cfg);
  if (auto* rec = am->engine().recorder()) {
    obs::AuditEvent ev;
    ev.time = am->engine().now();
    ev.job = am->id().value();
    ev.kind = "config_push";
    ev.sample.emplace_back("tasks_updated", static_cast<double>(pushed));
    rec->audit().record(std::move(ev));
  }
  return pushed;
}

}  // namespace mron::tuner
