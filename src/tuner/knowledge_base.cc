#include "tuner/knowledge_base.h"

#include <sstream>

namespace mron::tuner {

using mapreduce::ParamRegistry;

void TuningKnowledgeBase::store(const std::string& job_signature,
                                const mapreduce::JobConfig& config,
                                double cost) {
  auto it = entries_.find(job_signature);
  if (it != entries_.end() && it->second.cost <= cost) return;
  entries_[job_signature] = Entry{config, cost};
}

std::optional<mapreduce::JobConfig> TuningKnowledgeBase::lookup(
    const std::string& job_signature) const {
  auto e = lookup_entry(job_signature);
  if (!e.has_value()) return std::nullopt;
  return e->config;
}

std::optional<TuningKnowledgeBase::Entry> TuningKnowledgeBase::lookup_entry(
    const std::string& job_signature) const {
  auto it = entries_.find(job_signature);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string TuningKnowledgeBase::serialize() const {
  const auto& reg = ParamRegistry::standard();
  std::ostringstream os;
  for (const auto& [sig, entry] : entries_) {
    os << sig << " " << entry.cost;
    for (std::size_t i = 0; i < reg.size(); ++i) {
      os << " " << reg.at(i).name << "=" << reg.get(entry.config, i);
    }
    os << "\n";
  }
  return os.str();
}

int TuningKnowledgeBase::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int read = 0;
  const auto& reg = ParamRegistry::standard();
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string sig;
    double cost = 0.0;
    if (!(ls >> sig >> cost)) continue;
    mapreduce::JobConfig cfg;
    std::string kv;
    while (ls >> kv) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) continue;
      reg.set_by_name(cfg, kv.substr(0, eq), std::stod(kv.substr(eq + 1)));
    }
    store(sig, cfg, cost);
    ++read;
  }
  return read;
}

}  // namespace mron::tuner
