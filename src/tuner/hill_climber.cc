#include "tuner/hill_climber.h"

#include <algorithm>

#include "common/check.h"

namespace mron::tuner {

GrayBoxHillClimber::GrayBoxHillClimber(SearchSpace* space,
                                       ClimberOptions options, Rng rng)
    : space_(space),
      options_(options),
      sampler_(options.lhs_intervals, rng.fork(0x1145), options.use_lhs),
      rng_(rng),
      neighborhood_(options.initial_neighborhood) {
  MRON_CHECK(space_ != nullptr);
  MRON_CHECK(options_.global_samples >= 1 && options_.local_samples >= 1);
  MRON_CHECK(options_.shrink_factor > 0.0 && options_.shrink_factor < 1.0);
}

std::vector<mapreduce::JobConfig> GrayBoxHillClimber::next_batch() {
  if (done_) return {};
  if (phase_ == Phase::Global) {
    pending_points_ = sampler_.sample(*space_, options_.global_samples);
  } else {
    pending_points_ = sampler_.sample_neighborhood(
        *space_, current_, neighborhood_, options_.local_samples);
  }
  ++waves_;
  std::vector<mapreduce::JobConfig> configs;
  configs.reserve(pending_points_.size());
  for (auto& p : pending_points_) {
    // Bounds may have been tightened by the rules since sampling state was
    // built; keep every issued point inside them.
    space_->clamp(p);
    configs.push_back(space_->to_config(p));
  }
  return configs;
}

void GrayBoxHillClimber::report_costs(const std::vector<double>& costs) {
  MRON_CHECK(!done_);
  MRON_CHECK_MSG(costs.size() == pending_points_.size(),
                 "got " << costs.size() << " costs for "
                        << pending_points_.size() << " sampled configs");
  configs_tried_ += static_cast<int>(costs.size());

  // Cheapest point of the wave.
  std::size_t argmin = 0;
  for (std::size_t i = 1; i < costs.size(); ++i) {
    if (costs[i] < costs[argmin]) argmin = i;
  }
  const std::vector<double> candidate = pending_points_[argmin];
  const double candidate_cost = costs[argmin];

  if (!has_best_ || candidate_cost < best_cost_) {
    best_point_ = candidate;
    best_cost_ = candidate_cost;
    has_best_ = true;
  }

  if (phase_ == Phase::Global) {
    if (current_.empty() || candidate_cost < current_cost_) {
      // Promising region found: descend into it.
      current_ = candidate;
      current_cost_ = candidate_cost;
      neighborhood_ = options_.initial_neighborhood;
      phase_ = Phase::Local;
    } else {
      // No improvement over the current optimum: count a strike.
      ++global_strikes_;
      if (global_strikes_ >= options_.max_global_rounds) done_ = true;
    }
    return;
  }

  // Local phase.
  if (candidate_cost < current_cost_) {
    current_ = candidate;
    current_cost_ = candidate_cost;
    neighborhood_ = options_.initial_neighborhood;  // adjust_neighbor
  } else {
    neighborhood_ *= options_.shrink_factor;  // shrink_neighbor
  }
  if (neighborhood_ < options_.neighborhood_threshold) {
    // Local optimum declared; back to global probing.
    phase_ = Phase::Global;
  }
}

mapreduce::JobConfig GrayBoxHillClimber::best_config() const {
  MRON_CHECK_MSG(has_best_, "no costs reported yet");
  return space_->to_config(best_point_);
}

}  // namespace mron::tuner
