#include "tuner/rules.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "mapreduce/spill_model.h"

namespace mron::tuner {

using mapreduce::JobConfig;
using mapreduce::TaskKind;
using mapreduce::TaskReport;

WaveStats WaveStats::from_reports(const std::vector<TaskReport>& reports) {
  WaveStats s;
  double rec_bytes_sum = 0.0;
  int rec_bytes_n = 0;
  for (const auto& r : reports) {
    if (r.failed_oom) {
      ++s.oom_count;
      continue;
    }
    s.mem_util.push_back(r.mem_util);
    s.cpu_util.push_back(r.cpu_util);
    s.duration.push_back(r.duration());
    if (r.task.kind == TaskKind::Map) {
      s.sampled_memory_mb.push_back(r.config.map_memory_mb);
      s.sampled_sort_mb.push_back(r.config.io_sort_mb);
      s.resident_mb.push_back(r.mem_util * r.config.map_memory_mb);
      s.map_output_mb.push_back(r.counters.map_output_bytes.mib());
      // Kept aligned with sampled_sort_mb (one entry per map task); an
      // outputless map trivially achieves the optimal ratio.
      s.spill_ratio.push_back(
          r.counters.combine_output_records > 0
              ? static_cast<double>(r.counters.spilled_records) /
                    static_cast<double>(r.counters.combine_output_records)
              : 1.0);
      if (r.counters.map_output_records > 0) {
        rec_bytes_sum += r.counters.map_output_bytes.as_double() /
                         static_cast<double>(r.counters.map_output_records);
        ++rec_bytes_n;
      }
    } else {
      s.sampled_memory_mb.push_back(r.config.reduce_memory_mb);
      s.resident_mb.push_back(r.mem_util * r.config.reduce_memory_mb);
    }
  }
  if (rec_bytes_n > 0) s.record_bytes = rec_bytes_sum / rec_bytes_n;
  return s;
}

namespace {

/// Normalized value of a raw parameter reading within its descriptor range.
double normalized(const mapreduce::ParamDescriptor& p, double raw) {
  if (p.max <= p.min) return 0.0;
  return std::clamp((raw - p.min) / (p.max - p.min), 0.0, 1.0);
}

/// The shared memory-bound rule: tighten the bounds of `dim` from observed
/// utilizations and the raw sampled values.
void apply_memory_bound_rule(const WaveStats& stats, SearchSpace& space,
                             std::size_t dim) {
  if (stats.mem_util.empty() || stats.sampled_memory_mb.empty()) return;
  const auto& p = space.param(dim);
  std::vector<double> sampled_norm;
  sampled_norm.reserve(stats.sampled_memory_mb.size());
  for (double mb : stats.sampled_memory_mb) {
    sampled_norm.push_back(normalized(p, mb));
  }
  // The paper tracks the 80th percentile of utilization so data skew does
  // not whipsaw the bounds. OOM-killed attempts are deliberately NOT folded
  // in here: an OOM usually means the sampled sort buffer crowded out the
  // working set, and the Eq.-1 penalty already steers the climber away —
  // raising the memory lower bound for it would ratchet containers up and
  // wreck production concurrency.
  const double util_p80 = percentile(stats.mem_util, 0.8);
  if (util_p80 > 0.9) {
    // Over-utilization: raise the lower bound.
    space.set_bounds(dim,
                     std::max(space.lower(dim),
                              percentile(sampled_norm, 0.8)),
                     space.upper(dim));
  } else if (util_p80 < 0.7) {
    // The paper's 50% rule, raised to 70% here because our utilization
    // metric is the time-averaged resident set (buffers half full on
    // average), which reads lower than the RSS-style figure the paper's
    // node managers report for the same configuration.
    const double new_hi = percentile(sampled_norm, 0.8);
    if (new_hi > space.lower(dim)) {
      space.set_bounds(dim, space.lower(dim),
                       std::min(space.upper(dim), new_hi));
    }
  }
}

}  // namespace

void apply_map_rules(const WaveStats& stats, SearchSpace& space) {
  const std::size_t mem_dim = space.dim_of("mapreduce.map.memory.mb");
  if (mem_dim != SearchSpace::npos) {
    apply_memory_bound_rule(stats, space, mem_dim);
  }

  // io.sort.mb: each task pairs a sampled buffer size with its observed
  // spill amplification. Buffers that still spilled more than once raise
  // the lower bound (80th percentile of the failing values: "not big
  // enough"); buffers that achieved a single spill pull the upper bound
  // down (no reason to go above them) — together the bounds close in on the
  // smallest single-spill buffer.
  const std::size_t sort_dim = space.dim_of("mapreduce.task.io.sort.mb");
  if (sort_dim != SearchSpace::npos &&
      stats.spill_ratio.size() == stats.sampled_sort_mb.size() &&
      !stats.spill_ratio.empty()) {
    const auto& p = space.param(sort_dim);
    std::vector<double> spilled_norm, clean_norm;
    for (std::size_t i = 0; i < stats.spill_ratio.size(); ++i) {
      const double v = normalized(p, stats.sampled_sort_mb[i]);
      (stats.spill_ratio[i] > 1.05 ? spilled_norm : clean_norm).push_back(v);
    }
    double lo = space.lower(sort_dim);
    double hi = space.upper(sort_dim);
    if (!spilled_norm.empty()) {
      lo = std::max(lo, percentile(spilled_norm, 0.8));
    }
    if (!clean_norm.empty()) {
      // Median of the values that already achieved a single spill: no
      // reason to sample above them, and the bound ratchets toward the
      // smallest sufficient buffer wave by wave.
      hi = std::min(hi, percentile(clean_norm, 0.5));
    }
    if (lo <= hi) space.set_bounds(sort_dim, lo, hi);
  }

  // sort.spill.percent: pin at 0.99 while one spill is attainable at the
  // top of the io.sort.mb range; otherwise leave the full range.
  const std::size_t spill_dim =
      space.dim_of("mapreduce.map.sort.spill.percent");
  if (spill_dim != SearchSpace::npos && !stats.map_output_mb.empty()) {
    const auto& sort_p = mapreduce::ParamRegistry::standard();
    const auto* sort_desc = sort_p.find("mapreduce.task.io.sort.mb");
    const double data_fraction =
        stats.record_bytes /
        (stats.record_bytes + mapreduce::kSpillMetadataBytes);
    const double max_single_spill_mb =
        sort_desc->max * 0.99 * data_fraction;
    const double out_p80 = percentile(stats.map_output_mb, 0.8);
    const auto& p = space.param(spill_dim);
    if (out_p80 <= max_single_spill_mb) {
      const double pin = normalized(p, 0.99);
      space.set_bounds(spill_dim, pin, 1.0);
    } else {
      space.set_bounds(spill_dim, 0.0, 1.0);
    }
  }
}

void apply_reduce_rules(const WaveStats& stats, SearchSpace& space) {
  const std::size_t mem_dim = space.dim_of("mapreduce.reduce.memory.mb");
  if (mem_dim != SearchSpace::npos) {
    apply_memory_bound_rule(stats, space, mem_dim);
  }
  // Merge trigger: only on memory consumption (Section 6.2).
  const std::size_t thresh_dim =
      space.dim_of("mapreduce.reduce.merge.inmem.threshold");
  if (thresh_dim != SearchSpace::npos) {
    space.set_bounds(thresh_dim, 0.0, 0.0);
  }
  // merge.percent rides just below input.buffer.percent; narrow it to the
  // upper half of its range so the sampler stops wasting waves on tiny
  // merge triggers.
  const std::size_t merge_dim =
      space.dim_of("mapreduce.reduce.shuffle.merge.percent");
  if (merge_dim != SearchSpace::npos) {
    space.set_bounds(merge_dim, std::max(space.lower(merge_dim), 0.5),
                     space.upper(merge_dim));
  }
}

// --- conservative mode -------------------------------------------------------

ConservativeTuner::ConservativeTuner(JobConfig initial) : current_(initial) {}

void ConservativeTuner::observe(const TaskReport& report) {
  (report.task.kind == TaskKind::Map ? new_maps_ : new_reduces_)
      .push_back(report);
}

bool ConservativeTuner::ready() const {
  return new_maps_.size() + new_reduces_.size() >= kConservativeBatch;
}

JobConfig ConservativeTuner::adjust() {
  JobConfig cfg = current_;
  last_actions_.clear();
  if (!new_maps_.empty()) adjust_map_side(cfg);
  if (!new_reduces_.empty()) adjust_reduce_side(cfg);
  mapreduce::clamp_constraints(cfg);
  current_ = cfg;
  new_maps_.clear();
  new_reduces_.clear();
  ++adjustments_;
  return cfg;
}

void ConservativeTuner::adjust_map_side(JobConfig& cfg) {
  const WaveStats stats = WaveStats::from_reports(new_maps_);
  if (stats.mem_util.empty()) return;

  // Size the sort buffer to hold the estimated map output in one spill.
  const double out_p80 = percentile(stats.map_output_mb, 0.8);
  const double data_fraction =
      stats.record_bytes /
      (stats.record_bytes + mapreduce::kSpillMetadataBytes);
  const double wanted_sort =
      std::min(1024.0, out_p80 / (0.99 * data_fraction) + 16.0);
  if (wanted_sort > cfg.io_sort_mb) {
    cfg.io_sort_mb = std::ceil(wanted_sort / 16.0) * 16.0;
    cfg.sort_spill_percent = 0.99;
    last_actions_.push_back("map.sort_buffer_grow");
  } else {
    // Buffer already big enough: raise the trigger to avoid early spills.
    cfg.sort_spill_percent = 0.99;
    last_actions_.push_back("map.single_spill");
  }

  // Right-size the container: estimated resident set plus the part of the
  // sort buffer the utilization figure does not include, plus safety.
  const double resident_p80 = percentile(stats.resident_mb, 0.8);
  const double target = std::max(
      512.0, std::ceil((resident_p80 + 0.6 * cfg.io_sort_mb + 128.0) / 64.0) *
                 64.0);
  // Conservative: shrink only when clearly under-utilized, grow on OOM.
  const double util_p80 = percentile(stats.mem_util, 0.8);
  if (stats.oom_count > 0) {
    cfg.map_memory_mb = std::min(3072.0, cfg.map_memory_mb + 512.0);
    last_actions_.push_back("map.container_grow_oom");
  } else if (util_p80 < 0.7 && target < cfg.map_memory_mb) {
    cfg.map_memory_mb = target;
    last_actions_.push_back("map.container_shrink");
  }

  // CPU: escalate vcores while the quota is saturated and times improve.
  const double cpu_p80 = percentile(stats.cpu_util, 0.8);
  const double avg_dur = mean_of(stats.duration);
  if (!vcores_frozen_ && cpu_p80 > 0.95 && cfg.map_cpu_vcores < 4) {
    if (last_map_avg_duration_ < 0.0 ||
        avg_dur < last_map_avg_duration_ * 0.97) {
      cfg.map_cpu_vcores += 1;
      last_actions_.push_back("map.vcores_escalate");
    } else {
      vcores_frozen_ = true;
    }
  }
  last_map_avg_duration_ = avg_dur;
}

void ConservativeTuner::adjust_reduce_side(JobConfig& cfg) {
  const WaveStats stats = WaveStats::from_reports(new_reduces_);
  if (stats.mem_util.empty()) {
    if (stats.oom_count > 0) {
      cfg.reduce_memory_mb = std::min(3072.0, cfg.reduce_memory_mb + 512.0);
      last_actions_.push_back("reduce.container_grow_oom");
    }
    return;
  }

  // Section 6.2: merge purely on memory; keep the shuffle buffer large and
  // let reduce input stay in memory when it fits.
  cfg.merge_inmem_threshold = 0;
  cfg.shuffle_merge_percent = cfg.shuffle_input_buffer_percent - 0.04;
  last_actions_.push_back("reduce.merge_policy");

  double shuffle_p80_mb = 0.0;
  {
    std::vector<double> shuffled;
    for (const auto& r : new_reduces_) {
      if (!r.failed_oom) shuffled.push_back(r.counters.shuffle_bytes.mib());
    }
    if (!shuffled.empty()) shuffle_p80_mb = percentile(shuffled, 0.8);
  }
  const double buffer_mb = cfg.reduce_memory_mb * mapreduce::kHeapFraction *
                           cfg.shuffle_input_buffer_percent;
  if (shuffle_p80_mb > 0.0 && shuffle_p80_mb < buffer_mb * 0.9) {
    // Whole reduce input fits the shuffle buffer: avoid all disk spills.
    cfg.reduce_input_buffer_percent = cfg.shuffle_input_buffer_percent;
    cfg.shuffle_memory_limit_percent = 0.5;
    last_actions_.push_back("reduce.input_buffer_in_memory");
  }

  // Memory right-sizing, mirroring the map rule.
  const double util_p80 = percentile(stats.mem_util, 0.8);
  if (stats.oom_count > 0) {
    cfg.reduce_memory_mb = std::min(3072.0, cfg.reduce_memory_mb + 512.0);
    last_actions_.push_back("reduce.container_grow_oom");
  } else if (util_p80 < 0.5) {
    const double resident_p80 = percentile(stats.resident_mb, 0.8);
    const double target =
        std::max(512.0, std::ceil((resident_p80 * 1.3 + 128.0) / 64.0) * 64.0);
    if (target < cfg.reduce_memory_mb) {
      cfg.reduce_memory_mb = target;
      last_actions_.push_back("reduce.container_shrink");
    }
  }

  // Shuffle concurrency: +10 while times improve (Section 6.3).
  const double avg_dur = mean_of(stats.duration);
  if (!copies_frozen_ && cfg.shuffle_parallelcopies < 50) {
    if (last_reduce_avg_duration_ < 0.0 ||
        avg_dur < last_reduce_avg_duration_ * 0.97) {
      cfg.shuffle_parallelcopies =
          std::min(50.0, cfg.shuffle_parallelcopies + 10);
      last_actions_.push_back("reduce.parallelcopies");
    } else {
      copies_frozen_ = true;
    }
  }
  last_reduce_avg_duration_ = avg_dur;
}

}  // namespace mron::tuner
