#include "tuner/online_tuner.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "common/stats.h"
#include "obs/host_profile.h"

namespace mron::tuner {

using mapreduce::JobConfig;
using mapreduce::JobId;
using mapreduce::MrAppMaster;
using mapreduce::TaskKind;
using mapreduce::TaskRef;
using mapreduce::TaskReport;

void merge_map_side(JobConfig& dst, const JobConfig& src) {
  dst.map_memory_mb = src.map_memory_mb;
  dst.io_sort_mb = src.io_sort_mb;
  dst.sort_spill_percent = src.sort_spill_percent;
  dst.map_cpu_vcores = src.map_cpu_vcores;
  dst.io_sort_factor = src.io_sort_factor;
}

void merge_reduce_side(JobConfig& dst, const JobConfig& src) {
  dst.reduce_memory_mb = src.reduce_memory_mb;
  dst.shuffle_input_buffer_percent = src.shuffle_input_buffer_percent;
  dst.shuffle_merge_percent = src.shuffle_merge_percent;
  dst.shuffle_memory_limit_percent = src.shuffle_memory_limit_percent;
  dst.merge_inmem_threshold = src.merge_inmem_threshold;
  dst.reduce_input_buffer_percent = src.reduce_input_buffer_percent;
  dst.reduce_cpu_vcores = src.reduce_cpu_vcores;
  dst.shuffle_parallelcopies = src.shuffle_parallelcopies;
}

namespace {

/// Params whose value differs between `a` and `b`, as (name, value) pairs
/// from each side — the before/after payload of an audit event.
void diff_configs(const JobConfig& a, const JobConfig& b,
                  std::vector<std::pair<std::string, double>>& before,
                  std::vector<std::pair<std::string, double>>& after) {
  const auto& reg = mapreduce::ParamRegistry::extended();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const double va = reg.get(a, i);
    const double vb = reg.get(b, i);
    if (va != vb) {
      before.emplace_back(reg.at(i).name, va);
      after.emplace_back(reg.at(i).name, vb);
    }
  }
}

/// Attach the job's provisional critical-path blame to a decision event:
/// "cp.<category>" seconds for each non-zero bucket, extracted up to the
/// job's most recent causal node. Every recorded decision thereby says
/// what was dominating the run at the moment it was made.
void append_cp_context(obs::Recorder* rec, std::int64_t job,
                       obs::AuditEvent& ev) {
  if (rec == nullptr) return;
  const obs::CriticalPathBuilder& cp = rec->critical_path();
  const std::vector<double> per = obs::CriticalPathBuilder::blame_breakdown(
      cp.extract(cp.latest_node(job)));
  for (int b = 0; b < obs::kNumBlames; ++b) {
    if (per[static_cast<std::size_t>(b)] > 0.0) {
      ev.sample.emplace_back(
          std::string("cp.") + obs::blame_name(static_cast<obs::Blame>(b)),
          per[static_cast<std::size_t>(b)]);
    }
  }
}

}  // namespace

OnlineTuner::OnlineTuner(TunerOptions options)
    : options_(options), rng_(options.seed) {}

void OnlineTuner::audit(JobState& js, obs::AuditEvent ev) {
  if (js.rec == nullptr) return;
  ev.time = js.am->engine().now();
  ev.job = js.am->id().value();
  js.rec->audit().record(std::move(ev));
}

void OnlineTuner::attach(MrAppMaster& am) {
  configurator_.register_job(&am);
  JobState& js = jobs_[am.id()];
  js.am = &am;
  js.rec = am.engine().recorder();
  js.outcome.decisions = js.rec != nullptr ? &js.rec->audit() : nullptr;
  // Eval-cache totals move on every scored task — publish them from the
  // sampling clock instead (once per recorder; the hook deliberately does
  // not capture `this`, so it stays valid if the tuner dies first).
  if (js.rec != nullptr && hooked_recorders_.insert(js.rec).second) {
    auto* rec = js.rec;
    auto* eng = &am.engine();
    auto* hit_rate_series = &rec->series().series("tuner.eval_cache.hit_rate");
    rec->add_flush_hook([rec, eng, hit_rate_series] {
      export_eval_cache_metrics(rec->metrics());
      hit_rate_series->push(eng->now(), eval_cache_global_stats().hit_rate());
    });
  }
  {
    obs::AuditEvent ev;
    ev.kind = "attach";
    ev.detail = options_.strategy == TuningStrategy::Conservative
                    ? "conservative"
                    : "aggressive";
    audit(js, std::move(ev));
  }

  am.set_task_listener(
      [this, id = am.id()](const TaskReport& report) {
        on_task(jobs_.at(id), report);
      });

  if (options_.strategy == TuningStrategy::Conservative) {
    js.conservative.emplace(am.job_config());
    js.outcome.best_config = am.job_config();
    return;
  }

  // Aggressive: hold every launch, then release wave by wave. Wave sizes
  // shrink for small jobs so the search can still complete several
  // iterations before the tasks run out (the Figure-13 effect: a job needs
  // enough tasks to explore with).
  am.set_launch_budget(0);
  js.map_space.emplace(SearchSpace::map_side(am.job_config()));
  js.reduce_space.emplace(SearchSpace::reduce_side(am.job_config()));
  // Floors of 12/8: below that, LHS coverage of the 5-8 dimensional spaces
  // is too sparse to trust — small jobs simply run out of tasks first (the
  // paper's Figure-13 observation).
  auto scaled = [](ClimberOptions opt, int tasks) {
    opt.global_samples =
        std::max(std::min(opt.global_samples, 12),
                 std::min(opt.global_samples, tasks / 6));
    opt.local_samples = std::max(std::min(opt.local_samples, 8),
                                 std::min(opt.local_samples, tasks / 8));
    return opt;
  };
  js.map_climber.emplace(&*js.map_space,
                         scaled(options_.climber, am.num_maps()),
                         rng_.fork(1));
  js.reduce_climber.emplace(&*js.reduce_space,
                            scaled(options_.climber, am.num_reduces()),
                            rng_.fork(2));
  start_wave(js, /*is_map=*/true);
  start_wave(js, /*is_map=*/false);
}

void OnlineTuner::start_wave(JobState& js, bool is_map) {
  HOST_PROF_SCOPE("tuner.start_wave");
  GrayBoxHillClimber& climber =
      is_map ? *js.map_climber : *js.reduce_climber;
  auto& wave_slot = is_map ? js.map_wave : js.reduce_wave;
  const TaskKind kind = is_map ? TaskKind::Map : TaskKind::Reduce;

  if (climber.done()) {
    finalize(js, is_map);
    return;
  }
  std::vector<TaskRef> queued;
  for (const auto& t : js.am->queued_tasks()) {
    if (t.kind == kind) queued.push_back(t);
  }
  const std::vector<JobConfig> batch = climber.next_batch();
  if (batch.empty() || queued.size() < batch.size()) {
    // Out of tasks to sample on: stop searching, run the rest tuned.
    climber.finish();
    finalize(js, is_map);
    return;
  }

  Wave wave;
  wave.costs.assign(batch.size(), 0.0);
  wave.filled.assign(batch.size(), false);
  wave.faulted.assign(batch.size(), false);
  wave.remaining = batch.size();
  {
    obs::AuditEvent ev;
    ev.kind = "wave_start";
    ev.detail = is_map ? "map" : "reduce";
    ev.sample.emplace_back("batch", static_cast<double>(batch.size()));
    audit(js, std::move(ev));
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const bool ok =
        configurator_.set_task_config(js.am->id(), queued[i], batch[i]);
    MRON_CHECK_MSG(ok, "failed to assign wave config to queued task");
    wave.slots[queued[i]] = i;
    // One event per configuration handed to a task — the audit-log count of
    // these equals JobOutcome::configs_tried once the waves complete.
    obs::AuditEvent ev;
    ev.kind = "config_assign";
    ev.detail = (is_map ? "map " : "reduce ") + std::to_string(queued[i].index);
    diff_configs(js.am->job_config(), batch[i], ev.before, ev.after);
    audit(js, std::move(ev));
  }
  if (js.rec != nullptr) {
    wave.span = js.rec->trace().begin(
        is_map ? "map_wave" : "reduce_wave", "tuner", obs::kTunerTracePid,
        js.am->id().value() * 2 + (is_map ? 0 : 1), js.am->engine().now(),
        "batch", static_cast<double>(batch.size()));
  }
  wave_slot = std::move(wave);
  js.am->set_launch_budget(kind, static_cast<int>(batch.size()));
  ++js.outcome.waves;
}

void OnlineTuner::on_task(JobState& js, const TaskReport& report) {
  HOST_PROF_SCOPE("tuner.on_task");
  const bool is_map = report.task.kind == TaskKind::Map;
  // Injected-fault kills carry no cost signal at all — the attempt died at
  // an arbitrary point and its retry reports later. Drop them outright.
  if (report.failed_injected) return;
  // Samples off faulted hardware measure the fault, not the config; keep
  // them out of the normalization ceiling and the conservative rules.
  const bool poisoned = options_.discard_faulted && report.faulted;
  if (!report.failed_oom && !poisoned) {
    double& max_secs = is_map ? js.max_map_secs : js.max_reduce_secs;
    max_secs = std::max(max_secs, report.duration());
  }

  if (js.conservative.has_value()) {
    if (poisoned) {
      obs::AuditEvent ev;
      ev.kind = "sample_discarded";
      ev.detail = (is_map ? "map " : "reduce ") +
                  std::to_string(report.task.index) + " faulted";
      audit(js, std::move(ev));
      if (js.am->finished()) maybe_store_outcome(js);
      return;
    }
    js.conservative->observe(report);
    if (js.conservative->ready()) {
      const JobConfig old = js.conservative->current();
      const JobConfig cfg = js.conservative->adjust();
      for (const std::string& rule : js.conservative->last_actions()) {
        obs::AuditEvent ev;
        ev.kind = "rule_fire";
        ev.detail = rule;
        ev.sample.emplace_back("mem_util", report.mem_util);
        ev.sample.emplace_back("cpu_util", report.cpu_util);
        ev.sample.emplace_back("duration", report.duration());
        audit(js, std::move(ev));
      }
      {
        obs::AuditEvent ev;
        ev.kind = "conservative_adjust";
        diff_configs(old, cfg, ev.before, ev.after);
        append_cp_context(js.rec, js.am->id().value(), ev);
        audit(js, std::move(ev));
      }
      configurator_.set_job_config(js.am->id(), cfg);
      configurator_.push_live_params(js.am->id(), cfg);
      js.outcome.best_config = cfg;
      js.outcome.conservative_adjustments = js.conservative->adjustments();
      if (js.rec != nullptr) {
        js.rec->series()
            .series("tuner.job" + std::to_string(js.am->id().value()) +
                    ".conservative_adjustments")
            .push(js.am->engine().now(),
                  static_cast<double>(js.outcome.conservative_adjustments));
      }
    }
    if (js.am->finished()) maybe_store_outcome(js);
    return;
  }

  auto& wave_slot = is_map ? js.map_wave : js.reduce_wave;
  if (wave_slot.has_value()) {
    on_wave_task(js, *wave_slot, report, is_map);
  }
}

double OnlineTuner::scored_task_cost(const TaskReport& report,
                                     double max_task_seconds) {
  if (!eval_cache_enabled()) return task_cost(report, max_task_seconds);
  CacheKey key;
  key.add(report.task.kind == mapreduce::TaskKind::Map);
  key.add(report.failed_oom);
  key.add(report.mem_util);
  key.add(report.cpu_util);
  key.add(report.mem_commit);
  key.add(report.duration());
  key.add(report.counters.combine_output_records);
  key.add(report.counters.spilled_records);
  key.add(report.counters.shuffle_bytes);
  key.add(report.counters.local_disk_write_bytes);
  key.add(max_task_seconds);
  // Hit/miss gauges are published by the flush hook attach() registered
  // (pull model) — no per-task metrics writes here.
  return cost_cache_.get_or_compute(
      key, [&] { return task_cost(report, max_task_seconds); });
}

void OnlineTuner::on_wave_task(JobState& js, Wave& wave,
                               const TaskReport& report, bool is_map) {
  auto it = wave.slots.find(report.task);
  if (it == wave.slots.end()) return;
  const std::size_t slot = it->second;
  if (wave.filled[slot]) return;  // e.g. a retry of an OOM-killed attempt
  wave.filled[slot] = true;
  wave.faulted[slot] = options_.discard_faulted && report.faulted;
  if (wave.faulted[slot]) {
    obs::AuditEvent ev;
    ev.kind = "sample_discarded";
    ev.detail = (is_map ? "map " : "reduce ") +
                std::to_string(report.task.index) + " faulted";
    audit(js, std::move(ev));
  }
  wave.costs[slot] = scored_task_cost(
      report, is_map ? js.max_map_secs : js.max_reduce_secs);
  wave.reports.push_back(report);
  if (--wave.remaining > 0) return;

  // Wave complete: gray-box rules first, then advance the climber.
  if (js.rec != nullptr) js.rec->trace().end(wave.span, js.am->engine().now());
  {
    obs::AuditEvent ev;
    ev.kind = "wave_complete";
    ev.detail = is_map ? "map" : "reduce";
    const auto [min_it, max_it] =
        std::minmax_element(wave.costs.begin(), wave.costs.end());
    ev.sample.emplace_back("min_cost", *min_it);
    ev.sample.emplace_back("max_cost", *max_it);
    append_cp_context(js.rec, js.am->id().value(), ev);
    audit(js, std::move(ev));
  }
  GrayBoxHillClimber& climber =
      is_map ? *js.map_climber : *js.reduce_climber;
  // Median-of-slots aggregate: a slot whose sample ran on faulted hardware
  // reports the wave's clean median instead of its own (hardware-noise)
  // cost, so the climber neither rewards nor punishes that configuration.
  // With every slot faulted there is nothing to anchor on — keep raw costs.
  std::vector<TaskReport> clean_reports;
  for (const auto& r : wave.reports) {
    if (!(options_.discard_faulted && r.faulted)) clean_reports.push_back(r);
  }
  {
    std::vector<double> clean_costs;
    for (std::size_t i = 0; i < wave.costs.size(); ++i) {
      if (!wave.faulted[i]) clean_costs.push_back(wave.costs[i]);
    }
    if (!clean_costs.empty() && clean_costs.size() < wave.costs.size()) {
      const double median = percentile(clean_costs, 0.5);
      for (std::size_t i = 0; i < wave.costs.size(); ++i) {
        if (wave.faulted[i]) wave.costs[i] = median;
      }
    }
  }
  if (options_.use_tuning_rules) {
    const WaveStats stats = WaveStats::from_reports(
        clean_reports.empty() ? wave.reports : clean_reports);
    SearchSpace& space = is_map ? *js.map_space : *js.reduce_space;
    std::vector<std::pair<double, double>> old_bounds;
    for (std::size_t d = 0; d < space.dims(); ++d) {
      old_bounds.emplace_back(space.lower(d), space.upper(d));
    }
    if (is_map) {
      apply_map_rules(stats, space);
    } else {
      apply_reduce_rules(stats, space);
    }
    for (std::size_t d = 0; d < space.dims(); ++d) {
      if (space.lower(d) == old_bounds[d].first &&
          space.upper(d) == old_bounds[d].second) {
        continue;
      }
      obs::AuditEvent ev;
      ev.kind = "bound_tighten";
      ev.detail = space.param(d).name;
      ev.before.emplace_back("lower", old_bounds[d].first);
      ev.before.emplace_back("upper", old_bounds[d].second);
      ev.after.emplace_back("lower", space.lower(d));
      ev.after.emplace_back("upper", space.upper(d));
      audit(js, std::move(ev));
    }
  }
  const std::vector<double> costs = wave.costs;
  (is_map ? js.map_wave : js.reduce_wave).reset();
  climber.report_costs(costs);
  js.outcome.configs_tried += static_cast<int>(costs.size());
  {
    obs::AuditEvent ev;
    ev.kind = "climber_step";
    ev.detail = is_map ? "map" : "reduce";
    if (climber.has_best()) {
      ev.sample.emplace_back("best_cost", climber.best_cost());
      ev.sample.emplace_back("neighborhood", climber.neighborhood_size());
    }
    append_cp_context(js.rec, js.am->id().value(), ev);
    audit(js, std::move(ev));
  }
  // Convergence timelines (the Figure-9 curves): one point per climber
  // iteration — best predicted cost, configs tried so far, and the
  // incumbent parameter vector. Climber steps are rare (one per wave), so
  // name lookups here are off the hot path.
  if (js.rec != nullptr) {
    auto& store = js.rec->series();
    const std::string prefix =
        "tuner.job" + std::to_string(js.am->id().value()) + ".";
    const std::string side = is_map ? "map." : "reduce.";
    const SimTime now = js.am->engine().now();
    store.series(prefix + "configs_tried")
        .push(now, static_cast<double>(js.outcome.configs_tried));
    if (climber.has_best()) {
      store.series(prefix + side + "best_cost").push(now, climber.best_cost());
      const SearchSpace& space = is_map ? *js.map_space : *js.reduce_space;
      const JobConfig best = climber.best_config();
      for (std::size_t d = 0; d < space.dims(); ++d) {
        const mapreduce::ParamDescriptor& p = space.param(d);
        store.series(prefix + side + "param." + p.name).push(now, best.*p.field);
      }
    }
  }
  start_wave(js, is_map);
}

void OnlineTuner::finalize(JobState& js, bool is_map) {
  HOST_PROF_SCOPE("tuner.finalize");
  bool& flag = is_map ? js.map_finalized : js.reduce_finalized;
  if (flag) return;
  flag = true;

  GrayBoxHillClimber& climber =
      is_map ? *js.map_climber : *js.reduce_climber;
  JobConfig merged = js.am->job_config();
  obs::AuditEvent fin;
  fin.kind = "finalize";
  fin.detail = is_map ? "map" : "reduce";
  if (climber.has_best()) {
    const JobConfig best = climber.best_config();
    if (is_map) {
      merge_map_side(merged, best);
      js.outcome.map_best_cost = climber.best_cost();
      js.outcome.map_converged = climber.done();
    } else {
      merge_reduce_side(merged, best);
      js.outcome.reduce_best_cost = climber.best_cost();
      js.outcome.reduce_converged = climber.done();
    }
    diff_configs(js.am->job_config(), merged, fin.before, fin.after);
    fin.sample.emplace_back("best_cost", climber.best_cost());
    configurator_.set_job_config(js.am->id(), merged);
  }
  audit(js, std::move(fin));
  js.am->set_launch_budget(is_map ? TaskKind::Map : TaskKind::Reduce, -1);
  maybe_store_outcome(js);
}

void OnlineTuner::maybe_store_outcome(JobState& js) {
  if (js.conservative.has_value()) {
    if (js.am->finished()) {
      kb_.store(js.am->spec().name, js.outcome.best_config, 0.0);
    }
    return;
  }
  if (!js.map_finalized || !js.reduce_finalized) return;
  js.outcome.best_config = js.am->job_config();
  kb_.store(js.am->spec().name, js.outcome.best_config,
            js.outcome.map_best_cost + js.outcome.reduce_best_cost);
}

const OnlineTuner::JobOutcome& OnlineTuner::outcome(JobId id) const {
  auto it = jobs_.find(id);
  MRON_CHECK_MSG(it != jobs_.end(), "unknown job " << id);
  return it->second.outcome;
}

}  // namespace mron::tuner
