// Gray-box smart hill climbing — Algorithm 1 of the paper.
//
// Batch-oriented: next_batch() yields the configurations to try in the next
// wave of tasks; report_costs() feeds their measured Eq.-1 costs back and
// advances the state machine:
//
//   global phase:  LHS-sample m points over the whole (bounded) space,
//                  take the cheapest as the current point C_cur, set the
//                  neighborhood around it;
//   local phase:   LHS-sample n points in the neighborhood; an improvement
//                  recenters and re-expands the neighborhood, otherwise it
//                  shrinks by factor f; below threshold N_t the local
//                  optimum is declared;
//   repeat:        another global round; improvement returns to the local
//                  phase, otherwise a strike is counted; g strikes end the
//                  search.
//
// The "gray box": tuning rules tighten the SearchSpace's per-dimension
// bounds between waves (via the space reference), so samples concentrate
// where the runtime statistics say good configurations live.
#pragma once

#include <vector>

#include "common/rng.h"
#include "mapreduce/params.h"
#include "tuner/lhs.h"
#include "tuner/search_space.h"

namespace mron::tuner {

struct ClimberOptions {
  int global_samples = 24;           ///< m
  int local_samples = 16;            ///< n
  double neighborhood_threshold = 0.1;  ///< N_t
  double shrink_factor = 0.75;       ///< f
  int max_global_rounds = 5;         ///< g
  int lhs_intervals = 24;            ///< k
  double initial_neighborhood = 0.3;
  /// Ablation: false replaces LHS with plain uniform sampling.
  bool use_lhs = true;
};

class GrayBoxHillClimber {
 public:
  GrayBoxHillClimber(SearchSpace* space, ClimberOptions options, Rng rng);

  /// Configurations for the next wave (empty once done()).
  [[nodiscard]] std::vector<mapreduce::JobConfig> next_batch();
  /// Costs parallel to the last next_batch(); advances the search.
  void report_costs(const std::vector<double>& costs);

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] mapreduce::JobConfig best_config() const;
  [[nodiscard]] double best_cost() const { return best_cost_; }
  [[nodiscard]] bool has_best() const { return has_best_; }
  [[nodiscard]] int waves_issued() const { return waves_; }
  [[nodiscard]] int configs_tried() const { return configs_tried_; }
  [[nodiscard]] double neighborhood_size() const { return neighborhood_; }

  /// Force-terminate (e.g. the job is running out of tasks to sample on).
  void finish() { done_ = true; }

 private:
  enum class Phase { Global, Local };

  SearchSpace* space_;
  ClimberOptions options_;
  LhsSampler sampler_;
  Rng rng_;

  Phase phase_ = Phase::Global;
  std::vector<std::vector<double>> pending_points_;
  std::vector<double> current_;  ///< C_cur
  double current_cost_ = 0.0;
  std::vector<double> best_point_;
  double best_cost_ = 0.0;
  bool has_best_ = false;
  double neighborhood_ = 0.3;
  int global_strikes_ = 0;
  bool done_ = false;
  int waves_ = 0;
  int configs_tried_ = 0;
};

}  // namespace mron::tuner
