// Section-6 tuning rules — the "gray box" part of MRONLINE.
//
// Aggressive mode: after each wave, the observed task statistics tighten the
// search-space bounds the LHS sampler draws from:
//   * container memory: >90% utilization raises the dimension's lower bound
//     to the 80th percentile of the wave's sampled values; <50% lowers the
//     upper bound to the 80th percentile (tracking skew per the paper);
//   * io.sort.mb: spill amplification above 1 raises the lower bound;
//     amplification at exactly 1 lowers the upper bound;
//   * sort.spill.percent is pinned at 0.99 while a single spill is
//     attainable, and released to its full range otherwise;
//   * merge.inmem.threshold is pinned at 0 (merge on memory consumption);
//   * shuffle.merge.percent is tied to shuffle.input.buffer.percent - 0.04.
//
// Conservative mode: a single running job is nudged from its observed
// statistics — estimated map output sizes the sort buffer, estimated task
// working sets size the containers, CPU saturation escalates vcores one at
// a time, and parallelcopies/io.sort.factor are stepped while task times
// keep improving.
#pragma once

#include <string>
#include <vector>

#include "mapreduce/job.h"
#include "tuner/search_space.h"

namespace mron::tuner {

/// Distilled per-wave statistics for one task kind.
struct WaveStats {
  std::vector<double> mem_util;
  std::vector<double> cpu_util;
  std::vector<double> sampled_memory_mb;
  std::vector<double> sampled_sort_mb;   // maps only
  std::vector<double> spill_ratio;       // maps: spilled/combined
  std::vector<double> duration;
  std::vector<double> map_output_mb;     // pre-combiner, maps only
  std::vector<double> resident_mb;       // mem_util * container MB
  double record_bytes = 100.0;
  int oom_count = 0;

  static WaveStats from_reports(
      const std::vector<mapreduce::TaskReport>& reports);
};

/// Apply the aggressive-mode bound-tightening rules to the map-side space.
void apply_map_rules(const WaveStats& stats, SearchSpace& space);
/// Apply the aggressive-mode rules to the reduce-side space.
void apply_reduce_rules(const WaveStats& stats, SearchSpace& space);

/// Conservative-mode online tuner for a single running job. Feed it every
/// completed TaskReport; ask for an adjusted config after each batch.
class ConservativeTuner {
 public:
  explicit ConservativeTuner(mapreduce::JobConfig initial);

  void observe(const mapreduce::TaskReport& report);
  /// True once enough new observations arrived to justify an adjustment.
  [[nodiscard]] bool ready() const;
  /// Produce the next configuration (also remembers it as current).
  mapreduce::JobConfig adjust();

  [[nodiscard]] const mapreduce::JobConfig& current() const {
    return current_;
  }
  [[nodiscard]] int adjustments() const { return adjustments_; }
  /// Names of the Section-6 rules that fired during the most recent
  /// adjust() call (e.g. "map.sort_buffer_grow", "reduce.parallelcopies") —
  /// the audit log records one event per entry.
  [[nodiscard]] const std::vector<std::string>& last_actions() const {
    return last_actions_;
  }

 private:
  void adjust_map_side(mapreduce::JobConfig& cfg);
  void adjust_reduce_side(mapreduce::JobConfig& cfg);

  mapreduce::JobConfig current_;
  std::vector<mapreduce::TaskReport> new_maps_;
  std::vector<mapreduce::TaskReport> new_reduces_;
  std::vector<std::string> last_actions_;
  int adjustments_ = 0;

  // Escalation state: keep raising while times improve (Section 6.3).
  double last_map_avg_duration_ = -1.0;
  double last_reduce_avg_duration_ = -1.0;
  bool vcores_frozen_ = false;
  bool copies_frozen_ = false;
};

/// Observations needed before the first conservative adjustment.
constexpr std::size_t kConservativeBatch = 12;

}  // namespace mron::tuner
