// MRONLINE's online tuner daemon (Figure 2): monitor + performance advisor
// (the gray-box hill climber and Section-6 rules) + dynamic configurator.
//
// Aggressive strategy (expedited test runs, Section 2.3 use case 1): task
// launches are gated into waves; each wave's tasks run one LHS-sampled
// configuration each; completed-wave statistics tighten the search bounds
// (gray box) and advance the hill climber. Map-side dimensions are driven by
// map-task costs, reduce-side dimensions by reduce-task costs. When a
// climber converges (or the job runs out of tasks to sample on), the
// remaining tasks run the best configuration found, and the merged result
// is stored in the tuning knowledge base.
//
// Conservative strategy (fast single run, use case 2): no launch gating at
// all; the job starts on its default configuration and the Section-6
// conservative rules adjust the job config between batches of completed
// tasks, with category-III parameters pushed into already-running tasks.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mapreduce/mr_app_master.h"
#include "obs/recorder.h"
#include "tuner/cost.h"
#include "tuner/dynamic_configurator.h"
#include "tuner/eval_cache.h"
#include "tuner/hill_climber.h"
#include "tuner/knowledge_base.h"
#include "tuner/rules.h"
#include "tuner/search_space.h"

namespace mron::tuner {

enum class TuningStrategy { Aggressive, Conservative };

struct TunerOptions {
  TuningStrategy strategy = TuningStrategy::Aggressive;
  ClimberOptions climber;
  std::uint64_t seed = 99;
  /// Apply the gray-box Section-6 rules between waves (ablation knob).
  bool use_tuning_rules = true;
  /// Failure awareness (fault injection): attempts killed by an injected
  /// fault are always dropped (their retry reports instead); when this is
  /// set, samples that completed on faulted hardware (TaskReport::faulted)
  /// are additionally excluded from the rules/normalization inputs and
  /// their wave cost is replaced by the median of the wave's clean slots —
  /// the median-of-slots aggregate — so one straggler cannot steer the
  /// climber toward whatever config it happened to run.
  bool discard_faulted = true;
};

class OnlineTuner {
 public:
  explicit OnlineTuner(TunerOptions options = {});

  /// Begin tuning a submitted job. Must be called before the simulation
  /// runs (the aggressive strategy gates the very first wave).
  void attach(mapreduce::MrAppMaster& am);

  struct JobOutcome {
    mapreduce::JobConfig best_config;
    double map_best_cost = 0.0;
    double reduce_best_cost = 0.0;
    int waves = 0;
    int configs_tried = 0;
    bool map_converged = false;
    bool reduce_converged = false;
    int conservative_adjustments = 0;
    /// The flight recorder's decision audit log, when the job ran with
    /// observation on (nullptr otherwise). Shared across jobs on one
    /// engine — filter with AuditLog::for_job(id).
    const obs::AuditLog* decisions = nullptr;
  };
  [[nodiscard]] const JobOutcome& outcome(mapreduce::JobId id) const;

  [[nodiscard]] TuningKnowledgeBase& knowledge_base() { return kb_; }
  [[nodiscard]] DynamicConfigurator& configurator() { return configurator_; }

 private:
  struct Wave {
    std::map<mapreduce::TaskRef, std::size_t> slots;
    std::vector<double> costs;
    std::vector<bool> filled;
    std::vector<bool> faulted;  ///< slot sample poisoned by a fault
    std::vector<mapreduce::TaskReport> reports;
    std::size_t remaining = 0;
    obs::SpanId span = obs::kInvalidSpan;  ///< open wave trace span
  };
  struct JobState {
    mapreduce::MrAppMaster* am = nullptr;
    obs::Recorder* rec = nullptr;  ///< the job engine's flight recorder
    // Aggressive machinery.
    std::optional<SearchSpace> map_space, reduce_space;
    std::optional<GrayBoxHillClimber> map_climber, reduce_climber;
    std::optional<Wave> map_wave, reduce_wave;
    bool map_finalized = false, reduce_finalized = false;
    double max_map_secs = 0.0, max_reduce_secs = 0.0;
    // Conservative machinery.
    std::optional<ConservativeTuner> conservative;
    JobOutcome outcome;
  };

  void on_task(JobState& js, const mapreduce::TaskReport& report);
  void on_wave_task(JobState& js, Wave& wave,
                    const mapreduce::TaskReport& report, bool is_map);
  void start_wave(JobState& js, bool is_map);
  void finalize(JobState& js, bool is_map);
  void maybe_store_outcome(JobState& js);
  /// Record a decision in the job's audit log (no-op without a recorder);
  /// stamps the sim-time and job id.
  void audit(JobState& js, obs::AuditEvent ev);
  /// task_cost via the memo cache (keyed on everything Eq. 1 reads);
  /// hit/miss totals reach the registry via the attach() flush hook.
  double scored_task_cost(const mapreduce::TaskReport& report,
                          double max_task_seconds);

  TunerOptions options_;
  Rng rng_;
  DynamicConfigurator configurator_;
  TuningKnowledgeBase kb_;
  /// Memoized Eq.-1 scores: tasks of one wave that produced identical
  /// reports (common once a wave repeats the incumbent configuration)
  /// re-use the computed cost. Pure arithmetic either way, so the cache
  /// only trades work for a lookup — never changes a score.
  EvalCache<double> cost_cache_{/*capacity=*/1024, /*shards=*/4};
  /// Recorders that already carry this tuner's eval-cache flush hook (one
  /// hook per engine, however many jobs attach).
  std::set<obs::Recorder*> hooked_recorders_;
  std::map<mapreduce::JobId, JobState> jobs_;
};

/// Copy the map-side tunables of `src` onto `dst`.
void merge_map_side(mapreduce::JobConfig& dst, const mapreduce::JobConfig& src);
/// Copy the reduce-side tunables of `src` onto `dst`.
void merge_reduce_side(mapreduce::JobConfig& dst,
                       const mapreduce::JobConfig& src);

}  // namespace mron::tuner
