// Normalized parameter search space over a subset of the Table-2 registry.
//
// The hill climber works in [0,1]^d; this class maps those points to
// concrete JobConfigs (and back), applies the inter-parameter constraints,
// and carries the *dynamic per-dimension bounds* that the gray-box tuning
// rules tighten as runtime statistics arrive (Section 6: "increase the
// lower bound to the 80th percentile of sampled values", etc.).
//
// MRONLINE searches two sub-spaces driven by different evidence streams:
// map-task costs shape the map-side dimensions, reduce-task costs the
// reduce-side ones (the paper assigns configurations to map and reduce
// tasks independently; splitting the space keeps each dimension's signal
// attached to the tasks that exercise it).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mapreduce/params.h"

namespace mron::tuner {

class SearchSpace {
 public:
  /// Build a space over the named parameters (all must exist in `registry`).
  SearchSpace(const mapreduce::ParamRegistry& registry,
              std::vector<std::string> param_names,
              mapreduce::JobConfig base);

  /// The paper's map-side dimensions.
  static SearchSpace map_side(mapreduce::JobConfig base);
  /// The paper's reduce-side dimensions.
  static SearchSpace reduce_side(mapreduce::JobConfig base);

  [[nodiscard]] std::size_t dims() const { return dims_.size(); }
  [[nodiscard]] const mapreduce::ParamDescriptor& param(std::size_t d) const;
  /// Index of a named dimension, or npos.
  [[nodiscard]] std::size_t dim_of(const std::string& name) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Point -> config: un-normalizes each coordinate into [min,max] of its
  /// parameter, writes onto the base config, and applies constraints.
  [[nodiscard]] mapreduce::JobConfig to_config(
      const std::vector<double>& x) const;
  [[nodiscard]] std::vector<double> from_config(
      const mapreduce::JobConfig& cfg) const;

  // --- dynamic bounds (normalized, within [0,1]) -----------------------------
  void set_bounds(std::size_t dim, double lo, double hi);
  [[nodiscard]] double lower(std::size_t dim) const;
  [[nodiscard]] double upper(std::size_t dim) const;
  /// Clamp a point into the current bounds.
  void clamp(std::vector<double>& x) const;

  [[nodiscard]] const mapreduce::JobConfig& base() const { return base_; }
  void set_base(const mapreduce::JobConfig& base) { base_ = base; }

 private:
  const mapreduce::ParamRegistry* registry_;
  std::vector<std::size_t> dims_;  // indices into the registry
  std::vector<double> lo_, hi_;    // normalized dynamic bounds
  mapreduce::JobConfig base_;
};

}  // namespace mron::tuner
