#include "tuner/eval_cache.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace mron::tuner {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

bool enabled_from_env() {
  const char* v = std::getenv("MRON_NO_EVAL_CACHE");
  return v == nullptr || std::strcmp(v, "0") == 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{enabled_from_env()};
  return flag;
}

struct GlobalStats {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> insertions{0};
  std::atomic<std::uint64_t> evictions{0};
};

GlobalStats& global_stats() {
  static GlobalStats stats;
  return stats;
}

}  // namespace

bool eval_cache_enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_eval_cache_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

EvalCacheStats eval_cache_global_stats() {
  const GlobalStats& g = global_stats();
  EvalCacheStats out;
  out.hits = g.hits.load(std::memory_order_relaxed);
  out.misses = g.misses.load(std::memory_order_relaxed);
  out.insertions = g.insertions.load(std::memory_order_relaxed);
  out.evictions = g.evictions.load(std::memory_order_relaxed);
  return out;
}

void reset_eval_cache_global_stats() {
  GlobalStats& g = global_stats();
  g.hits.store(0, std::memory_order_relaxed);
  g.misses.store(0, std::memory_order_relaxed);
  g.insertions.store(0, std::memory_order_relaxed);
  g.evictions.store(0, std::memory_order_relaxed);
}

void export_eval_cache_metrics(obs::MetricsRegistry& registry) {
  const EvalCacheStats s = eval_cache_global_stats();
  registry.gauge("tuner.eval_cache.hits").set(static_cast<double>(s.hits));
  registry.gauge("tuner.eval_cache.misses")
      .set(static_cast<double>(s.misses));
  registry.gauge("tuner.eval_cache.insertions")
      .set(static_cast<double>(s.insertions));
  registry.gauge("tuner.eval_cache.evictions")
      .set(static_cast<double>(s.evictions));
  registry.gauge("tuner.eval_cache.hit_rate").set(s.hit_rate());
}

void CacheKey::add_word(std::uint64_t w) {
  words_.push_back(w);
  // Plain FNV-1a: already order-sensitive (each word is folded into the
  // running product), and a weak digest can only cost an extra full-key
  // compare, never a wrong value. One multiply per word keeps the ~14-word
  // config-key latency chain half what the old position-mixing round was.
  hash_ = (hash_ ^ w) * kFnvPrime;
}

void CacheKey::add(double v) {
  // Normalize -0.0 so it keys like +0.0 (they evaluate identically).
  if (v == 0.0) v = 0.0;
  add_word(std::bit_cast<std::uint64_t>(v));
}

void CacheKey::add(std::int64_t v) {
  add_word(static_cast<std::uint64_t>(v));
}

void CacheKey::add_config(const mapreduce::ParamRegistry& registry,
                          mapreduce::JobConfig cfg) {
  mapreduce::clamp_constraints(cfg);
  for (std::size_t i = 0; i < registry.size(); ++i) {
    add(registry.get(cfg, i));
  }
}

void CacheKey::add_config(const mapreduce::JobConfig& cfg) {
  static_assert(sizeof(mapreduce::JobConfig) == 15 * sizeof(double),
                "JobConfig changed: key every new field here");
  mapreduce::JobConfig c = cfg;
  mapreduce::clamp_constraints(c);
  add(c.map_memory_mb);
  add(c.reduce_memory_mb);
  add(c.io_sort_mb);
  add(c.sort_spill_percent);
  add(c.shuffle_input_buffer_percent);
  add(c.shuffle_merge_percent);
  add(c.shuffle_memory_limit_percent);
  add(c.merge_inmem_threshold);
  add(c.reduce_input_buffer_percent);
  add(c.map_cpu_vcores);
  add(c.reduce_cpu_vcores);
  add(c.io_sort_factor);
  add(c.shuffle_parallelcopies);
  add(c.map_output_compress);
  add(c.dfs_replication);
}

namespace internal {

void note_global(std::uint64_t hits, std::uint64_t misses,
                 std::uint64_t insertions, std::uint64_t evictions) {
  GlobalStats& g = global_stats();
  if (hits != 0) g.hits.fetch_add(hits, std::memory_order_relaxed);
  if (misses != 0) g.misses.fetch_add(misses, std::memory_order_relaxed);
  if (insertions != 0) {
    g.insertions.fetch_add(insertions, std::memory_order_relaxed);
  }
  if (evictions != 0) {
    g.evictions.fetch_add(evictions, std::memory_order_relaxed);
  }
}

}  // namespace internal

}  // namespace mron::tuner
