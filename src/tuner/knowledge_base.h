// Tuning knowledge base (Figure 3): stores the best configuration found per
// job signature so later runs of the same application start from it. Also
// serializable to a simple `name param=value ...` text format so knowledge
// survives across processes.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "mapreduce/params.h"

namespace mron::tuner {

class TuningKnowledgeBase {
 public:
  struct Entry {
    mapreduce::JobConfig config;
    double cost = 0.0;
  };

  /// Keeps the cheaper entry when the key already exists.
  void store(const std::string& job_signature,
             const mapreduce::JobConfig& config, double cost);
  [[nodiscard]] std::optional<mapreduce::JobConfig> lookup(
      const std::string& job_signature) const;
  [[nodiscard]] std::optional<Entry> lookup_entry(
      const std::string& job_signature) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// One line per entry: `signature cost p1=v1 p2=v2 ...`.
  [[nodiscard]] std::string serialize() const;
  /// Merges entries parsed from `text` (keeping cheaper duplicates).
  /// Returns the number of entries read; unknown parameters are ignored.
  int deserialize(const std::string& text);

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace mron::tuner
