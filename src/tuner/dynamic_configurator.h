// The dynamic configurator — the Table-1 API of the paper.
//
// Registers running jobs (their application masters) and exposes both the
// paper's string-keyed interface and typed equivalents used by the online
// tuner. Category semantics follow Section 2.2: for a queued task both
// category-II and category-III parameters are configurable; for a running
// task only category III (pushed live); category-I parameters are never
// offered.
//
// Integer return codes mirror the paper's API: 0 on success, -1 for an
// unknown job/task, otherwise the number of parameters that could not be
// applied.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mapreduce/mr_app_master.h"

namespace mron::tuner {

class DynamicConfigurator {
 public:
  void register_job(mapreduce::MrAppMaster* am);
  void unregister_job(mapreduce::JobId id);
  [[nodiscard]] mapreduce::MrAppMaster* job(mapreduce::JobId id) const;

  // --- Table-1 string API ----------------------------------------------------
  [[nodiscard]] std::vector<std::string> get_configurable_job_parameters(
      mapreduce::JobId jid) const;
  [[nodiscard]] std::vector<std::string> get_configurable_task_parameters(
      mapreduce::JobId jid, const mapreduce::TaskRef& tid) const;
  int set_job_parameters(mapreduce::JobId jid,
                         const std::map<std::string, std::string>& kv);
  int set_task_parameters(mapreduce::JobId jid, const mapreduce::TaskRef& tid,
                          const std::map<std::string, std::string>& kv);
  /// All queued tasks of the job.
  int set_task_parameters(mapreduce::JobId jid,
                          const std::map<std::string, std::string>& kv);

  // --- typed equivalents (used by OnlineTuner) -------------------------------
  bool set_job_config(mapreduce::JobId jid, const mapreduce::JobConfig& cfg);
  bool set_task_config(mapreduce::JobId jid, const mapreduce::TaskRef& tid,
                       const mapreduce::JobConfig& cfg);
  int push_live_params(mapreduce::JobId jid, const mapreduce::JobConfig& cfg);

 private:
  std::map<mapreduce::JobId, mapreduce::MrAppMaster*> jobs_;
};

}  // namespace mron::tuner
