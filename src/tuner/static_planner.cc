#include "tuner/static_planner.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "mapreduce/simulation.h"

namespace mron::tuner {

StaticPlan plan_static_parameters(const mapreduce::JobSpec& template_spec,
                                  Bytes input_size,
                                  const StaticPlanOptions& options) {
  MRON_CHECK(input_size > Bytes(0));
  const int num_maps = std::max(
      1, static_cast<int>(std::ceil(input_size.as_double() /
                                    mebibytes(128).as_double())));
  std::vector<int> reducers = options.reducer_candidates;
  if (reducers.empty()) {
    for (int divisor : {8, 4, 2, 1}) {
      const int r = std::max(1, num_maps / divisor);
      if (reducers.empty() || reducers.back() != r) reducers.push_back(r);
    }
  }
  MRON_CHECK(!options.slowstart_candidates.empty());

  StaticPlan plan;
  plan.simulated_secs = std::numeric_limits<double>::infinity();
  for (int r : reducers) {
    for (double slowstart : options.slowstart_candidates) {
      // A fresh world per candidate: same seed, so candidates differ only
      // in the planned parameters.
      mapreduce::SimulationOptions sopt;
      sopt.cluster = options.cluster;
      sopt.seed = options.seed;
      mapreduce::Simulation sim(sopt);
      mapreduce::JobSpec spec = template_spec;
      spec.input = sim.load_dataset("planner", input_size);
      spec.num_maps_override = -1;
      spec.num_reduces = r;
      spec.slowstart = slowstart;
      const double secs = sim.run_job(std::move(spec)).exec_time();
      plan.sweep.push_back({r, slowstart, secs});
      if (secs < plan.simulated_secs) {
        plan.simulated_secs = secs;
        plan.num_reduces = r;
        plan.slowstart = slowstart;
      }
    }
  }
  return plan;
}

}  // namespace mron::tuner
