#include "tuner/search_space.h"

#include <algorithm>

#include "common/check.h"

namespace mron::tuner {

using mapreduce::JobConfig;
using mapreduce::ParamDescriptor;
using mapreduce::ParamRegistry;

SearchSpace::SearchSpace(const ParamRegistry& registry,
                         std::vector<std::string> param_names, JobConfig base)
    : registry_(&registry), base_(base) {
  for (const auto& name : param_names) {
    const ParamDescriptor* p = registry.find(name);
    MRON_CHECK_MSG(p != nullptr, "unknown parameter " << name);
    dims_.push_back(static_cast<std::size_t>(p - registry.params().data()));
  }
  lo_.assign(dims_.size(), 0.0);
  hi_.assign(dims_.size(), 1.0);
}

SearchSpace SearchSpace::map_side(JobConfig base) {
  return SearchSpace(ParamRegistry::standard(),
                     {
                         "mapreduce.map.memory.mb",
                         "mapreduce.task.io.sort.mb",
                         "mapreduce.map.sort.spill.percent",
                         "mapreduce.map.cpu.vcores",
                         "mapreduce.task.io.sort.factor",
                     },
                     base);
}

SearchSpace SearchSpace::reduce_side(JobConfig base) {
  return SearchSpace(ParamRegistry::standard(),
                     {
                         "mapreduce.reduce.memory.mb",
                         "mapreduce.reduce.shuffle.input.buffer.percent",
                         "mapreduce.reduce.shuffle.merge.percent",
                         "mapreduce.reduce.shuffle.memory.limit.percent",
                         "mapreduce.reduce.merge.inmem.threshold",
                         "mapreduce.reduce.input.buffer.percent",
                         "mapreduce.reduce.cpu.vcores",
                         "mapreduce.reduce.shuffle.parallelcopies",
                     },
                     base);
}

const ParamDescriptor& SearchSpace::param(std::size_t d) const {
  MRON_CHECK(d < dims_.size());
  return registry_->at(dims_[d]);
}

std::size_t SearchSpace::dim_of(const std::string& name) const {
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (param(d).name == name) return d;
  }
  return npos;
}

JobConfig SearchSpace::to_config(const std::vector<double>& x) const {
  MRON_CHECK(x.size() == dims_.size());
  JobConfig cfg = base_;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const ParamDescriptor& p = param(d);
    const double v = std::clamp(x[d], 0.0, 1.0);
    registry_->set(cfg, dims_[d], p.min + v * (p.max - p.min));
  }
  mapreduce::clamp_constraints(cfg);
  return cfg;
}

std::vector<double> SearchSpace::from_config(const JobConfig& cfg) const {
  std::vector<double> x(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const ParamDescriptor& p = param(d);
    const double raw = registry_->get(cfg, dims_[d]);
    x[d] = p.max > p.min ? (raw - p.min) / (p.max - p.min) : 0.0;
    x[d] = std::clamp(x[d], 0.0, 1.0);
  }
  return x;
}

void SearchSpace::set_bounds(std::size_t dim, double lo, double hi) {
  MRON_CHECK(dim < dims_.size());
  lo = std::clamp(lo, 0.0, 1.0);
  hi = std::clamp(hi, 0.0, 1.0);
  MRON_CHECK_MSG(lo <= hi, "bounds inverted for " << param(dim).name);
  lo_[dim] = lo;
  hi_[dim] = hi;
}

double SearchSpace::lower(std::size_t dim) const {
  MRON_CHECK(dim < dims_.size());
  return lo_[dim];
}

double SearchSpace::upper(std::size_t dim) const {
  MRON_CHECK(dim < dims_.size());
  return hi_[dim];
}

void SearchSpace::clamp(std::vector<double>& x) const {
  MRON_CHECK(x.size() == dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    x[d] = std::clamp(x[d], lo_[d], hi_[d]);
  }
}

}  // namespace mron::tuner
