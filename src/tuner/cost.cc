#include "tuner/cost.h"

#include <algorithm>

#include "common/check.h"

namespace mron::tuner {

double task_cost(const mapreduce::TaskReport& report,
                 double max_task_seconds) {
  if (report.failed_oom) return kOomCostPenalty;
  const double u_mem = std::clamp(report.mem_util, 0.0, 1.0);
  const double u_cpu = std::clamp(report.cpu_util, 0.0, 1.0);

  // Spill amplification: 1.0 at the optimum (each combined record written
  // once on the map side; nothing spilled on the reduce side).
  double spill_ratio;
  if (report.task.kind == mapreduce::TaskKind::Map) {
    const double optimal =
        static_cast<double>(report.counters.combine_output_records);
    spill_ratio = optimal > 0.0
                      ? static_cast<double>(report.counters.spilled_records) /
                            optimal
                      : 0.0;
  } else {
    const double shuffled = report.counters.shuffle_bytes.as_double();
    spill_ratio =
        shuffled > 0.0
            ? report.counters.local_disk_write_bytes.as_double() / shuffled
            : 0.0;
  }

  const double t_max = std::max(max_task_seconds, report.duration());
  const double t_norm = t_max > 0.0 ? report.duration() / t_max : 0.0;

  const double oom_risk =
      std::max(0.0, report.mem_commit - kMemCommitSafe) * kMemCommitRiskSlope;

  return (1.0 - u_mem) + (1.0 - u_cpu) + spill_ratio + t_norm + oom_risk;
}

}  // namespace mron::tuner
