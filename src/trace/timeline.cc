#include "trace/timeline.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace mron::trace {

using mapreduce::JobResult;
using mapreduce::TaskKind;
using mapreduce::TaskReport;

void write_task_csv(const JobResult& result, std::ostream& os) {
  os << "kind,index,attempt,node,start,end,duration,locality,cpu_util,"
        "mem_util,spilled_records,shuffle_bytes,failed_oom\n";
  auto row = [&os](const TaskReport& r) {
    os << mapreduce::task_kind_name(r.task.kind) << ',' << r.task.index << ','
       << r.attempt << ',' << r.node.value() << ',' << r.start_time << ','
       << r.end_time << ',' << r.duration() << ','
       << dfs::locality_name(r.locality) << ',' << r.cpu_util << ','
       << r.mem_util << ',' << r.counters.spilled_records << ','
       << r.counters.shuffle_bytes.count() << ','
       << (r.failed_oom ? 1 : 0) << '\n';
  };
  for (const auto& r : result.map_reports) row(r);
  for (const auto& r : result.reduce_reports) row(r);
}

double TimelineSummary::locality_fraction() const {
  const int total = node_local + rack_local + off_rack;
  return total == 0 ? 0.0 : static_cast<double>(node_local) / total;
}

TimelineSummary summarize(const JobResult& result) {
  TimelineSummary s;
  std::vector<double> map_durs, reduce_durs;
  bool first_map = true, first_reduce = true;
  for (const auto& r : result.map_reports) {
    if (r.failed_oom) {
      ++s.failed_attempts;
      continue;
    }
    if (first_map) {
      s.map_phase = {r.start_time, r.end_time};
      first_map = false;
    }
    s.map_phase.start = std::min(s.map_phase.start, r.start_time);
    s.map_phase.end = std::max(s.map_phase.end, r.end_time);
    map_durs.push_back(r.duration());
    ++s.successful_maps;
    switch (r.locality) {
      case dfs::Locality::NodeLocal:
        ++s.node_local;
        break;
      case dfs::Locality::RackLocal:
        ++s.rack_local;
        break;
      case dfs::Locality::OffRack:
        ++s.off_rack;
        break;
    }
  }
  for (const auto& r : result.reduce_reports) {
    if (r.failed_oom) {
      ++s.failed_attempts;
      continue;
    }
    if (first_reduce) {
      s.reduce_phase = {r.start_time, r.end_time};
      first_reduce = false;
    }
    s.reduce_phase.start = std::min(s.reduce_phase.start, r.start_time);
    s.reduce_phase.end = std::max(s.reduce_phase.end, r.end_time);
    reduce_durs.push_back(r.duration());
    ++s.successful_reduces;
  }
  if (!map_durs.empty()) {
    s.avg_map_secs = mean_of(map_durs);
    s.p95_map_secs = percentile(map_durs, 0.95);
  }
  if (!reduce_durs.empty()) {
    s.avg_reduce_secs = mean_of(reduce_durs);
    s.p95_reduce_secs = percentile(reduce_durs, 0.95);
  }
  return s;
}

std::string render_swimlanes(const JobResult& result, int num_nodes,
                             int width, int max_lanes) {
  MRON_CHECK(num_nodes > 0 && width > 0 && max_lanes > 0);
  const double t0 = result.submit_time;
  const double t1 = std::max(result.finish_time, t0 + 1e-9);
  const double bucket = (t1 - t0) / width;

  // One lane per node while the cluster fits in max_lanes rows; beyond
  // that, contiguous groups of `group` nodes share a lane so both the
  // allocation and the rendered text stay bounded.
  const int group = (num_nodes + max_lanes - 1) / max_lanes;
  const int num_lanes = (num_nodes + group - 1) / group;

  // Per lane x bucket: bit 1 = map, bit 2 = reduce, bit 4 = failure.
  std::vector<std::vector<int>> lanes(
      static_cast<std::size_t>(num_lanes),
      std::vector<int>(static_cast<std::size_t>(width), 0));
  auto paint = [&](const TaskReport& r, int bit) {
    if (!r.node.valid() || r.node.value() >= num_nodes) return;
    auto& lane = lanes[static_cast<std::size_t>(r.node.value() / group)];
    const int b0 = std::clamp(
        static_cast<int>((r.start_time - t0) / bucket), 0, width - 1);
    const int b1 = std::clamp(static_cast<int>((r.end_time - t0) / bucket),
                              0, width - 1);
    for (int b = b0; b <= b1; ++b) {
      lane[static_cast<std::size_t>(b)] |= r.failed_oom ? 4 : bit;
    }
  };
  for (const auto& r : result.map_reports) paint(r, 1);
  for (const auto& r : result.reduce_reports) paint(r, 2);

  std::ostringstream os;
  os << "time 0.." << (t1 - t0) << "s, " << width
     << " buckets ('M' map, 'R' reduce, 'B' both, 'x' failed)\n";
  for (int n = 0; n < num_lanes; ++n) {
    if (group == 1) {
      os << "node" << (n < 10 ? " " : "") << n << " |";
    } else {
      const int lo = n * group;
      const int hi = std::min(num_nodes - 1, lo + group - 1);
      os << "node " << lo << '-' << hi << " |";
    }
    for (int b = 0; b < width; ++b) {
      const int v = lanes[static_cast<std::size_t>(n)]
                         [static_cast<std::size_t>(b)];
      char c = '.';
      if (v & 4) {
        c = 'x';
      } else if ((v & 3) == 3) {
        c = 'B';
      } else if (v & 1) {
        c = 'M';
      } else if (v & 2) {
        c = 'R';
      }
      os << c;
    }
    os << "|\n";
  }
  return os.str();
}

}  // namespace mron::trace
