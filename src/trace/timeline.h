// Execution-trace export and timeline analysis for completed jobs.
//
// Turns a JobResult's per-attempt reports into (a) a machine-readable CSV
// for external analysis, (b) a TimelineSummary with the phase spans and
// distribution statistics the paper's figures are built from, and (c) an
// ASCII per-node swimlane for eyeballing scheduling behavior (waves,
// stragglers, failure re-executions).
#pragma once

#include <ostream>
#include <string>

#include "mapreduce/job.h"

namespace mron::trace {

/// One CSV row per task attempt:
/// kind,index,attempt,node,start,end,duration,locality,cpu_util,mem_util,
/// spilled_records,shuffle_bytes,failed_oom
void write_task_csv(const mapreduce::JobResult& result, std::ostream& os);

struct PhaseSpan {
  SimTime start = 0.0;
  SimTime end = 0.0;
  [[nodiscard]] double seconds() const { return end - start; }
};

struct TimelineSummary {
  PhaseSpan map_phase;     ///< first map start .. last map end
  PhaseSpan reduce_phase;  ///< first reduce start .. last reduce end
  double avg_map_secs = 0.0;
  double p95_map_secs = 0.0;
  double avg_reduce_secs = 0.0;
  double p95_reduce_secs = 0.0;
  int node_local = 0;
  int rack_local = 0;
  int off_rack = 0;
  int failed_attempts = 0;
  int successful_maps = 0;
  int successful_reduces = 0;

  /// Fraction of successful maps that read node-locally.
  [[nodiscard]] double locality_fraction() const;
};

TimelineSummary summarize(const mapreduce::JobResult& result);

/// ASCII swimlanes: one row per node, `width` time buckets; each cell shows
/// what dominated the bucket on that node — 'M' maps, 'R' reduces, 'B' both,
/// '.' idle, 'x' a failed attempt. On clusters wider than `max_lanes` rows,
/// contiguous node groups share a lane ("node 0-15") so a 1,024-node run
/// still renders — and allocates — O(max_lanes * width), not O(nodes).
std::string render_swimlanes(const mapreduce::JobResult& result,
                             int num_nodes, int width = 72,
                             int max_lanes = 64);

}  // namespace mron::trace
