// Deterministic fault plans: the declarative half of the fault-injection
// subsystem.
//
// A FaultPlan is a pure description — node crashes (with optional restarts),
// disk/NIC/CPU degradation windows (the straggler generator), per-attempt
// task failure probabilities, and the heartbeat parameters the RM uses to
// detect dead NodeManagers. Plans are reproducible by construction: the only
// randomness they admit is the seed, and the injector turns that seed into
// order-independent hash draws, so the same plan + seed yields the same
// faults at any --jobs level.
//
// Plans parse from a tiny text format (one directive per line or
// ';'-separated, '#' comments):
//
//   seed 42
//   heartbeat period=0.5 timeout=3
//   taskfail prob=0.02
//   crash node=4 at=120 restart=300
//   degrade node=7 from=60 until=180 disk=0.25 nic=0.5
//
// See FAULTS.md for the full grammar and semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace mron::faults {

/// Fail-stop a node at `at`; bring it back at `restart_at` (< 0: never).
struct CrashEvent {
  int node = -1;
  SimTime at = 0.0;
  SimTime restart_at = -1.0;
};

/// Scale a node's hardware capacities inside [from, until). A factor of
/// 0.25 means the resource runs at a quarter of its healthy bandwidth —
/// the classic hot-disk straggler.
struct DegradeWindow {
  int node = -1;
  SimTime from = 0.0;
  SimTime until = 0.0;
  double disk_factor = 1.0;
  double nic_factor = 1.0;
  double cpu_factor = 1.0;
};

struct FaultPlan {
  /// Seeds the per-attempt failure draws (independent of the simulation
  /// seed, so the same fault pattern can be replayed across workloads).
  std::uint64_t seed = 0;
  /// Probability that any given task attempt is killed partway through.
  double task_fail_prob = 0.0;
  /// NodeManager heartbeat cadence and the silence threshold after which
  /// the RM declares a node lost.
  SimTime heartbeat_period = 0.5;
  SimTime heartbeat_timeout = 3.0;
  std::vector<CrashEvent> crashes;
  std::vector<DegradeWindow> degradations;

  /// True when the plan injects nothing (no crashes, windows, or failures).
  [[nodiscard]] bool empty() const {
    return crashes.empty() && degradations.empty() && task_fail_prob <= 0.0;
  }

  /// Round-trips through parse(): parse(p.to_string()) == p.
  [[nodiscard]] std::string to_string() const;

  /// Abort with a diagnostic on malformed plans (node out of [0,num_nodes),
  /// empty or negative windows, probabilities outside [0,1], factors <= 0).
  void validate(int num_nodes) const;

  /// Parse the text format; aborts with a diagnostic on unknown directives
  /// or malformed values.
  static FaultPlan parse(const std::string& text);
  /// Parse a plan file from disk; aborts if the file cannot be read.
  static FaultPlan load(const std::string& path);
};

}  // namespace mron::faults
