#include "faults/fault_plan.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace mron::faults {

namespace {

/// Format a double with enough digits to round-trip exactly through parse().
std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Split "key=value"; aborts when there is no '='.
std::pair<std::string, std::string> split_kv(const std::string& token,
                                             const std::string& directive) {
  const auto eq = token.find('=');
  MRON_CHECK_MSG(eq != std::string::npos && eq > 0 && eq + 1 < token.size(),
                 "fault plan: malformed token '" << token << "' in '"
                                                << directive << "'");
  return {token.substr(0, eq), token.substr(eq + 1)};
}

double parse_num(const std::string& value, const std::string& directive) {
  std::size_t used = 0;
  double v = 0.0;
  bool ok = true;
  try {
    v = std::stod(value, &used);
  } catch (...) {
    ok = false;
  }
  MRON_CHECK_MSG(ok && used == value.size(),
                 "fault plan: bad number '" << value << "' in '" << directive
                                            << "'");
  return v;
}

}  // namespace

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "seed " << seed << "\n";
  os << "heartbeat period=" << fmt(heartbeat_period)
     << " timeout=" << fmt(heartbeat_timeout) << "\n";
  if (task_fail_prob > 0.0) {
    os << "taskfail prob=" << fmt(task_fail_prob) << "\n";
  }
  for (const auto& c : crashes) {
    os << "crash node=" << c.node << " at=" << fmt(c.at);
    if (c.restart_at >= 0.0) os << " restart=" << fmt(c.restart_at);
    os << "\n";
  }
  for (const auto& d : degradations) {
    os << "degrade node=" << d.node << " from=" << fmt(d.from)
       << " until=" << fmt(d.until);
    if (d.disk_factor != 1.0) os << " disk=" << fmt(d.disk_factor);
    if (d.nic_factor != 1.0) os << " nic=" << fmt(d.nic_factor);
    if (d.cpu_factor != 1.0) os << " cpu=" << fmt(d.cpu_factor);
    os << "\n";
  }
  return os.str();
}

void FaultPlan::validate(int num_nodes) const {
  MRON_CHECK_MSG(task_fail_prob >= 0.0 && task_fail_prob <= 1.0,
                 "fault plan: taskfail prob " << task_fail_prob
                                              << " outside [0,1]");
  MRON_CHECK_MSG(heartbeat_period > 0.0 && heartbeat_timeout > 0.0,
                 "fault plan: heartbeat period/timeout must be positive");
  for (const auto& c : crashes) {
    MRON_CHECK_MSG(c.node >= 0 && c.node < num_nodes,
                   "fault plan: crash node " << c.node << " outside cluster of "
                                             << num_nodes);
    MRON_CHECK_MSG(c.at >= 0.0, "fault plan: crash at " << c.at << " < 0");
    MRON_CHECK_MSG(c.restart_at < 0.0 || c.restart_at > c.at,
                   "fault plan: crash restart " << c.restart_at
                                                << " not after crash " << c.at);
  }
  for (const auto& d : degradations) {
    MRON_CHECK_MSG(d.node >= 0 && d.node < num_nodes,
                   "fault plan: degrade node " << d.node
                                               << " outside cluster of "
                                               << num_nodes);
    MRON_CHECK_MSG(d.from >= 0.0 && d.until > d.from,
                   "fault plan: degrade window [" << d.from << "," << d.until
                                                  << ") is empty");
    MRON_CHECK_MSG(
        d.disk_factor > 0.0 && d.nic_factor > 0.0 && d.cpu_factor > 0.0,
        "fault plan: degrade factors must be > 0 (node " << d.node << ")");
  }
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  // Normalize ';' separators to newlines, strip comments, then read
  // directive by directive.
  std::string cleaned;
  cleaned.reserve(text.size());
  bool in_comment = false;
  for (const char ch : text) {
    if (ch == '#') in_comment = true;
    if (ch == '\n') in_comment = false;
    if (in_comment) continue;
    cleaned.push_back(ch == ';' ? '\n' : ch);
  }

  std::istringstream lines(cleaned);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream words(line);
    std::string keyword;
    if (!(words >> keyword)) continue;  // blank line

    if (keyword == "seed") {
      std::string v;
      MRON_CHECK_MSG(static_cast<bool>(words >> v),
                     "fault plan: 'seed' needs a value");
      plan.seed = static_cast<std::uint64_t>(parse_num(v, line));
    } else if (keyword == "taskfail") {
      std::string token;
      while (words >> token) {
        const auto [key, value] = split_kv(token, line);
        MRON_CHECK_MSG(key == "prob",
                       "fault plan: unknown taskfail key '" << key << "'");
        plan.task_fail_prob = parse_num(value, line);
      }
    } else if (keyword == "heartbeat") {
      std::string token;
      while (words >> token) {
        const auto [key, value] = split_kv(token, line);
        if (key == "period") {
          plan.heartbeat_period = parse_num(value, line);
        } else if (key == "timeout") {
          plan.heartbeat_timeout = parse_num(value, line);
        } else {
          MRON_CHECK_MSG(false,
                         "fault plan: unknown heartbeat key '" << key << "'");
        }
      }
    } else if (keyword == "crash") {
      CrashEvent c;
      std::string token;
      while (words >> token) {
        const auto [key, value] = split_kv(token, line);
        if (key == "node") {
          c.node = static_cast<int>(parse_num(value, line));
        } else if (key == "at") {
          c.at = parse_num(value, line);
        } else if (key == "restart") {
          c.restart_at = parse_num(value, line);
        } else {
          MRON_CHECK_MSG(false,
                         "fault plan: unknown crash key '" << key << "'");
        }
      }
      MRON_CHECK_MSG(c.node >= 0, "fault plan: crash without node= in '"
                                      << line << "'");
      plan.crashes.push_back(c);
    } else if (keyword == "degrade") {
      DegradeWindow d;
      std::string token;
      while (words >> token) {
        const auto [key, value] = split_kv(token, line);
        if (key == "node") {
          d.node = static_cast<int>(parse_num(value, line));
        } else if (key == "from") {
          d.from = parse_num(value, line);
        } else if (key == "until") {
          d.until = parse_num(value, line);
        } else if (key == "disk") {
          d.disk_factor = parse_num(value, line);
        } else if (key == "nic") {
          d.nic_factor = parse_num(value, line);
        } else if (key == "cpu") {
          d.cpu_factor = parse_num(value, line);
        } else {
          MRON_CHECK_MSG(false,
                         "fault plan: unknown degrade key '" << key << "'");
        }
      }
      MRON_CHECK_MSG(d.node >= 0, "fault plan: degrade without node= in '"
                                      << line << "'");
      plan.degradations.push_back(d);
    } else {
      MRON_CHECK_MSG(false,
                     "fault plan: unknown directive '" << keyword << "'");
    }
  }
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  MRON_CHECK_MSG(in.good(), "fault plan: cannot read '" << path << "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

}  // namespace mron::faults
