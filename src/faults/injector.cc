#include "faults/injector.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "obs/host_profile.h"
#include "obs/recorder.h"

namespace mron::faults {

FaultInjector::FaultInjector(sim::Engine& engine, FaultPlan plan)
    : engine_(engine), plan_(std::move(plan)) {}

void FaultInjector::arm(yarn::ResourceManager& rm,
                        std::vector<cluster::Node*> nodes) {
  MRON_CHECK_MSG(rm_ == nullptr, "fault injector armed twice");
  plan_.validate(static_cast<int>(nodes.size()));
  rm_ = &rm;
  nodes_ = std::move(nodes);
  // Every event armed from the plan (crashes, restarts, degradation
  // boundaries) bills to the faults subsystem.
  HOST_PROF_CATEGORY(kFaults);

  // Crashes surface through the heartbeat machinery: the node goes silent
  // and the RM's watchdog declares it lost one timeout later, exactly like
  // a real NodeManager dropping off the network.
  if (!plan_.crashes.empty()) {
    rm.enable_heartbeats(plan_.heartbeat_period, plan_.heartbeat_timeout);
  }
  for (const auto& c : plan_.crashes) {
    engine_.schedule_at(c.at, [this, c] { on_crash(c); });
    if (c.restart_at >= 0.0) {
      engine_.schedule_at(c.restart_at, [this, c] { on_restart(c); });
    }
  }
  // A degradation boundary (open or close) just re-derives the node's
  // effective scale from every window covering the boundary time, which
  // makes overlapping windows compose correctly (per-resource minimum).
  for (const auto& d : plan_.degradations) {
    engine_.schedule_at(d.from, [this, d] {
      ++stats_.degrade_windows;
      refresh_node_scales(d.node);
      if (auto* rec = engine_.recorder()) {
        rec->metrics().counter("faults.degrade_windows").add(1.0);
        rec->trace().instant("degrade_open", "fault", d.node, 0,
                             engine_.now());
      }
      audit_event("degrade_open", -1,
                  "node " + std::to_string(d.node) + " until " +
                      std::to_string(d.until));
    });
    engine_.schedule_at(d.until, [this, d] {
      refresh_node_scales(d.node);
      if (auto* rec = engine_.recorder()) {
        rec->trace().instant("degrade_close", "fault", d.node, 0,
                             engine_.now());
      }
    });
  }
}

void FaultInjector::on_crash(const CrashEvent& c) {
  ++stats_.crashes;
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("faults.crashes").add(1.0);
    rec->trace().instant("node_crash", "fault", c.node, 0, engine_.now());
  }
  audit_event("node_crash", -1, "node " + std::to_string(c.node));
  rm_->mark_node_unresponsive(cluster::NodeId(c.node));
}

void FaultInjector::on_restart(const CrashEvent& c) {
  ++stats_.restarts;
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("faults.restarts").add(1.0);
    rec->trace().instant("node_restart", "fault", c.node, 0, engine_.now());
  }
  audit_event("node_restart", -1, "node " + std::to_string(c.node));
  rm_->recover_node(cluster::NodeId(c.node));
  // A restarted node comes back with whatever degradation still covers the
  // current time (a crash does not cancel a planned slow-disk window).
  refresh_node_scales(c.node);
}

void FaultInjector::refresh_node_scales(int node) {
  const SimTime now = engine_.now();
  double disk = 1.0, nic = 1.0, cpu = 1.0;
  for (const auto& d : plan_.degradations) {
    if (d.node != node || now < d.from || now >= d.until) continue;
    disk = std::min(disk, d.disk_factor);
    nic = std::min(nic, d.nic_factor);
    cpu = std::min(cpu, d.cpu_factor);
  }
  auto& n = *nodes_[static_cast<std::size_t>(node)];
  n.disk().set_capacity_scale(disk);
  n.nic_in().set_capacity_scale(nic);
  n.cpu().set_capacity_scale(cpu);
}

bool FaultInjector::should_fail_attempt(std::int64_t job, int kind,
                                        int task_index, int attempt,
                                        double* fail_frac) const {
  if (plan_.task_fail_prob <= 0.0) return false;
  // Hash draw, not a sequential RNG pull: the verdict depends only on the
  // attempt's identity, never on when the question is asked.
  std::uint64_t state = plan_.seed ^ 0x66524f4e5f464cULL;
  state += 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(job + 1);
  state += 0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(kind + 1);
  state += 0x94d049bb133111ebULL * static_cast<std::uint64_t>(task_index + 1);
  state += 0xd6e8feb86659fd93ULL * static_cast<std::uint64_t>(attempt + 1);
  const double verdict =
      static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  if (verdict >= plan_.task_fail_prob) return false;
  // Strike somewhere in the attempt's middle 90% so the failure always
  // wastes visible work but never lands exactly on a phase boundary.
  *fail_frac =
      0.05 + 0.9 * (static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53);
  return true;
}

bool FaultInjector::node_faulted_during(int node, SimTime from,
                                        SimTime to) const {
  for (const auto& d : plan_.degradations) {
    if (d.node == node && from < d.until && to >= d.from) return true;
  }
  for (const auto& c : plan_.crashes) {
    if (c.node != node || to < c.at) continue;
    if (c.restart_at < 0.0 || from <= c.restart_at) return true;
  }
  return false;
}

void FaultInjector::record_injected_failure(std::int64_t job, int kind,
                                            int task_index, int attempt) {
  ++stats_.injected_task_failures;
  if (auto* rec = engine_.recorder()) {
    rec->metrics()
        .counter(kind == 0 ? "faults.injected.map_failures"
                           : "faults.injected.reduce_failures")
        .add(1.0);
  }
  audit_event("task_fault", job,
              std::string(kind == 0 ? "map " : "reduce ") +
                  std::to_string(task_index) + " attempt " +
                  std::to_string(attempt));
}

void FaultInjector::record_fetch_failure(std::int64_t job, int reduce_index,
                                         int node) {
  ++stats_.fetch_failures;
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("faults.fetch_failures").add(1.0);
  }
  audit_event("fetch_failure", job,
              "reduce " + std::to_string(reduce_index) + " lost source node " +
                  std::to_string(node));
}

void FaultInjector::record_lost_map_reexecution(std::int64_t job,
                                                int map_index, int node) {
  ++stats_.lost_map_reexecutions;
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("faults.lost_map_reexecutions").add(1.0);
  }
  audit_event("map_reexecution", job,
              "map " + std::to_string(map_index) + " output lost with node " +
                  std::to_string(node));
}

void FaultInjector::audit_event(const char* kind, std::int64_t job,
                                std::string detail) {
  if (auto* rec = engine_.recorder()) {
    obs::AuditEvent ev;
    ev.time = engine_.now();
    ev.kind = kind;
    ev.job = job;
    ev.detail = std::move(detail);
    rec->audit().record(std::move(ev));
  }
}

}  // namespace mron::faults
