// The fault injector: executes a FaultPlan against a live cluster.
//
// One injector serves one Simulation (one engine). arm() schedules every
// planned crash, restart, and degradation boundary as ordinary engine
// events; per-attempt task-failure verdicts are *hash draws* over
// (plan seed, job, task kind, task index, attempt) rather than sequential
// RNG pulls, so the verdict for a given attempt is identical no matter in
// which order attempts launch — the property that keeps fault runs
// byte-identical at any --jobs level.
//
// Crashes flow through the RM's heartbeat machinery (the node goes silent;
// the watchdog declares it lost after the timeout), matching how a real RM
// learns of a dead NodeManager. Degradations rescale the node's
// SharedServers in place, so running streams slow down mid-flight — the
// straggler generator for LATE-style speculative execution.
//
// Everything the injector does lands in the flight recorder (faults.*
// counters, audit events, trace instants) and in FaultStats, the
// deterministic tally the run report's `faults` block is built from.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.h"
#include "faults/fault_plan.h"
#include "sim/engine.h"
#include "yarn/resource_manager.h"

namespace mron::faults {

/// Deterministic run tally for the run report `faults` block. The injector
/// owns the crash/restart/degrade counts; the AM reports the recovery-side
/// events (injected attempt kills it acted on, shuffle fetches it failed
/// over, map outputs it re-executed).
struct FaultStats {
  std::int64_t crashes = 0;
  std::int64_t restarts = 0;
  std::int64_t degrade_windows = 0;
  std::int64_t injected_task_failures = 0;
  std::int64_t fetch_failures = 0;
  std::int64_t lost_map_reexecutions = 0;
};

class FaultInjector {
 public:
  FaultInjector(sim::Engine& engine, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Validate the plan against the cluster and schedule every planned
  /// event. Call exactly once, after the RM and nodes exist and before the
  /// engine runs.
  void arm(yarn::ResourceManager& rm, std::vector<cluster::Node*> nodes);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] bool active() const { return !plan_.empty(); }

  /// Order-independent per-attempt failure draw. When it returns true,
  /// `fail_frac` (never null) is where in the attempt's nominal runtime the
  /// injected fault strikes, in (0, 1). kind: 0 = map, 1 = reduce.
  [[nodiscard]] bool should_fail_attempt(std::int64_t job, int kind,
                                         int task_index, int attempt,
                                         double* fail_frac) const;

  /// True when [from, to] overlaps a degradation window on `node` or the
  /// node was crashed at any point of the interval. The AM stamps
  /// TaskReport::faulted with this so the tuner can discard poisoned cost
  /// samples.
  [[nodiscard]] bool node_faulted_during(int node, SimTime from,
                                         SimTime to) const;

  // --- recovery-side bookkeeping (called by the AM) -----------------------
  void record_injected_failure(std::int64_t job, int kind, int task_index,
                               int attempt);
  void record_fetch_failure(std::int64_t job, int reduce_index, int node);
  void record_lost_map_reexecution(std::int64_t job, int map_index, int node);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  void on_crash(const CrashEvent& c);
  void on_restart(const CrashEvent& c);
  /// Re-apply the effective capacity scale of `node` at the current time:
  /// the per-resource minimum across all open degradation windows.
  void refresh_node_scales(int node);
  void audit_event(const char* kind, std::int64_t job, std::string detail);

  sim::Engine& engine_;
  FaultPlan plan_;
  yarn::ResourceManager* rm_ = nullptr;
  std::vector<cluster::Node*> nodes_;
  FaultStats stats_;
};

}  // namespace mron::faults
