// Host-side self-profiler: the sixth recorder pillar.
//
// The five flight-recorder pillars measure the *simulated* cluster; this one
// measures the *simulator* — where the process's own wall-clock time and
// memory go. Three coordinated views:
//
//   1. Scoped frames. `HOST_PROF_SCOPE("engine.dispatch")` opens an RAII
//      frame on the calling thread's frame stack; per-(path, label) call
//      count / total / max wall-nanos aggregate into a tree. Frame stacks
//      are thread-local (safe under the `--jobs=N` work-stealing runner):
//      the hot path touches only the caller's own ThreadState — no lock, no
//      atomic — and a mutex is taken only when a thread first attaches
//      (Activation) and at export, when the per-thread trees are merged.
//   2. Engine dispatch accounting. When a profiler is attached, the engine
//      stamps every scheduled event with a coarse subsystem category
//      (HostCat, inherited from the scheduling context via CatScope) and
//      charges the wall delta between category *transitions* to the
//      category of the run that just ended — "host-ns per event per
//      subsystem" with one clock read per run of same-category events, so
//      the per-subsystem totals sum to the steady loop's wall time by
//      construction while the clock cost amortizes across each run.
//   3. Memory + phases. Peak RSS (getrusage), current RSS (/proc), and
//      caller-registered arena byte counters (slot map, ready queue, series
//      store, trace buffer), split across an explicit Setup (construction)
//      vs Steady (event loop) phase boundary — the "is setup still O(n)?"
//      question made measurable.
//
// Host time is nondeterministic, so none of this may ever reach
// run_report.json: the profile exports through its own versioned document
// (`mron.host_profile/1`, see write_json) behind a separate --profile-out
// flag, and a regression test pins that run reports stay byte-identical
// with profiling on or off.
//
// Clocking: raw_ticks() reads the TSC on x86-64 (~5-10ns, an order cheaper
// than clock_gettime) and falls back to steady_clock elsewhere. Tick counts
// are stored raw and converted to nanoseconds at export, using a ratio
// measured between two (ticks, steady_clock) anchor pairs spanning the
// profiler's whole lifetime — no upfront calibration spin.
//
// The profiler *class* is always compiled (tests exercise it in both
// builds); the macros and every engine/simulation hook compile away under
// cmake -DMRON_OBS=OFF, so the unprofiled hot path pays nothing there.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/enabled.h"

namespace mron::obs {

class TraceRecorder;

/// Coarse subsystem taxonomy for engine dispatch accounting. Every event
/// carries the category of the context that scheduled it (see CatScope);
/// kEngine doubles as "unattributed".
enum class HostCat : std::uint8_t {
  kEngine = 0,
  kSharedServer,
  kMonitor,
  kDfs,
  kYarn,
  kAmTask,
  kTuner,
  kFaults,
  kCount,
};

inline constexpr int kNumHostCats = static_cast<int>(HostCat::kCount);

/// Stable snake_case names used as JSON keys ("engine", "shared_server",
/// "am_task", ...).
[[nodiscard]] const char* host_cat_name(HostCat c);

/// Process lifecycle phases. Setup = Simulation construction + dataset
/// placement; Steady = the event loop, and nothing else, so the
/// per-subsystem dispatch totals tile its wall by construction; Teardown =
/// everything after each drain (final recorder flush, result assembly,
/// export prep — and, on tuned multi-run sessions, the between-run tuner
/// bookkeeping). A profiler starts in kSetup; Simulation::run() flips to
/// kSteady around the loop and to kTeardown when it drains. Phases
/// re-entered on later runs accumulate.
enum class HostPhase : std::uint8_t {
  kSetup = 0,
  kSteady,
  kTeardown,
  kCount,
};

[[nodiscard]] const char* host_phase_name(HostPhase p);

/// One aggregate: call/event count, total and max duration (raw ticks).
struct HostStat {
  std::int64_t count = 0;
  std::int64_t total_ticks = 0;
  std::int64_t max_ticks = 0;

  void record(std::int64_t ticks) {
    ++count;
    total_ticks += ticks;
    if (ticks > max_ticks) max_ticks = ticks;
  }
};

namespace detail {
/// Thread-local subsystem category (see HostProfiler::CatScope). Lives
/// outside any profiler so category context survives Activation swaps, and
/// in the header so the CatScope hot path inlines to two TLS byte moves.
inline thread_local std::uint8_t g_tls_cat = 0;
}  // namespace detail

class HostProfiler {
 public:
  HostProfiler();
  HostProfiler(const HostProfiler&) = delete;
  HostProfiler& operator=(const HostProfiler&) = delete;
  ~HostProfiler();

  /// Cheap monotonic clock: TSC ticks on x86-64, steady_clock nanoseconds
  /// elsewhere. Only differences are meaningful; convert with ns_per_tick().
  /// Inline: the profiled dispatch loop reads it once per event.
  [[nodiscard]] static std::int64_t raw_ticks() {
#if defined(__x86_64__)
    // Invariant-TSC on every post-2008 x86-64: constant rate, monotonic,
    // ~5-10ns to read vs ~20-25ns for clock_gettime. Converted to ns at
    // export via the lifetime-spanning anchors.
    return static_cast<std::int64_t>(__builtin_ia32_rdtsc());
#else
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
#endif
  }

  /// Nanoseconds per raw tick, measured across the profiler's lifetime so
  /// far. ~1.0 on the steady_clock fallback.
  [[nodiscard]] double ns_per_tick() const;

  // --- Phases ------------------------------------------------------------

  /// Close the current phase (accumulating its wall ticks and snapshotting
  /// RSS) and open `p`. Re-entering the current phase is a no-op; phases
  /// may be re-entered and accumulate.
  void begin_phase(HostPhase p);
  [[nodiscard]] HostPhase phase() const { return phase_; }
  /// Wall-nanos accumulated in `p`, including the open phase's elapsed time.
  [[nodiscard]] std::int64_t phase_wall_ns(HostPhase p) const;

  // --- Engine dispatch accounting (single engine thread) -----------------

  /// Charge `ticks` of host time and `n` dispatched events to subsystem
  /// `cat`. The engine's profiled run loop calls this once per contiguous
  /// same-category run (so max_ticks tracks the worst *run*, not the worst
  /// single event); not thread-safe across engines (each Simulation owns
  /// its own profiler). Inline: on the dispatch hot path.
  void record_events(std::uint8_t cat, std::int64_t ticks, std::int64_t n) {
    if (cat >= kNumHostCats) cat = 0;
    cats_[cat].count += n;
    cats_[cat].total_ticks += ticks;
    if (ticks > cats_[cat].max_ticks) cats_[cat].max_ticks = ticks;
  }
  /// Single-event convenience form (a run of length one).
  void record_event(std::uint8_t cat, std::int64_t ticks) {
    record_events(cat, ticks, 1);
  }
  [[nodiscard]] const HostStat& subsystem(HostCat c) const {
    return cats_[static_cast<int>(c)];
  }
  /// Sum of all subsystem total ticks, in nanoseconds.
  [[nodiscard]] std::int64_t subsystem_total_ns() const;

  // --- Memory + metadata -------------------------------------------------

  /// Register/overwrite an arena byte counter (e.g. "engine.slot_map_bytes").
  /// Peak/current RSS are added automatically at export.
  void set_memory(const std::string& key, double bytes);
  /// Attach a metadata string (app name, node count, ...) to the export.
  void set_meta(const std::string& key, const std::string& value);

  /// Current process RSS in bytes (0 where /proc is unavailable) and peak
  /// RSS in bytes via getrusage.
  [[nodiscard]] static std::int64_t current_rss_bytes();
  [[nodiscard]] static std::int64_t peak_rss_bytes();

  // --- Export ------------------------------------------------------------

  /// Serialize the `mron.host_profile/1` document. Merges the per-thread
  /// frame trees; call only after worker threads using this profiler have
  /// quiesced. Does not reset state, so it may be called repeatedly (each
  /// export re-closes the open phase).
  void write_json(std::ostream& os);

  /// Optional host-time track in the Chrome trace: lays the per-subsystem
  /// host totals and the setup/steady phase walls out as spans under a
  /// synthetic "host" process (kHostTracePid). Host time is
  /// nondeterministic — only traces exported alongside --profile-out carry
  /// this lane.
  void emit_trace_track(TraceRecorder& trace);

  // --- Thread frame machinery --------------------------------------------

  /// One thread's frame tree. Node 0 is the root; children are found by
  /// label identity (string literals by contract of HOST_PROF_SCOPE), with
  /// a small linear scan — frame trees are shallow and narrow.
  struct FrameNode {
    const char* label = nullptr;
    std::uint32_t parent = 0;
    HostStat stat;
    std::vector<std::uint32_t> children;
  };
  struct ThreadState {
    std::vector<FrameNode> nodes;
    std::uint32_t current = 0;
    ThreadState() { nodes.emplace_back(); }
    std::uint32_t enter(const char* label);
  };

  /// RAII: make `p` the calling thread's active profiler (nullptr
  /// deactivates — frames become no-ops). Takes the registry mutex once to
  /// find-or-create this thread's ThreadState; nests and restores.
  class Activation {
   public:
    explicit Activation(HostProfiler* p);
    Activation(const Activation&) = delete;
    Activation& operator=(const Activation&) = delete;
    ~Activation();

   private:
    HostProfiler* prev_profiler_;
    ThreadState* prev_state_;
  };

  /// RAII scoped frame. `label` must be a string literal (stored by
  /// pointer). No-op when the thread has no active profiler.
  class Frame {
   public:
    explicit Frame(const char* label);
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;
    ~Frame();

   private:
    ThreadState* ts_;
    std::uint32_t parent_ = 0;
    std::int64_t t0_ = 0;
  };

  /// RAII thread-local subsystem category. The engine reads
  /// CatScope::current() when an event is scheduled (so events inherit the
  /// category of the code that scheduled them) and re-establishes the
  /// dispatched event's category around its callback (so re-arms inherit).
  class CatScope {
   public:
    explicit CatScope(HostCat c) : prev_(detail::g_tls_cat) {
      detail::g_tls_cat = static_cast<std::uint8_t>(c);
    }
    CatScope(const CatScope&) = delete;
    CatScope& operator=(const CatScope&) = delete;
    ~CatScope() { detail::g_tls_cat = prev_; }
    [[nodiscard]] static std::uint8_t current() { return detail::g_tls_cat; }

   private:
    std::uint8_t prev_;
  };

  /// The calling thread's active profiler (nullptr when none).
  [[nodiscard]] static HostProfiler* current();

  /// Find-or-create the calling thread's ThreadState (takes the registry
  /// mutex). Activation does this for you.
  [[nodiscard]] ThreadState* acquire_thread_state();

 private:
  // Clock anchors for tick->ns conversion, taken at construction.
  std::int64_t anchor_ticks_;
  std::int64_t anchor_steady_ns_;

  HostPhase phase_ = HostPhase::kSetup;
  std::int64_t phase_start_ticks_;
  std::int64_t phase_ticks_[static_cast<int>(HostPhase::kCount)] = {};
  std::int64_t phase_rss_bytes_[static_cast<int>(HostPhase::kCount)] = {};

  HostStat cats_[kNumHostCats];

  std::map<std::string, double> memory_;
  std::map<std::string, std::string> meta_;

  mutable std::mutex mu_;  // guards threads_ registration + export merge
  std::vector<std::pair<std::thread::id, std::unique_ptr<ThreadState>>>
      threads_;
};

/// Synthetic Chrome-trace pid for the host-time lane (the tuner lane uses
/// 1 << 20).
inline constexpr int kHostTracePid = (1 << 20) + 1;

/// Version tag of the host-profile document.
inline constexpr const char* kHostProfileSchema = "mron.host_profile/1";

}  // namespace mron::obs

// Scoped-frame + category macros: active only in MRON_OBS builds, so the
// compiled-out configuration pays nothing at the instrumentation sites.
#if MRON_OBS_ENABLED
#define MRON_HP_CONCAT2(a, b) a##b
#define MRON_HP_CONCAT(a, b) MRON_HP_CONCAT2(a, b)
#define HOST_PROF_SCOPE(label)     \
  ::mron::obs::HostProfiler::Frame \
  MRON_HP_CONCAT(mron_hp_frame_, __LINE__)(label)
#define HOST_PROF_CATEGORY(cat)       \
  ::mron::obs::HostProfiler::CatScope \
  MRON_HP_CONCAT(mron_hp_cat_, __LINE__)(::mron::obs::HostCat::cat)
#else
#define HOST_PROF_SCOPE(label) \
  do {                         \
  } while (false)
#define HOST_PROF_CATEGORY(cat) \
  do {                          \
  } while (false)
#endif
