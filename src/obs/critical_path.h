// Causal critical-path builder — the fifth recorder pillar.
//
// The AM, RM, and task models emit causal edges as the run unfolds
// (submit → container grant → attempt start → map done → fetch → reduce
// wave → job finish, plus retry/backoff and speculation edges under fault
// plans). Each edge carries a blame category; after the engine drains the
// longest path to each job's finish node is extracted and its wall time
// attributed to the fixed taxonomy below. Everything here is sim-time
// only and append-ordered, so the extracted path — and the JSON block it
// becomes in the run report — is a pure function of the simulated run,
// byte-identical at any `--jobs` value.
//
// Nodes are identified by (job, kind, a, b): `kind` is a string literal
// ("map_done", "container_grant", ...) and a/b are small integers (task
// index, attempt). `node()` is find-or-create, so producers and consumers
// in different components can refer to the same event without sharing
// handles: the AM creates "reduce_shuffle_done" edges at map-output
// delivery time, and the reduce task stamps the same node when its
// shuffle actually completes.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <tuple>
#include <vector>

namespace mron::obs {

/// Where critical-path time is charged. The order is the export order —
/// stable, additions go at the end.
enum class Blame {
  SchedWait,      ///< waiting for a container grant (queueing, backoff slot)
  MapCompute,     ///< map read + map function + collect
  SpillMerge,     ///< sort/spill/merge on either side
  ShuffleNet,     ///< fetching map output across the fabric
  ReduceCompute,  ///< reduce function + output write
  RetryRecovery,  ///< failed attempts, backoff, lost-output re-execution
  Speculation,    ///< a speculative attempt won the race
};
inline constexpr int kNumBlames = 7;

/// The stable taxonomy string for a category ("sched_wait", ...).
[[nodiscard]] const char* blame_name(Blame b);

using CpNode = std::int64_t;
inline constexpr CpNode kInvalidCpNode = -1;

/// One edge of an extracted path: the interval [t0, t1] between two
/// stamped nodes, charged to `blame`.
struct CpSegment {
  CpNode from = kInvalidCpNode;
  CpNode to = kInvalidCpNode;
  const char* from_kind = "";
  const char* to_kind = "";
  double t0 = 0.0;
  double t1 = 0.0;
  Blame blame = Blame::SchedWait;
  [[nodiscard]] double secs() const { return t1 - t0; }
};

class CriticalPathBuilder {
 public:
  /// Find-or-create the node (job, kind, a, b). `kind` must be a string
  /// literal (stored by pointer for export, compared by value).
  CpNode node(std::int64_t job, const char* kind, std::int64_t a = 0,
              std::int64_t b = 0);

  /// Record that the node's event happened at sim-time `time` on trace
  /// process `pid` / lane `tid` (pid < 0 = no trace location; flow events
  /// skip it). Re-stamping overwrites — last writer wins.
  void stamp(CpNode n, double time, int pid = -1, int tid = 0);

  /// node() + stamp() in one call.
  CpNode stamped(std::int64_t job, const char* kind, double time,
                 std::int64_t a = 0, std::int64_t b = 0, int pid = -1,
                 int tid = 0);

  /// Causal edge `from` → `to`; the interval between their stamps is
  /// charged to `blame` if the edge lands on the critical path.
  void edge(CpNode from, CpNode to, Blame blame);

  /// Declare `n` the job's finish node (extraction target for the report).
  void mark_job_finish(std::int64_t job, CpNode n);

  /// The job's most recently stamped node, or kInvalidCpNode — the
  /// provisional extraction target for mid-run consumers (tuner audit).
  [[nodiscard]] CpNode latest_node(std::int64_t job) const;

  /// Owning job of a node (kInvalidCpNode-safe; returns -1 then).
  [[nodiscard]] std::int64_t job_of(CpNode n) const;

  [[nodiscard]] bool valid(CpNode n) const {
    return n >= 0 && static_cast<std::size_t>(n) < nodes_.size();
  }
  [[nodiscard]] bool is_stamped(CpNode n) const {
    return valid(n) && nodes_[static_cast<std::size_t>(n)].stamped;
  }
  [[nodiscard]] int pid(CpNode n) const {
    return valid(n) ? nodes_[static_cast<std::size_t>(n)].pid : -1;
  }
  [[nodiscard]] int tid(CpNode n) const {
    return valid(n) ? nodes_[static_cast<std::size_t>(n)].tid : 0;
  }
  [[nodiscard]] double time(CpNode n) const {
    return valid(n) ? nodes_[static_cast<std::size_t>(n)].time : 0.0;
  }
  [[nodiscard]] const char* kind(CpNode n) const {
    return valid(n) ? nodes_[static_cast<std::size_t>(n)].kind : "";
  }

  /// Longest path ending at `end`, oldest segment first. Backward
  /// last-arrival walk: at each node, follow the in-edge whose source has
  /// the greatest stamp (ties: earliest-inserted edge), skipping unstamped
  /// sources, stamps in the future, and already-visited nodes. Because
  /// each segment spans exactly [from.time, to.time], the segment times
  /// telescope: their sum is end.time − path_start.time exactly.
  [[nodiscard]] std::vector<CpSegment> extract(CpNode end) const;

  /// Jobs whose finish node was marked, keyed by job id (sorted).
  [[nodiscard]] const std::map<std::int64_t, CpNode>& finished_jobs() const {
    return finish_;
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  /// Per-blame seconds along `segments` (index = static_cast<int>(Blame)).
  static std::vector<double> blame_breakdown(
      const std::vector<CpSegment>& segments);

  /// The `critical_path` run-report object:
  /// {"jobs":[{"id","segments":[{"from","to","t0","t1","secs","blame"}],
  ///           "blame":{<all 7 categories>}}],
  ///  "blame_totals":{<all 7 categories>}}
  void write_json(std::ostream& os) const;

 private:
  struct InEdge {
    CpNode from = kInvalidCpNode;
    Blame blame = Blame::SchedWait;
  };
  struct Node {
    std::int64_t job = -1;
    const char* kind = "";
    double time = 0.0;
    bool stamped = false;
    int pid = -1;
    int tid = 0;
    std::vector<InEdge> in_edges;
  };

  std::vector<Node> nodes_;
  // Key carries the kind by value: literal pointer identity is not
  // guaranteed across translation units.
  std::map<std::tuple<std::int64_t, std::string, std::int64_t, std::int64_t>,
           CpNode>
      index_;
  std::map<std::int64_t, CpNode> finish_;  ///< job → finish node
  std::map<std::int64_t, CpNode> latest_;  ///< job → last stamped node
  std::size_t edge_count_ = 0;
};

}  // namespace mron::obs
