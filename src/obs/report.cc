#include "obs/report.h"

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"
#include "obs/recorder.h"

namespace mron::obs {

namespace {

void write_number_map(std::ostream& os,
                      const std::map<std::string, double>& m) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) os << ",";
    first = false;
    write_json_string(os, k);
    os << ":";
    write_json_number(os, v);
  }
  os << "}";
}

}  // namespace

void RunReport::set_meta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

void RunReport::add_job(ReportJob job) { jobs_.push_back(std::move(job)); }

void RunReport::set_faults(std::map<std::string, double> faults) {
  faults_ = std::move(faults);
}

void RunReport::set_dfs(std::map<std::string, double> dfs) {
  dfs_ = std::move(dfs);
}

std::map<std::string, double> RunReport::run_totals() const {
  std::map<std::string, double> totals;
  totals["jobs"] = static_cast<double>(jobs_.size());
  double first_submit = 0.0, last_finish = 0.0;
  bool any = false;
  for (const ReportJob& j : jobs_) {
    if (!any || j.submit_time < first_submit) first_submit = j.submit_time;
    if (!any || j.finish_time > last_finish) last_finish = j.finish_time;
    any = true;
    for (const auto& [phase, counters] : j.phases) {
      for (const auto& [name, value] : counters) {
        totals[phase + "." + name] += value;
      }
    }
    for (const char* summed :
         {"failed_attempts", "spilled_records", "speculative_launches",
          "speculative_wins", "injected_failures", "fetch_failures",
          "lost_maps_reexecuted"}) {
      const auto it = j.stats.find(summed);
      if (it != j.stats.end()) totals[summed] += it->second;
    }
  }
  totals["exec_secs"] = any ? last_finish - first_submit : 0.0;
  return totals;
}

void RunReport::write_json(std::ostream& os, const Recorder* rec) const {
  os << "{\"schema\":";
  write_json_string(os, kRunReportSchema);
  os << ",\"meta\":{";
  bool first = true;
  for (const auto& [k, v] : meta_) {
    if (!first) os << ",";
    first = false;
    write_json_string(os, k);
    os << ":";
    write_json_string(os, v);
  }
  os << "},\"jobs\":[";
  first = true;
  for (const ReportJob& j : jobs_) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << j.id << ",\"name\":";
    write_json_string(os, j.name);
    os << ",\"submit_time\":";
    write_json_number(os, j.submit_time);
    os << ",\"finish_time\":";
    write_json_number(os, j.finish_time);
    os << ",\"counters\":{";
    bool pfirst = true;
    for (const auto& [phase, counters] : j.phases) {
      if (!pfirst) os << ",";
      pfirst = false;
      write_json_string(os, phase);
      os << ":";
      write_number_map(os, counters);
    }
    os << "},\"stats\":";
    write_number_map(os, j.stats);
    os << ",\"config\":";
    write_number_map(os, j.config);
    os << "}";
  }
  os << "],\"totals\":";
  write_number_map(os, run_totals());
  os << ",\"faults\":";
  write_number_map(os, faults_);
  // Storage: placement counts and re-replication pipeline tallies.
  os << ",\"dfs\":";
  write_number_map(os, dfs_);

  // Causal critical path: per-job longest-path segments and run-level
  // blame totals (obs/critical_path.h). Empty jobs array without a
  // recorder or when nothing emitted edges.
  os << ",\"critical_path\":";
  if (rec != nullptr) {
    rec->critical_path().write_json(os);
  } else {
    CriticalPathBuilder{}.write_json(os);  // full taxonomy, all zeros
  }

  // Flight-recorder sections: scalars (histograms contribute interpolated
  // quantiles under <name>.p50/.p95/.p99 plus the overflow-clamp marker
  // pair <name>.overflow_count / <name>.p99_clamped), whole-run series,
  // audit volume.
  os << ",\"metrics\":";
  std::map<std::string, double> scalars;
  if (rec != nullptr) {
    const MetricsRegistry& m = rec->metrics();
    for (const std::string& name : m.names()) {
      scalars[name] = m.value(name);
      if (m.is_histogram(name)) {
        scalars[name + ".p50"] = m.quantile(name, 0.50);
        scalars[name + ".p95"] = m.quantile(name, 0.95);
        scalars[name + ".p99"] = m.quantile(name, 0.99);
        scalars[name + ".overflow_count"] =
            static_cast<double>(m.overflow_count(name));
        scalars[name + ".p99_clamped"] =
            m.quantile_clamped(name, 0.99) ? 1.0 : 0.0;
      }
    }
  }
  write_number_map(os, scalars);
  os << ",\"series\":";
  if (rec != nullptr) {
    rec->series().write_json(os);
  } else {
    os << "{\"series\":[]}";
  }
  os << ",\"audit\":{\"events\":"
     << (rec != nullptr ? rec->audit().size() : std::size_t{0}) << "}}\n";
}

std::string RunReport::to_json(const Recorder* rec) const {
  std::ostringstream os;
  write_json(os, rec);
  return os.str();
}

bool ReportCollector::offer(const std::string& key, const std::string& json,
                            const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  // Weak comparison: an equal key re-offers an identical run (identical
  // bytes by the determinism contract), so rewriting is a no-op in content
  // and keeps "the last write is the winner" trivially true.
  if (!best_json_.empty() && key < best_key_) return false;
  best_key_ = key;
  best_json_ = json;
  std::ofstream out(path);
  MRON_CHECK_MSG(out.good(), "cannot open " << path);
  out << best_json_;
  return true;
}

bool ReportCollector::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return best_json_.empty();
}

}  // namespace mron::obs
