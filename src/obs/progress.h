// Wall-clock-throttled stderr heartbeat for long runs.
//
// The engine calls tick() every few thousand dispatched events (see
// Engine::set_progress); the meter prints at most one line per interval:
//
//   [label] 12.0s: 24.5M events (2.04M ev/s), sim t=1830.2s, rss=512 MiB
//
// Host-side only and off by default: it writes to stderr, never to any
// exported artifact, so enabling it cannot perturb report determinism.
// Plain code — available in MRON_OBS=OFF builds too.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>

#include "obs/host_profile.h"

namespace mron::obs {

class ProgressMeter {
 public:
  explicit ProgressMeter(std::string label, double min_interval_s = 1.0)
      : label_(std::move(label)),
        min_interval_s_(min_interval_s),
        start_(Clock::now()),
        last_(start_) {}

  /// Report progress; prints only when min_interval_s has elapsed since the
  /// last line.
  void tick(std::int64_t events, double sim_time) {
    const Clock::time_point now = Clock::now();
    const double since = secs(now - last_);
    if (since < min_interval_s_) return;
    const double elapsed = secs(now - start_);
    const double rate =
        static_cast<double>(events - last_events_) / since / 1e6;
    const long long rss_mib = HostProfiler::current_rss_bytes() >> 20;
    std::fprintf(stderr,
                 "[%s] %.1fs: %.2fM events (%.2fM ev/s), sim t=%.1fs, "
                 "rss=%lld MiB\n",
                 label_.c_str(), elapsed,
                 static_cast<double>(events) / 1e6, rate, sim_time, rss_mib);
    last_ = now;
    last_events_ = events;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static double secs(Clock::duration d) {
    return std::chrono::duration<double>(d).count();
  }

  std::string label_;
  double min_interval_s_;
  Clock::time_point start_;
  Clock::time_point last_;
  std::int64_t last_events_ = 0;
};

}  // namespace mron::obs
