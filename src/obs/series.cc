#include "obs/series.h"

#include "common/check.h"
#include "obs/json.h"

namespace mron::obs {

Series::Series(std::size_t capacity) : capacity_(capacity) {
  MRON_CHECK_MSG(capacity >= 2, "a series needs room to downsample");
}

void Series::push(SimTime t, double v) {
  const std::uint64_t index = offered_++;
  if (index % stride_ != 0) return;
  if (points_.size() == capacity_) {
    // 2x downsample: keep the even-position points (push indices that are
    // multiples of the doubled stride) and double the acceptance stride.
    // Everything is arithmetic on the push index, so the surviving set is
    // identical for identical push sequences.
    for (std::size_t i = 1; 2 * i < points_.size(); ++i) {
      points_[i] = points_[2 * i];
    }
    points_.resize((points_.size() + 1) / 2);
    stride_ *= 2;
    if (index % stride_ != 0) return;  // odd capacity: sample now off-stride
  }
  points_.push_back(SeriesPoint{t, v});
}

const SeriesPoint& Series::at(std::size_t i) const {
  MRON_CHECK(i < points_.size());
  return points_[i];
}

Series& SeriesStore::series(const std::string& name, std::size_t capacity) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.try_emplace(name, capacity).first;
  }
  return it->second;
}

const Series* SeriesStore::find(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

bool SeriesStore::has(const std::string& name) const {
  return series_.find(name) != series_.end();
}

std::vector<std::string> SeriesStore::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

void SeriesStore::write_json(std::ostream& os) const {
  os << "{\"series\":[";
  bool first = true;
  for (const auto& [name, s] : series_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    write_json_string(os, name);
    os << ",\"stride\":" << s.stride() << ",\"offered\":" << s.offered()
       << ",\"points\":[";
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (i > 0) os << ",";
      os << "[";
      write_json_number(os, s.at(i).time);
      os << ",";
      write_json_number(os, s.at(i).value);
      os << "]";
    }
    os << "]}";
  }
  os << "]}";
}

}  // namespace mron::obs
