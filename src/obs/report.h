// Versioned run report: one self-describing JSON artifact per run.
//
// A RunReport rolls a whole simulation up into the comparable unit the
// benchmarking follow-ups to the paper argue for: run metadata (what ran,
// on what seed, under what configuration), per-job counter rollups
// (task -> job done by the AM, job -> run done here), every registry metric
// scalar (histograms with interpolated p50/p95/p99), the whole-run time
// series (node occupancy, wave progress, tuner convergence), and the audit
// event count. tools/mron_report.py renders it as an HTML report;
// tools/mron_diff.py compares two of them.
//
// Determinism: every container is name-ordered and every number goes
// through write_json_number, so the same simulation serializes to the same
// bytes — the property the byte-identical-across---jobs acceptance test
// pins down.
//
// The obs layer knows nothing about MapReduce: ReportJob is a generic bag
// of named numbers, filled by mapreduce/report_rollup.h from a JobResult.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mron::obs {

class Recorder;

/// Bump when the JSON layout changes shape (tools check this).
/// /2: added the top-level `faults` block (fault-injection plan parameters
/// and recovery tallies; empty object on fault-free runs).
/// /3: added the top-level `critical_path` block (per-job longest-path
/// segments + run-level blame totals) and, per histogram metric,
/// `<name>.overflow_count` / `<name>.p99_clamped` scalars.
/// /4: added the top-level `dfs` block (storage placement + re-replication
/// pipeline tallies; always present — blocks_total et al. describe the
/// dataset even on fault-free runs).
inline constexpr const char* kRunReportSchema = "mron.run_report/4";

/// One job's rollup inside a report. `phases` maps a phase name ("map",
/// "reduce") to its counter rollup; `stats` holds job-level scalars
/// (task counts, duration aggregates); `config` the parameter vector the
/// job ran with.
struct ReportJob {
  std::int64_t id = -1;
  std::string name;
  double submit_time = 0.0;
  double finish_time = 0.0;
  std::map<std::string, std::map<std::string, double>> phases;
  std::map<std::string, double> stats;
  std::map<std::string, double> config;
};

class RunReport {
 public:
  /// Free-form run metadata (app, seed, strategy, cluster...). Insertion
  /// order is preserved in the output; re-setting a key overwrites.
  void set_meta(const std::string& key, const std::string& value);
  void add_job(ReportJob job);
  /// Fault-injection block (plan parameters + recovery tallies), written
  /// under the top-level `faults` key. Empty (the default) serializes as an
  /// empty object — the self-describing "this run was fault-free" marker.
  void set_faults(std::map<std::string, double> faults);
  /// Storage block (placement counts + re-replication pipeline tallies),
  /// written under the top-level `dfs` key.
  void set_dfs(std::map<std::string, double> dfs);

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& meta()
      const {
    return meta_;
  }
  [[nodiscard]] const std::vector<ReportJob>& jobs() const { return jobs_; }

  /// Run-level rollup: per-phase counters summed across jobs, plus
  /// exec_secs (first submit -> last finish), jobs, failed_attempts.
  [[nodiscard]] std::map<std::string, double> run_totals() const;

  /// Serialize. `rec` contributes the metrics/series/audit sections and may
  /// be null (e.g. MRON_OBS=OFF builds), leaving them empty.
  void write_json(std::ostream& os, const Recorder* rec) const;
  [[nodiscard]] std::string to_json(const Recorder* rec) const;

 private:
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<ReportJob> jobs_;
  std::map<std::string, double> faults_;
  std::map<std::string, double> dfs_;
};

/// Picks which run's report a multi-run invocation exports. Runs race on
/// worker threads, so "last writer wins" is not deterministic; instead each
/// finished run offers (key, serialized report) and the collector keeps the
/// lexicographically greatest key. Distinct runs carry distinct keys (the
/// key embeds seed/phase/config digest); equal keys mean identical runs,
/// whose serialized bytes match — so the surviving file is byte-identical
/// at any --jobs value.
class ReportCollector {
 public:
  /// Record `json` under `key`; when it (weakly) beats the current best,
  /// rewrite `path` immediately, so the file is always whole and the last
  /// write is the final winner. Returns true when it won.
  bool offer(const std::string& key, const std::string& json,
             const std::string& path);

  [[nodiscard]] bool empty() const;

 private:
  mutable std::mutex mu_;
  std::string best_key_;
  std::string best_json_;
};

}  // namespace mron::obs
