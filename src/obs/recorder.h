// The flight recorder: one bundle of five of the six observability pillars
// — metrics (scalars + change-only rings), sim-time trace spans, the tuner
// decision audit log, run-long time series (bounded, 2x-downsampled
// whole-run timelines — the paper-figure shapes), and the causal
// critical-path DAG (blame attribution for end-to-end latency). The sixth
// pillar — the host self-profiler (obs/host_profile.h) — lives outside the
// bundle: its data is wall-clock nondeterministic, so it must never feed
// the deterministic exports these five produce.
//
// A Simulation constructed with observe=true owns a Recorder and hands a
// pointer to its Engine; every instrumentation site reaches it through
// `engine.recorder()` (nullptr when observation is off or compiled out, so
// hooks cost one branch). The bundle is deliberately dumb — each pillar is
// independently testable and exportable.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "obs/audit.h"
#include "obs/critical_path.h"
#include "obs/enabled.h"
#include "obs/metrics.h"
#include "obs/series.h"
#include "obs/trace.h"

namespace mron::obs {

class Recorder {
 public:
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }
  [[nodiscard]] AuditLog& audit() { return audit_; }
  [[nodiscard]] const AuditLog& audit() const { return audit_; }
  [[nodiscard]] SeriesStore& series() { return series_; }
  [[nodiscard]] const SeriesStore& series() const { return series_; }
  [[nodiscard]] CriticalPathBuilder& critical_path() {
    return critical_path_;
  }
  [[nodiscard]] const CriticalPathBuilder& critical_path() const {
    return critical_path_;
  }

  /// Pull-model publishing for hot components: instead of writing gauges on
  /// every state change, register a hook that refreshes them, and the
  /// sampling clock calls flush() once per tick. The publisher must outlive
  /// the recorder's last flush (in practice: the simulation owns both).
  void add_flush_hook(std::function<void()> hook) {
    flush_hooks_.push_back(std::move(hook));
  }
  void flush() {
    for (const auto& hook : flush_hooks_) hook();
  }

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
  AuditLog audit_;
  SeriesStore series_;
  CriticalPathBuilder critical_path_;
  std::vector<std::function<void()>> flush_hooks_;
};

}  // namespace mron::obs
