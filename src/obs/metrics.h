// MetricsRegistry — named counters, gauges, and fixed-bucket histograms
// with cheap sim-time sampling into ring-buffered time series.
//
// Publishers (SharedServer, ClusterMonitor, the RM, the task models) look a
// metric up once and keep the returned reference: registry entries live in a
// std::map, so handles stay valid for the registry's lifetime and the hot
// path is a single add/store. The ClusterMonitor drives sample(), which
// snapshots every metric's scalar into its per-metric ring buffer — the
// time-series view behind --metrics-out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.h"

namespace mron::obs {

/// Default ring capacity: at the monitor's 1 s period this covers the last
/// ~8.5 simulated minutes of every metric, wrapping thereafter.
inline constexpr std::size_t kDefaultSeriesCapacity = 512;

struct TimePoint {
  SimTime time = 0.0;
  double value = 0.0;
};

/// Fixed-capacity ring buffer of (time, value) samples, oldest first.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = kDefaultSeriesCapacity);

  void push(SimTime t, double v);
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Samples evicted by ring wrap since construction.
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  /// i-th surviving sample, oldest first (i < size()).
  [[nodiscard]] const TimePoint& at(std::size_t i) const;

 private:
  std::vector<TimePoint> buf_;  ///< grows lazily up to capacity_, then wraps
  std::size_t capacity_ = kDefaultSeriesCapacity;
  std::size_t head_ = 0;  ///< index of the oldest sample
  std::size_t size_ = 0;
  std::size_t dropped_ = 0;
};

class MetricsRegistry;

class Counter {
 public:
  void add(double delta = 1.0);
  [[nodiscard]] double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
  /// Set when the counter lives in a registry: writes enqueue it for the
  /// next sample() so sampling only visits metrics that actually moved.
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t index_ = 0;
};

class Gauge {
 public:
  void set(double v);
  [[nodiscard]] double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
  MetricsRegistry* registry_ = nullptr;  ///< see Counter::registry_
  std::uint32_t index_ = 0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order; one implicit overflow bucket catches everything above the last.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket i covers (bounds[i-1], bounds[i]]; index bounds().size() is the
  /// overflow bucket.
  [[nodiscard]] std::int64_t bucket(std::size_t i) const;
  /// Interpolated quantile (Prometheus-style): linear within the bucket the
  /// rank falls into, assuming uniform spread. A rank landing in the
  /// overflow bucket returns the last finite bound (nothing to interpolate
  /// against); an empty histogram returns 0. `q` is clamped to [0, 1].
  [[nodiscard]] double quantile(double q) const;
  /// Samples above the last finite bound (the implicit overflow bucket).
  [[nodiscard]] std::int64_t overflow_count() const {
    return counts_.empty() ? 0 : counts_.back();
  }
  /// True when quantile(q)'s rank lands in the overflow bucket — the
  /// returned value is the clamp, not an interpolation, and should be
  /// flagged wherever it is reported.
  [[nodiscard]] bool quantile_clamped(double q) const;

  void merge(const Histogram& other);

 private:
  friend class MetricsRegistry;
  std::vector<double> bounds_;
  std::vector<std::int64_t> counts_;  ///< bounds_.size() + 1 entries
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  MetricsRegistry* registry_ = nullptr;  ///< see Counter::registry_
  std::uint32_t index_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  // Non-copyable/movable: handles and the dirty list point back into this
  // registry.
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Re-requesting a name with a different kind aborts: a
  /// metric name means one thing for the whole run.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  [[nodiscard]] std::size_t size() const { return metrics_.size(); }
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] bool has(const std::string& name) const;
  /// Scalar view of any metric (counter/gauge value, histogram count), or
  /// 0 for unknown names.
  [[nodiscard]] double value(const std::string& name) const;
  /// Interpolated quantile of a histogram metric; 0 for unknown names or
  /// non-histogram kinds. Part of the scalar view alongside value().
  [[nodiscard]] double quantile(const std::string& name, double q) const;
  /// Histogram::overflow_count by name; 0 for unknown/non-histogram names.
  [[nodiscard]] std::int64_t overflow_count(const std::string& name) const;
  /// Histogram::quantile_clamped by name; false for unknown names.
  [[nodiscard]] bool quantile_clamped(const std::string& name,
                                      double q) const;
  [[nodiscard]] bool is_histogram(const std::string& name) const;
  [[nodiscard]] const TimeSeries* series(const std::string& name) const;

  /// Snapshot the metrics written since the previous call into their
  /// ring-buffered series. A point is recorded only when the value actually
  /// changed (a metric's first sample always records), so idle metrics cost
  /// nothing per tick — readers treat each series as a step function
  /// between its timestamped points.
  void sample(SimTime now);

  /// Fold `other` in: counters add, gauges take the other's latest value,
  /// histograms merge bucket-wise (bounds must match). Series are not
  /// merged — they describe one run's sim-time axis.
  void merge(const MetricsRegistry& other);

  /// {"metrics":[{name, kind, value, ... , "series":[[t,v],...]}, ...]}
  void write_json(std::ostream& os) const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    Kind kind = Kind::Counter;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
    TimeSeries series;
    double last_sampled = 0.0;  ///< scalar at the last recorded point
    bool ever_sampled = false;
    bool queued = false;  ///< already on the dirty list this tick
    [[nodiscard]] double scalar() const;
  };
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  Entry& entry_of(const std::string& name, Kind kind);
  void mark_dirty(std::uint32_t index) {
    Entry& e = *by_index_[index];
    if (!e.queued) {
      e.queued = true;
      dirty_.push_back(index);
    }
  }

  std::map<std::string, Entry> metrics_;  // ordered: deterministic export
  std::vector<Entry*> by_index_;          // creation order; entries are stable
  std::vector<std::uint32_t> dirty_;      // indices written since last sample
};

inline void Counter::add(double delta) {
  value_ += delta;
  if (registry_ != nullptr) registry_->mark_dirty(index_);
}

inline void Gauge::set(double v) {
  value_ = v;
  if (registry_ != nullptr) registry_->mark_dirty(index_);
}

}  // namespace mron::obs
