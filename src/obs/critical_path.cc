#include "obs/critical_path.h"

#include <algorithm>

#include "obs/json.h"

namespace mron::obs {

const char* blame_name(Blame b) {
  switch (b) {
    case Blame::SchedWait: return "sched_wait";
    case Blame::MapCompute: return "map_compute";
    case Blame::SpillMerge: return "spill_merge";
    case Blame::ShuffleNet: return "shuffle_net";
    case Blame::ReduceCompute: return "reduce_compute";
    case Blame::RetryRecovery: return "retry_recovery";
    case Blame::Speculation: return "speculation";
  }
  return "unknown";
}

CpNode CriticalPathBuilder::node(std::int64_t job, const char* kind,
                                 std::int64_t a, std::int64_t b) {
  const auto key = std::make_tuple(job, std::string(kind), a, b);
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const CpNode id = static_cast<CpNode>(nodes_.size());
  Node n;
  n.job = job;
  n.kind = kind;
  nodes_.push_back(std::move(n));
  index_.emplace(key, id);
  return id;
}

void CriticalPathBuilder::stamp(CpNode n, double time, int pid, int tid) {
  if (!valid(n)) return;
  Node& node = nodes_[static_cast<std::size_t>(n)];
  node.time = time;
  node.stamped = true;
  node.pid = pid;
  node.tid = tid;
  latest_[node.job] = n;
}

CpNode CriticalPathBuilder::stamped(std::int64_t job, const char* kind,
                                    double time, std::int64_t a,
                                    std::int64_t b, int pid, int tid) {
  const CpNode n = node(job, kind, a, b);
  stamp(n, time, pid, tid);
  return n;
}

void CriticalPathBuilder::edge(CpNode from, CpNode to, Blame blame) {
  if (!valid(from) || !valid(to) || from == to) return;
  nodes_[static_cast<std::size_t>(to)].in_edges.push_back({from, blame});
  ++edge_count_;
}

void CriticalPathBuilder::mark_job_finish(std::int64_t job, CpNode n) {
  if (!valid(n)) return;
  finish_[job] = n;
}

CpNode CriticalPathBuilder::latest_node(std::int64_t job) const {
  const auto it = latest_.find(job);
  return it == latest_.end() ? kInvalidCpNode : it->second;
}

std::int64_t CriticalPathBuilder::job_of(CpNode n) const {
  return valid(n) ? nodes_[static_cast<std::size_t>(n)].job : -1;
}

std::vector<CpSegment> CriticalPathBuilder::extract(CpNode end) const {
  std::vector<CpSegment> out;
  if (!is_stamped(end)) return out;
  std::vector<char> visited(nodes_.size(), 0);
  CpNode cur = end;
  visited[static_cast<std::size_t>(cur)] = 1;
  // Each step visits a new node, so the walk is bounded by the node count
  // even if a malformed emitter ever produced a cycle.
  for (std::size_t guard = 0; guard <= nodes_.size(); ++guard) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    CpNode best = kInvalidCpNode;
    Blame best_blame = Blame::SchedWait;
    for (const InEdge& e : n.in_edges) {
      if (!is_stamped(e.from) || visited[static_cast<std::size_t>(e.from)]) {
        continue;
      }
      const Node& f = nodes_[static_cast<std::size_t>(e.from)];
      if (f.time > n.time) continue;  // not causal — ignore
      // Last arrival wins; strict > keeps the earliest-inserted edge on
      // ties, so extraction order never depends on emission races (there
      // are none — one engine thread — but the rule is still explicit).
      if (best == kInvalidCpNode ||
          f.time > nodes_[static_cast<std::size_t>(best)].time) {
        best = e.from;
        best_blame = e.blame;
      }
    }
    if (best == kInvalidCpNode) break;
    const Node& f = nodes_[static_cast<std::size_t>(best)];
    out.push_back({best, cur, f.kind, n.kind, f.time, n.time, best_blame});
    visited[static_cast<std::size_t>(best)] = 1;
    cur = best;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<double> CriticalPathBuilder::blame_breakdown(
    const std::vector<CpSegment>& segments) {
  std::vector<double> per(kNumBlames, 0.0);
  for (const CpSegment& s : segments) {
    per[static_cast<int>(s.blame)] += s.secs();
  }
  return per;
}

namespace {

void write_blame_map(std::ostream& os, const std::vector<double>& per) {
  os << '{';
  for (int b = 0; b < kNumBlames; ++b) {
    if (b != 0) os << ',';
    write_json_string(os, blame_name(static_cast<Blame>(b)));
    os << ':';
    write_json_number(os, per[static_cast<std::size_t>(b)]);
  }
  os << '}';
}

}  // namespace

void CriticalPathBuilder::write_json(std::ostream& os) const {
  std::vector<double> totals(kNumBlames, 0.0);
  os << "{\"jobs\":[";
  bool first_job = true;
  for (const auto& [job, end] : finish_) {
    if (!first_job) os << ',';
    first_job = false;
    const std::vector<CpSegment> segments = extract(end);
    const std::vector<double> per = blame_breakdown(segments);
    for (int b = 0; b < kNumBlames; ++b) {
      totals[static_cast<std::size_t>(b)] += per[static_cast<std::size_t>(b)];
    }
    os << "{\"id\":" << job << ",\"segments\":[";
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const CpSegment& s = segments[i];
      if (i != 0) os << ',';
      os << "{\"from\":";
      write_json_string(os, s.from_kind);
      os << ",\"to\":";
      write_json_string(os, s.to_kind);
      os << ",\"t0\":";
      write_json_number(os, s.t0);
      os << ",\"t1\":";
      write_json_number(os, s.t1);
      os << ",\"secs\":";
      write_json_number(os, s.secs());
      os << ",\"blame\":";
      write_json_string(os, blame_name(s.blame));
      os << '}';
    }
    os << "],\"blame\":";
    write_blame_map(os, per);
    os << '}';
  }
  os << "],\"blame_totals\":";
  write_blame_map(os, totals);
  os << '}';
}

}  // namespace mron::obs
