#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "obs/json.h"

namespace mron::obs {

TimeSeries::TimeSeries(std::size_t capacity) : capacity_(capacity) {
  MRON_CHECK(capacity > 0);
}

void TimeSeries::push(SimTime t, double v) {
  // Grow lazily up to capacity (most metrics record far fewer samples than
  // the cap; eagerly zeroing hundreds of full buffers would dominate small
  // runs), then wrap as a ring. When full, the oldest sample sits at head_,
  // so it is exactly the slot the new one overwrites — no modulo needed,
  // and this is the recorder's single hottest store.
  if (buf_.size() < capacity_) {
    buf_.push_back(TimePoint{t, v});
    ++size_;
    return;
  }
  buf_[head_] = TimePoint{t, v};
  ++head_;
  if (head_ == buf_.size()) head_ = 0;
  ++dropped_;
}

const TimePoint& TimeSeries::at(std::size_t i) const {
  MRON_CHECK(i < size_);
  return buf_[(head_ + i) % buf_.size()];
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MRON_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must ascend");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  if (registry_ != nullptr) registry_->mark_dirty(index_);
}

std::int64_t Histogram::bucket(std::size_t i) const {
  MRON_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the quantile in 1..count (ceil), then walk the buckets.
  const double rank = std::max(1.0, q * static_cast<double>(count_));
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double in_bucket = static_cast<double>(counts_[i]);
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    if (i >= bounds_.size()) {
      // Overflow bucket: unbounded above, so report the last finite edge.
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    const double lo = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
    const double hi = bounds_[i];
    return lo + (hi - lo) * ((rank - cum) / in_bucket);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

bool Histogram::quantile_clamped(double q) const {
  if (count_ == 0 || overflow_count() == 0) return false;
  q = std::min(1.0, std::max(0.0, q));
  // Same rank rule as quantile(): the rank is clamped exactly when it
  // falls past the samples in the finite buckets.
  const double rank = std::max(1.0, q * static_cast<double>(count_));
  return rank > static_cast<double>(count_ - overflow_count());
}

void Histogram::merge(const Histogram& other) {
  MRON_CHECK_MSG(bounds_ == other.bounds_,
                 "histogram merge requires identical bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

MetricsRegistry::Entry& MetricsRegistry::entry_of(const std::string& name,
                                                  Kind kind) {
  auto [it, inserted] = metrics_.try_emplace(name);
  if (inserted) {
    Entry& e = it->second;
    e.kind = kind;
    const auto index = static_cast<std::uint32_t>(by_index_.size());
    by_index_.push_back(&e);
    e.counter.registry_ = this;
    e.counter.index_ = index;
    e.gauge.registry_ = this;
    e.gauge.index_ = index;
    // New metrics start dirty so every series opens with its initial value.
    mark_dirty(index);
  } else {
    MRON_CHECK_MSG(it->second.kind == kind,
                   "metric '" << name << "' re-registered as another kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return entry_of(name, Kind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return entry_of(name, Kind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  Entry& e = entry_of(name, Kind::Histogram);
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    e.histogram->registry_ = e.counter.registry_;
    e.histogram->index_ = e.counter.index_;
  }
  return *e.histogram;
}

double MetricsRegistry::Entry::scalar() const {
  switch (kind) {
    case Kind::Counter: return counter.value();
    case Kind::Gauge: return gauge.value();
    case Kind::Histogram:
      return histogram ? static_cast<double>(histogram->count()) : 0.0;
  }
  return 0.0;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) out.push_back(name);
  return out;
}

bool MetricsRegistry::has(const std::string& name) const {
  return metrics_.find(name) != metrics_.end();
}

double MetricsRegistry::value(const std::string& name) const {
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? 0.0 : it->second.scalar();
}

double MetricsRegistry::quantile(const std::string& name, double q) const {
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::Histogram ||
      it->second.histogram == nullptr) {
    return 0.0;
  }
  return it->second.histogram->quantile(q);
}

std::int64_t MetricsRegistry::overflow_count(const std::string& name) const {
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::Histogram ||
      it->second.histogram == nullptr) {
    return 0;
  }
  return it->second.histogram->overflow_count();
}

bool MetricsRegistry::quantile_clamped(const std::string& name,
                                       double q) const {
  const auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::Histogram ||
      it->second.histogram == nullptr) {
    return false;
  }
  return it->second.histogram->quantile_clamped(q);
}

bool MetricsRegistry::is_histogram(const std::string& name) const {
  const auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.kind == Kind::Histogram;
}

const TimeSeries* MetricsRegistry::series(const std::string& name) const {
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : &it->second.series;
}

void MetricsRegistry::sample(SimTime now) {
  // Dirty-driven: only metrics written since the last sample are visited, so
  // a tick's cost tracks actual activity, not registry size. Change-only
  // recording on top of that: the series is a step function, so re-stamping
  // an unchanged value adds no information.
  for (const std::uint32_t idx : dirty_) {
    Entry& entry = *by_index_[idx];
    entry.queued = false;
    const double v = entry.scalar();
    if (entry.ever_sampled && v == entry.last_sampled) continue;
    entry.series.push(now, v);
    entry.last_sampled = v;
    entry.ever_sampled = true;
  }
  dirty_.clear();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, theirs] : other.metrics_) {
    switch (theirs.kind) {
      case Kind::Counter:
        counter(name).add(theirs.counter.value());
        break;
      case Kind::Gauge:
        gauge(name).set(theirs.gauge.value());
        break;
      case Kind::Histogram:
        if (theirs.histogram != nullptr) {
          histogram(name, theirs.histogram->bounds())
              .merge(*theirs.histogram);
        }
        break;
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"metrics\":[";
  bool first = true;
  for (const auto& [name, entry] : metrics_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    write_json_string(os, name);
    os << ",\"kind\":\""
       << (entry.kind == Kind::Counter
               ? "counter"
               : entry.kind == Kind::Gauge ? "gauge" : "histogram")
       << "\",\"value\":";
    write_json_number(os, entry.scalar());
    if (entry.kind == Kind::Histogram && entry.histogram != nullptr) {
      const Histogram& h = *entry.histogram;
      os << ",\"sum\":";
      write_json_number(os, h.sum());
      os << ",\"p50\":";
      write_json_number(os, h.quantile(0.50));
      os << ",\"p95\":";
      write_json_number(os, h.quantile(0.95));
      os << ",\"p99\":";
      write_json_number(os, h.quantile(0.99));
      os << ",\"overflow_count\":" << h.overflow_count();
      os << ",\"buckets\":[";
      for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
        if (i > 0) os << ",";
        os << "[";
        if (i < h.bounds().size()) {
          write_json_number(os, h.bounds()[i]);
        } else {
          os << "null";  // overflow bucket
        }
        os << "," << h.bucket(i) << "]";
      }
      os << "]";
    }
    os << ",\"series\":[";
    for (std::size_t i = 0; i < entry.series.size(); ++i) {
      if (i > 0) os << ",";
      os << "[";
      write_json_number(os, entry.series.at(i).time);
      os << ",";
      write_json_number(os, entry.series.at(i).value);
      os << "]";
    }
    os << "]}";
  }
  os << "]}\n";
}

}  // namespace mron::obs
