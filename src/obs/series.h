// Run-long time series: the flight recorder's fourth pillar.
//
// The MetricsRegistry's per-metric rings (metrics.h) are change-only step
// functions that *wrap* — old samples fall off, which is right for "what was
// the gauge doing lately" but wrong for the paper-figure shapes (Figures
// 4-16 are whole-run timelines: per-node utilization, wave progress, tuner
// convergence). A Series keeps whole-run coverage in bounded memory by
// deterministic 2x downsampling instead: when the buffer fills, every other
// point is dropped and the acceptance stride doubles, so the series always
// spans the full run at a resolution that halves as the run grows.
//
// Determinism contract: the surviving points are a pure function of the
// push sequence (the i-th push survives iff i % stride == 0 for the final
// stride) — no wall clock, no allocation-order dependence — so an exported
// series is byte-identical across repeated runs and across --jobs values.
//
// Publishers push either from the sampling clock (ClusterMonitor's tick and
// the Recorder flush hooks: node occupancy, RM queue depth, job wave
// progress) or from discrete decision points (the tuner's per-iteration
// state). Handles returned by SeriesStore::series() stay valid for the
// store's lifetime, mirroring the MetricsRegistry contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.h"

namespace mron::obs {

/// Default point budget per series. Runs shorter than this record every
/// push; longer runs halve their resolution as needed (a day-long run at a
/// 1 s tick still fits in ~512 points at stride 256).
inline constexpr std::size_t kDefaultSeriesPointBudget = 512;

struct SeriesPoint {
  SimTime time = 0.0;
  double value = 0.0;
};

/// One named series: bounded buffer with deterministic 2x downsampling.
class Series {
 public:
  explicit Series(std::size_t capacity = kDefaultSeriesPointBudget);

  /// Offer a sample. It is recorded only when the offer index is a multiple
  /// of the current stride; filling the buffer compacts it (keep every
  /// other point) and doubles the stride.
  void push(SimTime t, double v);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const SeriesPoint& at(std::size_t i) const;
  /// Current acceptance stride (1 until the first compaction, then 2, 4...).
  [[nodiscard]] std::size_t stride() const { return stride_; }
  /// Total pushes offered, recorded or not.
  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  /// Heap footprint of the point buffer, for the host profiler.
  [[nodiscard]] std::size_t memory_bytes() const {
    return points_.capacity() * sizeof(SeriesPoint);
  }

 private:
  std::vector<SeriesPoint> points_;
  std::size_t capacity_ = kDefaultSeriesPointBudget;
  std::size_t stride_ = 1;
  std::uint64_t offered_ = 0;
};

/// Named Series, ordered by name for deterministic export.
class SeriesStore {
 public:
  SeriesStore() = default;
  SeriesStore(const SeriesStore&) = delete;
  SeriesStore& operator=(const SeriesStore&) = delete;

  /// Find-or-create. The returned reference stays valid for the store's
  /// lifetime; publishers resolve it once and keep it.
  Series& series(const std::string& name,
                 std::size_t capacity = kDefaultSeriesPointBudget);

  [[nodiscard]] const Series* find(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return series_.size(); }
  [[nodiscard]] std::vector<std::string> names() const;
  /// Summed heap footprint of every series' point buffer.
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t bytes = 0;
    for (const auto& [name, s] : series_) bytes += s.memory_bytes();
    return bytes;
  }

  /// {"series":[{"name":...,"stride":N,"offered":N,
  ///             "points":[[t,v],...]},...]}
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, Series> series_;
};

}  // namespace mron::obs
