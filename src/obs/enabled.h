// Compile-time observability switch.
//
// MRON_OBS_ENABLED gates every flight-recorder hook: with it defined to 0
// (cmake -DMRON_OBS=OFF) Engine::recorder() becomes a constant nullptr, so
// each `if (auto* rec = engine.recorder())` instrumentation site folds away
// and the simulator pays literally nothing. The default is on; the runtime
// cost is then one pointer test per hook plus the recording work only when a
// Recorder is actually attached (see bench/microbench.cc's Observed variant
// for the measured overhead).
#pragma once

#ifndef MRON_OBS_ENABLED
#define MRON_OBS_ENABLED 1
#endif

namespace mron::obs {

inline constexpr bool kEnabled = MRON_OBS_ENABLED != 0;

}  // namespace mron::obs
