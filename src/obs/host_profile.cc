#include "obs/host_profile.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <string_view>

#include "obs/json.h"
#include "obs/trace.h"

#if defined(__linux__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace mron::obs {

namespace {

// Thread-local profiler context. The category byte (detail::g_tls_cat)
// lives in the header so CatScope inlines at the dispatch site.
thread_local HostProfiler* g_tls_profiler = nullptr;
thread_local HostProfiler::ThreadState* g_tls_state = nullptr;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* host_cat_name(HostCat c) {
  switch (c) {
    case HostCat::kEngine: return "engine";
    case HostCat::kSharedServer: return "shared_server";
    case HostCat::kMonitor: return "monitor";
    case HostCat::kDfs: return "dfs";
    case HostCat::kYarn: return "yarn";
    case HostCat::kAmTask: return "am_task";
    case HostCat::kTuner: return "tuner";
    case HostCat::kFaults: return "faults";
    case HostCat::kCount: break;
  }
  return "engine";
}

const char* host_phase_name(HostPhase p) {
  switch (p) {
    case HostPhase::kSetup: return "setup";
    case HostPhase::kSteady: return "steady";
    case HostPhase::kTeardown: return "teardown";
    case HostPhase::kCount: break;
  }
  return "setup";
}

HostProfiler::HostProfiler()
    : anchor_ticks_(raw_ticks()),
      anchor_steady_ns_(steady_now_ns()),
      phase_start_ticks_(anchor_ticks_) {}

HostProfiler::~HostProfiler() = default;

double HostProfiler::ns_per_tick() const {
  const std::int64_t dt = raw_ticks() - anchor_ticks_;
  const std::int64_t dn = steady_now_ns() - anchor_steady_ns_;
  if (dt <= 0 || dn <= 0) return 1.0;
  return static_cast<double>(dn) / static_cast<double>(dt);
}

void HostProfiler::begin_phase(HostPhase p) {
  if (p == phase_ || p == HostPhase::kCount) return;
  const std::int64_t now = raw_ticks();
  const int cur = static_cast<int>(phase_);
  phase_ticks_[cur] += now - phase_start_ticks_;
  phase_rss_bytes_[cur] = current_rss_bytes();
  phase_ = p;
  phase_start_ticks_ = now;
}

std::int64_t HostProfiler::phase_wall_ns(HostPhase p) const {
  if (p == HostPhase::kCount) return 0;
  std::int64_t ticks = phase_ticks_[static_cast<int>(p)];
  if (p == phase_) ticks += raw_ticks() - phase_start_ticks_;
  return static_cast<std::int64_t>(static_cast<double>(ticks) *
                                   ns_per_tick());
}

std::int64_t HostProfiler::subsystem_total_ns() const {
  std::int64_t total = 0;
  for (const HostStat& s : cats_) total += s.total_ticks;
  return static_cast<std::int64_t>(static_cast<double>(total) *
                                   ns_per_tick());
}

void HostProfiler::set_memory(const std::string& key, double bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  memory_[key] = bytes;
}

void HostProfiler::set_meta(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  meta_[key] = value;
}

std::int64_t HostProfiler::current_rss_bytes() {
#if defined(__linux__)
  // statm field 2 is resident pages; cheaper and simpler than smaps.
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long long size = 0;
    long long resident = 0;
    const int got = std::fscanf(f, "%lld %lld", &size, &resident);
    std::fclose(f);
    if (got == 2) {
      return static_cast<std::int64_t>(resident) * sysconf(_SC_PAGESIZE);
    }
  }
#endif
  return 0;
}

std::int64_t HostProfiler::peak_rss_bytes() {
#if defined(__linux__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
  }
#endif
  return 0;
}

// --- Thread frame machinery -------------------------------------------------

std::uint32_t HostProfiler::ThreadState::enter(const char* label) {
  FrameNode& cur = nodes[current];
  for (const std::uint32_t c : cur.children) {
    if (nodes[c].label == label) return c;
  }
  const auto idx = static_cast<std::uint32_t>(nodes.size());
  nodes[current].children.push_back(idx);
  FrameNode node;
  node.label = label;
  node.parent = current;
  nodes.push_back(std::move(node));
  return idx;
}

HostProfiler* HostProfiler::current() { return g_tls_profiler; }

HostProfiler::ThreadState* HostProfiler::acquire_thread_state() {
  const std::thread::id me = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, state] : threads_) {
    if (id == me) return state.get();
  }
  threads_.emplace_back(me, std::make_unique<ThreadState>());
  return threads_.back().second.get();
}

HostProfiler::Activation::Activation(HostProfiler* p)
    : prev_profiler_(g_tls_profiler), prev_state_(g_tls_state) {
  g_tls_profiler = p;
  g_tls_state = p != nullptr ? p->acquire_thread_state() : nullptr;
}

HostProfiler::Activation::~Activation() {
  g_tls_profiler = prev_profiler_;
  g_tls_state = prev_state_;
}

HostProfiler::Frame::Frame(const char* label) : ts_(g_tls_state) {
  if (ts_ == nullptr) return;
  parent_ = ts_->current;
  ts_->current = ts_->enter(label);
  t0_ = raw_ticks();
}

HostProfiler::Frame::~Frame() {
  if (ts_ == nullptr) return;
  ts_->nodes[ts_->current].stat.record(raw_ticks() - t0_);
  ts_->current = parent_;
}


// --- Export -----------------------------------------------------------------

namespace {

/// One row of the merged (cross-thread) frame tree.
struct MergedFrame {
  std::string path;
  HostStat stat;
  std::int64_t child_total_ticks = 0;
  int depth = 0;
};

void merge_tree(const std::vector<HostProfiler::FrameNode>& nodes,
                std::uint32_t node, const std::string& prefix, int depth,
                std::map<std::string, MergedFrame>& out) {
  const HostProfiler::FrameNode& n = nodes[node];
  const std::string path =
      prefix.empty() ? std::string(n.label) : prefix + "/" + n.label;
  MergedFrame& m = out[path];
  m.path = path;
  m.depth = depth;
  m.stat.count += n.stat.count;
  m.stat.total_ticks += n.stat.total_ticks;
  m.stat.max_ticks = std::max(m.stat.max_ticks, n.stat.max_ticks);
  std::int64_t child_total = 0;
  for (const std::uint32_t c : n.children) {
    merge_tree(nodes, c, path, depth + 1, out);
    child_total += nodes[c].stat.total_ticks;
  }
  m.child_total_ticks += child_total;
}

void write_ns(std::ostream& os, std::int64_t ticks, double ns_per_tick) {
  write_json_number(
      os, static_cast<double>(static_cast<std::int64_t>(
              static_cast<double>(ticks) * ns_per_tick)));
}

}  // namespace

void HostProfiler::write_json(std::ostream& os) {
  // Close (but keep open) the current phase so its wall shows up.
  const std::int64_t now = raw_ticks();
  phase_ticks_[static_cast<int>(phase_)] += now - phase_start_ticks_;
  phase_start_ticks_ = now;
  phase_rss_bytes_[static_cast<int>(phase_)] = current_rss_bytes();

  const double npt = ns_per_tick();

  std::lock_guard<std::mutex> lock(mu_);
  memory_["rss_peak_bytes"] = static_cast<double>(peak_rss_bytes());
  memory_["rss_current_bytes"] = static_cast<double>(current_rss_bytes());

  os << "{\n  \"schema\": ";
  write_json_string(os, kHostProfileSchema);

  os << ",\n  \"meta\": {";
  bool first = true;
  for (const auto& [k, v] : meta_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, k);
    os << ": ";
    write_json_string(os, v);
  }
  os << (first ? "}" : "\n  }");

  os << ",\n  \"clock\": {\"source\": ";
#if defined(__x86_64__)
  write_json_string(os, "rdtsc");
#else
  write_json_string(os, "steady_clock");
#endif
  os << ", \"ns_per_tick\": ";
  write_json_number(os, npt);
  os << ", \"threads\": " << threads_.size() << "}";

  os << ",\n  \"phases\": {";
  for (int p = 0; p < static_cast<int>(HostPhase::kCount); ++p) {
    os << (p == 0 ? "\n    " : ",\n    ");
    write_json_string(os, host_phase_name(static_cast<HostPhase>(p)));
    os << ": {\"wall_ns\": ";
    write_ns(os, phase_ticks_[p], npt);
    os << ", \"rss_bytes\": ";
    write_json_number(os, static_cast<double>(phase_rss_bytes_[p]));
    os << "}";
  }
  os << "\n  }";

  os << ",\n  \"subsystems\": {";
  for (int c = 0; c < kNumHostCats; ++c) {
    os << (c == 0 ? "\n    " : ",\n    ");
    write_json_string(os, host_cat_name(static_cast<HostCat>(c)));
    os << ": {\"events\": " << cats_[c].count << ", \"total_ns\": ";
    write_ns(os, cats_[c].total_ticks, npt);
    os << ", \"max_ns\": ";
    write_ns(os, cats_[c].max_ticks, npt);
    os << "}";
  }
  os << "\n  }";

  // Merge per-thread trees by path. std::map keys give a stable, readable
  // order in which every parent precedes its children.
  std::map<std::string, MergedFrame> merged;
  for (const auto& [id, state] : threads_) {
    for (const std::uint32_t c : state->nodes[0].children) {
      merge_tree(state->nodes, c, "", 0, merged);
    }
  }
  os << ",\n  \"frames\": [";
  first = true;
  for (const auto& [path, m] : merged) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    os << "{\"path\": ";
    write_json_string(os, path);
    os << ", \"depth\": " << m.depth << ", \"count\": " << m.stat.count
       << ", \"total_ns\": ";
    write_ns(os, m.stat.total_ticks, npt);
    os << ", \"self_ns\": ";
    write_ns(os, std::max<std::int64_t>(
                     0, m.stat.total_ticks - m.child_total_ticks),
             npt);
    os << ", \"max_ns\": ";
    write_ns(os, m.stat.max_ticks, npt);
    os << "}";
  }
  os << (first ? "]" : "\n  ]");

  os << ",\n  \"memory\": {";
  first = true;
  for (const auto& [k, v] : memory_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, k);
    os << ": ";
    write_json_number(os, v);
  }
  os << (first ? "}" : "\n  }");

  os << "\n}\n";
}

void HostProfiler::emit_trace_track(TraceRecorder& trace) {
  trace.set_process_name(kHostTracePid, "host (self-profiler)");
  trace.set_thread_name(kHostTracePid, 0, "subsystems");
  trace.set_thread_name(kHostTracePid, 1, "phases");
  const double npt = ns_per_tick();
  // Host nanoseconds drawn on the sim-seconds timeline at 1e9:1 — a span of
  // host-time 1ms renders as 1ms. Subsystem totals are laid end to end.
  double cursor = 0.0;
  for (int c = 0; c < kNumHostCats; ++c) {
    if (cats_[c].count == 0) continue;
    const double secs =
        static_cast<double>(cats_[c].total_ticks) * npt / 1e9;
    const SpanId s = trace.begin(host_cat_name(static_cast<HostCat>(c)),
                                 "host", kHostTracePid, 0, cursor, "events",
                                 static_cast<double>(cats_[c].count));
    trace.end(s, cursor + secs);
    cursor += secs;
  }
  double phase_cursor = 0.0;
  for (int p = 0; p < static_cast<int>(HostPhase::kCount); ++p) {
    const double secs =
        static_cast<double>(phase_ticks_[p]) * npt / 1e9;
    if (secs <= 0.0) continue;
    const SpanId s =
        trace.begin(host_phase_name(static_cast<HostPhase>(p)), "host",
                    kHostTracePid, 1, phase_cursor);
    trace.end(s, phase_cursor + secs);
    phase_cursor += secs;
  }
}

}  // namespace mron::obs
