// Minimal JSON emission helpers shared by the observability exporters.
//
// The exporters hand-build their JSON (the schemas are tiny and fixed);
// these helpers keep string escaping and double formatting in one place.
// Doubles are printed with enough digits to round-trip and never as bare
// `nan`/`inf` (which JSON forbids) — non-finite values degrade to null.
#pragma once

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string_view>

namespace mron::obs {

inline void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

inline void write_json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  // Integers print exactly; everything else with round-trip precision.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace mron::obs
