#include "obs/audit.h"

#include "obs/json.h"

namespace mron::obs {

std::vector<const AuditEvent*> AuditLog::for_job(std::int64_t job) const {
  std::vector<const AuditEvent*> out;
  for (const AuditEvent& ev : events_) {
    if (ev.job == job) out.push_back(&ev);
  }
  return out;
}

std::size_t AuditLog::count(std::int64_t job, const std::string& kind) const {
  std::size_t n = 0;
  for (const AuditEvent& ev : events_) {
    if (ev.kind == kind && (job == -1 || ev.job == job)) ++n;
  }
  return n;
}

namespace {

void write_pairs(std::ostream& os, const char* key,
                 const std::vector<std::pair<std::string, double>>& pairs) {
  if (pairs.empty()) return;
  os << ",\"" << key << "\":{";
  bool first = true;
  for (const auto& [name, value] : pairs) {
    if (!first) os << ",";
    first = false;
    write_json_string(os, name);
    os << ":";
    write_json_number(os, value);
  }
  os << "}";
}

}  // namespace

void AuditLog::write_jsonl(std::ostream& os) const {
  for (const AuditEvent& ev : events_) {
    os << "{\"t\":";
    write_json_number(os, ev.time);
    os << ",\"kind\":";
    write_json_string(os, ev.kind);
    if (ev.job >= 0) os << ",\"job\":" << ev.job;
    if (!ev.detail.empty()) {
      os << ",\"detail\":";
      write_json_string(os, ev.detail);
    }
    write_pairs(os, "before", ev.before);
    write_pairs(os, "after", ev.after);
    write_pairs(os, "sample", ev.sample);
    os << "}\n";
  }
}

}  // namespace mron::obs
