// Sim-time span tracing exported as Chrome trace_event JSON.
//
// The convention, mirroring what chrome://tracing / Perfetto expect:
//   - one "process" per cluster node (pid = node id), plus a synthetic
//     pid for the tuner's wave lanes (kTunerTracePid);
//   - one "thread" per YARN container (tid = container id), so each task
//     attempt renders as a bar in its container's swimlane.
//
// Duration spans use B/E pairs and must nest properly per (pid, tid);
// overlapping work on one lane (concurrent shuffle fetches) uses async
// b/e events with a unique id instead. Sim-time seconds become trace
// microseconds on export.
//
// Names and categories are `const char*` string literals by contract: the
// recorder stores the pointers verbatim, so the hot path never allocates.
//
// set_detail() gates phase-level spans (map read/spill, shuffle, merge,
// reduce, fetches): with detail off — the default — the trace contains
// exactly one span per task attempt plus one per tuner wave, which is the
// invariant the acceptance test counts.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.h"

namespace mron::obs {

/// Synthetic trace "process" hosting the tuner's wave swimlanes, far above
/// any real node id.
inline constexpr int kTunerTracePid = 1 << 20;

/// Opaque handle for an open duration span (index into the event buffer).
using SpanId = std::int64_t;
inline constexpr SpanId kInvalidSpan = -1;

class TraceRecorder {
 public:
  /// Open a duration span. `name` and `cat` must be string literals (stored
  /// by pointer). Optional single numeric argument lands in the event's
  /// "args" object under `arg_key`.
  SpanId begin(const char* name, const char* cat, int pid, std::int64_t tid,
               SimTime t, const char* arg_key = nullptr, double arg_val = 0);
  /// Close a span opened by begin(). Safe to call with kInvalidSpan (no-op),
  /// so abort paths can close unconditionally.
  void end(SpanId span, SimTime t);

  /// Async span pair for overlapping work on one lane (ph 'b'/'e'); `id`
  /// correlates the pair and must be unique per (cat, id) while open.
  void async_begin(const char* name, const char* cat, int pid,
                   std::int64_t id, SimTime t);
  void async_end(const char* name, const char* cat, int pid, std::int64_t id,
                 SimTime t);

  /// Zero-duration marker (ph 'i', thread scope).
  void instant(const char* name, const char* cat, int pid, std::int64_t tid,
               SimTime t);

  /// Flow-event pair (ph 's'/'f'): a visual arrow from the producer lane
  /// to the consumer lane, correlated by `id`. Used to draw the extracted
  /// critical path over the span timeline; the 'f' event binds to the
  /// enclosing slice's end ("bp":"e") so arrows land on the producing span.
  void flow_begin(const char* name, const char* cat, int pid,
                  std::int64_t tid, SimTime t, std::int64_t id);
  void flow_end(const char* name, const char* cat, int pid, std::int64_t tid,
                SimTime t, std::int64_t id);

  void set_process_name(int pid, std::string name);
  void set_thread_name(int pid, std::int64_t tid, std::string name);

  /// Phase-level spans record only when detail is on (default off).
  void set_detail(bool on) { detail_ = on; }
  [[nodiscard]] bool detail() const { return detail_; }

  /// Completed B/E span pairs, optionally filtered by category.
  [[nodiscard]] std::size_t span_count(const char* cat = nullptr) const;
  /// Spans begun but not yet ended — 0 after a clean run.
  [[nodiscard]] std::size_t open_spans() const { return open_; }
  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  /// Heap footprint of the event buffer, for the host profiler's memory
  /// section.
  [[nodiscard]] std::size_t memory_bytes() const {
    return events_.capacity() * sizeof(Event);
  }

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — metadata (process/thread
  /// names) first, then events in record order. ts is sim-time * 1e6.
  void write_chrome_json(std::ostream& os) const;

 private:
  struct Event {
    const char* name = nullptr;
    const char* cat = nullptr;
    char ph = 'B';
    SimTime time = 0.0;
    int pid = 0;
    std::int64_t tid = 0;
    std::int64_t id = -1;           ///< async/flow correlation id (b/e/s/f)
    const char* arg_key = nullptr;  ///< optional single numeric arg
    double arg_val = 0.0;
  };

  std::vector<Event> events_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, std::int64_t>, std::string> thread_names_;
  std::size_t open_ = 0;
  bool detail_ = false;
};

}  // namespace mron::obs
