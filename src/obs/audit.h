// Tuner decision audit log.
//
// Every decision the online tuner makes — attaching to a job, opening an LHS
// wave, handing a config to a task batch, tightening gray-box bounds from a
// Section-6 rule, stepping the hill climber, firing a Conservative rule,
// pushing parameters through the dynamic configurator — is recorded here with
// its sim-time, the before/after config values it changed, and the monitor
// sample that triggered it. The log answers "why is the config what it is?"
// after the run, and the JSONL export (--audit-out) makes it greppable.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"

namespace mron::obs {

struct AuditEvent {
  SimTime time = 0.0;
  std::string kind;       ///< e.g. "wave_start", "bound_tighten", "rule_fire"
  std::int64_t job = -1;  ///< owning job id, or -1 for global events
  std::string detail;     ///< free-form human hint (rule name, param, ...)
  /// Config/bound values before and after the decision (only the changed
  /// ones), and the monitor/report sample that triggered it.
  std::vector<std::pair<std::string, double>> before;
  std::vector<std::pair<std::string, double>> after;
  std::vector<std::pair<std::string, double>> sample;
};

class AuditLog {
 public:
  void record(AuditEvent ev) { events_.push_back(std::move(ev)); }

  [[nodiscard]] const std::vector<AuditEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Events belonging to one job, in record order.
  [[nodiscard]] std::vector<const AuditEvent*> for_job(std::int64_t job) const;
  /// Number of events of `kind` for `job` (job == -1 matches every job).
  [[nodiscard]] std::size_t count(std::int64_t job,
                                  const std::string& kind) const;

  /// One JSON object per line:
  /// {"t":..,"kind":..,"job":..,"detail":..,"before":{..},"after":{..},
  ///  "sample":{..}} — empty maps omitted.
  void write_jsonl(std::ostream& os) const;

 private:
  std::vector<AuditEvent> events_;
};

}  // namespace mron::obs
