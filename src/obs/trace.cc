#include "obs/trace.h"

#include <cstring>

#include "common/check.h"
#include "obs/json.h"

namespace mron::obs {

SpanId TraceRecorder::begin(const char* name, const char* cat, int pid,
                            std::int64_t tid, SimTime t, const char* arg_key,
                            double arg_val) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'B';
  e.time = t;
  e.pid = pid;
  e.tid = tid;
  e.arg_key = arg_key;
  e.arg_val = arg_val;
  events_.push_back(e);
  ++open_;
  return static_cast<SpanId>(events_.size() - 1);
}

void TraceRecorder::end(SpanId span, SimTime t) {
  if (span == kInvalidSpan) return;
  MRON_CHECK(span >= 0 && static_cast<std::size_t>(span) < events_.size());
  const Event& b = events_[static_cast<std::size_t>(span)];
  MRON_CHECK_MSG(b.ph == 'B', "TraceRecorder::end on a non-begin event");
  Event e;
  e.name = b.name;
  e.cat = b.cat;
  e.ph = 'E';
  e.time = t;
  e.pid = b.pid;
  e.tid = b.tid;
  events_.push_back(e);
  MRON_CHECK(open_ > 0);
  --open_;
}

void TraceRecorder::async_begin(const char* name, const char* cat, int pid,
                                std::int64_t id, SimTime t) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'b';
  e.time = t;
  e.pid = pid;
  e.tid = id;  // lane within the async track; id is what correlates
  e.id = id;
  events_.push_back(e);
}

void TraceRecorder::async_end(const char* name, const char* cat, int pid,
                              std::int64_t id, SimTime t) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'e';
  e.time = t;
  e.pid = pid;
  e.tid = id;
  e.id = id;
  events_.push_back(e);
}

void TraceRecorder::flow_begin(const char* name, const char* cat, int pid,
                               std::int64_t tid, SimTime t, std::int64_t id) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 's';
  e.time = t;
  e.pid = pid;
  e.tid = tid;
  e.id = id;
  events_.push_back(e);
}

void TraceRecorder::flow_end(const char* name, const char* cat, int pid,
                             std::int64_t tid, SimTime t, std::int64_t id) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'f';
  e.time = t;
  e.pid = pid;
  e.tid = tid;
  e.id = id;
  events_.push_back(e);
}

void TraceRecorder::instant(const char* name, const char* cat, int pid,
                            std::int64_t tid, SimTime t) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.time = t;
  e.pid = pid;
  e.tid = tid;
  events_.push_back(e);
}

void TraceRecorder::set_process_name(int pid, std::string name) {
  process_names_[pid] = std::move(name);
}

void TraceRecorder::set_thread_name(int pid, std::int64_t tid,
                                    std::string name) {
  thread_names_[{pid, tid}] = std::move(name);
}

std::size_t TraceRecorder::span_count(const char* cat) const {
  std::size_t n = 0;
  for (const Event& e : events_) {
    if (e.ph != 'E') continue;
    if (cat == nullptr || (e.cat != nullptr && std::strcmp(e.cat, cat) == 0)) {
      ++n;
    }
  }
  return n;
}

namespace {

void write_event_common(std::ostream& os, const char* name, const char* cat,
                        char ph, SimTime time, int pid, std::int64_t tid) {
  os << "{\"name\":";
  write_json_string(os, name != nullptr ? name : "");
  os << ",\"cat\":";
  write_json_string(os, cat != nullptr ? cat : "");
  os << ",\"ph\":\"" << ph << "\",\"ts\":";
  write_json_number(os, time * 1e6);
  os << ",\"pid\":" << pid << ",\"tid\":" << tid;
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":";
    write_json_string(os, name);
    os << "}}";
  }
  for (const auto& [key, name] : thread_names_) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":";
    write_json_string(os, name);
    os << "}}";
  }
  for (const Event& e : events_) {
    sep();
    write_event_common(os, e.name, e.cat, e.ph, e.time, e.pid, e.tid);
    if (e.ph == 'b' || e.ph == 'e' || e.ph == 's' || e.ph == 'f') {
      os << ",\"id\":" << e.id;
    }
    if (e.ph == 'f') {
      os << ",\"bp\":\"e\"";
    }
    if (e.ph == 'i') {
      os << ",\"s\":\"t\"";
    }
    if (e.arg_key != nullptr) {
      os << ",\"args\":{";
      write_json_string(os, e.arg_key);
      os << ":";
      write_json_number(os, e.arg_val);
      os << "}";
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace mron::obs
