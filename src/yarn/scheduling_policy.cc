#include "yarn/scheduling_policy.h"

namespace mron::yarn {

std::optional<AppId> FifoPolicy::pick_next(
    const std::vector<AppSchedState>& apps) const {
  const AppSchedState* best = nullptr;
  for (const auto& app : apps) {
    if (app.pending_requests == 0 || app.skip) continue;
    if (best == nullptr || app.submit_order < best->submit_order) {
      best = &app;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->id;
}

std::optional<AppId> FairPolicy::pick_next(
    const std::vector<AppSchedState>& apps) const {
  const AppSchedState* best = nullptr;
  double best_share = 0.0;
  for (const auto& app : apps) {
    if (app.pending_requests == 0 || app.skip) continue;
    const double share = app.allocated_memory.as_double() / app.weight;
    if (best == nullptr || share < best_share ||
        (share == best_share && app.submit_order < best->submit_order)) {
      best = &app;
      best_share = share;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->id;
}

CapacityPolicy::CapacityPolicy(std::vector<double> queue_capacities)
    : shares_(std::move(queue_capacities)) {
  double sum = 0.0;
  for (double s : shares_) sum += s;
  if (shares_.empty() || sum <= 0.0) {
    shares_ = {1.0};
    sum = 1.0;
  }
  for (double& s : shares_) s /= sum;
}

double CapacityPolicy::capacity_share(int queue) const {
  if (queue < 0 || queue >= num_queues()) return shares_.back();
  return shares_[static_cast<std::size_t>(queue)];
}

std::optional<AppId> CapacityPolicy::pick_next(
    const std::vector<AppSchedState>& apps) const {
  // Most-underserved queue first: allocated memory normalized by the
  // queue's capacity share; FIFO within the queue.
  const AppSchedState* best = nullptr;
  double best_metric = 0.0;
  // Pre-compute per-queue allocations over ALL apps (running ones count
  // against their queue even if they have nothing pending).
  std::vector<double> queue_alloc(static_cast<std::size_t>(num_queues()),
                                  0.0);
  for (const auto& app : apps) {
    const int q = std::clamp(app.queue, 0, num_queues() - 1);
    queue_alloc[static_cast<std::size_t>(q)] +=
        app.allocated_memory.as_double();
  }
  for (const auto& app : apps) {
    if (app.pending_requests == 0 || app.skip) continue;
    const int q = std::clamp(app.queue, 0, num_queues() - 1);
    const double metric =
        queue_alloc[static_cast<std::size_t>(q)] / capacity_share(q);
    const bool better =
        best == nullptr || metric < best_metric ||
        (metric == best_metric && app.submit_order < best->submit_order);
    if (better) {
      best = &app;
      best_metric = metric;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->id;
}

std::unique_ptr<SchedulingPolicy> make_fifo_policy() {
  return std::make_unique<FifoPolicy>();
}
std::unique_ptr<SchedulingPolicy> make_fair_policy() {
  return std::make_unique<FairPolicy>();
}
std::unique_ptr<SchedulingPolicy> make_capacity_policy(
    std::vector<double> queue_capacities) {
  return std::make_unique<CapacityPolicy>(std::move(queue_capacities));
}

}  // namespace mron::yarn
