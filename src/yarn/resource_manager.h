// The YARN resource manager.
//
// Owns the cluster's nodes for allocation purposes, tracks registered
// applications, queues container requests, and runs locality-aware placement
// passes under a pluggable scheduling policy. Requests may each carry a
// different Resource — the variable-sized-container extension MRONLINE adds
// to the stock scheduler (Section 4 of the paper; implemented there with a
// hash map keyed by container size, here by simply storing the size on the
// request).
//
// Placement preference order per request: node-local (a preferred node with
// room) -> rack-local -> any node, picking the candidate with the most free
// memory. Allocation callbacks are dispatched through 0-delay events so
// application masters never re-enter the placement loop.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/monitor.h"
#include "cluster/node.h"
#include "cluster/topology.h"
#include "obs/critical_path.h"
#include "sim/engine.h"
#include "yarn/resource.h"
#include "yarn/scheduling_policy.h"

namespace mron::obs {
class Counter;
}  // namespace mron::obs

namespace mron::yarn {

class ResourceManager {
 public:
  using AllocationCb = std::function<void(const Container&)>;

  ResourceManager(sim::Engine& engine, const cluster::Topology& topo,
                  std::vector<cluster::Node*> nodes,
                  std::unique_ptr<SchedulingPolicy> policy);

  ~ResourceManager();

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  // --- application lifecycle ----------------------------------------------
  /// `queue` is consumed by the capacity policy (ignored by FIFO/fair).
  AppId register_app(const std::string& name, double weight = 1.0,
                     int queue = 0);
  /// Releases nothing by itself: apps must release containers first.
  void unregister_app(AppId app);

  // --- container requests --------------------------------------------------
  /// Ask for one container; `preferred` are the nodes holding the input
  /// split's replicas (may be empty for don't-care, e.g. reducers).
  /// `cp_from`/`cp_blame` give the request a causal origin: when observed,
  /// the grant stamps a "container_grant" critical-path node and draws an
  /// edge from `cp_from` charged to `cp_blame` (the wait is scheduler
  /// queueing by default; AM retry paths charge it to recovery). The grant
  /// handle comes back to the AM via Container::cp_grant.
  RequestId request_container(AppId app, Resource resource,
                              std::vector<cluster::NodeId> preferred,
                              AllocationCb on_allocated,
                              obs::CpNode cp_from = obs::kInvalidCpNode,
                              obs::Blame cp_blame = obs::Blame::SchedWait);
  /// Cancel a not-yet-satisfied request (no-op once allocated).
  void cancel_request(RequestId id);
  /// Release a container. A container the RM already reclaimed (its node
  /// died) is a no-op: the bookkeeping was undone at reclaim time, and the
  /// AM's release is just its own cleanup racing the RM's.
  void release_container(const Container& container);
  /// True while `id` is granted and its node has not been reclaimed. AMs
  /// check this on allocation callbacks: a grant dispatched just before
  /// its node died arrives stale.
  [[nodiscard]] bool container_live(ContainerId id) const;

  // --- node liveness (failure injection) -------------------------------------
  /// Fail-stop a node: every container on it is reclaimed (released from
  /// the node and its app's bookkeeping), it receives no further
  /// containers, and every subscriber (application master) is told so it
  /// can re-execute lost work. Idempotent.
  void fail_node(cluster::NodeId node);
  [[nodiscard]] bool node_alive(cluster::NodeId node) const;
  using NodeFailureCb = std::function<void(cluster::NodeId)>;
  void subscribe_node_failures(NodeFailureCb cb);
  /// Observe real recoveries (recover_node() on a node that was declared
  /// lost; transient heartbeat blips never notify). The DFS uses this to
  /// restore the node's replicas and resume readers parked on dead blocks.
  /// Callbacks run in subscription order.
  void subscribe_node_recoveries(NodeFailureCb cb);

  // --- heartbeat tracking (fault injection) ---------------------------------
  /// Start the NodeManager heartbeat watchdog: nodes are assumed to
  /// heartbeat every `period` seconds; one that stays silent for `timeout`
  /// is declared lost via the fail_node() path. Without this, failures
  /// only happen through direct fail_node() calls (the legacy test path).
  void enable_heartbeats(SimTime period, SimTime timeout);
  /// The node stops heartbeating (crash or partition). With heartbeats
  /// enabled the watchdog declares it lost one timeout later; without,
  /// the node is failed immediately. A node that resumes (recover_node)
  /// before the timeout elapses was just a transient blip — no subscriber
  /// ever hears about it and its work is undisturbed.
  void mark_node_unresponsive(cluster::NodeId node);
  /// Bring a failed (or unresponsive) node back: it heartbeats again and
  /// may receive containers. Idempotent; lost work is not resurrected.
  void recover_node(cluster::NodeId node);

  /// Enable hot-spot-aware placement (one of MRONLINE's runtime levers):
  /// nodes whose disk or NIC utilization exceeded `threshold` in the
  /// monitor's last window are avoided while a cooler candidate exists.
  void set_cluster_monitor(const cluster::ClusterMonitor* monitor,
                           double hot_threshold = 0.9);

  /// Delay scheduling (Zaharia et al.): a request with node preferences
  /// passes on non-local placements for up to `passes` scheduling passes
  /// before relaxing to rack-local/any. 0 disables (the default).
  void set_locality_delay(int passes);

  // --- introspection --------------------------------------------------------
  [[nodiscard]] Bytes app_allocated_memory(AppId app) const;
  [[nodiscard]] std::size_t pending_requests() const;
  [[nodiscard]] std::size_t live_containers() const {
    return live_containers_;
  }
  [[nodiscard]] cluster::Node& node(cluster::NodeId id) {
    return *nodes_[static_cast<std::size_t>(id.value())];
  }
  [[nodiscard]] const cluster::Topology& topology() const { return topo_; }
  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(nodes_.size());
  }
  /// Total container-memory capacity across all nodes (dead included —
  /// capacity is hardware, not liveness). Cached at construction: O(1).
  [[nodiscard]] Bytes cluster_memory_capacity() const {
    return cluster_memory_capacity_;
  }
  /// How many containers of `vcores` the whole cluster's vcore capacity
  /// admits (sum over nodes of floor(capacity/vcores), dead included).
  /// Computed from the per-capacity histogram: O(hardware classes).
  [[nodiscard]] std::int64_t cluster_vcore_slots(int vcores) const;

 private:
  struct PendingRequest {
    RequestId id;
    Resource resource;
    std::vector<cluster::NodeId> preferred;
    AllocationCb on_allocated;
    int locality_misses = 0;  ///< passes spent waiting for a local slot
    obs::CpNode cp_from = obs::kInvalidCpNode;  ///< causal origin of the wait
    obs::Blame cp_blame = obs::Blame::SchedWait;
  };
  struct AppState {
    std::string name;
    std::int64_t submit_order = 0;
    double weight = 1.0;
    int sched_queue = 0;  ///< capacity-scheduler queue
    Bytes allocated_memory{0};
    std::deque<PendingRequest> queue;
    bool live = false;
  };

  /// Granted-container ledger entry; erased on release or node reclaim.
  struct LiveContainer {
    AppId app;
    cluster::NodeId node;
    Resource resource;
  };

  void trigger_schedule();
  void schedule_pass();
  /// Watchdog tick: declare nodes lost whose silence started more than the
  /// timeout ago, then re-arm while the engine has other live events. Only
  /// visits the silent set — O(silent nodes), not O(nodes).
  void heartbeat_tick();
  /// Try to place request `req`; returns true and fires its callback on
  /// success.
  bool try_place(AppId app_id, AppState& app, PendingRequest& req);
  /// Best node for `req` following node-local -> rack-local -> any;
  /// `avoid_hot` filters out monitor-flagged hot nodes.
  [[nodiscard]] cluster::Node* find_node(const PendingRequest& req,
                                         bool avoid_hot);
  [[nodiscard]] bool is_hot(const cluster::Node& node) const;

  // --- free-resource index ---------------------------------------------------
  // Every *alive* node appears in the global set and its rack's set, keyed
  // by (-memory_available, node id): begin() is the max-free-memory node,
  // ties broken toward the lowest id — exactly the candidate the legacy
  // full scan picked, so placement decisions (and therefore reports) are
  // byte-identical. Each node's resource observer re-keys it on every
  // allocate/release (including direct mutations by tests), and
  // fail/recover remove/re-add it: O(log n) per container event instead of
  // O(n) per placement.
  using FreeKey = std::pair<std::int64_t, std::int64_t>;
  [[nodiscard]] FreeKey free_key(const cluster::Node& n) const {
    return {-n.memory_available().count(), n.id().value()};
  }
  void index_insert(const cluster::Node& n);
  void index_erase(const cluster::Node& n);
  /// Node resource observer: re-key `n` in the index (no-op while dead).
  void on_node_resources_changed(cluster::Node& n);
  /// First node in `index` (descending free memory) satisfying `req`, or
  /// nullptr. Walks past nodes that fail the vcore/hot/liveness filters.
  [[nodiscard]] cluster::Node* first_fitting(const std::set<FreeKey>& index,
                                             const PendingRequest& req,
                                             bool avoid_hot);

  sim::Engine& engine_;
  const cluster::Topology& topo_;
  std::vector<cluster::Node*> nodes_;
  std::unique_ptr<SchedulingPolicy> policy_;
  std::map<AppId, AppState> apps_;  // ordered for deterministic iteration
  IdAllocator<AppId> app_ids_;
  IdAllocator<ContainerId> container_ids_;
  IdAllocator<RequestId> request_ids_;
  std::int64_t next_submit_order_ = 0;
  bool pass_scheduled_ = false;
  std::size_t live_containers_ = 0;
  const cluster::ClusterMonitor* monitor_ = nullptr;
  double hot_threshold_ = 0.9;
  std::vector<bool> alive_;
  std::vector<NodeFailureCb> failure_subscribers_;
  std::vector<NodeFailureCb> recovery_subscribers_;
  int locality_delay_passes_ = 0;
  /// Every granted container, keyed by id (ordered: reclaim scans must
  /// visit containers in grant order for determinism).
  std::map<ContainerId, LiveContainer> containers_;
  // Heartbeat watchdog state (enable_heartbeats).
  bool heartbeats_enabled_ = false;
  SimTime heartbeat_period_ = 0.5;
  SimTime heartbeat_timeout_ = 3.0;
  std::vector<bool> responsive_;
  std::vector<SimTime> last_heartbeat_;
  /// Unresponsive-but-alive node ids (ascending — the watchdog must visit
  /// them in the same order the legacy full scan did). The tick loops over
  /// this set only, and "a death declaration is pending" is !empty().
  std::set<std::int64_t> silent_;
  /// Per node: when its current silence started (the legacy
  /// last-responsive-heartbeat reference the timeout measures from).
  std::vector<SimTime> silent_since_;
  /// Time of the most recent watchdog tick (== every responsive node's
  /// last heartbeat, without writing n timestamps per tick).
  SimTime last_tick_ = 0.0;

  // Free-resource index (see free_key above). indexed_key_ remembers the
  // key each alive node is filed under, so re-keying after a resource
  // change never depends on reconstructing stale state.
  std::set<FreeKey> free_global_;
  std::vector<std::set<FreeKey>> free_by_rack_;
  std::vector<FreeKey> indexed_key_;
  Bytes cluster_memory_capacity_{0};
  /// vcores_capacity -> node count (dead nodes included; capacities are
  /// fixed at construction). Ordered for deterministic iteration.
  std::map<int, std::int64_t> vcore_capacity_histogram_;

  // yarn.alloc.* placement metrics (cached handles; null when unobserved).
  obs::Counter* alloc_node_local_ = nullptr;
  obs::Counter* alloc_rack_local_ = nullptr;
  obs::Counter* alloc_any_ = nullptr;
  obs::Counter* alloc_index_probes_ = nullptr;
};

}  // namespace mron::yarn
