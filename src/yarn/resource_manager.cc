#include "yarn/resource_manager.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "obs/host_profile.h"
#include "obs/recorder.h"

namespace mron::yarn {

ResourceManager::ResourceManager(sim::Engine& engine,
                                 const cluster::Topology& topo,
                                 std::vector<cluster::Node*> nodes,
                                 std::unique_ptr<SchedulingPolicy> policy)
    : engine_(engine),
      topo_(topo),
      nodes_(std::move(nodes)),
      policy_(std::move(policy)) {
  MRON_CHECK(policy_ != nullptr);
  MRON_CHECK(static_cast<int>(nodes_.size()) == topo_.num_nodes());
  alive_.assign(nodes_.size(), true);
  silent_since_.assign(nodes_.size(), 0.0);
  // Free-resource index: every node starts alive; the observer keeps the
  // node's entry keyed by its *current* free memory from here on.
  free_by_rack_.resize(static_cast<std::size_t>(topo_.num_racks()));
  indexed_key_.resize(nodes_.size());
  for (auto* n : nodes_) {
    index_insert(*n);
    cluster_memory_capacity_ += n->memory_capacity();
    ++vcore_capacity_histogram_[n->vcores_capacity()];
    n->set_resource_observer(
        [this](cluster::Node& nd) { on_node_resources_changed(nd); });
  }
  // Pull-model publishing (recorder.h's contract for hot components): the
  // request/allocate/release paths fire per container, so instead of
  // writing gauges there, the sampling clock reads the queue/allocation
  // state once per tick — and stamps the whole-run container timeline.
  if (auto* rec = engine_.recorder()) {
    alloc_node_local_ = &rec->metrics().counter("yarn.alloc.node_local");
    alloc_rack_local_ = &rec->metrics().counter("yarn.alloc.rack_local");
    alloc_any_ = &rec->metrics().counter("yarn.alloc.any");
    alloc_index_probes_ = &rec->metrics().counter("yarn.alloc.index_probes");
    auto* pending_gauge = &rec->metrics().gauge("yarn.pending_requests");
    auto* live_gauge = &rec->metrics().gauge("yarn.live_containers");
    auto* pending_series = &rec->series().series("yarn.pending_requests");
    auto* live_series = &rec->series().series("yarn.live_containers");
    rec->add_flush_hook(
        [this, pending_gauge, live_gauge, pending_series, live_series] {
          const auto pending = static_cast<double>(pending_requests());
          const auto live = static_cast<double>(live_containers_);
          pending_gauge->set(pending);
          live_gauge->set(live);
          pending_series->push(engine_.now(), pending);
          live_series->push(engine_.now(), live);
        });
  }
}

ResourceManager::~ResourceManager() {
  // Nodes may outlive this RM (test fixtures rebuild the RM over the same
  // nodes); leave no dangling observer behind.
  for (auto* n : nodes_) n->set_resource_observer({});
}

void ResourceManager::fail_node(cluster::NodeId node) {
  MRON_CHECK(node.valid() &&
             node.value() < static_cast<std::int64_t>(alive_.size()));
  auto flag = alive_.begin() + node.value();
  if (!*flag) return;
  index_erase(this->node(node));  // dead nodes leave the free index
  *flag = false;
  silent_.erase(node.value());
  if (!responsive_.empty()) {
    responsive_[static_cast<std::size_t>(node.value())] = false;
  }
  // Reclaim every container granted on the dead node *before* telling the
  // AMs: their recovery paths re-request capacity immediately, and the
  // node's memory/vcores must already be accounted free (on other nodes)
  // by then. The AM's own release_container for these ids becomes a no-op.
  std::size_t reclaimed = 0;
  for (auto it = containers_.begin(); it != containers_.end();) {
    if (it->second.node != node) {
      ++it;
      continue;
    }
    const LiveContainer& c = it->second;
    // The node is dead: its observer re-key is a no-op, this is pure
    // bookkeeping so the capacity is accounted free elsewhere.
    this->node(c.node).release(c.resource.memory, c.resource.vcores);
    auto app_it = apps_.find(c.app);
    MRON_CHECK(app_it != apps_.end());
    app_it->second.allocated_memory -= c.resource.memory;
    MRON_CHECK(app_it->second.allocated_memory >= Bytes(0));
    MRON_CHECK(live_containers_ > 0);
    --live_containers_;
    ++reclaimed;
    it = containers_.erase(it);
  }
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("yarn.nodes_lost").add(1.0);
    if (reclaimed > 0) {
      rec->metrics()
          .counter("yarn.containers_reclaimed")
          .add(static_cast<double>(reclaimed));
    }
  }
  // Subscribers may release containers and issue fresh requests
  // re-entrantly; copy the list to stay iterator-safe.
  const auto subscribers = failure_subscribers_;
  for (const auto& cb : subscribers) cb(node);
  trigger_schedule();
}

void ResourceManager::enable_heartbeats(SimTime period, SimTime timeout) {
  MRON_CHECK(period > 0.0 && timeout > 0.0);
  heartbeat_period_ = period;
  heartbeat_timeout_ = timeout;
  responsive_.assign(nodes_.size(), true);
  last_heartbeat_.assign(nodes_.size(), engine_.now());
  silent_.clear();
  silent_since_.assign(nodes_.size(), 0.0);
  last_tick_ = engine_.now();
  if (!heartbeats_enabled_) {
    heartbeats_enabled_ = true;
    // The watchdog is RM work even when armed from the fault injector.
    HOST_PROF_CATEGORY(kYarn);
    engine_.schedule_daemon_after(heartbeat_period_,
                                  [this] { heartbeat_tick(); });
  }
}

void ResourceManager::heartbeat_tick() {
  const SimTime now = engine_.now();
  // Only the silent set needs attention: every responsive node's heartbeat
  // is implicitly refreshed by advancing last_tick_ below, so the tick is
  // O(silent nodes) instead of two O(n) sweeps. The set is ascending, the
  // same order the legacy full scan visited nodes in; iterate a copy since
  // fail_node() erases the declared node re-entrantly.
  const std::vector<std::int64_t> silent(silent_.begin(), silent_.end());
  for (const std::int64_t v : silent) {
    const auto i = static_cast<std::size_t>(v);
    if (!alive_[i]) continue;  // already declared lost
    if (auto* rec = engine_.recorder()) {
      rec->metrics().counter("yarn.heartbeats_missed").add(1.0);
    }
    if (now - silent_since_[i] >= heartbeat_timeout_) {
      fail_node(cluster::NodeId(v));
    }
  }
  last_tick_ = now;
  // Same guard as the cluster monitor — a self-perpetuating watchdog would
  // keep Engine::run() from ever draining — except that a silent node
  // awaiting its death declaration *is* pending work: the declaration is
  // what unblocks the AMs, so the watchdog must outlive an otherwise-idle
  // engine until it fires. Daemon scheduling keeps the watchdog and the
  // other periodic services from counting each other as work. The silent
  // set holds exactly the unresponsive-but-alive nodes, so "a declaration
  // is pending" is one emptiness check.
  if (!engine_.quiescent() || !silent_.empty()) {
    engine_.schedule_daemon_after(heartbeat_period_,
                                  [this] { heartbeat_tick(); });
  }
}

void ResourceManager::mark_node_unresponsive(cluster::NodeId node) {
  MRON_CHECK(node.valid() &&
             node.value() < static_cast<std::int64_t>(alive_.size()));
  if (!heartbeats_enabled_) {
    // No watchdog to notice the silence — fail-stop right away (the
    // legacy direct-injection path used by tests).
    fail_node(node);
    return;
  }
  const auto i = static_cast<std::size_t>(node.value());
  if (!responsive_[i]) return;  // already silent (or dead)
  responsive_[i] = false;
  if (alive_[i]) {
    silent_.insert(node.value());
    // The silence is measured from the node's last heartbeat: the most
    // recent watchdog tick, unless the node was enabled/recovered after it.
    silent_since_[i] = std::max(last_heartbeat_[i], last_tick_);
  }
}

void ResourceManager::recover_node(cluster::NodeId node) {
  MRON_CHECK(node.valid() &&
             node.value() < static_cast<std::int64_t>(alive_.size()));
  const auto i = static_cast<std::size_t>(node.value());
  if (!responsive_.empty()) {
    responsive_[i] = true;
    last_heartbeat_[i] = engine_.now();
    silent_.erase(node.value());
  }
  if (alive_[i]) return;  // transient blip, never declared lost
  alive_[i] = true;
  index_insert(this->node(node));  // back into the free index
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("yarn.nodes_recovered").add(1.0);
  }
  // Same re-entrancy discipline as fail_node: subscribers (the DFS
  // restoring replicas, parked readers resuming) may schedule work.
  const auto subscribers = recovery_subscribers_;
  for (const auto& cb : subscribers) cb(node);
  trigger_schedule();
}

bool ResourceManager::node_alive(cluster::NodeId node) const {
  MRON_CHECK(node.valid() &&
             node.value() < static_cast<std::int64_t>(alive_.size()));
  return alive_[static_cast<std::size_t>(node.value())];
}

void ResourceManager::subscribe_node_failures(NodeFailureCb cb) {
  MRON_CHECK(cb != nullptr);
  failure_subscribers_.push_back(std::move(cb));
}

void ResourceManager::subscribe_node_recoveries(NodeFailureCb cb) {
  MRON_CHECK(cb != nullptr);
  recovery_subscribers_.push_back(std::move(cb));
}

AppId ResourceManager::register_app(const std::string& name, double weight,
                                    int queue) {
  MRON_CHECK(weight > 0.0);
  const AppId id = app_ids_.next();
  AppState state;
  state.name = name;
  state.submit_order = next_submit_order_++;
  state.weight = weight;
  state.sched_queue = queue;
  state.live = true;
  apps_.emplace(id, std::move(state));
  return id;
}

void ResourceManager::unregister_app(AppId app) {
  auto it = apps_.find(app);
  MRON_CHECK(it != apps_.end());
  MRON_CHECK_MSG(it->second.allocated_memory == Bytes(0),
                 "app " << it->second.name
                        << " unregistered with live containers");
  apps_.erase(it);
}

RequestId ResourceManager::request_container(
    AppId app, Resource resource, std::vector<cluster::NodeId> preferred,
    AllocationCb on_allocated, obs::CpNode cp_from, obs::Blame cp_blame) {
  auto it = apps_.find(app);
  MRON_CHECK_MSG(it != apps_.end(), "request from unknown app " << app);
  MRON_CHECK(resource.memory > Bytes(0) && resource.vcores >= 1);
  MRON_CHECK(on_allocated != nullptr);
  const RequestId id = request_ids_.next();
  PendingRequest req{id, resource, std::move(preferred),
                     std::move(on_allocated)};
  req.cp_from = cp_from;
  req.cp_blame = cp_blame;
  it->second.queue.push_back(std::move(req));
  trigger_schedule();
  return id;
}

void ResourceManager::cancel_request(RequestId id) {
  for (auto& [app_id, app] : apps_) {
    auto it = std::find_if(app.queue.begin(), app.queue.end(),
                           [id](const PendingRequest& r) { return r.id == id; });
    if (it != app.queue.end()) {
      app.queue.erase(it);
      return;
    }
  }
}

void ResourceManager::release_container(const Container& container) {
  // A container the RM reclaimed when its node died is already fully
  // unaccounted; the AM's release is late cleanup, not an error.
  if (containers_.erase(container.id) == 0) return;
  auto it = apps_.find(container.app);
  MRON_CHECK(it != apps_.end());
  node(container.node).release(container.resource.memory,
                               container.resource.vcores);
  it->second.allocated_memory -= container.resource.memory;
  MRON_CHECK(it->second.allocated_memory >= Bytes(0));
  MRON_CHECK(live_containers_ > 0);
  --live_containers_;
  trigger_schedule();
}

bool ResourceManager::container_live(ContainerId id) const {
  return containers_.find(id) != containers_.end();
}

Bytes ResourceManager::app_allocated_memory(AppId app) const {
  auto it = apps_.find(app);
  MRON_CHECK(it != apps_.end());
  return it->second.allocated_memory;
}

std::size_t ResourceManager::pending_requests() const {
  std::size_t n = 0;
  for (const auto& [id, app] : apps_) n += app.queue.size();
  return n;
}

std::int64_t ResourceManager::cluster_vcore_slots(int vcores) const {
  MRON_CHECK(vcores >= 1);
  std::int64_t slots = 0;
  for (const auto& [capacity, count] : vcore_capacity_histogram_) {
    slots += count * (capacity / vcores);  // per-node integer division
  }
  return slots;
}

void ResourceManager::index_insert(const cluster::Node& n) {
  const FreeKey key = free_key(n);
  const auto i = static_cast<std::size_t>(n.id().value());
  indexed_key_[i] = key;
  free_global_.insert(key);
  const auto rack = topo_.rack_of(n.id());
  free_by_rack_[static_cast<std::size_t>(rack.value())].insert(key);
}

void ResourceManager::index_erase(const cluster::Node& n) {
  // Erase by the remembered key: the node's live state may already have
  // moved past what it was filed under.
  const auto i = static_cast<std::size_t>(n.id().value());
  const FreeKey key = indexed_key_[i];
  free_global_.erase(key);
  const auto rack = topo_.rack_of(n.id());
  free_by_rack_[static_cast<std::size_t>(rack.value())].erase(key);
}

void ResourceManager::on_node_resources_changed(cluster::Node& n) {
  if (!node_alive(n.id())) return;  // dead nodes are not indexed
  index_erase(n);
  index_insert(n);
}

void ResourceManager::trigger_schedule() {
  if (pass_scheduled_) return;
  pass_scheduled_ = true;
  // Placement passes are RM work no matter which AM or fault path asked.
  HOST_PROF_CATEGORY(kYarn);
  engine_.schedule_after(0.0, [this] {
    pass_scheduled_ = false;
    schedule_pass();
  });
}

void ResourceManager::schedule_pass() {
  // Repeatedly let the policy pick an app and try to place one of its
  // requests; an app that fails placement is skipped for the rest of the
  // pass so the loop always terminates.
  std::vector<AppSchedState> view;
  auto rebuild_view = [&] {
    // Preserve skip flags across rebuilds within this pass.
    std::map<AppId, bool> skipped;
    for (const auto& s : view) skipped[s.id] = s.skip;
    view.clear();
    for (const auto& [id, app] : apps_) {
      AppSchedState s;
      s.id = id;
      s.submit_order = app.submit_order;
      s.weight = app.weight;
      s.queue = app.sched_queue;
      s.allocated_memory = app.allocated_memory;
      s.pending_requests = app.queue.size();
      auto it = skipped.find(id);
      s.skip = it != skipped.end() && it->second;
      view.push_back(s);
    }
  };
  rebuild_view();
  while (true) {
    auto next = policy_->pick_next(view);
    if (!next.has_value()) break;
    auto app_it = apps_.find(*next);
    MRON_CHECK(app_it != apps_.end());
    AppState& app = app_it->second;

    // Scan the app's queue for the first placeable request; MRONLINE's
    // variable-sized containers mean a stuck head must not block smaller
    // requests behind it.
    bool placed = false;
    for (auto it = app.queue.begin(); it != app.queue.end(); ++it) {
      if (try_place(*next, app, *it)) {
        app.queue.erase(it);
        placed = true;
        break;
      }
    }
    if (!placed) {
      for (auto& s : view) {
        if (s.id == *next) s.skip = true;
      }
      continue;
    }
    rebuild_view();
  }
}

void ResourceManager::set_cluster_monitor(
    const cluster::ClusterMonitor* monitor, double hot_threshold) {
  monitor_ = monitor;
  hot_threshold_ = hot_threshold;
}

void ResourceManager::set_locality_delay(int passes) {
  MRON_CHECK(passes >= 0);
  locality_delay_passes_ = passes;
}

bool ResourceManager::is_hot(const cluster::Node& node) const {
  if (monitor_ == nullptr) return false;
  const cluster::NodeSample& s = monitor_->latest(node.id());
  return s.disk_util > hot_threshold_ || s.net_util > hot_threshold_;
}

bool ResourceManager::try_place(AppId app_id, AppState& app,
                                PendingRequest& req) {
  // Delay scheduling: a request with preferences holds out for a
  // node-local slot for a bounded number of passes.
  if (locality_delay_passes_ > 0 && !req.preferred.empty() &&
      req.locality_misses < locality_delay_passes_) {
    bool local_ok = false;
    for (auto pref : req.preferred) {
      cluster::Node& n = node(pref);
      if (node_alive(pref) &&
          req.resource.fits_in(n.memory_available(), n.vcores_available())) {
        local_ok = true;
        break;
      }
    }
    if (!local_ok) {
      ++req.locality_misses;
      return false;
    }
  }
  // Prefer placements that dodge monitor-flagged hot spots; fall back to
  // hot nodes rather than leaving the request starved.
  cluster::Node* target = find_node(req, /*avoid_hot=*/monitor_ != nullptr);
  if (target == nullptr) target = find_node(req, /*avoid_hot=*/false);
  if (target == nullptr) return false;
  target->allocate(req.resource.memory, req.resource.vcores);
  app.allocated_memory += req.resource.memory;
  ++live_containers_;
  if (auto* rec = engine_.recorder()) {
    rec->metrics().counter("yarn.containers_allocated").add(1.0);
  }
  Container container;
  container.id = container_ids_.next();
  container.app = app_id;
  container.node = target->id();
  container.resource = req.resource;
  containers_.emplace(container.id,
                      LiveContainer{app_id, target->id(), req.resource});

  // Critical path: the grant ends the wait that began at the request's
  // causal origin (attempt request, retry backoff). The node is keyed by
  // container id — unique per grant — and stamped with the trace location
  // so flow events can point at the container's swimlane.
  if (auto* rec = engine_.recorder()) {
    if (req.cp_from != obs::kInvalidCpNode) {
      obs::CriticalPathBuilder& cp = rec->critical_path();
      const obs::CpNode grant = cp.stamped(
          cp.job_of(req.cp_from), "container_grant", engine_.now(),
          container.id.value(), 0, static_cast<int>(target->id().value()),
          static_cast<int>(container.id.value()));
      cp.edge(req.cp_from, grant, req.cp_blame);
      container.cp_grant = grant;
    }
  }

  // Defer the callback so the AM cannot re-enter the placement loop. The
  // deferred work is the AM's grant handler, so it bills to am_task.
  HOST_PROF_CATEGORY(kAmTask);
  engine_.schedule_after(
      0.0, [cb = std::move(req.on_allocated), container] { cb(container); });
  return true;
}

cluster::Node* ResourceManager::first_fitting(const std::set<FreeKey>& index,
                                              const PendingRequest& req,
                                              bool avoid_hot) {
  // The index orders alive nodes by (-free memory, id), so the first entry
  // passing the vcore/hot filters *is* the node the legacy full scan
  // picked: maximum free memory, ties to the lowest id. Memory-infeasible
  // entries end the walk early (everything after has less free memory).
  std::int64_t probes = 0;
  cluster::Node* found = nullptr;
  for (const auto& [neg_mem, id] : index) {
    ++probes;
    if (-neg_mem < req.resource.memory.count()) break;  // nothing fits below
    cluster::Node& n = node(cluster::NodeId(id));
    if (req.resource.vcores <= n.vcores_available() &&
        (!avoid_hot || !is_hot(n))) {
      found = &n;
      break;
    }
  }
  if (alloc_index_probes_ != nullptr && probes > 0) {
    alloc_index_probes_->add(static_cast<double>(probes));
  }
  return found;
}

cluster::Node* ResourceManager::find_node(const PendingRequest& req,
                                          bool avoid_hot) {
  auto fits = [&](const cluster::Node& n) {
    return node_alive(n.id()) &&
           req.resource.fits_in(n.memory_available(), n.vcores_available()) &&
           (!avoid_hot || !is_hot(n));
  };
  // 1. node-local
  for (auto pref : req.preferred) {
    cluster::Node& n = node(pref);
    if (fits(n)) {
      if (alloc_node_local_ != nullptr) alloc_node_local_->add(1.0);
      return &n;
    }
  }
  // 2. rack-local: the best candidate of each preferred rack comes off
  // that rack's free index in O(log n + probes); racks are compared in
  // preference order with a strict greater-than, so ties keep the earlier
  // rack's candidate exactly like the legacy nested scan did.
  cluster::Node* best = nullptr;
  for (auto pref : req.preferred) {
    const auto rack = topo_.rack_of(pref);
    cluster::Node* cand = first_fitting(
        free_by_rack_[static_cast<std::size_t>(rack.value())], req, avoid_hot);
    if (cand != nullptr &&
        (best == nullptr ||
         cand->memory_available() > best->memory_available())) {
      best = cand;
    }
  }
  if (best != nullptr) {
    if (alloc_rack_local_ != nullptr) alloc_rack_local_->add(1.0);
    return best;
  }
  // 3. anywhere: most free memory, straight off the global index.
  best = first_fitting(free_global_, req, avoid_hot);
  if (best != nullptr && alloc_any_ != nullptr) alloc_any_->add(1.0);
  return best;
}

}  // namespace mron::yarn
