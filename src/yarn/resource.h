// YARN resource primitives: the (memory, vcores) pair, containers, and ids.
//
// Unlike stock YARN of the paper's era — which fixed one container size for
// all map tasks and one for all reduce tasks — every container here carries
// its own Resource, reproducing MRONLINE's variable-sized-container
// extension of the resource scheduler.
#pragma once

#include <cstdint>
#include <ostream>

#include "cluster/topology.h"
#include "common/strong_id.h"
#include "common/units.h"

namespace mron::yarn {

struct AppTag {};
using AppId = StrongId<AppTag>;
struct ContainerTag {};
using ContainerId = StrongId<ContainerTag>;
struct RequestTag {};
using RequestId = StrongId<RequestTag>;

struct Resource {
  Bytes memory;
  int vcores = 1;

  [[nodiscard]] bool fits_in(Bytes mem_avail, int vcores_avail) const {
    return memory <= mem_avail && vcores <= vcores_avail;
  }

  friend bool operator==(const Resource& a, const Resource& b) {
    return a.memory == b.memory && a.vcores == b.vcores;
  }
  friend std::ostream& operator<<(std::ostream& os, const Resource& r) {
    return os << "<" << r.memory.mib() << " MiB, " << r.vcores << " vcores>";
  }
};

struct Container {
  ContainerId id;
  AppId app;
  cluster::NodeId node;
  Resource resource;
  /// Critical-path handle of the RM's "container_grant" node (obs::CpNode),
  /// or -1 when observation is off / the request carried no causal origin.
  /// Raw int64 so this header stays obs-free.
  std::int64_t cp_grant = -1;
};

}  // namespace mron::yarn
