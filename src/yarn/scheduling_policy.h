// Scheduling policies: which application gets the next placement attempt.
//
// The resource manager runs the placement loop; the policy only orders
// applications. FIFO serves apps in submission order; Fair serves the app
// with the smallest weighted memory allocation (the fair-share scheduler
// used in the paper's multi-tenant experiment).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/units.h"
#include "yarn/resource.h"

namespace mron::yarn {

struct AppSchedState {
  AppId id;
  std::int64_t submit_order = 0;
  double weight = 1.0;
  Bytes allocated_memory{0};
  std::size_t pending_requests = 0;
  bool skip = false;  ///< placement already failed for it in this pass
  int queue = 0;      ///< capacity-scheduler queue the app belongs to
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  /// Choose the next app to attempt, among those with pending requests and
  /// skip == false; nullopt ends the pass.
  [[nodiscard]] virtual std::optional<AppId> pick_next(
      const std::vector<AppSchedState>& apps) const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

class FifoPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::optional<AppId> pick_next(
      const std::vector<AppSchedState>& apps) const override;
  [[nodiscard]] const char* name() const override { return "fifo"; }
};

class FairPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::optional<AppId> pick_next(
      const std::vector<AppSchedState>& apps) const override;
  [[nodiscard]] const char* name() const override { return "fair"; }
};

/// YARN's capacity scheduler, simplified: queues own fractions of the
/// cluster; the most-underserved queue (allocated memory relative to its
/// capacity share) is served next, FIFO within a queue. Queues above their
/// share still run when nobody else wants the space (work conservation
/// comes from the placement loop retrying until no app can place).
class CapacityPolicy final : public SchedulingPolicy {
 public:
  /// `queue_capacities` are relative shares (normalized internally); apps
  /// name their queue via AppSchedState::queue, clamped into range.
  explicit CapacityPolicy(std::vector<double> queue_capacities);

  [[nodiscard]] std::optional<AppId> pick_next(
      const std::vector<AppSchedState>& apps) const override;
  [[nodiscard]] const char* name() const override { return "capacity"; }

  [[nodiscard]] double capacity_share(int queue) const;
  [[nodiscard]] int num_queues() const {
    return static_cast<int>(shares_.size());
  }

 private:
  std::vector<double> shares_;  // normalized to sum 1
};

std::unique_ptr<SchedulingPolicy> make_fifo_policy();
std::unique_ptr<SchedulingPolicy> make_fair_policy();
std::unique_ptr<SchedulingPolicy> make_capacity_policy(
    std::vector<double> queue_capacities);

}  // namespace mron::yarn
