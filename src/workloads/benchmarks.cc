#include "workloads/benchmarks.h"

#include <cmath>

#include "common/check.h"

namespace mron::workloads {

using mapreduce::AppProfile;
using mapreduce::JobSpec;

namespace {

constexpr int kWikipediaBlocks = 676;  // "90.5 GB"
constexpr int kFreebaseBlocks = 752;   // "100.8 GB"
constexpr int kPaperReducers = 200;

Bytes blocks_to_bytes(int blocks) { return mebibytes(128.0 * blocks); }

/// Shuffle selectivity = shuffle bytes / input bytes, from Table 3.
struct Selectivity {
  double map_output_ratio;   // pre-combiner
  double combiner_ratio;     // combiner output / map output
  double reduce_output_ratio;
  double record_bytes;
};

Selectivity selectivity_for(Benchmark b, Corpus c) {
  const bool wiki = c == Corpus::Wikipedia;
  switch (b) {
    case Benchmark::Bigram:
      // wiki: 80.8/90.5 = 0.893; out 27.6/80.8 = 0.342
      // freebase: 84.8/100.8 = 0.841; out 77.8/84.8 = 0.917
      return wiki ? Selectivity{0.94, 0.95, 0.342, 20.0}
                  : Selectivity{0.89, 0.945, 0.917, 20.0};
    case Benchmark::InvertedIndex:
      // wiki: 38/90.5 = 0.420; out 10.3/38 = 0.271
      // freebase: 21/100.8 = 0.208; out 11/21 = 0.524
      return wiki ? Selectivity{0.42, 1.0, 0.271, 60.0}
                  : Selectivity{0.208, 1.0, 0.524, 60.0};
    case Benchmark::WordCount:
      // wiki: 30.3/90.5 = 0.335; out 8.6/30.3 = 0.284
      // freebase: 16.7/100.8 = 0.166; out 9.4/16.7 = 0.563
      return wiki ? Selectivity{1.40, 0.239, 0.284, 16.0}
                  : Selectivity{1.20, 0.138, 0.563, 16.0};
    case Benchmark::TextSearch:
      // wiki: 2.3/90.5 = 0.0254; out 0.469/2.3 = 0.204
      // freebase: 0.906/100.8 = 0.0090; out 0.229/0.906 = 0.253
      return wiki ? Selectivity{0.0254, 1.0, 0.204, 120.0}
                  : Selectivity{0.0090, 1.0, 0.253, 120.0};
    case Benchmark::Terasort:
      return Selectivity{1.0, 1.0, 1.0, 100.0};
    case Benchmark::Bbp:
      return Selectivity{0.0, 1.0, 0.01, 50.0};
  }
  MRON_CHECK(false);
  return {};
}

}  // namespace

AppProfile profile_for(Benchmark b, Corpus c) {
  const Selectivity sel = selectivity_for(b, c);
  AppProfile p;
  p.map_output_ratio = sel.map_output_ratio;
  p.combiner_ratio = sel.combiner_ratio;
  p.reduce_output_ratio = sel.reduce_output_ratio;
  p.map_record_bytes = sel.record_bytes;
  switch (b) {
    case Benchmark::Bigram:  // Shuffle intensive
      p.map_cpu_secs_per_mib = 0.50;
      p.reduce_cpu_secs_per_mib = 0.12;
      p.map_working_set = mebibytes(400);
      p.reduce_working_set = mebibytes(240);
      p.partition_skew_cv = 0.20;
      break;
    case Benchmark::InvertedIndex:  // Map (wiki) / Compute (freebase)
      p.map_cpu_secs_per_mib = 0.70;
      p.reduce_cpu_secs_per_mib = 0.15;
      p.map_working_set = mebibytes(400);
      p.reduce_working_set = mebibytes(220);
      p.partition_skew_cv = 0.20;
      break;
    case Benchmark::WordCount:  // Map intensive
      p.map_cpu_secs_per_mib = 0.60;
      p.reduce_cpu_secs_per_mib = 0.15;
      p.map_working_set = mebibytes(350);
      p.reduce_working_set = mebibytes(200);
      p.partition_skew_cv = 0.20;
      break;
    case Benchmark::TextSearch:  // Compute intensive
      p.map_cpu_secs_per_mib = 0.90;
      p.reduce_cpu_secs_per_mib = 0.10;
      p.map_working_set = mebibytes(250);
      p.reduce_working_set = mebibytes(150);
      p.partition_skew_cv = 0.15;
      break;
    case Benchmark::Terasort:  // Shuffle intensive
      p.map_cpu_secs_per_mib = 0.16;
      p.reduce_cpu_secs_per_mib = 0.08;
      p.map_working_set = mebibytes(300);
      p.reduce_working_set = mebibytes(200);
      p.partition_skew_cv = 0.05;
      break;
    case Benchmark::Bbp:  // Compute intensive, multi-threaded digit slices
      p.map_cpu_secs_per_mib = 0.0;
      p.map_cpu_secs_fixed = 200.0;
      p.map_cpu_demand_cores = 2.0;
      p.map_output_bytes_fixed = kibibytes(2.52);  // 252 KB over 100 maps
      p.reduce_cpu_secs_per_mib = 0.5;
      p.map_working_set = mebibytes(220);
      p.reduce_working_set = mebibytes(120);
      break;
  }
  return p;
}

int corpus_blocks(Corpus c) {
  switch (c) {
    case Corpus::Wikipedia:
      return kWikipediaBlocks;
    case Corpus::Freebase:
      return kFreebaseBlocks;
    case Corpus::Synthetic:
      return kFreebaseBlocks;  // Terasort "100 GB"
    case Corpus::None:
      return 0;
  }
  return 0;
}

Bytes corpus_bytes(Corpus c) { return blocks_to_bytes(corpus_blocks(c)); }

const char* benchmark_name(Benchmark b) {
  switch (b) {
    case Benchmark::Bigram:
      return "Bigram";
    case Benchmark::InvertedIndex:
      return "InvertedIndex";
    case Benchmark::WordCount:
      return "Wordcount";
    case Benchmark::TextSearch:
      return "TextSearch";
    case Benchmark::Terasort:
      return "Terasort";
    case Benchmark::Bbp:
      return "BBP";
  }
  return "?";
}

const char* corpus_name(Corpus c) {
  switch (c) {
    case Corpus::Wikipedia:
      return "Wikipedia";
    case Corpus::Freebase:
      return "Freebase";
    case Corpus::Synthetic:
      return "synthetic";
    case Corpus::None:
      return "N/A";
  }
  return "?";
}

JobSpec make_job(mapreduce::Simulation& sim, Benchmark b, Corpus c) {
  if (b == Benchmark::Bbp) return make_bbp();
  if (b == Benchmark::Terasort) {
    return make_terasort(sim, corpus_bytes(Corpus::Synthetic), kPaperReducers);
  }
  JobSpec spec;
  spec.name = std::string(benchmark_name(b)) + "/" + corpus_name(c);
  spec.input = sim.load_dataset(corpus_name(c), corpus_bytes(c));
  spec.num_reduces = kPaperReducers;
  spec.profile = profile_for(b, c);
  return spec;
}

JobSpec make_terasort(mapreduce::Simulation& sim, Bytes input,
                      int num_reduces) {
  JobSpec spec;
  spec.name = "Terasort";
  spec.input = sim.load_dataset("teragen", input);
  const int maps = static_cast<int>(
      std::ceil(input.as_double() / mebibytes(128).as_double()));
  // Section 8.4's rule: reducers ~ 1/4 of mappers unless told otherwise.
  spec.num_reduces = num_reduces > 0 ? num_reduces : std::max(1, maps / 4);
  spec.profile = profile_for(Benchmark::Terasort, Corpus::Synthetic);
  return spec;
}

JobSpec make_bbp(int num_maps) {
  JobSpec spec;
  spec.name = "BBP";
  spec.num_maps_override = num_maps;
  spec.num_reduces = 1;
  spec.profile = profile_for(Benchmark::Bbp, Corpus::None);
  return spec;
}

std::vector<BenchmarkInfo> table3() {
  auto row = [](Benchmark b, Corpus c, double in_gb, double shuffle_gb,
                double out_gb, int maps, int reduces, const char* type) {
    BenchmarkInfo info;
    info.benchmark = b;
    info.corpus = c;
    info.name = benchmark_name(b);
    info.input_name = corpus_name(c);
    info.input_size = Bytes(static_cast<std::int64_t>(in_gb * 1e9));
    info.shuffle_size = Bytes(static_cast<std::int64_t>(shuffle_gb * 1e9));
    info.output_size = Bytes(static_cast<std::int64_t>(out_gb * 1e9));
    info.num_maps = maps;
    info.num_reduces = reduces;
    info.job_type = type;
    return info;
  };
  using B = Benchmark;
  using C = Corpus;
  return {
      row(B::Bigram, C::Wikipedia, 90.5, 80.8, 27.6, 676, 200, "Shuffle"),
      row(B::InvertedIndex, C::Wikipedia, 90.5, 38.0, 10.3, 676, 200, "Map"),
      row(B::WordCount, C::Wikipedia, 90.5, 30.3, 8.6, 676, 200, "Map"),
      row(B::TextSearch, C::Wikipedia, 90.5, 2.3, 0.469, 676, 200, "Compute"),
      row(B::Bigram, C::Freebase, 100.8, 84.8, 77.8, 752, 200, "Shuffle"),
      row(B::InvertedIndex, C::Freebase, 100.8, 21.0, 11.0, 752, 200,
          "Compute"),
      row(B::WordCount, C::Freebase, 100.8, 16.7, 9.4, 752, 200, "Map"),
      row(B::TextSearch, C::Freebase, 100.8, 0.906, 0.229, 752, 200,
          "Compute"),
      row(B::Terasort, C::Synthetic, 100.0, 100.0, 100.0, 752, 200,
          "Shuffle"),
      row(B::Bbp, C::None, 0.0, 0.000252, 0.0, 100, 1, "Compute"),
  };
}

}  // namespace mron::workloads
