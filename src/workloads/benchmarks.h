// The paper's benchmark suite (Table 3).
//
// Each benchmark is an AppProfile (per-byte CPU costs, selectivities,
// record sizes, working sets) plus a corpus. Input sizes are expressed in
// 128 MiB blocks so the map counts match the paper exactly: Wikipedia =
// 676 blocks ("90.5 GB"), Freebase = 752 blocks ("100.8 GB"), Terasort
// 100 GB = 752 blocks. Selectivities are derived from Table 3's
// input/shuffle/output columns; CPU costs are calibrated so job phase mixes
// match the paper's Map/Shuffle/Compute classification.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "mapreduce/job.h"
#include "mapreduce/simulation.h"

namespace mron::workloads {

enum class Benchmark {
  Bigram,
  InvertedIndex,
  WordCount,
  TextSearch,
  Terasort,
  Bbp,
};

enum class Corpus { Wikipedia, Freebase, Synthetic, None };

/// Table-3 row: declared characteristics for reporting/validation.
struct BenchmarkInfo {
  Benchmark benchmark;
  Corpus corpus;
  std::string name;        // e.g. "Bigram"
  std::string input_name;  // e.g. "Wikipedia"
  Bytes input_size;
  Bytes shuffle_size;  // expected, from Table 3
  Bytes output_size;   // expected, from Table 3
  int num_maps;
  int num_reduces;
  std::string job_type;  // Shuffle / Map / Compute
};

/// All ten Table-3 rows, in table order.
std::vector<BenchmarkInfo> table3();

const char* benchmark_name(Benchmark b);
const char* corpus_name(Corpus c);

/// The application profile for a benchmark/corpus pair.
mapreduce::AppProfile profile_for(Benchmark b, Corpus c);

/// Number of 128 MiB input blocks for a corpus (0 for None).
int corpus_blocks(Corpus c);
Bytes corpus_bytes(Corpus c);

/// Build a ready-to-submit JobSpec. Creates (or reuses, see Simulation) the
/// corpus dataset inside `sim`'s DFS. For Terasort, `terasort_bytes`
/// overrides the input size (Figure 13's sweep); reducers default to the
/// paper's 200 (or ~maps/4 for small Terasort jobs, matching Section 8.4).
mapreduce::JobSpec make_job(mapreduce::Simulation& sim, Benchmark b, Corpus c);
mapreduce::JobSpec make_terasort(mapreduce::Simulation& sim, Bytes input,
                                 int num_reduces = -1);
mapreduce::JobSpec make_bbp(int num_maps = 100);

}  // namespace mron::workloads
