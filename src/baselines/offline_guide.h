// The "offline tuning guide" comparator of Section 8.2 — a static
// configuration derived from vendor best-practice rules (Cloudera-style)
// applied to job characteristics collected over profiling runs.
//
// It gets near-oracle knowledge of the application (the paper's offline
// process ran the job many times to measure it), so its configuration is
// expected to rival MRONLINE's — the difference the paper emphasizes is the
// *number of runs* needed to get there, not the end quality.
#pragma once

#include <cstdint>

#include "mapreduce/job.h"

namespace mron::baselines {

/// The stock YARN defaults (Table 2).
inline mapreduce::JobConfig default_config() { return {}; }

/// Best-practice static config from oracle job characteristics.
/// `block_size` is the DFS block (= map input split) size.
mapreduce::JobConfig offline_guide_config(const mapreduce::JobSpec& spec,
                                          Bytes block_size,
                                          int num_maps);

/// The analytic optimal map-side spill count for a job: every
/// combiner-output record written exactly once (Figures 7-9's "Optimal").
std::int64_t optimal_map_spill_records(const mapreduce::AppProfile& profile,
                                       Bytes total_input, int num_maps);

}  // namespace mron::baselines
