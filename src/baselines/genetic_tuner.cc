#include "baselines/genetic_tuner.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "sim/parallel_runner.h"
#include "tuner/eval_cache.h"

namespace mron::baselines {

using mapreduce::JobConfig;
using mapreduce::ParamRegistry;

namespace {

/// Genome = normalized coordinates over the full Table-2 registry.
std::vector<double> random_genome(Rng& rng, std::size_t dims) {
  std::vector<double> g(dims);
  for (auto& v : g) v = rng.uniform01();
  return g;
}

JobConfig decode(const std::vector<double>& genome) {
  const auto& reg = ParamRegistry::standard();
  JobConfig cfg;
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const auto& p = reg.at(i);
    reg.set(cfg, i, p.min + genome[i] * (p.max - p.min));
  }
  mapreduce::clamp_constraints(cfg);
  return cfg;
}

}  // namespace

GeneticOfflineTuner::GeneticOfflineTuner(GeneticOptions options)
    : options_(options), rng_(options.seed) {
  MRON_CHECK(options_.population >= 2);
}

JobConfig GeneticOfflineTuner::tune(const Evaluator& evaluate,
                                    int budget_runs) {
  MRON_CHECK(evaluate != nullptr);
  MRON_CHECK(budget_runs >= options_.population);
  const std::size_t dims = ParamRegistry::standard().size();

  struct Individual {
    std::vector<double> genome;
    double seconds = std::numeric_limits<double>::infinity();
  };
  std::vector<Individual> pop(static_cast<std::size_t>(options_.population));
  for (auto& ind : pop) ind.genome = random_genome(rng_, dims);
  // Seed one individual with the defaults so the GA never regresses below
  // them (Gunther does the same).
  pop[0].genome =
      [&] {
        const auto& reg = ParamRegistry::standard();
        std::vector<double> g(dims);
        const JobConfig def;
        for (std::size_t i = 0; i < dims; ++i) {
          const auto& p = reg.at(i);
          g[i] = p.max > p.min
                     ? (reg.get(def, i) - p.min) / (p.max - p.min)
                     : 0.0;
        }
        return g;
      }();

  // Memoize fitness per decoded config: quantization + clamping collapse
  // distinct genomes onto the same JobConfig, so repeat evaluations (and
  // whole re-runs of a recurring configuration) become cache hits. The
  // budget still counts every logical evaluation — cached or not — so the
  // GA's trajectory is identical with the cache disabled.
  tuner::EvalCache<double> cache;
  auto fitness = [&](const JobConfig& cfg) {
    if (!tuner::eval_cache_enabled()) return evaluate(cfg);
    tuner::CacheKey key;
    key.add_config(ParamRegistry::extended(), cfg);
    return cache.get_or_compute(key, [&] { return evaluate(cfg); });
  };

  runs_used_ = 0;
  auto eval = [&](Individual& ind) {
    ind.seconds = fitness(decode(ind.genome));
    ++runs_used_;
  };
  // Seeding wave: every initial individual is an independent full job run,
  // so fan them across the pool. Fitness lands by index, which makes the
  // result identical at any options.jobs.
  const auto wave = static_cast<std::size_t>(
      std::min<int>(options_.population, budget_runs));
  sim::ParallelRunner pool(options_.jobs);
  pool.for_each(wave, [&](std::size_t i) {
    pop[i].seconds = fitness(decode(pop[i].genome));
  });
  runs_used_ = static_cast<int>(wave);

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (int i = 0; i < options_.tournament; ++i) {
      const auto& cand = pop[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(pop.size()) - 1))];
      if (best == nullptr || cand.seconds < best->seconds) best = &cand;
    }
    return *best;
  };

  while (runs_used_ < budget_runs) {
    // Offspring: uniform crossover of two tournament winners + mutation.
    Individual child;
    const Individual& a = tournament_pick();
    const Individual& b = tournament_pick();
    child.genome.resize(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      child.genome[d] = rng_.uniform01() < 0.5 ? a.genome[d] : b.genome[d];
      if (rng_.uniform01() < options_.mutation_rate) {
        child.genome[d] = std::clamp(
            child.genome[d] + rng_.normal(0.0, options_.mutation_sigma), 0.0,
            1.0);
      }
    }
    eval(child);
    // Steady-state replacement: evict the worst.
    auto worst = std::max_element(
        pop.begin(), pop.end(), [](const Individual& x, const Individual& y) {
          return x.seconds < y.seconds;
        });
    if (child.seconds < worst->seconds) *worst = std::move(child);
  }

  auto best = std::min_element(
      pop.begin(), pop.end(), [](const Individual& x, const Individual& y) {
        return x.seconds < y.seconds;
      });
  best_seconds_ = best->seconds;
  return decode(best->genome);
}

}  // namespace mron::baselines
