// Gunther-style offline tuner (Liao et al., Euro-Par'13; Section 9 of the
// MRONLINE paper): a genetic search where EVERY fitness evaluation is a
// full job execution — the paper reports 20-40 test runs to converge, the
// cost MRONLINE's single expedited test run is designed to avoid.
#pragma once

#include <functional>

#include "common/rng.h"
#include "mapreduce/params.h"

namespace mron::baselines {

struct GeneticOptions {
  int population = 8;
  double mutation_rate = 0.25;
  double mutation_sigma = 0.15;
  int tournament = 2;
  std::uint64_t seed = 7;
  /// Worker threads for the initial-population fitness wave (each fitness
  /// evaluation is a whole job run, all mutually independent). The
  /// steady-state loop stays sequential — each child depends on the last
  /// replacement — so results are identical at any `jobs`, but the seeding
  /// wave is the embarrassingly parallel chunk of the budget. The evaluator
  /// must be thread-safe when jobs > 1 (one fresh Simulation per call is).
  int jobs = 1;
};

class GeneticOfflineTuner {
 public:
  /// Fitness: one full job run with `config`; returns execution seconds.
  using Evaluator = std::function<double(const mapreduce::JobConfig&)>;

  explicit GeneticOfflineTuner(GeneticOptions options = {});

  /// Run the GA until `budget_runs` evaluations are spent (Gunther's 20-40
  /// range). Returns the best configuration found.
  mapreduce::JobConfig tune(const Evaluator& evaluate, int budget_runs);

  [[nodiscard]] int runs_used() const { return runs_used_; }
  [[nodiscard]] double best_seconds() const { return best_seconds_; }

 private:
  GeneticOptions options_;
  Rng rng_;
  int runs_used_ = 0;
  double best_seconds_ = 0.0;
};

}  // namespace mron::baselines
