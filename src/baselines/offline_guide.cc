#include "baselines/offline_guide.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "mapreduce/spill_model.h"

namespace mron::baselines {

using mapreduce::AppProfile;
using mapreduce::JobConfig;
using mapreduce::JobSpec;

JobConfig offline_guide_config(const JobSpec& spec, Bytes block_size,
                               int num_maps) {
  const AppProfile& p = spec.profile;
  JobConfig cfg;

  // --- map side: size the sort buffer for a single spill -------------------
  const double out_mb =
      block_size.mib() * p.map_output_ratio +
      p.map_output_bytes_fixed.mib();
  const double data_fraction =
      p.map_record_bytes /
      (p.map_record_bytes + mapreduce::kSpillMetadataBytes);
  const double wanted_sort =
      std::min(1024.0, out_mb / (0.99 * data_fraction) + 16.0);
  cfg.io_sort_mb = std::ceil(wanted_sort / 16.0) * 16.0;
  cfg.sort_spill_percent = 0.99;
  cfg.io_sort_factor = 64;  // "raise io.sort.factor" is stock guide advice

  // Container: measured working set + the sort buffer + safety margin.
  const double map_need =
      p.map_working_set.mib() * 1.1 + cfg.io_sort_mb + 128.0;
  cfg.map_memory_mb =
      std::clamp(std::ceil(map_need / 64.0) * 64.0, 512.0, 3072.0);
  cfg.map_cpu_vcores =
      std::clamp(std::ceil(p.map_cpu_demand_cores), 1.0, 4.0);

  // --- reduce side ----------------------------------------------------------
  const double total_shuffle_mb =
      out_mb * p.combiner_ratio * num_maps;
  const double shuffle_per_reduce_mb =
      spec.num_reduces > 0 ? total_shuffle_mb / spec.num_reduces : 0.0;

  cfg.shuffle_input_buffer_percent = 0.8;
  cfg.merge_inmem_threshold = 0;  // merge on memory consumption only
  cfg.shuffle_memory_limit_percent = 0.25;

  // Size the reduce container so the whole partition can stay in memory
  // when that is affordable; otherwise accept disk merges with a large
  // merge trigger.
  const double reduce_ws = p.reduce_working_set.mib() * 1.1;
  const double fit_mb =
      (shuffle_per_reduce_mb * 1.2 / mapreduce::kHeapFraction /
       cfg.shuffle_input_buffer_percent) +
      reduce_ws;
  if (shuffle_per_reduce_mb > 0.0 && fit_mb <= 2048.0) {
    cfg.reduce_memory_mb =
        std::clamp(std::ceil(fit_mb / 64.0) * 64.0, 512.0, 3072.0);
    cfg.reduce_input_buffer_percent = cfg.shuffle_input_buffer_percent;
  } else {
    cfg.reduce_memory_mb = 1024;
    cfg.reduce_input_buffer_percent = 0.0;
  }
  cfg.shuffle_merge_percent = cfg.shuffle_input_buffer_percent - 0.04;
  cfg.reduce_cpu_vcores =
      std::clamp(std::ceil(p.reduce_cpu_demand_cores), 1.0, 4.0);
  cfg.shuffle_parallelcopies =
      std::clamp(std::ceil(num_maps / 20.0), 5.0, 50.0);

  mapreduce::clamp_constraints(cfg);
  return cfg;
}

std::int64_t optimal_map_spill_records(const AppProfile& profile,
                                       Bytes total_input, int num_maps) {
  const Bytes output =
      total_input * profile.map_output_ratio +
      profile.map_output_bytes_fixed * static_cast<double>(num_maps);
  const Bytes combined = output * profile.combiner_ratio;
  return static_cast<std::int64_t>(
      std::llround(combined.as_double() / profile.map_record_bytes));
}

}  // namespace mron::baselines
