// Cluster shape: racks, nodes, and their hardware rates.
//
// Defaults reproduce the paper's testbed: 19 nodes (1 master + 18 slaves)
// in two racks of 9 and 10, each slave with two quad-core Xeons (8 physical
// cores), 8 GB RAM, one SATA disk, and a 1 Gbps NIC. YARN exposes 28 vcores
// and 6 GB per node for containers (4 vcores / 2 GB reserved for the HDFS
// datanode and node-manager daemons).
#pragma once

#include <cstdint>
#include <vector>

#include "common/strong_id.h"
#include "common/units.h"

namespace mron::cluster {

struct NodeTag {};
using NodeId = StrongId<NodeTag>;
struct RackTag {};
using RackId = StrongId<RackTag>;

struct ClusterSpec {
  int num_slaves = 18;
  std::vector<int> rack_sizes = {9, 9};  // slaves per rack

  // CPU. `total_vcores` is yarn.nodemanager total; `container_vcores` is
  // what the scheduler may hand to containers. Physical core throughput is
  // normalized to 1.0 "core-units"; a vcore is worth
  // physical_cores / total_vcores core-units (the paper's example: 32
  // vcores on an 8-core box -> 1/4 core each).
  int physical_cores = 8;
  int total_vcores = 32;
  int container_vcores = 28;

  // Memory per node.
  Bytes node_memory = gibibytes(8);
  Bytes container_memory = gibibytes(6);

  // CPU enforcement model: one vcore entitles a container to a CFS-quota-
  // style cap of `cpu_quota_per_vcore` physical-core units; the node's
  // aggregate container CPU is still bounded by container_core_units(), so
  // vcores act as admission-control currency while contention is resolved
  // by fair sharing. (YARN's strict cgroup enforcement mode.)
  double cpu_quota_per_vcore = 1.0;

  // Disk: one SATA spindle, sequential-ish bandwidth shared across streams,
  // with throughput degrading under concurrency (seek thrashing): effective
  // bandwidth = disk_bandwidth / (1 + disk_seek_penalty * (streams - 1)).
  BytesPerSec disk_bandwidth = mib_per_sec(90);
  double disk_seek_penalty = 0.06;

  // Network: per-node NIC and the factor applied to cross-rack streams
  // (top-of-rack uplink oversubscription).
  BytesPerSec nic_bandwidth = gbit_per_sec(1);
  double inter_rack_factor = 0.5;

  // CPU actually consumed by the co-located HDFS datanode, node manager,
  // and shuffle service, subtracted from what containers can burn.
  double daemon_core_reserve = 1.0;

  /// Core-units available to containers on one node.
  [[nodiscard]] double container_core_units() const {
    return static_cast<double>(physical_cores) *
               static_cast<double>(container_vcores) /
               static_cast<double>(total_vcores) -
           daemon_core_reserve;
  }
  /// Core-units represented by one vcore.
  [[nodiscard]] double core_units_per_vcore() const {
    return static_cast<double>(physical_cores) /
           static_cast<double>(total_vcores);
  }
};

/// Static placement info: which rack each node lives in.
class Topology {
 public:
  explicit Topology(const ClusterSpec& spec);

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(rack_of_.size());
  }
  [[nodiscard]] RackId rack_of(NodeId node) const;
  [[nodiscard]] int num_racks() const { return num_racks_; }
  [[nodiscard]] bool same_rack(NodeId a, NodeId b) const {
    return rack_of(a) == rack_of(b);
  }
  [[nodiscard]] std::vector<NodeId> nodes_in_rack(RackId rack) const;
  [[nodiscard]] std::vector<NodeId> all_nodes() const;

 private:
  std::vector<RackId> rack_of_;  // indexed by node id
  int num_racks_ = 0;
};

}  // namespace mron::cluster
