// Cluster shape: racks, nodes, and their hardware rates.
//
// Defaults reproduce the paper's testbed: 19 nodes (1 master + 18 slaves)
// in two racks of 9 and 10, each slave with two quad-core Xeons (8 physical
// cores), 8 GB RAM, one SATA disk, and a 1 Gbps NIC. YARN exposes 28 vcores
// and 6 GB per node for containers (4 vcores / 2 GB reserved for the HDFS
// datanode and node-manager daemons).
//
// Beyond the testbed, a spec may carry heterogeneous `groups`: each group
// contributes whole racks of identical nodes, so every rack stays
// homogeneous (the ToR uplink model needs one NIC rate per rack) while the
// cluster as a whole can mix hardware classes (cluster_spec.h parses the
// `--cluster=SPEC` grammar into this form).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/strong_id.h"
#include "common/units.h"

namespace mron::cluster {

struct NodeTag {};
using NodeId = StrongId<NodeTag>;
struct RackTag {};
using RackId = StrongId<RackTag>;

/// Hardware of one node class. The fields mirror ClusterSpec's top-level
/// homogeneous knobs; a heterogeneous cluster carries one NodeHardware per
/// group.
struct NodeHardware {
  // CPU. `total_vcores` is yarn.nodemanager total; `container_vcores` is
  // what the scheduler may hand to containers. Physical core throughput is
  // normalized to 1.0 "core-units"; a vcore is worth
  // physical_cores / total_vcores core-units (the paper's example: 32
  // vcores on an 8-core box -> 1/4 core each).
  int physical_cores = 8;
  int total_vcores = 32;
  int container_vcores = 28;

  // Memory per node.
  Bytes node_memory = gibibytes(8);
  Bytes container_memory = gibibytes(6);

  // CPU enforcement model: one vcore entitles a container to a CFS-quota-
  // style cap of `cpu_quota_per_vcore` physical-core units; the node's
  // aggregate container CPU is still bounded by container_core_units(), so
  // vcores act as admission-control currency while contention is resolved
  // by fair sharing. (YARN's strict cgroup enforcement mode.)
  double cpu_quota_per_vcore = 1.0;

  // Disk: one SATA spindle, sequential-ish bandwidth shared across streams,
  // with throughput degrading under concurrency (seek thrashing): effective
  // bandwidth = disk_bandwidth / (1 + disk_seek_penalty * (streams - 1)).
  BytesPerSec disk_bandwidth = mib_per_sec(90);
  double disk_seek_penalty = 0.06;

  // Per-node NIC.
  BytesPerSec nic_bandwidth = gbit_per_sec(1);

  // CPU actually consumed by the co-located HDFS datanode, node manager,
  // and shuffle service, subtracted from what containers can burn.
  double daemon_core_reserve = 1.0;

  /// Core-units available to containers on one node.
  [[nodiscard]] double container_core_units() const {
    return static_cast<double>(physical_cores) *
               static_cast<double>(container_vcores) /
               static_cast<double>(total_vcores) -
           daemon_core_reserve;
  }
  /// Core-units represented by one vcore.
  [[nodiscard]] double core_units_per_vcore() const {
    return static_cast<double>(physical_cores) /
           static_cast<double>(total_vcores);
  }
};

/// One hardware class contributing `racks` whole racks of `nodes_per_rack`
/// identical nodes. Node ids are assigned group by group, rack by rack, so
/// every rack is a contiguous, homogeneous id range.
struct NodeGroup {
  std::string name;  ///< label for spec rendering ("std", "bigmem", ...)
  int racks = 1;
  int nodes_per_rack = 0;
  NodeHardware hardware;
};

struct ClusterSpec {
  int num_slaves = 18;
  std::vector<int> rack_sizes = {9, 9};  // slaves per rack

  // Homogeneous hardware knobs (the 19-node testbed defaults). These stay
  // authoritative when `groups` is empty; with groups they describe the
  // *representative* node class (the first group) for consumers that model
  // a single hardware point (the what-if predictor, static planner).
  int physical_cores = 8;
  int total_vcores = 32;
  int container_vcores = 28;
  Bytes node_memory = gibibytes(8);
  Bytes container_memory = gibibytes(6);
  double cpu_quota_per_vcore = 1.0;
  BytesPerSec disk_bandwidth = mib_per_sec(90);
  double disk_seek_penalty = 0.06;
  BytesPerSec nic_bandwidth = gbit_per_sec(1);
  double daemon_core_reserve = 1.0;

  // Factor applied to cross-rack streams (top-of-rack uplink
  // oversubscription). Cluster-wide, not per group.
  double inter_rack_factor = 0.5;

  /// Heterogeneous node classes; empty = homogeneous cluster described by
  /// the top-level fields + rack_sizes. Non-empty groups are authoritative
  /// for the topology; callers building groups by hand should finish with
  /// sync_totals().
  std::vector<NodeGroup> groups;

  /// The top-level homogeneous knobs bundled as a NodeHardware.
  [[nodiscard]] NodeHardware default_hardware() const;

  /// Recompute num_slaves/rack_sizes from `groups` and copy the first
  /// group's hardware into the representative top-level fields. No-op when
  /// groups is empty.
  void sync_totals();

  /// Total slave count — groups when present, else num_slaves.
  [[nodiscard]] int total_slaves() const;

  /// Core-units available to containers on one (representative) node.
  [[nodiscard]] double container_core_units() const {
    return default_hardware().container_core_units();
  }
  /// Core-units represented by one vcore.
  [[nodiscard]] double core_units_per_vcore() const {
    return default_hardware().core_units_per_vcore();
  }
};

/// Static placement info: which rack each node lives in, which hardware
/// class it runs, and where each rack's contiguous id range starts. Racks
/// are contiguous by construction (both the legacy rack_sizes path and the
/// grouped path assign ids rack by rack), which is what makes O(1)
/// rack-range arithmetic — DFS placement, rack-local scheduling — valid.
class Topology {
 public:
  explicit Topology(const ClusterSpec& spec);

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(rack_of_.size());
  }
  [[nodiscard]] RackId rack_of(NodeId node) const;
  [[nodiscard]] int num_racks() const {
    return static_cast<int>(racks_.size());
  }
  [[nodiscard]] bool same_rack(NodeId a, NodeId b) const {
    return rack_of(a) == rack_of(b);
  }
  /// First node id in `rack` (racks are contiguous id ranges).
  [[nodiscard]] int rack_first_node(RackId rack) const;
  [[nodiscard]] int rack_size(RackId rack) const;
  /// Hardware of `node` / of every node in `rack` (racks are homogeneous).
  [[nodiscard]] const NodeHardware& hardware(NodeId node) const;
  [[nodiscard]] const NodeHardware& rack_hardware(RackId rack) const;
  [[nodiscard]] std::vector<NodeId> nodes_in_rack(RackId rack) const;
  [[nodiscard]] std::vector<NodeId> all_nodes() const;

 private:
  struct RackInfo {
    int first_node = 0;
    int size = 0;
    int hardware = 0;  ///< index into hardware_
  };

  std::vector<RackId> rack_of_;  // indexed by node id
  std::vector<RackInfo> racks_;
  std::vector<NodeHardware> hardware_;
};

}  // namespace mron::cluster
