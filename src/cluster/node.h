// A slave node: CPU and disk servers plus memory bookkeeping.
//
// CPU is a capacity-capped processor-sharing server in "core-units"
// (1.0 = one physical core); each task stream is capped by the core-units
// its container's vcores entitle it to. Disk is a plain PS server in bytes.
// Memory is bookkept at two levels: *allocated* (container reservations,
// enforced by the scheduler) and *used* (task working sets, reported by the
// task models for utilization monitoring).
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "cluster/topology.h"
#include "common/check.h"
#include "common/units.h"
#include "sim/shared_server.h"

namespace mron::cluster {

class Node {
 public:
  Node(sim::Engine& engine, NodeId id, const NodeHardware& hw);
  /// Convenience for homogeneous clusters: the spec's top-level hardware.
  Node(sim::Engine& engine, NodeId id, const ClusterSpec& spec);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }

  // --- resource servers ---------------------------------------------------
  /// CPU work is in core-seconds; `cap` per stream is in core-units.
  [[nodiscard]] sim::SharedServer& cpu() { return cpu_; }
  /// Disk work is in bytes.
  [[nodiscard]] sim::SharedServer& disk() { return disk_; }
  /// NIC ingress (bytes). Transfers are managed by Fabric.
  [[nodiscard]] sim::SharedServer& nic_in() { return nic_in_; }

  // --- container memory accounting ---------------------------------------
  [[nodiscard]] Bytes memory_capacity() const { return memory_capacity_; }
  [[nodiscard]] Bytes memory_allocated() const { return memory_allocated_; }
  [[nodiscard]] Bytes memory_available() const {
    return memory_capacity_ - memory_allocated_;
  }
  [[nodiscard]] int vcores_capacity() const { return vcores_capacity_; }
  [[nodiscard]] int vcores_allocated() const { return vcores_allocated_; }
  [[nodiscard]] int vcores_available() const {
    return vcores_capacity_ - vcores_allocated_;
  }

  /// Reserve container resources. Callers must have checked availability.
  void allocate(Bytes memory, int vcores);
  void release(Bytes memory, int vcores);

  /// Observer fired after every allocate/release — the ResourceManager's
  /// free-resource index re-keys the node here, so the index stays exact
  /// even when test code mutates a node directly. At most one observer.
  using ResourceObserver = std::function<void(Node&)>;
  void set_resource_observer(ResourceObserver cb) {
    resource_observer_ = std::move(cb);
  }

  /// Observer fired whenever the node *does something* that can take it out
  /// of the idle state: a stream submitted to any of its servers, container
  /// memory allocated, or task working-set memory reported. The cluster
  /// monitor's dirty-set sampler listens here, so idle nodes cost it
  /// nothing per tick. Fires on every such action (not only on idle->active
  /// edges); the observer must be O(1) and idempotent. At most one
  /// observer; setting it rewires the servers' activity callbacks.
  using ActivityObserver = std::function<void(Node&)>;
  void set_activity_observer(ActivityObserver cb);

  // --- used-memory reporting (monitoring only) -----------------------------
  void add_used_memory(Bytes delta) {
    memory_used_ += delta;
    if (activity_observer_) activity_observer_(*this);
  }
  void sub_used_memory(Bytes delta) {
    memory_used_ -= delta;
    MRON_CHECK(memory_used_ >= Bytes(0));
  }
  [[nodiscard]] Bytes memory_used() const { return memory_used_; }

  /// CPU cap (in core-units) a container with `vcores` is entitled to.
  [[nodiscard]] double cpu_quota(int vcores) const {
    return static_cast<double>(vcores) * cpu_quota_per_vcore_;
  }

 private:
  NodeId id_;
  sim::SharedServer cpu_;
  sim::SharedServer disk_;
  sim::SharedServer nic_in_;
  Bytes memory_capacity_;
  Bytes memory_allocated_{0};
  Bytes memory_used_{0};
  int vcores_capacity_;
  int vcores_allocated_ = 0;
  double cpu_quota_per_vcore_;
  ResourceObserver resource_observer_;
  ActivityObserver activity_observer_;
};

}  // namespace mron::cluster
