#include "cluster/node.h"

#include <string>
#include <utility>

namespace mron::cluster {

namespace {
std::string server_name(NodeId id, const char* what) {
  return "node" + std::to_string(id.value()) + "/" + what;
}
}  // namespace

Node::Node(sim::Engine& engine, NodeId id, const NodeHardware& hw)
    : id_(id),
      cpu_(engine, hw.container_core_units(), server_name(id, "cpu")),
      disk_(engine, hw.disk_bandwidth.rate(), server_name(id, "disk"),
            hw.disk_seek_penalty),
      nic_in_(engine, hw.nic_bandwidth.rate(), server_name(id, "nic_in")),
      memory_capacity_(hw.container_memory),
      vcores_capacity_(hw.container_vcores),
      cpu_quota_per_vcore_(hw.cpu_quota_per_vcore) {}

Node::Node(sim::Engine& engine, NodeId id, const ClusterSpec& spec)
    : Node(engine, id, spec.default_hardware()) {}

void Node::allocate(Bytes memory, int vcores) {
  MRON_CHECK_MSG(memory <= memory_available(),
                 "node " << id_ << " memory over-allocation");
  MRON_CHECK_MSG(vcores <= vcores_available(),
                 "node " << id_ << " vcore over-allocation");
  memory_allocated_ += memory;
  vcores_allocated_ += vcores;
  if (resource_observer_) resource_observer_(*this);
  if (activity_observer_) activity_observer_(*this);
}

void Node::set_activity_observer(ActivityObserver cb) {
  activity_observer_ = std::move(cb);
  if (activity_observer_) {
    // One thunk shared by all three servers: any stream submission marks
    // the whole node dirty.
    const auto mark = [this] {
      if (activity_observer_) activity_observer_(*this);
    };
    cpu_.set_activity_callback(mark);
    disk_.set_activity_callback(mark);
    nic_in_.set_activity_callback(mark);
  } else {
    cpu_.set_activity_callback({});
    disk_.set_activity_callback({});
    nic_in_.set_activity_callback({});
  }
}

void Node::release(Bytes memory, int vcores) {
  memory_allocated_ -= memory;
  vcores_allocated_ -= vcores;
  MRON_CHECK(memory_allocated_ >= Bytes(0));
  MRON_CHECK(vcores_allocated_ >= 0);
  if (resource_observer_) resource_observer_(*this);
}

}  // namespace mron::cluster
