#include "cluster/node.h"

#include <string>

namespace mron::cluster {

namespace {
std::string server_name(NodeId id, const char* what) {
  return "node" + std::to_string(id.value()) + "/" + what;
}
}  // namespace

Node::Node(sim::Engine& engine, NodeId id, const ClusterSpec& spec)
    : id_(id),
      cpu_(engine, spec.container_core_units(), server_name(id, "cpu")),
      disk_(engine, spec.disk_bandwidth.rate(), server_name(id, "disk"),
            spec.disk_seek_penalty),
      nic_in_(engine, spec.nic_bandwidth.rate(), server_name(id, "nic_in")),
      memory_capacity_(spec.container_memory),
      vcores_capacity_(spec.container_vcores),
      cpu_quota_per_vcore_(spec.cpu_quota_per_vcore) {}

void Node::allocate(Bytes memory, int vcores) {
  MRON_CHECK_MSG(memory <= memory_available(),
                 "node " << id_ << " memory over-allocation");
  MRON_CHECK_MSG(vcores <= vcores_available(),
                 "node " << id_ << " vcore over-allocation");
  memory_allocated_ += memory;
  vcores_allocated_ += vcores;
}

void Node::release(Bytes memory, int vcores) {
  memory_allocated_ -= memory;
  vcores_allocated_ -= vcores;
  MRON_CHECK(memory_allocated_ >= Bytes(0));
  MRON_CHECK(vcores_allocated_ >= 0);
}

}  // namespace mron::cluster
