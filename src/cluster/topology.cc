#include "cluster/topology.h"

#include "common/check.h"

namespace mron::cluster {

NodeHardware ClusterSpec::default_hardware() const {
  NodeHardware hw;
  hw.physical_cores = physical_cores;
  hw.total_vcores = total_vcores;
  hw.container_vcores = container_vcores;
  hw.node_memory = node_memory;
  hw.container_memory = container_memory;
  hw.cpu_quota_per_vcore = cpu_quota_per_vcore;
  hw.disk_bandwidth = disk_bandwidth;
  hw.disk_seek_penalty = disk_seek_penalty;
  hw.nic_bandwidth = nic_bandwidth;
  hw.daemon_core_reserve = daemon_core_reserve;
  return hw;
}

void ClusterSpec::sync_totals() {
  if (groups.empty()) return;
  num_slaves = 0;
  rack_sizes.clear();
  for (const NodeGroup& g : groups) {
    MRON_CHECK_MSG(g.racks >= 1 && g.nodes_per_rack >= 1,
                   "group '" << g.name << "' needs racks >= 1 and nodes >= 1");
    for (int r = 0; r < g.racks; ++r) {
      rack_sizes.push_back(g.nodes_per_rack);
      num_slaves += g.nodes_per_rack;
    }
  }
  // Representative hardware for single-point consumers (what-if model).
  const NodeHardware& hw = groups.front().hardware;
  physical_cores = hw.physical_cores;
  total_vcores = hw.total_vcores;
  container_vcores = hw.container_vcores;
  node_memory = hw.node_memory;
  container_memory = hw.container_memory;
  cpu_quota_per_vcore = hw.cpu_quota_per_vcore;
  disk_bandwidth = hw.disk_bandwidth;
  disk_seek_penalty = hw.disk_seek_penalty;
  nic_bandwidth = hw.nic_bandwidth;
  daemon_core_reserve = hw.daemon_core_reserve;
}

int ClusterSpec::total_slaves() const {
  if (groups.empty()) return num_slaves;
  int total = 0;
  for (const NodeGroup& g : groups) total += g.racks * g.nodes_per_rack;
  return total;
}

Topology::Topology(const ClusterSpec& spec) {
  if (spec.groups.empty()) {
    // Homogeneous cluster: racks from rack_sizes, one hardware class.
    hardware_.push_back(spec.default_hardware());
    int total = 0;
    for (int r = 0; r < static_cast<int>(spec.rack_sizes.size()); ++r) {
      racks_.push_back(RackInfo{total, spec.rack_sizes[r], 0});
      for (int i = 0; i < spec.rack_sizes[r]; ++i) {
        rack_of_.emplace_back(r);
        ++total;
      }
    }
    MRON_CHECK_MSG(total == spec.num_slaves,
                   "rack sizes sum to " << total << ", expected "
                                        << spec.num_slaves);
    return;
  }
  // Grouped cluster: each group contributes whole racks of one hardware
  // class; ids are assigned group by group so every rack is contiguous.
  int total = 0;
  for (const NodeGroup& g : spec.groups) {
    MRON_CHECK_MSG(g.racks >= 1 && g.nodes_per_rack >= 1,
                   "group '" << g.name << "' needs racks >= 1 and nodes >= 1");
    const int hw = static_cast<int>(hardware_.size());
    hardware_.push_back(g.hardware);
    for (int r = 0; r < g.racks; ++r) {
      const int rack_id = static_cast<int>(racks_.size());
      racks_.push_back(RackInfo{total, g.nodes_per_rack, hw});
      for (int i = 0; i < g.nodes_per_rack; ++i) {
        rack_of_.emplace_back(rack_id);
        ++total;
      }
    }
  }
  MRON_CHECK_MSG(total > 0, "grouped cluster spec has no nodes");
}

RackId Topology::rack_of(NodeId node) const {
  MRON_CHECK(node.valid() && node.value() < num_nodes());
  return rack_of_[static_cast<std::size_t>(node.value())];
}

int Topology::rack_first_node(RackId rack) const {
  MRON_CHECK(rack.valid() && rack.value() < num_racks());
  return racks_[static_cast<std::size_t>(rack.value())].first_node;
}

int Topology::rack_size(RackId rack) const {
  MRON_CHECK(rack.valid() && rack.value() < num_racks());
  return racks_[static_cast<std::size_t>(rack.value())].size;
}

const NodeHardware& Topology::hardware(NodeId node) const {
  return rack_hardware(rack_of(node));
}

const NodeHardware& Topology::rack_hardware(RackId rack) const {
  MRON_CHECK(rack.valid() && rack.value() < num_racks());
  const RackInfo& r = racks_[static_cast<std::size_t>(rack.value())];
  return hardware_[static_cast<std::size_t>(r.hardware)];
}

std::vector<NodeId> Topology::nodes_in_rack(RackId rack) const {
  MRON_CHECK(rack.valid() && rack.value() < num_racks());
  const RackInfo& r = racks_[static_cast<std::size_t>(rack.value())];
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(r.size));
  for (int n = r.first_node; n < r.first_node + r.size; ++n) {
    out.emplace_back(n);
  }
  return out;
}

std::vector<NodeId> Topology::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(num_nodes()));
  for (int n = 0; n < num_nodes(); ++n) out.emplace_back(n);
  return out;
}

}  // namespace mron::cluster
