#include "cluster/topology.h"

#include "common/check.h"

namespace mron::cluster {

Topology::Topology(const ClusterSpec& spec) {
  int total = 0;
  for (int r = 0; r < static_cast<int>(spec.rack_sizes.size()); ++r) {
    for (int i = 0; i < spec.rack_sizes[r]; ++i) {
      rack_of_.emplace_back(r);
      ++total;
    }
  }
  MRON_CHECK_MSG(total == spec.num_slaves,
                 "rack sizes sum to " << total << ", expected "
                                      << spec.num_slaves);
  num_racks_ = static_cast<int>(spec.rack_sizes.size());
}

RackId Topology::rack_of(NodeId node) const {
  MRON_CHECK(node.valid() && node.value() < num_nodes());
  return rack_of_[static_cast<std::size_t>(node.value())];
}

std::vector<NodeId> Topology::nodes_in_rack(RackId rack) const {
  std::vector<NodeId> out;
  for (int n = 0; n < num_nodes(); ++n) {
    if (rack_of_[static_cast<std::size_t>(n)] == rack) out.emplace_back(n);
  }
  return out;
}

std::vector<NodeId> Topology::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(num_nodes()));
  for (int n = 0; n < num_nodes(); ++n) out.emplace_back(n);
  return out;
}

}  // namespace mron::cluster
