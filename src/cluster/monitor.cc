#include "cluster/monitor.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "obs/host_profile.h"
#include "obs/recorder.h"

namespace mron::cluster {

ClusterMonitor::ClusterMonitor(sim::Engine& engine, std::vector<Node*> nodes,
                               SimTime period, const Topology* topo,
                               int node_series_limit)
    : engine_(engine),
      nodes_(std::move(nodes)),
      period_(period),
      topo_(topo),
      node_series_limit_(node_series_limit) {
  MRON_CHECK(period_ > 0.0);
  MRON_CHECK(node_series_limit_ >= 1);
  if (topo_ != nullptr) {
    MRON_CHECK(static_cast<int>(nodes_.size()) == topo_->num_nodes());
  }
  latest_.resize(nodes_.size());
  prev_.resize(nodes_.size());
  in_active_.assign(nodes_.size(), 0);
  // Subscribe to every node's activity stream: the push side of the dirty
  // set. From here on, a node that does nothing is never visited again.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->set_activity_observer(
        [this, i](Node&) { mark_active(i); });
  }
}

ClusterMonitor::~ClusterMonitor() {
  // The observers capture `this`; nodes may outlive the monitor.
  for (Node* n : nodes_) n->set_activity_observer({});
}

void ClusterMonitor::mark_active(std::size_t i) {
  if (in_active_[i] != 0) return;
  in_active_[i] = 1;
  active_.push_back(static_cast<std::uint32_t>(i));
  // The node sat idle (flat integrals, zero memory) since its last visit,
  // so rebasing the window at the last tick loses nothing and keeps the
  // upcoming utilization window undiluted by the idle gap.
  Node& n = *nodes_[i];
  prev_[i] = Integrals{n.cpu().busy_integral(), n.disk().busy_integral(),
                       n.nic_in().busy_integral(), last_tick_};
}

void ClusterMonitor::start() {
  if (running_) return;
  running_ = true;
  last_tick_ = engine_.now();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    prev_[i] = Integrals{nodes_[i]->cpu().busy_integral(),
                         nodes_[i]->disk().busy_integral(),
                         nodes_[i]->nic_in().busy_integral(), engine_.now()};
    // Seed the dirty set with nodes already busy at start time (streams in
    // flight or memory held before the monitor began watching).
    if (in_active_[i] == 0 &&
        (nodes_[i]->cpu().active() > 0 || nodes_[i]->disk().active() > 0 ||
         nodes_[i]->nic_in().active() > 0 ||
         nodes_[i]->memory_allocated() != Bytes(0) ||
         nodes_[i]->memory_used() != Bytes(0))) {
      in_active_[i] = 1;
      active_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  // The first tick is scheduled from setup context; later re-arms happen
  // inside the tick callback and inherit its category automatically.
  HOST_PROF_CATEGORY(kMonitor);
  pending_ = engine_.schedule_daemon_after(period_, [this] { sample(); });
}

void ClusterMonitor::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(pending_);
}

void ClusterMonitor::sample() {
  const SimTime now = engine_.now();
  // Id order: determinism of every downstream sum and scan.
  std::sort(active_.begin(), active_.end());
  std::size_t kept = 0;
  for (const std::uint32_t idx : active_) {
    const std::size_t i = idx;
    Node& n = *nodes_[i];
    const double cpu = n.cpu().busy_integral();
    const double disk = n.disk().busy_integral();
    const double net = n.nic_in().busy_integral();
    // Fully idle again: flat integrals, no memory, no streams in flight.
    // Record the all-zero window and drop the node from the dirty set —
    // nothing can change for it until its activity observer fires again.
    // (The stream check matters: a stream submitted exactly at tick time
    // has not accrued integral yet but will by the next tick.)
    if (cpu == prev_[i].cpu && disk == prev_[i].disk && net == prev_[i].net &&
        n.memory_allocated() == Bytes(0) && n.memory_used() == Bytes(0) &&
        n.cpu().active() == 0 && n.disk().active() == 0 &&
        n.nic_in().active() == 0) {
      latest_[i] = NodeSample{};
      latest_[i].time = now;
      prev_[i].at = now;
      in_active_[i] = 0;
      continue;
    }
    const double dt = now - prev_[i].at;
    NodeSample s;
    s.time = now;
    if (dt > 0.0) {
      s.cpu_util = (cpu - prev_[i].cpu) / (n.cpu().capacity() * dt);
      s.disk_util = (disk - prev_[i].disk) / (n.disk().capacity() * dt);
      s.net_util = (net - prev_[i].net) / (n.nic_in().capacity() * dt);
    }
    s.mem_alloc_frac = n.memory_allocated() / n.memory_capacity();
    s.mem_used_frac = n.memory_used() / n.memory_capacity();
    latest_[i] = s;
    prev_[i] = Integrals{cpu, disk, net, now};
    active_[kept++] = idx;
  }
  active_.resize(kept);
  last_tick_ = now;
  publish(now);
  // Re-arm only while the simulation has real work pending: a quiescent
  // engine means every job finished, and a self-perpetuating sampler would
  // keep Engine::run() from ever draining. Daemon scheduling keeps this
  // ticker and the other periodic services (heartbeat watchdog,
  // speculation scan) from counting each other as work.
  if (running_ && !engine_.quiescent()) {
    pending_ = engine_.schedule_daemon_after(period_, [this] { sample(); });
  }
}

void ClusterMonitor::publish(SimTime now) {
  // Publish the window into the flight recorder and snapshot every metric's
  // scalar onto the sim-time axis. The monitor is the registry's sampling
  // clock: all time series advance at its period. Beyond the node-series
  // limit the per-entity handles are per *rack* (means over the rack's
  // nodes), bounding recorder footprint on 1,000+-node clusters.
  auto* rec = engine_.recorder();
  if (rec == nullptr) return;
  auto& reg = rec->metrics();
  const bool by_rack = rack_aggregated();
  const std::size_t entities =
      by_rack ? static_cast<std::size_t>(topo_->num_racks()) : nodes_.size();
  if (node_gauges_.empty()) {
    node_gauges_.resize(entities);
    for (std::size_t i = 0; i < entities; ++i) {
      const std::string prefix =
          by_rack ? "cluster.rack" + std::to_string(i) + "."
                  : "cluster.node" +
                        std::to_string(nodes_[i]->id().value()) + ".";
      node_gauges_[i].cpu = &reg.gauge(prefix + "cpu_util");
      node_gauges_[i].disk = &reg.gauge(prefix + "disk_util");
      node_gauges_[i].net = &reg.gauge(prefix + "net_util");
      node_gauges_[i].mem_alloc = &reg.gauge(prefix + "mem_alloc_frac");
      node_gauges_[i].mem_used = &reg.gauge(prefix + "mem_used_frac");
      auto& store = rec->series();
      node_gauges_[i].cpu_series = &store.series(prefix + "cpu_util");
      node_gauges_[i].disk_series = &store.series(prefix + "disk_util");
      node_gauges_[i].net_series = &store.series(prefix + "net_util");
    }
    samples_counter_ = &reg.counter("monitor.samples");
  }
  if (by_rack) {
    // Sum per rack over the dirty set only: idle nodes hold exact-zero
    // samples, and adding 0.0 never changes an IEEE sum, so skipping them
    // is bit-identical to the full walk. sample() just sorted active_, and
    // racks are contiguous id ranges, so within-rack addition order is the
    // id order the full walk used.
    rack_scratch_.assign(entities, NodeSample{});
    for (const std::uint32_t idx : active_) {
      const NodeSample& ns = latest_[idx];
      NodeSample& acc =
          rack_scratch_[static_cast<std::size_t>(
              topo_->rack_of(NodeId(static_cast<std::int64_t>(idx)))
                  .value())];
      acc.cpu_util += ns.cpu_util;
      acc.disk_util += ns.disk_util;
      acc.net_util += ns.net_util;
      acc.mem_alloc_frac += ns.mem_alloc_frac;
      acc.mem_used_frac += ns.mem_used_frac;
    }
    for (std::size_t i = 0; i < entities; ++i) {
      NodeSample s = rack_scratch_[i];
      const double denom =
          static_cast<double>(topo_->rack_size(RackId(
              static_cast<std::int64_t>(i))));
      s.cpu_util /= denom;
      s.disk_util /= denom;
      s.net_util /= denom;
      s.mem_alloc_frac /= denom;
      s.mem_used_frac /= denom;
      node_gauges_[i].cpu->set(s.cpu_util);
      node_gauges_[i].disk->set(s.disk_util);
      node_gauges_[i].net->set(s.net_util);
      node_gauges_[i].mem_alloc->set(s.mem_alloc_frac);
      node_gauges_[i].mem_used->set(s.mem_used_frac);
      // Whole-run occupancy timelines: pushed every tick (not change-only)
      // so the downsampling stride stays uniform across entities.
      node_gauges_[i].cpu_series->push(now, s.cpu_util);
      node_gauges_[i].disk_series->push(now, s.disk_util);
      node_gauges_[i].net_series->push(now, s.net_util);
    }
  } else {
    for (std::size_t i = 0; i < entities; ++i) {
      const NodeSample& s = latest_[i];
      node_gauges_[i].cpu->set(s.cpu_util);
      node_gauges_[i].disk->set(s.disk_util);
      node_gauges_[i].net->set(s.net_util);
      node_gauges_[i].mem_alloc->set(s.mem_alloc_frac);
      node_gauges_[i].mem_used->set(s.mem_used_frac);
      node_gauges_[i].cpu_series->push(now, s.cpu_util);
      node_gauges_[i].disk_series->push(now, s.disk_util);
      node_gauges_[i].net_series->push(now, s.net_util);
    }
  }
  samples_counter_->add(1.0);
  rec->flush();  // pull-model publishers (SharedServer gauges)
  reg.sample(now);
}

const NodeSample& ClusterMonitor::latest(NodeId node) const {
  MRON_CHECK(node.valid() &&
             node.value() < static_cast<std::int64_t>(latest_.size()));
  return latest_[static_cast<std::size_t>(node.value())];
}

NodeSample ClusterMonitor::cluster_average() const {
  NodeSample avg;
  if (latest_.empty()) return avg;
  // Only dirty-set nodes can hold non-zero samples (an idle node's last
  // visit wrote exact zeros), so summing them in id order reproduces the
  // full walk's result bit for bit.
  std::vector<std::uint32_t> sorted(active_);
  std::sort(sorted.begin(), sorted.end());
  for (const std::uint32_t idx : sorted) {
    const NodeSample& s = latest_[idx];
    avg.cpu_util += s.cpu_util;
    avg.disk_util += s.disk_util;
    avg.net_util += s.net_util;
    avg.mem_alloc_frac += s.mem_alloc_frac;
    avg.mem_used_frac += s.mem_used_frac;
  }
  const double n = static_cast<double>(latest_.size());
  avg.cpu_util /= n;
  avg.disk_util /= n;
  avg.net_util /= n;
  avg.mem_alloc_frac /= n;
  avg.mem_used_frac /= n;
  avg.time = last_tick_;
  return avg;
}

std::vector<NodeId> ClusterMonitor::hot_nodes(double threshold) const {
  std::vector<NodeId> out;
  // Idle nodes hold zero windows and can never clear a hot threshold;
  // scanning the dirty set in id order matches the full walk's output.
  std::vector<std::uint32_t> sorted(active_);
  std::sort(sorted.begin(), sorted.end());
  for (const std::uint32_t i : sorted) {
    if (latest_[i].disk_util > threshold || latest_[i].net_util > threshold) {
      out.push_back(nodes_[i]->id());
    }
  }
  return out;
}

}  // namespace mron::cluster
