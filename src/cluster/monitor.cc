#include "cluster/monitor.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "obs/recorder.h"

namespace mron::cluster {

ClusterMonitor::ClusterMonitor(sim::Engine& engine, std::vector<Node*> nodes,
                               SimTime period)
    : engine_(engine), nodes_(std::move(nodes)), period_(period) {
  MRON_CHECK(period_ > 0.0);
  latest_.resize(nodes_.size());
  prev_.resize(nodes_.size());
}

void ClusterMonitor::start() {
  if (running_) return;
  running_ = true;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    prev_[i] = Integrals{nodes_[i]->cpu().busy_integral(),
                         nodes_[i]->disk().busy_integral(),
                         nodes_[i]->nic_in().busy_integral(), engine_.now()};
  }
  pending_ = engine_.schedule_daemon_after(period_, [this] { sample(); });
}

void ClusterMonitor::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(pending_);
}

void ClusterMonitor::sample() {
  const SimTime now = engine_.now();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = *nodes_[i];
    const double dt = now - prev_[i].at;
    NodeSample s;
    s.time = now;
    if (dt > 0.0) {
      s.cpu_util =
          (n.cpu().busy_integral() - prev_[i].cpu) / (n.cpu().capacity() * dt);
      s.disk_util = (n.disk().busy_integral() - prev_[i].disk) /
                    (n.disk().capacity() * dt);
      s.net_util = (n.nic_in().busy_integral() - prev_[i].net) /
                   (n.nic_in().capacity() * dt);
    }
    s.mem_alloc_frac = n.memory_allocated() / n.memory_capacity();
    s.mem_used_frac = n.memory_used() / n.memory_capacity();
    latest_[i] = s;
    prev_[i] = Integrals{n.cpu().busy_integral(), n.disk().busy_integral(),
                         n.nic_in().busy_integral(), now};
  }
  // Publish the window into the flight recorder and snapshot every metric's
  // scalar onto the sim-time axis. The monitor is the registry's sampling
  // clock: all time series advance at its period.
  if (auto* rec = engine_.recorder()) {
    auto& reg = rec->metrics();
    if (node_gauges_.empty()) {
      node_gauges_.resize(nodes_.size());
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const std::string prefix =
            "cluster.node" + std::to_string(nodes_[i]->id().value()) + ".";
        node_gauges_[i].cpu = &reg.gauge(prefix + "cpu_util");
        node_gauges_[i].disk = &reg.gauge(prefix + "disk_util");
        node_gauges_[i].net = &reg.gauge(prefix + "net_util");
        node_gauges_[i].mem_alloc = &reg.gauge(prefix + "mem_alloc_frac");
        node_gauges_[i].mem_used = &reg.gauge(prefix + "mem_used_frac");
        auto& store = rec->series();
        node_gauges_[i].cpu_series = &store.series(prefix + "cpu_util");
        node_gauges_[i].disk_series = &store.series(prefix + "disk_util");
        node_gauges_[i].net_series = &store.series(prefix + "net_util");
      }
      samples_counter_ = &reg.counter("monitor.samples");
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const NodeSample& s = latest_[i];
      node_gauges_[i].cpu->set(s.cpu_util);
      node_gauges_[i].disk->set(s.disk_util);
      node_gauges_[i].net->set(s.net_util);
      node_gauges_[i].mem_alloc->set(s.mem_alloc_frac);
      node_gauges_[i].mem_used->set(s.mem_used_frac);
      // Whole-run occupancy timelines: pushed every tick (not change-only)
      // so the downsampling stride stays uniform across nodes.
      node_gauges_[i].cpu_series->push(now, s.cpu_util);
      node_gauges_[i].disk_series->push(now, s.disk_util);
      node_gauges_[i].net_series->push(now, s.net_util);
    }
    samples_counter_->add(1.0);
    rec->flush();  // pull-model publishers (SharedServer gauges)
    reg.sample(now);
  }
  // Re-arm only while the simulation has real work pending: a quiescent
  // engine means every job finished, and a self-perpetuating sampler would
  // keep Engine::run() from ever draining. Daemon scheduling keeps this
  // ticker and the other periodic services (heartbeat watchdog,
  // speculation scan) from counting each other as work.
  if (running_ && !engine_.quiescent()) {
    pending_ = engine_.schedule_daemon_after(period_, [this] { sample(); });
  }
}

const NodeSample& ClusterMonitor::latest(NodeId node) const {
  MRON_CHECK(node.valid() &&
             node.value() < static_cast<std::int64_t>(latest_.size()));
  return latest_[static_cast<std::size_t>(node.value())];
}

NodeSample ClusterMonitor::cluster_average() const {
  NodeSample avg;
  if (latest_.empty()) return avg;
  for (const auto& s : latest_) {
    avg.cpu_util += s.cpu_util;
    avg.disk_util += s.disk_util;
    avg.net_util += s.net_util;
    avg.mem_alloc_frac += s.mem_alloc_frac;
    avg.mem_used_frac += s.mem_used_frac;
  }
  const double n = static_cast<double>(latest_.size());
  avg.cpu_util /= n;
  avg.disk_util /= n;
  avg.net_util /= n;
  avg.mem_alloc_frac /= n;
  avg.mem_used_frac /= n;
  avg.time = latest_.front().time;
  return avg;
}

std::vector<NodeId> ClusterMonitor::hot_nodes(double threshold) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < latest_.size(); ++i) {
    if (latest_[i].disk_util > threshold || latest_[i].net_util > threshold) {
      out.push_back(nodes_[i]->id());
    }
  }
  return out;
}

}  // namespace mron::cluster
