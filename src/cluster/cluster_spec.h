// The `--cluster=SPEC` topology grammar.
//
// A spec describes a cluster as hardware groups, each contributing whole
// racks of identical nodes (see topology.h). The textual form is
// line-oriented; `;` also separates statements so a whole spec fits in one
// CLI argument, and `#` starts a comment:
//
//   # 1,024 nodes in two hardware classes (spec mix after arXiv:1411.3811)
//   inter_rack_factor 0.5
//   group name=std    racks=12 nodes=64 cores=8  vcores=32 mem_gb=8
//   group name=bigmem racks=4  nodes=64 cores=16 vcores=64 mem_gb=32
//   # (keys omitted from a group line keep the testbed defaults)
//
// Group keys (all optional except racks/nodes; defaults = the paper's
// 19-node testbed hardware): name, racks, nodes, cores, vcores,
// container_vcores, mem_gb, container_mem_gb, cpu_quota, disk_mbps,
// seek_penalty, nic_gbps, daemon_reserve.
//
// `load_cluster_spec` additionally accepts the presets `testbed19` (the
// default 18-slave/2-rack cluster) and `nodes:N[,rack:R]` (N testbed-class
// slaves in racks of R, default 64), or a path to a spec file.
#pragma once

#include <string>

#include "cluster/topology.h"

namespace mron::cluster {

/// Parse spec text (the grammar above). Throws CheckError with the
/// offending statement on malformed input or invalid hardware.
[[nodiscard]] ClusterSpec parse_cluster_spec(const std::string& text);

/// Resolve a --cluster= argument: preset name, inline spec text (anything
/// containing '='), or a spec file path.
[[nodiscard]] ClusterSpec load_cluster_spec(const std::string& arg);

/// N testbed-hardware slaves packed into racks of `rack_size` (a trailing
/// smaller rack takes the remainder) — the scalebench sweep shape.
[[nodiscard]] ClusterSpec scaled_spec(int num_slaves, int rack_size = 64);

/// Render `spec` back into parseable text (round-trips through
/// parse_cluster_spec).
[[nodiscard]] std::string render_cluster_spec(const ClusterSpec& spec);

/// Validate hardware sanity (positive rates, container resources within
/// node resources, at least one node). Throws CheckError on violation.
/// parse_cluster_spec and scaled_spec call this; hand-built specs can too.
void validate_cluster_spec(const ClusterSpec& spec);

}  // namespace mron::cluster
