#include "cluster/cluster_spec.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace mron::cluster {

namespace {

std::vector<std::string> split_statements(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == '\n' || c == ';') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::vector<std::string> tokenize(const std::string& stmt) {
  std::vector<std::string> toks;
  std::string cur;
  for (char c : stmt) {
    if (c == '#') break;  // comment to end of statement
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        toks.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) toks.push_back(cur);
  return toks;
}

double parse_number(const std::string& value, const std::string& stmt) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  MRON_CHECK_MSG(used == value.size() && !value.empty(),
                 "bad number '" << value << "' in cluster spec statement: "
                                << stmt);
  return v;
}

int parse_int(const std::string& value, const std::string& stmt) {
  const double v = parse_number(value, stmt);
  const int i = static_cast<int>(v);
  MRON_CHECK_MSG(static_cast<double>(i) == v,
                 "expected integer, got '" << value
                                           << "' in cluster spec statement: "
                                           << stmt);
  return i;
}

NodeGroup parse_group(const std::vector<std::string>& toks,
                      const std::string& stmt) {
  NodeGroup g;
  g.nodes_per_rack = 0;
  bool have_racks = false;
  bool have_nodes = false;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const std::string& tok = toks[i];
    const std::size_t eq = tok.find('=');
    MRON_CHECK_MSG(eq != std::string::npos && eq > 0 && eq + 1 < tok.size(),
                   "expected key=value, got '" << tok
                                               << "' in: " << stmt);
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "name") {
      g.name = value;
    } else if (key == "racks") {
      g.racks = parse_int(value, stmt);
      have_racks = true;
    } else if (key == "nodes") {
      g.nodes_per_rack = parse_int(value, stmt);
      have_nodes = true;
    } else if (key == "cores") {
      g.hardware.physical_cores = parse_int(value, stmt);
    } else if (key == "vcores") {
      g.hardware.total_vcores = parse_int(value, stmt);
    } else if (key == "container_vcores") {
      g.hardware.container_vcores = parse_int(value, stmt);
    } else if (key == "mem_gb") {
      g.hardware.node_memory = gibibytes(parse_number(value, stmt));
    } else if (key == "container_mem_gb") {
      g.hardware.container_memory = gibibytes(parse_number(value, stmt));
    } else if (key == "cpu_quota") {
      g.hardware.cpu_quota_per_vcore = parse_number(value, stmt);
    } else if (key == "disk_mbps") {
      g.hardware.disk_bandwidth = mib_per_sec(parse_number(value, stmt));
    } else if (key == "seek_penalty") {
      g.hardware.disk_seek_penalty = parse_number(value, stmt);
    } else if (key == "nic_gbps") {
      g.hardware.nic_bandwidth = gbit_per_sec(parse_number(value, stmt));
    } else if (key == "daemon_reserve") {
      g.hardware.daemon_core_reserve = parse_number(value, stmt);
    } else {
      MRON_CHECK_MSG(false, "unknown group key '" << key << "' in: " << stmt);
    }
  }
  MRON_CHECK_MSG(have_racks && have_nodes,
                 "group statement needs racks= and nodes=: " << stmt);
  return g;
}

void validate_hardware(const NodeHardware& hw, const std::string& where) {
  MRON_CHECK_MSG(hw.physical_cores >= 1, where << ": cores must be >= 1");
  MRON_CHECK_MSG(hw.total_vcores >= 1, where << ": vcores must be >= 1");
  MRON_CHECK_MSG(
      hw.container_vcores >= 1 && hw.container_vcores <= hw.total_vcores,
      where << ": container_vcores must be in [1, vcores]");
  MRON_CHECK_MSG(hw.node_memory > Bytes(0), where << ": mem_gb must be > 0");
  MRON_CHECK_MSG(
      hw.container_memory > Bytes(0) && hw.container_memory <= hw.node_memory,
      where << ": container_mem_gb must be in (0, mem_gb]");
  MRON_CHECK_MSG(hw.cpu_quota_per_vcore > 0.0,
                 where << ": cpu_quota must be > 0");
  MRON_CHECK_MSG(hw.disk_bandwidth.rate() > 0.0,
                 where << ": disk_mbps must be > 0");
  MRON_CHECK_MSG(hw.disk_seek_penalty >= 0.0,
                 where << ": seek_penalty must be >= 0");
  MRON_CHECK_MSG(hw.nic_bandwidth.rate() > 0.0,
                 where << ": nic_gbps must be > 0");
  MRON_CHECK_MSG(hw.daemon_core_reserve >= 0.0,
                 where << ": daemon_reserve must be >= 0");
  MRON_CHECK_MSG(hw.container_core_units() > 0.0,
                 where << ": daemon_reserve leaves no container core-units");
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void validate_cluster_spec(const ClusterSpec& spec) {
  MRON_CHECK_MSG(spec.inter_rack_factor > 0.0,
                 "inter_rack_factor must be > 0");
  if (spec.groups.empty()) {
    MRON_CHECK_MSG(spec.num_slaves >= 1, "cluster needs at least one slave");
    int total = 0;
    for (int s : spec.rack_sizes) {
      MRON_CHECK_MSG(s >= 1, "every rack needs at least one node");
      total += s;
    }
    MRON_CHECK_MSG(total == spec.num_slaves,
                   "rack sizes sum to " << total << ", expected "
                                        << spec.num_slaves);
    validate_hardware(spec.default_hardware(), "cluster");
    return;
  }
  for (const NodeGroup& g : spec.groups) {
    const std::string where =
        g.name.empty() ? std::string("group") : "group '" + g.name + "'";
    MRON_CHECK_MSG(g.racks >= 1, where << ": racks must be >= 1");
    MRON_CHECK_MSG(g.nodes_per_rack >= 1, where << ": nodes must be >= 1");
    validate_hardware(g.hardware, where);
  }
  MRON_CHECK_MSG(spec.total_slaves() >= 1, "cluster needs at least one slave");
}

ClusterSpec parse_cluster_spec(const std::string& text) {
  ClusterSpec spec;
  spec.groups.clear();
  for (const std::string& stmt : split_statements(text)) {
    const auto toks = tokenize(stmt);
    if (toks.empty()) continue;
    if (toks[0] == "group") {
      spec.groups.push_back(parse_group(toks, stmt));
    } else if (toks[0] == "inter_rack_factor") {
      MRON_CHECK_MSG(toks.size() == 2,
                     "inter_rack_factor takes one value: " << stmt);
      spec.inter_rack_factor = parse_number(toks[1], stmt);
    } else {
      MRON_CHECK_MSG(false, "unknown cluster spec statement: " << stmt);
    }
  }
  MRON_CHECK_MSG(!spec.groups.empty(),
                 "cluster spec declares no group statements");
  spec.sync_totals();
  validate_cluster_spec(spec);
  return spec;
}

ClusterSpec scaled_spec(int num_slaves, int rack_size) {
  MRON_CHECK_MSG(num_slaves >= 1, "scaled spec needs at least one slave");
  MRON_CHECK_MSG(rack_size >= 1, "scaled spec needs rack_size >= 1");
  ClusterSpec spec;
  spec.groups.clear();
  const int full = num_slaves / rack_size;
  const int rem = num_slaves % rack_size;
  if (full > 0) {
    NodeGroup g;
    g.name = "std";
    g.racks = full;
    g.nodes_per_rack = rack_size;
    spec.groups.push_back(g);
  }
  if (rem > 0) {
    NodeGroup g;
    g.name = full > 0 ? "std_tail" : "std";
    g.racks = 1;
    g.nodes_per_rack = rem;
    spec.groups.push_back(g);
  }
  spec.sync_totals();
  validate_cluster_spec(spec);
  return spec;
}

ClusterSpec load_cluster_spec(const std::string& arg) {
  if (arg.empty() || arg == "testbed19" || arg == "default") {
    return ClusterSpec{};
  }
  if (arg.rfind("nodes:", 0) == 0) {
    const std::string rest = arg.substr(6);
    const std::size_t comma = rest.find(',');
    const std::string n_str = rest.substr(0, comma);
    int rack_size = 64;
    if (comma != std::string::npos) {
      const std::string r = rest.substr(comma + 1);
      MRON_CHECK_MSG(r.rfind("rack:", 0) == 0,
                     "bad cluster preset '" << arg
                                            << "' (want nodes:N[,rack:R])");
      rack_size = parse_int(r.substr(5), arg);
    }
    return scaled_spec(parse_int(n_str, arg), rack_size);
  }
  if (arg.find('=') != std::string::npos) {
    return parse_cluster_spec(arg);
  }
  std::ifstream in(arg);
  MRON_CHECK_MSG(in.good(), "cannot open cluster spec file: " << arg);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_cluster_spec(buf.str());
}

std::string render_cluster_spec(const ClusterSpec& spec) {
  std::ostringstream out;
  out << "inter_rack_factor " << fmt(spec.inter_rack_factor) << "\n";
  auto emit = [&](const std::string& name, int racks, int nodes,
                  const NodeHardware& hw) {
    out << "group";
    if (!name.empty()) out << " name=" << name;
    out << " racks=" << racks << " nodes=" << nodes
        << " cores=" << hw.physical_cores << " vcores=" << hw.total_vcores
        << " container_vcores=" << hw.container_vcores
        << " mem_gb=" << fmt(hw.node_memory.gib())
        << " container_mem_gb=" << fmt(hw.container_memory.gib())
        << " cpu_quota=" << fmt(hw.cpu_quota_per_vcore)
        << " disk_mbps=" << fmt(hw.disk_bandwidth.rate() / (1024.0 * 1024.0))
        << " seek_penalty=" << fmt(hw.disk_seek_penalty)
        << " nic_gbps=" << fmt(hw.nic_bandwidth.rate() * 8.0 / 1e9)
        << " daemon_reserve=" << fmt(hw.daemon_core_reserve) << "\n";
  };
  if (spec.groups.empty()) {
    // Homogeneous spec: render each distinct rack size as its own group so
    // the text round-trips into an equivalent topology.
    const NodeHardware hw = spec.default_hardware();
    std::size_t i = 0;
    while (i < spec.rack_sizes.size()) {
      std::size_t j = i;
      while (j < spec.rack_sizes.size() &&
             spec.rack_sizes[j] == spec.rack_sizes[i]) {
        ++j;
      }
      emit("", static_cast<int>(j - i), spec.rack_sizes[i], hw);
      i = j;
    }
  } else {
    for (const NodeGroup& g : spec.groups) {
      emit(g.name, g.racks, g.nodes_per_rack, g.hardware);
    }
  }
  return out.str();
}

}  // namespace mron::cluster
