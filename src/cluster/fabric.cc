#include "cluster/fabric.h"

#include <memory>
#include <string>
#include <utility>

#include "common/check.h"

namespace mron::cluster {

Fabric::Fabric(sim::Engine& engine, const ClusterSpec& spec,
               const Topology& topo, std::vector<Node*> nodes)
    : engine_(engine),
      topo_(topo),
      nodes_(std::move(nodes)),
      inter_rack_factor_(spec.inter_rack_factor) {
  MRON_CHECK(static_cast<int>(nodes_.size()) == topo_.num_nodes());
  for (int r = 0; r < topo_.num_racks(); ++r) {
    // Uplink capacity: NIC rate scaled by the oversubscription factor times
    // the rack size — i.e. the ToR switch can sustain a fraction of the
    // rack's aggregate demand. Racks are homogeneous (topology.h), so the
    // rack's hardware gives the one NIC rate that applies.
    const RackId rack(r);
    const double cap = topo_.rack_hardware(rack).nic_bandwidth.rate() *
                       inter_rack_factor_ *
                       static_cast<double>(topo_.rack_size(rack));
    rack_uplinks_.push_back(std::make_unique<sim::SharedServer>(
        engine_, cap, "rack" + std::to_string(r) + "/uplink"));
  }
}

void Fabric::transfer(NodeId src, NodeId dst, Bytes size, Done done) {
  MRON_CHECK(src.valid() && dst.valid());
  MRON_CHECK(done != nullptr);
  if (src == dst || size <= Bytes(0)) {
    engine_.schedule_after(0.0, std::move(done));
    return;
  }
  Node& receiver = *nodes_[static_cast<std::size_t>(dst.value())];
  if (topo_.same_rack(src, dst)) {
    receiver.nic_in().submit(size.as_double(), std::move(done));
    return;
  }
  inter_rack_bytes_ += size.as_double();
  // Cross-rack: stream through the destination rack's uplink AND the
  // receiver NIC; completion is the later of the two.
  auto remaining = std::make_shared<int>(2);
  auto joined = std::make_shared<Done>(std::move(done));
  auto arm = [remaining, joined]() {
    if (--*remaining == 0) (*joined)();
  };
  auto& uplink =
      *rack_uplinks_[static_cast<std::size_t>(topo_.rack_of(dst).value())];
  uplink.submit(size.as_double(), arm);
  receiver.nic_in().submit(size.as_double(), arm);
}

CopyId Fabric::transfer_capped(NodeId src, NodeId dst, Bytes size, double cap,
                               Done done) {
  MRON_CHECK(src.valid() && dst.valid());
  MRON_CHECK(done != nullptr);
  MRON_CHECK(cap > 0.0);
  const CopyId id(next_copy_id_++);
  CopyState& st = copies_[id.value()];
  st.done = std::move(done);
  st.dst = dst;
  if (src == dst || size <= Bytes(0)) {
    st.remaining = 1;
    st.has_event = true;
    st.event = engine_.schedule_after(
        0.0, [this, v = id.value()] { copy_leg_done(v); });
    return id;
  }
  Node& receiver = *nodes_[static_cast<std::size_t>(dst.value())];
  const auto leg = [this, v = id.value()] { copy_leg_done(v); };
  if (topo_.same_rack(src, dst)) {
    st.remaining = 1;
    st.has_nic = true;
    st.nic = receiver.nic_in().submit(size.as_double(), cap, leg);
    return id;
  }
  inter_rack_bytes_ += size.as_double();
  st.remaining = 2;
  st.uplink_rack = topo_.rack_of(dst).value();
  st.uplink = rack_uplinks_[static_cast<std::size_t>(st.uplink_rack)]->submit(
      size.as_double(), cap, leg);
  st.has_nic = true;
  st.nic = receiver.nic_in().submit(size.as_double(), cap, leg);
  return id;
}

void Fabric::copy_leg_done(std::int64_t id) {
  const auto it = copies_.find(id);
  if (it == copies_.end()) return;  // cancelled while this leg completed
  if (--it->second.remaining > 0) return;
  Done done = std::move(it->second.done);
  copies_.erase(it);
  done();
}

void Fabric::cancel_transfer(CopyId id) {
  const auto it = copies_.find(id.value());
  if (it == copies_.end()) return;
  CopyState& st = it->second;
  if (st.has_event) engine_.cancel(st.event);
  if (st.has_nic) {
    nodes_[static_cast<std::size_t>(st.dst.value())]->nic_in().cancel(st.nic);
  }
  if (st.uplink_rack >= 0) {
    rack_uplinks_[static_cast<std::size_t>(st.uplink_rack)]->cancel(st.uplink);
  }
  copies_.erase(it);
}

}  // namespace mron::cluster
