// Per-node resource sampling: the slave-monitor half of MRONLINE's monitor.
//
// Samples every node on a fixed period and exposes the latest window's
// utilizations; the online tuner consumes these for its gray-box rules and
// hot-spot avoidance. Utilizations are derived from the SharedServer busy
// integrals, so they reflect actual simulated contention, not declared
// allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.h"
#include "cluster/topology.h"
#include "sim/engine.h"

namespace mron::obs {
class Counter;
class Gauge;
class Series;
}  // namespace mron::obs

namespace mron::cluster {

struct NodeSample {
  SimTime time = 0.0;
  double cpu_util = 0.0;       ///< fraction of container core-units busy
  double disk_util = 0.0;      ///< fraction of disk bandwidth busy
  double net_util = 0.0;       ///< fraction of NIC ingress busy
  double mem_alloc_frac = 0.0; ///< allocated container memory / capacity
  double mem_used_frac = 0.0;  ///< task working sets / capacity
};

class ClusterMonitor {
 public:
  /// `topo` + `node_series_limit` bound the flight-recorder footprint: with
  /// more than `node_series_limit` nodes the monitor publishes per-*rack*
  /// aggregate gauges/series (cluster.rackR.*) instead of per-node ones,
  /// so report and trace size stay O(racks) at 1,000+ nodes. Passing
  /// topo == nullptr keeps the legacy per-node publishing at any size.
  /// Sampling is dirty-set driven: the monitor subscribes to every node's
  /// activity observer, and each tick touches only nodes that were marked
  /// active since they last sampled idle — a fully idle node costs zero,
  /// not even a compare, so the per-tick cost is O(active) on any cluster
  /// size. The monitor owns the nodes' activity observers for its
  /// lifetime (at most one ClusterMonitor may watch a node set at a time).
  ClusterMonitor(sim::Engine& engine, std::vector<Node*> nodes,
                 SimTime period = 1.0, const Topology* topo = nullptr,
                 int node_series_limit = 64);
  ~ClusterMonitor();

  void start();
  void stop();

  [[nodiscard]] const NodeSample& latest(NodeId node) const;
  /// Cluster means over the latest window.
  [[nodiscard]] NodeSample cluster_average() const;
  /// Nodes whose disk or NIC utilization exceeded `threshold` in the last
  /// window — MRONLINE's "hot spots".
  [[nodiscard]] std::vector<NodeId> hot_nodes(double threshold = 0.9) const;

  [[nodiscard]] SimTime period() const { return period_; }

  /// True when publishing per-rack aggregates instead of per-node values.
  [[nodiscard]] bool rack_aggregated() const {
    return topo_ != nullptr &&
           static_cast<int>(nodes_.size()) > node_series_limit_;
  }

 private:
  void sample();
  void publish(SimTime now);
  /// Activity-observer body: enroll node `i` in the dirty set and reset its
  /// integral baseline to the last tick (it has been idle — and therefore
  /// flat — since then, so the next window is not diluted by the idle gap).
  void mark_active(std::size_t i);

  sim::Engine& engine_;
  std::vector<Node*> nodes_;
  SimTime period_;
  const Topology* topo_ = nullptr;
  int node_series_limit_ = 64;
  bool running_ = false;
  sim::EventId pending_;
  std::vector<NodeSample> latest_;
  /// Flight-recorder handles, resolved once on the first published sample
  /// (registry lookups are by name; the publish path must not re-do them).
  struct NodeGauges {
    obs::Gauge* cpu = nullptr;
    obs::Gauge* disk = nullptr;
    obs::Gauge* net = nullptr;
    obs::Gauge* mem_alloc = nullptr;
    obs::Gauge* mem_used = nullptr;
    /// Whole-run occupancy timelines (the Figure 14-16 shapes), in the
    /// recorder's SeriesStore; downsampled, never wrapping.
    obs::Series* cpu_series = nullptr;
    obs::Series* disk_series = nullptr;
    obs::Series* net_series = nullptr;
  };
  std::vector<NodeGauges> node_gauges_;  ///< per node, or per rack when
                                         ///< rack_aggregated()
  obs::Counter* samples_counter_ = nullptr;
  struct Integrals {
    double cpu = 0.0;
    double disk = 0.0;
    double net = 0.0;
    SimTime at = 0.0;
  };
  std::vector<Integrals> prev_;
  /// The dirty set: indices of nodes that may produce a non-zero window.
  /// Nodes enter via mark_active() (push-side, from the node's activity
  /// observer) and leave when a tick finds them fully idle again. Sorted
  /// before every traversal so windows, gauge sums, and hot-node scans
  /// visit nodes in id order — bit-identical results to the full walk
  /// (idle nodes contribute exact zeros, which no IEEE sum can see).
  std::vector<std::uint32_t> active_;
  std::vector<std::uint8_t> in_active_;  ///< membership flag per node
  /// Scratch for per-rack aggregation in publish(); member so the tick
  /// path never allocates.
  std::vector<NodeSample> rack_scratch_;
  SimTime last_tick_ = 0.0;
};

}  // namespace mron::cluster
