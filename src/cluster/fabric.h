// Network fabric: point-to-point transfers with rack awareness.
//
// Modeling choice (documented in DESIGN.md): a transfer contends at the
// *receiver's* NIC ingress server — the MapReduce traffic that matters here
// is shuffle fan-in, which bottlenecks at the fetching reducer's NIC — and
// cross-rack streams additionally traverse a shared per-rack uplink server.
// A cross-rack transfer completes when both the ingress stream and the
// uplink stream have drained (max of the two stage times), which tracks
// whichever stage is the bottleneck. Sender egress is accounted for
// utilization statistics but not rate-limited.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/node.h"
#include "cluster/topology.h"
#include "sim/shared_server.h"

namespace mron::cluster {

class Fabric {
 public:
  using Done = std::function<void()>;

  Fabric(sim::Engine& engine, const ClusterSpec& spec, const Topology& topo,
         std::vector<Node*> nodes);

  /// Move `size` bytes from `src` to `dst`; `done` fires at completion.
  /// A node-local "transfer" (src == dst) completes after a 0-cost event.
  void transfer(NodeId src, NodeId dst, Bytes size, Done done);

  /// Total bytes that have crossed rack boundaries (for tests/benches).
  [[nodiscard]] double inter_rack_bytes() const { return inter_rack_bytes_; }

 private:
  sim::Engine& engine_;
  const Topology& topo_;
  std::vector<Node*> nodes_;
  std::vector<std::unique_ptr<sim::SharedServer>> rack_uplinks_;
  double inter_rack_factor_;
  double inter_rack_bytes_ = 0.0;
};

}  // namespace mron::cluster
