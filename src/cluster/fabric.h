// Network fabric: point-to-point transfers with rack awareness.
//
// Modeling choice (documented in DESIGN.md): a transfer contends at the
// *receiver's* NIC ingress server — the MapReduce traffic that matters here
// is shuffle fan-in, which bottlenecks at the fetching reducer's NIC — and
// cross-rack streams additionally traverse a shared per-rack uplink server.
// A cross-rack transfer completes when both the ingress stream and the
// uplink stream have drained (max of the two stage times), which tracks
// whichever stage is the bottleneck. Sender egress is accounted for
// utilization statistics but not rate-limited.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cluster/node.h"
#include "cluster/topology.h"
#include "common/strong_id.h"
#include "sim/shared_server.h"

namespace mron::cluster {

struct CopyTag {};
/// Handle for a cancellable transfer_capped() stream.
using CopyId = StrongId<CopyTag>;

class Fabric {
 public:
  using Done = std::function<void()>;

  Fabric(sim::Engine& engine, const ClusterSpec& spec, const Topology& topo,
         std::vector<Node*> nodes);

  /// Move `size` bytes from `src` to `dst`; `done` fires at completion.
  /// A node-local "transfer" (src == dst) completes after a 0-cost event.
  void transfer(NodeId src, NodeId dst, Bytes size, Done done);

  /// transfer() with a per-stream rate cap (work-units/sec; kUncapped for
  /// none) and a cancellation handle — the DFS re-replication pipeline's
  /// transport. Contends on exactly the same servers as transfer()
  /// (receiver NIC ingress, destination rack uplink when cross-rack), so
  /// recovery traffic and shuffle fan-in compete for the same capacity.
  CopyId transfer_capped(NodeId src, NodeId dst, Bytes size, double cap,
                         Done done);
  /// Abort a capped transfer: its `done` never fires and its streams leave
  /// their servers. No-op when already finished or cancelled (the common
  /// pattern when a completion races a source-node death).
  void cancel_transfer(CopyId id);
  /// Live capped transfers (tests and the re-replication work limiter).
  [[nodiscard]] std::size_t active_capped_transfers() const {
    return copies_.size();
  }

  /// Total bytes that have crossed rack boundaries (for tests/benches).
  [[nodiscard]] double inter_rack_bytes() const { return inter_rack_bytes_; }

 private:
  /// Bookkeeping for one transfer_capped(): which server streams to cancel
  /// and how many legs are still draining.
  struct CopyState {
    Done done;
    int remaining = 0;
    NodeId dst;
    bool has_nic = false;
    sim::StreamId nic;
    std::int64_t uplink_rack = -1;
    sim::StreamId uplink;
    bool has_event = false;  ///< degenerate 0-byte/local copy
    sim::EventId event;
  };

  void copy_leg_done(std::int64_t id);

  sim::Engine& engine_;
  const Topology& topo_;
  std::vector<Node*> nodes_;
  std::vector<std::unique_ptr<sim::SharedServer>> rack_uplinks_;
  double inter_rack_factor_;
  double inter_rack_bytes_ = 0.0;
  /// Live capped transfers, keyed by CopyId value (ordered so any
  /// diagnostic iteration is deterministic).
  std::map<std::int64_t, CopyState> copies_;
  std::int64_t next_copy_id_ = 0;
};

}  // namespace mron::cluster
