#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace mron {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  MRON_CHECK_MSG(row.size() == header_.size(),
                 "row width " << row.size() << " != header width "
                              << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << "\n";
  };
  auto print_sep = [&] {
    os << "+";
    for (std::size_t w : widths) {
      os << std::string(w + 2, '-') << "+";
    }
    os << "\n";
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

}  // namespace mron
