// Minimal leveled logger.
//
// The simulator is single-threaded per experiment; benches may run several
// experiments on worker threads, so the sink is guarded by a mutex. Logging
// defaults to Warn so benches stay quiet unless asked.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace mron {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
  std::mutex mu_;
};

const char* log_level_name(LogLevel level);
/// Parse "trace"/"debug"/"info"/"warn"/"error" (case-insensitive); false on
/// an unknown name, leaving `out` untouched.
bool log_level_from_name(const std::string& name, LogLevel& out);

}  // namespace mron

#define MRON_LOG(level, expr)                                        \
  do {                                                               \
    if (::mron::Logger::instance().enabled(level)) {                 \
      std::ostringstream mron_log_os;                                \
      mron_log_os << expr;                                           \
      ::mron::Logger::instance().write(level, mron_log_os.str());    \
    }                                                                \
  } while (false)

#define MRON_DEBUG(expr) MRON_LOG(::mron::LogLevel::Debug, expr)
#define MRON_INFO(expr) MRON_LOG(::mron::LogLevel::Info, expr)
#define MRON_WARN(expr) MRON_LOG(::mron::LogLevel::Warn, expr)
