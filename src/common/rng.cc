#include "common/rng.h"

#include <cmath>

namespace mron {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t salt) {
  std::uint64_t mix = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(mix));
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(*this);
}

double Rng::lognormal_noise(double cv) {
  if (cv <= 0.0) return 1.0;
  // For lognormal with E[x]=1: sigma^2 = ln(1+cv^2), mu = -sigma^2/2.
  const double sigma2 = std::log(1.0 + cv * cv);
  const double sigma = std::sqrt(sigma2);
  std::normal_distribution<double> dist(-sigma2 / 2.0, sigma);
  return std::exp(dist(*this));
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(*this);
}

}  // namespace mron
