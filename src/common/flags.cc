#include "common/flags.h"

#include <cstdlib>

namespace mron {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // bare boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

std::optional<std::string> Flags::raw(const std::string& name) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Flags::has(const std::string& name) const {
  return raw(name).has_value();
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto v = raw(name);
  return v.has_value() && !v->empty() ? *v : fallback;
}

double Flags::get(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v.has_value() || v->empty()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  return end != v->c_str() ? parsed : fallback;
}

int Flags::get(const std::string& name, int fallback) const {
  return static_cast<int>(get(name, static_cast<double>(fallback)));
}

bool Flags::get(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v.has_value()) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
  return false;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (queried_.find(name) == queried_.end()) out.push_back(name);
  }
  return out;
}

}  // namespace mron
