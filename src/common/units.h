// Byte/size and time units used throughout the simulator.
//
// Sizes are tracked as plain int64 byte counts wrapped in a tiny value type
// so that "bytes vs. records vs. megabytes" mix-ups fail to compile.
// Simulated time is a double in seconds; the event engine orders equal
// timestamps by insertion sequence, so double precision is sufficient for
// the hour-scale jobs modeled here.
#pragma once

#include <cstdint>
#include <compare>

namespace mron {

/// Simulated time, in seconds since simulation start.
using SimTime = double;

/// A byte count. Arithmetic is deliberately minimal: sums, differences,
/// scaling by dimensionless factors, and ratios yielding doubles.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t count) : count_(count) {}

  [[nodiscard]] constexpr std::int64_t count() const { return count_; }
  [[nodiscard]] constexpr double as_double() const {
    return static_cast<double>(count_);
  }
  [[nodiscard]] constexpr double mib() const {
    return as_double() / (1024.0 * 1024.0);
  }
  [[nodiscard]] constexpr double gib() const {
    return as_double() / (1024.0 * 1024.0 * 1024.0);
  }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes other) {
    count_ += other.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes other) {
    count_ -= other.count_;
    return *this;
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes(a.count_ + b.count_);
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes(a.count_ - b.count_);
  }
  friend constexpr Bytes operator*(Bytes a, double f) {
    return Bytes(static_cast<std::int64_t>(static_cast<double>(a.count_) * f));
  }
  friend constexpr Bytes operator*(double f, Bytes a) { return a * f; }
  /// Ratio of two sizes (dimensionless).
  friend constexpr double operator/(Bytes a, Bytes b) {
    return a.as_double() / b.as_double();
  }

 private:
  std::int64_t count_ = 0;
};

constexpr Bytes kibibytes(double k) {
  return Bytes(static_cast<std::int64_t>(k * 1024.0));
}
constexpr Bytes mebibytes(double m) {
  return Bytes(static_cast<std::int64_t>(m * 1024.0 * 1024.0));
}
constexpr Bytes gibibytes(double g) {
  return Bytes(static_cast<std::int64_t>(g * 1024.0 * 1024.0 * 1024.0));
}

/// Bandwidth in bytes per simulated second.
class BytesPerSec {
 public:
  constexpr BytesPerSec() = default;
  constexpr explicit BytesPerSec(double rate) : rate_(rate) {}

  [[nodiscard]] constexpr double rate() const { return rate_; }

  /// Time to move `b` bytes at this rate.
  [[nodiscard]] constexpr SimTime time_for(Bytes b) const {
    return b.as_double() / rate_;
  }

  constexpr auto operator<=>(const BytesPerSec&) const = default;

  friend constexpr BytesPerSec operator*(BytesPerSec r, double f) {
    return BytesPerSec(r.rate_ * f);
  }
  friend constexpr BytesPerSec operator/(BytesPerSec r, double f) {
    return BytesPerSec(r.rate_ / f);
  }

 private:
  double rate_ = 0.0;
};

constexpr BytesPerSec mib_per_sec(double m) {
  return BytesPerSec(m * 1024.0 * 1024.0);
}
constexpr BytesPerSec gbit_per_sec(double g) {
  return BytesPerSec(g * 1e9 / 8.0);
}

}  // namespace mron
