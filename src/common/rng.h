// Deterministic random number generation.
//
// Every stochastic component takes an explicit Rng (or a seed) so that a
// whole simulated experiment is reproducible from one root seed. The engine
// is xoshiro256**, seeded through splitmix64 per the reference
// recommendation; it satisfies UniformRandomBitGenerator so the <random>
// distributions can be used on top.
#pragma once

#include <cstdint>
#include <random>

namespace mron {

/// splitmix64 step; used for seeding and for cheap hash mixing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Small, fast, and statistically strong enough for
/// simulation workloads; explicitly not cryptographic.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Derive an independent child stream; `salt` distinguishes siblings.
  [[nodiscard]] Rng fork(std::uint64_t salt);

  /// Uniform double in [0, 1).
  double uniform01();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Lognormal multiplicative noise with E[x] = 1 and the given coefficient
  /// of variation; cv = 0 returns exactly 1.
  double lognormal_noise(double cv);
  /// Standard normal.
  double normal(double mean, double stddev);

 private:
  std::uint64_t s_[4];
};

}  // namespace mron
