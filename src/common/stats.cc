#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mron {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return min_; }
double OnlineStats::max() const { return max_; }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ = (na * mean_ + nb * other.mean_) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
  MRON_CHECK(!samples.empty());
  MRON_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples) s += x;
  return s / static_cast<double>(samples.size());
}

}  // namespace mron
