#include "common/log.h"

#include <iostream>

namespace mron {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  std::cerr << "[" << log_level_name(level) << "] " << message << "\n";
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
  }
  return "?";
}

}  // namespace mron
