#include "common/log.h"

#include <algorithm>
#include <cctype>
#include <iostream>

namespace mron {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  std::cerr << "[" << log_level_name(level) << "] " << message << "\n";
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
  }
  return "?";
}

bool log_level_from_name(const std::string& name, LogLevel& out) {
  std::string low = name;
  std::transform(low.begin(), low.end(), low.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (low == "trace") {
    out = LogLevel::Trace;
  } else if (low == "debug") {
    out = LogLevel::Debug;
  } else if (low == "info") {
    out = LogLevel::Info;
  } else if (low == "warn" || low == "warning") {
    out = LogLevel::Warn;
  } else if (low == "error") {
    out = LogLevel::Error;
  } else {
    return false;
  }
  return true;
}

}  // namespace mron
