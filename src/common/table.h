// ASCII table printer used by the bench harnesses to emit the paper's
// tables and figure data series in a stable, diffable format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mron {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mron
