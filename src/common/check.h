// Invariant checking.
//
// MRON_CHECK aborts with a message on violated invariants; it stays on in
// release builds because a simulator that silently continues after a broken
// invariant produces plausible-looking wrong numbers.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mron {

/// Thrown on violated preconditions/invariants.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "MRON_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace mron

#define MRON_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) ::mron::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define MRON_CHECK_MSG(expr, msg)                                \
  do {                                                           \
    if (!(expr)) {                                               \
      std::ostringstream mron_check_os;                          \
      mron_check_os << msg;                                      \
      ::mron::check_failed(#expr, __FILE__, __LINE__, mron_check_os.str()); \
    }                                                            \
  } while (false)
