// Small statistics helpers shared by the monitor, tuner, and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace mron {

/// Streaming mean/variance (Welford) with min/max tracking.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `q` in [0, 1]. The input is copied; the original order is preserved.
double percentile(std::vector<double> samples, double q);

/// Arithmetic mean of a sample; 0 for an empty sample.
double mean_of(const std::vector<double>& samples);

}  // namespace mron
