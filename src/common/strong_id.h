// Strongly typed integer identifiers.
//
// Each simulator entity (node, job, task, container, ...) gets its own id
// type so ids from different spaces cannot be swapped accidentally.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace mron {

template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::int64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::int64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  constexpr auto operator<=>(const StrongId&) const = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  std::int64_t value_ = -1;
};

/// Hands out sequential ids within one id space.
template <typename Id>
class IdAllocator {
 public:
  Id next() { return Id(next_++); }
  [[nodiscard]] std::int64_t issued() const { return next_; }

 private:
  std::int64_t next_ = 0;
};

}  // namespace mron

template <typename Tag>
struct std::hash<mron::StrongId<Tag>> {
  std::size_t operator()(const mron::StrongId<Tag>& id) const noexcept {
    return std::hash<std::int64_t>{}(id.value());
  }
};
