// Minimal command-line flag parsing for the example/CLI binaries.
//
// Supports `--name=value`, `--name value`, and bare boolean `--name`.
// Unknown flags are collected so callers can reject or report them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mron {

class Flags {
 public:
  /// Parse argv; non-flag arguments land in positional().
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& name, double fallback) const;
  [[nodiscard]] int get(const std::string& name, int fallback) const;
  /// Bare `--name` or `--name=true/1/yes` -> true.
  [[nodiscard]] bool get(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  /// Flags the caller never queried — typo detection.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace mron
