#include "whatif/predictor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "mapreduce/reduce_task.h"  // kFetchLatency
#include "mapreduce/spill_model.h"
#include "sim/parallel_runner.h"
#include "tuner/eval_cache.h"

namespace mron::whatif {

using mapreduce::JobConfig;
using mapreduce::kCodecCompressionRatio;
using mapreduce::kHeapFraction;

namespace {

/// Containers of `mem_mb`/`vcores` that fit one node.
int slots_per_node(const cluster::ClusterSpec& cluster, double mem_mb,
                   double vcores) {
  const int by_mem = static_cast<int>(cluster.container_memory.as_double() /
                                      mebibytes(mem_mb).as_double());
  const int by_vcores =
      static_cast<int>(cluster.container_vcores / std::max(1.0, vcores));
  return std::max(0, std::min(by_mem, by_vcores));
}

/// Fair-share disk rate for `streams` concurrent streams on one spindle.
double disk_rate(const cluster::ClusterSpec& cluster, int streams) {
  const double eff =
      cluster.disk_bandwidth.rate() /
      (1.0 + cluster.disk_seek_penalty * std::max(0, streams - 1));
  return eff / std::max(1, streams);
}

/// Fair-share CPU rate (core-units) for a task whose quota is `quota`
/// among `tasks` concurrent tasks on the node.
double cpu_rate(const cluster::ClusterSpec& cluster, double quota,
                double demand, int tasks) {
  const double share =
      cluster.container_core_units() / std::max(1, tasks);
  return std::min({quota, demand, std::max(share, 1e-9)});
}

/// Heterogeneous-cluster phase stretch: steady-state waves run at the
/// harmonic-mean slowdown (a node with slowdown s contributes 1/s of its
/// slot throughput); the final wave is pessimistically charged the slowest
/// node's factor. Returns {harmonic_mean, worst}; {1, 1} when the vector
/// is empty or all ones, which keeps the homogeneous path byte-identical.
std::pair<double, double> slowdown_stretch(
    const std::vector<double>& slowdown) {
  if (slowdown.empty()) return {1.0, 1.0};
  double inv_sum = 0.0;
  double worst = 0.0;
  for (double s : slowdown) {
    MRON_CHECK_MSG(s > 0.0, "node slowdown factors must be > 0");
    inv_sum += 1.0 / s;
    worst = std::max(worst, s);
  }
  return {static_cast<double>(slowdown.size()) / inv_sum, worst};
}

/// Phase time for `waves` waves of `task_secs` tasks under the stretch.
double phase_secs(int waves, double task_secs,
                  const std::pair<double, double>& stretch) {
  if (waves <= 0) return 0.0;
  return task_secs * ((waves - 1) * stretch.first + stretch.second);
}

}  // namespace

Prediction predict(const PredictionInputs& inputs) {
  const cluster::ClusterSpec& cl = inputs.cluster;
  const mapreduce::AppProfile& p = inputs.profile;
  JobConfig cfg = inputs.config;
  mapreduce::clamp_constraints(cfg);

  MRON_CHECK_MSG(inputs.node_slowdown.empty() ||
                     static_cast<int>(inputs.node_slowdown.size()) ==
                         cl.num_slaves,
                 "node_slowdown must be empty or one factor per slave");
  const std::pair<double, double> stretch =
      slowdown_stretch(inputs.node_slowdown);

  Prediction out;
  const Bytes block = mebibytes(128);
  const int num_maps =
      inputs.num_maps > 0
          ? inputs.num_maps
          : std::max(1, static_cast<int>(std::ceil(
                            inputs.input_size.as_double() /
                            block.as_double())));
  const Bytes split = inputs.num_maps > 0 && inputs.input_size > Bytes(0)
                          ? inputs.input_size * (1.0 / inputs.num_maps)
                          : (inputs.input_size > Bytes(0) ? block : Bytes(0));

  // --- geometry ---------------------------------------------------------------
  out.map_slots_per_node =
      slots_per_node(cl, cfg.map_memory_mb, cfg.map_cpu_vcores);
  out.reduce_slots_per_node =
      slots_per_node(cl, cfg.reduce_memory_mb, cfg.reduce_cpu_vcores);
  MRON_CHECK_MSG(out.map_slots_per_node > 0, "map container exceeds a node");
  const int map_concurrency = out.map_slots_per_node * cl.num_slaves;
  out.map_waves = (num_maps + map_concurrency - 1) / map_concurrency;

  // --- map task ---------------------------------------------------------------
  const Bytes map_out = split * p.map_output_ratio + p.map_output_bytes_fixed;
  const auto map_records = static_cast<std::int64_t>(std::llround(
      map_out.as_double() / p.map_record_bytes));
  const auto plan =
      mapreduce::plan_map_spills(map_out, map_records, p.combiner_ratio, cfg);
  out.map_spill_records =
      plan.spill_records * static_cast<std::int64_t>(num_maps);
  const bool compress = cfg.map_output_compress >= 0.5;
  const double codec = compress ? kCodecCompressionRatio : 1.0;

  // Node-level contention: assume all slots busy with like tasks.
  const int streams = out.map_slots_per_node;
  const double read_secs = split.as_double() / disk_rate(cl, streams);
  const double cpu =
      (split.mib() * p.map_cpu_secs_per_mib + p.map_cpu_secs_fixed) /
      cpu_rate(cl, cfg.map_cpu_vcores * cl.cpu_quota_per_vcore,
               p.map_cpu_demand_cores, streams);
  const double spill_secs =
      (plan.disk_write_bytes + plan.disk_read_bytes).as_double() * codec /
      disk_rate(cl, streams);
  out.map_task_secs =
      p.task_startup_secs + std::max(read_secs, cpu) + spill_secs;
  out.map_phase_secs = phase_secs(out.map_waves, out.map_task_secs, stretch);

  // --- reduce task ------------------------------------------------------------
  const Bytes total_shuffle = map_out * p.combiner_ratio * codec *
                              static_cast<double>(num_maps);
  out.shuffle_bytes = total_shuffle;
  if (inputs.num_reduces > 0 && out.reduce_slots_per_node == 0) {
    // An oversized reduce container fits nowhere. Skipping the phase (the
    // old behavior) scored such configs as free; make them infinitely
    // expensive so no search can ever pick one.
    out.reduce_task_secs = std::numeric_limits<double>::infinity();
    out.reduce_phase_secs = std::numeric_limits<double>::infinity();
    out.total_secs = std::numeric_limits<double>::infinity();
    return out;
  }
  if (inputs.num_reduces > 0 && out.reduce_slots_per_node > 0) {
    const int reduce_concurrency =
        out.reduce_slots_per_node * cl.num_slaves;
    out.reduce_waves =
        (inputs.num_reduces + reduce_concurrency - 1) / reduce_concurrency;
    const Bytes partition =
        total_shuffle * (1.0 / inputs.num_reduces);

    // Fetch: receiver NICs are the contended resource; each node hosts
    // reduce_slots_per_node concurrent fetchers.
    const double net_secs =
        partition.as_double() /
        (cl.nic_bandwidth.rate() /
         std::max(1, out.reduce_slots_per_node)) +
        static_cast<double>(num_maps) /
            std::max(1.0, cfg.shuffle_parallelcopies) *
            mapreduce::kFetchLatency;

    // Buffer mechanics via the shared model, fed with equal segments. The
    // closed-form kernel makes this O(1) in num_maps (bit-exact against
    // the incremental add_segment loop).
    mapreduce::ShuffleBufferModel buffer(cfg,
                                         p.map_record_bytes * codec);
    const Bytes segment = partition * (1.0 / num_maps);
    Bytes disk_in_shuffle = buffer.add_segments(num_maps, segment);
    disk_in_shuffle += buffer.finalize();
    const auto merge = mapreduce::plan_disk_merge(
        buffer.disk_files(), static_cast<int>(cfg.io_sort_factor));
    const int rstreams = out.reduce_slots_per_node;
    const double shuffle_disk_secs =
        disk_in_shuffle.as_double() / disk_rate(cl, rstreams);
    const double merge_secs =
        (merge.read + merge.write).as_double() / disk_rate(cl, rstreams);
    const double logical_mib = partition.mib() / codec;
    double reduce_cpu_secs =
        logical_mib * p.reduce_cpu_secs_per_mib /
        cpu_rate(cl, cfg.reduce_cpu_vcores * cl.cpu_quota_per_vcore,
                 p.reduce_cpu_demand_cores, rstreams);
    if (compress) {
      reduce_cpu_secs += logical_mib * mapreduce::kDecompressCpuSecsPerMib;
    }
    const double final_read_secs =
        buffer.disk_write_bytes().as_double() / disk_rate(cl, rstreams);
    const Bytes output = partition * (p.reduce_output_ratio / codec);
    const double write_secs =
        std::max(output.as_double() / disk_rate(cl, rstreams),
                 output.as_double() / cl.nic_bandwidth.rate());

    out.reduce_task_secs = p.task_startup_secs + net_secs +
                           shuffle_disk_secs + merge_secs +
                           std::max(reduce_cpu_secs, final_read_secs) +
                           write_secs;
    out.reduce_phase_secs =
        phase_secs(out.reduce_waves, out.reduce_task_secs, stretch);
  }

  // Shuffle overlaps the map phase (slowstart); the reduce compute tail
  // does not. Empirically the overlap hides roughly the fetch component,
  // which is why the tail below keeps everything else.
  out.total_secs = out.map_phase_secs + out.reduce_phase_secs;
  return out;
}

namespace {

using ScoreCache = tuner::EvalCache<double>;

/// The score cache outlives any single optimize_with_model call: keys carry
/// the full evaluation context (below), so entries from one scenario can
/// never be returned for another, and a tuner that re-plans over the same
/// job repeatedly — the common case — starts every search warm. The LRU
/// bounds the footprint.
ScoreCache& process_score_cache() {
  static ScoreCache cache;
  return cache;
}

void add_hardware(tuner::CacheKey& key, const cluster::NodeHardware& hw) {
  key.add(hw.physical_cores);
  key.add(hw.total_vcores);
  key.add(hw.container_vcores);
  key.add(hw.node_memory);
  key.add(hw.container_memory);
  key.add(hw.cpu_quota_per_vcore);
  key.add(hw.disk_bandwidth.rate());
  key.add(hw.disk_seek_penalty);
  key.add(hw.nic_bandwidth.rate());
  key.add(hw.daemon_core_reserve);
}

/// Everything predict() reads besides the candidate config. Hashing the
/// full inputs — not just the fields today's model happens to touch —
/// is what makes a process-lifetime cache safe: two scenarios that differ
/// anywhere key differently, so a hit always replays the same pure call.
tuner::CacheKey context_key(const PredictionInputs& in) {
  tuner::CacheKey key;
  const auto& cl = in.cluster;
  key.add(cl.num_slaves);
  key.add(static_cast<std::int64_t>(cl.rack_sizes.size()));
  for (int r : cl.rack_sizes) key.add(r);
  add_hardware(key, cl.default_hardware());
  key.add(cl.inter_rack_factor);
  key.add(static_cast<std::int64_t>(cl.groups.size()));
  for (const auto& g : cl.groups) {
    key.add(g.racks);
    key.add(g.nodes_per_rack);
    add_hardware(key, g.hardware);
  }
  static_assert(sizeof(mapreduce::AppProfile) == 15 * sizeof(double),
                "AppProfile changed: key every new field here");
  const auto& p = in.profile;
  key.add(p.map_cpu_secs_per_mib);
  key.add(p.map_cpu_secs_fixed);
  key.add(p.map_output_bytes_fixed);
  key.add(p.map_output_ratio);
  key.add(p.map_record_bytes);
  key.add(p.combiner_ratio);
  key.add(p.map_cpu_demand_cores);
  key.add(p.map_working_set);
  key.add(p.reduce_cpu_secs_per_mib);
  key.add(p.reduce_output_ratio);
  key.add(p.reduce_cpu_demand_cores);
  key.add(p.reduce_working_set);
  key.add(p.partition_skew_cv);
  key.add(p.sort_cpu_secs_per_record);
  key.add(p.task_startup_secs);
  key.add(in.input_size);
  key.add(in.num_maps);
  key.add(in.num_reduces);
  key.add(static_cast<std::int64_t>(in.node_slowdown.size()));
  for (double s : in.node_slowdown) key.add(s);
  return key;
}

/// One search chain: random restarts + coordinate refinement. Cheap model
/// calls make a simple search sufficient (Starfish uses recursive random
/// search). `cache` (optional, shared across chains) memoizes total_secs
/// per (context, canonical config) — a hit returns exactly what the
/// predict() call would, so the trajectory and winner are cache-invariant.
/// `ctx` is the prebuilt context_key (required when `cache` is non-null).
std::pair<JobConfig, double> search_chain(const PredictionInputs& base,
                                          int evaluations, std::uint64_t seed,
                                          ScoreCache* cache,
                                          const tuner::CacheKey* ctx) {
  const auto& reg = mapreduce::ParamRegistry::standard();
  Rng rng(seed);

  JobConfig best = base.config;
  mapreduce::clamp_constraints(best);
  auto score = [&](const JobConfig& cfg) {
    auto evaluate = [&] {
      PredictionInputs probe = base;
      probe.config = cfg;
      return predict(probe).total_secs;
    };
    if (cache == nullptr) return evaluate();
    // Key = context prefix + canonical config. The per-thread scratch key
    // recycles its storage: after the first eval, copying the prefix and
    // appending the 14 config fields allocates nothing.
    thread_local tuner::CacheKey key;
    key = *ctx;
    key.add_config(cfg);
    return cache->get_or_compute(key, evaluate);
  };
  double best_secs = score(best);

  for (int e = 0; e < evaluations; ++e) {
    JobConfig cand = best;
    if (e % 3 == 0) {
      // Fresh random point.
      for (std::size_t i = 0; i < reg.size(); ++i) {
        const auto& prm = reg.at(i);
        reg.set(cand, i, rng.uniform(prm.min, prm.max));
      }
    } else {
      // Perturb one coordinate of the incumbent.
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(reg.size()) - 1));
      const auto& prm = reg.at(i);
      const double width = (prm.max - prm.min) * 0.2;
      reg.set(cand, i,
              reg.get(best, i) + rng.uniform(-width, width));
    }
    mapreduce::clamp_constraints(cand);
    const double secs = score(cand);
    if (secs < best_secs) {
      best_secs = secs;
      best = cand;
    }
  }
  return {best, best_secs};
}

}  // namespace

JobConfig optimize_with_model(const PredictionInputs& base, int evaluations,
                              std::uint64_t seed, int restarts, int jobs) {
  MRON_CHECK(evaluations >= 1);
  MRON_CHECK(restarts >= 1);

  // One process-wide sharded cache shared by every chain and every call:
  // duplicate probes (quantization and clamping collapse nearby samples,
  // and repeated searches revisit the same territory) cost a lookup
  // instead of a model call. Concurrent chains may race to compute one
  // key, which is benign — predict() is pure, so both racers produce the
  // identical value.
  ScoreCache* cache_ptr =
      tuner::eval_cache_enabled() ? &process_score_cache() : nullptr;
  tuner::CacheKey ctx;
  if (cache_ptr != nullptr) ctx = context_key(base);

  if (restarts == 1) {
    return search_chain(base, evaluations, seed, cache_ptr, &ctx).first;
  }

  // Independent chains with forked seeds, fanned across the pool. Chain
  // results (and therefore the winner) are a pure function of
  // (seed, restarts, evaluations) — `jobs` only buys wall-clock time.
  const int per_chain = std::max(1, evaluations / restarts);
  sim::ParallelRunner pool(jobs);
  const auto chains = pool.map<std::pair<JobConfig, double>>(
      static_cast<std::size_t>(restarts), [&](std::size_t k) {
        Rng salter(seed);
        return search_chain(base, per_chain, salter.fork(k + 1)(), cache_ptr,
                            &ctx);
      });
  std::size_t winner = 0;
  for (std::size_t k = 1; k < chains.size(); ++k) {
    if (chains[k].second < chains[winner].second) winner = k;
  }
  return chains[winner].first;
}

}  // namespace mron::whatif
