// Starfish-style "what-if" engine (Herodotou et al., CIDR'11 — the paper's
// main related-work comparator): a closed-form analytic predictor of job
// execution time for a given (profile, configuration, cluster) triple,
// plus a cost-based optimizer that searches configurations against the
// predictor instead of against real runs.
//
// The predictor deliberately shares the spill mechanics with the simulator
// (plan_map_spills / ShuffleBufferModel constants) but replaces queueing
// with closed-form fair-share approximations — exactly the fidelity split
// the MRONLINE paper criticizes: "the effectiveness of this approach
// depends on the accuracy of the what-if engine". bench/ext_whatif
// quantifies that accuracy gap against the discrete-event simulator.
#pragma once

#include <vector>

#include "cluster/topology.h"
#include "mapreduce/app_profile.h"
#include "mapreduce/params.h"

namespace mron::whatif {

struct PredictionInputs {
  cluster::ClusterSpec cluster;
  mapreduce::AppProfile profile;
  Bytes input_size;       ///< total job input
  int num_maps = 0;       ///< 0 = derive from input / 128 MiB blocks
  int num_reduces = 1;
  mapreduce::JobConfig config;
  /// Optional per-slave slowdown factors (>= 1 = that node runs X times
  /// slower: a degraded disk/NIC or recovering host). Empty = homogeneous
  /// cluster; otherwise size must equal cluster.num_slaves. An all-1.0
  /// vector predicts byte-identically to the empty one.
  std::vector<double> node_slowdown;
};

struct Prediction {
  // Per-task estimates.
  double map_task_secs = 0.0;
  double reduce_task_secs = 0.0;
  // Concurrency geometry.
  int map_slots_per_node = 0;
  int reduce_slots_per_node = 0;
  int map_waves = 0;
  int reduce_waves = 0;
  // Phase and total estimates.
  double map_phase_secs = 0.0;
  double reduce_phase_secs = 0.0;
  double total_secs = 0.0;
  // Dataflow estimates.
  std::int64_t map_spill_records = 0;
  Bytes shuffle_bytes{0};
};

/// Closed-form job-time prediction.
Prediction predict(const PredictionInputs& inputs);

/// Cost-based optimizer: searches the Table-2 space against predict()
/// (cheap model invocations, no runs) and returns the best configuration
/// found. `evaluations` bounds the number of model probes across all
/// `restarts` independent search chains; the chains fan out over `jobs`
/// worker threads but the result depends only on (seed, restarts), never on
/// `jobs` — ties between chains break toward the lowest chain index.
/// restarts = 1 reproduces the original single-chain search exactly.
mapreduce::JobConfig optimize_with_model(const PredictionInputs& base,
                                         int evaluations = 2000,
                                         std::uint64_t seed = 4,
                                         int restarts = 1, int jobs = 1);

}  // namespace mron::whatif
