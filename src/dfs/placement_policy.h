// Pluggable replica-placement policies for the DFS.
//
// A policy decides where one block's replicas live, drawing from the DFS's
// placement RNG stream. The default RackAwarePolicy reproduces the legacy
// inline placement draw-for-draw (first replica on a random node, second on
// a different rack, third beside the second) — the placement equivalence
// suite pins that stream byte-for-byte, so a default-policy run places
// blocks exactly where every earlier revision did. The variants exist for
// experiments: SameRackPolicy trades failure isolation for rack locality,
// SpreadPolicy trades locality for maximum failure isolation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/rng.h"

namespace mron::dfs {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Stable identifier ("rack-aware", "same-rack", "spread"); lands in the
  /// run report's dfs block via Dfs::policy_name().
  [[nodiscard]] virtual const char* name() const = 0;

  /// Append up to `want` distinct replica nodes for one block into `out`
  /// (empty on entry). `want` is already clamped to [1, topo.num_nodes()];
  /// a policy may place fewer when the topology cannot satisfy its shape
  /// (the block's replication target becomes what was actually placed).
  virtual void place(const cluster::Topology& topo, Rng& rng, int want,
                     std::vector<cluster::NodeId>& out) const = 0;
};

/// HDFS default: first replica on a random node (stand-in for the writer),
/// second on a different rack, third on the second's rack; replicas beyond
/// three land on uniform-random remaining nodes. Draw-for-draw identical to
/// the legacy inline placement for want <= 3.
class RackAwarePolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "rack-aware"; }
  void place(const cluster::Topology& topo, Rng& rng, int want,
             std::vector<cluster::NodeId>& out) const override;
};

/// Every replica inside the first replica's rack (clamped to the rack
/// size): maximal read locality, no rack-failure isolation.
class SameRackPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "same-rack"; }
  void place(const cluster::Topology& topo, Rng& rng, int want,
             std::vector<cluster::NodeId>& out) const override;
};

/// Every replica on a distinct rack while racks remain (falling back to
/// uniform spares after that): maximal failure isolation, worst locality.
class SpreadPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "spread"; }
  void place(const cluster::Topology& topo, Rng& rng, int want,
             std::vector<cluster::NodeId>& out) const override;
};

/// Factory for the --dfs-policy flag; accepts "rack-aware" (default when
/// `name` is empty), "same-rack", and "spread". Aborts on anything else.
std::unique_ptr<PlacementPolicy> make_placement_policy(
    const std::string& name);

}  // namespace mron::dfs
