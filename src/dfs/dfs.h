// HDFS-like distributed file system model.
//
// Tracks datasets as sequences of fixed-size blocks with rack-aware replica
// placement (default policy: first replica on a random node, second on a
// different rack, third on the second's rack). Map input splits are
// one-per-block; the scheduler queries replica locations to make
// locality-aware container placements.
#pragma once

#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/rng.h"
#include "common/strong_id.h"
#include "common/units.h"

namespace mron::dfs {

struct DatasetTag {};
using DatasetId = StrongId<DatasetTag>;

enum class Locality { NodeLocal, RackLocal, OffRack };

struct Block {
  Bytes size;
  std::vector<cluster::NodeId> replicas;
};

struct Dataset {
  DatasetId id;
  std::string name;
  Bytes total_size;
  std::vector<Block> blocks;
};

class Dfs {
 public:
  Dfs(const cluster::Topology& topo, Rng rng,
      Bytes block_size = mebibytes(128), int replication = 3);

  /// Create a dataset of `total_size` bytes, split into ceil(size/block)
  /// blocks, the last one partial.
  DatasetId create_dataset(const std::string& name, Bytes total_size);

  [[nodiscard]] const Dataset& dataset(DatasetId id) const;
  [[nodiscard]] Bytes block_size() const { return block_size_; }

  /// Locality class of reading `block` of `ds` from node `reader`.
  [[nodiscard]] Locality locality(DatasetId ds, std::size_t block,
                                  cluster::NodeId reader) const;
  /// Replica to fetch from for a reader: the local one if present, else a
  /// rack-local one, else the first replica.
  [[nodiscard]] cluster::NodeId pick_replica(DatasetId ds, std::size_t block,
                                             cluster::NodeId reader) const;

 private:
  /// The bulk-placement pass behind create_dataset(): fills `replicas` of
  /// every block in one sweep, with per-dataset invariants (node count,
  /// replica target) hoisted out of the per-block loop and each replica
  /// vector reserved up front. Rack ranges are O(1) index arithmetic, so
  /// the whole pass is O(blocks). Draws from rng_ exactly as the legacy
  /// per-block placement did — same RNG stream, same placements (pinned by
  /// the placement equivalence suite).
  void place_replicas_bulk(std::vector<Block>& blocks);

  const cluster::Topology& topo_;
  Rng rng_;
  Bytes block_size_;
  int replication_;
  std::vector<Dataset> datasets_;
};

const char* locality_name(Locality loc);

}  // namespace mron::dfs
