// HDFS-like distributed file system model.
//
// Tracks datasets as sequences of fixed-size blocks with pluggable replica
// placement (default: the rack-aware HDFS policy — see placement_policy.h).
// Map input splits are one-per-block; the scheduler queries replica
// locations to make locality-aware container placements.
//
// The DFS is a live participant in failure and recovery: the Simulation
// wires the RM watchdog's node-lost/recovered events into on_node_lost()/
// on_node_recovered(), so pick_replica()/locality() skip dead hosts, every
// block's live-replica count is tracked incrementally (per-node block
// indexes, O(blocks on the node) per event), and blocks whose live count
// falls below target enter the under-replication queue that drives the
// Rereplicator (rereplicator.h). Readers of a block with no live replica
// park a waiter and are resumed — in registration order — the moment a
// replica returns (node recovery restores its disks, HDFS-style, or a
// re-replication copy completes). On a reliable cluster none of this state
// ever changes after placement, so fault-free runs are event-for-event
// identical to the pre-liveness DFS.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/topology.h"
#include "common/rng.h"
#include "common/strong_id.h"
#include "common/units.h"
#include "dfs/placement_policy.h"

namespace mron::dfs {

struct DatasetTag {};
using DatasetId = StrongId<DatasetTag>;

enum class Locality { NodeLocal, RackLocal, OffRack };

struct Block {
  Bytes size;
  std::vector<cluster::NodeId> replicas;
  /// Replication target: how many replicas placement produced. The
  /// re-replication pipeline restores the block to this count after
  /// permanent node loss.
  int target = 0;
  /// Replicas currently on live nodes; maintained incrementally by the
  /// node-lost/recovered handlers and add_replica().
  int live = 0;
};

struct Dataset {
  DatasetId id;
  std::string name;
  Bytes total_size;
  std::vector<Block> blocks;
};

class Dfs {
 public:
  using BlockWaiter = std::function<void()>;
  /// Under-replication priority key: fewest live replicas first (most
  /// endangered blocks re-replicate first), ties in (dataset, block) order.
  using UnderKey = std::tuple<int, std::int64_t, std::int64_t>;

  Dfs(const cluster::Topology& topo, Rng rng,
      Bytes block_size = mebibytes(128), int replication = 3,
      std::unique_ptr<PlacementPolicy> policy = nullptr);

  /// Create a dataset of `total_size` bytes, split into ceil(size/block)
  /// blocks, the last one partial. `replication` overrides the DFS default
  /// for this dataset (-1 = default); it is clamped to the node count.
  DatasetId create_dataset(const std::string& name, Bytes total_size,
                           int replication = -1);

  [[nodiscard]] const Dataset& dataset(DatasetId id) const;
  [[nodiscard]] Bytes block_size() const { return block_size_; }
  [[nodiscard]] int default_replication() const { return replication_; }
  [[nodiscard]] const char* policy_name() const { return policy_->name(); }

  /// Locality class of reading `block` of `ds` from node `reader`,
  /// considering live replicas only (OffRack when none is live).
  [[nodiscard]] Locality locality(DatasetId ds, std::size_t block,
                                  cluster::NodeId reader) const;
  /// Replica to fetch from for a reader: the live local one if present,
  /// else a live rack-local one, else the closest live replica (first in
  /// placement order — all remaining candidates are equally remote).
  /// Invalid NodeId when no replica is live (guard with has_live_replica).
  [[nodiscard]] cluster::NodeId pick_replica(DatasetId ds, std::size_t block,
                                             cluster::NodeId reader) const;

  // --- liveness (wired to the RM watchdog by the Simulation) ----------------
  /// A node was declared lost: its replicas stop serving reads and their
  /// blocks' live counts drop (entering the under-replication queue when
  /// they fall below target). Idempotent.
  void on_node_lost(cluster::NodeId node);
  /// The node came back: its disks survived the restart (HDFS semantics),
  /// so every replica it holds serves again; blocks back at target leave
  /// the under-replication queue and dead-block waiters fire. Idempotent.
  void on_node_recovered(cluster::NodeId node);
  [[nodiscard]] bool node_alive(cluster::NodeId node) const {
    return alive_[static_cast<std::size_t>(node.value())];
  }

  [[nodiscard]] int live_replicas(DatasetId ds, std::size_t block) const;
  [[nodiscard]] bool has_live_replica(DatasetId ds, std::size_t block) const {
    return live_replicas(ds, block) > 0;
  }

  /// Park `cb` until `block` has a live replica again; fires immediately
  /// (synchronously) when it already does. Waiters for one block fire in
  /// registration order. The AM's map path uses this to block
  /// deterministically on an unavailable split instead of reading a corpse.
  void wait_for_block(DatasetId ds, std::size_t block, BlockWaiter cb);

  /// A re-replication copy landed: `node` (alive, not yet a replica) now
  /// serves the block. Updates live counts, the under-replication queue,
  /// and fires dead-block waiters.
  void add_replica(DatasetId ds, std::size_t block, cluster::NodeId node);

  // --- under-replication queue ----------------------------------------------
  /// Blocks with live < target, most endangered first. The Rereplicator
  /// walks this to schedule copies; membership updates are O(log n) per
  /// liveness event.
  [[nodiscard]] const std::set<UnderKey>& under_replicated() const {
    return under_;
  }
  [[nodiscard]] std::size_t under_replicated_blocks() const {
    return under_.size();
  }
  [[nodiscard]] std::size_t total_blocks() const { return total_blocks_; }
  /// Replica count hosted on `node` (dead or alive) — the re-replication
  /// target selector's balance signal.
  [[nodiscard]] std::int64_t blocks_hosted(cluster::NodeId node) const {
    return static_cast<std::int64_t>(
        node_blocks_[static_cast<std::size_t>(node.value())].size());
  }

  [[nodiscard]] const cluster::Topology& topology() const { return topo_; }

 private:
  /// One replica's reverse-index entry: which block of which dataset.
  struct BlockRef {
    std::int64_t ds;
    std::int64_t block;
  };

  /// The bulk-placement pass behind create_dataset(): fills `replicas` of
  /// every block in one sweep via the placement policy, with per-dataset
  /// invariants (node count, replica target) hoisted out of the per-block
  /// loop. The default policy draws from rng_ exactly as the legacy
  /// per-block placement did — same RNG stream, same placements (pinned by
  /// the placement equivalence suite).
  void place_replicas_bulk(std::vector<Block>& blocks, int want);

  [[nodiscard]] Block& block_at(DatasetId ds, std::size_t block);
  /// Re-file the block in the under-replication queue after its live count
  /// moved from `old_live`.
  void refile_under(std::int64_t ds, std::int64_t block, int old_live);
  /// live went 0 -> 1: resume every parked reader, in registration order.
  void fire_waiters(std::int64_t ds, std::int64_t block);

  const cluster::Topology& topo_;
  Rng rng_;
  Bytes block_size_;
  int replication_;
  std::unique_ptr<PlacementPolicy> policy_;
  std::vector<Dataset> datasets_;
  std::size_t total_blocks_ = 0;
  /// Node liveness as the DFS sees it (fed by the RM watchdog).
  std::vector<bool> alive_;
  /// Per node: every replica it hosts, appended at placement/add_replica —
  /// makes node-lost/recovered O(blocks on that node).
  std::vector<std::vector<BlockRef>> node_blocks_;
  std::set<UnderKey> under_;
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<BlockWaiter>>
      waiters_;
};

const char* locality_name(Locality loc);

}  // namespace mron::dfs
