#include "dfs/rereplicator.h"

#include <algorithm>
#include <tuple>

#include "common/check.h"
#include "obs/recorder.h"

namespace mron::dfs {

Rereplicator::Rereplicator(sim::Engine& engine, Dfs& dfs,
                           cluster::Fabric& fabric,
                           std::vector<cluster::Node*> nodes,
                           RereplicatorOptions options)
    : engine_(engine),
      dfs_(dfs),
      fabric_(fabric),
      nodes_(std::move(nodes)),
      options_(options),
      node_streams_(nodes_.size(), 0) {
  MRON_CHECK(options_.max_streams_per_node >= 1);
  MRON_CHECK(options_.stream_bandwidth > 0.0);
#if MRON_OBS_ENABLED
  if (auto* rec = engine_.recorder()) {
    auto* under_g = &rec->metrics().gauge("dfs.blocks.under_replicated");
    auto* streams_g = &rec->metrics().gauge("dfs.rerepl.streams");
    auto* under_s = &rec->series().series("dfs.blocks.under_replicated");
    auto* streams_s = &rec->series().series("dfs.rerepl.streams");
    rec->add_flush_hook(
        [this, under_g, streams_g, under_s, streams_s] {
          const auto under =
              static_cast<double>(dfs_.under_replicated_blocks());
          const auto streams = static_cast<double>(copies_.size());
          under_g->set(under);
          streams_g->set(streams);
          const SimTime now = engine_.now();
          under_s->push(now, under);
          streams_s->push(now, streams);
        });
  }
#endif
}

obs::Counter* Rereplicator::counter(const char* name) {
  if (auto* rec = engine_.recorder()) return &rec->metrics().counter(name);
  return nullptr;
}

void Rereplicator::on_node_lost(cluster::NodeId node) {
  // Idempotent cancellation: every copy the dead node was serving — as the
  // source being read or the target being written — is torn down; the
  // block stays in the under-replication queue and the rescan finds it a
  // fresh source/target pair.
  std::vector<std::int64_t> doomed;
  for (const auto& [id, c] : copies_) {
    if (c.src == node || c.dst == node) doomed.push_back(id);
  }
  for (std::int64_t id : doomed) cancel_copy(id);
  note_queue_state();
  schedule_pump();
}

void Rereplicator::on_node_recovered(cluster::NodeId node) {
  (void)node;
  // The recovered replicas may have restored blocks to target while a copy
  // for them is still in flight; those copies are now pointless work.
  std::vector<std::int64_t> redundant;
  for (const auto& [id, c] : copies_) {
    const DatasetId ds(c.block.first);
    const auto block = static_cast<std::size_t>(c.block.second);
    const Block& b = dfs_.dataset(ds).blocks[block];
    if (b.live >= b.target) redundant.push_back(id);
  }
  for (std::int64_t id : redundant) cancel_copy(id);
  note_queue_state();
  schedule_pump();
}

void Rereplicator::schedule_pump() {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  // A 0-delay event keeps the scan out of the RM's failure-notification
  // stack: every subscriber (DFS liveness, then every AM's recovery path)
  // finishes updating state before sources and targets are chosen.
  engine_.schedule_after(0.0, [this] {
    pump_scheduled_ = false;
    pump();
  });
}

void Rereplicator::pump() {
  note_queue_state();
  // The queue orders blocks by fewest live replicas: the most endangered
  // re-replicate first. Starting a copy mutates no DFS state (the replica
  // appears only at completion), so iterating the live set is safe.
  for (const auto& [live, dsv, block] : dfs_.under_replicated()) {
    if (live == 0) continue;  // no live source; recovery must bring one back
    const BlockKey key{dsv, block};
    if (copy_by_block_.count(key) != 0) continue;  // one copy per block
    const DatasetId ds(dsv);
    const Block& b = dfs_.dataset(ds).blocks[static_cast<std::size_t>(block)];
    start_copy(ds, block, b);
  }
}

cluster::NodeId Rereplicator::pick_source(const Block& b) const {
  cluster::NodeId best;
  int best_streams = 0;
  for (auto rep : b.replicas) {
    if (!dfs_.node_alive(rep)) continue;
    const int streams = node_streams_[static_cast<std::size_t>(rep.value())];
    if (streams >= options_.max_streams_per_node) continue;
    if (!best.valid() || streams < best_streams) {
      best = rep;
      best_streams = streams;
    }
  }
  return best;
}

cluster::NodeId Rereplicator::pick_target(const Block& b) const {
  const cluster::Topology& topo = dfs_.topology();
  // Racks already holding a live replica score worse: the replacement
  // should restore the placement policy's failure isolation, not stack
  // copies behind one switch.
  std::vector<std::int64_t> live_racks;
  for (auto rep : b.replicas) {
    if (dfs_.node_alive(rep)) {
      live_racks.push_back(topo.rack_of(rep).value());
    }
  }
  cluster::NodeId best;
  std::tuple<int, int, std::int64_t> best_score;
  for (int i = 0; i < topo.num_nodes(); ++i) {
    const cluster::NodeId cand(i);
    if (!dfs_.node_alive(cand)) continue;
    if (std::find(b.replicas.begin(), b.replicas.end(), cand) !=
        b.replicas.end()) {
      continue;  // already a replica (a dead one may recover with its data)
    }
    const int streams = node_streams_[static_cast<std::size_t>(i)];
    if (streams >= options_.max_streams_per_node) continue;
    const int off_rack =
        std::find(live_racks.begin(), live_racks.end(),
                  topo.rack_of(cand).value()) == live_racks.end()
            ? 0
            : 1;
    const std::tuple<int, int, std::int64_t> score{off_rack, streams,
                                                   dfs_.blocks_hosted(cand)};
    if (!best.valid() || score < best_score) {
      best = cand;
      best_score = score;
    }
  }
  return best;
}

void Rereplicator::start_copy(DatasetId ds, std::int64_t block,
                              const Block& b) {
  const cluster::NodeId src = pick_source(b);
  if (!src.valid()) return;  // all live replicas at their stream limit
  const cluster::NodeId dst = pick_target(b);
  if (!dst.valid()) return;  // no eligible destination right now
  const std::int64_t id = next_copy_id_++;
  Copy& c = copies_[id];
  c.block = {ds.value(), block};
  c.src = src;
  c.dst = dst;
  c.bytes = b.size.as_double();
  ++node_streams_[static_cast<std::size_t>(src.value())];
  ++node_streams_[static_cast<std::size_t>(dst.value())];
  copy_by_block_[c.block] = id;
  ++stats_.copies_started;
  if (auto* ctr = counter("dfs.rerepl.started")) ctr->add(1.0);
  // Three concurrent legs, each capped: read the block off the source
  // disk, stream it through the fabric (receiver NIC + rack uplink), and
  // write it to the destination disk. The copy lands when the slowest leg
  // drains — whichever resource is the bottleneck, including contention
  // from shuffle traffic sharing it.
  const double cap = options_.stream_bandwidth;
  const auto leg = [this, id] { on_leg_done(id); };
  c.src_disk = nodes_[static_cast<std::size_t>(src.value())]->disk().submit(
      c.bytes, cap, leg);
  c.dst_disk = nodes_[static_cast<std::size_t>(dst.value())]->disk().submit(
      c.bytes, cap, leg);
  c.net = fabric_.transfer_capped(src, dst, b.size, cap, leg);
}

void Rereplicator::on_leg_done(std::int64_t copy_id) {
  const auto it = copies_.find(copy_id);
  if (it == copies_.end()) return;  // raced a cancellation
  if (--it->second.remaining_legs > 0) return;
  finish_copy(copy_id);
}

void Rereplicator::finish_copy(std::int64_t copy_id) {
  const auto it = copies_.find(copy_id);
  MRON_CHECK(it != copies_.end());
  const Copy c = it->second;
  copies_.erase(it);
  copy_by_block_.erase(c.block);
  --node_streams_[static_cast<std::size_t>(c.src.value())];
  --node_streams_[static_cast<std::size_t>(c.dst.value())];
  stats_.bytes_copied += c.bytes;
  ++stats_.copies_completed;
  if (auto* ctr = counter("dfs.rerepl.completed")) ctr->add(1.0);
  if (auto* ctr = counter("dfs.rerepl.bytes")) ctr->add(c.bytes);
  dfs_.add_replica(DatasetId(c.block.first),
                   static_cast<std::size_t>(c.block.second), c.dst);
  note_queue_state();
  schedule_pump();  // the block may still be short, or others are waiting
}

void Rereplicator::cancel_copy(std::int64_t copy_id) {
  const auto it = copies_.find(copy_id);
  if (it == copies_.end()) return;  // already finished or cancelled
  const Copy c = it->second;
  copies_.erase(it);
  copy_by_block_.erase(c.block);
  --node_streams_[static_cast<std::size_t>(c.src.value())];
  --node_streams_[static_cast<std::size_t>(c.dst.value())];
  // Stream cancellation is a no-op for legs that already drained, so a
  // copy caught between "two legs done" and "third completing" tears down
  // cleanly too.
  nodes_[static_cast<std::size_t>(c.src.value())]->disk().cancel(c.src_disk);
  nodes_[static_cast<std::size_t>(c.dst.value())]->disk().cancel(c.dst_disk);
  fabric_.cancel_transfer(c.net);
  ++stats_.copies_cancelled;
  if (auto* ctr = counter("dfs.rerepl.cancelled")) ctr->add(1.0);
}

void Rereplicator::note_queue_state() {
  const auto under = dfs_.under_replicated_blocks();
  stats_.peak_under_replicated = std::max(
      stats_.peak_under_replicated, static_cast<std::int64_t>(under));
  if (under > 0) {
    queue_was_under_ = true;
  } else if (queue_was_under_) {
    // The queue just drained — via a completed copy or a recovered node
    // restoring its replicas. This stamp is the report's
    // under-replication recovery time.
    queue_was_under_ = false;
    stats_.last_fully_replicated = engine_.now();
  }
}

}  // namespace mron::dfs
