#include "dfs/placement_policy.h"

#include <algorithm>

#include "common/check.h"

namespace mron::dfs {

namespace {

/// The k-th node id not present in the sorted exclusion list `excl`:
/// increment past each exclusion at or below the running id. `k` indexes
/// the candidate space [lo, lo+span) minus the exclusions.
cluster::NodeId skip_excluded(std::int64_t lo, std::int64_t k,
                              const std::vector<std::int64_t>& excl) {
  std::int64_t id = lo + k;
  for (std::int64_t e : excl) {
    if (id >= e) ++id;
  }
  return cluster::NodeId(id);
}

bool contains(const std::vector<cluster::NodeId>& v, cluster::NodeId n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

/// Uniform pick among all nodes not already in `out` (one draw). Used by
/// every policy once its preferred shape is exhausted.
void place_uniform_spare(const cluster::Topology& topo, Rng& rng,
                         std::vector<cluster::NodeId>& out) {
  const std::int64_t n = topo.num_nodes();
  const auto placed = static_cast<std::int64_t>(out.size());
  if (placed >= n) return;
  std::vector<std::int64_t> excl;
  excl.reserve(out.size());
  for (auto r : out) excl.push_back(r.value());
  std::sort(excl.begin(), excl.end());
  const std::int64_t k = rng.uniform_int(0, n - placed - 1);
  out.push_back(skip_excluded(0, k, excl));
}

}  // namespace

void RackAwarePolicy::place(const cluster::Topology& topo, Rng& rng, int want,
                           std::vector<cluster::NodeId>& out) const {
  const std::int64_t n = topo.num_nodes();

  // First replica: uniform random node (stand-in for "writer's node").
  const cluster::NodeId first(rng.uniform_int(0, n - 1));
  out.push_back(first);
  if (want == 1) return;

  // Second replica: a node on a different rack when one exists (k-th
  // off-rack node by index shift — same draw bounds as the legacy
  // materialized list, so the same winner).
  const auto first_rack = topo.rack_of(first);
  const std::int64_t first_lo = topo.rack_first_node(first_rack);
  const std::int64_t first_sz = topo.rack_size(first_rack);
  const std::int64_t off_rack_count = n - first_sz;
  cluster::NodeId second = first;
  if (off_rack_count > 0) {
    std::int64_t k = rng.uniform_int(0, off_rack_count - 1);
    if (k >= first_lo) k += first_sz;
    second = cluster::NodeId(k);
  } else {
    while (second == first && n > 1) {
      second = cluster::NodeId(rng.uniform_int(0, n - 1));
    }
  }
  out.push_back(second);
  if (want == 2) return;

  // Third replica: the second's rack, distinct node, skipping sorted
  // exclusions — identical to indexing the old filtered vector.
  const auto rack = topo.rack_of(second);
  const std::int64_t lo = topo.rack_first_node(rack);
  const std::int64_t sz = topo.rack_size(rack);
  const std::int64_t f = first.value();
  const std::int64_t s = second.value();
  std::int64_t excl[2] = {s, s};
  std::int64_t num_excl = 1;
  if (f >= lo && f < lo + sz && f != s) {
    excl[0] = std::min(f, s);
    excl[1] = std::max(f, s);
    num_excl = 2;
  }
  cluster::NodeId third = first;
  if (sz > num_excl) {
    std::int64_t id = lo + rng.uniform_int(0, sz - num_excl - 1);
    for (std::int64_t i = 0; i < num_excl; ++i) {
      if (id >= excl[i]) ++id;
    }
    third = cluster::NodeId(id);
  }
  if (third != first && third != second) out.push_back(third);

  // Replicas beyond three (per-dataset replication overrides): uniform
  // among the remaining nodes. Never reached at the default replication of
  // three, so the pinned three-replica draw stream is untouched.
  while (static_cast<std::int64_t>(out.size()) <
             std::min<std::int64_t>(want, n) &&
         static_cast<std::int64_t>(out.size()) < n) {
    place_uniform_spare(topo, rng, out);
  }
}

void SameRackPolicy::place(const cluster::Topology& topo, Rng& rng, int want,
                          std::vector<cluster::NodeId>& out) const {
  const std::int64_t n = topo.num_nodes();
  const cluster::NodeId first(rng.uniform_int(0, n - 1));
  out.push_back(first);
  const auto rack = topo.rack_of(first);
  const std::int64_t lo = topo.rack_first_node(rack);
  const std::int64_t sz = topo.rack_size(rack);
  // Clamp to the rack: this policy never leaves it (that is its point), so
  // a rack smaller than `want` caps the block's replication target.
  const std::int64_t target = std::min<std::int64_t>(want, sz);
  std::vector<std::int64_t> excl{first.value()};
  while (static_cast<std::int64_t>(out.size()) < target) {
    const auto placed = static_cast<std::int64_t>(out.size());
    const std::int64_t k = rng.uniform_int(0, sz - placed - 1);
    const cluster::NodeId next = skip_excluded(lo, k, excl);
    out.push_back(next);
    excl.insert(std::upper_bound(excl.begin(), excl.end(), next.value()),
                next.value());
  }
}

void SpreadPolicy::place(const cluster::Topology& topo, Rng& rng, int want,
                        std::vector<cluster::NodeId>& out) const {
  const std::int64_t n = topo.num_nodes();
  const cluster::NodeId first(rng.uniform_int(0, n - 1));
  out.push_back(first);
  std::vector<bool> rack_used(static_cast<std::size_t>(topo.num_racks()),
                              false);
  rack_used[static_cast<std::size_t>(topo.rack_of(first).value())] = true;
  while (static_cast<std::int64_t>(out.size()) <
         std::min<std::int64_t>(want, n)) {
    // Candidate pool: every node in a rack with no replica yet. One draw
    // indexes the pool; racks are contiguous id ranges, so the walk maps
    // the index without materializing the pool.
    std::int64_t pool = 0;
    for (int r = 0; r < topo.num_racks(); ++r) {
      if (!rack_used[static_cast<std::size_t>(r)]) {
        pool += topo.rack_size(cluster::RackId(r));
      }
    }
    if (pool == 0) {
      // Fewer racks than replicas: fall back to uniform spares.
      place_uniform_spare(topo, rng, out);
      continue;
    }
    std::int64_t k = rng.uniform_int(0, pool - 1);
    cluster::NodeId next;
    for (int r = 0; r < topo.num_racks(); ++r) {
      const cluster::RackId rack(r);
      if (rack_used[static_cast<std::size_t>(r)]) continue;
      const std::int64_t sz = topo.rack_size(rack);
      if (k < sz) {
        next = cluster::NodeId(topo.rack_first_node(rack) + k);
        break;
      }
      k -= sz;
    }
    MRON_CHECK(next.valid() && !contains(out, next));
    out.push_back(next);
    rack_used[static_cast<std::size_t>(topo.rack_of(next).value())] = true;
  }
}

std::unique_ptr<PlacementPolicy> make_placement_policy(
    const std::string& name) {
  if (name.empty() || name == "rack-aware") {
    return std::make_unique<RackAwarePolicy>();
  }
  if (name == "same-rack") return std::make_unique<SameRackPolicy>();
  if (name == "spread") return std::make_unique<SpreadPolicy>();
  MRON_CHECK_MSG(false, "unknown placement policy '"
                            << name
                            << "' (want rack-aware, same-rack, or spread)");
  return nullptr;
}

}  // namespace mron::dfs
