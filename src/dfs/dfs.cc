#include "dfs/dfs.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace mron::dfs {

Dfs::Dfs(const cluster::Topology& topo, Rng rng, Bytes block_size,
         int replication, std::unique_ptr<PlacementPolicy> policy)
    : topo_(topo),
      rng_(rng),
      block_size_(block_size),
      replication_(replication),
      policy_(policy != nullptr ? std::move(policy)
                                : std::make_unique<RackAwarePolicy>()),
      alive_(static_cast<std::size_t>(topo.num_nodes()), true),
      node_blocks_(static_cast<std::size_t>(topo.num_nodes())) {
  MRON_CHECK(block_size_ > Bytes(0));
  MRON_CHECK(replication_ >= 1);
}

DatasetId Dfs::create_dataset(const std::string& name, Bytes total_size,
                              int replication) {
  MRON_CHECK(total_size >= Bytes(0));
  if (replication < 0) replication = replication_;
  MRON_CHECK(replication >= 1);
  Dataset ds;
  ds.id = DatasetId(static_cast<std::int64_t>(datasets_.size()));
  ds.name = name;
  ds.total_size = total_size;
  // Sizes first (one reservation, no reallocation as blocks accumulate),
  // then every block's replicas in a single bulk pass. A 1 TiB dataset on
  // 128 MiB blocks is 8,192 blocks at setup time; the split matters once
  // datasets are created per-benchmark on 10,000-node sweeps.
  ds.blocks.reserve(static_cast<std::size_t>(total_size / block_size_) + 1);
  Bytes remaining = total_size;
  while (remaining > Bytes(0)) {
    Block b;
    b.size = std::min(remaining, block_size_);
    ds.blocks.push_back(std::move(b));
    remaining -= ds.blocks.back().size;
  }
  place_replicas_bulk(ds.blocks, std::min(replication, topo_.num_nodes()));
  // Index the placements and seed the liveness accounting. Target is what
  // placement produced (a degenerate topology may admit fewer than asked),
  // so a block is under-replicated exactly when a replica host is dead.
  const std::int64_t dsi = ds.id.value();
  for (std::size_t i = 0; i < ds.blocks.size(); ++i) {
    Block& b = ds.blocks[i];
    b.target = static_cast<int>(b.replicas.size());
    b.live = 0;
    for (auto rep : b.replicas) {
      node_blocks_[static_cast<std::size_t>(rep.value())].push_back(
          {dsi, static_cast<std::int64_t>(i)});
      if (alive_[static_cast<std::size_t>(rep.value())]) ++b.live;
    }
    if (b.live < b.target) {
      under_.insert({b.live, dsi, static_cast<std::int64_t>(i)});
    }
  }
  total_blocks_ += ds.blocks.size();
  datasets_.push_back(std::move(ds));
  return datasets_.back().id;
}

void Dfs::place_replicas_bulk(std::vector<Block>& blocks, int want) {
  for (Block& b : blocks) {
    b.replicas.reserve(static_cast<std::size_t>(want));
    policy_->place(topo_, rng_, want, b.replicas);
  }
}

const Dataset& Dfs::dataset(DatasetId id) const {
  MRON_CHECK(id.valid() &&
             id.value() < static_cast<std::int64_t>(datasets_.size()));
  return datasets_[static_cast<std::size_t>(id.value())];
}

Block& Dfs::block_at(DatasetId ds, std::size_t block) {
  MRON_CHECK(ds.valid() &&
             ds.value() < static_cast<std::int64_t>(datasets_.size()));
  auto& blocks = datasets_[static_cast<std::size_t>(ds.value())].blocks;
  MRON_CHECK(block < blocks.size());
  return blocks[block];
}

Locality Dfs::locality(DatasetId ds, std::size_t block,
                       cluster::NodeId reader) const {
  const auto& blocks = dataset(ds).blocks;
  MRON_CHECK(block < blocks.size());
  for (auto rep : blocks[block].replicas) {
    if (rep == reader && node_alive(rep)) return Locality::NodeLocal;
  }
  for (auto rep : blocks[block].replicas) {
    if (node_alive(rep) && topo_.same_rack(rep, reader)) {
      return Locality::RackLocal;
    }
  }
  return Locality::OffRack;
}

cluster::NodeId Dfs::pick_replica(DatasetId ds, std::size_t block,
                                  cluster::NodeId reader) const {
  const auto& blocks = dataset(ds).blocks;
  MRON_CHECK(block < blocks.size());
  for (auto rep : blocks[block].replicas) {
    if (rep == reader && node_alive(rep)) return rep;
  }
  for (auto rep : blocks[block].replicas) {
    if (node_alive(rep) && topo_.same_rack(rep, reader)) return rep;
  }
  for (auto rep : blocks[block].replicas) {
    if (node_alive(rep)) return rep;
  }
  return cluster::NodeId();  // block currently has no live replica
}

void Dfs::on_node_lost(cluster::NodeId node) {
  const auto i = static_cast<std::size_t>(node.value());
  MRON_CHECK(node.valid() && i < alive_.size());
  if (!alive_[i]) return;
  alive_[i] = false;
  for (const BlockRef& ref : node_blocks_[i]) {
    Block& b = block_at(DatasetId(ref.ds),
                        static_cast<std::size_t>(ref.block));
    const int old_live = b.live;
    --b.live;
    MRON_CHECK(b.live >= 0);
    refile_under(ref.ds, ref.block, old_live);
  }
}

void Dfs::on_node_recovered(cluster::NodeId node) {
  const auto i = static_cast<std::size_t>(node.value());
  MRON_CHECK(node.valid() && i < alive_.size());
  if (alive_[i]) return;
  alive_[i] = true;
  for (const BlockRef& ref : node_blocks_[i]) {
    Block& b = block_at(DatasetId(ref.ds),
                        static_cast<std::size_t>(ref.block));
    const int old_live = b.live;
    ++b.live;
    refile_under(ref.ds, ref.block, old_live);
    if (old_live == 0) fire_waiters(ref.ds, ref.block);
  }
}

int Dfs::live_replicas(DatasetId ds, std::size_t block) const {
  const auto& blocks = dataset(ds).blocks;
  MRON_CHECK(block < blocks.size());
  return blocks[block].live;
}

void Dfs::wait_for_block(DatasetId ds, std::size_t block, BlockWaiter cb) {
  MRON_CHECK(cb != nullptr);
  if (has_live_replica(ds, block)) {
    cb();
    return;
  }
  waiters_[{ds.value(), static_cast<std::int64_t>(block)}].push_back(
      std::move(cb));
}

void Dfs::add_replica(DatasetId ds, std::size_t block, cluster::NodeId node) {
  const auto i = static_cast<std::size_t>(node.value());
  MRON_CHECK(node.valid() && i < alive_.size());
  MRON_CHECK_MSG(alive_[i], "re-replication target died before the copy "
                            "landed — the pipeline must cancel first");
  Block& b = block_at(ds, block);
  MRON_CHECK(std::find(b.replicas.begin(), b.replicas.end(), node) ==
             b.replicas.end());
  b.replicas.push_back(node);
  node_blocks_[i].push_back({ds.value(), static_cast<std::int64_t>(block)});
  const int old_live = b.live;
  ++b.live;
  refile_under(ds.value(), static_cast<std::int64_t>(block), old_live);
  if (old_live == 0) {
    fire_waiters(ds.value(), static_cast<std::int64_t>(block));
  }
}

void Dfs::refile_under(std::int64_t ds, std::int64_t block, int old_live) {
  const Block& b = datasets_[static_cast<std::size_t>(ds)]
                       .blocks[static_cast<std::size_t>(block)];
  if (old_live < b.target) under_.erase({old_live, ds, block});
  if (b.live < b.target) under_.insert({b.live, ds, block});
}

void Dfs::fire_waiters(std::int64_t ds, std::int64_t block) {
  const auto it = waiters_.find({ds, block});
  if (it == waiters_.end()) return;
  // Move out first: a resumed reader may park again re-entrantly (its node
  // may be the one that just recovered but its replica is still gone).
  std::vector<BlockWaiter> pending = std::move(it->second);
  waiters_.erase(it);
  for (BlockWaiter& cb : pending) cb();
}

const char* locality_name(Locality loc) {
  switch (loc) {
    case Locality::NodeLocal:
      return "NODE_LOCAL";
    case Locality::RackLocal:
      return "RACK_LOCAL";
    case Locality::OffRack:
      return "OFF_RACK";
  }
  return "?";
}

}  // namespace mron::dfs
