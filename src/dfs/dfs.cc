#include "dfs/dfs.h"

#include <algorithm>

#include "common/check.h"

namespace mron::dfs {

Dfs::Dfs(const cluster::Topology& topo, Rng rng, Bytes block_size,
         int replication)
    : topo_(topo),
      rng_(rng),
      block_size_(block_size),
      replication_(replication) {
  MRON_CHECK(block_size_ > Bytes(0));
  MRON_CHECK(replication_ >= 1);
}

DatasetId Dfs::create_dataset(const std::string& name, Bytes total_size) {
  MRON_CHECK(total_size >= Bytes(0));
  Dataset ds;
  ds.id = DatasetId(static_cast<std::int64_t>(datasets_.size()));
  ds.name = name;
  ds.total_size = total_size;
  // Sizes first (one reservation, no reallocation as blocks accumulate),
  // then every block's replicas in a single bulk pass. A 1 TiB dataset on
  // 128 MiB blocks is 8,192 blocks at setup time; the split matters once
  // datasets are created per-benchmark on 10,000-node sweeps.
  ds.blocks.reserve(static_cast<std::size_t>(total_size / block_size_) + 1);
  Bytes remaining = total_size;
  while (remaining > Bytes(0)) {
    Block b;
    b.size = std::min(remaining, block_size_);
    ds.blocks.push_back(std::move(b));
    remaining -= ds.blocks.back().size;
  }
  place_replicas_bulk(ds.blocks);
  datasets_.push_back(std::move(ds));
  return datasets_.back().id;
}

void Dfs::place_replicas_bulk(std::vector<Block>& blocks) {
  const int n = topo_.num_nodes();
  const int want = std::min(replication_, n);
  for (Block& b : blocks) {
    b.replicas.reserve(static_cast<std::size_t>(want));

    // First replica: uniform random node (stand-in for "writer's node").
    const cluster::NodeId first(rng_.uniform_int(0, n - 1));
    b.replicas.push_back(first);
    if (want == 1) continue;

    // Second replica: a node on a different rack when one exists (k-th
    // off-rack node by index shift — same draw bounds as the legacy
    // materialized list, so the same winner).
    const auto first_rack = topo_.rack_of(first);
    const std::int64_t first_lo = topo_.rack_first_node(first_rack);
    const std::int64_t first_sz = topo_.rack_size(first_rack);
    const std::int64_t off_rack_count = n - first_sz;
    cluster::NodeId second = first;
    if (off_rack_count > 0) {
      std::int64_t k = rng_.uniform_int(0, off_rack_count - 1);
      if (k >= first_lo) k += first_sz;
      second = cluster::NodeId(k);
    } else {
      while (second == first && n > 1) {
        second = cluster::NodeId(rng_.uniform_int(0, n - 1));
      }
    }
    b.replicas.push_back(second);
    if (want == 2) continue;

    // Third replica: the second's rack, distinct node, skipping sorted
    // exclusions — identical to indexing the old filtered vector.
    const auto rack = topo_.rack_of(second);
    const std::int64_t lo = topo_.rack_first_node(rack);
    const std::int64_t sz = topo_.rack_size(rack);
    const std::int64_t f = first.value();
    const std::int64_t s = second.value();
    std::int64_t excl[2] = {s, s};
    std::int64_t num_excl = 1;
    if (f >= lo && f < lo + sz && f != s) {
      excl[0] = std::min(f, s);
      excl[1] = std::max(f, s);
      num_excl = 2;
    }
    cluster::NodeId third = first;
    if (sz > num_excl) {
      std::int64_t id = lo + rng_.uniform_int(0, sz - num_excl - 1);
      for (std::int64_t i = 0; i < num_excl; ++i) {
        if (id >= excl[i]) ++id;
      }
      third = cluster::NodeId(id);
    }
    if (third != first && third != second) b.replicas.push_back(third);
  }
}

const Dataset& Dfs::dataset(DatasetId id) const {
  MRON_CHECK(id.valid() &&
             id.value() < static_cast<std::int64_t>(datasets_.size()));
  return datasets_[static_cast<std::size_t>(id.value())];
}

Locality Dfs::locality(DatasetId ds, std::size_t block,
                       cluster::NodeId reader) const {
  const auto& blocks = dataset(ds).blocks;
  MRON_CHECK(block < blocks.size());
  for (auto rep : blocks[block].replicas) {
    if (rep == reader) return Locality::NodeLocal;
  }
  for (auto rep : blocks[block].replicas) {
    if (topo_.same_rack(rep, reader)) return Locality::RackLocal;
  }
  return Locality::OffRack;
}

cluster::NodeId Dfs::pick_replica(DatasetId ds, std::size_t block,
                                  cluster::NodeId reader) const {
  const auto& blocks = dataset(ds).blocks;
  MRON_CHECK(block < blocks.size());
  for (auto rep : blocks[block].replicas) {
    if (rep == reader) return rep;
  }
  for (auto rep : blocks[block].replicas) {
    if (topo_.same_rack(rep, reader)) return rep;
  }
  return blocks[block].replicas.front();
}

const char* locality_name(Locality loc) {
  switch (loc) {
    case Locality::NodeLocal:
      return "NODE_LOCAL";
    case Locality::RackLocal:
      return "RACK_LOCAL";
    case Locality::OffRack:
      return "OFF_RACK";
  }
  return "?";
}

}  // namespace mron::dfs
