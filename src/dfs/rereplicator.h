// NameNode-style re-replication pipeline.
//
// Drains the DFS's under-replication queue (fewest-live-replicas first) by
// scheduling real copy transfers on the simulated hardware: each copy is a
// disk read stream on the source, a rate-capped Fabric transfer into the
// destination (receiver NIC + rack uplink when cross-rack), and a disk
// write stream on the destination, all concurrent — so recovery traffic
// contends with shuffle and spills for exactly the capacity they use, and
// its cost surfaces in utilization gauges and job critical paths. A work
// limiter bounds the recovery burst: at most `max_streams_per_node` copies
// touch any one node (as source or destination) and each copy's streams are
// capped at `stream_bandwidth` work-units/sec, mirroring HDFS's
// replication-work limits.
//
// Determinism: every decision here is a pure function of simulation state —
// source selection prefers the least-busy live replica, target selection
// prefers racks without a live replica and then the least-busy /
// least-loaded node, all ties broken by node id, and no RNG is drawn. On a
// reliable cluster the queue stays empty and the pipeline schedules
// nothing, so fault-free runs are event-for-event identical with or
// without it. When the source or target of an in-flight copy dies the copy
// is cancelled idempotently and the block simply re-enters the scan.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "cluster/fabric.h"
#include "cluster/node.h"
#include "dfs/dfs.h"
#include "sim/engine.h"

namespace mron::obs {
class Counter;
}  // namespace mron::obs

namespace mron::dfs {

struct RereplicatorOptions {
  /// Max concurrent copies touching one node as source or destination
  /// (HDFS dfs.namenode.replication.max-streams).
  int max_streams_per_node = 2;
  /// Per-copy rate cap on every leg, bytes/sec (HDFS balancer-style
  /// bandwidth throttle; keeps recovery from starving shuffle outright).
  double stream_bandwidth = 64.0 * 1024 * 1024;
};

class Rereplicator {
 public:
  /// Recovery-side tallies; the `dfs` block of the run report reads these.
  struct Stats {
    double bytes_copied = 0.0;
    std::int64_t copies_started = 0;
    std::int64_t copies_completed = 0;
    std::int64_t copies_cancelled = 0;
    /// Most blocks simultaneously under target over the run.
    std::int64_t peak_under_replicated = 0;
    /// When the under-replication queue last drained to empty (0 when it
    /// never had members — or never recovered).
    SimTime last_fully_replicated = 0.0;
  };

  Rereplicator(sim::Engine& engine, Dfs& dfs, cluster::Fabric& fabric,
               std::vector<cluster::Node*> nodes, RereplicatorOptions options);

  Rereplicator(const Rereplicator&) = delete;
  Rereplicator& operator=(const Rereplicator&) = delete;

  /// Wired by the Simulation to the RM watchdog, after the Dfs's own
  /// handlers: cancel copies the dead node was serving (source or target)
  /// and scan for new work. Idempotent.
  void on_node_lost(cluster::NodeId node);
  /// Cancel copies made redundant by the recovered replicas, then rescan
  /// (the recovered node is also a fresh copy target). Idempotent.
  void on_node_recovered(cluster::NodeId node);
  /// Kick the scan outside a liveness event (e.g. a dataset created with a
  /// dead replica host, or created under-replicated on a degenerate
  /// topology).
  void notify_under_replication() { schedule_pump(); }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t active_copies() const { return copies_.size(); }
  [[nodiscard]] const RereplicatorOptions& options() const {
    return options_;
  }

 private:
  using BlockKey = std::pair<std::int64_t, std::int64_t>;  // (dataset, block)

  /// One in-flight copy: three server streams joined at completion.
  struct Copy {
    BlockKey block;
    cluster::NodeId src;
    cluster::NodeId dst;
    sim::StreamId src_disk;
    sim::StreamId dst_disk;
    cluster::CopyId net;
    double bytes = 0.0;
    int remaining_legs = 3;
  };

  void schedule_pump();
  /// Walk the under-replication queue, most endangered first, starting one
  /// copy per block that has a live source and an eligible target under
  /// the work limits.
  void pump();
  /// Least-busy live replica (ties toward the lowest id), or invalid.
  [[nodiscard]] cluster::NodeId pick_source(const Block& b) const;
  /// Best destination: alive, not already a replica, under the stream
  /// limit; prefer racks holding no live replica, then fewest active copy
  /// streams, then fewest hosted blocks, then lowest id. Invalid when no
  /// node qualifies.
  [[nodiscard]] cluster::NodeId pick_target(const Block& b) const;
  void start_copy(DatasetId ds, std::int64_t block, const Block& b);
  void on_leg_done(std::int64_t copy_id);
  void finish_copy(std::int64_t copy_id);
  /// Tear down a copy's streams and bookkeeping; `done` legs that already
  /// fired make this a no-op (idempotent).
  void cancel_copy(std::int64_t copy_id);
  void note_queue_state();
  [[nodiscard]] obs::Counter* counter(const char* name);

  sim::Engine& engine_;
  Dfs& dfs_;
  cluster::Fabric& fabric_;
  std::vector<cluster::Node*> nodes_;
  RereplicatorOptions options_;
  Stats stats_;
  bool pump_scheduled_ = false;
  /// True while the under-replication queue has members; the transition
  /// back to empty stamps Stats::last_fully_replicated.
  bool queue_was_under_ = false;
  std::map<std::int64_t, Copy> copies_;
  std::map<BlockKey, std::int64_t> copy_by_block_;
  /// Active copies touching each node (source or destination) — the
  /// streams-per-node work limiter.
  std::vector<int> node_streams_;
  std::int64_t next_copy_id_ = 0;
};

}  // namespace mron::dfs
