#include "trace/timeline.h"

#include <gtest/gtest.h>

#include <sstream>

#include "mapreduce/simulation.h"

namespace mron::trace {
namespace {

using mapreduce::JobResult;
using mapreduce::JobSpec;
using mapreduce::Simulation;
using mapreduce::SimulationOptions;

JobResult run_small_job(std::uint64_t seed, bool inject_failure = false) {
  SimulationOptions opt;
  opt.cluster.num_slaves = 4;
  opt.cluster.rack_sizes = {2, 2};
  opt.seed = seed;
  Simulation sim(opt);
  JobSpec spec;
  spec.name = "traced";
  spec.input = sim.load_dataset("in", mebibytes(128.0 * 10));
  spec.num_reduces = 3;
  JobResult result;
  sim.submit_job(std::move(spec),
                 [&](const JobResult& r) { result = r; });
  if (inject_failure) {
    sim.engine().schedule_at(20.0,
                             [&] { sim.rm().fail_node(cluster::NodeId(1)); });
  }
  sim.run();
  return result;
}

TEST(TaskCsv, OneRowPerAttemptPlusHeader) {
  const JobResult r = run_small_job(1);
  std::ostringstream os;
  write_task_csv(r, os);
  const std::string out = os.str();
  const auto lines = std::count(out.begin(), out.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines),
            1 + r.map_reports.size() + r.reduce_reports.size());
  EXPECT_NE(out.find("kind,index,attempt"), std::string::npos);
  EXPECT_NE(out.find("map,0,1,"), std::string::npos);
  EXPECT_NE(out.find("reduce,"), std::string::npos);
  EXPECT_NE(out.find("NODE_LOCAL"), std::string::npos);
}

TEST(Summary, PhasesAndCountsAreConsistent) {
  const JobResult r = run_small_job(2);
  const TimelineSummary s = summarize(r);
  EXPECT_EQ(s.successful_maps, 10);
  EXPECT_EQ(s.successful_reduces, 3);
  EXPECT_EQ(s.node_local + s.rack_local + s.off_rack, 10);
  EXPECT_GT(s.map_phase.seconds(), 0.0);
  EXPECT_GE(s.reduce_phase.end, s.map_phase.end);  // reducers finish last
  EXPECT_GE(s.p95_map_secs, s.avg_map_secs);
  EXPECT_GT(s.locality_fraction(), 0.0);
  EXPECT_LE(s.locality_fraction(), 1.0);
}

TEST(Summary, CountsFailedAttempts) {
  const JobResult r = run_small_job(3, /*inject_failure=*/true);
  const TimelineSummary s = summarize(r);
  // The fail-stop node's tasks re-executed; successes stay exact.
  EXPECT_EQ(s.successful_maps, 10);
  EXPECT_EQ(s.successful_reduces, 3);
}

TEST(Swimlanes, RendersOneLanePerNode) {
  const JobResult r = run_small_job(4);
  const std::string lanes = render_swimlanes(r, 4, 40);
  EXPECT_NE(lanes.find("node 0 |"), std::string::npos);
  EXPECT_NE(lanes.find("node 3 |"), std::string::npos);
  // Maps and reduces both appear somewhere.
  EXPECT_TRUE(lanes.find('M') != std::string::npos ||
              lanes.find('B') != std::string::npos);
  EXPECT_TRUE(lanes.find('R') != std::string::npos ||
              lanes.find('B') != std::string::npos);
  // Exactly 4 lanes of the requested width.
  int lane_rows = 0;
  std::istringstream is(lanes);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("node", 0) == 0) {
      ++lane_rows;
      const auto bar = line.find('|');
      EXPECT_EQ(line.size() - bar - 2, 40u);  // cells between the bars
    }
  }
  EXPECT_EQ(lane_rows, 4);
}

TEST(Swimlanes, CapsLanesByGroupingContiguousNodes) {
  const JobResult r = run_small_job(4);
  // 4 nodes into at most 2 lanes: groups of 2 contiguous nodes share one.
  const std::string grouped = render_swimlanes(r, 4, 40, /*max_lanes=*/2);
  EXPECT_NE(grouped.find("node 0-1 |"), std::string::npos);
  EXPECT_NE(grouped.find("node 2-3 |"), std::string::npos);
  EXPECT_EQ(grouped.find("node 0 |"), std::string::npos);
  int lane_rows = 0;
  std::istringstream is(grouped);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("node", 0) == 0) ++lane_rows;
  }
  EXPECT_EQ(lane_rows, 2);
  // A cap at or above the node count changes nothing, byte for byte.
  EXPECT_EQ(render_swimlanes(r, 4, 40, /*max_lanes=*/4),
            render_swimlanes(r, 4, 40));
  // An uneven division: 4 nodes into 3 lanes -> groups of 2, 2 lanes used.
  const std::string uneven = render_swimlanes(r, 4, 40, /*max_lanes=*/3);
  EXPECT_NE(uneven.find("node 0-1 |"), std::string::npos);
}

TEST(Swimlanes, RejectsDegenerateArgs) {
  const JobResult r = run_small_job(5);
  EXPECT_THROW((void)render_swimlanes(r, 0, 40), CheckError);
  EXPECT_THROW((void)render_swimlanes(r, 4, 0), CheckError);
}

}  // namespace
}  // namespace mron::trace
