// FaultInjector behavior against a live cluster: order-independent failure
// draws, fault-window queries, crash -> heartbeat-timeout declaration ->
// restart re-registration, degradation slowing real work, and the
// FaultStats tally the run report's `faults` block is built from.
#include "faults/injector.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "faults/fault_plan.h"
#include "mapreduce/simulation.h"

namespace mron::faults {
namespace {

using mapreduce::JobResult;
using mapreduce::JobSpec;
using mapreduce::Simulation;
using mapreduce::SimulationOptions;

SimulationOptions small_cluster(std::uint64_t seed, const char* plan) {
  SimulationOptions opt;
  opt.cluster.num_slaves = 6;
  opt.cluster.rack_sizes = {3, 3};
  opt.seed = seed;
  opt.fault_plan = FaultPlan::parse(plan);
  return opt;
}

JobSpec job(Simulation& sim, int blocks, int reduces) {
  JobSpec spec;
  spec.name = "victim";
  spec.input = sim.load_dataset("in", mebibytes(128.0 * blocks));
  spec.num_reduces = reduces;
  spec.profile.map_cpu_secs_per_mib = 0.3;
  spec.profile.map_output_ratio = 1.0;
  return spec;
}

TEST(FaultInjector, AbsentWhenPlanIsEmpty) {
  SimulationOptions opt;
  opt.cluster.num_slaves = 6;
  opt.cluster.rack_sizes = {3, 3};
  Simulation sim(opt);
  EXPECT_EQ(sim.fault_injector(), nullptr);
}

TEST(FaultInjector, FailureDrawsAreOrderIndependent) {
  Simulation sim(small_cluster(1, "seed 9\ntaskfail prob=0.5"));
  const FaultInjector* inj = sim.fault_injector();
  ASSERT_NE(inj, nullptr);
  // Record every verdict over a grid of (job, kind, task, attempt), then
  // query the same grid backwards: identical verdicts and strike points.
  // This is the property that keeps fault runs byte-identical at any
  // --jobs level — verdicts depend on identity, not on draw order.
  struct Draw {
    bool fail;
    double frac;
  };
  std::vector<Draw> forward;
  for (int job_id = 0; job_id < 3; ++job_id) {
    for (int kind = 0; kind < 2; ++kind) {
      for (int task = 0; task < 16; ++task) {
        for (int attempt = 1; attempt <= 3; ++attempt) {
          double frac = -1.0;
          const bool fail =
              inj->should_fail_attempt(job_id, kind, task, attempt, &frac);
          if (fail) {
            EXPECT_GT(frac, 0.0);
            EXPECT_LT(frac, 1.0);
          }
          forward.push_back({fail, frac});
        }
      }
    }
  }
  std::size_t i = forward.size();
  int fails = 0;
  for (int job_id = 2; job_id >= 0; --job_id) {
    for (int kind = 1; kind >= 0; --kind) {
      for (int task = 15; task >= 0; --task) {
        for (int attempt = 3; attempt >= 1; --attempt) {
          double frac = -1.0;
          const bool fail =
              inj->should_fail_attempt(job_id, kind, task, attempt, &frac);
          // forward was filled in the opposite nesting order; index from
          // the matching forward position.
          const std::size_t fwd =
              static_cast<std::size_t>(job_id) * 2 * 16 * 3 +
              static_cast<std::size_t>(kind) * 16 * 3 +
              static_cast<std::size_t>(task) * 3 +
              static_cast<std::size_t>(attempt - 1);
          EXPECT_EQ(fail, forward[fwd].fail);
          if (fail) {
            EXPECT_DOUBLE_EQ(frac, forward[fwd].frac);
          }
          fails += fail ? 1 : 0;
          --i;
        }
      }
    }
  }
  // prob=0.5 over 288 draws: both outcomes must occur.
  EXPECT_GT(fails, 0);
  EXPECT_LT(fails, 288);
}

TEST(FaultInjector, DifferentPlanSeedsChangeTheDraws) {
  Simulation sim_a(small_cluster(1, "seed 1\ntaskfail prob=0.5"));
  Simulation sim_b(small_cluster(1, "seed 2\ntaskfail prob=0.5"));
  int differ = 0;
  double frac = 0.0;
  for (int task = 0; task < 64; ++task) {
    const bool a =
        sim_a.fault_injector()->should_fail_attempt(0, 0, task, 1, &frac);
    const bool b =
        sim_b.fault_injector()->should_fail_attempt(0, 0, task, 1, &frac);
    differ += a != b ? 1 : 0;
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, NodeFaultedDuringCoversWindowsAndCrashes) {
  Simulation sim(small_cluster(
      2,
      "seed 3\n"
      "degrade node=1 from=10 until=20 disk=0.5\n"
      "crash node=2 at=30 restart=40"));
  const FaultInjector* inj = sim.fault_injector();
  ASSERT_NE(inj, nullptr);
  // Degradation window overlap, including partial overlaps at both edges.
  EXPECT_TRUE(inj->node_faulted_during(1, 12.0, 18.0));
  EXPECT_TRUE(inj->node_faulted_during(1, 5.0, 11.0));
  EXPECT_TRUE(inj->node_faulted_during(1, 19.0, 50.0));
  EXPECT_FALSE(inj->node_faulted_during(1, 0.0, 9.0));
  EXPECT_FALSE(inj->node_faulted_during(1, 21.0, 30.0));
  EXPECT_FALSE(inj->node_faulted_during(0, 12.0, 18.0));  // wrong node
  // Crash interval [at, restart) counts as faulted.
  EXPECT_TRUE(inj->node_faulted_during(2, 25.0, 35.0));
  EXPECT_TRUE(inj->node_faulted_during(2, 35.0, 38.0));
  EXPECT_FALSE(inj->node_faulted_during(2, 0.0, 29.0));
}

TEST(FaultInjector, CrashFlowsThroughHeartbeatTimeoutAndRestarts) {
  Simulation sim(small_cluster(4,
                               "seed 5\n"
                               "heartbeat period=0.5 timeout=3\n"
                               "crash node=2 at=10 restart=25"));
  // Probe the RM's view around the planned crash. The node goes silent at
  // t=10 but is only declared lost once the watchdog sees `timeout`
  // seconds of silence — detection is delayed, like a real RM.
  bool alive_before = false, alive_just_after_crash = false;
  bool alive_after_timeout = true, alive_after_restart = false;
  sim.engine().schedule_at(9.0, [&] {
    alive_before = sim.rm().node_alive(cluster::NodeId(2));
  });
  sim.engine().schedule_at(10.25, [&] {
    alive_just_after_crash = sim.rm().node_alive(cluster::NodeId(2));
  });
  sim.engine().schedule_at(16.0, [&] {
    alive_after_timeout = sim.rm().node_alive(cluster::NodeId(2));
  });
  sim.engine().schedule_at(30.0, [&] {
    alive_after_restart = sim.rm().node_alive(cluster::NodeId(2));
  });
  sim.run();
  EXPECT_TRUE(alive_before);
  EXPECT_TRUE(alive_just_after_crash);  // silent, not yet declared
  EXPECT_FALSE(alive_after_timeout);
  EXPECT_TRUE(alive_after_restart);
  const FaultStats& stats = sim.fault_injector()->stats();
  EXPECT_EQ(stats.crashes, 1);
  EXPECT_EQ(stats.restarts, 1);
}

TEST(FaultInjector, DegradationSlowsRealWork) {
  // Same workload, same seed; the second run degrades every node's disk to
  // a tenth of its bandwidth for the whole run. Stats count one window per
  // directive and the job must take visibly longer.
  auto run = [](const char* plan) {
    Simulation sim(small_cluster(6, plan));
    JobResult result;
    sim.submit_job(job(sim, 12, 4), [&](const JobResult& r) { result = r; });
    sim.run();
    return std::make_pair(result.exec_time(),
                          sim.fault_injector()->stats().degrade_windows);
  };
  // A degenerate window far past the job keeps the injector armed but
  // leaves the run clean.
  const auto [clean_secs, clean_windows] =
      run("seed 1\ndegrade node=0 from=100000 until=100001 disk=0.5");
  const auto [slow_secs, slow_windows] = run(
      "seed 1\n"
      "degrade node=0 from=0 until=100000 disk=0.1\n"
      "degrade node=1 from=0 until=100000 disk=0.1\n"
      "degrade node=2 from=0 until=100000 disk=0.1\n"
      "degrade node=3 from=0 until=100000 disk=0.1\n"
      "degrade node=4 from=0 until=100000 disk=0.1\n"
      "degrade node=5 from=0 until=100000 disk=0.1");
  EXPECT_EQ(clean_windows, 1);
  EXPECT_EQ(slow_windows, 6);
  EXPECT_GT(slow_secs, clean_secs * 1.2);
}

}  // namespace
}  // namespace mron::faults
