// FaultPlan text format: parsing, round-tripping, and validation. Plans are
// the declarative half of fault injection (FAULTS.md); everything here is
// pure description — no engine involved.
#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include <string>

#include "common/check.h"

namespace mron::faults {
namespace {

const char* kFullPlan =
    "# canned plan\n"
    "seed 42\n"
    "heartbeat period=0.5 timeout=3\n"
    "taskfail prob=0.02\n"
    "crash node=4 at=120 restart=300\n"
    "crash node=9 at=200\n"
    "degrade node=7 from=60 until=180 disk=0.25 nic=0.5\n"
    "degrade node=3 from=10 until=40 cpu=0.8\n";

TEST(FaultPlan, ParsesEveryDirective) {
  const FaultPlan p = FaultPlan::parse(kFullPlan);
  EXPECT_EQ(p.seed, 42u);
  EXPECT_DOUBLE_EQ(p.task_fail_prob, 0.02);
  EXPECT_DOUBLE_EQ(p.heartbeat_period, 0.5);
  EXPECT_DOUBLE_EQ(p.heartbeat_timeout, 3.0);
  ASSERT_EQ(p.crashes.size(), 2u);
  EXPECT_EQ(p.crashes[0].node, 4);
  EXPECT_DOUBLE_EQ(p.crashes[0].at, 120.0);
  EXPECT_DOUBLE_EQ(p.crashes[0].restart_at, 300.0);
  // No restart= means the node never comes back.
  EXPECT_EQ(p.crashes[1].node, 9);
  EXPECT_LT(p.crashes[1].restart_at, 0.0);
  ASSERT_EQ(p.degradations.size(), 2u);
  EXPECT_EQ(p.degradations[0].node, 7);
  EXPECT_DOUBLE_EQ(p.degradations[0].disk_factor, 0.25);
  EXPECT_DOUBLE_EQ(p.degradations[0].nic_factor, 0.5);
  EXPECT_DOUBLE_EQ(p.degradations[0].cpu_factor, 1.0);  // untouched resource
  EXPECT_DOUBLE_EQ(p.degradations[1].cpu_factor, 0.8);
  EXPECT_FALSE(p.empty());
}

TEST(FaultPlan, SemicolonsAndCommentsSeparateDirectives) {
  const FaultPlan p = FaultPlan::parse(
      "seed 7; taskfail prob=0.1  # trailing comment\n"
      "crash node=1 at=5; crash node=2 at=6\n");
  EXPECT_EQ(p.seed, 7u);
  EXPECT_DOUBLE_EQ(p.task_fail_prob, 0.1);
  EXPECT_EQ(p.crashes.size(), 2u);
}

TEST(FaultPlan, RoundTripsThroughToString) {
  const FaultPlan p = FaultPlan::parse(kFullPlan);
  const FaultPlan q = FaultPlan::parse(p.to_string());
  EXPECT_EQ(p.to_string(), q.to_string());
  EXPECT_EQ(q.crashes.size(), p.crashes.size());
  EXPECT_EQ(q.degradations.size(), p.degradations.size());
  EXPECT_DOUBLE_EQ(q.task_fail_prob, p.task_fail_prob);
}

TEST(FaultPlan, PermanentCrashRoundTripsWithoutRestart) {
  // `crash node=N at=T` with no restart= is a permanent fail-stop: the
  // storage layer must re-replicate the node's blocks, since it is never
  // coming back. The serialized form must not invent a restart= key and
  // the negative sentinel must survive a full round trip.
  const FaultPlan p = FaultPlan::parse("seed 1\ncrash node=3 at=45\n");
  ASSERT_EQ(p.crashes.size(), 1u);
  EXPECT_LT(p.crashes[0].restart_at, 0.0);
  const std::string text = p.to_string();
  EXPECT_EQ(text.find("restart="), std::string::npos) << text;
  const FaultPlan q = FaultPlan::parse(text);
  ASSERT_EQ(q.crashes.size(), 1u);
  EXPECT_EQ(q.crashes[0].node, 3);
  EXPECT_DOUBLE_EQ(q.crashes[0].at, 45.0);
  EXPECT_LT(q.crashes[0].restart_at, 0.0);
  p.validate(6);  // a permanent crash is a well-formed plan
  // Mixed plans keep each crash's restart semantics separate.
  const FaultPlan m =
      FaultPlan::parse("crash node=0 at=10 restart=20; crash node=1 at=10");
  const FaultPlan m2 = FaultPlan::parse(m.to_string());
  ASSERT_EQ(m2.crashes.size(), 2u);
  EXPECT_DOUBLE_EQ(m2.crashes[0].restart_at, 20.0);
  EXPECT_LT(m2.crashes[1].restart_at, 0.0);
}

TEST(FaultPlan, ValidateRejectsRestartBeforeCrash) {
  FaultPlan p = FaultPlan::parse("crash node=0 at=10 restart=10");
  EXPECT_THROW(p.validate(4), CheckError);
  p = FaultPlan::parse("crash node=0 at=10 restart=5");
  EXPECT_THROW(p.validate(4), CheckError);
}

TEST(FaultPlan, DefaultPlanIsEmptyAndValid) {
  const FaultPlan p;
  EXPECT_TRUE(p.empty());
  p.validate(4);  // injecting nothing is always well-formed
  // Heartbeat parameters alone do not make a plan non-empty.
  const FaultPlan q = FaultPlan::parse("seed 1\nheartbeat period=1 timeout=4");
  EXPECT_TRUE(q.empty());
}

TEST(FaultPlan, ValidateRejectsMalformedPlans) {
  FaultPlan p = FaultPlan::parse("crash node=6 at=10");
  EXPECT_THROW(p.validate(6), CheckError);  // node out of [0, num_nodes)
  p = FaultPlan::parse("degrade node=0 from=20 until=20 disk=0.5");
  EXPECT_THROW(p.validate(4), CheckError);  // empty window
  p = FaultPlan::parse("degrade node=0 from=0 until=10 disk=0");
  EXPECT_THROW(p.validate(4), CheckError);  // factor must stay positive
  p = FaultPlan::parse("taskfail prob=1.5");
  EXPECT_THROW(p.validate(4), CheckError);  // probability outside [0, 1]
}

TEST(FaultPlan, ParseRejectsUnknownDirectives) {
  EXPECT_THROW(FaultPlan::parse("explode node=1 at=10"), CheckError);
  EXPECT_THROW(FaultPlan::parse("crash node=1 at=abc"), CheckError);
}

}  // namespace
}  // namespace mron::faults
