#include "workloads/benchmarks.h"

#include <gtest/gtest.h>

namespace mron::workloads {
namespace {

TEST(Table3, HasTenRowsMatchingThePaper) {
  const auto rows = table3();
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[0].name, "Bigram");
  EXPECT_EQ(rows[0].input_name, "Wikipedia");
  EXPECT_EQ(rows[0].num_maps, 676);
  EXPECT_EQ(rows[0].num_reduces, 200);
  EXPECT_EQ(rows[0].job_type, "Shuffle");
  EXPECT_EQ(rows[8].name, "Terasort");
  EXPECT_EQ(rows[8].num_maps, 752);
  EXPECT_EQ(rows[9].name, "BBP");
  EXPECT_EQ(rows[9].num_maps, 100);
  EXPECT_EQ(rows[9].num_reduces, 1);
}

TEST(Profiles, ShuffleSelectivitiesMatchTable3) {
  // shuffle bytes = input * map_output_ratio * combiner_ratio.
  struct Case {
    Benchmark b;
    Corpus c;
    double input_gb;
    double shuffle_gb;
  };
  const Case cases[] = {
      {Benchmark::Bigram, Corpus::Wikipedia, 90.5, 80.8},
      {Benchmark::InvertedIndex, Corpus::Wikipedia, 90.5, 38.0},
      {Benchmark::WordCount, Corpus::Wikipedia, 90.5, 30.3},
      {Benchmark::TextSearch, Corpus::Wikipedia, 90.5, 2.3},
      {Benchmark::Bigram, Corpus::Freebase, 100.8, 84.8},
      {Benchmark::InvertedIndex, Corpus::Freebase, 100.8, 21.0},
      {Benchmark::WordCount, Corpus::Freebase, 100.8, 16.7},
      {Benchmark::TextSearch, Corpus::Freebase, 100.8, 0.906},
      {Benchmark::Terasort, Corpus::Synthetic, 100.0, 100.0},
  };
  for (const auto& c : cases) {
    const auto p = profile_for(c.b, c.c);
    const double got = c.input_gb * p.map_output_ratio * p.combiner_ratio;
    EXPECT_NEAR(got, c.shuffle_gb, c.shuffle_gb * 0.05)
        << benchmark_name(c.b) << "/" << corpus_name(c.c);
  }
}

TEST(Profiles, OutputSelectivitiesMatchTable3) {
  struct Case {
    Benchmark b;
    Corpus c;
    double shuffle_gb;
    double output_gb;
  };
  const Case cases[] = {
      {Benchmark::Bigram, Corpus::Wikipedia, 80.8, 27.6},
      {Benchmark::WordCount, Corpus::Freebase, 16.7, 9.4},
      {Benchmark::Terasort, Corpus::Synthetic, 100.0, 100.0},
  };
  for (const auto& c : cases) {
    const auto p = profile_for(c.b, c.c);
    EXPECT_NEAR(c.shuffle_gb * p.reduce_output_ratio, c.output_gb,
                c.output_gb * 0.05)
        << benchmark_name(c.b);
  }
}

TEST(Profiles, JobTypesReflectCpuIntensity) {
  // Compute-intensive jobs must have higher map CPU cost than shuffle-heavy
  // ones (the paper's classification).
  const auto grep = profile_for(Benchmark::TextSearch, Corpus::Wikipedia);
  const auto tera = profile_for(Benchmark::Terasort, Corpus::Synthetic);
  EXPECT_GT(grep.map_cpu_secs_per_mib, 3 * tera.map_cpu_secs_per_mib);
  const auto bbp = profile_for(Benchmark::Bbp, Corpus::None);
  EXPECT_GT(bbp.map_cpu_secs_fixed, 0.0);
  EXPECT_GT(bbp.map_cpu_demand_cores, 1.0);
}

TEST(MakeJob, BuildsPaperSizedJobs) {
  mapreduce::SimulationOptions opt;
  opt.cluster.num_slaves = 4;
  opt.cluster.rack_sizes = {2, 2};
  mapreduce::Simulation sim(opt);
  const auto spec = make_job(sim, Benchmark::WordCount, Corpus::Wikipedia);
  EXPECT_EQ(sim.dfs().dataset(spec.input).blocks.size(), 676u);
  EXPECT_EQ(spec.num_reduces, 200);
}

TEST(MakeTerasort, ReducersQuarterOfMaps) {
  mapreduce::SimulationOptions opt;
  opt.cluster.num_slaves = 4;
  opt.cluster.rack_sizes = {2, 2};
  mapreduce::Simulation sim(opt);
  const auto spec = make_terasort(sim, gibibytes(2));
  EXPECT_EQ(sim.dfs().dataset(spec.input).blocks.size(), 16u);
  EXPECT_EQ(spec.num_reduces, 4);
}

TEST(MakeBbp, ComputeOnlyShape) {
  const auto spec = make_bbp();
  EXPECT_FALSE(spec.input.valid());
  EXPECT_EQ(spec.num_maps_override, 100);
  EXPECT_EQ(spec.num_reduces, 1);
}

}  // namespace
}  // namespace mron::workloads
