#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace mron {
namespace {

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsSafe) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(11);
  OnlineStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, OrderStatistics) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 20.0);
  // Interpolation between order statistics.
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.8), 8.0);
}

TEST(Percentile, SingleSample) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 1.0), 7.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), CheckError);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace mron
