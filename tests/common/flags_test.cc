#include "common/flags.h"

#include <gtest/gtest.h>

namespace mron {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const auto f = make({"--app=terasort", "--size-gb=60.5"});
  EXPECT_EQ(f.get("app", std::string("x")), "terasort");
  EXPECT_DOUBLE_EQ(f.get("size-gb", 0.0), 60.5);
}

TEST(Flags, SpaceSyntax) {
  const auto f = make({"--seed", "42", "--app", "wc"});
  EXPECT_EQ(f.get("seed", 0), 42);
  EXPECT_EQ(f.get("app", std::string("")), "wc");
}

TEST(Flags, BareBoolean) {
  const auto f = make({"--fair", "--verbose=false"});
  EXPECT_TRUE(f.get("fair", false));
  EXPECT_FALSE(f.get("verbose", true));
  EXPECT_FALSE(f.get("absent", false));
  EXPECT_TRUE(f.get("absent", true));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=1"}).get("x", false));
  EXPECT_TRUE(make({"--x=true"}).get("x", false));
  EXPECT_TRUE(make({"--x=yes"}).get("x", false));
  EXPECT_FALSE(make({"--x=0"}).get("x", true));
}

TEST(Flags, Fallbacks) {
  const auto f = make({});
  EXPECT_EQ(f.get("missing", std::string("dflt")), "dflt");
  EXPECT_EQ(f.get("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.get("bad", 1.5), 1.5);
}

TEST(Flags, NonNumericFallsBack) {
  const auto f = make({"--n=abc"});
  EXPECT_EQ(f.get("n", 9), 9);
}

TEST(Flags, PositionalCollected) {
  const auto f = make({"run", "--app=wc", "fast"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "run");
  EXPECT_EQ(f.positional()[1], "fast");
}

TEST(Flags, UnusedDetectsTypos) {
  const auto f = make({"--app=wc", "--strateegy=none"});
  (void)f.get("app", std::string(""));
  const auto unused = f.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "strateegy");
}

TEST(Flags, HasMarksQueried) {
  const auto f = make({"--x=1"});
  EXPECT_TRUE(f.has("x"));
  EXPECT_TRUE(f.unused().empty());
}

}  // namespace
}  // namespace mron
