#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mron {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.fork(1);
  Rng parent2(7);
  Rng child2 = parent2.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child(), child2());
  // Different salts give different streams.
  Rng parent3(7);
  Rng other = parent3.fork(2);
  int equal = 0;
  Rng parent4(7);
  Rng base = parent4.fork(1);
  for (int i = 0; i < 100; ++i) {
    if (base() == other()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LognormalNoiseMeanIsOne) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal_noise(0.2);
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, LognormalNoiseCvZeroIsExactlyOne) {
  Rng rng(6);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(rng.lognormal_noise(0.0), 1.0);
}

TEST(Rng, LognormalNoiseCvMatches) {
  Rng rng(8);
  const double cv = 0.3;
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal_noise(cv);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(std::sqrt(var) / mean, cv, 0.01);
}

}  // namespace
}  // namespace mron
