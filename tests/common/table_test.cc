#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"

namespace mron {
namespace {

TEST(TextTable, RendersAlignedRows) {
  TextTable t({"Benchmark", "Time (s)"});
  t.add_row({"Terasort", TextTable::num(4012.5)});
  t.add_row({"WC", TextTable::num(900.0)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Benchmark"), std::string::npos);
  EXPECT_NE(out.find("4012.5"), std::string::npos);
  EXPECT_NE(out.find("Terasort"), std::string::npos);
  // Header separator lines exist.
  EXPECT_NE(out.find("+-"), std::string::npos);
}

TEST(TextTable, NumPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.0, 0), "3");
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

}  // namespace
}  // namespace mron
