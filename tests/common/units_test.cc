#include "common/units.h"

#include <gtest/gtest.h>

namespace mron {
namespace {

TEST(Bytes, ArithmeticAndComparisons) {
  const Bytes a = mebibytes(100);
  const Bytes b = mebibytes(28);
  EXPECT_EQ((a + b).count(), mebibytes(128).count());
  EXPECT_EQ((a - b).count(), mebibytes(72).count());
  EXPECT_LT(b, a);
  EXPECT_DOUBLE_EQ(a.mib(), 100.0);
  EXPECT_DOUBLE_EQ(gibibytes(2).gib(), 2.0);
}

TEST(Bytes, ScalingAndRatios) {
  const Bytes buf = mebibytes(100);
  EXPECT_DOUBLE_EQ((buf * 0.8).mib(), 80.0);
  EXPECT_DOUBLE_EQ((0.5 * buf).mib(), 50.0);
  EXPECT_DOUBLE_EQ(mebibytes(50) / mebibytes(100), 0.5);
}

TEST(Bytes, CompoundAssignment) {
  Bytes b = mebibytes(10);
  b += mebibytes(5);
  EXPECT_EQ(b, mebibytes(15));
  b -= mebibytes(15);
  EXPECT_EQ(b, Bytes(0));
}

TEST(BytesPerSec, TimeFor) {
  const BytesPerSec disk = mib_per_sec(100);
  EXPECT_DOUBLE_EQ(disk.time_for(mebibytes(200)), 2.0);
  // 1 Gbps moves 125 MB/s.
  EXPECT_NEAR(gbit_per_sec(1).time_for(Bytes(125'000'000)), 1.0, 1e-9);
}

TEST(BytesPerSec, Scaling) {
  const BytesPerSec nic = gbit_per_sec(1);
  EXPECT_DOUBLE_EQ((nic * 0.5).rate(), nic.rate() / 2.0);
  EXPECT_DOUBLE_EQ((nic / 4.0).rate(), nic.rate() / 4.0);
}

}  // namespace
}  // namespace mron
