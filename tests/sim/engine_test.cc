#include "sim/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace mron::sim {
namespace {

TEST(Engine, FiresInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Engine, EqualTimesFireInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine eng;
  double fired_at = -1.0;
  eng.schedule_at(5.0, [&] {
    eng.schedule_after(2.5, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, CancelPreventsFiring) {
  Engine eng;
  bool fired = false;
  const EventId id = eng.schedule_at(1.0, [&] { fired = true; });
  eng.cancel(id);
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(eng.empty());
}

TEST(Engine, CancelTwiceAndAfterFireAreNoops) {
  Engine eng;
  int count = 0;
  const EventId id = eng.schedule_at(1.0, [&] { ++count; });
  eng.run();
  eng.cancel(id);  // already fired
  eng.cancel(id);
  EXPECT_EQ(count, 1);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine eng;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    eng.schedule_at(t, [&times, &eng] { times.push_back(eng.now()); });
  }
  const auto fired = eng.run_until(2.5);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(eng.now(), 2.5);
  EXPECT_EQ(eng.pending(), 2u);
  eng.run();
  EXPECT_EQ(times.size(), 4u);
}

TEST(Engine, EventsCanChain) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) eng.schedule_after(1.0, chain);
  };
  eng.schedule_after(1.0, chain);
  eng.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(eng.now(), 100.0);
}

TEST(Engine, RejectsPastScheduling) {
  Engine eng;
  eng.schedule_at(10.0, [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(5.0, [] {}), CheckError);
  EXPECT_THROW(eng.schedule_after(-1.0, [] {}), CheckError);
}

TEST(Engine, MaxEventsGuardThrows) {
  Engine eng;
  std::function<void()> forever = [&] { eng.schedule_after(1.0, forever); };
  eng.schedule_after(1.0, forever);
  EXPECT_THROW(eng.run(1000), CheckError);
}

// The tombstone-growth regression test: the timeout-heavy pattern
// (speculation timers, heartbeats) schedules far-future events and cancels
// nearly all of them. The old lazy-deleted priority queue grew a tombstone
// per cancel; the slot map + amortized compaction must keep every internal
// structure O(pending()) no matter how long the churn runs.
TEST(Engine, CancelChurnKeepsMemoryBounded) {
  Engine eng;
  for (int i = 0; i < 100'000; ++i) {
    const EventId id = eng.schedule_after(1e9, [] {});
    eng.cancel(id);
  }
  EXPECT_EQ(eng.pending(), 0u);
  // Compaction fires once stale entries outnumber live ones (with a small
  // floor), so the heap never holds more than a constant past that.
  EXPECT_LE(eng.queue_size(), 128u);
  EXPECT_LE(eng.slot_capacity(), 128u);
}

TEST(Engine, CancelChurnWithLiveEventsStaysProportional) {
  Engine eng;
  std::vector<EventId> live;
  live.reserve(100);
  for (int i = 0; i < 100; ++i) {
    live.push_back(eng.schedule_at(1e6 + i, [] {}));
  }
  for (int i = 0; i < 50'000; ++i) {
    eng.cancel(eng.schedule_after(1e9, [] {}));
  }
  EXPECT_EQ(eng.pending(), 100u);
  EXPECT_LE(eng.queue_size(), 2 * eng.pending() + 128);
  EXPECT_LE(eng.slot_capacity(), 2 * eng.pending() + 128);
  int fired = 0;
  eng.schedule_at(2e6, [&fired] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, StaleHandleAfterSlotReuseIsRejected) {
  Engine eng;
  const EventId a = eng.schedule_at(1.0, [] {});
  eng.cancel(a);
  // The slot is recycled for b; the stale handle a must not cancel b.
  int fired = 0;
  eng.schedule_at(2.0, [&fired] { ++fired; });
  eng.cancel(a);
  eng.cancel(a);  // double-cancel is also a no-op
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, CancelAfterFireIsNoOp) {
  Engine eng;
  const EventId a = eng.schedule_at(1.0, [] {});
  int fired = 0;
  eng.schedule_at(2.0, [&fired] { ++fired; });
  eng.run();
  eng.cancel(a);  // fired long ago; its slot may host someone else now
  EXPECT_EQ(fired, 1);
}

TEST(Engine, AcceptsMoveOnlyCaptures) {
  Engine eng;
  auto payload = std::make_unique<int>(41);
  int got = 0;
  eng.schedule_at(1.0, [p = std::move(payload), &got] { got = *p + 1; });
  eng.run();
  EXPECT_EQ(got, 42);
}

}  // namespace
}  // namespace mron::sim
