#include "sim/shared_server.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace mron::sim {
namespace {

TEST(SharedServer, SingleStreamRunsAtFullCapacity) {
  Engine eng;
  SharedServer disk(eng, 100.0, "disk");
  double done_at = -1.0;
  disk.submit(500.0, [&] { done_at = eng.now(); });
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

TEST(SharedServer, TwoEqualStreamsShareFairly) {
  Engine eng;
  SharedServer disk(eng, 100.0, "disk");
  double a = -1, b = -1;
  disk.submit(500.0, [&] { a = eng.now(); });
  disk.submit(500.0, [&] { b = eng.now(); });
  eng.run();
  // Each gets 50 units/s -> both finish at t=10.
  EXPECT_DOUBLE_EQ(a, 10.0);
  EXPECT_DOUBLE_EQ(b, 10.0);
}

TEST(SharedServer, ShortStreamFinishesThenLongSpeedsUp) {
  Engine eng;
  SharedServer disk(eng, 100.0, "disk");
  double short_done = -1, long_done = -1;
  disk.submit(100.0, [&] { short_done = eng.now(); });
  disk.submit(500.0, [&] { long_done = eng.now(); });
  eng.run();
  // Shared at 50/s until short finishes at t=2 (100/50); long then has
  // 400 left at 100/s -> t = 2 + 4 = 6.
  EXPECT_DOUBLE_EQ(short_done, 2.0);
  EXPECT_DOUBLE_EQ(long_done, 6.0);
}

TEST(SharedServer, CapLimitsSingleStream) {
  Engine eng;
  SharedServer cpu(eng, 8.0, "cpu");
  double done = -1;
  cpu.submit(4.0, /*cap=*/0.25, [&] { done = eng.now(); });
  eng.run();
  EXPECT_DOUBLE_EQ(done, 16.0);  // 4 core-seconds at 0.25 cores
}

TEST(SharedServer, WaterFillingRedistributesSurplus) {
  Engine eng;
  SharedServer cpu(eng, 10.0, "cpu");
  // One capped stream (cap 2) and one uncapped stream: allocation should be
  // 2 and 8, not 5 and 5.
  double capped = -1, uncapped = -1;
  cpu.submit(20.0, 2.0, [&] { capped = eng.now(); });
  cpu.submit(80.0, SharedServer::kUncapped, [&] { uncapped = eng.now(); });
  eng.run();
  EXPECT_DOUBLE_EQ(capped, 10.0);
  EXPECT_DOUBLE_EQ(uncapped, 10.0);
}

TEST(SharedServer, LateArrivalSlowsExisting) {
  Engine eng;
  SharedServer disk(eng, 100.0, "disk");
  double first_done = -1;
  disk.submit(400.0, [&] { first_done = eng.now(); });
  eng.schedule_at(2.0, [&] { disk.submit(1000.0, [] {}); });
  eng.run();
  // First: 200 done by t=2 at 100/s, then 200 left at 50/s -> t=6.
  EXPECT_DOUBLE_EQ(first_done, 6.0);
}

TEST(SharedServer, CancelFreesBandwidth) {
  Engine eng;
  SharedServer disk(eng, 100.0, "disk");
  double done = -1;
  disk.submit(400.0, [&] { done = eng.now(); });
  bool cancelled_fired = false;
  const StreamId victim =
      disk.submit(1000.0, [&] { cancelled_fired = true; });
  eng.schedule_at(2.0, [&] { disk.cancel(victim); });
  eng.run();
  EXPECT_FALSE(cancelled_fired);
  // 100 done by t=2 (50/s each), then 300 left at 100/s -> t=5.
  EXPECT_DOUBLE_EQ(done, 5.0);
}

TEST(SharedServer, SetCapTakesEffectImmediately) {
  Engine eng;
  SharedServer cpu(eng, 8.0, "cpu");
  double done = -1;
  const StreamId id = cpu.submit(4.0, 0.25, [&] { done = eng.now(); });
  eng.schedule_at(8.0, [&] { cpu.set_cap(id, 1.0); });
  eng.run();
  // 2 core-seconds done in first 8s at 0.25; remaining 2 at 1.0 -> t=10.
  EXPECT_DOUBLE_EQ(done, 10.0);
}

TEST(SharedServer, ZeroWorkCompletesAsync) {
  Engine eng;
  SharedServer disk(eng, 100.0, "disk");
  bool done = false;
  disk.submit(0.0, [&] { done = true; });
  EXPECT_FALSE(done);  // not synchronous
  eng.run();
  EXPECT_TRUE(done);
}

TEST(SharedServer, RemainingTracksProgress) {
  Engine eng;
  SharedServer disk(eng, 100.0, "disk");
  const StreamId id = disk.submit(400.0, [] {});
  double observed = -1;
  eng.schedule_at(1.0, [&] { observed = disk.remaining(id); });
  eng.run();
  EXPECT_DOUBLE_EQ(observed, 300.0);
  EXPECT_DOUBLE_EQ(disk.remaining(id), 0.0);  // finished
}

TEST(SharedServer, BusyIntegralEqualsWorkServed) {
  Engine eng;
  SharedServer disk(eng, 100.0, "disk");
  disk.submit(123.0, [] {});
  disk.submit(456.0, [] {});
  eng.run();
  EXPECT_NEAR(disk.busy_integral(), 579.0, 1e-6);
}

TEST(SharedServer, CompletionCallbackCanResubmit) {
  Engine eng;
  SharedServer disk(eng, 100.0, "disk");
  double second_done = -1;
  disk.submit(100.0, [&] {
    disk.submit(100.0, [&] { second_done = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(second_done, 2.0);
}

// Property: under random arrivals/sizes/caps, total work served equals total
// work submitted, and every stream completes.
TEST(SharedServerProperty, ConservationUnderRandomLoad) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Engine eng;
    SharedServer srv(eng, 50.0, "srv");
    Rng rng(seed);
    double submitted = 0.0;
    int completed = 0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      const double at = rng.uniform(0.0, 100.0);
      const double work = rng.uniform(1.0, 500.0);
      const double cap = rng.uniform01() < 0.5
                             ? SharedServer::kUncapped
                             : rng.uniform(0.5, 20.0);
      submitted += work;
      eng.schedule_at(at, [&, work, cap] {
        srv.submit(work, cap, [&] { ++completed; });
      });
    }
    eng.run();
    EXPECT_EQ(completed, n) << "seed " << seed;
    EXPECT_NEAR(srv.busy_integral(), submitted, 1e-3) << "seed " << seed;
    EXPECT_EQ(srv.active(), 0u);
  }
}

// Property: the server never exceeds its capacity: work served over any
// interval is at most capacity * dt. Checked via total makespan lower bound.
TEST(SharedServerProperty, MakespanRespectsCapacity) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Engine eng;
    SharedServer srv(eng, 10.0, "srv");
    Rng rng(seed + 100);
    double total = 0.0;
    for (int i = 0; i < 50; ++i) {
      const double work = rng.uniform(1.0, 100.0);
      total += work;
      srv.submit(work, [] {});
    }
    eng.run();
    EXPECT_GE(eng.now() + 1e-9, total / 10.0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mron::sim
