#include "sim/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mron::sim {
namespace {

TEST(ParallelRunner, MapDeliversResultsInTaskIndexOrder) {
  ParallelRunner pool(4);
  const auto out =
      pool.map<int>(64, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelRunner, ForEachRunsEveryTaskExactlyOnce) {
  ParallelRunner pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.for_each(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, SingleJobRunsInlineOnTheCaller) {
  ParallelRunner pool(1);
  const auto caller = std::this_thread::get_id();
  bool same_thread = true;
  pool.for_each(16, [&](std::size_t) {
    same_thread = same_thread && std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(same_thread);
}

TEST(ParallelRunner, ResultsIdenticalAtAnyJobsValue) {
  auto work = [](std::size_t i) {
    // Deterministic per-index computation, order-independent.
    double x = static_cast<double>(i) + 1.0;
    for (int k = 0; k < 100; ++k) x = x * 1.0000001 + 0.5;
    return x;
  };
  ParallelRunner serial(1);
  ParallelRunner wide(4);
  const auto a = serial.map<double>(100, work);
  const auto b = wide.map<double>(100, work);
  EXPECT_EQ(a, b);  // exact double equality, not near
}

TEST(ParallelRunner, RethrowsLowestIndexException) {
  ParallelRunner pool(4);
  try {
    pool.for_each(32, [](std::size_t i) {
      if (i == 5 || i == 20) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "5");
  }
}

TEST(ParallelRunner, NestedCallsDegradeToInlineWithoutDeadlock) {
  ParallelRunner pool(4);
  std::atomic<int> total{0};
  pool.for_each(8, [&](std::size_t) {
    // Re-entering the same busy pool must run serially on this worker.
    pool.for_each(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelRunner, EmptyBatchIsANoOp) {
  ParallelRunner pool(4);
  pool.for_each(0, [](std::size_t) { FAIL(); });
  const auto out = pool.map<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelRunner, ReusableAcrossBatches) {
  ParallelRunner pool(3);
  long long sum = 0;
  for (int round = 0; round < 10; ++round) {
    const auto vals =
        pool.map<int>(50, [](std::size_t i) { return static_cast<int>(i); });
    sum += std::accumulate(vals.begin(), vals.end(), 0LL);
  }
  EXPECT_EQ(sum, 10LL * (49 * 50 / 2));
}

TEST(ParallelRunner, DefaultJobsRoundTrips) {
  const int before = ParallelRunner::default_jobs();
  ParallelRunner::set_default_jobs(3);
  EXPECT_EQ(ParallelRunner::default_jobs(), 3);
  ParallelRunner::set_default_jobs(before);
}

}  // namespace
}  // namespace mron::sim
