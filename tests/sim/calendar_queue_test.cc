// Calendar-queue unit tests plus the randomized heap-vs-calendar
// equivalence property that pins the engine's dual-backend contract: both
// ready queues dispatch byte-identical (time, seq) streams under any mix
// of scheduling, cancellation, daemon churn, run_until slicing, and
// compaction. The equivalence test is the license for the calendar queue
// to exist at all — if it ever diverges from the binary-heap reference,
// run reports and RNG streams silently fork.
#include <algorithm>
#include <cstdlib>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/calendar_queue.h"
#include "sim/engine.h"

namespace mron::sim {
namespace {

EventEntry entry(SimTime t, std::int64_t seq) {
  return EventEntry{t, seq, static_cast<std::uint32_t>(seq & 0xffffffff), 0};
}

/// Drains `q` and checks the pops come out sorted by (time, seq) and are a
/// permutation of `expect`.
void expect_drains_sorted(CalendarQueue& q, std::vector<EventEntry> expect) {
  std::sort(expect.begin(), expect.end());
  std::vector<EventEntry> got;
  got.reserve(expect.size());
  while (!q.empty()) got.push_back(q.pop_min());
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].time, expect[i].time) << "at index " << i;
    EXPECT_EQ(got[i].seq, expect[i].seq) << "at index " << i;
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(CalendarQueue, PopsRandomLoadInTimeSeqOrder) {
  Rng rng(42);
  CalendarQueue q;
  std::vector<EventEntry> all;
  for (std::int64_t seq = 0; seq < 5000; ++seq) {
    const EventEntry e = entry(rng.uniform(0.0, 1000.0), seq);
    q.push(e, 0.0);
    all.push_back(e);
  }
  expect_drains_sorted(q, std::move(all));
}

TEST(CalendarQueue, SameTimeBurstKeepsScheduleOrder) {
  // 10k entries at one timestamp land in one bucket; the sorted-run +
  // consumed-head layout must keep appends O(1) (no per-insert shifting)
  // and pops in seq order.
  CalendarQueue q;
  std::vector<EventEntry> all;
  for (std::int64_t seq = 0; seq < 10000; ++seq) {
    const EventEntry e = entry(7.5, seq);
    q.push(e, 0.0);
    all.push_back(e);
  }
  expect_drains_sorted(q, std::move(all));
}

TEST(CalendarQueue, FarFutureEntriesTakeOverflowLadder) {
  Rng rng(7);
  CalendarQueue q;
  std::vector<EventEntry> all;
  std::int64_t seq = 0;
  // Dense near-term cluster fixes a narrow bucket width, then far-future
  // outliers (1e6x beyond the calendar's span) must overflow rather than
  // wrap, and still come out in order once the near-term load drains.
  for (int i = 0; i < 2000; ++i) {
    const EventEntry e = entry(rng.uniform(0.0, 10.0), seq++);
    q.push(e, 0.0);
    all.push_back(e);
  }
  for (int i = 0; i < 500; ++i) {
    const EventEntry e = entry(1e7 + rng.uniform(0.0, 1e7), seq++);
    q.push(e, 0.0);
    all.push_back(e);
  }
  EXPECT_GT(q.overflow_size(), 0u);
  expect_drains_sorted(q, std::move(all));
}

TEST(CalendarQueue, InterleavedPushPopWithAdvancingClock) {
  // Simulation-shaped load: pops advance "now", pushes are always relative
  // to now. Checks the monotone re-anchoring logic (floor_) never strands
  // or reorders entries across rebuilds.
  Rng rng(99);
  CalendarQueue q;
  std::vector<EventEntry> reference;
  std::vector<EventEntry> got;
  SimTime now = 0.0;
  std::int64_t seq = 0;
  for (int round = 0; round < 200; ++round) {
    const int pushes = static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < pushes; ++i) {
      const double jump = rng.uniform_int(0, 9) == 0
                              ? rng.uniform(0.0, 1e5)   // occasional far jump
                              : rng.uniform(0.0, 50.0);  // dense near-term
      const EventEntry e = entry(now + jump, seq++);
      q.push(e, now);
      reference.push_back(e);
    }
    const int pops = static_cast<int>(rng.uniform_int(0, 30));
    for (int i = 0; i < pops && !q.empty(); ++i) {
      const EventEntry e = q.pop_min();
      now = e.time;
      got.push_back(e);
    }
  }
  while (!q.empty()) got.push_back(q.pop_min());
  std::sort(reference.begin(), reference.end());
  ASSERT_EQ(got.size(), reference.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].time, reference[i].time) << "at index " << i;
    EXPECT_EQ(got[i].seq, reference[i].seq) << "at index " << i;
  }
}

TEST(CalendarQueue, PeekDoesNotDisturbOrder) {
  Rng rng(3);
  CalendarQueue q;
  std::vector<EventEntry> all;
  SimTime now = 0.0;
  for (std::int64_t seq = 0; seq < 300; ++seq) {
    const EventEntry e = entry(now + rng.uniform(0.0, 100.0), seq);
    q.push(e, now);
    all.push_back(e);
    // Peek between every push: a peek must not advance the cursor past a
    // window a later push could still land in.
    const EventEntry& top = q.peek_min();
    EXPECT_LE(top.time, e.time);
  }
  expect_drains_sorted(q, std::move(all));
}

TEST(CalendarQueue, RemoveIfDropsDeadEntriesEverywhere) {
  Rng rng(5);
  CalendarQueue q;
  std::vector<EventEntry> keep;
  for (std::int64_t seq = 0; seq < 4000; ++seq) {
    // Spread across buckets and the overflow ladder so the sweep has to
    // visit every storage tier.
    const double t = rng.uniform_int(0, 4) == 0 ? 1e8 + rng.uniform(0.0, 1e8)
                                                : rng.uniform(0.0, 100.0);
    const EventEntry e = entry(t, seq);
    q.push(e, 0.0);
    if (seq % 2 == 0) keep.push_back(e);
  }
  q.remove_if([](const EventEntry& e) { return e.seq % 2 != 0; });
  EXPECT_EQ(q.size(), keep.size());
  expect_drains_sorted(q, std::move(keep));
}

TEST(CalendarQueue, DrainAndRefillReusesQueue) {
  CalendarQueue q;
  for (int cycle = 0; cycle < 5; ++cycle) {
    std::vector<EventEntry> all;
    const SimTime base = cycle * 1e6;
    for (std::int64_t seq = 0; seq < 1000; ++seq) {
      const EventEntry e = entry(base + static_cast<double>(seq) * 0.25,
                                 cycle * 1000 + seq);
      q.push(e, base);
      all.push_back(e);
    }
    expect_drains_sorted(q, std::move(all));
    EXPECT_TRUE(q.empty());
  }
  // Sparse again after the churn: the bucket array must have shrunk back
  // rather than staying at peak size forever.
  EXPECT_LE(q.num_buckets(), 1024u);
}

// ---------------------------------------------------------------------------
// Engine-level equivalence: heap vs calendar, driven in lockstep.

struct Fired {
  SimTime time;
  int tag;
  bool operator==(const Fired& o) const {
    return time == o.time && tag == o.tag;
  }
};

/// Both engines run the same randomized schedule/cancel/daemon/run_until
/// script; every checkpoint compares the dispatched stream and all
/// externally visible counters byte-for-byte.
void run_lockstep_churn(std::uint64_t seed) {
  Engine cal(QueueKind::kCalendar);
  Engine heap(QueueKind::kBinaryHeap);
  ASSERT_EQ(cal.queue_kind(), QueueKind::kCalendar);
  ASSERT_EQ(heap.queue_kind(), QueueKind::kBinaryHeap);

  Rng rng(seed);
  std::vector<Fired> cal_fired, heap_fired;
  std::vector<EventId> cal_ids, heap_ids;
  int tag = 0;
  for (int round = 0; round < 60; ++round) {
    ASSERT_EQ(cal.now(), heap.now());
    const int burst = static_cast<int>(rng.uniform_int(1, 50));
    for (int i = 0; i < burst; ++i) {
      const int t = tag++;
      double when = cal.now();
      switch (rng.uniform_int(0, 3)) {
        case 0: break;  // same-instant burst
        case 1: when += rng.uniform(0.0, 5.0); break;     // dense
        case 2: when += rng.uniform(0.0, 500.0); break;   // spread
        default: when += 1e6 + rng.uniform(0.0, 1e6);     // far future
      }
      const bool daemon = rng.uniform_int(0, 9) == 0;
      auto cal_cb = [&cal, &cal_fired, t] {
        cal_fired.push_back({cal.now(), t});
      };
      auto heap_cb = [&heap, &heap_fired, t] {
        heap_fired.push_back({heap.now(), t});
      };
      if (daemon) {
        cal_ids.push_back(cal.schedule_daemon_at(when, cal_cb));
        heap_ids.push_back(heap.schedule_daemon_at(when, heap_cb));
      } else {
        cal_ids.push_back(cal.schedule_at(when, cal_cb));
        heap_ids.push_back(heap.schedule_at(when, heap_cb));
      }
    }
    // Cancel a random slice (including already-fired / double cancels —
    // both must be no-ops in both backends).
    const int cancels = static_cast<int>(
        rng.uniform_int(0, static_cast<std::int64_t>(cal_ids.size()) / 2));
    for (int i = 0; i < cancels; ++i) {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(cal_ids.size()) - 1));
      cal.cancel(cal_ids[idx]);
      heap.cancel(heap_ids[idx]);
    }
    // Drain a slice. run_until must stop at the same boundary and leave
    // the same clock behind.
    const SimTime until = cal.now() + rng.uniform(0.0, 200.0);
    const std::int64_t cal_n = cal.run_until(until);
    const std::int64_t heap_n = heap.run_until(until);
    ASSERT_EQ(cal_n, heap_n) << "round " << round;
    ASSERT_EQ(cal.now(), heap.now());
    ASSERT_EQ(cal.pending(), heap.pending());
    ASSERT_EQ(cal.quiescent(), heap.quiescent());
    ASSERT_EQ(cal.stale_entries(), heap.stale_entries());
    ASSERT_EQ(cal.total_dispatched(), heap.total_dispatched());
    ASSERT_EQ(cal_fired, heap_fired) << "round " << round;
  }
  // Full drain: every remaining event (daemons included) fires in the same
  // order, and both engines agree they are empty afterwards.
  EXPECT_EQ(cal.run(), heap.run());
  EXPECT_EQ(cal_fired, heap_fired);
  EXPECT_TRUE(cal.empty());
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(cal.queue_size(), heap.queue_size());
  EXPECT_EQ(cal.slot_capacity(), heap.slot_capacity());
}

TEST(EngineQueueEquivalence, RandomChurnMatchesHeapByteForByte) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    run_lockstep_churn(seed);
  }
}

TEST(EngineQueueEquivalence, CancelChurnStaysMemoryBoundedInBothBackends) {
  // The compaction contract is backend-independent: 100k cancel/reschedule
  // cycles with ~1 live event must not grow either queue past a small
  // constant.
  for (const QueueKind kind : {QueueKind::kCalendar, QueueKind::kBinaryHeap}) {
    Engine eng(kind);
    EventId id = eng.schedule_at(1.0, [] {});
    for (int i = 0; i < 100000; ++i) {
      eng.cancel(id);
      id = eng.schedule_at(1.0 + i * 1e-3, [] {});
    }
    EXPECT_LE(eng.queue_size(), 128u) << "kind " << static_cast<int>(kind);
    EXPECT_LE(eng.stale_entries(), eng.queue_size());
    EXPECT_EQ(eng.pending(), 1u);
    EXPECT_EQ(eng.run(), 1);
  }
}

TEST(EngineQueueEquivalence, EnvVarSelectsBackend) {
  ASSERT_EQ(setenv("MRON_EVENT_QUEUE", "heap", 1), 0);
  EXPECT_EQ(Engine::default_queue_kind(), QueueKind::kBinaryHeap);
  ASSERT_EQ(setenv("MRON_EVENT_QUEUE", "calendar", 1), 0);
  EXPECT_EQ(Engine::default_queue_kind(), QueueKind::kCalendar);
  ASSERT_EQ(unsetenv("MRON_EVENT_QUEUE"), 0);
  EXPECT_EQ(Engine::default_queue_kind(), QueueKind::kCalendar);
}

}  // namespace
}  // namespace mron::sim
