#include "sim/callback.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

namespace mron::sim {
namespace {

TEST(Callback, InvokesSmallLambda) {
  int hits = 0;
  Callback cb([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(Callback, DefaultConstructedIsEmpty) {
  Callback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(Callback, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(7);
  int got = 0;
  Callback cb([p = std::move(p), &got] { got = *p; });
  cb();
  EXPECT_EQ(got, 7);
}

TEST(Callback, LargeCaptureFallsBackToHeapAndStillWorks) {
  std::array<double, 32> big{};  // 256 bytes, well past kInlineSize
  big[0] = 1.5;
  big[31] = 2.5;
  double sum = 0.0;
  Callback cb([big, &sum] { sum = big[0] + big[31]; });
  cb();
  EXPECT_DOUBLE_EQ(sum, 4.0);
}

TEST(Callback, MoveTransfersOwnership) {
  int hits = 0;
  Callback a([&hits] { ++hits; });
  Callback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(Callback, MoveAssignDestroysPreviousTarget) {
  int destroyed = 0;
  struct Probe {
    int* counter;
    explicit Probe(int* c) : counter(c) {}
    Probe(Probe&& o) noexcept : counter(o.counter) { o.counter = nullptr; }
    ~Probe() {
      if (counter != nullptr) ++*counter;
    }
  };
  Callback a([p = Probe(&destroyed)] { (void)p; });
  Callback b([] {});
  a = std::move(b);
  EXPECT_EQ(destroyed, 1);
  a();  // the moved-in empty lambda, not the probe
  EXPECT_EQ(destroyed, 1);
}

TEST(Callback, ResetReleasesCapture) {
  auto shared = std::make_shared<int>(0);
  Callback cb([shared] { (void)shared; });
  EXPECT_EQ(shared.use_count(), 2);
  cb.reset();
  EXPECT_EQ(shared.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(Callback, TypicalEngineCaptureFitsInline) {
  // The engine's dominant shape: a `this` pointer plus a few scalars. If
  // this ever stops fitting, every event pays a heap allocation again —
  // catch it at compile time.
  struct TypicalCapture {
    void* self;
    double time;
    std::int64_t id;
    int attempt;
  };
  static_assert(sizeof(TypicalCapture) <= Callback::kInlineSize);
}

}  // namespace
}  // namespace mron::sim
