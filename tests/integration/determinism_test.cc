// The determinism contract (DESIGN.md "Engine internals"): a fixed seed
// produces byte-identical job metrics on every run, and fanning runs across
// a ParallelRunner pool changes wall-clock only — never results. Every
// comparison here is exact (EXPECT_EQ on doubles), not approximate.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mapreduce/simulation.h"
#include "sim/parallel_runner.h"
#include "workloads/benchmarks.h"

namespace mron {
namespace {

using mapreduce::JobConfig;
using mapreduce::JobResult;
using mapreduce::Simulation;
using mapreduce::SimulationOptions;

/// Everything a run can disagree on, collapsed to comparable numbers.
struct Fingerprint {
  double exec_time = 0.0;
  std::int64_t map_spilled = 0;
  std::int64_t reduce_spilled = 0;
  std::int64_t map_output_records = 0;
  double map_cpu_seconds = 0.0;
  double reduce_cpu_seconds = 0.0;
  int failed_attempts = 0;
  std::size_t map_reports = 0;
  std::size_t reduce_reports = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_terasort(std::uint64_t seed, const JobConfig& cfg,
                         double gb) {
  SimulationOptions opt;
  opt.seed = seed;
  Simulation sim(opt);
  auto spec = workloads::make_terasort(sim, gibibytes(gb));
  spec.config = cfg;
  const JobResult r = sim.run_job(std::move(spec));
  return Fingerprint{
      .exec_time = r.exec_time(),
      .map_spilled = r.counters.map.spilled_records,
      .reduce_spilled = r.counters.reduce.spilled_records,
      .map_output_records = r.counters.map.map_output_records,
      .map_cpu_seconds = r.counters.map.cpu_seconds,
      .reduce_cpu_seconds = r.counters.reduce.cpu_seconds,
      .failed_attempts = r.counters.failed_task_attempts,
      .map_reports = r.map_reports.size(),
      .reduce_reports = r.reduce_reports.size(),
  };
}

TEST(Determinism, SameSeedSameMetricsAcrossRepeatedRuns) {
  const Fingerprint first = run_terasort(42, JobConfig{}, 4.0);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(run_terasort(42, JobConfig{}, 4.0), first) << "rep " << rep;
  }
}

TEST(Determinism, DifferentSeedsActuallyDiffer) {
  // Guards against the fingerprint being insensitive (which would make the
  // tests above vacuous).
  EXPECT_NE(run_terasort(42, JobConfig{}, 4.0),
            run_terasort(43, JobConfig{}, 4.0));
}

TEST(Determinism, TunedConfigIsAlsoReproducible) {
  JobConfig cfg;
  cfg.io_sort_mb = 256;
  cfg.sort_spill_percent = 0.95;
  cfg.reduce_input_buffer_percent = 0.6;
  const Fingerprint first = run_terasort(7, cfg, 4.0);
  EXPECT_EQ(run_terasort(7, cfg, 4.0), first);
}

TEST(Determinism, ParallelFanOutMatchesSerial) {
  // The satellite check behind --jobs: the same (seed, config) grid run
  // through a 1-worker pool and a 4-worker pool must produce identical
  // result vectors, element for element.
  const std::vector<std::uint64_t> seeds = {11, 22, 33, 44};
  std::vector<JobConfig> configs(3);
  configs[1].io_sort_mb = 200;
  configs[2].reduce_memory_mb = 2048;
  const std::size_t n = seeds.size() * configs.size();
  auto work = [&](std::size_t i) {
    return run_terasort(seeds[i % seeds.size()], configs[i / seeds.size()],
                        2.0);
  };
  sim::ParallelRunner serial(1);
  sim::ParallelRunner wide(4);
  const auto a = serial.map<Fingerprint>(n, work);
  const auto b = wide.map<Fingerprint>(n, work);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(a[i], b[i]) << "task " << i;
}

TEST(Determinism, ParallelRepeatOfOneSeedIsSelfConsistent) {
  // Eight concurrent copies of the identical run: any cross-run state leak
  // (shared RNG, shared recorder, static scratch) shows up here.
  sim::ParallelRunner pool(4);
  const auto runs = pool.map<Fingerprint>(
      8, [](std::size_t) { return run_terasort(99, JobConfig{}, 2.0); });
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i], runs[0]) << "copy " << i;
  }
}

}  // namespace
}  // namespace mron
