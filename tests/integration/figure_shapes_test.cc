// Scaled-down versions of the paper's experiments, asserting the *shapes*
// the figures report — who wins and roughly by how much — so regressions in
// any layer (simulator, YARN, task models, tuner) surface as test failures.
//
// Jobs are shrunk (20-60 GB, fewer reducers) and run on one seed to keep
// the suite fast; the bench binaries run the full-size versions.
#include <gtest/gtest.h>

#include "baselines/offline_guide.h"
#include "mapreduce/simulation.h"
#include "tuner/online_tuner.h"
#include "workloads/benchmarks.h"

namespace mron {
namespace {

using mapreduce::JobConfig;
using mapreduce::JobResult;
using mapreduce::JobSpec;
using mapreduce::Simulation;
using mapreduce::SimulationOptions;
using mapreduce::TaskKind;
using workloads::Benchmark;
using workloads::Corpus;

JobResult run_terasort(const JobConfig& cfg, std::uint64_t seed,
                       double gb = 40) {
  SimulationOptions opt;
  opt.seed = seed;
  Simulation sim(opt);
  JobSpec spec = workloads::make_terasort(sim, gibibytes(gb));
  spec.config = cfg;
  return sim.run_job(std::move(spec));
}

JobConfig tune_terasort_aggressively(std::uint64_t seed, double gb = 40) {
  SimulationOptions opt;
  opt.seed = seed;
  Simulation sim(opt);
  JobSpec spec = workloads::make_terasort(sim, gibibytes(gb));
  tuner::TunerOptions topt;
  topt.climber.global_samples = 12;
  topt.climber.local_samples = 8;
  topt.climber.max_global_rounds = 3;
  tuner::OnlineTuner tuner(topt);
  auto& am = sim.submit_job(std::move(spec));
  tuner.attach(am);
  sim.run();
  return tuner.outcome(am.id()).best_config;
}

// Figure 4-6 shape: MRONLINE's expedited test run finds a configuration
// that beats the default by a double-digit percentage on a rerun.
TEST(FigureShape, ExpeditedTuningBeatsDefault) {
  const double def = run_terasort(JobConfig{}, 31).exec_time();
  const JobConfig best = tune_terasort_aggressively(77);
  const double tuned = run_terasort(best, 31).exec_time();
  EXPECT_LT(tuned, def * 0.90);  // at least 10%; paper reports 23%
}

// Figure 4-6 shape: the offline guide and MRONLINE land in the same
// neighborhood (the paper's point is run-count, not end quality).
TEST(FigureShape, OfflineGuideComparableToMronline) {
  SimulationOptions opt;
  Simulation sim(opt);
  const JobSpec spec = workloads::make_terasort(sim, gibibytes(20));
  const JobConfig offline = baselines::offline_guide_config(
      spec, sim.dfs().block_size(), 160);
  const double off = run_terasort(offline, 31).exec_time();
  const JobConfig best = tune_terasort_aggressively(77);
  const double tuned = run_terasort(best, 31).exec_time();
  EXPECT_LT(std::abs(off - tuned) / off, 0.30);
}

// Figure 7-9 shape: default spills ~2x the optimal; MRONLINE reaches the
// optimal exactly.
TEST(FigureShape, SpillRecordsReachOptimal) {
  const JobResult def = run_terasort(JobConfig{}, 31);
  EXPECT_GT(def.counters.map.spilled_records,
            static_cast<std::int64_t>(
                1.8 * static_cast<double>(
                          def.counters.map.combine_output_records)));
  const JobConfig best = tune_terasort_aggressively(77);
  const JobResult tuned = run_terasort(best, 31);
  EXPECT_EQ(tuned.counters.map.spilled_records,
            tuned.counters.map.combine_output_records);
}

// Figure 10-12 shape: conservative in-run tuning helps a single execution
// without any launch gating.
TEST(FigureShape, ConservativeTuningImprovesSingleRun) {
  const double def = run_terasort(JobConfig{}, 31, 60).exec_time();
  SimulationOptions opt;
  opt.seed = 31;
  Simulation sim(opt);
  JobSpec spec = workloads::make_terasort(sim, gibibytes(60));
  tuner::TunerOptions topt;
  topt.strategy = tuner::TuningStrategy::Conservative;
  tuner::OnlineTuner tuner(topt);
  double tuned = 0.0;
  auto& am = sim.submit_job(std::move(spec), [&](const JobResult& r) {
    tuned = r.exec_time();
  });
  tuner.attach(am);
  sim.run();
  EXPECT_LT(tuned, def * 0.95);  // paper band: 8-22%
}

// Figure 13 shape: tuning a tiny job yields little; a big one yields a lot.
TEST(FigureShape, SmallJobsGainLessThanBigJobs) {
  auto improvement = [](double gb) {
    const double def = run_terasort(JobConfig{}, 31, gb).exec_time();
    const JobConfig best = tune_terasort_aggressively(77, gb);
    const double tuned = run_terasort(best, 31, gb).exec_time();
    return (def - tuned) / def;
  };
  const double small = improvement(2);
  const double big = improvement(40);
  EXPECT_GT(big, 0.10);
  EXPECT_LT(small, big);
}

// Figure 14-16 shape: in the multi-tenant run, per-job tuning lowers both
// exec times and raises Terasort's memory utilization.
TEST(FigureShape, MultiTenantTuningHelpsBothJobs) {
  auto run_pair = [](const JobConfig& tera_cfg, const JobConfig& bbp_cfg) {
    SimulationOptions opt;
    opt.seed = 13;
    opt.fair_scheduler = true;
    Simulation sim(opt);
    JobSpec tera = workloads::make_terasort(sim, gibibytes(20), 40);
    tera.config = tera_cfg;
    JobSpec bbp = workloads::make_bbp(40);
    bbp.config = bbp_cfg;
    struct Out {
      double tera_secs = 0, bbp_secs = 0, tera_mem = 0;
    } out;
    sim.submit_job(std::move(tera), [&](const JobResult& r) {
      out.tera_secs = r.exec_time();
      out.tera_mem = r.avg_util(TaskKind::Map, false);
    });
    sim.submit_job(std::move(bbp),
                   [&](const JobResult& r) { out.bbp_secs = r.exec_time(); });
    sim.run();
    return out;
  };
  const auto def = run_pair(JobConfig{}, JobConfig{});
  // Hand the jobs paper-flavored tuned configs (derived shapes): compact
  // Terasort containers with a single-spill buffer; more vcores for BBP.
  JobConfig tera_cfg;
  tera_cfg.map_memory_mb = 640;
  tera_cfg.io_sort_mb = 176;
  tera_cfg.sort_spill_percent = 0.99;
  tera_cfg.reduce_memory_mb = 960;
  tera_cfg.shuffle_input_buffer_percent = 0.8;
  tera_cfg.reduce_input_buffer_percent = 0.8;
  tera_cfg.merge_inmem_threshold = 0;
  JobConfig bbp_cfg;
  bbp_cfg.map_cpu_vcores = 2;
  bbp_cfg.map_memory_mb = 512;
  const auto tuned = run_pair(tera_cfg, bbp_cfg);
  EXPECT_LT(tuned.tera_secs, def.tera_secs);
  EXPECT_LT(tuned.bbp_secs, def.bbp_secs);
  EXPECT_GT(tuned.tera_mem, def.tera_mem);
}

// The BBP CPU story of Figure 16: with 1 vcore its mappers saturate the
// quota; 2 vcores cut its runtime substantially.
TEST(FigureShape, BbpSaturatesOneVcoreAndScalesWithTwo) {
  auto run_bbp = [](double vcores) {
    SimulationOptions opt;
    opt.seed = 9;
    Simulation sim(opt);
    JobSpec spec = workloads::make_bbp(40);
    spec.config.map_cpu_vcores = vcores;
    return sim.run_job(std::move(spec));
  };
  const JobResult one = run_bbp(1);
  EXPECT_GT(one.avg_util(TaskKind::Map, true), 0.95);
  const JobResult two = run_bbp(2);
  EXPECT_LT(two.exec_time(), one.exec_time() * 0.75);
}

}  // namespace
}  // namespace mron
