// Fault-run determinism A/B: the acceptance contract from FAULTS.md.
// The same plan + seed must reproduce the run exactly — including every
// injected failure, retry, and speculative race — and under observation the
// exported run report must be byte-identical. A different plan seed must
// change the injection pattern.
#include <gtest/gtest.h>

#include <string>

#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "mapreduce/report_rollup.h"
#include "mapreduce/simulation.h"
#include "obs/enabled.h"
#include "workloads/benchmarks.h"

namespace mron::mapreduce {
namespace {

const char* kPlan =
    "seed 21\n"
    "heartbeat period=0.5 timeout=3\n"
    "taskfail prob=0.05\n"
    "crash node=2 at=45 restart=80\n"
    "degrade node=3 from=5 until=120 disk=0.1 nic=0.3\n";

struct RunOutcome {
  JobResult result;
  faults::FaultStats stats;
  std::string report;  // empty unless built with observation on
};

RunOutcome run_once(std::uint64_t plan_seed, bool observe) {
  SimulationOptions opt;
  opt.cluster.num_slaves = 6;
  opt.cluster.rack_sizes = {3, 3};
  opt.seed = 17;
  opt.observe = observe;
  opt.fault_plan = faults::FaultPlan::parse(kPlan);
  opt.fault_plan.seed = plan_seed;
  Simulation sim(opt);
  JobSpec spec = workloads::make_terasort(sim, mebibytes(128.0 * 24), 6);
  spec.speculative_execution = true;
  const JobConfig config = spec.config;
  RunOutcome out;
  sim.submit_job(std::move(spec),
                 [&](const JobResult& r) { out.result = r; });
  sim.run();
  out.stats = sim.fault_injector()->stats();
  if (observe) {
    out.report = run_report_json(sim, {{&out.result, &config}},
                                 {{"app", "terasort"}, {"faulted", "1"}});
  }
  return out;
}

TEST(FaultDeterminism, SamePlanSameSeedReproducesTheRunExactly) {
  const RunOutcome a = run_once(21, false);
  const RunOutcome b = run_once(21, false);
  EXPECT_DOUBLE_EQ(a.result.finish_time, b.result.finish_time);
  EXPECT_EQ(a.result.injected_failures, b.result.injected_failures);
  EXPECT_EQ(a.result.lost_maps_reexecuted, b.result.lost_maps_reexecuted);
  EXPECT_EQ(a.result.speculative_launches, b.result.speculative_launches);
  EXPECT_EQ(a.result.speculative_wins, b.result.speculative_wins);
  EXPECT_EQ(a.stats.injected_task_failures, b.stats.injected_task_failures);
  EXPECT_EQ(a.stats.crashes, b.stats.crashes);
  EXPECT_EQ(a.stats.restarts, b.stats.restarts);
  ASSERT_EQ(a.result.map_reports.size(), b.result.map_reports.size());
  for (std::size_t i = 0; i < a.result.map_reports.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.result.map_reports[i].start_time,
                     b.result.map_reports[i].start_time);
    EXPECT_DOUBLE_EQ(a.result.map_reports[i].end_time,
                     b.result.map_reports[i].end_time);
    EXPECT_EQ(a.result.map_reports[i].node.value(),
              b.result.map_reports[i].node.value());
  }
  // The faulted run actually exercised recovery, not a clean pass.
  EXPECT_EQ(a.stats.crashes, 1);
  EXPECT_GT(a.result.injected_failures + a.result.lost_maps_reexecuted, 0);
}

TEST(FaultDeterminism, DifferentPlanSeedsChangeTheInjectionPattern) {
  const RunOutcome a = run_once(21, false);
  const RunOutcome b = run_once(1021, false);
  // Crash/degrade schedules are fixed by the plan; only the hash draws
  // move. With prob=0.05 over ~30 tasks the two seeds must not reproduce
  // the identical run.
  const bool identical =
      a.result.injected_failures == b.result.injected_failures &&
      a.result.finish_time == b.result.finish_time;
  EXPECT_FALSE(identical);
  EXPECT_EQ(b.stats.crashes, 1);  // planned events unchanged
}

#if MRON_OBS_ENABLED

TEST(FaultDeterminism, RunReportIsByteIdenticalAcrossRepeats) {
  const RunOutcome a = run_once(21, true);
  const RunOutcome b = run_once(21, true);
  ASSERT_FALSE(a.report.empty());
  EXPECT_EQ(a.report, b.report);
  // The report carries the schema/2 faults block with the planned crash.
  EXPECT_NE(a.report.find("\"schema\":\"mron.run_report/4\""),
            std::string::npos);
  EXPECT_NE(a.report.find("\"faults\":"), std::string::npos);
  EXPECT_NE(a.report.find("\"crashes\""), std::string::npos);
}

#endif  // MRON_OBS_ENABLED

}  // namespace
}  // namespace mron::mapreduce
