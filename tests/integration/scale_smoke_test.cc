// Scaled smoke tests: faulted Terasorts at 1,024 and 10,240 nodes must
// complete, recover their lost work, and reproduce exactly. The 19-node
// integration suites exercise the same machinery in depth; these pin the
// scaled regimes, where the indexed scheduler/monitor paths, the per-rack
// series aggregation, the heartbeat silent-set, and the calendar-queue
// engine are the ones doing the work.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "cluster/cluster_spec.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "mapreduce/simulation.h"
#include "workloads/benchmarks.h"

namespace mron::mapreduce {
namespace {

// taskfail guarantees recovery work regardless of which of the 1,023
// nodes the (tiny, relative to the cluster) job happens to land on;
// the crashes exercise heartbeat detection + reclaim at scale.
const char* kScalePlan =
    "seed 9\n"
    "heartbeat period=0.5 timeout=3\n"
    "taskfail prob=0.08\n"
    "crash node=100 at=30\n"
    "crash node=700 at=40 restart=90\n";

struct Outcome {
  JobResult result;
  faults::FaultStats stats;
};

Outcome run_faulted(int slaves, std::uint64_t seed) {
  SimulationOptions opt;
  opt.cluster = cluster::scaled_spec(slaves);
  opt.seed = seed;
  opt.fault_plan = faults::FaultPlan::parse(kScalePlan);
  Simulation sim(opt);
  JobSpec spec = workloads::make_terasort(sim, mebibytes(128.0 * 48), 12);
  spec.speculative_execution = true;
  Outcome out;
  sim.submit_job(std::move(spec),
                 [&](const JobResult& r) { out.result = r; });
  sim.run();
  out.stats = sim.fault_injector()->stats();
  return out;
}

Outcome run_faulted_1024(std::uint64_t seed) { return run_faulted(1023, seed); }

// Reports carry every attempt (retries, speculative backups); the job is
// whole when every task index has at least one non-failed attempt.
std::size_t completed_tasks(const std::vector<TaskReport>& reports) {
  std::set<int> done;
  for (const TaskReport& r : reports) {
    if (!r.failed_oom && !r.failed_injected) done.insert(r.task.index);
  }
  return done.size();
}

TEST(ScaleSmoke, FaultedTerasortOn1024NodesCompletesAndRecovers) {
  const Outcome out = run_faulted_1024(17);
  EXPECT_GE(out.result.map_reports.size(), 48u);
  EXPECT_EQ(completed_tasks(out.result.map_reports), 48u);
  EXPECT_EQ(completed_tasks(out.result.reduce_reports), 12u);
  EXPECT_GT(out.result.exec_time(), 0.0);
  // The plan must actually have bitten: killed attempts were retried.
  EXPECT_GT(out.stats.injected_task_failures, 0);
  EXPECT_GT(out.result.counters.failed_task_attempts, 0);
}

TEST(ScaleSmoke, FaultedRunAtScaleIsSeedDeterministic) {
  const Outcome a = run_faulted_1024(17);
  const Outcome b = run_faulted_1024(17);
  EXPECT_DOUBLE_EQ(a.result.finish_time, b.result.finish_time);
  EXPECT_EQ(a.result.counters.failed_task_attempts,
            b.result.counters.failed_task_attempts);
  EXPECT_EQ(a.stats.injected_task_failures,
            b.stats.injected_task_failures);
}

// The 10k regime: 10,239 slaves is ~10x past the point where any residual
// O(n)-per-event scan or O(log n) queue operation turns the run from
// seconds into minutes. Faults + speculation keep the event pattern
// adversarial (cancels racing completions feed the queue's tombstone
// path).
TEST(ScaleSmoke, FaultedTerasortOn10240NodesCompletesAndRecovers) {
  const Outcome out = run_faulted(10239, 17);
  EXPECT_GE(out.result.map_reports.size(), 48u);
  EXPECT_EQ(completed_tasks(out.result.map_reports), 48u);
  EXPECT_EQ(completed_tasks(out.result.reduce_reports), 12u);
  EXPECT_GT(out.result.exec_time(), 0.0);
  EXPECT_GT(out.stats.injected_task_failures, 0);
}

TEST(ScaleSmoke, FaultedRunAt10240NodesIsSeedDeterministic) {
  const Outcome a = run_faulted(10239, 17);
  const Outcome b = run_faulted(10239, 17);
  EXPECT_DOUBLE_EQ(a.result.finish_time, b.result.finish_time);
  EXPECT_EQ(a.result.counters.failed_task_attempts,
            b.result.counters.failed_task_attempts);
  EXPECT_EQ(a.stats.injected_task_failures, b.stats.injected_task_failures);
}

}  // namespace
}  // namespace mron::mapreduce
