// Cross-module property tests: invariants that must hold for any workload
// shape, checked over randomized job specifications.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "mapreduce/simulation.h"

namespace mron {
namespace {

using mapreduce::JobConfig;
using mapreduce::JobResult;
using mapreduce::JobSpec;
using mapreduce::Simulation;
using mapreduce::SimulationOptions;

SimulationOptions tiny_cluster(std::uint64_t seed) {
  SimulationOptions opt;
  opt.cluster.num_slaves = 4;
  opt.cluster.rack_sizes = {2, 2};
  opt.seed = seed;
  return opt;
}

JobSpec random_job(Simulation& sim, Rng& rng) {
  JobSpec spec;
  spec.name = "random";
  const int blocks = static_cast<int>(rng.uniform_int(4, 24));
  spec.input =
      sim.load_dataset("in", mebibytes(128.0 * blocks));
  spec.num_reduces = static_cast<int>(rng.uniform_int(1, 8));
  spec.profile.map_cpu_secs_per_mib = rng.uniform(0.02, 0.8);
  spec.profile.map_output_ratio = rng.uniform(0.05, 1.5);
  spec.profile.combiner_ratio = rng.uniform(0.2, 1.0);
  spec.profile.map_record_bytes = rng.uniform(16, 400);
  spec.profile.reduce_cpu_secs_per_mib = rng.uniform(0.02, 0.3);
  spec.profile.reduce_output_ratio = rng.uniform(0.1, 1.0);
  spec.profile.partition_skew_cv = rng.uniform(0.0, 0.5);
  return spec;
}

JobConfig random_config(Rng& rng) {
  const auto& reg = mapreduce::ParamRegistry::standard();
  JobConfig cfg;
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const auto& p = reg.at(i);
    reg.set(cfg, i, rng.uniform(p.min, p.max));
  }
  mapreduce::clamp_constraints(cfg);
  return cfg;
}

// Property: for any job/config combination, the job completes, every byte
// of combined map output reaches exactly one reducer, and spill records are
// at least the optimal count.
TEST(EndToEndProperty, ConservationAndBoundsForRandomJobs) {
  Rng rng(20260706);
  for (int trial = 0; trial < 12; ++trial) {
    Simulation sim(tiny_cluster(1000 + static_cast<std::uint64_t>(trial)));
    JobSpec spec = random_job(sim, rng);
    spec.config = random_config(rng);
    const bool has_reducers = spec.num_reduces > 0;
    const JobResult r = sim.run_job(std::move(spec));

    // Completion.
    ASSERT_GT(r.exec_time(), 0.0) << "trial " << trial;

    // Spill lower bound.
    ASSERT_GE(r.counters.map.spilled_records,
              r.counters.map.combine_output_records)
        << "trial " << trial;

    // Shuffle conservation (within rounding): reducers received the
    // combiner output.
    if (has_reducers) {
      Bytes shuffled{0};
      for (const auto& rep : r.reduce_reports) {
        shuffled += rep.counters.shuffle_bytes;
      }
      // Expected combined output can be derived from the map counters.
      // combined bytes = output bytes * combiner ratio; reconstruct from
      // records to avoid relying on profile internals.
      const double expect =
          r.counters.map.map_output_bytes.as_double() *
          (static_cast<double>(r.counters.map.combine_output_records) /
           std::max<double>(
               1.0,
               static_cast<double>(r.counters.map.map_output_records)));
      ASSERT_NEAR(shuffled.as_double(), expect, expect * 0.05 + 1e6)
          << "trial " << trial;
    }
  }
}

// Property: determinism — identical seeds give identical results, for any
// random spec.
TEST(EndToEndProperty, DeterministicUnderRandomSpecs) {
  Rng rng_a(7), rng_b(7);
  for (int trial = 0; trial < 4; ++trial) {
    Simulation sim_a(tiny_cluster(50 + static_cast<std::uint64_t>(trial)));
    Simulation sim_b(tiny_cluster(50 + static_cast<std::uint64_t>(trial)));
    JobSpec spec_a = random_job(sim_a, rng_a);
    JobSpec spec_b = random_job(sim_b, rng_b);
    const JobResult ra = sim_a.run_job(std::move(spec_a));
    const JobResult rb = sim_b.run_job(std::move(spec_b));
    ASSERT_DOUBLE_EQ(ra.exec_time(), rb.exec_time()) << trial;
    ASSERT_EQ(ra.counters.map.spilled_records,
              rb.counters.map.spilled_records);
  }
}

// Property: growing io.sort.mb (with everything else fixed) never increases
// map-side spill records end-to-end.
TEST(EndToEndProperty, SpillsMonotoneInSortBuffer) {
  std::int64_t prev = -1;
  for (double sort_mb : {64.0, 128.0, 256.0, 512.0, 768.0}) {
    Simulation sim(tiny_cluster(99));
    JobSpec spec;
    spec.name = "mono";
    spec.input = sim.load_dataset("in", mebibytes(128.0 * 8));
    spec.num_reduces = 2;
    spec.config.io_sort_mb = sort_mb;
    spec.config.map_memory_mb = 1536;  // room for the largest buffer
    const JobResult r = sim.run_job(std::move(spec));
    if (prev >= 0) {
      ASSERT_LE(r.counters.map.spilled_records, prev) << sort_mb;
    }
    prev = r.counters.map.spilled_records;
  }
}

// Property: the scheduler never over-commits a node, under any random mix
// of concurrent jobs (checked implicitly by Node::allocate's invariant
// CHECK; this test just drives the mix).
TEST(EndToEndProperty, ConcurrentRandomJobsNeverOvercommit) {
  Rng rng(31);
  Simulation sim(tiny_cluster(123));
  int done = 0;
  for (int j = 0; j < 3; ++j) {
    JobSpec spec = random_job(sim, rng);
    spec.config = random_config(rng);
    sim.submit_job(std::move(spec),
                   [&](const JobResult&) { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 3);
}

}  // namespace
}  // namespace mron
