// Whole-simulation queue-backend equivalence: the calendar-queue engine
// must be observably indistinguishable from the binary-heap reference.
// Not "close" — byte-identical: same JobResult timings, same RNG-driven
// placement and failure draws, and (under observation) the exported run
// report equal byte for byte, with and without an active fault plan. This
// is the top of the pinning pyramid: the randomized engine property test
// (tests/sim/calendar_queue_test.cc) proves dispatch-order equality per
// event; this proves nothing downstream can tell the backends apart.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "faults/fault_plan.h"
#include "mapreduce/report_rollup.h"
#include "mapreduce/simulation.h"
#include "obs/enabled.h"
#include "sim/engine.h"
#include "workloads/benchmarks.h"

namespace mron::mapreduce {
namespace {

const char* kFaultPlan =
    "seed 31\n"
    "heartbeat period=0.5 timeout=3\n"
    "taskfail prob=0.05\n"
    "crash node=4 at=40 restart=85\n"
    "degrade node=2 from=10 until=100 disk=0.2 nic=0.4\n";

struct RunOutcome {
  JobResult result;
  std::string report;  // empty unless built with observation on
};

RunOutcome run_once(sim::QueueKind queue, bool faulted, bool observe) {
  SimulationOptions opt;
  opt.cluster.num_slaves = 8;
  opt.cluster.rack_sizes = {4, 4};
  opt.seed = 23;
  opt.event_queue = queue;
  opt.observe = observe;
  if (faulted) opt.fault_plan = faults::FaultPlan::parse(kFaultPlan);
  Simulation sim(opt);
  JobSpec spec = workloads::make_terasort(sim, mebibytes(128.0 * 24), 6);
  spec.speculative_execution = faulted;
  const JobConfig config = spec.config;
  RunOutcome out;
  sim.submit_job(std::move(spec),
                 [&](const JobResult& r) { out.result = r; });
  sim.run();
  if (observe) {
    out.report = run_report_json(
        sim, {{&out.result, &config}},
        {{"app", "terasort"}, {"faulted", faulted ? "1" : "0"}});
  }
  return out;
}

void expect_identical(const RunOutcome& cal, const RunOutcome& heap) {
  EXPECT_DOUBLE_EQ(cal.result.finish_time, heap.result.finish_time);
  EXPECT_DOUBLE_EQ(cal.result.submit_time, heap.result.submit_time);
  EXPECT_EQ(cal.result.injected_failures, heap.result.injected_failures);
  EXPECT_EQ(cal.result.speculative_launches,
            heap.result.speculative_launches);
  EXPECT_EQ(cal.result.speculative_wins, heap.result.speculative_wins);
  ASSERT_EQ(cal.result.map_reports.size(), heap.result.map_reports.size());
  for (std::size_t i = 0; i < cal.result.map_reports.size(); ++i) {
    EXPECT_DOUBLE_EQ(cal.result.map_reports[i].start_time,
                     heap.result.map_reports[i].start_time);
    EXPECT_DOUBLE_EQ(cal.result.map_reports[i].end_time,
                     heap.result.map_reports[i].end_time);
    EXPECT_EQ(cal.result.map_reports[i].node.value(),
              heap.result.map_reports[i].node.value());
  }
  ASSERT_EQ(cal.result.reduce_reports.size(),
            heap.result.reduce_reports.size());
  for (std::size_t i = 0; i < cal.result.reduce_reports.size(); ++i) {
    EXPECT_DOUBLE_EQ(cal.result.reduce_reports[i].end_time,
                     heap.result.reduce_reports[i].end_time);
  }
}

TEST(QueueEquivalence, CleanRunMatchesHeapExactly) {
  expect_identical(run_once(sim::QueueKind::kCalendar, false, false),
                   run_once(sim::QueueKind::kBinaryHeap, false, false));
}

TEST(QueueEquivalence, FaultedSpeculativeRunMatchesHeapExactly) {
  // Crashes, retries, and speculative races are the adversarial case: one
  // reordered event anywhere flips which attempt wins and the timings
  // diverge loudly.
  expect_identical(run_once(sim::QueueKind::kCalendar, true, false),
                   run_once(sim::QueueKind::kBinaryHeap, true, false));
}

#if MRON_OBS_ENABLED

TEST(QueueEquivalence, RunReportIsByteIdenticalAcrossBackends) {
  const RunOutcome cal = run_once(sim::QueueKind::kCalendar, false, true);
  const RunOutcome heap = run_once(sim::QueueKind::kBinaryHeap, false, true);
  ASSERT_FALSE(cal.report.empty());
  EXPECT_EQ(cal.report, heap.report);
}

TEST(QueueEquivalence, FaultedRunReportIsByteIdenticalAcrossBackends) {
  const RunOutcome cal = run_once(sim::QueueKind::kCalendar, true, true);
  const RunOutcome heap = run_once(sim::QueueKind::kBinaryHeap, true, true);
  ASSERT_FALSE(cal.report.empty());
  EXPECT_EQ(cal.report, heap.report);
  // The report's sim.queue.* gauges are part of what must agree: they are
  // defined backend-independently (live events, stale tombstones, slot
  // capacity), so their sampled values match too.
  EXPECT_NE(cal.report.find("sim.queue.live"), std::string::npos);
}

#endif  // MRON_OBS_ENABLED

}  // namespace
}  // namespace mron::mapreduce
