#include <gtest/gtest.h>

#include "baselines/genetic_tuner.h"
#include "common/check.h"
#include "baselines/offline_guide.h"
#include "workloads/benchmarks.h"

namespace mron::baselines {
namespace {

using mapreduce::JobConfig;
using mapreduce::JobSpec;
using mapreduce::Simulation;
using mapreduce::SimulationOptions;
using workloads::Benchmark;
using workloads::Corpus;

TEST(OfflineGuide, SizesSortBufferForSingleSpill) {
  SimulationOptions opt;
  opt.cluster.num_slaves = 2;
  opt.cluster.rack_sizes = {1, 1};
  Simulation sim(opt);
  const JobSpec spec = workloads::make_terasort(sim, gibibytes(10));
  const JobConfig cfg = offline_guide_config(spec, mebibytes(128), 80);
  // Terasort map output = 128 MiB per split; the buffer must hold it.
  EXPECT_GT(cfg.io_sort_mb, 128);
  EXPECT_DOUBLE_EQ(cfg.sort_spill_percent, 0.99);
  JobConfig copy = cfg;
  EXPECT_EQ(mapreduce::clamp_constraints(copy), 0);  // already consistent
}

TEST(OfflineGuide, ContainerFitsWorkingSetAndBuffer) {
  SimulationOptions opt;
  opt.cluster.num_slaves = 2;
  opt.cluster.rack_sizes = {1, 1};
  Simulation sim(opt);
  const JobSpec spec = workloads::make_terasort(sim, gibibytes(10));
  const JobConfig cfg = offline_guide_config(spec, mebibytes(128), 80);
  EXPECT_GE(cfg.map_memory_mb,
            spec.profile.map_working_set.mib() + cfg.io_sort_mb);
}

TEST(OfflineGuide, ComputeJobGetsMoreVcores) {
  const JobSpec bbp = workloads::make_bbp(100);
  const JobConfig cfg = offline_guide_config(bbp, Bytes(0), 100);
  EXPECT_GE(cfg.map_cpu_vcores, 2);  // BBP's map demand is 2 cores
}

TEST(OfflineGuide, ReduceBuffersAvoidSpillsWhenPartitionFits) {
  SimulationOptions opt;
  opt.cluster.num_slaves = 2;
  opt.cluster.rack_sizes = {1, 1};
  Simulation sim(opt);
  // Small Terasort: 16 maps x 128 MiB -> 4 reducers x ~512 MiB... too big.
  // WordCount: 16 maps, combiner shrinks shuffle to ~43 MiB/reducer: fits.
  JobSpec spec;
  spec.name = "wc";
  spec.input = sim.load_dataset("in", mebibytes(128 * 16));
  spec.num_reduces = 16;
  spec.profile = workloads::profile_for(Benchmark::WordCount,
                                        Corpus::Wikipedia);
  const JobConfig cfg = offline_guide_config(spec, mebibytes(128), 16);
  EXPECT_GT(cfg.reduce_input_buffer_percent, 0.0);
  EXPECT_DOUBLE_EQ(cfg.merge_inmem_threshold, 0);
}

TEST(OptimalSpills, MatchesCombinerOutput) {
  const auto profile =
      workloads::profile_for(Benchmark::Terasort, Corpus::Synthetic);
  const auto records =
      optimal_map_spill_records(profile, gibibytes(100), 800);
  // 100 GiB of 100-byte records.
  EXPECT_NEAR(static_cast<double>(records),
              gibibytes(100).as_double() / 100.0, 1e6);
}

TEST(GeneticTuner, StaysWithinRunBudget) {
  GeneticOfflineTuner ga;
  int evals = 0;
  const JobConfig best = ga.tune(
      [&](const JobConfig& cfg) {
        ++evals;
        return 100.0 + cfg.io_sort_mb;  // cheaper with a small buffer
      },
      25);
  EXPECT_EQ(evals, 25);
  EXPECT_EQ(ga.runs_used(), 25);
  EXPECT_LT(best.io_sort_mb, 300);  // pressure worked
}

TEST(GeneticTuner, FindsAnalyticOptimum) {
  GeneticOfflineTuner ga;
  const JobConfig best = ga.tune(
      [](const JobConfig& cfg) {
        // Bowl centered at io.sort.mb = 400, map mem = 1500.
        const double a = (cfg.io_sort_mb - 400) / 1000.0;
        const double b = (cfg.map_memory_mb - 1500) / 2560.0;
        return a * a + b * b;
      },
      40);
  EXPECT_NEAR(best.io_sort_mb, 400, 250);
  EXPECT_NEAR(best.map_memory_mb, 1500, 700);
  EXPECT_LT(ga.best_seconds(), 0.1);
}

TEST(GeneticTuner, NeverWorseThanSeededDefault) {
  GeneticOfflineTuner ga;
  // Only the (integer-valued, exactly representable) default buffer/memory
  // pair scores well; everything else is worse. The seeded default
  // individual guarantees the GA never ends above it.
  const double def_fitness = 5.0;
  ga.tune(
      [&](const JobConfig& cfg) {
        const bool is_default = std::abs(cfg.io_sort_mb - 100) < 0.5 &&
                                std::abs(cfg.map_memory_mb - 1024) < 0.5;
        return is_default ? def_fitness : def_fitness + 1.0;
      },
      20);
  EXPECT_LE(ga.best_seconds(), def_fitness);
}

TEST(GeneticTuner, RejectsTinyBudget) {
  GeneticOfflineTuner ga;
  EXPECT_THROW(
      ga.tune([](const JobConfig&) { return 1.0; }, 2),
      CheckError);
}

}  // namespace
}  // namespace mron::baselines
