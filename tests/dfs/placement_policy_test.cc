// Placement-policy edge cases (dfs/placement_policy.h): every backend must
// survive degenerate topologies — replication above the node count (clamp,
// don't loop), single-rack clusters, and one-node clusters — and each
// variant must deliver its advertised shape on a topology that can satisfy
// it. The block's recorded target is always what placement actually
// produced, so degenerate placements never park in the under-replication
// queue.
#include "dfs/placement_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dfs/dfs.h"

namespace mron::dfs {
namespace {

const char* const kPolicies[] = {"rack-aware", "same-rack", "spread"};

cluster::ClusterSpec spec_for(std::vector<int> racks) {
  cluster::ClusterSpec spec;
  spec.rack_sizes = std::move(racks);
  spec.num_slaves = 0;
  for (int r : spec.rack_sizes) spec.num_slaves += r;
  return spec;
}

void expect_valid_placement(const cluster::Topology& topo, const Block& b) {
  const std::set<cluster::NodeId> uniq(b.replicas.begin(), b.replicas.end());
  EXPECT_EQ(uniq.size(), b.replicas.size()) << "duplicate replica";
  EXPECT_LE(static_cast<int>(b.replicas.size()), topo.num_nodes());
  EXPECT_EQ(b.target, static_cast<int>(b.replicas.size()));
  EXPECT_EQ(b.live, b.target);
  for (auto r : b.replicas) {
    EXPECT_GE(r.value(), 0);
    EXPECT_LT(r.value(), topo.num_nodes());
  }
}

TEST(PlacementPolicyFactory, NamesRoundTrip) {
  EXPECT_STREQ(make_placement_policy("")->name(), "rack-aware");
  for (const char* name : kPolicies) {
    EXPECT_STREQ(make_placement_policy(name)->name(), name);
  }
}

TEST(PlacementPolicyEdge, ReplicationAboveNodeCountClamps) {
  const cluster::Topology topo(spec_for({2, 2}));
  for (const char* name : kPolicies) {
    Dfs dfs(topo, Rng(7), mebibytes(128), /*replication=*/10,
            make_placement_policy(name));
    const auto id = dfs.create_dataset("d", mebibytes(128.0 * 6));
    for (const auto& b : dfs.dataset(id).blocks) {
      expect_valid_placement(topo, b);
      EXPECT_LE(static_cast<int>(b.replicas.size()), 4) << name;
      EXPECT_GE(static_cast<int>(b.replicas.size()), 1) << name;
    }
    EXPECT_EQ(dfs.under_replicated_blocks(), 0u) << name;
  }
}

TEST(PlacementPolicyEdge, SingleRackTopology) {
  const cluster::Topology topo(spec_for({5}));
  for (const char* name : kPolicies) {
    Dfs dfs(topo, Rng(7), mebibytes(128), /*replication=*/3,
            make_placement_policy(name));
    const auto id = dfs.create_dataset("d", mebibytes(128.0 * 8));
    for (const auto& b : dfs.dataset(id).blocks) {
      expect_valid_placement(topo, b);
      // With one rack no policy can isolate across racks; all three must
      // still place distinct in-rack replicas rather than loop or bail.
      EXPECT_EQ(b.replicas.size(), 3u) << name;
    }
    EXPECT_EQ(dfs.under_replicated_blocks(), 0u) << name;
  }
}

TEST(PlacementPolicyEdge, OneNodeCluster) {
  const cluster::Topology topo(spec_for({1}));
  for (const char* name : kPolicies) {
    Dfs dfs(topo, Rng(7), mebibytes(128), /*replication=*/3,
            make_placement_policy(name));
    const auto id = dfs.create_dataset("d", mebibytes(300));
    for (const auto& b : dfs.dataset(id).blocks) {
      expect_valid_placement(topo, b);
      ASSERT_EQ(b.replicas.size(), 1u) << name;
      EXPECT_EQ(b.replicas[0], cluster::NodeId(0)) << name;
    }
    EXPECT_EQ(dfs.under_replicated_blocks(), 0u) << name;
  }
}

TEST(PlacementPolicyShape, SameRackKeepsEveryReplicaOnOneRack) {
  const cluster::Topology topo(spec_for({4, 4, 4}));
  Dfs dfs(topo, Rng(11), mebibytes(128), 3, make_placement_policy("same-rack"));
  const auto id = dfs.create_dataset("d", mebibytes(128.0 * 16));
  for (const auto& b : dfs.dataset(id).blocks) {
    ASSERT_EQ(b.replicas.size(), 3u);
    for (auto r : b.replicas) {
      EXPECT_EQ(topo.rack_of(r), topo.rack_of(b.replicas[0]));
    }
  }
}

TEST(PlacementPolicyShape, SameRackClampsToRackSize) {
  // Racks of 2 cannot hold 3 same-rack replicas: the target shrinks to
  // the rack size instead of spilling off-rack or looping.
  const cluster::Topology topo(spec_for({2, 2, 2}));
  Dfs dfs(topo, Rng(11), mebibytes(128), 3, make_placement_policy("same-rack"));
  const auto id = dfs.create_dataset("d", mebibytes(128.0 * 8));
  for (const auto& b : dfs.dataset(id).blocks) {
    expect_valid_placement(topo, b);
    ASSERT_EQ(b.replicas.size(), 2u);
    EXPECT_EQ(topo.rack_of(b.replicas[0]), topo.rack_of(b.replicas[1]));
  }
  EXPECT_EQ(dfs.under_replicated_blocks(), 0u);
}

TEST(PlacementPolicyShape, SpreadUsesDistinctRacksWhileAvailable) {
  const cluster::Topology topo(spec_for({4, 4, 4}));
  Dfs dfs(topo, Rng(11), mebibytes(128), 3, make_placement_policy("spread"));
  const auto id = dfs.create_dataset("d", mebibytes(128.0 * 16));
  for (const auto& b : dfs.dataset(id).blocks) {
    ASSERT_EQ(b.replicas.size(), 3u);
    std::set<cluster::RackId> racks;
    for (auto r : b.replicas) racks.insert(topo.rack_of(r));
    EXPECT_EQ(racks.size(), 3u);
  }
}

TEST(PlacementPolicyShape, SpreadFallsBackToSparesWhenRacksRunOut) {
  // Two racks, four replicas: first two on distinct racks, the rest on
  // uniform spares — still distinct nodes, full target met.
  const cluster::Topology topo(spec_for({3, 3}));
  Dfs dfs(topo, Rng(11), mebibytes(128), 4, make_placement_policy("spread"));
  const auto id = dfs.create_dataset("d", mebibytes(128.0 * 8));
  for (const auto& b : dfs.dataset(id).blocks) {
    expect_valid_placement(topo, b);
    ASSERT_EQ(b.replicas.size(), 4u);
    std::set<cluster::RackId> racks;
    for (auto r : b.replicas) racks.insert(topo.rack_of(r));
    EXPECT_EQ(racks.size(), 2u);
  }
}

TEST(PlacementPolicyShape, RackAwareIsolatesAcrossTwoRacks) {
  // The pinned HDFS shape on a topology that can satisfy it (the legacy
  // RNG-stream equivalence is pinned separately by the equivalence suite).
  const cluster::Topology topo(spec_for({4, 4}));
  Dfs dfs(topo, Rng(11), mebibytes(128), 3,
          make_placement_policy("rack-aware"));
  const auto id = dfs.create_dataset("d", mebibytes(128.0 * 16));
  for (const auto& b : dfs.dataset(id).blocks) {
    ASSERT_EQ(b.replicas.size(), 3u);
    EXPECT_NE(topo.rack_of(b.replicas[0]), topo.rack_of(b.replicas[1]));
    EXPECT_EQ(topo.rack_of(b.replicas[1]), topo.rack_of(b.replicas[2]));
  }
}

TEST(PlacementPolicyShape, PerDatasetReplicationOverride) {
  const cluster::Topology topo(spec_for({4, 4}));
  Dfs dfs(topo, Rng(11), mebibytes(128), 3,
          make_placement_policy("rack-aware"));
  const auto one = dfs.create_dataset("single", mebibytes(256), 1);
  const auto five = dfs.create_dataset("wide", mebibytes(256), 5);
  const auto dflt = dfs.create_dataset("default", mebibytes(256));
  for (const auto& b : dfs.dataset(one).blocks) {
    EXPECT_EQ(b.replicas.size(), 1u);
  }
  for (const auto& b : dfs.dataset(five).blocks) {
    EXPECT_EQ(b.replicas.size(), 5u);
  }
  for (const auto& b : dfs.dataset(dflt).blocks) {
    EXPECT_EQ(b.replicas.size(), 3u);
  }
}

}  // namespace
}  // namespace mron::dfs
