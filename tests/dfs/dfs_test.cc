#include "dfs/dfs.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace mron::dfs {
namespace {

class DfsTest : public ::testing::Test {
 protected:
  cluster::ClusterSpec spec;
  cluster::Topology topo{spec};
  Dfs dfs{topo, Rng(42)};
};

TEST_F(DfsTest, BlockCountAndSizes) {
  const auto id = dfs.create_dataset("wiki", gibibytes(1));
  const auto& ds = dfs.dataset(id);
  // 1 GiB / 128 MiB = 8 full blocks.
  EXPECT_EQ(ds.blocks.size(), 8u);
  Bytes total{0};
  for (const auto& b : ds.blocks) total += b.size;
  EXPECT_EQ(total, gibibytes(1));
}

TEST_F(DfsTest, PartialLastBlock) {
  const auto id = dfs.create_dataset("odd", mebibytes(300));
  const auto& ds = dfs.dataset(id);
  ASSERT_EQ(ds.blocks.size(), 3u);
  EXPECT_EQ(ds.blocks[0].size, mebibytes(128));
  EXPECT_EQ(ds.blocks[1].size, mebibytes(128));
  EXPECT_EQ(ds.blocks[2].size, mebibytes(44));
}

TEST_F(DfsTest, ReplicationPolicy) {
  const auto id = dfs.create_dataset("d", gibibytes(10));
  for (const auto& b : dfs.dataset(id).blocks) {
    ASSERT_EQ(b.replicas.size(), 3u);
    // All replicas distinct.
    std::set<cluster::NodeId> uniq(b.replicas.begin(), b.replicas.end());
    EXPECT_EQ(uniq.size(), 3u);
    // Second replica off the first's rack; third on the second's rack.
    EXPECT_FALSE(topo.same_rack(b.replicas[0], b.replicas[1]));
    EXPECT_TRUE(topo.same_rack(b.replicas[1], b.replicas[2]));
  }
}

TEST_F(DfsTest, LocalityClassification) {
  const auto id = dfs.create_dataset("d", mebibytes(128));
  const auto& block = dfs.dataset(id).blocks[0];
  EXPECT_EQ(dfs.locality(id, 0, block.replicas[0]), Locality::NodeLocal);
  // A rack-mate of a replica that is not itself a replica.
  for (auto n : topo.all_nodes()) {
    const bool is_replica =
        std::find(block.replicas.begin(), block.replicas.end(), n) !=
        block.replicas.end();
    if (is_replica) continue;
    bool rack_of_replica = false;
    for (auto r : block.replicas) {
      if (topo.same_rack(n, r)) rack_of_replica = true;
    }
    EXPECT_EQ(dfs.locality(id, 0, n),
              rack_of_replica ? Locality::RackLocal : Locality::OffRack);
  }
}

TEST_F(DfsTest, PickReplicaPrefersLocalThenRack) {
  const auto id = dfs.create_dataset("d", mebibytes(128));
  const auto& block = dfs.dataset(id).blocks[0];
  EXPECT_EQ(dfs.pick_replica(id, 0, block.replicas[1]), block.replicas[1]);
  // A non-replica rack-mate of replica 0 gets replica 0 (rack local).
  for (auto n : topo.nodes_in_rack(topo.rack_of(block.replicas[0]))) {
    if (std::find(block.replicas.begin(), block.replicas.end(), n) !=
        block.replicas.end()) {
      continue;
    }
    const auto picked = dfs.pick_replica(id, 0, n);
    EXPECT_TRUE(topo.same_rack(picked, n));
    break;
  }
}

TEST_F(DfsTest, PlacementIsRoughlyBalanced) {
  const auto id = dfs.create_dataset("big", gibibytes(90));
  std::vector<int> per_node(static_cast<std::size_t>(topo.num_nodes()), 0);
  int total = 0;
  for (const auto& b : dfs.dataset(id).blocks) {
    for (auto r : b.replicas) {
      ++per_node[static_cast<std::size_t>(r.value())];
      ++total;
    }
  }
  const double avg = static_cast<double>(total) / topo.num_nodes();
  for (int c : per_node) {
    EXPECT_GT(c, avg * 0.5);
    EXPECT_LT(c, avg * 1.5);
  }
}

TEST_F(DfsTest, EmptyDatasetHasNoBlocks) {
  const auto id = dfs.create_dataset("empty", Bytes(0));
  EXPECT_TRUE(dfs.dataset(id).blocks.empty());
}

TEST(DfsSingleRack, SecondReplicaFallsBackToSameRack) {
  cluster::ClusterSpec spec;
  spec.num_slaves = 3;
  spec.rack_sizes = {3};
  cluster::Topology topo(spec);
  Dfs dfs(topo, Rng(1));
  const auto id = dfs.create_dataset("d", mebibytes(256));
  for (const auto& b : dfs.dataset(id).blocks) {
    ASSERT_GE(b.replicas.size(), 2u);
    EXPECT_NE(b.replicas[0], b.replicas[1]);
  }
}

}  // namespace
}  // namespace mron::dfs
