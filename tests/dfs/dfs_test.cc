#include "dfs/dfs.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace mron::dfs {
namespace {

class DfsTest : public ::testing::Test {
 protected:
  cluster::ClusterSpec spec;
  cluster::Topology topo{spec};
  Dfs dfs{topo, Rng(42)};
};

TEST_F(DfsTest, BlockCountAndSizes) {
  const auto id = dfs.create_dataset("wiki", gibibytes(1));
  const auto& ds = dfs.dataset(id);
  // 1 GiB / 128 MiB = 8 full blocks.
  EXPECT_EQ(ds.blocks.size(), 8u);
  Bytes total{0};
  for (const auto& b : ds.blocks) total += b.size;
  EXPECT_EQ(total, gibibytes(1));
}

TEST_F(DfsTest, PartialLastBlock) {
  const auto id = dfs.create_dataset("odd", mebibytes(300));
  const auto& ds = dfs.dataset(id);
  ASSERT_EQ(ds.blocks.size(), 3u);
  EXPECT_EQ(ds.blocks[0].size, mebibytes(128));
  EXPECT_EQ(ds.blocks[1].size, mebibytes(128));
  EXPECT_EQ(ds.blocks[2].size, mebibytes(44));
}

TEST_F(DfsTest, ReplicationPolicy) {
  const auto id = dfs.create_dataset("d", gibibytes(10));
  for (const auto& b : dfs.dataset(id).blocks) {
    ASSERT_EQ(b.replicas.size(), 3u);
    // All replicas distinct.
    std::set<cluster::NodeId> uniq(b.replicas.begin(), b.replicas.end());
    EXPECT_EQ(uniq.size(), 3u);
    // Second replica off the first's rack; third on the second's rack.
    EXPECT_FALSE(topo.same_rack(b.replicas[0], b.replicas[1]));
    EXPECT_TRUE(topo.same_rack(b.replicas[1], b.replicas[2]));
  }
}

TEST_F(DfsTest, LocalityClassification) {
  const auto id = dfs.create_dataset("d", mebibytes(128));
  const auto& block = dfs.dataset(id).blocks[0];
  EXPECT_EQ(dfs.locality(id, 0, block.replicas[0]), Locality::NodeLocal);
  // A rack-mate of a replica that is not itself a replica.
  for (auto n : topo.all_nodes()) {
    const bool is_replica =
        std::find(block.replicas.begin(), block.replicas.end(), n) !=
        block.replicas.end();
    if (is_replica) continue;
    bool rack_of_replica = false;
    for (auto r : block.replicas) {
      if (topo.same_rack(n, r)) rack_of_replica = true;
    }
    EXPECT_EQ(dfs.locality(id, 0, n),
              rack_of_replica ? Locality::RackLocal : Locality::OffRack);
  }
}

TEST_F(DfsTest, PickReplicaPrefersLocalThenRack) {
  const auto id = dfs.create_dataset("d", mebibytes(128));
  const auto& block = dfs.dataset(id).blocks[0];
  EXPECT_EQ(dfs.pick_replica(id, 0, block.replicas[1]), block.replicas[1]);
  // A non-replica rack-mate of replica 0 gets replica 0 (rack local).
  for (auto n : topo.nodes_in_rack(topo.rack_of(block.replicas[0]))) {
    if (std::find(block.replicas.begin(), block.replicas.end(), n) !=
        block.replicas.end()) {
      continue;
    }
    const auto picked = dfs.pick_replica(id, 0, n);
    EXPECT_TRUE(topo.same_rack(picked, n));
    break;
  }
}

TEST_F(DfsTest, PlacementIsRoughlyBalanced) {
  const auto id = dfs.create_dataset("big", gibibytes(90));
  std::vector<int> per_node(static_cast<std::size_t>(topo.num_nodes()), 0);
  int total = 0;
  for (const auto& b : dfs.dataset(id).blocks) {
    for (auto r : b.replicas) {
      ++per_node[static_cast<std::size_t>(r.value())];
      ++total;
    }
  }
  const double avg = static_cast<double>(total) / topo.num_nodes();
  for (int c : per_node) {
    EXPECT_GT(c, avg * 0.5);
    EXPECT_LT(c, avg * 1.5);
  }
}

TEST_F(DfsTest, EmptyDatasetHasNoBlocks) {
  const auto id = dfs.create_dataset("empty", Bytes(0));
  EXPECT_TRUE(dfs.dataset(id).blocks.empty());
}

// --- liveness: dead-replica awareness ---------------------------------------

// Three racks so a reader can be genuinely off-rack from every replica;
// one block keeps the replica set small enough to enumerate.
class DfsLivenessTest : public ::testing::Test {
 protected:
  static cluster::ClusterSpec three_racks() {
    cluster::ClusterSpec spec;
    spec.num_slaves = 9;
    spec.rack_sizes = {3, 3, 3};
    return spec;
  }
  cluster::ClusterSpec spec = three_racks();
  cluster::Topology topo{spec};
  Dfs dfs{topo, Rng(42)};
};

TEST_F(DfsLivenessTest, PickReplicaSkipsDeadHosts) {
  const auto id = dfs.create_dataset("d", mebibytes(128));
  const auto& block = dfs.dataset(id).blocks[0];
  ASSERT_EQ(block.replicas.size(), 3u);
  dfs.on_node_lost(block.replicas[0]);
  // The dead host's own read falls through to a live replica.
  const auto picked = dfs.pick_replica(id, 0, block.replicas[0]);
  ASSERT_TRUE(picked.valid());
  EXPECT_NE(picked, block.replicas[0]);
  EXPECT_TRUE(picked == block.replicas[1] || picked == block.replicas[2]);
  // Liveness classification follows: the dead local replica no longer
  // counts as NodeLocal.
  EXPECT_NE(dfs.locality(id, 0, block.replicas[0]), Locality::NodeLocal);
}

TEST_F(DfsLivenessTest, OffRackReaderGetsClosestLiveReplica) {
  // Regression for the pick_replica fallback: with no node-local or
  // rack-local candidate it used to return replicas[0] unconditionally —
  // even when that host was dead.
  const auto id = dfs.create_dataset("d", mebibytes(128));
  const auto& block = dfs.dataset(id).blocks[0];
  std::set<cluster::RackId> replica_racks;
  for (auto r : block.replicas) replica_racks.insert(topo.rack_of(r));
  cluster::NodeId off_rack_reader;
  for (auto n : topo.all_nodes()) {
    if (replica_racks.count(topo.rack_of(n)) == 0) off_rack_reader = n;
  }
  ASSERT_TRUE(off_rack_reader.valid());
  ASSERT_EQ(dfs.locality(id, 0, off_rack_reader), Locality::OffRack);
  EXPECT_EQ(dfs.pick_replica(id, 0, off_rack_reader), block.replicas[0]);
  dfs.on_node_lost(block.replicas[0]);
  const auto picked = dfs.pick_replica(id, 0, off_rack_reader);
  ASSERT_TRUE(picked.valid());
  EXPECT_NE(picked, block.replicas[0]);
  EXPECT_TRUE(dfs.node_alive(picked));
}

TEST_F(DfsLivenessTest, NoLiveReplicaParksWaitersInFifoOrder) {
  const auto id = dfs.create_dataset("d", mebibytes(128));
  const auto replicas = dfs.dataset(id).blocks[0].replicas;
  for (auto r : replicas) dfs.on_node_lost(r);
  EXPECT_FALSE(dfs.has_live_replica(id, 0));
  EXPECT_FALSE(dfs.pick_replica(id, 0, cluster::NodeId(0)).valid());
  EXPECT_EQ(dfs.under_replicated_blocks(), 1u);

  std::vector<int> order;
  dfs.wait_for_block(id, 0, [&] { order.push_back(1); });
  dfs.wait_for_block(id, 0, [&] { order.push_back(2); });
  EXPECT_TRUE(order.empty());
  dfs.on_node_recovered(replicas[1]);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(dfs.has_live_replica(id, 0));
}

TEST_F(DfsLivenessTest, WaiterFiresSynchronouslyWhenAlreadyLive) {
  const auto id = dfs.create_dataset("d", mebibytes(128));
  bool fired = false;
  dfs.wait_for_block(id, 0, [&] { fired = true; });
  EXPECT_TRUE(fired);
}

TEST_F(DfsLivenessTest, AddReplicaRestoresServiceAndFiresWaiters) {
  const auto id = dfs.create_dataset("d", mebibytes(128));
  const auto replicas = dfs.dataset(id).blocks[0].replicas;
  for (auto r : replicas) dfs.on_node_lost(r);
  bool fired = false;
  dfs.wait_for_block(id, 0, [&] { fired = true; });

  cluster::NodeId fresh;
  for (auto n : topo.all_nodes()) {
    if (std::find(replicas.begin(), replicas.end(), n) == replicas.end()) {
      fresh = n;
      break;
    }
  }
  dfs.add_replica(id, 0, fresh);
  EXPECT_TRUE(fired);
  EXPECT_EQ(dfs.live_replicas(id, 0), 1);
  EXPECT_EQ(dfs.pick_replica(id, 0, fresh), fresh);
  const auto& block = dfs.dataset(id).blocks[0];
  EXPECT_NE(std::find(block.replicas.begin(), block.replicas.end(), fresh),
            block.replicas.end());
}

TEST_F(DfsLivenessTest, UnderReplicationQueueOrdersMostEndangeredFirst) {
  const auto a = dfs.create_dataset("a", mebibytes(128));
  const auto b = dfs.create_dataset("b", mebibytes(128));
  const auto& ra = dfs.dataset(a).blocks[0].replicas;
  const auto& rb = dfs.dataset(b).blocks[0].replicas;
  // Drop dataset b's block to one live replica; a loses at least one host
  // too (replica sets overlap on nine nodes). The queue must list blocks
  // in ascending live order with keys that match the actual live counts.
  dfs.on_node_lost(ra[0]);
  for (auto r : rb) {
    if (dfs.live_replicas(b, 0) > 1) dfs.on_node_lost(r);
  }
  ASSERT_EQ(dfs.live_replicas(b, 0), 1);
  ASSERT_GE(dfs.under_replicated_blocks(), 2u);
  int last_live = 0;
  for (const auto& [live, ds, block] : dfs.under_replicated()) {
    EXPECT_GE(live, last_live);
    last_live = live;
    EXPECT_EQ(live, dfs.live_replicas(DatasetId(ds),
                                      static_cast<std::size_t>(block)));
  }
  // The head is a most-endangered block: one live replica.
  EXPECT_EQ(std::get<0>(*dfs.under_replicated().begin()), 1);
}

TEST_F(DfsLivenessTest, LivenessEventsAreIdempotent) {
  const auto id = dfs.create_dataset("d", mebibytes(128));
  const auto& block = dfs.dataset(id).blocks[0];
  dfs.on_node_lost(block.replicas[0]);
  dfs.on_node_lost(block.replicas[0]);
  EXPECT_EQ(dfs.live_replicas(id, 0), 2);
  EXPECT_EQ(dfs.under_replicated_blocks(), 1u);
  dfs.on_node_recovered(block.replicas[0]);
  dfs.on_node_recovered(block.replicas[0]);
  EXPECT_EQ(dfs.live_replicas(id, 0), 3);
  EXPECT_EQ(dfs.under_replicated_blocks(), 0u);
}

TEST(DfsSingleRack, SecondReplicaFallsBackToSameRack) {
  cluster::ClusterSpec spec;
  spec.num_slaves = 3;
  spec.rack_sizes = {3};
  cluster::Topology topo(spec);
  Dfs dfs(topo, Rng(1));
  const auto id = dfs.create_dataset("d", mebibytes(256));
  for (const auto& b : dfs.dataset(id).blocks) {
    ASSERT_GE(b.replicas.size(), 2u);
    EXPECT_NE(b.replicas[0], b.replicas[1]);
  }
}

}  // namespace
}  // namespace mron::dfs
