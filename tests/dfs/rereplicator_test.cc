// The re-replication pipeline (dfs/rereplicator.h), driven through a full
// Simulation so node loss flows RM watchdog -> DFS liveness -> copy
// streams on the simulated hardware: a permanent crash restores every
// affected block to its placement target before drain, recovery respects
// the per-node stream limiter and the bandwidth cap, in-flight copies
// cancel idempotently when their source dies or their block recovers, and
// a reliable cluster schedules nothing at all.
#include "dfs/rereplicator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mapreduce/simulation.h"

namespace mron::dfs {
namespace {

using mapreduce::Simulation;
using mapreduce::SimulationOptions;

SimulationOptions two_racks(std::uint64_t seed) {
  SimulationOptions opt;
  opt.cluster.num_slaves = 6;
  opt.cluster.rack_sizes = {3, 3};
  opt.seed = seed;
  return opt;
}

// Every block of `ds` is back at its placement target with distinct,
// live replicas.
void expect_fully_replicated(const Simulation& sim, DatasetId ds) {
  const Dfs& dfs = sim.dfs();
  std::size_t block = 0;
  for (const auto& b : dfs.dataset(ds).blocks) {
    EXPECT_EQ(dfs.live_replicas(ds, block), b.target);
    const std::set<cluster::NodeId> uniq(b.replicas.begin(),
                                         b.replicas.end());
    EXPECT_EQ(uniq.size(), b.replicas.size());
    ++block;
  }
  EXPECT_EQ(dfs.under_replicated_blocks(), 0u);
}

TEST(Rereplicator, PermanentCrashRestoresTargetReplication) {
  Simulation sim(two_racks(3));
  const auto ds = sim.load_dataset("in", mebibytes(128.0 * 8));
  sim.engine().schedule_at(1.0,
                           [&] { sim.rm().fail_node(cluster::NodeId(2)); });
  sim.run();

  const auto& stats = sim.rereplicator().stats();
  EXPECT_GT(stats.copies_started, 0);
  EXPECT_EQ(stats.copies_completed, stats.copies_started);
  EXPECT_EQ(stats.copies_cancelled, 0);
  EXPECT_GT(stats.bytes_copied, 0.0);
  EXPECT_GT(stats.peak_under_replicated, 0);
  EXPECT_GT(stats.last_fully_replicated, 1.0);
  EXPECT_EQ(sim.rereplicator().active_copies(), 0u);
  expect_fully_replicated(sim, ds);
  // The dead node still appears in replica lists (its disks are gone, not
  // forgotten) but no restored block counts it live, and no new replica
  // landed on it.
  for (const auto& b : sim.dfs().dataset(ds).blocks) {
    const int dead = static_cast<int>(
        std::count(b.replicas.begin(), b.replicas.end(), cluster::NodeId(2)));
    EXPECT_EQ(static_cast<int>(b.replicas.size()), b.target + dead);
  }
}

TEST(Rereplicator, CopiesAreRealTrafficWithBandwidthCap) {
  // One 128 MiB block copy at a 64 MiB/s cap takes at least 2 simulated
  // seconds per leg; recovery of several blocks under the per-node stream
  // limit cannot finish instantaneously after the crash.
  Simulation sim(two_racks(4));
  sim.load_dataset("in", mebibytes(128.0 * 8));
  sim.engine().schedule_at(1.0,
                           [&] { sim.rm().fail_node(cluster::NodeId(1)); });
  sim.run();
  const auto& stats = sim.rereplicator().stats();
  ASSERT_GT(stats.copies_completed, 0);
  EXPECT_GE(stats.last_fully_replicated, 1.0 + 2.0);
  // Bytes tally matches whole blocks.
  EXPECT_DOUBLE_EQ(stats.bytes_copied,
                   mebibytes(128).as_double() * stats.copies_completed);
}

TEST(Rereplicator, TighterStreamLimitSlowsRecovery) {
  auto recovery_time = [](int streams) {
    SimulationOptions opt = two_racks(5);
    opt.dfs_rerepl_streams_per_node = streams;
    Simulation sim(opt);
    sim.load_dataset("in", mebibytes(128.0 * 24));
    sim.engine().schedule_at(1.0,
                             [&] { sim.rm().fail_node(cluster::NodeId(0)); });
    sim.run();
    EXPECT_EQ(sim.dfs().under_replicated_blocks(), 0u);
    EXPECT_EQ(sim.rereplicator().options().max_streams_per_node, streams);
    return sim.rereplicator().stats().last_fully_replicated;
  };
  EXPECT_GT(recovery_time(1), recovery_time(8));
}

TEST(Rereplicator, LowerBandwidthSlowsRecovery) {
  auto recovery_time = [](double bw) {
    SimulationOptions opt = two_racks(6);
    opt.dfs_rerepl_stream_bandwidth = bw;
    Simulation sim(opt);
    sim.load_dataset("in", mebibytes(128.0 * 12));
    sim.engine().schedule_at(1.0,
                             [&] { sim.rm().fail_node(cluster::NodeId(3)); });
    sim.run();
    EXPECT_EQ(sim.dfs().under_replicated_blocks(), 0u);
    return sim.rereplicator().stats().last_fully_replicated;
  };
  EXPECT_GT(recovery_time(16.0 * 1024 * 1024), recovery_time(64.0 * 1024 * 1024));
}

TEST(Rereplicator, SourceDeathMidCopyCancelsIdempotently) {
  // Second crash lands while the first crash's copies are in flight (each
  // 128 MiB leg takes >= 2 s under the default cap): whatever copies the
  // second victim was serving as source or target are torn down, and the
  // survivors still restore every block that kept a live replica.
  Simulation sim(two_racks(7));
  const auto ds = sim.load_dataset("in", mebibytes(128.0 * 24));
  sim.engine().schedule_at(1.0,
                           [&] { sim.rm().fail_node(cluster::NodeId(2)); });
  sim.engine().schedule_at(2.0,
                           [&] { sim.rm().fail_node(cluster::NodeId(4)); });
  sim.run();

  const auto& stats = sim.rereplicator().stats();
  EXPECT_GT(stats.copies_cancelled, 0);
  EXPECT_EQ(stats.copies_completed + stats.copies_cancelled,
            stats.copies_started);
  EXPECT_EQ(sim.rereplicator().active_copies(), 0u);
  // Four live nodes remain — enough for every rep-3 block to recover.
  EXPECT_EQ(sim.dfs().under_replicated_blocks(), 0u);
  std::size_t block = 0;
  for (const auto& b : sim.dfs().dataset(ds).blocks) {
    EXPECT_EQ(sim.dfs().live_replicas(ds, block), b.target);
    ++block;
  }
}

TEST(Rereplicator, NodeRecoveryCancelsRedundantCopies) {
  // The crashed node comes back mid-copy: its disks return, the blocks are
  // back at target, and the now-pointless in-flight copies are cancelled
  // rather than left to land a fourth replica.
  Simulation sim(two_racks(8));
  const auto ds = sim.load_dataset("in", mebibytes(128.0 * 24));
  sim.engine().schedule_at(1.0,
                           [&] { sim.rm().fail_node(cluster::NodeId(2)); });
  sim.engine().schedule_at(2.0,
                           [&] { sim.rm().recover_node(cluster::NodeId(2)); });
  sim.run();

  const auto& stats = sim.rereplicator().stats();
  EXPECT_GT(stats.copies_started, 0);
  EXPECT_GT(stats.copies_cancelled, 0);
  EXPECT_EQ(sim.rereplicator().active_copies(), 0u);
  EXPECT_EQ(sim.dfs().under_replicated_blocks(), 0u);
  // No block ended above its target live count.
  std::size_t block = 0;
  for (const auto& b : sim.dfs().dataset(ds).blocks) {
    EXPECT_LE(sim.dfs().live_replicas(ds, block), b.target);
    ++block;
  }
}

TEST(Rereplicator, ReliableClusterSchedulesNothing) {
  Simulation sim(two_racks(9));
  const auto ds = sim.load_dataset("in", mebibytes(128.0 * 16));
  sim.run();
  const auto& stats = sim.rereplicator().stats();
  EXPECT_EQ(stats.copies_started, 0);
  EXPECT_EQ(stats.copies_completed, 0);
  EXPECT_EQ(stats.copies_cancelled, 0);
  EXPECT_DOUBLE_EQ(stats.bytes_copied, 0.0);
  EXPECT_EQ(stats.peak_under_replicated, 0);
  EXPECT_DOUBLE_EQ(stats.last_fully_replicated, 0.0);
  expect_fully_replicated(sim, ds);
}

TEST(Rereplicator, CopyTargetsPreferRacksWithoutALiveReplica) {
  // Kill a whole rack-1 replica set's worth: blocks that kept both
  // remaining replicas on one rack must re-replicate onto the other rack
  // first (rack-aware target scoring), restoring cross-rack isolation.
  Simulation sim(two_racks(10));
  const auto ds = sim.load_dataset("in", mebibytes(128.0 * 12));
  sim.engine().schedule_at(1.0,
                           [&] { sim.rm().fail_node(cluster::NodeId(0)); });
  sim.run();
  ASSERT_EQ(sim.dfs().under_replicated_blocks(), 0u);

  const auto& topo = sim.topology();
  for (const auto& b : sim.dfs().dataset(ds).blocks) {
    // Collect the racks of live replicas; any block that lost its only
    // rack-0 replica must have been restored across racks when possible.
    std::set<cluster::RackId> racks;
    for (auto r : b.replicas) {
      if (sim.dfs().node_alive(r)) racks.insert(topo.rack_of(r));
    }
    EXPECT_EQ(racks.size(), 2u);
  }
}

}  // namespace
}  // namespace mron::dfs
