// The indexed place_replicas must reproduce the legacy list-materializing
// placement draw for draw: same RNG consumption, same winners.
// The
// reference below *is* the legacy algorithm (build the candidate vector,
// index it with one uniform draw); the production code replaced the vectors
// with rack-range arithmetic, and this test pins the equivalence across
// homogeneous, heterogeneous, and degenerate topologies.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/cluster_spec.h"
#include "common/rng.h"
#include "dfs/dfs.h"

namespace mron::dfs {
namespace {

using cluster::NodeId;
using cluster::Topology;

std::vector<NodeId> reference_place(const Topology& topo, Rng& rng) {
  const int n = topo.num_nodes();
  const int want = std::min(3, n);  // default replication factor is 3
  std::vector<NodeId> replicas;

  const NodeId first(rng.uniform_int(0, n - 1));
  replicas.push_back(first);
  if (want == 1) return replicas;

  // Second: materialize every off-rack node, ascending, and draw one.
  std::vector<NodeId> off_rack;
  for (int i = 0; i < n; ++i) {
    if (!topo.same_rack(NodeId(i), first)) off_rack.emplace_back(i);
  }
  NodeId second = first;
  if (!off_rack.empty()) {
    second = off_rack[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(off_rack.size()) - 1))];
  } else {
    while (second == first && n > 1) {
      second = NodeId(rng.uniform_int(0, n - 1));
    }
  }
  replicas.push_back(second);
  if (want == 2) return replicas;

  // Third: materialize the second's rackmates minus {first, second}.
  std::vector<NodeId> rackmates;
  for (int i = 0; i < n; ++i) {
    const NodeId cand(i);
    if (topo.same_rack(cand, second) && cand != second && cand != first) {
      rackmates.push_back(cand);
    }
  }
  NodeId third = first;
  if (!rackmates.empty()) {
    third = rackmates[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(rackmates.size()) - 1))];
  }
  if (third != first && third != second) replicas.push_back(third);
  return replicas;
}

void expect_equivalent(const cluster::ClusterSpec& spec, std::uint64_t seed,
                       int blocks) {
  const Topology topo(spec);
  Dfs dfs(topo, Rng(seed));
  const auto id =
      dfs.create_dataset("placement", mebibytes(128.0 * blocks));
  Rng ref_rng(seed);
  const auto& ds = dfs.dataset(id);
  ASSERT_EQ(ds.blocks.size(), static_cast<std::size_t>(blocks));
  for (std::size_t b = 0; b < ds.blocks.size(); ++b) {
    const auto expected = reference_place(topo, ref_rng);
    EXPECT_EQ(ds.blocks[b].replicas, expected)
        << "block " << b << " seed " << seed;
  }
}

TEST(PlacementEquivalence, TestbedTopology) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    expect_equivalent(cluster::ClusterSpec{}, seed, 200);
  }
}

TEST(PlacementEquivalence, HeterogeneousUnevenRacks) {
  const auto spec = cluster::parse_cluster_spec(
      "group name=a racks=2 nodes=3\n"
      "group name=b racks=1 nodes=11 mem_gb=32\n"
      "group name=c racks=3 nodes=5");
  for (std::uint64_t seed : {2u, 9u, 77u}) {
    expect_equivalent(spec, seed, 150);
  }
}

TEST(PlacementEquivalence, LargeScaledCluster) {
  expect_equivalent(cluster::scaled_spec(1023), 5, 100);
}

TEST(PlacementEquivalence, DegenerateTopologies) {
  // Single rack (off-rack fallback path), two nodes, single node.
  cluster::ClusterSpec one_rack;
  one_rack.num_slaves = 5;
  one_rack.rack_sizes = {5};
  expect_equivalent(one_rack, 3, 60);

  cluster::ClusterSpec two_nodes;
  two_nodes.num_slaves = 2;
  two_nodes.rack_sizes = {1, 1};
  expect_equivalent(two_nodes, 11, 40);

  cluster::ClusterSpec single;
  single.num_slaves = 1;
  single.rack_sizes = {1};
  expect_equivalent(single, 13, 20);
}

}  // namespace
}  // namespace mron::dfs
