// Delay scheduling: requests with node preferences hold out briefly for a
// local slot instead of taking the first non-local one.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mapreduce/simulation.h"
#include "yarn/resource_manager.h"

namespace mron::yarn {
namespace {

class DelayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec.num_slaves = 4;
    spec.rack_sizes = {2, 2};
    topo = std::make_unique<cluster::Topology>(spec);
    std::vector<cluster::Node*> ptrs;
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(
          std::make_unique<cluster::Node>(eng, cluster::NodeId(i), spec));
      ptrs.push_back(nodes.back().get());
    }
    rm = std::make_unique<ResourceManager>(eng, *topo, ptrs,
                                           make_fifo_policy());
    app = rm->register_app("a");
  }

  sim::Engine eng;
  cluster::ClusterSpec spec;
  std::unique_ptr<cluster::Topology> topo;
  std::vector<std::unique_ptr<cluster::Node>> nodes;
  std::unique_ptr<ResourceManager> rm;
  AppId app;
};

TEST_F(DelayTest, WaitsForLocalSlotWithinBudget) {
  rm->set_locality_delay(5);
  // Fill the preferred node; a non-delayed request would immediately land
  // elsewhere.
  nodes[1]->allocate(nodes[1]->memory_available(), 1);
  std::vector<Container> got;
  rm->request_container(app, {gibibytes(1), 1}, {cluster::NodeId(1)},
                        [&](const Container& c) { got.push_back(c); });
  eng.run();
  EXPECT_TRUE(got.empty());  // still holding out
  // Free the preferred node and trigger passes via another allocation.
  nodes[1]->release(gibibytes(6), 0);
  rm->request_container(app, {mebibytes(256), 1}, {},
                        [&](const Container&) {});
  eng.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].node, cluster::NodeId(1));
}

TEST_F(DelayTest, RelaxesAfterBudgetExhausted) {
  rm->set_locality_delay(2);
  nodes[2]->allocate(nodes[2]->memory_available(), 1);
  std::vector<Container> got;
  rm->request_container(app, {gibibytes(1), 1}, {cluster::NodeId(2)},
                        [&](const Container& c) { got.push_back(c); });
  // Burn the two delay passes with unrelated scheduling activity.
  for (int i = 0; i < 3; ++i) {
    rm->request_container(app, {mebibytes(128), 1}, {},
                          [&](const Container&) {});
    eng.run();
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NE(got[0].node, cluster::NodeId(2));  // relaxed off-node
}

TEST_F(DelayTest, ZeroDelayPlacesImmediately) {
  nodes[0]->allocate(nodes[0]->memory_available(), 1);
  std::vector<Container> got;
  rm->request_container(app, {gibibytes(1), 1}, {cluster::NodeId(0)},
                        [&](const Container& c) { got.push_back(c); });
  eng.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NE(got[0].node, cluster::NodeId(0));
}

TEST(DelaySchedulingEndToEnd, ImprovesMapLocality) {
  auto locality_fraction = [](int delay_passes) {
    mapreduce::SimulationOptions opt;
    opt.cluster.num_slaves = 6;
    opt.cluster.rack_sizes = {3, 3};
    opt.seed = 7;
    opt.locality_delay_passes = delay_passes;
    mapreduce::Simulation sim(opt);
    mapreduce::JobSpec spec;
    spec.name = "loc";
    spec.input = sim.load_dataset("in", mebibytes(128.0 * 48));
    spec.num_reduces = 4;
    const auto r = sim.run_job(std::move(spec));
    int local = 0, total = 0;
    for (const auto& rep : r.map_reports) {
      if (rep.failed_oom) continue;
      ++total;
      if (rep.locality == dfs::Locality::NodeLocal) ++local;
    }
    return static_cast<double>(local) / total;
  };
  const double without = locality_fraction(0);
  const double with = locality_fraction(8);
  EXPECT_GE(with, without);
}

}  // namespace
}  // namespace mron::yarn
