#include "yarn/scheduling_policy.h"

#include <gtest/gtest.h>

namespace mron::yarn {
namespace {

AppSchedState app(int id, int order, double weight, double mem_mib,
                  std::size_t pending, bool skip = false) {
  AppSchedState s;
  s.id = AppId(id);
  s.submit_order = order;
  s.weight = weight;
  s.allocated_memory = mebibytes(mem_mib);
  s.pending_requests = pending;
  s.skip = skip;
  return s;
}

TEST(FifoPolicy, PicksEarliestSubmission) {
  FifoPolicy fifo;
  const auto pick =
      fifo.pick_next({app(0, 5, 1, 0, 3), app(1, 2, 1, 0, 3)});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, AppId(1));
}

TEST(FifoPolicy, SkipsAppsWithoutPending) {
  FifoPolicy fifo;
  const auto pick =
      fifo.pick_next({app(0, 1, 1, 0, 0), app(1, 2, 1, 0, 1)});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, AppId(1));
}

TEST(FifoPolicy, SkipsMarkedApps) {
  FifoPolicy fifo;
  const auto pick =
      fifo.pick_next({app(0, 1, 1, 0, 1, /*skip=*/true), app(1, 2, 1, 0, 1)});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, AppId(1));
}

TEST(FifoPolicy, EmptyWhenNothingPending) {
  FifoPolicy fifo;
  EXPECT_FALSE(fifo.pick_next({app(0, 1, 1, 0, 0)}).has_value());
  EXPECT_FALSE(fifo.pick_next({}).has_value());
}

TEST(FairPolicy, PicksSmallestShare) {
  FairPolicy fair;
  const auto pick =
      fair.pick_next({app(0, 0, 1, 4096, 2), app(1, 1, 1, 1024, 2)});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, AppId(1));
}

TEST(FairPolicy, WeightsScaleShares) {
  FairPolicy fair;
  // App 0 holds 4 GiB at weight 4 (share 1 GiB); app 1 holds 2 GiB at
  // weight 1 (share 2 GiB): app 0 deserves the next container.
  const auto pick =
      fair.pick_next({app(0, 0, 4, 4096, 1), app(1, 1, 1, 2048, 1)});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, AppId(0));
}

TEST(FairPolicy, TieBreaksBySubmitOrder) {
  FairPolicy fair;
  const auto pick =
      fair.pick_next({app(0, 3, 1, 1024, 1), app(1, 1, 1, 1024, 1)});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, AppId(1));
}

}  // namespace
}  // namespace mron::yarn
