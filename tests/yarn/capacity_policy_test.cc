#include <gtest/gtest.h>

#include "mapreduce/simulation.h"
#include "yarn/scheduling_policy.h"

namespace mron::yarn {
namespace {

AppSchedState app(int id, int order, int queue, double mem_mib,
                  std::size_t pending) {
  AppSchedState s;
  s.id = AppId(id);
  s.submit_order = order;
  s.queue = queue;
  s.allocated_memory = mebibytes(mem_mib);
  s.pending_requests = pending;
  return s;
}

TEST(CapacityPolicy, NormalizesShares) {
  CapacityPolicy policy({3.0, 1.0});
  EXPECT_DOUBLE_EQ(policy.capacity_share(0), 0.75);
  EXPECT_DOUBLE_EQ(policy.capacity_share(1), 0.25);
  EXPECT_EQ(policy.num_queues(), 2);
}

TEST(CapacityPolicy, DegenerateSharesFallBackToOneQueue) {
  CapacityPolicy policy({});
  EXPECT_EQ(policy.num_queues(), 1);
  EXPECT_DOUBLE_EQ(policy.capacity_share(0), 1.0);
  EXPECT_DOUBLE_EQ(policy.capacity_share(7), 1.0);  // clamped
}

TEST(CapacityPolicy, ServesMostUnderservedQueue) {
  CapacityPolicy policy({0.5, 0.5});
  // Queue 0 holds 4 GiB, queue 1 holds 1 GiB: queue 1 is underserved.
  const auto pick = policy.pick_next(
      {app(0, 0, 0, 4096, 2), app(1, 1, 1, 1024, 2)});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, AppId(1));
}

TEST(CapacityPolicy, SharesWeightTheComparison) {
  // Queue 0 owns 80%: even holding 3 GiB against queue 1's 1 GiB it is
  // the more underserved relative to its share (3/0.8 < 1/0.2).
  CapacityPolicy policy({0.8, 0.2});
  const auto pick = policy.pick_next(
      {app(0, 0, 0, 3072, 1), app(1, 1, 1, 1024, 1)});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, AppId(0));
}

TEST(CapacityPolicy, FifoWithinAQueue) {
  CapacityPolicy policy({1.0});
  const auto pick = policy.pick_next(
      {app(0, 5, 0, 0, 1), app(1, 2, 0, 0, 1)});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, AppId(1));
}

TEST(CapacityPolicy, IdleQueueDoesNotBlockOthers) {
  CapacityPolicy policy({0.9, 0.1});
  // Nothing pending in queue 0: queue 1 takes the whole cluster (work
  // conservation through the placement loop).
  const auto pick = policy.pick_next({app(1, 1, 1, 8192, 3)});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, AppId(1));
}

TEST(CapacityPolicyEndToEnd, GuaranteedQueueFinishesFaster) {
  // Two identical jobs; the one in the 75%-capacity queue should finish
  // well before the one in the 25% queue.
  mapreduce::SimulationOptions opt;
  opt.cluster.num_slaves = 4;
  opt.cluster.rack_sizes = {2, 2};
  opt.seed = 9;
  opt.capacity_queues = {0.75, 0.25};
  mapreduce::Simulation sim(opt);
  auto make = [&](const char* name, int queue) {
    mapreduce::JobSpec spec;
    spec.name = name;
    spec.input = sim.load_dataset(name, mebibytes(128.0 * 24));
    spec.num_reduces = 4;
    spec.profile.map_cpu_secs_per_mib = 0.4;
    spec.scheduler_queue = queue;
    return spec;
  };
  const auto results =
      sim.run_jobs({make("gold", 0), make("bronze", 1)});
  EXPECT_LT(results[0].exec_time(), results[1].exec_time());
}

}  // namespace
}  // namespace mron::yarn
