#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/monitor.h"
#include "yarn/resource_manager.h"

namespace mron::yarn {
namespace {

class HotspotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec.num_slaves = 4;
    spec.rack_sizes = {2, 2};
    topo = std::make_unique<cluster::Topology>(spec);
    std::vector<cluster::Node*> ptrs;
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(
          std::make_unique<cluster::Node>(eng, cluster::NodeId(i), spec));
      ptrs.push_back(nodes.back().get());
    }
    monitor = std::make_unique<cluster::ClusterMonitor>(eng, ptrs, 1.0);
    rm = std::make_unique<ResourceManager>(eng, *topo, ptrs,
                                           make_fifo_policy());
    rm->set_cluster_monitor(monitor.get(), 0.9);
    app = rm->register_app("a");
  }

  /// Keep node `i`'s disk saturated and let the monitor observe it.
  void make_hot(int i) {
    monitor->start();
    nodes[static_cast<std::size_t>(i)]->disk().submit(
        spec.disk_bandwidth.rate() * 1000.0, [] {});
    eng.run_until(eng.now() + 2.5);
  }

  sim::Engine eng;
  cluster::ClusterSpec spec;
  std::unique_ptr<cluster::Topology> topo;
  std::vector<std::unique_ptr<cluster::Node>> nodes;
  std::unique_ptr<cluster::ClusterMonitor> monitor;
  std::unique_ptr<ResourceManager> rm;
  AppId app;
};

TEST_F(HotspotTest, AvoidsHotNodeWhenAlternativesExist) {
  make_hot(2);
  // Prefer the hot node 2; placement should dodge to a cooler node.
  std::vector<Container> got;
  for (int i = 0; i < 3; ++i) {
    rm->request_container(app, {gibibytes(1), 1}, {cluster::NodeId(2)},
                          [&](const Container& c) { got.push_back(c); });
  }
  eng.run_until(eng.now() + 1.0);
  ASSERT_EQ(got.size(), 3u);
  for (const auto& c : got) EXPECT_NE(c.node, cluster::NodeId(2));
}

TEST_F(HotspotTest, FallsBackToHotNodeWhenNothingElseFits) {
  make_hot(0);
  // Fill every cool node completely.
  for (int i = 1; i < 4; ++i) {
    nodes[static_cast<std::size_t>(i)]->allocate(
        nodes[static_cast<std::size_t>(i)]->memory_available(), 1);
  }
  bool placed = false;
  cluster::NodeId where;
  rm->request_container(app, {gibibytes(1), 1}, {},
                        [&](const Container& c) {
                          placed = true;
                          where = c.node;
                        });
  eng.run_until(eng.now() + 1.0);
  EXPECT_TRUE(placed);
  EXPECT_EQ(where, cluster::NodeId(0));
}

TEST_F(HotspotTest, WithoutMonitorHotnessIgnored) {
  rm->set_cluster_monitor(nullptr);
  make_hot(2);
  std::vector<Container> got;
  rm->request_container(app, {gibibytes(1), 1}, {cluster::NodeId(2)},
                        [&](const Container& c) { got.push_back(c); });
  eng.run_until(eng.now() + 1.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].node, cluster::NodeId(2));  // locality wins again
}

TEST_F(HotspotTest, CoolNodesUnaffected) {
  make_hot(3);
  std::vector<Container> got;
  rm->request_container(app, {gibibytes(1), 1}, {cluster::NodeId(1)},
                        [&](const Container& c) { got.push_back(c); });
  eng.run_until(eng.now() + 1.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].node, cluster::NodeId(1));
}

}  // namespace
}  // namespace mron::yarn
