#include "yarn/resource_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.h"

namespace mron::yarn {
namespace {

class RmTest : public ::testing::Test {
 protected:
  void SetUp() override { make_rm(make_fifo_policy()); }

  void make_rm(std::unique_ptr<SchedulingPolicy> policy) {
    rm.reset();  // the RM observes its nodes: destroy it before them
    spec.num_slaves = 4;
    spec.rack_sizes = {2, 2};
    topo = std::make_unique<cluster::Topology>(spec);
    nodes.clear();
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(std::make_unique<cluster::Node>(
          eng, cluster::NodeId(i), spec));
    }
    std::vector<cluster::Node*> ptrs;
    for (auto& n : nodes) ptrs.push_back(n.get());
    rm = std::make_unique<ResourceManager>(eng, *topo, ptrs,
                                           std::move(policy));
  }

  sim::Engine eng;
  cluster::ClusterSpec spec;
  std::unique_ptr<cluster::Topology> topo;
  std::vector<std::unique_ptr<cluster::Node>> nodes;
  std::unique_ptr<ResourceManager> rm;
};

TEST_F(RmTest, AllocatesPreferredNode) {
  const AppId app = rm->register_app("a");
  std::vector<Container> got;
  rm->request_container(app, {gibibytes(1), 1}, {cluster::NodeId(2)},
                        [&](const Container& c) { got.push_back(c); });
  eng.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].node, cluster::NodeId(2));
  EXPECT_EQ(got[0].resource.memory, gibibytes(1));
  EXPECT_EQ(rm->app_allocated_memory(app), gibibytes(1));
  EXPECT_EQ(rm->live_containers(), 1u);
}

TEST_F(RmTest, FallsBackToRackThenAnywhere) {
  const AppId app = rm->register_app("a");
  // Fill node 2 completely; request preferring node 2 should land on its
  // rack-mate node 3.
  nodes[2]->allocate(gibibytes(6), 1);
  std::vector<Container> got;
  rm->request_container(app, {gibibytes(1), 1}, {cluster::NodeId(2)},
                        [&](const Container& c) { got.push_back(c); });
  eng.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].node, cluster::NodeId(3));

  // Fill the whole rack; next request lands off-rack.
  nodes[3]->allocate(nodes[3]->memory_available(), 1);
  rm->request_container(app, {gibibytes(1), 1}, {cluster::NodeId(2)},
                        [&](const Container& c) { got.push_back(c); });
  eng.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(got[1].node == cluster::NodeId(0) ||
              got[1].node == cluster::NodeId(1));
}

TEST_F(RmTest, QueuesUntilRelease) {
  const AppId app = rm->register_app("a");
  std::vector<Container> got;
  auto grab = [&](const Container& c) { got.push_back(c); };
  // 4 nodes * 6 GiB: 24 one-GiB containers fit plus pending 25th.
  for (int i = 0; i < 25; ++i) {
    rm->request_container(app, {gibibytes(1), 1}, {}, grab);
  }
  eng.run();
  EXPECT_EQ(got.size(), 24u);
  EXPECT_EQ(rm->pending_requests(), 1u);
  rm->release_container(got[0]);
  eng.run();
  EXPECT_EQ(got.size(), 25u);
  EXPECT_EQ(rm->pending_requests(), 0u);
}

TEST_F(RmTest, VcoresAlsoConstrain) {
  const AppId app = rm->register_app("a");
  std::vector<Container> got;
  // 28 vcores per node; 16-vcore containers: only one per node.
  for (int i = 0; i < 5; ++i) {
    rm->request_container(app, {mebibytes(512), 16}, {},
                          [&](const Container& c) { got.push_back(c); });
  }
  eng.run();
  EXPECT_EQ(got.size(), 4u);
  EXPECT_EQ(rm->pending_requests(), 1u);
}

TEST_F(RmTest, VariableSizedContainersDontHeadOfLineBlock) {
  const AppId app = rm->register_app("a");
  // Fill the cluster except 512 MiB on node 0.
  for (auto& n : nodes) n->allocate(n->memory_available() - mebibytes(512), 1);
  std::vector<Container> got;
  // Head request (2 GiB) cannot fit; the smaller one behind it must still
  // be served — MRONLINE's variable-sized container semantics.
  rm->request_container(app, {gibibytes(2), 1}, {},
                        [&](const Container& c) { got.push_back(c); });
  rm->request_container(app, {mebibytes(256), 1}, {},
                        [&](const Container& c) { got.push_back(c); });
  eng.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].resource.memory, mebibytes(256));
}

TEST_F(RmTest, CancelRequestRemovesFromQueue) {
  const AppId app = rm->register_app("a");
  for (auto& n : nodes) n->allocate(n->memory_available(), 1);
  bool fired = false;
  const RequestId req = rm->request_container(
      app, {gibibytes(1), 1}, {}, [&](const Container&) { fired = true; });
  eng.run();
  rm->cancel_request(req);
  // Free space and trigger a pass with a fresh request: only the fresh
  // request may be served; the cancelled one is gone.
  nodes[0]->release(gibibytes(1), 0);
  bool fresh_fired = false;
  rm->request_container(app, {mebibytes(512), 1}, {},
                        [&](const Container&) { fresh_fired = true; });
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(fresh_fired);
}

TEST_F(RmTest, UnregisterWithLiveContainersThrows) {
  const AppId app = rm->register_app("a");
  std::vector<Container> got;
  rm->request_container(app, {gibibytes(1), 1}, {},
                        [&](const Container& c) { got.push_back(c); });
  eng.run();
  EXPECT_THROW(rm->unregister_app(app), CheckError);
  rm->release_container(got[0]);
  rm->unregister_app(app);
}

TEST_F(RmTest, FairPolicySplitsClusterBetweenApps) {
  make_rm(make_fair_policy());
  const AppId a = rm->register_app("a");
  const AppId b = rm->register_app("b");
  int got_a = 0, got_b = 0;
  for (int i = 0; i < 40; ++i) {
    rm->request_container(a, {gibibytes(1), 1}, {},
                          [&](const Container&) { ++got_a; });
    rm->request_container(b, {gibibytes(1), 1}, {},
                          [&](const Container&) { ++got_b; });
  }
  eng.run();
  // 24 containers fit; fair share is 12/12.
  EXPECT_EQ(got_a + got_b, 24);
  EXPECT_EQ(got_a, 12);
  EXPECT_EQ(got_b, 12);
}

TEST_F(RmTest, FifoPolicyServesFirstAppFirst) {
  const AppId a = rm->register_app("a");
  const AppId b = rm->register_app("b");
  int got_a = 0, got_b = 0;
  for (int i = 0; i < 30; ++i) {
    rm->request_container(b, {gibibytes(1), 1}, {},
                          [&](const Container&) { ++got_b; });
  }
  for (int i = 0; i < 30; ++i) {
    rm->request_container(a, {gibibytes(1), 1}, {},
                          [&](const Container&) { ++got_a; });
  }
  eng.run();
  // App a registered first: FIFO gives it all 24 slots even though b's
  // requests arrived first.
  EXPECT_EQ(got_a, 24);
  EXPECT_EQ(got_b, 0);
}

}  // namespace
}  // namespace mron::yarn
