// Equivalence of the indexed allocator with the legacy full-scan policy.
//
// find_node historically scanned every node per placement level (local /
// rack / anywhere) picking the alive, fitting node with the most free
// memory, ties to the lowest id. The free-resource index answers the same
// query in O(log n); this test drives a heterogeneous cluster through a
// deterministic churn of requests, releases, failures, and restores, and
// checks every grant against a reference scan over public node state.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "cluster/cluster_spec.h"
#include "common/rng.h"
#include "yarn/resource_manager.h"

namespace mron::yarn {
namespace {

using cluster::NodeId;

class FreeIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three racks, three hardware classes: 8 GiB, 32 GiB, and 16 GiB of
    // container memory with differing vcore budgets.
    spec = cluster::parse_cluster_spec(
        "group name=small racks=1 nodes=4 mem_gb=8 container_mem_gb=6\n"
        "group name=big racks=1 nodes=4 mem_gb=32 container_mem_gb=28 "
        "vcores=64 container_vcores=56\n"
        "group name=mid racks=1 nodes=4 mem_gb=16 container_mem_gb=12");
    topo = std::make_unique<cluster::Topology>(spec);
    for (int i = 0; i < topo->num_nodes(); ++i) {
      const NodeId id(i);
      nodes.push_back(std::make_unique<cluster::Node>(
          eng, id, topo->hardware(id)));
      alive.insert(i);
    }
    std::vector<cluster::Node*> ptrs;
    for (auto& n : nodes) ptrs.push_back(n.get());
    rm = std::make_unique<ResourceManager>(eng, *topo, ptrs,
                                           make_fifo_policy());
  }

  void TearDown() override {
    rm.reset();  // the RM observes its nodes: destroy it before them
  }

  bool fits(const cluster::Node& n, const Resource& r) const {
    return alive.count(static_cast<int>(n.id().value())) != 0 &&
           r.memory <= n.memory_available() &&
           r.vcores <= n.vcores_available();
  }

  /// The legacy placement scan: first fitting preferred node, else the
  /// fitting node with the most free memory on a preferred rack (racks in
  /// preference order, strict greater-than between racks), else the
  /// fitting node with the most free memory anywhere; ties to lowest id.
  std::optional<NodeId> reference_find(const Resource& r,
                                       const std::vector<NodeId>& pref) {
    for (NodeId p : pref) {
      if (fits(*nodes[static_cast<std::size_t>(p.value())], r)) return p;
    }
    const cluster::Node* best = nullptr;
    for (NodeId p : pref) {
      const auto rack = topo->rack_of(p);
      const cluster::Node* rack_best = nullptr;
      for (const auto& n : nodes) {
        if (topo->rack_of(n->id()) != rack || !fits(*n, r)) continue;
        if (rack_best == nullptr ||
            n->memory_available() > rack_best->memory_available()) {
          rack_best = n.get();
        }
      }
      if (rack_best != nullptr &&
          (best == nullptr ||
           rack_best->memory_available() > best->memory_available())) {
        best = rack_best;
      }
    }
    if (best == nullptr) {
      for (const auto& n : nodes) {
        if (!fits(*n, r)) continue;
        if (best == nullptr ||
            n->memory_available() > best->memory_available()) {
          best = n.get();
        }
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->id();
  }

  sim::Engine eng;
  cluster::ClusterSpec spec;
  std::unique_ptr<cluster::Topology> topo;
  std::vector<std::unique_ptr<cluster::Node>> nodes;
  std::unique_ptr<ResourceManager> rm;
  std::set<int> alive;
};

TEST_F(FreeIndexTest, GrantsMatchTheReferenceScanUnderChurn) {
  const AppId app = rm->register_app("churn");
  Rng rng(2024);
  std::vector<Container> held;
  int grants = 0;
  int starved = 0;
  for (int step = 0; step < 600; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op < 6) {
      // Request: random size/vcores, random preference list (0-2 nodes).
      // Sizes reach past the mid-class containers so the largest requests
      // depend on big-node headroom and can genuinely starve under churn.
      Resource r;
      r.memory = gibibytes(0.5 * static_cast<double>(rng.uniform_int(1, 32)));
      r.vcores = static_cast<int>(rng.uniform_int(1, 8));
      std::vector<NodeId> pref;
      for (std::int64_t k = rng.uniform_int(0, 2); k > 0; --k) {
        pref.emplace_back(rng.uniform_int(0, topo->num_nodes() - 1));
      }
      const auto expected = reference_find(r, pref);
      std::vector<Container> got;
      const RequestId req = rm->request_container(
          app, r, pref, [&](const Container& c) { got.push_back(c); });
      eng.run();
      if (expected.has_value()) {
        ASSERT_EQ(got.size(), 1u) << "step " << step;
        EXPECT_EQ(got[0].node, *expected) << "step " << step;
        held.push_back(got[0]);
        ++grants;
      } else {
        // Nothing fits: the request must stay pending, not misplace.
        EXPECT_TRUE(got.empty()) << "step " << step;
        rm->cancel_request(req);
        ++starved;
      }
    } else if (op < 8 && !held.empty()) {
      // Release a pseudo-random held container.
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(held.size()) - 1));
      rm->release_container(held[idx]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(idx));
      eng.run();
    } else if (op == 8 && alive.size() > 6) {
      // Fail a node: its containers are reclaimed from the ledger too.
      const NodeId victim(rng.uniform_int(0, topo->num_nodes() - 1));
      if (alive.erase(static_cast<int>(victim.value())) != 0) {
        rm->fail_node(victim);
        for (auto it = held.begin(); it != held.end();) {
          it = it->node == victim ? held.erase(it) : it + 1;
        }
        eng.run();
      }
    } else {
      // Restore the lowest failed node, if any.
      for (int i = 0; i < topo->num_nodes(); ++i) {
        if (alive.count(i) == 0) {
          rm->recover_node(NodeId(i));
          alive.insert(i);
          eng.run();
          break;
        }
      }
    }
  }
  // The churn must have exercised both grant paths and starvation.
  EXPECT_GT(grants, 100);
  EXPECT_GT(starved, 0);
  EXPECT_EQ(rm->live_containers(), held.size());
}

TEST_F(FreeIndexTest, IndexTracksDirectNodeMutations) {
  // Schedulers are not the only writers: tests and the fault injector
  // allocate on nodes directly. The observer hook must keep the index
  // coherent, so a grant after a direct mutation still matches the scan.
  nodes[5]->allocate(nodes[5]->memory_available(), 1);  // big node, filled
  nodes[10]->allocate(gibibytes(4), 2);
  const AppId app = rm->register_app("direct");
  Resource r;
  r.memory = gibibytes(8);
  r.vcores = 4;
  const auto expected = reference_find(r, {});
  ASSERT_TRUE(expected.has_value());
  std::vector<Container> got;
  rm->request_container(app, r, {},
                        [&](const Container& c) { got.push_back(c); });
  eng.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].node, *expected);
}

}  // namespace
}  // namespace mron::yarn
