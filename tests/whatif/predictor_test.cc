#include "whatif/predictor.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "mapreduce/simulation.h"
#include "workloads/benchmarks.h"

namespace mron::whatif {
namespace {

using mapreduce::JobConfig;

PredictionInputs terasort_inputs(double gb) {
  PredictionInputs in;
  in.profile = workloads::profile_for(workloads::Benchmark::Terasort,
                                      workloads::Corpus::Synthetic);
  in.input_size = gibibytes(gb);
  in.num_reduces = static_cast<int>(gb * 8 / 4);  // maps/4, like the paper
  return in;
}

TEST(Predictor, GeometryFollowsContainerSizes) {
  auto in = terasort_inputs(20);
  const auto base = predict(in);
  EXPECT_EQ(base.map_slots_per_node, 6);  // 6 GB / 1 GB defaults
  in.config.map_memory_mb = 512;
  const auto small = predict(in);
  EXPECT_EQ(small.map_slots_per_node, 12);
  EXPECT_LE(small.map_waves, base.map_waves);
}

TEST(Predictor, SpillCountsMatchAnalyticPlan) {
  auto in = terasort_inputs(20);
  const auto pred = predict(in);
  // Default config double-spills Terasort blocks: 2x the record count.
  const double records = gibibytes(20).as_double() / 100.0;
  EXPECT_NEAR(static_cast<double>(pred.map_spill_records), 2.0 * records,
              records * 0.05);
  in.config.io_sort_mb = 256;
  in.config.sort_spill_percent = 0.99;
  const auto tuned = predict(in);
  EXPECT_NEAR(static_cast<double>(tuned.map_spill_records), records,
              records * 0.05);
}

TEST(Predictor, BiggerSortBufferPredictsFasterMaps) {
  auto in = terasort_inputs(20);
  const auto base = predict(in);
  in.config.io_sort_mb = 256;
  in.config.sort_spill_percent = 0.99;
  const auto tuned = predict(in);
  EXPECT_LT(tuned.map_task_secs, base.map_task_secs);
}

TEST(Predictor, CompressionShrinksShuffle) {
  auto in = terasort_inputs(20);
  const auto base = predict(in);
  in.config.map_output_compress = 1;
  const auto comp = predict(in);
  EXPECT_LT(comp.shuffle_bytes.as_double(),
            base.shuffle_bytes.as_double() * 0.5);
}

TEST(Predictor, TracksSimulatorWithinFactorTwo) {
  // The what-if engine's promise and its weakness: the prediction should
  // land in the simulator's neighborhood but not exactly on it.
  for (double gb : {10.0, 20.0, 40.0}) {
    auto in = terasort_inputs(gb);
    const auto pred = predict(in);
    mapreduce::SimulationOptions opt;
    opt.seed = 77;
    mapreduce::Simulation sim(opt);
    auto spec = workloads::make_terasort(sim, gibibytes(gb));
    const double simulated = sim.run_job(std::move(spec)).exec_time();
    EXPECT_GT(pred.total_secs, simulated * 0.5) << gb;
    EXPECT_LT(pred.total_secs, simulated * 2.0) << gb;
  }
}

TEST(Predictor, RejectsImpossibleContainers) {
  auto in = terasort_inputs(10);
  in.config.map_memory_mb = 3072;
  in.cluster.container_memory = gibibytes(2);
  EXPECT_THROW((void)predict(in), CheckError);
}

TEST(CostBasedOptimizer, BeatsDefaultOnItsOwnModel) {
  const auto in = terasort_inputs(20);
  const JobConfig best = optimize_with_model(in, 1500, 4);
  PredictionInputs tuned = in;
  tuned.config = best;
  EXPECT_LT(predict(tuned).total_secs, predict(in).total_secs * 0.9);
}

TEST(CostBasedOptimizer, ModelChosenConfigHelpsOnSimulatorToo) {
  // The Starfish premise: a good-enough model transfers. (MRONLINE's
  // counterpoint — the model can mislead — shows up as a smaller gain
  // than the model promised, measured in bench/ext_whatif.)
  const auto in = terasort_inputs(20);
  const JobConfig best = optimize_with_model(in, 1500, 4);
  auto run = [](const JobConfig& cfg) {
    mapreduce::SimulationOptions opt;
    opt.seed = 9;
    mapreduce::Simulation sim(opt);
    auto spec = workloads::make_terasort(sim, gibibytes(20));
    spec.config = cfg;
    return sim.run_job(std::move(spec)).exec_time();
  };
  EXPECT_LT(run(best), run(JobConfig{}));
}

}  // namespace
}  // namespace mron::whatif
