#include "whatif/predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "mapreduce/simulation.h"
#include "tuner/eval_cache.h"
#include "workloads/benchmarks.h"

namespace mron::whatif {
namespace {

using mapreduce::JobConfig;

PredictionInputs terasort_inputs(double gb) {
  PredictionInputs in;
  in.profile = workloads::profile_for(workloads::Benchmark::Terasort,
                                      workloads::Corpus::Synthetic);
  in.input_size = gibibytes(gb);
  in.num_reduces = static_cast<int>(gb * 8 / 4);  // maps/4, like the paper
  return in;
}

TEST(Predictor, GeometryFollowsContainerSizes) {
  auto in = terasort_inputs(20);
  const auto base = predict(in);
  EXPECT_EQ(base.map_slots_per_node, 6);  // 6 GB / 1 GB defaults
  in.config.map_memory_mb = 512;
  const auto small = predict(in);
  EXPECT_EQ(small.map_slots_per_node, 12);
  EXPECT_LE(small.map_waves, base.map_waves);
}

TEST(Predictor, SpillCountsMatchAnalyticPlan) {
  auto in = terasort_inputs(20);
  const auto pred = predict(in);
  // Default config double-spills Terasort blocks: 2x the record count.
  const double records = gibibytes(20).as_double() / 100.0;
  EXPECT_NEAR(static_cast<double>(pred.map_spill_records), 2.0 * records,
              records * 0.05);
  in.config.io_sort_mb = 256;
  in.config.sort_spill_percent = 0.99;
  const auto tuned = predict(in);
  EXPECT_NEAR(static_cast<double>(tuned.map_spill_records), records,
              records * 0.05);
}

TEST(Predictor, BiggerSortBufferPredictsFasterMaps) {
  auto in = terasort_inputs(20);
  const auto base = predict(in);
  in.config.io_sort_mb = 256;
  in.config.sort_spill_percent = 0.99;
  const auto tuned = predict(in);
  EXPECT_LT(tuned.map_task_secs, base.map_task_secs);
}

TEST(Predictor, CompressionShrinksShuffle) {
  auto in = terasort_inputs(20);
  const auto base = predict(in);
  in.config.map_output_compress = 1;
  const auto comp = predict(in);
  EXPECT_LT(comp.shuffle_bytes.as_double(),
            base.shuffle_bytes.as_double() * 0.5);
}

TEST(Predictor, TracksSimulatorWithinFactorTwo) {
  // The what-if engine's promise and its weakness: the prediction should
  // land in the simulator's neighborhood but not exactly on it.
  for (double gb : {10.0, 20.0, 40.0}) {
    auto in = terasort_inputs(gb);
    const auto pred = predict(in);
    mapreduce::SimulationOptions opt;
    opt.seed = 77;
    mapreduce::Simulation sim(opt);
    auto spec = workloads::make_terasort(sim, gibibytes(gb));
    const double simulated = sim.run_job(std::move(spec)).exec_time();
    EXPECT_GT(pred.total_secs, simulated * 0.5) << gb;
    EXPECT_LT(pred.total_secs, simulated * 2.0) << gb;
  }
}

TEST(Predictor, RejectsImpossibleContainers) {
  auto in = terasort_inputs(10);
  in.config.map_memory_mb = 3072;
  in.cluster.container_memory = gibibytes(2);
  EXPECT_THROW((void)predict(in), CheckError);
}

TEST(Predictor, OversizedReduceContainerIsInfinitelyExpensive) {
  // Regression: reduce_slots_per_node == 0 used to silently skip the
  // reduce phase, scoring an impossible reduce container as free.
  auto in = terasort_inputs(10);
  in.config.reduce_memory_mb = 3072;
  in.cluster.container_memory = gibibytes(2);
  in.config.map_memory_mb = 1024;  // map side still fits
  const auto pred = predict(in);
  EXPECT_EQ(pred.reduce_slots_per_node, 0);
  EXPECT_TRUE(std::isinf(pred.total_secs));
  EXPECT_TRUE(std::isinf(pred.reduce_phase_secs));
}

TEST(Predictor, ZeroReducesStillPredictsMapOnlyJobs) {
  // Map-only jobs keep a finite prediction regardless of reduce geometry.
  auto in = terasort_inputs(10);
  in.num_reduces = 0;
  in.config.reduce_memory_mb = 3072;
  in.cluster.container_memory = gibibytes(2);
  in.config.map_memory_mb = 1024;
  const auto pred = predict(in);
  EXPECT_TRUE(std::isfinite(pred.total_secs));
  EXPECT_GT(pred.total_secs, 0.0);
}

TEST(CostBasedOptimizer, BeatsDefaultOnItsOwnModel) {
  const auto in = terasort_inputs(20);
  const JobConfig best = optimize_with_model(in, 1500, 4);
  PredictionInputs tuned = in;
  tuned.config = best;
  EXPECT_LT(predict(tuned).total_secs, predict(in).total_secs * 0.9);
}

TEST(CostBasedOptimizer, ModelChosenConfigHelpsOnSimulatorToo) {
  // The Starfish premise: a good-enough model transfers. (MRONLINE's
  // counterpoint — the model can mislead — shows up as a smaller gain
  // than the model promised, measured in bench/ext_whatif.)
  const auto in = terasort_inputs(20);
  const JobConfig best = optimize_with_model(in, 1500, 4);
  auto run = [](const JobConfig& cfg) {
    mapreduce::SimulationOptions opt;
    opt.seed = 9;
    mapreduce::Simulation sim(opt);
    auto spec = workloads::make_terasort(sim, gibibytes(20));
    spec.config = cfg;
    return sim.run_job(std::move(spec)).exec_time();
  };
  EXPECT_LT(run(best), run(JobConfig{}));
}

TEST(CostBasedOptimizer, WinnerIdenticalWithCacheOnOffAndAcrossJobs) {
  // The fast-path contract: caching and fan-out change wall-clock only.
  // The winner must be byte-identical (JobConfig operator==) with the
  // eval cache on or off, serial or parallel.
  const auto in = terasort_inputs(20);
  const bool saved = tuner::eval_cache_enabled();
  tuner::set_eval_cache_enabled(true);
  const JobConfig cached_serial = optimize_with_model(in, 1200, 7, 3, 1);
  const JobConfig cached_wide = optimize_with_model(in, 1200, 7, 3, 4);
  tuner::set_eval_cache_enabled(false);
  const JobConfig uncached_serial = optimize_with_model(in, 1200, 7, 3, 1);
  const JobConfig uncached_wide = optimize_with_model(in, 1200, 7, 3, 4);
  tuner::set_eval_cache_enabled(saved);
  EXPECT_EQ(cached_serial, cached_wide);
  EXPECT_EQ(cached_serial, uncached_serial);
  EXPECT_EQ(cached_serial, uncached_wide);
}

TEST(Predictor, AllOnesNodeSlowdownMatchesEmptyExactly) {
  auto in = terasort_inputs(20);
  const auto base = predict(in);
  in.node_slowdown.assign(static_cast<std::size_t>(in.cluster.num_slaves),
                          1.0);
  const auto same = predict(in);
  // The documented contract: an all-1.0 vector is byte-identical to the
  // homogeneous (empty) case.
  EXPECT_DOUBLE_EQ(same.map_task_secs, base.map_task_secs);
  EXPECT_DOUBLE_EQ(same.reduce_task_secs, base.reduce_task_secs);
  EXPECT_DOUBLE_EQ(same.map_phase_secs, base.map_phase_secs);
  EXPECT_DOUBLE_EQ(same.reduce_phase_secs, base.reduce_phase_secs);
  EXPECT_DOUBLE_EQ(same.total_secs, base.total_secs);
  EXPECT_EQ(same.map_waves, base.map_waves);
  EXPECT_EQ(same.map_spill_records, base.map_spill_records);
}

TEST(Predictor, SlowNodesLengthenTheJob) {
  auto in = terasort_inputs(20);
  const auto base = predict(in);
  in.node_slowdown.assign(static_cast<std::size_t>(in.cluster.num_slaves),
                          1.0);
  in.node_slowdown[0] = 3.0;  // one recovering host, three times slower
  const auto one_slow = predict(in);
  EXPECT_GT(one_slow.total_secs, base.total_secs);
  // Degrading more of the cluster can only make things worse.
  in.node_slowdown[1] = 3.0;
  in.node_slowdown[2] = 3.0;
  const auto three_slow = predict(in);
  EXPECT_GE(three_slow.total_secs, one_slow.total_secs);
}

TEST(Predictor, NodeSlowdownVectorMustMatchClusterSize) {
  auto in = terasort_inputs(20);
  in.node_slowdown = {1.0, 2.0};  // cluster has more slaves than this
  EXPECT_THROW((void)predict(in), CheckError);
}

TEST(CostBasedOptimizer, SingleChainWinnerAlsoCacheInvariant) {
  const auto in = terasort_inputs(20);
  const bool saved = tuner::eval_cache_enabled();
  tuner::set_eval_cache_enabled(true);
  const JobConfig cached = optimize_with_model(in, 800, 11);
  tuner::set_eval_cache_enabled(false);
  const JobConfig uncached = optimize_with_model(in, 800, 11);
  tuner::set_eval_cache_enabled(saved);
  EXPECT_EQ(cached, uncached);
}

}  // namespace
}  // namespace mron::whatif
