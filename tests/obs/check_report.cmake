# The --report-out acceptance checks: the exported run_report.json must be
# byte-identical at any --jobs value, pass the Python schema validator,
# render to HTML, and diff against itself with zero gated deltas.
execute_process(
  COMMAND ${CLI} --app=terasort --size-gb=2 --strategy=aggressive --seed=77
          --runs=2 --jobs=1 --report-out=check_report_j1.json
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc1 OUTPUT_QUIET)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "mron_cli --jobs=1 failed with ${rc1}")
endif()

execute_process(
  COMMAND ${CLI} --app=terasort --size-gb=2 --strategy=aggressive --seed=77
          --runs=2 --jobs=2 --report-out=check_report_j2.json
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE rc2 OUTPUT_QUIET)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "mron_cli --jobs=2 failed with ${rc2}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          check_report_j1.json check_report_j2.json
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR
          "run_report.json differs between --jobs=1 and --jobs=2")
endif()

execute_process(
  COMMAND ${PYTHON} ${TOOLS}/mron_report.py check_report_j1.json --check
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "mron_report.py --check failed with ${check_rc}")
endif()

execute_process(
  COMMAND ${PYTHON} ${TOOLS}/mron_report.py check_report_j1.json
          -o check_report.html
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE html_rc)
if(NOT html_rc EQUAL 0)
  message(FATAL_ERROR "mron_report.py HTML render failed with ${html_rc}")
endif()

# Identical reports: the diff gate must pass at threshold 0 and the
# self-improvement check must fail (nothing is strictly lower).
execute_process(
  COMMAND ${PYTHON} ${TOOLS}/mron_diff.py check_report_j1.json
          check_report_j2.json --threshold 0
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE diff_rc OUTPUT_QUIET)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "mron_diff.py on identical reports exited ${diff_rc}")
endif()

execute_process(
  COMMAND ${PYTHON} ${TOOLS}/mron_diff.py check_report_j1.json
          check_report_j2.json --check-improves exec_secs
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE improve_rc OUTPUT_QUIET ERROR_QUIET)
if(improve_rc EQUAL 0)
  message(FATAL_ERROR
          "--check-improves passed on identical reports; the gate is broken")
endif()
