// Host self-profiler invariants (obs/host_profile.h): frame aggregation,
// thread-safe concurrent frame stacks, engine category attribution (events
// inherit the scheduling context's subsystem, re-arms inherit
// transitively), the setup/steady phase split, export sanity — and the
// quarantine contract: run_report.json is byte-identical with profiling on
// or off, including under fault injection.
#include "obs/host_profile.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "faults/fault_plan.h"
#include "mapreduce/report_rollup.h"
#include "mapreduce/simulation.h"
#include "obs/enabled.h"
#include "obs/progress.h"
#include "sim/engine.h"
#include "workloads/benchmarks.h"

namespace mron::obs {
namespace {

// The explicit Frame/Activation objects are always compiled (only the
// macros and engine hooks vanish under MRON_OBS=OFF), so these tests run
// in both build modes.

TEST(HostProfiler, FramesAggregateByPathWithNesting) {
  HostProfiler hp;
  {
    HostProfiler::Activation on(&hp);
    for (int i = 0; i < 3; ++i) {
      HostProfiler::Frame outer("outer");
      HostProfiler::Frame inner("inner");
    }
    {
      HostProfiler::Frame other("other");
    }
  }
  std::ostringstream os;
  hp.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"path\": \"outer\", \"depth\": 0, \"count\": 3"),
            std::string::npos)
      << json;
  EXPECT_NE(
      json.find("\"path\": \"outer/inner\", \"depth\": 1, \"count\": 3"),
      std::string::npos)
      << json;
  EXPECT_NE(json.find("\"path\": \"other\", \"depth\": 0, \"count\": 1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"schema\": \"mron.host_profile/1\""),
            std::string::npos);
}

TEST(HostProfiler, FramesAreNoOpsWithoutActivation) {
  HostProfiler hp;
  {
    HostProfiler::Frame f("ignored");
  }
  std::ostringstream os;
  hp.write_json(os);
  EXPECT_EQ(os.str().find("ignored"), std::string::npos);
}

TEST(HostProfiler, ActivationNestsAndRestores) {
  HostProfiler a, b;
  HostProfiler::Activation on_a(&a);
  EXPECT_EQ(HostProfiler::current(), &a);
  {
    HostProfiler::Activation on_b(&b);
    EXPECT_EQ(HostProfiler::current(), &b);
    HostProfiler::Frame f("in_b");
  }
  EXPECT_EQ(HostProfiler::current(), &a);
  std::ostringstream os_a, os_b;
  a.write_json(os_a);
  b.write_json(os_b);
  EXPECT_EQ(os_a.str().find("in_b"), std::string::npos);
  EXPECT_NE(os_b.str().find("in_b"), std::string::npos);
}

TEST(HostProfiler, CatScopeNestsAndRestores) {
  const std::uint8_t base = HostProfiler::CatScope::current();
  {
    HostProfiler::CatScope dfs(HostCat::kDfs);
    EXPECT_EQ(HostProfiler::CatScope::current(),
              static_cast<std::uint8_t>(HostCat::kDfs));
    {
      HostProfiler::CatScope yarn(HostCat::kYarn);
      EXPECT_EQ(HostProfiler::CatScope::current(),
                static_cast<std::uint8_t>(HostCat::kYarn));
    }
    EXPECT_EQ(HostProfiler::CatScope::current(),
              static_cast<std::uint8_t>(HostCat::kDfs));
  }
  EXPECT_EQ(HostProfiler::CatScope::current(), base);
}

// The --jobs=N contract: every worker thread gets its own frame stack, the
// hot path never takes a lock, and export merges the per-thread trees.
TEST(HostProfiler, ConcurrentFrameStacksMergeAtExport) {
  constexpr int kThreads = 8;
  constexpr int kFramesPerThread = 5000;
  HostProfiler hp;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hp] {
      HostProfiler::Activation on(&hp);
      for (int i = 0; i < kFramesPerThread; ++i) {
        HostProfiler::Frame outer("work");
        HostProfiler::Frame inner("step");
      }
    });
  }
  for (auto& w : workers) w.join();
  std::ostringstream os;
  hp.write_json(os);
  const std::string json = os.str();
  const std::string want_count =
      std::to_string(kThreads * kFramesPerThread);
  EXPECT_NE(json.find("\"path\": \"work\", \"depth\": 0, \"count\": " +
                      want_count),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"path\": \"work/step\", \"depth\": 1, \"count\": " +
                      want_count),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"threads\": " + std::to_string(kThreads)),
            std::string::npos)
      << json;
}

TEST(HostProfiler, PhasesAccumulateAndReentryIsNoOp) {
  HostProfiler hp;
  EXPECT_EQ(hp.phase(), HostPhase::kSetup);
  hp.begin_phase(HostPhase::kSetup);  // re-entry: no-op
  EXPECT_EQ(hp.phase(), HostPhase::kSetup);
  hp.begin_phase(HostPhase::kSteady);
  EXPECT_EQ(hp.phase(), HostPhase::kSteady);
  // Both phases saw some wall time; the open phase keeps accumulating.
  EXPECT_GE(hp.phase_wall_ns(HostPhase::kSetup), 0);
  const std::int64_t steady0 = hp.phase_wall_ns(HostPhase::kSteady);
  const std::int64_t steady1 = hp.phase_wall_ns(HostPhase::kSteady);
  EXPECT_GE(steady1, steady0);
}

TEST(HostProfiler, RecordEventClampsUnknownCategories) {
  HostProfiler hp;
  hp.record_event(250, 10);  // out of range -> engine bucket
  EXPECT_EQ(hp.subsystem(HostCat::kEngine).count, 1);
  EXPECT_EQ(hp.subsystem(HostCat::kEngine).total_ticks, 10);
}

TEST(HostProfiler, ExportCarriesMemoryAndMeta) {
  HostProfiler hp;
  hp.set_memory("engine.queue_bytes", 4096.0);
  hp.set_meta("nodes", "19");
  std::ostringstream os;
  hp.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"engine.queue_bytes\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"nodes\": \"19\""), std::string::npos);
  EXPECT_NE(json.find("\"rss_peak_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"rss_current_bytes\""), std::string::npos);
  // All eight subsystem keys are always present, zeros included.
  for (const char* key :
       {"\"engine\"", "\"shared_server\"", "\"monitor\"", "\"dfs\"",
        "\"yarn\"", "\"am_task\"", "\"tuner\"", "\"faults\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

#if MRON_OBS_ENABLED

// Events inherit the subsystem category of the scheduling context, and
// events scheduled from inside a dispatched callback inherit that event's
// category (the dispatch loop re-establishes it around the callback).
TEST(HostProfiler, EngineAttributesEventsToSchedulingContext) {
  HostProfiler hp;
  sim::Engine eng;
  eng.set_host_profiler(&hp);
  {
    HostProfiler::CatScope dfs(HostCat::kDfs);
    eng.schedule_at(1.0, [&eng] {
      // Re-arm without an explicit category: inherits kDfs transitively.
      eng.schedule_after(1.0, [] {});
    });
  }
  {
    HostProfiler::CatScope yarn(HostCat::kYarn);
    eng.schedule_at(2.0, [] {});
  }
  eng.schedule_at(3.0, [] {});  // default context -> engine bucket
  eng.run();
  EXPECT_EQ(hp.subsystem(HostCat::kDfs).count, 2);
  EXPECT_EQ(hp.subsystem(HostCat::kYarn).count, 1);
  EXPECT_EQ(hp.subsystem(HostCat::kEngine).count, 1);
  // One clock read per event: subsystem counts cover every dispatch.
  std::int64_t events = 0;
  for (int c = 0; c < kNumHostCats; ++c) {
    events += hp.subsystem(static_cast<HostCat>(c)).count;
  }
  EXPECT_EQ(events, eng.total_dispatched());
}

// A simulation constructed with host_profile=true flips to kSteady inside
// run(), to kTeardown when the loop drains, and bills every event to a
// subsystem.
TEST(HostProfiler, SimulationSplitsSetupFromSteady) {
  mapreduce::SimulationOptions opt;
  opt.seed = 5;
  opt.host_profile = true;
  mapreduce::Simulation sim(opt);
  auto* hp = sim.host_profiler();
  ASSERT_NE(hp, nullptr);
  EXPECT_EQ(hp->phase(), HostPhase::kSetup);
  auto spec = workloads::make_terasort(sim, gibibytes(1));
  sim.run_job(std::move(spec));
  EXPECT_EQ(hp->phase(), HostPhase::kTeardown);
  EXPECT_GT(hp->phase_wall_ns(HostPhase::kSetup), 0);
  EXPECT_GT(hp->phase_wall_ns(HostPhase::kSteady), 0);
  EXPECT_GT(hp->phase_wall_ns(HostPhase::kTeardown), 0);
  EXPECT_GT(hp->subsystem_total_ns(), 0);
  std::ostringstream os;
  EXPECT_TRUE(sim.write_host_profile(os));
  EXPECT_NE(os.str().find("\"schema\": \"mron.host_profile/1\""),
            std::string::npos);
}

#endif  // MRON_OBS_ENABLED

// The quarantine contract, in both build modes: attaching the profiler
// must not change a single byte of the deterministic run report.
std::string report_with_profiling(bool host_profile,
                                  const std::string& fault_spec) {
  mapreduce::SimulationOptions opt;
  opt.seed = 7;
  opt.observe = true;
  opt.host_profile = host_profile;
  if (!fault_spec.empty()) {
    opt.fault_plan = faults::FaultPlan::parse(fault_spec);
  }
  mapreduce::Simulation sim(opt);
  auto spec = workloads::make_terasort(sim, gibibytes(1));
  const mapreduce::JobConfig config = spec.config;
  const auto result = sim.run_job(std::move(spec));
  return mapreduce::run_report_json(sim, {{&result, &config}},
                                    {{"app", "terasort"}});
}

TEST(HostProfiler, RunReportBytesUnchangedByProfiling) {
  EXPECT_EQ(report_with_profiling(false, ""), report_with_profiling(true, ""));
}

TEST(HostProfiler, RunReportBytesUnchangedByProfilingUnderFaults) {
  const std::string plan = "taskfail prob=0.05\nseed 7";
  EXPECT_EQ(report_with_profiling(false, plan),
            report_with_profiling(true, plan));
}

// The --progress heartbeat, below its throttle threshold: a zero interval
// prints on every tick, a long one stays silent. (Real callers use the
// 1-second default, which only fires on minute-scale runs.)
TEST(ProgressMeter, PrintsWhenIntervalElapsed) {
  testing::internal::CaptureStderr();
  ProgressMeter meter("unit", 0.0);
  meter.tick(1'000'000, 12.5);
  meter.tick(2'000'000, 25.0);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[unit]"), std::string::npos);
  EXPECT_NE(err.find("ev/s"), std::string::npos);
  EXPECT_NE(err.find("sim t="), std::string::npos);
}

TEST(ProgressMeter, SilentWithinInterval) {
  testing::internal::CaptureStderr();
  ProgressMeter meter("quiet", 3600.0);
  meter.tick(1'000'000, 12.5);
  meter.tick(2'000'000, 25.0);
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace mron::obs
