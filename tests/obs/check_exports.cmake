# Run mron_cli with every export flag and validate the artifacts with a
# stock Python interpreter: the trace and metrics files must be one JSON
# document each, the audit log one JSON object per line.
execute_process(
  COMMAND ${CLI} --app=terasort --size-gb=2 --strategy=conservative
          --metrics-out=check_metrics.json --trace-out=check_trace.json
          --audit-out=check_audit.jsonl
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE cli_rc
  OUTPUT_QUIET)
if(NOT cli_rc EQUAL 0)
  message(FATAL_ERROR "mron_cli failed with ${cli_rc}")
endif()

execute_process(
  COMMAND ${PYTHON} -c
"import json
json.load(open('check_trace.json'))
json.load(open('check_metrics.json'))
lines = [json.loads(l) for l in open('check_audit.jsonl')]
assert lines, 'audit log is empty'
assert all('kind' in l and 't' in l for l in lines)
trace = json.load(open('check_trace.json'))
events = trace['traceEvents']
assert sum(e['ph'] == 'B' for e in events) == sum(e['ph'] == 'E' for e in events)
"
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE py_rc)
if(NOT py_rc EQUAL 0)
  message(FATAL_ERROR "export validation failed with ${py_rc}")
endif()
