// The SeriesStore determinism contract (series.h): surviving points are a
// pure function of the push sequence, so identical sequences serialize to
// identical bytes — the property the byte-identical-across---jobs report
// acceptance test leans on.
#include "obs/series.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"

namespace mron::obs {
namespace {

// Push i as both time and value so a surviving point names its push index.
void push_indices(Series& s, int n) {
  for (int i = 0; i < n; ++i) {
    s.push(static_cast<double>(i), static_cast<double>(i));
  }
}

TEST(Series, RecordsEveryPushUntilCapacity) {
  Series s(8);
  push_indices(s, 8);
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.stride(), 1u);
  EXPECT_EQ(s.offered(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(s.at(i).value, static_cast<double>(i));
  }
}

TEST(Series, CompactionKeepsEvenPushIndicesAndDoublesStride) {
  Series s(8);
  push_indices(s, 9);  // the 9th push triggers the first compaction
  EXPECT_EQ(s.stride(), 2u);
  ASSERT_EQ(s.size(), 5u);
  const double want[] = {0, 2, 4, 6, 8};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(s.at(i).value, want[i]);
  }
}

TEST(Series, SecondCompactionQuadruplesStride) {
  Series s(8);
  push_indices(s, 17);  // push 16 triggers the second compaction
  EXPECT_EQ(s.stride(), 4u);
  ASSERT_EQ(s.size(), 5u);
  const double want[] = {0, 4, 8, 12, 16};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(s.at(i).value, want[i]);
  }
}

TEST(Series, OddCapacityDropsTheOffStrideTrigger) {
  Series s(5);
  push_indices(s, 6);  // push 5 compacts to {0,2,4} but 5 % 2 != 0
  EXPECT_EQ(s.stride(), 2u);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.at(2).value, 4.0);
  EXPECT_EQ(s.offered(), 6u);
}

TEST(Series, SurvivorsAreMultiplesOfTheFinalStride) {
  Series s(8);
  push_indices(s, 1000);
  EXPECT_LE(s.size(), 8u);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto index = static_cast<std::uint64_t>(s.at(i).value);
    EXPECT_EQ(index % s.stride(), 0u);
    if (i > 0) {
      EXPECT_LT(s.at(i - 1).time, s.at(i).time);
    }
  }
  // Full-run coverage: the first push always survives.
  EXPECT_DOUBLE_EQ(s.at(0).value, 0.0);
}

// The default 512-point budget at its exact boundary: push 511 and 512
// record everything at stride 1; push 513 is the first compaction.
TEST(Series, DefaultBudgetBoundaryAt512Points) {
  Series s;
  ASSERT_EQ(s.capacity(), kDefaultSeriesPointBudget);
  ASSERT_EQ(kDefaultSeriesPointBudget, 512u);
  push_indices(s, 511);
  EXPECT_EQ(s.size(), 511u);
  EXPECT_EQ(s.stride(), 1u);
  s.push(511.0, 511.0);  // hits capacity exactly: still lossless
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.stride(), 1u);
  EXPECT_DOUBLE_EQ(s.at(511).value, 511.0);
  // The 513th offer compacts to the 256 even indices, doubles the
  // stride, then records index 512 (a stride multiple): 257 points.
  s.push(512.0, 512.0);
  EXPECT_EQ(s.stride(), 2u);
  ASSERT_EQ(s.size(), 257u);
  EXPECT_DOUBLE_EQ(s.at(0).value, 0.0);
  EXPECT_DOUBLE_EQ(s.at(1).value, 2.0);
  EXPECT_DOUBLE_EQ(s.at(255).value, 510.0);
  EXPECT_DOUBLE_EQ(s.at(256).value, 512.0);
  EXPECT_EQ(s.offered(), 513u);
}

// Repeated stride doublings on the default budget: after many pushes the
// stride is a power of two, survivors are exactly the stride multiples,
// and the series still spans the whole run within budget.
TEST(Series, DefaultBudgetRepeatedStrideDoublings) {
  Series s;
  const int n = 10000;  // forces ceil(log2(10000/512)) = 5 doublings
  push_indices(s, n);
  EXPECT_EQ(s.stride(), 32u);
  EXPECT_LE(s.size(), 512u);
  ASSERT_GT(s.size(), 0u);
  EXPECT_DOUBLE_EQ(s.at(0).value, 0.0);  // first push always survives
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto index = static_cast<std::uint64_t>(s.at(i).value);
    EXPECT_EQ(index, i * s.stride());
  }
  // Last survivor is the greatest stride multiple below n.
  EXPECT_DOUBLE_EQ(s.at(s.size() - 1).value,
                   static_cast<double>((n - 1) / 32 * 32));
  EXPECT_EQ(s.offered(), static_cast<std::uint64_t>(n));
}

TEST(Series, CapacityBelowTwoIsAnError) {
  EXPECT_THROW(Series s(1), CheckError);
}

TEST(SeriesStore, FindOrCreateReturnsStableHandles) {
  SeriesStore store;
  Series& a = store.series("x");
  Series& b = store.series("x");
  EXPECT_EQ(&a, &b);
  EXPECT_TRUE(store.has("x"));
  EXPECT_FALSE(store.has("y"));
  EXPECT_EQ(store.find("y"), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(SeriesStore, NamesAreSortedForDeterministicExport) {
  SeriesStore store;
  store.series("b");
  store.series("a");
  store.series("c");
  const auto names = store.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
}

std::string store_json(const SeriesStore& store) {
  std::ostringstream os;
  store.write_json(os);
  return os.str();
}

TEST(SeriesStore, IdenticalPushSequencesSerializeIdentically) {
  SeriesStore lhs;
  SeriesStore rhs;
  // Same pushes, different creation interleaving: byte-identical output.
  Series& la = lhs.series("alpha", 8);
  Series& lb = lhs.series("beta", 8);
  Series& rb = rhs.series("beta", 8);
  Series& ra = rhs.series("alpha", 8);
  for (int i = 0; i < 100; ++i) {
    la.push(i, i * 0.5);
    lb.push(i, 100.0 - i);
    ra.push(i, i * 0.5);
    rb.push(i, 100.0 - i);
  }
  EXPECT_EQ(store_json(lhs), store_json(rhs));
}

TEST(SeriesStore, JsonShapeCarriesStrideAndOffered) {
  SeriesStore store;
  Series& s = store.series("s", 4);
  for (int i = 0; i < 5; ++i) s.push(i, i);
  const std::string json = store_json(store);
  EXPECT_NE(json.find("{\"series\":[{\"name\":\"s\",\"stride\":2,"
                      "\"offered\":5,\"points\":["),
            std::string::npos)
      << json;
}

}  // namespace
}  // namespace mron::obs
