# The --profile-out quarantine checks: attaching the host self-profiler
# must not change a single byte of run_report.json — at --jobs=1, at
# --jobs=4, and under fault injection — and the profile itself must pass
# the Python schema validator and render as a flame table.

function(run_cli out_report extra_args)
  execute_process(
    COMMAND ${CLI} --app=terasort --size-gb=2 --strategy=aggressive
            --seed=77 --runs=2 --report-out=${out_report} ${extra_args}
    WORKING_DIRECTORY ${WORKDIR}
    RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "mron_cli ${extra_args} failed with ${rc}")
  endif()
endfunction()

function(reports_must_match a b what)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
    WORKING_DIRECTORY ${WORKDIR}
    RESULT_VARIABLE cmp_rc)
  if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR "run_report.json differs ${what} — host profiling "
            "leaked into the deterministic exports")
  endif()
endfunction()

# Baseline (no profiler), then profiled at --jobs=1 and --jobs=4.
run_cli(check_profile_base.json "--jobs=1")
run_cli(check_profile_p1.json
        "--jobs=1;--profile-out=check_profile_hp.json")
run_cli(check_profile_p4.json
        "--jobs=4;--profile-out=check_profile_hp4.json")
reports_must_match(check_profile_base.json check_profile_p1.json
                   "with vs without --profile-out at --jobs=1")
reports_must_match(check_profile_base.json check_profile_p4.json
                   "with --profile-out at --jobs=4")

# Same invariant under fault injection.
run_cli(check_profile_fbase.json
        "--jobs=1;--fault-spec=taskfail prob=0.05")
run_cli(check_profile_fp.json
        "--jobs=1;--fault-spec=taskfail prob=0.05;--profile-out=check_profile_fhp.json")
reports_must_match(check_profile_fbase.json check_profile_fp.json
                   "with --profile-out under a fault plan")

# The profile documents themselves: schema-valid and renderable.
foreach(hp check_profile_hp.json check_profile_hp4.json
        check_profile_fhp.json)
  if(NOT EXISTS ${WORKDIR}/${hp})
    message(FATAL_ERROR "--profile-out did not write ${hp}")
  endif()
  execute_process(
    COMMAND ${PYTHON} ${TOOLS}/mron_report.py ${hp} --check
    WORKING_DIRECTORY ${WORKDIR}
    RESULT_VARIABLE check_rc)
  if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
            "mron_report.py --check on ${hp} failed with ${check_rc}")
  endif()
endforeach()

execute_process(
  COMMAND ${PYTHON} ${TOOLS}/mron_report.py check_profile_hp.json --profile
  WORKING_DIRECTORY ${WORKDIR}
  RESULT_VARIABLE flame_rc OUTPUT_QUIET)
if(NOT flame_rc EQUAL 0)
  message(FATAL_ERROR "mron_report.py --profile failed with ${flame_rc}")
endif()
