// CriticalPathBuilder invariants (obs/critical_path.h): find-or-create
// node identity, the backward last-arrival extraction walk (with its
// tie and causality rules), telescoping segment sums, blame attribution,
// and the exact run-report JSON shape — the properties the byte-identical
// `critical_path` block in mron.run_report/3 leans on.
#include "obs/critical_path.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace mron::obs {
namespace {

std::string to_json(const CriticalPathBuilder& cp) {
  std::ostringstream os;
  cp.write_json(os);
  return os.str();
}

double total_secs(const std::vector<CpSegment>& path) {
  double sum = 0.0;
  for (const CpSegment& s : path) sum += s.secs();
  return sum;
}

TEST(CriticalPath, NodeIsFindOrCreate) {
  CriticalPathBuilder cp;
  const CpNode a = cp.node(0, "map_done", 3, 1);
  EXPECT_EQ(cp.node(0, "map_done", 3, 1), a);
  // Any coordinate change names a different event.
  EXPECT_NE(cp.node(0, "map_done", 3, 2), a);
  EXPECT_NE(cp.node(0, "map_done", 4, 1), a);
  EXPECT_NE(cp.node(0, "map_start", 3, 1), a);
  EXPECT_NE(cp.node(1, "map_done", 3, 1), a);
  EXPECT_EQ(cp.node_count(), 5u);
}

TEST(CriticalPath, StampRecordsTimeAndLocationLastWriterWins) {
  CriticalPathBuilder cp;
  const CpNode n = cp.node(0, "map_start");
  EXPECT_FALSE(cp.is_stamped(n));
  cp.stamp(n, 2.5, 3, 7);
  EXPECT_TRUE(cp.is_stamped(n));
  EXPECT_DOUBLE_EQ(cp.time(n), 2.5);
  EXPECT_EQ(cp.pid(n), 3);
  EXPECT_EQ(cp.tid(n), 7);
  EXPECT_STREQ(cp.kind(n), "map_start");
  cp.stamp(n, 4.0);
  EXPECT_DOUBLE_EQ(cp.time(n), 4.0);
  EXPECT_EQ(cp.pid(n), -1);
}

TEST(CriticalPath, LatestNodeTracksTheMostRecentStampPerJob) {
  CriticalPathBuilder cp;
  EXPECT_EQ(cp.latest_node(0), kInvalidCpNode);
  const CpNode a = cp.stamped(0, "job_submit", 0.0);
  EXPECT_EQ(cp.latest_node(0), a);
  const CpNode b = cp.stamped(0, "map_start", 1.0, 0, 0);
  const CpNode other = cp.stamped(7, "job_submit", 0.5);
  EXPECT_EQ(cp.latest_node(0), b);
  EXPECT_EQ(cp.latest_node(7), other);
  EXPECT_EQ(cp.job_of(b), 0);
  EXPECT_EQ(cp.job_of(other), 7);
  EXPECT_EQ(cp.job_of(kInvalidCpNode), -1);
}

TEST(CriticalPath, InvalidAndSelfEdgesAreRejected) {
  CriticalPathBuilder cp;
  const CpNode n = cp.stamped(0, "map_start", 1.0);
  cp.edge(kInvalidCpNode, n, Blame::SchedWait);
  cp.edge(n, kInvalidCpNode, Blame::SchedWait);
  cp.edge(n, n, Blame::SchedWait);
  cp.edge(999, n, Blame::SchedWait);
  EXPECT_EQ(cp.edge_count(), 0u);
  EXPECT_TRUE(cp.extract(n).empty());
}

TEST(CriticalPath, LinearChainTelescopesExactly) {
  CriticalPathBuilder cp;
  const CpNode submit = cp.stamped(0, "job_submit", 10.0);
  const CpNode grant = cp.stamped(0, "container_grant", 12.0, 1);
  const CpNode start = cp.stamped(0, "map_start", 12.5, 0, 0);
  const CpNode done = cp.stamped(0, "map_done", 20.0, 0, 0);
  const CpNode fin = cp.stamped(0, "job_finish", 21.0);
  cp.edge(submit, grant, Blame::SchedWait);
  cp.edge(grant, start, Blame::SchedWait);
  cp.edge(start, done, Blame::MapCompute);
  cp.edge(done, fin, Blame::ReduceCompute);

  const std::vector<CpSegment> path = cp.extract(fin);
  ASSERT_EQ(path.size(), 4u);
  // Oldest first, rooted at the submit node.
  EXPECT_EQ(path.front().from, submit);
  EXPECT_STREQ(path.front().from_kind, "job_submit");
  EXPECT_EQ(path.back().to, fin);
  EXPECT_STREQ(path.back().to_kind, "job_finish");
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(path[i].from, path[i - 1].to);
    EXPECT_DOUBLE_EQ(path[i].t0, path[i - 1].t1);
  }
  // Telescoping: segment times sum exactly to finish - start.
  EXPECT_DOUBLE_EQ(total_secs(path), 21.0 - 10.0);
  EXPECT_EQ(path[2].blame, Blame::MapCompute);
  EXPECT_DOUBLE_EQ(path[2].secs(), 7.5);
}

TEST(CriticalPath, WalkFollowsTheLastArrivingInEdge) {
  CriticalPathBuilder cp;
  const CpNode fast = cp.stamped(0, "map_done", 5.0, 0, 0);
  const CpNode slow = cp.stamped(0, "map_done", 9.0, 1, 0);
  const CpNode fin = cp.stamped(0, "job_finish", 10.0);
  cp.edge(fast, fin, Blame::MapCompute);
  cp.edge(slow, fin, Blame::MapCompute);
  const std::vector<CpSegment> path = cp.extract(fin);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0].from, slow);  // 9.0 > 5.0: the straggler is to blame
  EXPECT_DOUBLE_EQ(path[0].secs(), 1.0);
}

TEST(CriticalPath, TiesKeepTheEarliestInsertedEdge) {
  CriticalPathBuilder cp;
  const CpNode first = cp.stamped(0, "map_done", 5.0, 0, 0);
  const CpNode second = cp.stamped(0, "map_done", 5.0, 1, 0);
  const CpNode fin = cp.stamped(0, "job_finish", 6.0);
  cp.edge(first, fin, Blame::MapCompute);
  cp.edge(second, fin, Blame::ShuffleNet);
  const std::vector<CpSegment> path = cp.extract(fin);
  ASSERT_EQ(path.size(), 1u);
  // Equal stamps: the edge inserted first wins, deterministically.
  EXPECT_EQ(path[0].from, first);
  EXPECT_EQ(path[0].blame, Blame::MapCompute);
}

TEST(CriticalPath, WalkSkipsUnstampedAndFutureSources) {
  CriticalPathBuilder cp;
  const CpNode ghost = cp.node(0, "map_done", 0, 0);  // never stamped
  const CpNode future = cp.stamped(0, "map_done", 99.0, 1, 0);
  const CpNode real = cp.stamped(0, "map_done", 4.0, 2, 0);
  const CpNode fin = cp.stamped(0, "job_finish", 6.0);
  cp.edge(ghost, fin, Blame::MapCompute);
  cp.edge(future, fin, Blame::MapCompute);  // stamp after fin: acausal
  cp.edge(real, fin, Blame::MapCompute);
  const std::vector<CpSegment> path = cp.extract(fin);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0].from, real);
}

TEST(CriticalPath, RetryChainChargesRetryRecovery) {
  CriticalPathBuilder cp;
  const CpNode submit = cp.stamped(0, "job_submit", 0.0);
  const CpNode grant1 = cp.stamped(0, "container_grant", 1.0, 1);
  const CpNode start1 = cp.stamped(0, "map_start", 1.0, 0, 0);
  const CpNode fail = cp.stamped(0, "map_fail", 5.0, 0, 0);
  const CpNode grant2 = cp.stamped(0, "container_grant", 6.0, 2);
  const CpNode start2 = cp.stamped(0, "map_start", 6.0, 0, 1);
  const CpNode done = cp.stamped(0, "map_done", 10.0, 0, 1);
  const CpNode fin = cp.stamped(0, "job_finish", 10.5);
  cp.edge(submit, grant1, Blame::SchedWait);
  cp.edge(grant1, start1, Blame::SchedWait);
  cp.edge(start1, fail, Blame::RetryRecovery);
  cp.edge(fail, grant2, Blame::RetryRecovery);  // backoff + re-request
  cp.edge(grant2, start2, Blame::SchedWait);
  cp.edge(start2, done, Blame::MapCompute);
  cp.edge(done, fin, Blame::MapCompute);
  const std::vector<CpSegment> path = cp.extract(fin);
  EXPECT_DOUBLE_EQ(total_secs(path), 10.5);
  const std::vector<double> blame = CriticalPathBuilder::blame_breakdown(path);
  ASSERT_EQ(blame.size(), static_cast<std::size_t>(kNumBlames));
  // Attempt 0's failed run plus the backoff window: [1, 5] + [5, 6].
  EXPECT_DOUBLE_EQ(blame[static_cast<int>(Blame::RetryRecovery)], 5.0);
  EXPECT_DOUBLE_EQ(blame[static_cast<int>(Blame::MapCompute)], 4.5);
  EXPECT_DOUBLE_EQ(blame[static_cast<int>(Blame::SchedWait)], 1.0);
  EXPECT_DOUBLE_EQ(blame[static_cast<int>(Blame::Speculation)], 0.0);
}

TEST(CriticalPath, BlameNamesMatchTheExportTaxonomy) {
  EXPECT_STREQ(blame_name(Blame::SchedWait), "sched_wait");
  EXPECT_STREQ(blame_name(Blame::MapCompute), "map_compute");
  EXPECT_STREQ(blame_name(Blame::SpillMerge), "spill_merge");
  EXPECT_STREQ(blame_name(Blame::ShuffleNet), "shuffle_net");
  EXPECT_STREQ(blame_name(Blame::ReduceCompute), "reduce_compute");
  EXPECT_STREQ(blame_name(Blame::RetryRecovery), "retry_recovery");
  EXPECT_STREQ(blame_name(Blame::Speculation), "speculation");
}

TEST(CriticalPath, EmptyBuilderWritesTheFullZeroTaxonomy) {
  CriticalPathBuilder cp;
  EXPECT_TRUE(cp.empty());
  EXPECT_EQ(to_json(cp),
            "{\"jobs\":[],\"blame_totals\":{\"sched_wait\":0,"
            "\"map_compute\":0,\"spill_merge\":0,\"shuffle_net\":0,"
            "\"reduce_compute\":0,\"retry_recovery\":0,\"speculation\":0}}");
}

TEST(CriticalPath, WriteJsonCarriesFinishedJobsInIdOrder) {
  CriticalPathBuilder cp;
  for (std::int64_t job : {1, 0}) {
    const double base = job == 0 ? 0.0 : 100.0;
    const CpNode submit = cp.stamped(job, "job_submit", base);
    const CpNode fin = cp.stamped(job, "job_finish", base + 2.0);
    cp.edge(submit, fin, Blame::MapCompute);
    cp.mark_job_finish(job, fin);
  }
  ASSERT_EQ(cp.finished_jobs().size(), 2u);
  const std::string json = to_json(cp);
  // finished_jobs() is keyed by job id, so job 0 exports before job 1
  // even though it was marked second.
  EXPECT_LT(json.find("\"id\":0"), json.find("\"id\":1"));
  EXPECT_NE(json.find("\"from\":\"job_submit\",\"to\":\"job_finish\","
                      "\"t0\":0,\"t1\":2,\"secs\":2,"
                      "\"blame\":\"map_compute\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"blame_totals\":{\"sched_wait\":0,"
                      "\"map_compute\":4,"),
            std::string::npos)
      << json;
}

}  // namespace
}  // namespace mron::obs
