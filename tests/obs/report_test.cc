// Run-report rollup and serialization invariants (obs/report.h): totals are
// the sum of the per-job rollups, serialization is deterministic, the
// collector exports the lexicographically greatest run, and a real
// simulation produces the full schema with a final-flush sample at the
// simulation end time.
#include "obs/report.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "mapreduce/report_rollup.h"
#include "mapreduce/simulation.h"
#include "obs/enabled.h"
#include "obs/recorder.h"
#include "workloads/benchmarks.h"

namespace mron::obs {
namespace {

ReportJob make_job(std::int64_t id, double submit, double finish,
                   double map_records, double reduce_records) {
  ReportJob job;
  job.id = id;
  job.name = "job" + std::to_string(id);
  job.submit_time = submit;
  job.finish_time = finish;
  job.phases["map"]["output_records"] = map_records;
  job.phases["map"]["spilled_records"] = map_records / 2;
  job.phases["reduce"]["output_records"] = reduce_records;
  job.stats["failed_attempts"] = 1.0;
  job.stats["spilled_records"] = map_records / 2;
  job.config["io.sort.mb"] = 100.0;
  return job;
}

TEST(RunReport, TotalsSumPhaseCountersAcrossJobs) {
  RunReport report;
  report.add_job(make_job(0, 0.0, 50.0, 1000.0, 10.0));
  report.add_job(make_job(1, 10.0, 80.0, 500.0, 20.0));
  const auto totals = report.run_totals();
  EXPECT_DOUBLE_EQ(totals.at("map.output_records"), 1500.0);
  EXPECT_DOUBLE_EQ(totals.at("map.spilled_records"), 750.0);
  EXPECT_DOUBLE_EQ(totals.at("reduce.output_records"), 30.0);
  EXPECT_DOUBLE_EQ(totals.at("jobs"), 2.0);
  EXPECT_DOUBLE_EQ(totals.at("failed_attempts"), 2.0);
  // exec_secs spans first submit to last finish.
  EXPECT_DOUBLE_EQ(totals.at("exec_secs"), 80.0);
}

TEST(RunReport, MetaPreservesInsertionOrderAndOverwrites) {
  RunReport report;
  report.set_meta("b", "1");
  report.set_meta("a", "2");
  report.set_meta("b", "3");
  ASSERT_EQ(report.meta().size(), 2u);
  EXPECT_EQ(report.meta()[0].first, "b");
  EXPECT_EQ(report.meta()[0].second, "3");
  EXPECT_EQ(report.meta()[1].first, "a");
}

TEST(RunReport, SerializationIsDeterministic) {
  RunReport report;
  report.set_meta("app", "test");
  report.add_job(make_job(0, 0.0, 10.0, 100.0, 5.0));
  const std::string once = report.to_json(nullptr);
  const std::string twice = report.to_json(nullptr);
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("\"schema\":\"mron.run_report/4\""), std::string::npos);
}

TEST(RunReport, NullRecorderLeavesObsSectionsEmpty) {
  RunReport report;
  const std::string json = report.to_json(nullptr);
  // Even without a recorder the critical_path block carries the full
  // blame taxonomy (all zeros), so downstream validators see one shape.
  EXPECT_NE(json.find("\"critical_path\":{\"jobs\":[],"
                      "\"blame_totals\":{\"sched_wait\":0,"),
            std::string::npos);
  // The golden top-level key set, in order, present even with no recorder.
  const char* keys[] = {"\"schema\":", "\"meta\":",   "\"jobs\":",
                        "\"totals\":", "\"metrics\":", "\"series\":",
                        "\"audit\":"};
  std::size_t pos = 0;
  for (const char* key : keys) {
    const std::size_t at = json.find(key, pos);
    ASSERT_NE(at, std::string::npos) << key << " missing in " << json;
    pos = at;
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ReportCollector, ExportsTheLexicographicallyGreatestKey) {
  const std::string path = testing::TempDir() + "mron_collector_report.json";
  ReportCollector collector;
  EXPECT_TRUE(collector.empty());
  EXPECT_TRUE(collector.offer("1|b", "{\"run\":\"b\"}", path));
  EXPECT_FALSE(collector.empty());
  // A lower key neither wins nor rewrites the file.
  EXPECT_FALSE(collector.offer("0|z", "{\"run\":\"z\"}", path));
  EXPECT_EQ(slurp(path), "{\"run\":\"b\"}");
  // A higher key replaces it; equal keys (identical runs) also rewrite.
  EXPECT_TRUE(collector.offer("1|c", "{\"run\":\"c\"}", path));
  EXPECT_TRUE(collector.offer("1|c", "{\"run\":\"c\"}", path));
  EXPECT_EQ(slurp(path), "{\"run\":\"c\"}");
}

#if MRON_OBS_ENABLED

TEST(RunReport, SimulationRollupProducesFullSchema) {
  mapreduce::SimulationOptions sopt;
  sopt.seed = 41;
  sopt.observe = true;
  mapreduce::Simulation sim(sopt);
  mapreduce::JobSpec spec =
      workloads::make_terasort(sim, mebibytes(128.0 * 24), 6);
  const mapreduce::JobConfig config = spec.config;
  const mapreduce::JobResult result = sim.run_job(spec);

  const std::string json = mapreduce::run_report_json(
      sim, {{&result, &config}}, {{"app", "terasort"}});
  EXPECT_NE(json.find("\"schema\":\"mron.run_report/4\""), std::string::npos);
  EXPECT_NE(json.find("\"app\":\"terasort\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster.node0.cpu_util\""), std::string::npos);
  EXPECT_NE(json.find("\"spilled_records\""), std::string::npos);
  // Task-duration histograms export interpolated quantiles.
  EXPECT_NE(json.find("\"mr.map.task_secs.p95\""), std::string::npos);

  // The /4 dfs block: placement counts are present even on a fault-free
  // run, and a reliable cluster ends fully replicated with zero copies.
  EXPECT_NE(json.find("\"dfs\":{\"blocks_total\":24"), std::string::npos);
  EXPECT_NE(json.find("\"under_replicated_final\":0"), std::string::npos);
  EXPECT_NE(json.find("\"rerepl.started\":0"), std::string::npos);
  EXPECT_NE(json.find("\"dfs_policy\":\"rack-aware\""), std::string::npos);

  // The /3 critical_path block: job 0 carries a non-empty segment path
  // rooted at job_submit and ending in job_finish, plus blame totals.
  EXPECT_NE(json.find("\"critical_path\":{\"jobs\":[{\"id\":0,\"segments\":["),
            std::string::npos);
  EXPECT_NE(json.find("\"from\":\"job_submit\""), std::string::npos);
  EXPECT_NE(json.find("\"to\":\"job_finish\""), std::string::npos);
  EXPECT_NE(json.find("\"blame_totals\":{\"sched_wait\":"), std::string::npos);

  // Satellite: Simulation::run flushes the recorder and takes one final
  // registry sample after the engine drains, so the last published series
  // point lands exactly at the simulation end time.
  const Recorder& rec = *sim.recorder();
  const Series* live = rec.series().find("yarn.live_containers");
  ASSERT_NE(live, nullptr);
  ASSERT_GT(live->size(), 0u);
  EXPECT_DOUBLE_EQ(live->at(live->size() - 1).time, sim.engine().now());

  // Wave-progress series end fully complete.
  const Series* frac = rec.series().find("job0.maps_completed_frac");
  ASSERT_NE(frac, nullptr);
  ASSERT_GT(frac->size(), 0u);
  EXPECT_DOUBLE_EQ(frac->at(frac->size() - 1).value, 1.0);
}

TEST(RunReport, IdenticalSimulationsSerializeIdentically) {
  auto run_one = [] {
    mapreduce::SimulationOptions sopt;
    sopt.seed = 42;
    sopt.observe = true;
    mapreduce::Simulation sim(sopt);
    mapreduce::JobSpec spec =
        workloads::make_terasort(sim, mebibytes(128.0 * 16), 4);
    const mapreduce::JobConfig config = spec.config;
    const mapreduce::JobResult result = sim.run_job(spec);
    return mapreduce::run_report_json(sim, {{&result, &config}},
                                      {{"app", "terasort"}});
  };
  EXPECT_EQ(run_one(), run_one());
}

#endif  // MRON_OBS_ENABLED

}  // namespace
}  // namespace mron::obs
