#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"

namespace mron::obs {
namespace {

TEST(Counter, AccumulatesDeltas) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Gauge, KeepsLatestValue) {
  Gauge g;
  g.set(4.0);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(Histogram, BucketsAreInclusiveUpperBounds) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(1.0);    // lands in bucket 0 (inclusive)
  h.observe(1.001);  // bucket 1
  h.observe(50.0);   // bucket 2
  h.observe(1e9);    // overflow bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.001 + 50.0 + 1e9);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.observe(0.5);
  b.observe(0.5);
  b.observe(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.bucket(0), 2);
  EXPECT_EQ(a.bucket(2), 1);
}

TEST(TimeSeries, RingEvictsOldestFirst) {
  TimeSeries ts(3);
  for (int i = 0; i < 5; ++i) {
    ts.push(static_cast<double>(i), static_cast<double>(i * 10));
  }
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.dropped(), 2u);
  EXPECT_DOUBLE_EQ(ts.at(0).time, 2.0);
  EXPECT_DOUBLE_EQ(ts.at(2).value, 40.0);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("jobs");
  Counter& c2 = reg.counter("jobs");
  EXPECT_EQ(&c1, &c2);
  c1.add();
  EXPECT_DOUBLE_EQ(reg.value("jobs"), 1.0);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.has("jobs"));
  EXPECT_FALSE(reg.has("nope"));
  EXPECT_DOUBLE_EQ(reg.value("nope"), 0.0);
}

TEST(MetricsRegistry, KindMismatchIsAnError) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), CheckError);
}

TEST(MetricsRegistry, SampleSnapshotsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("c").add(2.0);
  reg.gauge("g").set(7.0);
  reg.sample(1.0);
  reg.counter("c").add(1.0);
  reg.sample(2.0);

  const TimeSeries* cs = reg.series("c");
  ASSERT_NE(cs, nullptr);
  ASSERT_EQ(cs->size(), 2u);
  EXPECT_DOUBLE_EQ(cs->at(0).value, 2.0);
  EXPECT_DOUBLE_EQ(cs->at(1).value, 3.0);
  EXPECT_DOUBLE_EQ(cs->at(1).time, 2.0);
  const TimeSeries* gs = reg.series("g");
  ASSERT_NE(gs, nullptr);
  EXPECT_DOUBLE_EQ(gs->at(0).value, 7.0);
  EXPECT_EQ(reg.series("missing"), nullptr);
}

TEST(MetricsRegistry, SampleSkipsUnchangedValues) {
  MetricsRegistry reg;
  reg.gauge("g").set(5.0);
  reg.sample(1.0);
  reg.sample(2.0);  // unchanged — no new point
  reg.gauge("g").set(6.0);
  reg.sample(3.0);

  const TimeSeries* gs = reg.series("g");
  ASSERT_NE(gs, nullptr);
  ASSERT_EQ(gs->size(), 2u);
  EXPECT_DOUBLE_EQ(gs->at(0).time, 1.0);
  EXPECT_DOUBLE_EQ(gs->at(1).time, 3.0);
  EXPECT_DOUBLE_EQ(gs->at(1).value, 6.0);
}

TEST(MetricsRegistry, MergeFoldsByKind) {
  MetricsRegistry a, b;
  a.counter("c").add(1.0);
  b.counter("c").add(2.0);
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  b.counter("only_b").add(4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value("c"), 3.0);
  EXPECT_DOUBLE_EQ(a.value("g"), 9.0);
  EXPECT_DOUBLE_EQ(a.value("only_b"), 4.0);
}

TEST(MetricsRegistry, WriteJsonIsWellFormed) {
  MetricsRegistry reg;
  reg.counter("a.count").add(3.0);
  reg.gauge("b.level").set(0.25);
  reg.histogram("c.lat", {1.0, 2.0}).observe(1.5);
  reg.sample(1.0);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity (no strings in the
  // schema contain braces).
  int depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Histogram, QuantileInterpolatesWithinTheBucket) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);  // all in (-inf, 10]
  // Rank 5 of 10 uniform in [0, 10] -> 5.0; rank 9.5 -> 9.5.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 9.5);
}

TEST(Histogram, QuantileWalksAcrossBuckets) {
  Histogram h({1.0, 3.0});
  h.observe(0.5);  // bucket 0
  h.observe(2.0);  // bucket 1
  h.observe(3.0);  // bucket 1
  // Rank 1.5 of 3: past bucket 0 (count 1), half a unit into bucket 1's
  // two observations across [1, 3] -> 1.5.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);
}

TEST(Histogram, QuantileOverflowReportsTheLastFiniteBound) {
  Histogram h({1.0, 10.0});
  h.observe(1e9);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 10.0);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(MetricsRegistry, QuantileByNameOnlyAnswersForHistograms) {
  MetricsRegistry reg;
  for (int i = 0; i < 10; ++i) {
    reg.histogram("lat", {10.0, 20.0}).observe(5.0);
  }
  reg.counter("n").add(7.0);
  EXPECT_TRUE(reg.is_histogram("lat"));
  EXPECT_FALSE(reg.is_histogram("n"));
  EXPECT_FALSE(reg.is_histogram("absent"));
  EXPECT_DOUBLE_EQ(reg.quantile("lat", 0.5), 5.0);
  EXPECT_DOUBLE_EQ(reg.quantile("n", 0.5), 0.0);
  EXPECT_DOUBLE_EQ(reg.quantile("absent", 0.5), 0.0);
}

TEST(Histogram, OverflowCountTracksOnlyTheImplicitBucket) {
  Histogram h({1.0, 10.0});
  EXPECT_EQ(h.overflow_count(), 0);
  h.observe(0.5);
  h.observe(10.0);  // inclusive upper bound: still a finite bucket
  EXPECT_EQ(h.overflow_count(), 0);
  h.observe(10.001);
  h.observe(1e9);
  EXPECT_EQ(h.overflow_count(), 2);
}

TEST(Histogram, QuantileClampedFlagsRanksInTheOverflowBucket) {
  Histogram h({1.0, 10.0});
  EXPECT_FALSE(h.quantile_clamped(0.99));  // empty: nothing clamps
  for (int i = 0; i < 99; ++i) h.observe(0.5);
  EXPECT_FALSE(h.quantile_clamped(0.99));
  h.observe(1e9);  // 1 of 100 overflows: p99 holds, p999 clamps
  EXPECT_FALSE(h.quantile_clamped(0.5));
  EXPECT_TRUE(h.quantile_clamped(0.999));
  Histogram all_over({1.0});
  all_over.observe(5.0);
  EXPECT_TRUE(all_over.quantile_clamped(0.5));
}

TEST(MetricsRegistry, OverflowByNameOnlyAnswersForHistograms) {
  MetricsRegistry reg;
  reg.histogram("lat", {1.0}).observe(50.0);
  reg.counter("n").add(7.0);
  EXPECT_EQ(reg.overflow_count("lat"), 1);
  EXPECT_TRUE(reg.quantile_clamped("lat", 0.99));
  EXPECT_EQ(reg.overflow_count("n"), 0);
  EXPECT_FALSE(reg.quantile_clamped("n", 0.99));
  EXPECT_EQ(reg.overflow_count("absent"), 0);
  EXPECT_FALSE(reg.quantile_clamped("absent", 0.99));
}

TEST(MetricsRegistry, WriteJsonCarriesOverflowCount) {
  MetricsRegistry reg;
  reg.histogram("lat", {1.0, 10.0}).observe(1e9);
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_NE(os.str().find("\"overflow_count\":1"), std::string::npos)
      << os.str();
}

TEST(MetricsRegistry, WriteJsonCarriesInterpolatedQuantiles) {
  MetricsRegistry reg;
  for (int i = 0; i < 10; ++i) {
    reg.histogram("lat", {10.0, 20.0}).observe(5.0);
  }
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"p50\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\":9.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

}  // namespace
}  // namespace mron::obs
