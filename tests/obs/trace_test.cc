#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mron::obs {
namespace {

TEST(TraceRecorder, SpanPairingAndCounts) {
  TraceRecorder tr;
  const SpanId a = tr.begin("map_attempt", "task", 0, 1, 0.0);
  const SpanId b = tr.begin("map_wave", "tuner", kTunerTracePid, 0, 0.5);
  EXPECT_EQ(tr.open_spans(), 2u);
  tr.end(a, 1.0);
  EXPECT_EQ(tr.open_spans(), 1u);
  tr.end(b, 2.0);
  EXPECT_EQ(tr.open_spans(), 0u);
  EXPECT_EQ(tr.span_count(), 2u);
  EXPECT_EQ(tr.span_count("task"), 1u);
  EXPECT_EQ(tr.span_count("tuner"), 1u);
  EXPECT_EQ(tr.span_count("phase"), 0u);
  EXPECT_EQ(tr.event_count(), 4u);
}

TEST(TraceRecorder, EndOnInvalidSpanIsNoop) {
  TraceRecorder tr;
  tr.end(kInvalidSpan, 1.0);
  EXPECT_EQ(tr.event_count(), 0u);
  EXPECT_EQ(tr.open_spans(), 0u);
}

TEST(TraceRecorder, DetailDefaultsOff) {
  TraceRecorder tr;
  EXPECT_FALSE(tr.detail());
  tr.set_detail(true);
  EXPECT_TRUE(tr.detail());
}

// Golden test: the exact Chrome trace_event JSON for a tiny trace. Every
// begin has a matching end, metadata precedes the events, and sim-time
// seconds are exported as integer microseconds.
TEST(TraceRecorder, GoldenChromeJson) {
  TraceRecorder tr;
  tr.set_process_name(0, "node0");
  tr.set_thread_name(0, 7, "c7");
  const SpanId s = tr.begin("map_attempt", "task", 0, 7, 1.5);
  tr.end(s, 2.0);
  std::ostringstream os;
  tr.write_chrome_json(os);
  EXPECT_EQ(
      os.str(),
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"node0\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":7,"
      "\"args\":{\"name\":\"c7\"}},"
      "{\"name\":\"map_attempt\",\"cat\":\"task\",\"ph\":\"B\","
      "\"ts\":1500000,\"pid\":0,\"tid\":7},"
      "{\"name\":\"map_attempt\",\"cat\":\"task\",\"ph\":\"E\","
      "\"ts\":2000000,\"pid\":0,\"tid\":7}"
      "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(TraceRecorder, AsyncEventsCarryCorrelationId) {
  TraceRecorder tr;
  tr.async_begin("shuffle_fetch", "fetch", 3, 42, 0.25);
  tr.async_end("shuffle_fetch", "fetch", 3, 42, 0.75);
  std::ostringstream os;
  tr.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  // Async pairs are not duration spans.
  EXPECT_EQ(tr.span_count(), 0u);
  EXPECT_EQ(tr.open_spans(), 0u);
}

TEST(TraceRecorder, BeginArgumentsLandInArgsObject) {
  TraceRecorder tr;
  const SpanId s =
      tr.begin("map_wave", "tuner", kTunerTracePid, 0, 0.0, "batch", 8.0);
  tr.end(s, 1.0);
  std::ostringstream os;
  tr.write_chrome_json(os);
  EXPECT_NE(os.str().find("\"args\":{\"batch\":8}"), std::string::npos);
}

// Critical-path flow arrows: 's' starts at the producer's lane, 'f' ends
// at the consumer's and binds to the enclosing slice ("bp":"e") so the
// arrow lands on the producing span rather than floating.
TEST(TraceRecorder, FlowEventsCorrelateProducerAndConsumer) {
  TraceRecorder tr;
  tr.flow_begin("critical_path", "cp", 0, 3, 1.0, 17);
  tr.flow_end("critical_path", "cp", 2, 5, 4.0, 17);
  std::ostringstream os;
  tr.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("{\"name\":\"critical_path\",\"cat\":\"cp\","
                      "\"ph\":\"s\",\"ts\":1000000,\"pid\":0,\"tid\":3,"
                      "\"id\":17}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"name\":\"critical_path\",\"cat\":\"cp\","
                      "\"ph\":\"f\",\"ts\":4000000,\"pid\":2,\"tid\":5,"
                      "\"id\":17,\"bp\":\"e\"}"),
            std::string::npos)
      << json;
  // Flow events are not duration spans.
  EXPECT_EQ(tr.span_count(), 0u);
  EXPECT_EQ(tr.open_spans(), 0u);
  EXPECT_EQ(tr.event_count(), 2u);
}

TEST(TraceRecorder, InstantEventsAreThreadScoped) {
  TraceRecorder tr;
  tr.instant("oom", "task", 2, 9, 3.0);
  std::ostringstream os;
  tr.write_chrome_json(os);
  EXPECT_NE(os.str().find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(os.str().find("\"s\":\"t\""), std::string::npos);
}

}  // namespace
}  // namespace mron::obs
