// End-to-end flight-recorder checks: the invariants that make the exported
// artifacts trustworthy. Task spans match the attempt reports, wave spans
// match the tuner's wave count, every configuration the aggressive search
// tried has a config_assign audit event, and the conservative tuner logs a
// rule_fire per Section-6 rule firing.
#include <gtest/gtest.h>

#include <sstream>

#include "mapreduce/simulation.h"
#include "obs/enabled.h"
#include "obs/recorder.h"
#include "tuner/online_tuner.h"
#include "workloads/benchmarks.h"

namespace mron::tuner {
namespace {

using mapreduce::JobConfig;
using mapreduce::JobResult;
using mapreduce::JobSpec;
using mapreduce::Simulation;
using mapreduce::SimulationOptions;

JobSpec small_terasort(Simulation& sim, int blocks = 120) {
  return workloads::make_terasort(sim, mebibytes(128.0 * blocks),
                                  std::max(4, blocks / 4));
}

#if MRON_OBS_ENABLED
TunerOptions small_options(TuningStrategy strategy) {
  TunerOptions opt;
  opt.strategy = strategy;
  opt.climber.global_samples = 8;
  opt.climber.local_samples = 6;
  opt.climber.max_global_rounds = 2;
  return opt;
}
#endif

TEST(FlightRecorder, OffByDefault) {
  SimulationOptions sopt;
  sopt.seed = 31;
  Simulation sim(sopt);
  EXPECT_EQ(sim.recorder(), nullptr);
  const JobResult r = sim.run_job(small_terasort(sim, 16));
  EXPECT_GT(r.exec_time(), 0.0);
}

#if MRON_OBS_ENABLED

TEST(FlightRecorder, PlainRunPublishesMetricsAndTaskSpans) {
  SimulationOptions sopt;
  sopt.seed = 32;
  sopt.observe = true;
  Simulation sim(sopt);
  const JobResult r = sim.run_job(small_terasort(sim, 40));
  ASSERT_NE(sim.recorder(), nullptr);
  const auto& rec = *sim.recorder();

  // Substrate metrics: server gauges, monitor samples, YARN counters, task
  // counters all present.
  const auto& m = rec.metrics();
  EXPECT_GT(m.value("monitor.samples"), 0.0);
  EXPECT_TRUE(m.has("cluster.node0.cpu_util"));
  EXPECT_GT(m.value("yarn.containers_allocated"), 0.0);
  EXPECT_GT(m.value("mr.map.spills"), 0.0);
  EXPECT_GT(m.value("mr.shuffle.fetches"), 0.0);
  const auto* series = m.series("monitor.samples");
  ASSERT_NE(series, nullptr);
  EXPECT_GT(series->size(), 0u);

  // Without trace detail there is exactly one span per task attempt;
  // speculative kills close their spans but file no report.
  const std::size_t attempts = r.map_reports.size() + r.reduce_reports.size() +
                               static_cast<std::size_t>(r.speculative_launches);
  EXPECT_EQ(rec.trace().span_count("task"), attempts);
  EXPECT_EQ(rec.trace().span_count("phase"), 0u);
  EXPECT_EQ(rec.trace().open_spans(), 0u);
}

TEST(FlightRecorder, TraceDetailAddsPhaseSpans) {
  SimulationOptions sopt;
  sopt.seed = 33;
  sopt.observe = true;
  sopt.trace_detail = true;
  Simulation sim(sopt);
  (void)sim.run_job(small_terasort(sim, 24));
  const auto& trace = sim.recorder()->trace();
  EXPECT_GT(trace.span_count("phase"), 0u);
  EXPECT_EQ(trace.open_spans(), 0u);
}

TEST(FlightRecorder, AggressiveAuditMatchesOutcome) {
  SimulationOptions sopt;
  sopt.seed = 34;
  sopt.observe = true;
  Simulation sim(sopt);
  JobSpec spec = small_terasort(sim);
  OnlineTuner tuner(small_options(TuningStrategy::Aggressive));
  JobResult result;
  auto& am = sim.submit_job(spec, [&](const JobResult& r) { result = r; });
  tuner.attach(am);
  sim.run();

  const auto& out = tuner.outcome(am.id());
  ASSERT_NE(out.decisions, nullptr);
  const std::int64_t job = am.id().value();

  // Every configuration the search tried has its config_assign event.
  EXPECT_GT(out.configs_tried, 0);
  EXPECT_EQ(out.decisions->count(job, "config_assign"),
            static_cast<std::size_t>(out.configs_tried));
  // One wave span per wave, on the tuner's synthetic trace process.
  EXPECT_EQ(sim.recorder()->trace().span_count("tuner"),
            static_cast<std::size_t>(out.waves));
  // One task span per attempt (killed speculative backups report nothing).
  const std::size_t attempts =
      result.map_reports.size() + result.reduce_reports.size() +
      static_cast<std::size_t>(result.speculative_launches);
  EXPECT_EQ(sim.recorder()->trace().span_count("task"), attempts);
  EXPECT_EQ(sim.recorder()->trace().open_spans(), 0u);

  // The decision flow is bracketed: attach, then waves, then finalize.
  EXPECT_EQ(out.decisions->count(job, "attach"), 1u);
  EXPECT_GE(out.decisions->count(job, "wave_start"),
            out.decisions->count(job, "wave_complete"));
  EXPECT_EQ(out.decisions->count(job, "finalize"), 2u);  // map + reduce
  EXPECT_GT(out.decisions->count(job, "climber_step"), 0u);

  // The exports are structurally sound JSON.
  std::ostringstream trace_os, audit_os;
  sim.recorder()->trace().write_chrome_json(trace_os);
  sim.recorder()->audit().write_jsonl(audit_os);
  int depth = 0;
  for (char ch : trace_os.str()) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(audit_os.str().find("\"kind\":\"config_assign\""),
            std::string::npos);
}

TEST(FlightRecorder, ConservativeAuditsEveryRuleFiring) {
  SimulationOptions sopt;
  sopt.seed = 35;
  sopt.observe = true;
  Simulation sim(sopt);
  JobSpec spec = small_terasort(sim, 200);
  OnlineTuner tuner(small_options(TuningStrategy::Conservative));
  auto& am = sim.submit_job(spec);
  tuner.attach(am);
  sim.run();

  const auto& out = tuner.outcome(am.id());
  ASSERT_NE(out.decisions, nullptr);
  const std::int64_t job = am.id().value();
  ASSERT_GT(out.conservative_adjustments, 0);
  EXPECT_EQ(out.decisions->count(job, "conservative_adjust"),
            static_cast<std::size_t>(out.conservative_adjustments));
  // Each adjustment is justified by at least one named Section-6 rule.
  EXPECT_GE(out.decisions->count(job, "rule_fire"),
            out.decisions->count(job, "conservative_adjust"));
  // Category-III pushes into running tasks leave config_push events.
  EXPECT_GT(out.decisions->count(job, "config_push"), 0u);
  // No aggressive machinery ran.
  EXPECT_EQ(out.decisions->count(job, "wave_start"), 0u);
}

TEST(FlightRecorder, AuditLogFiltersByJob) {
  SimulationOptions sopt;
  sopt.seed = 36;
  sopt.observe = true;
  sopt.fair_scheduler = true;
  Simulation sim(sopt);
  OnlineTuner tuner(small_options(TuningStrategy::Conservative));
  auto& am_a = sim.submit_job(small_terasort(sim, 80));
  auto& am_b = sim.submit_job(workloads::make_bbp(20));
  tuner.attach(am_a);
  tuner.attach(am_b);
  sim.run();

  const auto& audit = sim.recorder()->audit();
  EXPECT_EQ(audit.count(am_a.id().value(), "attach"), 1u);
  EXPECT_EQ(audit.count(am_b.id().value(), "attach"), 1u);
  const auto a_events = audit.for_job(am_a.id().value());
  for (const auto* ev : a_events) {
    EXPECT_EQ(ev->job, am_a.id().value());
  }
  EXPECT_EQ(audit.count(-1, "attach"), 2u);
}

#endif  // MRON_OBS_ENABLED

}  // namespace
}  // namespace mron::tuner
