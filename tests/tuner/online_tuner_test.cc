#include "tuner/online_tuner.h"

#include <gtest/gtest.h>

#include "faults/fault_plan.h"
#include "workloads/benchmarks.h"

namespace mron::tuner {
namespace {

using mapreduce::JobConfig;
using mapreduce::JobResult;
using mapreduce::JobSpec;
using mapreduce::Simulation;
using mapreduce::SimulationOptions;
using workloads::Benchmark;
using workloads::Corpus;

// A scaled-down Terasort (fewer blocks, small waves) keeps these
// integration tests fast while exercising the full machinery.
JobSpec small_terasort(Simulation& sim, int blocks = 120) {
  JobSpec spec = workloads::make_terasort(
      sim, mebibytes(128.0 * blocks), std::max(4, blocks / 4));
  return spec;
}

TunerOptions small_options(TuningStrategy strategy) {
  TunerOptions opt;
  opt.strategy = strategy;
  opt.climber.global_samples = 8;
  opt.climber.local_samples = 6;
  opt.climber.max_global_rounds = 2;
  return opt;
}

TEST(OnlineTunerAggressive, TestRunCompletesAndProducesConfig) {
  SimulationOptions sopt;
  sopt.seed = 11;
  Simulation sim(sopt);
  JobSpec spec = small_terasort(sim);
  OnlineTuner tuner(small_options(TuningStrategy::Aggressive));
  bool finished = false;
  auto& am = sim.submit_job(spec, [&](const JobResult&) { finished = true; });
  tuner.attach(am);
  sim.run();
  EXPECT_TRUE(finished);
  const auto& out = tuner.outcome(am.id());
  EXPECT_GT(out.waves, 1);
  EXPECT_GT(out.configs_tried, 8);
  // The found config must differ from the default and satisfy constraints.
  JobConfig best = out.best_config;
  EXPECT_NE(best, JobConfig{});
  EXPECT_EQ(mapreduce::clamp_constraints(best), 0);
}

TEST(OnlineTunerAggressive, BestConfigBeatsDefaultOnRerun) {
  // The paper's expedited-test-run flow: tune once, rerun with the result.
  SimulationOptions sopt;
  sopt.seed = 12;
  Simulation tune_sim(sopt);
  JobSpec spec = small_terasort(tune_sim, 160);
  OnlineTuner tuner(small_options(TuningStrategy::Aggressive));
  auto& am = tune_sim.submit_job(spec);
  tuner.attach(am);
  tune_sim.run();
  const JobConfig best = tuner.outcome(am.id()).best_config;

  auto run_with = [](const JobConfig& cfg, std::uint64_t seed) {
    SimulationOptions o;
    o.seed = seed;
    Simulation sim(o);
    JobSpec s = small_terasort(sim, 160);
    s.config = cfg;
    return sim.run_job(s).exec_time();
  };
  const double def = run_with(JobConfig{}, 5);
  const double tuned = run_with(best, 5);
  EXPECT_LT(tuned, def);
}

TEST(OnlineTunerAggressive, StoresOutcomeInKnowledgeBase) {
  SimulationOptions sopt;
  sopt.seed = 13;
  Simulation sim(sopt);
  JobSpec spec = small_terasort(sim);
  OnlineTuner tuner(small_options(TuningStrategy::Aggressive));
  auto& am = sim.submit_job(spec);
  tuner.attach(am);
  sim.run();
  EXPECT_TRUE(tuner.knowledge_base().lookup("Terasort").has_value());
}

TEST(OnlineTunerAggressive, SpillsReachOptimalOnTunedRerun) {
  SimulationOptions sopt;
  sopt.seed = 14;
  Simulation tune_sim(sopt);
  JobSpec spec = small_terasort(tune_sim);
  OnlineTuner tuner(small_options(TuningStrategy::Aggressive));
  auto& am = tune_sim.submit_job(spec);
  tuner.attach(am);
  tune_sim.run();

  SimulationOptions o;
  o.seed = 15;
  Simulation sim(o);
  JobSpec s = small_terasort(sim);
  s.config = tuner.outcome(am.id()).best_config;
  const JobResult r = sim.run_job(s);
  EXPECT_EQ(r.counters.map.spilled_records,
            r.counters.map.combine_output_records);
}

TEST(OnlineTunerAggressive, RulesAblationStillConverges) {
  SimulationOptions sopt;
  sopt.seed = 16;
  Simulation sim(sopt);
  JobSpec spec = small_terasort(sim);
  TunerOptions opt = small_options(TuningStrategy::Aggressive);
  opt.use_tuning_rules = false;  // pure black-box smart hill climbing
  OnlineTuner tuner(opt);
  bool finished = false;
  auto& am = sim.submit_job(spec, [&](const JobResult&) { finished = true; });
  tuner.attach(am);
  sim.run();
  EXPECT_TRUE(finished);
  EXPECT_GT(tuner.outcome(am.id()).configs_tried, 0);
}

TEST(OnlineTunerConservative, ImprovesSingleRunWithoutGating) {
  auto run_job = [](bool tuned, std::uint64_t seed) {
    SimulationOptions sopt;
    sopt.seed = seed;
    Simulation sim(sopt);
    JobSpec spec = small_terasort(sim, 200);
    double exec = -1;
    auto& am =
        sim.submit_job(spec, [&](const JobResult& r) { exec = r.exec_time(); });
    OnlineTuner tuner(small_options(TuningStrategy::Conservative));
    if (tuned) tuner.attach(am);
    sim.run();
    return exec;
  };
  const double def = run_job(false, 21);
  const double tuned = run_job(true, 21);
  EXPECT_LT(tuned, def * 1.02);  // never materially worse
  EXPECT_GT(tuned, 0.0);
}

TEST(OnlineTunerConservative, MakesAdjustmentsDuringRun) {
  SimulationOptions sopt;
  sopt.seed = 22;
  Simulation sim(sopt);
  JobSpec spec = small_terasort(sim, 200);
  OnlineTuner tuner(small_options(TuningStrategy::Conservative));
  auto& am = sim.submit_job(spec);
  tuner.attach(am);
  sim.run();
  const auto& out = tuner.outcome(am.id());
  EXPECT_GT(out.conservative_adjustments, 0);
  // Conservative tuning should at minimum have fixed the spill trigger.
  EXPECT_DOUBLE_EQ(out.best_config.sort_spill_percent, 0.99);
}

// Fault awareness: the tuner still converges to a usable config when the
// run is poisoned by injected kills and a degraded straggler node, and the
// discard_faulted knob (drop samples from faulted hardware, replace their
// wave cost with the clean-slot median) is what keeps the two runs from
// being steered apart by hardware noise.
TEST(OnlineTunerFaulted, ConvergesUnderInjectedFaults) {
  auto run = [](bool discard_faulted) {
    SimulationOptions sopt;
    sopt.seed = 24;
    sopt.fault_plan = faults::FaultPlan::parse(
        "seed 6\n"
        "taskfail prob=0.05\n"
        "degrade node=2 from=0 until=100000 disk=0.3 nic=0.5");
    Simulation sim(sopt);
    JobSpec spec = small_terasort(sim, 120);
    TunerOptions topt = small_options(TuningStrategy::Aggressive);
    topt.discard_faulted = discard_faulted;
    OnlineTuner tuner(topt);
    bool finished = false;
    auto& am = sim.submit_job(spec, [&](const JobResult&) {
      finished = true;
    });
    tuner.attach(am);
    sim.run();
    EXPECT_TRUE(finished);
    return tuner.outcome(am.id());
  };
  const auto with_discard = run(true);
  const auto without_discard = run(false);
  // Both modes finish and produce a constraint-satisfying config; the
  // injected kills must not leak into the cost model as samples.
  for (const auto* out : {&with_discard, &without_discard}) {
    EXPECT_GT(out->waves, 1);
    EXPECT_GT(out->configs_tried, 0);
    JobConfig best = out->best_config;
    EXPECT_EQ(mapreduce::clamp_constraints(best), 0);
  }
}

TEST(OnlineTuner, MultipleJobsTunedIndependently) {
  SimulationOptions sopt;
  sopt.seed = 23;
  sopt.fair_scheduler = true;
  Simulation sim(sopt);
  OnlineTuner tuner(small_options(TuningStrategy::Conservative));
  JobSpec a = small_terasort(sim, 80);
  JobSpec b = workloads::make_bbp(20);
  int done = 0;
  auto& am_a = sim.submit_job(a, [&](const JobResult&) { ++done; });
  auto& am_b = sim.submit_job(b, [&](const JobResult&) { ++done; });
  tuner.attach(am_a);
  tuner.attach(am_b);
  sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_NO_THROW((void)tuner.outcome(am_a.id()));
  EXPECT_NO_THROW((void)tuner.outcome(am_b.id()));
}

}  // namespace
}  // namespace mron::tuner
