#include "tuner/cost.h"

#include <gtest/gtest.h>

namespace mron::tuner {
namespace {

using mapreduce::TaskKind;
using mapreduce::TaskReport;

TaskReport make_report(double mem, double cpu, std::int64_t spilled,
                       std::int64_t combined, double dur) {
  TaskReport r;
  r.task.kind = TaskKind::Map;
  r.start_time = 0.0;
  r.end_time = dur;
  r.mem_util = mem;
  r.cpu_util = cpu;
  r.mem_commit = mem;
  r.counters.spilled_records = spilled;
  r.counters.combine_output_records = combined;
  return r;
}

TEST(Cost, IdealTaskScoresNearOne) {
  // Full utilization, optimal spills, fastest task: only the T/Tmax term
  // remains (its own duration / itself = 1 when it IS the max).
  const auto r = make_report(0.88, 1.0, 100, 100, 10.0);
  EXPECT_NEAR(task_cost(r, 10.0), 0.12 + 0.0 + 1.0 + 1.0, 1e-9);
}

TEST(Cost, LowUtilizationPenalized) {
  const auto good = make_report(0.85, 0.9, 100, 100, 10.0);
  const auto bad = make_report(0.3, 0.2, 100, 100, 10.0);
  EXPECT_LT(task_cost(good, 20.0), task_cost(bad, 20.0));
}

TEST(Cost, SpillAmplificationPenalized) {
  const auto clean = make_report(0.8, 0.8, 100, 100, 10.0);
  const auto spilly = make_report(0.8, 0.8, 300, 100, 10.0);
  EXPECT_NEAR(task_cost(spilly, 20.0) - task_cost(clean, 20.0), 2.0, 1e-9);
}

TEST(Cost, SlowTasksPenalizedRelativeToMax) {
  const auto fast = make_report(0.8, 0.8, 100, 100, 5.0);
  const auto slow = make_report(0.8, 0.8, 100, 100, 50.0);
  EXPECT_LT(task_cost(fast, 50.0), task_cost(slow, 50.0));
}

TEST(Cost, OomGetsFlatPenalty) {
  TaskReport r = make_report(0.5, 0.5, 0, 0, 5.0);
  r.failed_oom = true;
  EXPECT_DOUBLE_EQ(task_cost(r, 10.0), kOomCostPenalty);
}

TEST(Cost, NearOomCommitmentAccruesRisk) {
  auto safe = make_report(0.8, 0.8, 100, 100, 10.0);
  safe.mem_commit = 0.85;
  auto risky = make_report(0.8, 0.8, 100, 100, 10.0);
  risky.mem_commit = 1.0;
  EXPECT_NEAR(task_cost(risky, 20.0) - task_cost(safe, 20.0),
              (1.0 - kMemCommitSafe) * kMemCommitRiskSlope, 1e-9);
}

TEST(Cost, ReduceSpillRatioUsesShuffledBytes) {
  TaskReport r;
  r.task.kind = TaskKind::Reduce;
  r.start_time = 0.0;
  r.end_time = 10.0;
  r.mem_util = 1.0;
  r.cpu_util = 1.0;
  r.counters.shuffle_bytes = mebibytes(100);
  r.counters.local_disk_write_bytes = mebibytes(50);
  // 0 util penalties, spill = 0.5, time = 1.
  EXPECT_NEAR(task_cost(r, 10.0), 1.5, 1e-9);
}

TEST(Cost, MaxTaskSecondsFloorsAtOwnDuration) {
  auto r = make_report(1.0, 1.0, 100, 100, 30.0);
  r.mem_commit = 0.85;  // below the risk threshold
  // Even if the caller's running max is stale (10 < 30), T/Tmax <= 1.
  EXPECT_LE(task_cost(r, 10.0), 2.0 + 1e-9);
}

}  // namespace
}  // namespace mron::tuner
