#include "tuner/lhs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mron::tuner {
namespace {

using mapreduce::JobConfig;

TEST(Lhs, SamplesWithinUnitCube) {
  auto space = SearchSpace::map_side(JobConfig{});
  LhsSampler sampler(24, Rng(1));
  const auto points = sampler.sample(space, 24);
  ASSERT_EQ(points.size(), 24u);
  for (const auto& p : points) {
    ASSERT_EQ(p.size(), space.dims());
    for (double v : p) {
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    }
  }
}

// The defining Latin property: with n samples, each of the n equal strata
// of every dimension contains exactly one sample.
TEST(Lhs, StratificationHoldsPerDimension) {
  auto space = SearchSpace::map_side(JobConfig{});
  const int n = 16;
  LhsSampler sampler(1000001, Rng(2));  // fine lattice: quantization ~0
  const auto points = sampler.sample(space, n);
  for (std::size_t d = 0; d < space.dims(); ++d) {
    std::set<int> strata;
    for (const auto& p : points) {
      strata.insert(static_cast<int>(p[d] * n * 0.999999));
    }
    EXPECT_EQ(strata.size(), static_cast<std::size_t>(n)) << "dim " << d;
  }
}

TEST(Lhs, RespectsDynamicBounds) {
  auto space = SearchSpace::map_side(JobConfig{});
  space.set_bounds(0, 0.3, 0.5);
  LhsSampler sampler(24, Rng(3));
  for (const auto& p : sampler.sample(space, 20)) {
    ASSERT_GE(p[0], 0.3 - 1e-9);
    ASSERT_LE(p[0], 0.5 + 1e-9);
  }
}

TEST(Lhs, NeighborhoodSamplingStaysLocal) {
  auto space = SearchSpace::map_side(JobConfig{});
  LhsSampler sampler(24, Rng(4));
  std::vector<double> center(space.dims(), 0.5);
  for (const auto& p : sampler.sample_neighborhood(space, center, 0.1, 16)) {
    for (double v : p) {
      ASSERT_GE(v, 0.4 - 0.05);  // quantization slack
      ASSERT_LE(v, 0.6 + 0.05);
    }
  }
}

TEST(Lhs, QuantizesOntoLattice) {
  auto space = SearchSpace::map_side(JobConfig{});
  const int k = 5;  // lattice {0, .25, .5, .75, 1}
  LhsSampler sampler(k, Rng(5));
  for (const auto& p : sampler.sample(space, 8)) {
    for (double v : p) {
      const double scaled = v * (k - 1);
      EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
    }
  }
}

TEST(Lhs, DeterministicForSeed) {
  auto space = SearchSpace::map_side(JobConfig{});
  LhsSampler a(24, Rng(6)), b(24, Rng(6));
  EXPECT_EQ(a.sample(space, 10), b.sample(space, 10));
}

}  // namespace
}  // namespace mron::tuner
