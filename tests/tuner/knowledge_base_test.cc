#include "tuner/knowledge_base.h"

#include <gtest/gtest.h>

namespace mron::tuner {
namespace {

using mapreduce::JobConfig;

TEST(KnowledgeBase, StoreAndLookup) {
  TuningKnowledgeBase kb;
  JobConfig cfg;
  cfg.io_sort_mb = 256;
  kb.store("Terasort", cfg, 1.5);
  const auto got = kb.lookup("Terasort");
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->io_sort_mb, 256);
  EXPECT_FALSE(kb.lookup("Unknown").has_value());
}

TEST(KnowledgeBase, KeepsCheaperEntry) {
  TuningKnowledgeBase kb;
  JobConfig cheap, pricey;
  cheap.io_sort_mb = 111;
  pricey.io_sort_mb = 999;
  kb.store("job", cheap, 1.0);
  kb.store("job", pricey, 2.0);  // worse: ignored
  EXPECT_DOUBLE_EQ(kb.lookup("job")->io_sort_mb, 111);
  kb.store("job", pricey, 0.5);  // better: replaces
  EXPECT_DOUBLE_EQ(kb.lookup("job")->io_sort_mb, 999);
}

TEST(KnowledgeBase, SerializeRoundTrips) {
  TuningKnowledgeBase kb;
  JobConfig cfg;
  cfg.io_sort_mb = 320;
  cfg.map_memory_mb = 640;
  cfg.shuffle_parallelcopies = 30;
  kb.store("WC/wiki", cfg, 2.25);
  kb.store("Terasort", JobConfig{}, 3.0);

  TuningKnowledgeBase other;
  EXPECT_EQ(other.deserialize(kb.serialize()), 2);
  const auto got = other.lookup("WC/wiki");
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->io_sort_mb, 320);
  EXPECT_DOUBLE_EQ(got->map_memory_mb, 640);
  EXPECT_DOUBLE_EQ(got->shuffle_parallelcopies, 30);
  EXPECT_DOUBLE_EQ(other.lookup_entry("WC/wiki")->cost, 2.25);
}

TEST(KnowledgeBase, DeserializeSkipsGarbage) {
  TuningKnowledgeBase kb;
  EXPECT_EQ(kb.deserialize("\n\nnot-a-valid-line\n"), 0);
  EXPECT_EQ(kb.size(), 0u);
}

}  // namespace
}  // namespace mron::tuner
