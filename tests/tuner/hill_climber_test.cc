#include "tuner/hill_climber.h"

#include "common/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace mron::tuner {
namespace {

using mapreduce::JobConfig;

// Drive the climber synchronously against an analytic cost surface defined
// on the normalized point of each issued config.
double drive(GrayBoxHillClimber& climber, SearchSpace& space,
             const std::function<double(const std::vector<double>&)>& f,
             int max_waves = 200) {
  for (int w = 0; w < max_waves && !climber.done(); ++w) {
    const auto batch = climber.next_batch();
    if (batch.empty()) break;
    std::vector<double> costs;
    for (const auto& cfg : batch) {
      costs.push_back(f(space.from_config(cfg)));
    }
    climber.report_costs(costs);
  }
  return climber.best_cost();
}

TEST(HillClimber, ConvergesOnConvexBowl) {
  auto space = SearchSpace::map_side(JobConfig{});
  ClimberOptions opt;
  GrayBoxHillClimber climber(&space, opt, Rng(1));
  // Minimum at x = (0.3, 0.7, 0.5, 0.5, 0.5).
  const std::vector<double> target{0.3, 0.7, 0.5, 0.5, 0.5};
  const double best = drive(climber, space, [&](const std::vector<double>& x) {
    double s = 0.0;
    for (std::size_t d = 0; d < x.size(); ++d) {
      s += (x[d] - target[d]) * (x[d] - target[d]);
    }
    return s;
  });
  EXPECT_TRUE(climber.done());
  EXPECT_LT(best, 0.08);  // near the bowl's floor
  const auto best_x = space.from_config(climber.best_config());
  EXPECT_NEAR(best_x[0], 0.3, 0.2);
  EXPECT_NEAR(best_x[1], 0.7, 0.2);
}

TEST(HillClimber, TerminatesAfterGlobalStrikes) {
  auto space = SearchSpace::map_side(JobConfig{});
  ClimberOptions opt;
  opt.max_global_rounds = 3;
  GrayBoxHillClimber climber(&space, opt, Rng(2));
  // Constant surface: nothing ever improves after the first wave.
  drive(climber, space, [](const std::vector<double>&) { return 1.0; });
  EXPECT_TRUE(climber.done());
  EXPECT_TRUE(climber.has_best());
}

TEST(HillClimber, WaveSizesFollowOptions) {
  auto space = SearchSpace::map_side(JobConfig{});
  ClimberOptions opt;
  opt.global_samples = 10;
  opt.local_samples = 4;
  GrayBoxHillClimber climber(&space, opt, Rng(3));
  auto first = climber.next_batch();
  EXPECT_EQ(first.size(), 10u);  // global
  climber.report_costs(std::vector<double>(10, 1.0));
  auto second = climber.next_batch();
  EXPECT_EQ(second.size(), 4u);  // local after first global
}

TEST(HillClimber, NeighborhoodShrinksWithoutImprovement) {
  auto space = SearchSpace::map_side(JobConfig{});
  ClimberOptions opt;
  GrayBoxHillClimber climber(&space, opt, Rng(4));
  climber.report_costs(std::vector<double>(
      climber.next_batch().size(), 1.0));  // enter local phase
  const double before = climber.neighborhood_size();
  // Local wave with worse costs than current (cost 1.0) -> shrink.
  climber.report_costs(std::vector<double>(
      climber.next_batch().size(), 2.0));
  EXPECT_LT(climber.neighborhood_size(), before);
}

TEST(HillClimber, FindsBestOnNoisySurface) {
  auto space = SearchSpace::map_side(JobConfig{});
  ClimberOptions opt;
  GrayBoxHillClimber climber(&space, opt, Rng(5));
  Rng noise(99);
  const double best =
      drive(climber, space, [&](const std::vector<double>& x) {
        return (x[0] - 0.5) * (x[0] - 0.5) + 0.02 * noise.uniform01();
      });
  EXPECT_LT(best, 0.05);
}

TEST(HillClimber, RespectsTightenedBoundsMidSearch) {
  auto space = SearchSpace::map_side(JobConfig{});
  ClimberOptions opt;
  GrayBoxHillClimber climber(&space, opt, Rng(6));
  auto batch = climber.next_batch();
  climber.report_costs(std::vector<double>(batch.size(), 1.0));
  // A rule tightens dimension 0 to [0.8, 1.0]; every later sample obeys.
  space.set_bounds(0, 0.8, 1.0);
  while (!climber.done()) {
    batch = climber.next_batch();
    if (batch.empty()) break;
    for (const auto& cfg : batch) {
      EXPECT_GE(space.from_config(cfg)[0], 0.8 - 0.05);
    }
    climber.report_costs(std::vector<double>(batch.size(), 1.0));
  }
}

TEST(HillClimber, FinishStopsBatches) {
  auto space = SearchSpace::map_side(JobConfig{});
  GrayBoxHillClimber climber(&space, ClimberOptions{}, Rng(7));
  climber.finish();
  EXPECT_TRUE(climber.done());
  EXPECT_TRUE(climber.next_batch().empty());
}

TEST(HillClimber, MismatchedCostCountRejected) {
  auto space = SearchSpace::map_side(JobConfig{});
  GrayBoxHillClimber climber(&space, ClimberOptions{}, Rng(8));
  const auto batch = climber.next_batch();
  ASSERT_NE(batch.size(), 1u);
  EXPECT_THROW(climber.report_costs({1.0}), CheckError);
}

}  // namespace
}  // namespace mron::tuner
