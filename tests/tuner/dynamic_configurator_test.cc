#include "tuner/dynamic_configurator.h"

#include <gtest/gtest.h>

#include "mapreduce/simulation.h"

namespace mron::tuner {
namespace {

using mapreduce::JobConfig;
using mapreduce::JobId;
using mapreduce::Simulation;
using mapreduce::SimulationOptions;
using mapreduce::TaskKind;
using mapreduce::TaskRef;

class ConfiguratorTest : public ::testing::Test {
 protected:
  ConfiguratorTest() : sim(make_options()) {
    mapreduce::JobSpec spec;
    spec.name = "job";
    spec.input = sim.load_dataset("in", mebibytes(128 * 8));
    spec.num_reduces = 2;
    am = &sim.submit_job(spec);
    cfgr.register_job(am);
  }

  static SimulationOptions make_options() {
    SimulationOptions opt;
    opt.cluster.num_slaves = 2;
    opt.cluster.rack_sizes = {1, 1};
    return opt;
  }

  Simulation sim;
  mapreduce::MrAppMaster* am = nullptr;
  DynamicConfigurator cfgr;
};

TEST_F(ConfiguratorTest, JobParametersExcludeCategoryOne) {
  const auto params = cfgr.get_configurable_job_parameters(am->id());
  EXPECT_EQ(params.size(), 13u);  // all Table-2 params are cat II/III
  EXPECT_TRUE(cfgr.get_configurable_job_parameters(JobId(999)).empty());
}

TEST_F(ConfiguratorTest, QueuedTaskGetsAllParams) {
  const auto params = cfgr.get_configurable_task_parameters(
      am->id(), TaskRef{TaskKind::Map, 3});
  EXPECT_EQ(params.size(), 13u);
}

TEST_F(ConfiguratorTest, RunningTaskGetsOnlyLiveParams) {
  sim.engine().run_until(5.0);  // tasks have launched by now
  const auto params = cfgr.get_configurable_task_parameters(
      am->id(), TaskRef{TaskKind::Map, 0});
  for (const auto& name : params) {
    EXPECT_EQ(mapreduce::ParamRegistry::standard().find(name)->category,
              mapreduce::ParamCategory::Live)
        << name;
  }
  EXPECT_FALSE(params.empty());
  sim.run();
}

TEST_F(ConfiguratorTest, SetJobParametersByString) {
  EXPECT_EQ(cfgr.set_job_parameters(
                am->id(), {{"mapreduce.task.io.sort.mb", "320"}}),
            0);
  EXPECT_DOUBLE_EQ(am->job_config().io_sort_mb, 320);
  EXPECT_EQ(cfgr.set_job_parameters(am->id(), {{"bogus", "1"}}), 1);
  EXPECT_EQ(cfgr.set_job_parameters(JobId(999), {}), -1);
  sim.run();
}

TEST_F(ConfiguratorTest, SetTaskParametersByString) {
  EXPECT_EQ(cfgr.set_task_parameters(
                am->id(), TaskRef{TaskKind::Map, 5},
                {{"mapreduce.map.memory.mb", "2048"}}),
            0);
  bool checked = false;
  am->set_task_listener([&](const mapreduce::TaskReport& r) {
    if (r.task == TaskRef{TaskKind::Map, 5}) {
      EXPECT_DOUBLE_EQ(r.config.map_memory_mb, 2048);
      checked = true;
    }
  });
  sim.run();
  EXPECT_TRUE(checked);
}

TEST_F(ConfiguratorTest, SetAllTasksParameters) {
  EXPECT_EQ(cfgr.set_task_parameters(am->id(),
                                     {{"mapreduce.task.io.sort.mb", "200"}}),
            0);
  int with = 0;
  am->set_task_listener([&](const mapreduce::TaskReport& r) {
    if (r.config.io_sort_mb == 200) ++with;
  });
  sim.run();
  EXPECT_GT(with, 0);
}

TEST_F(ConfiguratorTest, InvalidValueCounted) {
  EXPECT_EQ(cfgr.set_job_parameters(
                am->id(), {{"mapreduce.task.io.sort.mb", "not-a-number"}}),
            1);
  sim.run();
}

TEST_F(ConfiguratorTest, UnregisterMakesJobUnknown) {
  cfgr.unregister_job(am->id());
  EXPECT_EQ(cfgr.set_job_parameters(am->id(), {}), -1);
  sim.run();
}

}  // namespace
}  // namespace mron::tuner
