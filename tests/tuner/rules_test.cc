#include "tuner/rules.h"

#include <gtest/gtest.h>

namespace mron::tuner {
namespace {

using mapreduce::JobConfig;
using mapreduce::TaskKind;
using mapreduce::TaskReport;

TaskReport map_report(double mem_mb, double sort_mb, double mem_util,
                      double cpu_util, std::int64_t spilled,
                      std::int64_t combined, double out_mb, double dur = 30) {
  TaskReport r;
  r.task.kind = TaskKind::Map;
  r.end_time = dur;
  r.config.map_memory_mb = mem_mb;
  r.config.io_sort_mb = sort_mb;
  r.mem_util = mem_util;
  r.cpu_util = cpu_util;
  r.counters.spilled_records = spilled;
  r.counters.combine_output_records = combined;
  r.counters.map_output_records = combined;
  r.counters.map_output_bytes = mebibytes(out_mb);
  return r;
}

TEST(WaveStats, AggregatesMapReports) {
  std::vector<TaskReport> reports{
      map_report(1024, 100, 0.5, 0.6, 200, 100, 128),
      map_report(2048, 200, 0.3, 0.4, 100, 100, 128),
  };
  const auto s = WaveStats::from_reports(reports);
  EXPECT_EQ(s.mem_util.size(), 2u);
  EXPECT_EQ(s.sampled_sort_mb.size(), 2u);
  EXPECT_EQ(s.spill_ratio.size(), 2u);
  EXPECT_DOUBLE_EQ(s.spill_ratio[0], 2.0);
  EXPECT_DOUBLE_EQ(s.spill_ratio[1], 1.0);
  EXPECT_EQ(s.oom_count, 0);
}

TEST(WaveStats, CountsOomsSeparately) {
  TaskReport oom = map_report(512, 100, 1.0, 0, 0, 0, 0);
  oom.failed_oom = true;
  const auto s = WaveStats::from_reports({oom});
  EXPECT_EQ(s.oom_count, 1);
  EXPECT_TRUE(s.mem_util.empty());
}

TEST(MapRules, UnderUtilizationLowersMemoryUpperBound) {
  auto space = SearchSpace::map_side(JobConfig{});
  std::vector<TaskReport> reports;
  for (int i = 0; i < 8; ++i) {
    reports.push_back(
        map_report(2000 + 100 * i, 100, 0.3, 0.6, 100, 100, 50));
  }
  const auto before = space.upper(space.dim_of("mapreduce.map.memory.mb"));
  apply_map_rules(WaveStats::from_reports(reports), space);
  EXPECT_LT(space.upper(space.dim_of("mapreduce.map.memory.mb")), before);
}

TEST(MapRules, OverUtilizationRaisesMemoryLowerBound) {
  auto space = SearchSpace::map_side(JobConfig{});
  std::vector<TaskReport> reports;
  for (int i = 0; i < 8; ++i) {
    reports.push_back(map_report(600 + 20 * i, 100, 0.95, 0.6, 100, 100, 50));
  }
  apply_map_rules(WaveStats::from_reports(reports), space);
  EXPECT_GT(space.lower(space.dim_of("mapreduce.map.memory.mb")), 0.0);
}

TEST(MapRules, SpillPairingTightensSortBufferBothSides) {
  auto space = SearchSpace::map_side(JobConfig{});
  std::vector<TaskReport> reports;
  // Small buffers spilled 2x, large buffers reached the optimum.
  for (int i = 0; i < 4; ++i) {
    reports.push_back(map_report(1024, 80 + i * 10, 0.6, 0.6, 200, 100, 128));
    reports.push_back(map_report(1024, 400 + i * 50, 0.6, 0.6, 100, 100, 128));
  }
  apply_map_rules(WaveStats::from_reports(reports), space);
  const auto dim = space.dim_of("mapreduce.task.io.sort.mb");
  // Lower bound rose above the failing values (~110 of [50,1024]).
  EXPECT_GT(space.lower(dim), 0.04);
  // Upper bound fell toward the clean values (~550).
  EXPECT_LT(space.upper(dim), 0.6);
  EXPECT_LE(space.lower(dim), space.upper(dim));
}

TEST(MapRules, SpillPercentPinnedWhenSingleSpillAttainable) {
  auto space = SearchSpace::map_side(JobConfig{});
  std::vector<TaskReport> reports{
      map_report(1024, 100, 0.6, 0.6, 100, 100, /*out_mb=*/128)};
  apply_map_rules(WaveStats::from_reports(reports), space);
  const auto dim = space.dim_of("mapreduce.map.sort.spill.percent");
  // 0.99 normalized in [0.5, 0.99] = 1.0.
  EXPECT_GT(space.lower(dim), 0.95);
}

TEST(ReduceRules, InmemThresholdPinnedToZero) {
  auto space = SearchSpace::reduce_side(JobConfig{});
  TaskReport r;
  r.task.kind = TaskKind::Reduce;
  r.end_time = 10;
  r.mem_util = 0.6;
  r.config.reduce_memory_mb = 1024;
  apply_reduce_rules(WaveStats::from_reports({r}), space);
  const auto dim = space.dim_of("mapreduce.reduce.merge.inmem.threshold");
  EXPECT_DOUBLE_EQ(space.upper(dim), 0.0);
}

TEST(ConservativeTuner, GrowsSortBufferFromObservedOutput) {
  ConservativeTuner tuner{JobConfig{}};
  for (std::size_t i = 0; i < kConservativeBatch; ++i) {
    tuner.observe(map_report(1024, 100, 0.45, 0.5, 200, 100, /*out_mb=*/150));
  }
  ASSERT_TRUE(tuner.ready());
  const auto cfg = tuner.adjust();
  EXPECT_GT(cfg.io_sort_mb, 150);  // sized to hold the output in one spill
  EXPECT_DOUBLE_EQ(cfg.sort_spill_percent, 0.99);
}

TEST(ConservativeTuner, ShrinksUnderUtilizedContainers) {
  ConservativeTuner tuner{JobConfig{}};
  for (std::size_t i = 0; i < kConservativeBatch; ++i) {
    tuner.observe(map_report(1024, 100, 0.35, 0.5, 100, 100, 30));
  }
  const auto cfg = tuner.adjust();
  EXPECT_LT(cfg.map_memory_mb, 1024);
  EXPECT_GE(cfg.map_memory_mb, 512);
}

TEST(ConservativeTuner, EscalatesVcoresWhileImproving) {
  ConservativeTuner tuner{JobConfig{}};
  // Batch 1: CPU-saturated, duration 100 -> vcores 2.
  for (std::size_t i = 0; i < kConservativeBatch; ++i) {
    tuner.observe(map_report(1024, 100, 0.6, 0.99, 100, 100, 30, 100));
  }
  EXPECT_DOUBLE_EQ(tuner.adjust().map_cpu_vcores, 2);
  // Batch 2: still saturated and faster -> vcores 3.
  for (std::size_t i = 0; i < kConservativeBatch; ++i) {
    tuner.observe(map_report(1024, 100, 0.6, 0.99, 100, 100, 30, 60));
  }
  EXPECT_DOUBLE_EQ(tuner.adjust().map_cpu_vcores, 3);
  // Batch 3: no longer improving -> frozen.
  for (std::size_t i = 0; i < kConservativeBatch; ++i) {
    tuner.observe(map_report(1024, 100, 0.6, 0.99, 100, 100, 30, 60));
  }
  EXPECT_DOUBLE_EQ(tuner.adjust().map_cpu_vcores, 3);
}

TEST(ConservativeTuner, GrowsReduceMemoryOnOom) {
  ConservativeTuner tuner{JobConfig{}};
  for (std::size_t i = 0; i < kConservativeBatch; ++i) {
    TaskReport r;
    r.task.kind = TaskKind::Reduce;
    r.failed_oom = true;
    r.config.reduce_memory_mb = 1024;
    tuner.observe(r);
  }
  const auto cfg = tuner.adjust();
  EXPECT_GT(cfg.reduce_memory_mb, 1024);
}

TEST(ConservativeTuner, KeepsReduceInputInMemoryWhenItFits) {
  ConservativeTuner tuner{JobConfig{}};
  for (std::size_t i = 0; i < kConservativeBatch; ++i) {
    TaskReport r;
    r.task.kind = TaskKind::Reduce;
    r.end_time = 60;
    r.mem_util = 0.6;
    r.config.reduce_memory_mb = 1024;
    r.counters.shuffle_bytes = mebibytes(150);  // fits the ~573 MiB buffer
    tuner.observe(r);
  }
  const auto cfg = tuner.adjust();
  EXPECT_DOUBLE_EQ(cfg.reduce_input_buffer_percent,
                   cfg.shuffle_input_buffer_percent);
  EXPECT_DOUBLE_EQ(cfg.merge_inmem_threshold, 0);
}

}  // namespace
}  // namespace mron::tuner
