#include "tuner/eval_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "mapreduce/params.h"
#include "obs/metrics.h"

namespace mron::tuner {
namespace {

using mapreduce::JobConfig;
using mapreduce::ParamRegistry;

CacheKey key_of(double a, double b) {
  CacheKey key;
  key.add(a);
  key.add(b);
  return key;
}

TEST(CacheKey, EqualInputsEqualKeys) {
  EXPECT_EQ(key_of(1.5, 2.5), key_of(1.5, 2.5));
  EXPECT_EQ(key_of(1.5, 2.5).hash(), key_of(1.5, 2.5).hash());
}

TEST(CacheKey, DifferentInputsDifferentKeys) {
  EXPECT_FALSE(key_of(1.5, 2.5) == key_of(2.5, 1.5));  // order matters
  EXPECT_FALSE(key_of(1.5, 2.5) == key_of(1.5, 2.6));
}

TEST(CacheKey, NegativeZeroKeysLikePositiveZero) {
  EXPECT_EQ(key_of(0.0, 1.0), key_of(-0.0, 1.0));
}

TEST(CacheKey, ConfigsCollapsingUnderClampShareAKey) {
  // clamp_constraints caps io.sort.mb by the map container headroom: both
  // of these configs evaluate as the same point, so they must key equally.
  const auto& reg = ParamRegistry::extended();
  JobConfig a, b;
  a.map_memory_mb = 512;
  b.map_memory_mb = 512;
  a.io_sort_mb = 800;
  b.io_sort_mb = 900;  // both clamp to 512 - 256
  CacheKey ka, kb;
  ka.add_config(reg, a);
  kb.add_config(reg, b);
  EXPECT_EQ(ka, kb);
}

TEST(CacheKey, DistinctConfigsKeyDifferently) {
  const auto& reg = ParamRegistry::extended();
  JobConfig a, b;
  b.reduce_memory_mb = 2048;
  CacheKey ka, kb;
  ka.add_config(reg, a);
  kb.add_config(reg, b);
  EXPECT_FALSE(ka == kb);
}

TEST(EvalCache, HitReturnsInsertedValue) {
  EvalCache<double> cache;
  cache.insert(key_of(1, 2), 42.0);
  const auto hit = cache.lookup(key_of(1, 2));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 42.0);
  EXPECT_FALSE(cache.lookup(key_of(2, 1)).has_value());
}

TEST(EvalCache, GetOrComputeMemoizes) {
  EvalCache<double> cache;
  int calls = 0;
  auto compute = [&] {
    ++calls;
    return 7.0;
  };
  EXPECT_EQ(cache.get_or_compute(key_of(3, 4), compute), 7.0);
  EXPECT_EQ(cache.get_or_compute(key_of(3, 4), compute), 7.0);
  EXPECT_EQ(calls, 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(EvalCache, EvictsLeastRecentlyUsedAtCapacity) {
  // One shard of capacity 2: inserting a third key evicts the stalest.
  EvalCache<int> cache(/*capacity=*/2, /*shards=*/1);
  cache.insert(key_of(1, 1), 1);
  cache.insert(key_of(2, 2), 2);
  ASSERT_TRUE(cache.lookup(key_of(1, 1)).has_value());  // refresh key 1
  cache.insert(key_of(3, 3), 3);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(key_of(1, 1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2, 2)).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(key_of(3, 3)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(EvalCache, ThreadSafeUnderConcurrentGetOrCompute) {
  EvalCache<std::int64_t> cache;
  std::atomic<std::int64_t> computes{0};
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int rep = 0; rep < 50; ++rep) {
        for (int k = 0; k < kKeys; ++k) {
          const auto v = cache.get_or_compute(key_of(k, k), [&] {
            computes.fetch_add(1);
            return std::int64_t{k} * 10;
          });
          EXPECT_EQ(v, std::int64_t{k} * 10);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // Racing misses may compute a key more than once, but values are pure,
  // and far fewer computes than lookups proves the cache actually served.
  EXPECT_GE(computes.load(), kKeys);
  EXPECT_LT(computes.load(), kThreads * kKeys);
}

TEST(EvalCacheGlobals, EnableSwitchRoundTrips) {
  const bool saved = eval_cache_enabled();
  set_eval_cache_enabled(false);
  EXPECT_FALSE(eval_cache_enabled());
  set_eval_cache_enabled(true);
  EXPECT_TRUE(eval_cache_enabled());
  set_eval_cache_enabled(saved);
}

TEST(EvalCacheGlobals, StatsAggregateAndExportAsMetrics) {
  reset_eval_cache_global_stats();
  EvalCache<double> cache;
  cache.get_or_compute(key_of(9, 9), [] { return 1.0; });
  cache.get_or_compute(key_of(9, 9), [] { return 1.0; });
  const auto global = eval_cache_global_stats();
  EXPECT_EQ(global.hits, 1u);
  EXPECT_EQ(global.misses, 1u);
  EXPECT_EQ(global.insertions, 1u);

  obs::MetricsRegistry registry;
  export_eval_cache_metrics(registry);
  EXPECT_EQ(registry.value("tuner.eval_cache.hits"), 1.0);
  EXPECT_EQ(registry.value("tuner.eval_cache.misses"), 1.0);
  EXPECT_DOUBLE_EQ(registry.value("tuner.eval_cache.hit_rate"), 0.5);
}

}  // namespace
}  // namespace mron::tuner
