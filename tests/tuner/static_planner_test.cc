#include "tuner/static_planner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "workloads/benchmarks.h"

namespace mron::tuner {
namespace {

StaticPlanOptions small_cluster_options() {
  StaticPlanOptions opt;
  opt.cluster.num_slaves = 4;
  opt.cluster.rack_sizes = {2, 2};
  opt.slowstart_candidates = {0.05, 1.0};
  return opt;
}

mapreduce::JobSpec terasort_template() {
  mapreduce::JobSpec spec;
  spec.name = "plan-me";
  spec.profile = workloads::profile_for(workloads::Benchmark::Terasort,
                                        workloads::Corpus::Synthetic);
  return spec;
}

TEST(StaticPlanner, SweepsEveryCandidatePair) {
  auto opt = small_cluster_options();
  opt.reducer_candidates = {2, 8};
  const auto plan = plan_static_parameters(terasort_template(),
                                           mebibytes(128.0 * 16), opt);
  EXPECT_EQ(plan.sweep.size(), 4u);  // 2 reducer counts x 2 slowstarts
}

TEST(StaticPlanner, PicksTheSweepMinimum) {
  auto opt = small_cluster_options();
  opt.reducer_candidates = {1, 4, 16};
  const auto plan = plan_static_parameters(terasort_template(),
                                           mebibytes(128.0 * 16), opt);
  for (const auto& p : plan.sweep) {
    EXPECT_GE(p.simulated_secs, plan.simulated_secs);
  }
  // The chosen pair is one of the candidates.
  EXPECT_TRUE(plan.num_reduces == 1 || plan.num_reduces == 4 ||
              plan.num_reduces == 16);
  EXPECT_TRUE(plan.slowstart == 0.05 || plan.slowstart == 1.0);
}

TEST(StaticPlanner, DefaultCandidatesScaleWithMaps) {
  const auto plan = plan_static_parameters(
      terasort_template(), mebibytes(128.0 * 32), small_cluster_options());
  // maps/8, maps/4, maps/2, maps = 4, 8, 16, 32.
  std::vector<int> seen;
  for (const auto& p : plan.sweep) {
    if (seen.empty() || seen.back() != p.num_reduces) {
      seen.push_back(p.num_reduces);
    }
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{4, 8, 16, 32}));
}

TEST(StaticPlanner, ExtremeReducerCountsLose) {
  // One reducer serializes the whole reduce phase: it must never be chosen
  // over a reasonable count for a shuffle-heavy job.
  auto opt = small_cluster_options();
  opt.reducer_candidates = {1, 8};
  opt.slowstart_candidates = {0.05};
  const auto plan = plan_static_parameters(terasort_template(),
                                           mebibytes(128.0 * 24), opt);
  EXPECT_EQ(plan.num_reduces, 8);
}

TEST(StaticPlanner, DeterministicForSeed) {
  auto opt = small_cluster_options();
  opt.reducer_candidates = {2, 4};
  const auto a = plan_static_parameters(terasort_template(),
                                        mebibytes(128.0 * 8), opt);
  const auto b = plan_static_parameters(terasort_template(),
                                        mebibytes(128.0 * 8), opt);
  EXPECT_EQ(a.num_reduces, b.num_reduces);
  EXPECT_DOUBLE_EQ(a.simulated_secs, b.simulated_secs);
}

TEST(StaticPlanner, RejectsEmptyInput) {
  EXPECT_THROW((void)plan_static_parameters(terasort_template(), Bytes(0),
                                            small_cluster_options()),
               CheckError);
}

}  // namespace
}  // namespace mron::tuner
