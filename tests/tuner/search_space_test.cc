#include "tuner/search_space.h"

#include "common/check.h"

#include <gtest/gtest.h>

namespace mron::tuner {
namespace {

using mapreduce::JobConfig;

TEST(SearchSpace, MapSideDimensions) {
  auto space = SearchSpace::map_side(JobConfig{});
  EXPECT_EQ(space.dims(), 5u);
  EXPECT_NE(space.dim_of("mapreduce.task.io.sort.mb"), SearchSpace::npos);
  EXPECT_EQ(space.dim_of("mapreduce.reduce.memory.mb"), SearchSpace::npos);
}

TEST(SearchSpace, ReduceSideDimensions) {
  auto space = SearchSpace::reduce_side(JobConfig{});
  EXPECT_EQ(space.dims(), 8u);
  EXPECT_NE(space.dim_of("mapreduce.reduce.shuffle.parallelcopies"),
            SearchSpace::npos);
  EXPECT_EQ(space.dim_of("mapreduce.task.io.sort.mb"), SearchSpace::npos);
}

TEST(SearchSpace, ToConfigMapsUnitIntervalOntoRanges) {
  auto space = SearchSpace::map_side(JobConfig{});
  const auto lo = space.to_config(std::vector<double>(space.dims(), 0.0));
  EXPECT_DOUBLE_EQ(lo.map_memory_mb, 512);
  EXPECT_DOUBLE_EQ(lo.io_sort_mb, 50);
  const auto hi = space.to_config(std::vector<double>(space.dims(), 1.0));
  EXPECT_DOUBLE_EQ(hi.map_memory_mb, 3072);
  EXPECT_DOUBLE_EQ(hi.map_cpu_vcores, 4);
}

TEST(SearchSpace, ToConfigAppliesConstraints) {
  auto space = SearchSpace::map_side(JobConfig{});
  std::vector<double> x(space.dims(), 0.0);
  x[space.dim_of("mapreduce.map.memory.mb")] = 0.0;   // 512 MB
  x[space.dim_of("mapreduce.task.io.sort.mb")] = 1.0; // 1024 MB
  const auto cfg = space.to_config(x);
  EXPECT_LE(cfg.io_sort_mb, cfg.map_memory_mb - mapreduce::kJvmHeadroomMb);
}

TEST(SearchSpace, ToConfigPreservesBaseOutsideDims) {
  JobConfig base;
  base.shuffle_parallelcopies = 42;  // not a map-side dim
  auto space = SearchSpace::map_side(base);
  const auto cfg = space.to_config(std::vector<double>(space.dims(), 0.5));
  EXPECT_DOUBLE_EQ(cfg.shuffle_parallelcopies, 42);
}

TEST(SearchSpace, FromConfigRoundTrips) {
  auto space = SearchSpace::map_side(JobConfig{});
  std::vector<double> x(space.dims(), 0.5);
  const auto cfg = space.to_config(x);
  const auto back = space.from_config(cfg);
  for (std::size_t d = 0; d < space.dims(); ++d) {
    const auto& p = space.param(d);
    // Integer rounding perturbs a coordinate by at most half a step.
    const double tol = p.integer ? 0.51 / (p.max - p.min) : 1e-9;
    EXPECT_NEAR(back[d], x[d], tol) << p.name;
  }
}

TEST(SearchSpace, BoundsClampPoints) {
  auto space = SearchSpace::map_side(JobConfig{});
  space.set_bounds(0, 0.4, 0.6);
  std::vector<double> x(space.dims(), 0.9);
  space.clamp(x);
  EXPECT_DOUBLE_EQ(x[0], 0.6);
  EXPECT_DOUBLE_EQ(x[1], 0.9);
}

TEST(SearchSpace, InvertedBoundsRejected) {
  auto space = SearchSpace::map_side(JobConfig{});
  EXPECT_THROW(space.set_bounds(0, 0.8, 0.2), CheckError);
}

TEST(SearchSpace, UnknownParamRejected) {
  EXPECT_THROW(SearchSpace(mapreduce::ParamRegistry::standard(),
                           {"not.a.param"}, JobConfig{}),
               CheckError);
}

}  // namespace
}  // namespace mron::tuner
