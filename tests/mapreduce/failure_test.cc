// Failure injection: fail-stop a node mid-job and verify the MapReduce
// layer recovers — running tasks re-execute, completed map outputs that
// died with the node are regenerated, reducers deduplicate re-delivered
// partitions, and the dead node receives no further containers.
#include <gtest/gtest.h>

#include <set>

#include "mapreduce/simulation.h"
#include "workloads/benchmarks.h"

namespace mron::mapreduce {
namespace {

SimulationOptions small_cluster(std::uint64_t seed) {
  SimulationOptions opt;
  opt.cluster.num_slaves = 6;
  opt.cluster.rack_sizes = {3, 3};
  opt.seed = seed;
  return opt;
}

JobSpec job(Simulation& sim, int blocks, int reduces) {
  JobSpec spec;
  spec.name = "victim";
  spec.input = sim.load_dataset("in", mebibytes(128.0 * blocks));
  spec.num_reduces = reduces;
  spec.profile.map_cpu_secs_per_mib = 0.3;
  spec.profile.map_output_ratio = 1.0;
  return spec;
}

TEST(NodeFailure, JobCompletesAfterMidJobFailure) {
  Simulation sim(small_cluster(3));
  JobResult result;
  bool done = false;
  sim.submit_job(job(sim, 24, 6), [&](const JobResult& r) {
    result = r;
    done = true;
  });
  sim.engine().schedule_at(30.0, [&] {
    sim.rm().fail_node(cluster::NodeId(2));
  });
  sim.run();
  ASSERT_TRUE(done);
  // Every map ran; re-executions mean at least num_maps reports and at
  // least one extra attempt somewhere.
  EXPECT_GE(result.map_reports.size(), 24u);
  EXPECT_EQ(result.reduce_reports.back().failed_oom, false);
}

TEST(NodeFailure, DeadNodeGetsNoNewContainers) {
  Simulation sim(small_cluster(4));
  std::set<std::int64_t> nodes_after_failure;
  bool failed = false;
  auto& am = sim.submit_job(job(sim, 30, 6));
  am.set_task_listener([&](const TaskReport& r) {
    if (failed && r.start_time > 31.0) {
      nodes_after_failure.insert(r.node.value());
    }
  });
  sim.engine().schedule_at(30.0, [&] {
    sim.rm().fail_node(cluster::NodeId(1));
    failed = true;
  });
  sim.run();
  EXPECT_FALSE(nodes_after_failure.empty());
  EXPECT_EQ(nodes_after_failure.count(1), 0u);
}

TEST(NodeFailure, LostMapOutputsAreRegenerated) {
  Simulation sim(small_cluster(5));
  JobResult result;
  auto& am = sim.submit_job(job(sim, 18, 4),
                            [&](const JobResult& r) { result = r; });
  // Fail a node after some maps finished but before reducers fetched
  // everything.
  int completed_when_failed = -1;
  sim.engine().schedule_at(60.0, [&] {
    completed_when_failed = am.completed_maps();
    sim.rm().fail_node(cluster::NodeId(0));
  });
  sim.run();
  ASSERT_GT(completed_when_failed, 0);
  // Total successful map completions still equals the task count exactly
  // once each at the end; reports may exceed it (re-executions).
  int successes = 0;
  for (const auto& r : result.map_reports) {
    if (!r.failed_oom) ++successes;
  }
  EXPECT_GE(successes, 18);
  // Shuffle conservation: every reducer received every map's partition
  // exactly once despite duplicates being re-delivered.
  Bytes shuffled{0};
  for (const auto& r : result.reduce_reports) {
    shuffled += r.counters.shuffle_bytes;
  }
  // Expected = sum of final combined outputs = 18 blocks * 128 MiB * ratio.
  EXPECT_NEAR(shuffled.as_double(), mebibytes(128.0 * 18).as_double(),
              mebibytes(128.0 * 18).as_double() * 0.02);
}

TEST(NodeFailure, SurvivesFailureDuringReducePhase) {
  Simulation sim(small_cluster(6));
  JobSpec spec = job(sim, 12, 8);
  spec.slowstart = 1.0;  // reducers start after all maps: failure hits them
  bool done = false;
  sim.submit_job(std::move(spec), [&](const JobResult&) { done = true; });
  // Fail late, when reducers are up.
  sim.engine().schedule_at(220.0, [&] {
    if (!done) sim.rm().fail_node(cluster::NodeId(3));
  });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(NodeFailure, IdempotentAndQueryable) {
  Simulation sim(small_cluster(7));
  EXPECT_TRUE(sim.rm().node_alive(cluster::NodeId(2)));
  sim.rm().fail_node(cluster::NodeId(2));
  sim.rm().fail_node(cluster::NodeId(2));  // no effect
  EXPECT_FALSE(sim.rm().node_alive(cluster::NodeId(2)));
  sim.run();
}

TEST(NodeFailure, MultipleFailuresStillComplete) {
  Simulation sim(small_cluster(8));
  bool done = false;
  sim.submit_job(job(sim, 20, 4), [&](const JobResult&) { done = true; });
  sim.engine().schedule_at(25.0,
                           [&] { sim.rm().fail_node(cluster::NodeId(4)); });
  sim.engine().schedule_at(70.0,
                           [&] { sim.rm().fail_node(cluster::NodeId(5)); });
  sim.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace mron::mapreduce
