#include "mapreduce/map_task.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

namespace mron::mapreduce {
namespace {

// A fresh 2-node world per scenario so tests can compare independent runs.
struct World {
  World() {
    spec.num_slaves = 2;
    spec.rack_sizes = {1, 1};
    topo = std::make_unique<cluster::Topology>(spec);
    for (int i = 0; i < 2; ++i) {
      nodes.push_back(
          std::make_unique<cluster::Node>(eng, cluster::NodeId(i), spec));
    }
    std::vector<cluster::Node*> ptrs;
    for (auto& n : nodes) ptrs.push_back(n.get());
    fabric = std::make_unique<cluster::Fabric>(eng, spec, *topo, ptrs);
    profile.task_startup_secs = 0.0;  // deterministic timing in tests
  }

  TaskReport run_map(const JobConfig& cfg, Bytes input,
                     dfs::Locality locality = dfs::Locality::NodeLocal,
                     std::uint64_t seed = 7) {
    MapTask::Inputs in;
    in.task = TaskRef{TaskKind::Map, 0};
    in.input_bytes = input;
    in.source = locality == dfs::Locality::NodeLocal ? cluster::NodeId(0)
                                                     : cluster::NodeId(1);
    in.locality = locality;
    std::optional<TaskReport> report;
    task = std::make_unique<MapTask>(
        eng, *nodes[0], *nodes[static_cast<std::size_t>(in.source.value())],
        *fabric, profile, cfg, in, Rng(seed),
        [&](const TaskReport& r) { report = r; });
    task->start();
    eng.run();
    EXPECT_TRUE(report.has_value());
    return *report;
  }

  sim::Engine eng;
  cluster::ClusterSpec spec;
  std::unique_ptr<cluster::Topology> topo;
  std::vector<std::unique_ptr<cluster::Node>> nodes;
  std::unique_ptr<cluster::Fabric> fabric;
  AppProfile profile;
  std::unique_ptr<MapTask> task;
};

TEST(MapTask, CompletesWithCountersAndUtilization) {
  World w;
  w.profile.map_cpu_secs_per_mib = 0.1;
  const auto r = w.run_map(JobConfig{}, mebibytes(128));
  EXPECT_FALSE(r.failed_oom);
  EXPECT_GT(r.duration(), 0.0);
  EXPECT_GT(r.counters.map_output_records, 0);
  EXPECT_GE(r.counters.spilled_records, r.counters.combine_output_records);
  EXPECT_GT(r.cpu_util, 0.0);
  EXPECT_LE(r.cpu_util, 1.0);
  EXPECT_GT(r.mem_util, 0.0);
  EXPECT_LT(r.mem_util, 1.0);
}

TEST(MapTask, OomWhenSortBufferExceedsContainer) {
  World w;
  JobConfig cfg;
  cfg.map_memory_mb = 512;
  cfg.io_sort_mb = 400;  // 400 + ~300 working set > 512
  const auto r = w.run_map(cfg, mebibytes(64));
  EXPECT_TRUE(r.failed_oom);
  EXPECT_EQ(r.counters.map_output_records, 0);
  // Memory must be released even on failure.
  EXPECT_EQ(w.nodes[0]->memory_used(), Bytes(0));
}

TEST(MapTask, RemoteReadSlowerThanLocal) {
  World local_world;
  local_world.profile.map_cpu_secs_per_mib = 0.01;  // read-bound
  const auto local =
      local_world.run_map(JobConfig{}, mebibytes(512), dfs::Locality::NodeLocal);

  World remote_world;
  remote_world.profile.map_cpu_secs_per_mib = 0.01;
  const auto remote =
      remote_world.run_map(JobConfig{}, mebibytes(512), dfs::Locality::OffRack);
  EXPECT_GT(remote.duration(), local.duration() * 0.99);
}

TEST(MapTask, LargerSortBufferReducesSpills) {
  JobConfig small;  // default 100 MB
  JobConfig big;
  big.io_sort_mb = 512;
  big.sort_spill_percent = 0.99;
  big.map_memory_mb = 1024;
  World w1, w2;
  const auto r_small = w1.run_map(small, mebibytes(128));
  const auto r_big = w2.run_map(big, mebibytes(128));
  EXPECT_GT(r_small.counters.spilled_records, r_big.counters.spilled_records);
  EXPECT_EQ(r_big.counters.spilled_records,
            r_big.counters.combine_output_records);
  EXPECT_LT(r_big.duration(), r_small.duration());
}

TEST(MapTask, MoreVcoresSpeedUpComputeBoundTask) {
  JobConfig one;
  JobConfig four;
  four.map_cpu_vcores = 4;
  World w1, w4;
  w1.profile.map_cpu_secs_per_mib = 1.0;
  w1.profile.map_cpu_demand_cores = 4.0;
  w4.profile.map_cpu_secs_per_mib = 1.0;
  w4.profile.map_cpu_demand_cores = 4.0;
  const auto r1 = w1.run_map(one, mebibytes(128));
  const auto r4 = w4.run_map(four, mebibytes(128));
  EXPECT_LT(r4.duration(), r1.duration() * 0.5);
  EXPECT_NEAR(r1.cpu_util, 1.0, 0.05);  // starved at quota
}

TEST(MapTask, LiveSpillPercentUpdateHonored) {
  World w;
  w.profile.map_cpu_secs_per_mib = 0.5;  // long compute window to update in
  // 80 MiB of output: 2 spills at the default trigger (~69 MiB) but a
  // single spill once the live update raises spill.percent to 0.99.
  JobConfig cfg;
  MapTask::Inputs in;
  in.task = TaskRef{TaskKind::Map, 0};
  in.input_bytes = mebibytes(80);
  in.source = cluster::NodeId(0);
  std::optional<TaskReport> report;
  JobConfig tuned = cfg;
  tuned.sort_spill_percent = 0.99;
  w.task = std::make_unique<MapTask>(
      w.eng, *w.nodes[0], *w.nodes[0], *w.fabric, w.profile, cfg, in, Rng(3),
      [&](const TaskReport& r) { report = r; });
  w.task->start();
  w.eng.schedule_at(1.0, [&] { w.task->update_config(tuned); });
  w.eng.run();
  ASSERT_TRUE(report.has_value());
  // 80 MiB at spill 0.99: single spill = optimal.
  EXPECT_EQ(report->counters.spilled_records,
            report->counters.combine_output_records);
}

TEST(MapTask, ZeroInputComputeOnlyTask) {
  World w;
  w.profile.map_cpu_secs_fixed = 10.0;
  w.profile.map_output_bytes_fixed = kibibytes(4);
  const auto r = w.run_map(JobConfig{}, Bytes(0));
  EXPECT_FALSE(r.failed_oom);
  EXPECT_NEAR(r.duration(), 10.0, 2.0);
  EXPECT_GT(r.counters.map_output_records, 0);
}

}  // namespace
}  // namespace mron::mapreduce
